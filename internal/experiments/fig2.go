package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// updateExperiment factors the shared shape of Figs. 2 and 3: start
// from a good configuration of the same-category scenario (uniform
// demand split, per §4.2), perturb the peers of one cluster, run the
// reformulation protocol with a fixed cluster count (new-cluster
// creation disabled, per the paper), and record the final normalized
// social cost per strategy.
//
// apply perturbs a freshly built system: it receives the system, the
// members of the updated cluster c_cur, the perturbation level x in
// [0,1], and a deterministic RNG.
func updateExperiment(p Params, title, xlabel string, levels []float64,
	apply func(sys *System, members []int, x float64, rng *stats.RNG)) *metrics.Series {

	// §4.2 assigns the total workload uniformly to peers.
	p.DemandZipfS = 0
	out := metrics.NewSeries(title, xlabel)
	out.AddColumn("selfish")
	out.AddColumn("altruistic")
	// no-reform is the counterfactual: the social cost right after the
	// update if no reformulation ran. The gap between it and the
	// strategy curves is what the protocol recovers.
	out.AddColumn("no-reform")

	// One independent cell per (level, strategy): each builds and
	// perturbs a private deterministic system, so both strategies see
	// the identical perturbed state and cells parallelize freely.
	strategies := []func() core.Strategy{
		func() core.Strategy { return core.NewSelfish() },
		func() core.Strategy { return core.NewAltruistic() },
	}
	type cell struct{ y, noReform float64 }
	cells := make([]cell, len(levels)*len(strategies))
	runIndexed(p.workerCount(), len(cells), func(i int) {
		x := levels[i/len(strategies)]
		strat := strategies[i%len(strategies)]()
		sys := Build(p, SameCategory)
		cfg := sys.CategoryConfig()
		// c_cur is the cluster of category 0.
		members := cfg.Members(0)
		rng := stats.NewRNG(p.Seed ^ 0x5bd1e995 ^ uint64(x*1e6))
		apply(sys, members, x, rng)
		eng := sys.NewEngine(cfg)
		noReform := eng.SCostNormalized()
		runner := sys.NewRunner(eng, strat, false)
		runner.Run()
		cells[i] = cell{y: eng.SCostNormalized(), noReform: noReform}
	})
	for li, x := range levels {
		sel := cells[li*len(strategies)]
		alt := cells[li*len(strategies)+1]
		out.AddPoint(x, sel.y, alt.y, alt.noReform)
	}
	return out
}

// Levels01 is the x axis of Figs. 2-4: 0 to 1 in steps of 0.1.
func Levels01() []float64 {
	out := make([]float64, 0, 11)
	for i := 0; i <= 10; i++ {
		out = append(out, float64(i)/10)
	}
	return out
}

// Fig2Result holds both panels of Fig. 2.
type Fig2Result struct {
	// UpdatedPeers: fraction of c_cur's peers whose workload moved
	// entirely to the data of another cluster (left panel).
	UpdatedPeers *metrics.Series
	// UpdatedWorkload: fraction of every c_cur peer's workload that
	// moved (right panel).
	UpdatedWorkload *metrics.Series
}

// RunFig2 reproduces Fig. 2 (workload updates). The new interest of
// updated peers is category 1, whose data lives in cluster c_new = 1.
func RunFig2(p Params) *Fig2Result {
	const toCat = 1
	left := updateExperiment(p,
		"Fig 2 (left): social cost vs percentage of updated peers",
		"updated-peers",
		Levels01(),
		func(sys *System, members []int, x float64, rng *stats.RNG) {
			k := int(x*float64(len(members)) + 0.5)
			for _, pid := range members[:k] {
				sys.RedirectWorkload(pid, toCat, 1, rng)
			}
		})
	right := updateExperiment(p,
		"Fig 2 (right): social cost vs percentage of updated workload",
		"updated-workload",
		Levels01(),
		func(sys *System, members []int, x float64, rng *stats.RNG) {
			for _, pid := range members {
				sys.RedirectWorkload(pid, toCat, x, rng)
			}
		})
	return &Fig2Result{UpdatedPeers: left, UpdatedWorkload: right}
}

// Fig3Result holds both panels of Fig. 3.
type Fig3Result struct {
	// UpdatedPeers: fraction of c_cur's peers whose data was replaced
	// by another category (left panel).
	UpdatedPeers *metrics.Series
	// UpdatedData: fraction of every c_cur peer's items replaced
	// (right panel).
	UpdatedData *metrics.Series
}

// RunFig3 reproduces Fig. 3 (content updates): the data of c_cur's
// peers is replaced by documents of category 1. Selfish peers have no
// motive to move (their queries are unchanged and the lost category-0
// data exists in no other cluster), while altruistic peers follow
// their new content to the cluster that demands it.
func RunFig3(p Params) *Fig3Result {
	const toCat = 1
	left := updateExperiment(p,
		"Fig 3 (left): social cost vs percentage of updated peers",
		"updated-peers",
		Levels01(),
		func(sys *System, members []int, x float64, rng *stats.RNG) {
			k := int(x*float64(len(members)) + 0.5)
			for _, pid := range members[:k] {
				sys.ReplaceData(pid, toCat, 1, rng)
			}
		})
	right := updateExperiment(p,
		"Fig 3 (right): social cost vs percentage of updated data",
		"updated-data",
		Levels01(),
		func(sys *System, members []int, x float64, rng *stats.RNG) {
			for _, pid := range members {
				sys.ReplaceData(pid, toCat, x, rng)
			}
		})
	return &Fig3Result{UpdatedPeers: left, UpdatedData: right}
}
