package experiments

import (
	"reflect"
	"testing"
)

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		hits := make([]int32, 37)
		runIndexed(workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

// TestTable1ParallelMatchesSerial pins the harness's central promise:
// experiment cells own their RNGs and systems, so the worker count
// changes wall-clock time only — every cell of the parallel run equals
// the serial run exactly, floats included.
func TestTable1ParallelMatchesSerial(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 80

	serial := p
	serial.Workers = 1
	parallel := p
	parallel.Workers = 4

	a := RunTable1(serial)
	b := RunTable1(parallel)
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d differs:\nserial:   %+v\nparallel: %+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

// The figure sweeps build one private system per cell, so they must be
// order-independent too.
func TestFig2ParallelMatchesSerial(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 40

	serial := p
	serial.Workers = 1
	parallel := p
	parallel.Workers = 4

	a := RunFig2(serial)
	b := RunFig2(parallel)
	for _, col := range []string{"selfish", "altruistic", "no-reform"} {
		if !reflect.DeepEqual(a.UpdatedPeers.Column(col), b.UpdatedPeers.Column(col)) {
			t.Errorf("fig2 left column %q differs between serial and parallel runs", col)
		}
		if !reflect.DeepEqual(a.UpdatedWorkload.Column(col), b.UpdatedWorkload.Column(col)) {
			t.Errorf("fig2 right column %q differs between serial and parallel runs", col)
		}
	}
}
