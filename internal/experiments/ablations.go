package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunThetaAblation compares the cluster participation cost functions θ
// discussed in §2.1 (linear for fully connected clusters, logarithmic
// for structured overlays, plus sqrt and constant controls) on the
// same-category scenario from singletons. Cheaper membership growth
// supports larger clusters at equilibrium. One independent cell per θ.
func RunThetaAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: theta function (same-category scenario, singleton init, selfish)",
		"theta", "rounds", "converged", "#clusters", "mean-size", "SCost", "WCost")
	thetas := []cluster.Theta{
		cluster.LinearTheta(), cluster.LogTheta(), cluster.SqrtTheta(), cluster.ConstTheta(),
	}
	for _, row := range p.runRows(len(thetas), func(i int) []string {
		th := thetas[i]
		pp := p
		pp.Theta = th
		sys := Build(pp, SameCategory)
		rng := stats.NewRNG(pp.Seed ^ 0x7f4a7c15)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		sizes := eng.Config().Sizes()
		mean := 0.0
		for _, s := range sizes {
			mean += float64(s)
		}
		if len(sizes) > 0 {
			mean /= float64(len(sizes))
		}
		return []string{th.Name, metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(mean, 1),
			metrics.F(rpt.FinalSCost, 3), metrics.F(rpt.FinalWCost, 3)}
	}) {
		t.AddRow(row...)
	}
	return t
}

// RunEpsilonAblation sweeps the protocol's stop threshold ε: larger
// thresholds terminate earlier at the price of residual cost. One
// independent cell per ε.
func RunEpsilonAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: stop threshold epsilon (same-category scenario, random m=M init, selfish)",
		"epsilon", "rounds", "converged", "#clusters", "SCost", "messages")
	epsilons := []float64{0.0001, 0.001, 0.01, 0.05, 0.1}
	for _, row := range p.runRows(len(epsilons), func(i int) []string {
		eps := epsilons[i]
		pp := p
		pp.Epsilon = eps
		sys := Build(pp, SameCategory)
		rng := stats.NewRNG(pp.Seed ^ 0x2545f491)
		cfg := sys.InitialConfig(InitRandomM, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		return []string{metrics.F(eps, 4), metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3), metrics.I(rpt.Messages)}
	}) {
		t.AddRow(row...)
	}
	return t
}

// RunHybridComparison sweeps the λ mix of the hybrid strategy the paper
// lists as future work (§6): λ = 1 is pure selfish, λ = 0 pure
// altruistic. Cells share one warmed System per scenario.
func RunHybridComparison(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: hybrid strategy lambda sweep (singleton init)",
		"scenario", "lambda", "rounds", "converged", "#clusters", "SCost")
	scenarios := []Scenario{SameCategory, DifferentCategory}
	lambdas := []float64{0, 0.25, 0.5, 0.75, 1}
	systems := buildSystems(p, scenarios, p.workerCount())
	for _, row := range p.runRows(len(scenarios)*len(lambdas), func(i int) []string {
		sc := scenarios[i/len(lambdas)]
		lambda := lambdas[i%len(lambdas)]
		sys := systems[i/len(lambdas)]
		rng := stats.NewRNG(p.Seed ^ 0x85ebca6b)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewHybrid(lambda), true).Run()
		return []string{sc.String(), metrics.F(lambda, 2), metrics.I(rpt.EffectiveRounds()),
			fmt.Sprint(rpt.Converged), metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3)}
	}) {
		t.AddRow(row...)
	}
	return t
}

// RunPairedDemandAblation contrasts the different-category scenario
// with and without reciprocal interests. With paired demand the
// selfish game settles into many small clusters (the paper's Table 1
// shape); without it the demand graph is an open chain and selfish
// reformulation churns in a few giant clusters without converging —
// consistent with the non-convergence results of Moscibroda et al.
// that the paper cites.
func RunPairedDemandAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: paired vs chain demand (different-category scenario, singleton init, selfish)",
		"demand", "rounds", "converged", "#clusters", "SCost", "WCost")
	variants := []bool{true, false}
	for _, row := range p.runRows(len(variants), func(i int) []string {
		paired := variants[i]
		pp := p
		pp.PairedDemand = paired
		sys := Build(pp, DifferentCategory)
		rng := stats.NewRNG(pp.Seed ^ 0xc2b2ae35)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		name := "paired (reciprocal)"
		if !paired {
			name = "chain (open)"
		}
		return []string{name, metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3), metrics.F(rpt.FinalWCost, 3)}
	}) {
		t.AddRow(row...)
	}
	return t
}

// clgainMarginal is an Altruistic variant using the weaker
// DeltaMembershipMarginal reading of §3.1.2, for the clgain ablation.
type clgainMarginal struct{}

func (clgainMarginal) Name() string { return "altruistic-marginal" }

func (clgainMarginal) Decide(e *core.Engine, p int, _ float64, _ bool) core.Decision {
	ev := e.EvaluateContribution(p)
	d := core.Decision{Peer: p, From: ev.Cur}
	if ev.Best == ev.Cur {
		return d
	}
	gain := ev.BestContribution - ev.CurContribution - e.DeltaMembershipMarginal(ev.Best)
	if gain <= 0 {
		return d
	}
	d.To = ev.Best
	d.Gain = gain
	d.Move = true
	return d
}

// RunClgainAblation contrasts the two readings of the altruistic
// clgain's membership charge (§3.1.2 is ambiguous): charging the
// joiner for the total membership-cost increase of the target cluster
// versus only the marginal per-member increase. The marginal reading
// lets the whole network collapse into one cluster. Cells share one
// warmed System per scenario.
func RunClgainAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: altruistic clgain membership charge (singleton init)",
		"scenario", "charge", "rounds", "converged", "#clusters", "SCost")
	scenarios := []Scenario{SameCategory, DifferentCategory}
	strategies := []func() core.Strategy{
		func() core.Strategy { return core.NewAltruistic() },
		func() core.Strategy { return clgainMarginal{} },
	}
	systems := buildSystems(p, scenarios, p.workerCount())
	for _, row := range p.runRows(len(scenarios)*len(strategies), func(i int) []string {
		sc := scenarios[i/len(strategies)]
		strat := strategies[i%len(strategies)]()
		sys := systems[i/len(strategies)]
		rng := stats.NewRNG(p.Seed ^ 0x27d4eb2f)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, strat, true).Run()
		charge := "total"
		if strat.Name() == "altruistic-marginal" {
			charge = "marginal"
		}
		return []string{sc.String(), charge, metrics.I(rpt.EffectiveRounds()),
			fmt.Sprint(rpt.Converged), metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3)}
	}) {
		t.AddRow(row...)
	}
	return t
}

// RunSharedVocabAblation sweeps the fraction of topic-neutral shared
// vocabulary in documents. Shared words put query results in every
// cluster, so even the ideal category clustering retains residual
// recall cost — quantifying how clean the paper's "zero recall cost"
// scenario 1 really needs the data to be. One independent cell per
// fraction (the corpus itself changes).
func RunSharedVocabAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: shared vocabulary fraction (same-category scenario, singleton init, selfish)",
		"shared-fraction", "rounds", "converged", "#clusters", "SCost", "WCost")
	fracs := []float64{0, 0.05, 0.1, 0.2, 0.3}
	for _, row := range p.runRows(len(fracs), func(i int) []string {
		frac := fracs[i]
		pp := p
		pp.Corpus.SharedFraction = frac
		sys := Build(pp, SameCategory)
		rng := stats.NewRNG(pp.Seed ^ 0x165667b1)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		return []string{metrics.F(frac, 2), metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3), metrics.F(rpt.FinalWCost, 3)}
	}) {
		t.AddRow(row...)
	}
	return t
}
