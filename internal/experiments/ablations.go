package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunThetaAblation compares the cluster participation cost functions θ
// discussed in §2.1 (linear for fully connected clusters, logarithmic
// for structured overlays, plus sqrt and constant controls) on the
// same-category scenario from singletons. Cheaper membership growth
// supports larger clusters at equilibrium.
func RunThetaAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: theta function (same-category scenario, singleton init, selfish)",
		"theta", "rounds", "converged", "#clusters", "mean-size", "SCost", "WCost")
	for _, th := range []cluster.Theta{
		cluster.LinearTheta(), cluster.LogTheta(), cluster.SqrtTheta(), cluster.ConstTheta(),
	} {
		pp := p
		pp.Theta = th
		sys := Build(pp, SameCategory)
		rng := stats.NewRNG(pp.Seed ^ 0x7f4a7c15)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		sizes := eng.Config().Sizes()
		mean := 0.0
		for _, s := range sizes {
			mean += float64(s)
		}
		if len(sizes) > 0 {
			mean /= float64(len(sizes))
		}
		t.AddRow(th.Name, metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(mean, 1),
			metrics.F(rpt.FinalSCost, 3), metrics.F(rpt.FinalWCost, 3))
	}
	return t
}

// RunEpsilonAblation sweeps the protocol's stop threshold ε: larger
// thresholds terminate earlier at the price of residual cost.
func RunEpsilonAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: stop threshold epsilon (same-category scenario, random m=M init, selfish)",
		"epsilon", "rounds", "converged", "#clusters", "SCost", "messages")
	for _, eps := range []float64{0.0001, 0.001, 0.01, 0.05, 0.1} {
		pp := p
		pp.Epsilon = eps
		sys := Build(pp, SameCategory)
		rng := stats.NewRNG(pp.Seed ^ 0x2545f491)
		cfg := sys.InitialConfig(InitRandomM, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		t.AddRow(metrics.F(eps, 4), metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3), metrics.I(rpt.Messages))
	}
	return t
}

// RunHybridComparison sweeps the λ mix of the hybrid strategy the paper
// lists as future work (§6): λ = 1 is pure selfish, λ = 0 pure
// altruistic.
func RunHybridComparison(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: hybrid strategy lambda sweep (singleton init)",
		"scenario", "lambda", "rounds", "converged", "#clusters", "SCost")
	for _, sc := range []Scenario{SameCategory, DifferentCategory} {
		sys := Build(p, sc)
		for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
			rng := stats.NewRNG(p.Seed ^ 0x85ebca6b)
			cfg := sys.InitialConfig(InitSingletons, rng)
			eng := sys.NewEngine(cfg)
			rpt := sys.NewRunner(eng, core.NewHybrid(lambda), true).Run()
			t.AddRow(sc.String(), metrics.F(lambda, 2), metrics.I(rpt.EffectiveRounds()),
				fmt.Sprint(rpt.Converged), metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3))
		}
	}
	return t
}

// RunPairedDemandAblation contrasts the different-category scenario
// with and without reciprocal interests. With paired demand the
// selfish game settles into many small clusters (the paper's Table 1
// shape); without it the demand graph is an open chain and selfish
// reformulation churns in a few giant clusters without converging —
// consistent with the non-convergence results of Moscibroda et al.
// that the paper cites.
func RunPairedDemandAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: paired vs chain demand (different-category scenario, singleton init, selfish)",
		"demand", "rounds", "converged", "#clusters", "SCost", "WCost")
	for _, paired := range []bool{true, false} {
		pp := p
		pp.PairedDemand = paired
		sys := Build(pp, DifferentCategory)
		rng := stats.NewRNG(pp.Seed ^ 0xc2b2ae35)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		name := "paired (reciprocal)"
		if !paired {
			name = "chain (open)"
		}
		t.AddRow(name, metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3), metrics.F(rpt.FinalWCost, 3))
	}
	return t
}

// clgainMarginal is an Altruistic variant using the weaker
// DeltaMembershipMarginal reading of §3.1.2, for the clgain ablation.
type clgainMarginal struct{}

func (clgainMarginal) Name() string { return "altruistic-marginal" }

func (clgainMarginal) Decide(e *core.Engine, p int, _ float64, _ bool) core.Decision {
	ev := e.EvaluateContribution(p)
	d := core.Decision{Peer: p, From: ev.Cur}
	if ev.Best == ev.Cur {
		return d
	}
	gain := ev.BestContribution - ev.CurContribution - e.DeltaMembershipMarginal(ev.Best)
	if gain <= 0 {
		return d
	}
	d.To = ev.Best
	d.Gain = gain
	d.Move = true
	return d
}

// RunClgainAblation contrasts the two readings of the altruistic
// clgain's membership charge (§3.1.2 is ambiguous): charging the
// joiner for the total membership-cost increase of the target cluster
// versus only the marginal per-member increase. The marginal reading
// lets the whole network collapse into one cluster.
func RunClgainAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: altruistic clgain membership charge (singleton init)",
		"scenario", "charge", "rounds", "converged", "#clusters", "SCost")
	for _, sc := range []Scenario{SameCategory, DifferentCategory} {
		sys := Build(p, sc)
		for _, strat := range []core.Strategy{core.NewAltruistic(), clgainMarginal{}} {
			rng := stats.NewRNG(p.Seed ^ 0x27d4eb2f)
			cfg := sys.InitialConfig(InitSingletons, rng)
			eng := sys.NewEngine(cfg)
			rpt := sys.NewRunner(eng, strat, true).Run()
			charge := "total"
			if strat.Name() == "altruistic-marginal" {
				charge = "marginal"
			}
			t.AddRow(sc.String(), charge, metrics.I(rpt.EffectiveRounds()),
				fmt.Sprint(rpt.Converged), metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3))
		}
	}
	return t
}

// RunSharedVocabAblation sweeps the fraction of topic-neutral shared
// vocabulary in documents. Shared words put query results in every
// cluster, so even the ideal category clustering retains residual
// recall cost — quantifying how clean the paper's "zero recall cost"
// scenario 1 really needs the data to be.
func RunSharedVocabAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Ablation: shared vocabulary fraction (same-category scenario, singleton init, selfish)",
		"shared-fraction", "rounds", "converged", "#clusters", "SCost", "WCost")
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		pp := p
		pp.Corpus.SharedFraction = frac
		sys := Build(pp, SameCategory)
		rng := stats.NewRNG(pp.Seed ^ 0x165667b1)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		t.AddRow(metrics.F(frac, 2), metrics.I(rpt.EffectiveRounds()), fmt.Sprint(rpt.Converged),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3), metrics.F(rpt.FinalWCost, 3))
	}
	return t
}
