package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// longHaulCell parses one RunLongHaul row into named integers.
func longHaulCell(t *testing.T, row []string) (peak, final, liveQ, compactions, reclaimed int, drift string) {
	t.Helper()
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad cell %q: %v", s, err)
		}
		return n
	}
	return atoi(row[2]), atoi(row[3]), atoi(row[4]), atoi(row[5]), atoi(row[6]), row[7]
}

// TestLongHaulBoundsMemory pins the sweep's reason to exist: under
// novel-query churn the peak distinct-query count grows well past the
// live demand, compaction fires repeatedly, the final count collapses
// back to (near) the live set, and no compaction perturbs the social
// cost by even one ulp.
func TestLongHaulBoundsMemory(t *testing.T) {
	p := fastParams()
	p.Peers = 40
	p.TotalQueries = 240
	p.MaxRounds = 60
	p.Workers = 1

	const phases, churn = 16, 12
	tab := RunLongHaul(p, phases, []int{churn})
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	peak, final, liveQ, compactions, reclaimed, drift := longHaulCell(t, tab.Rows[0])
	// 16 phases x 12 churned peers x 2 novel queries = 384 novel
	// interns over a live demand of ~120 distinct queries.
	if peak < liveQ+100 {
		t.Fatalf("peak %d barely above live %d; churn did not grow query history", peak, liveQ)
	}
	if compactions < 2 {
		t.Fatalf("only %d compactions across %d phases", compactions, phases)
	}
	if reclaimed < 200 {
		t.Fatalf("only %d queries reclaimed", reclaimed)
	}
	// Bounded memory: the final interned set must sit near the live
	// demand — below the 0.5 dead-ratio retrigger point and nowhere
	// near the phase history the peak witnessed.
	if final >= peak {
		t.Fatalf("final %d did not drop from peak %d", final, peak)
	}
	if final > 2*liveQ {
		t.Fatalf("final %d queries for %d live; compaction floor too high", final, liveQ)
	}
	if f, err := strconv.ParseFloat(drift, 64); err != nil || f != 0 {
		t.Fatalf("compaction perturbed the social cost: drift=%q", drift)
	}
}

// TestLongHaulParallelMatchesSerial extends the harness determinism
// pin to the long-haul sweep: the worker count must not change a byte
// of the output.
func TestLongHaulParallelMatchesSerial(t *testing.T) {
	p := fastParams()
	p.Peers = 30
	p.TotalQueries = 180
	p.MaxRounds = 40

	serial := p
	serial.Workers = 1
	parallel := p
	parallel.Workers = 4

	a := RunLongHaul(serial, 6, []int{3, 6})
	b := RunLongHaul(parallel, 6, []int{3, 6})
	if a.CSV() != b.CSV() {
		t.Fatalf("worker count changed the long-haul output:\nserial:\n%s\nparallel:\n%s",
			strings.TrimSpace(a.CSV()), strings.TrimSpace(b.CSV()))
	}
}
