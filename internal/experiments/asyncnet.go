package experiments

import (
	"fmt"

	"repro/internal/asyncnet"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// asyncNetProfiles are the fault plans the asyncnet driver sweeps:
// a perfect network (which must reproduce the oracle exactly), a
// latency+reordering plan, and a lossy plan with drops and straggler
// representatives.
func asyncNetProfiles() []struct {
	name string
	plan asyncnet.FaultPlan
} {
	return []struct {
		name string
		plan asyncnet.FaultPlan
	}{
		{"async/ideal", asyncnet.FaultPlan{}},
		{"async/latency", asyncnet.FaultPlan{
			LatencyMean: 3, LatencyJitter: 2, ReorderProb: 0.15,
		}},
		{"async/lossy", asyncnet.FaultPlan{
			LatencyMean: 3, LatencyJitter: 2, ReorderProb: 0.10,
			DropProb: 0.03, StragglerFrac: 0.10, StragglerFactor: 8,
		}},
	}
}

// RunAsyncNet measures the actor-runtime execution of the protocol
// (internal/asyncnet) against the synchronous oracle: per scenario, one
// oracle row plus one row per fault profile, reporting convergence
// quality (ΔSCost vs the oracle), round/move/message counts and
// transport losses. The ideal-network rows are byte-identical to the
// oracle rows by construction — the property the asyncnet test suite
// pins — so any divergence in this table is injected faults at work,
// not runtime drift.
func RunAsyncNet(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: asynchronous actor runtime vs synchronous oracle (singleton init, selfish, virtual time)",
		"scenario", "mode", "converged", "rounds", "moves", "#clusters", "SCost", "dSCost", "msgs", "dropped")
	scenarios := []Scenario{SameCategory, DifferentCategory, Uniform}
	profiles := asyncNetProfiles()
	perScenario := 1 + len(profiles)
	systems := buildSystems(p, scenarios, p.workerCount())
	for _, row := range p.runRows(perScenario*len(scenarios), func(i int) []string {
		sc := scenarios[i/perScenario]
		sys := systems[i/perScenario]
		mode := i % perScenario
		// Every cell runs the oracle on a private engine: mode 0
		// reports it, fault cells report their delta against it.
		rng := stats.NewRNG(p.Seed ^ 0x3c6ef372fe94f82a)
		engOracle := sys.NewEngine(sys.InitialConfig(InitSingletons, rng))
		oracle := sys.NewRunner(engOracle, core.NewSelfish(), true).Run()
		if mode == 0 {
			moves := 0
			for _, rr := range oracle.Rounds {
				moves += rr.Granted
			}
			return []string{sc.String(), "oracle(sync)", fmt.Sprint(oracle.Converged),
				metrics.I(oracle.RoundsRun), metrics.I(moves),
				metrics.I(oracle.FinalClusters), metrics.F(oracle.FinalSCost, 3),
				metrics.F(0, 3), metrics.I(oracle.Messages), metrics.I(0)}
		}
		prof := profiles[mode-1]
		rng = stats.NewRNG(p.Seed ^ 0x3c6ef372fe94f82a)
		engAsync := sys.NewEngine(sys.InitialConfig(InitSingletons, rng))
		rpt := asyncnet.Run(engAsync, core.NewSelfish(), asyncnet.Options{
			Epsilon:          p.Epsilon,
			MaxRounds:        p.MaxRounds,
			AllowNewClusters: true,
			Seed:             p.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)),
			Faults:           prof.plan,
		})
		return []string{sc.String(), prof.name, fmt.Sprint(rpt.Converged),
			metrics.I(rpt.Rounds), metrics.I(rpt.Granted),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3),
			metrics.F(rpt.FinalSCost-oracle.FinalSCost, 3),
			metrics.I(rpt.Messages), metrics.I(rpt.Dropped)}
	}) {
		t.AddRow(row...)
	}
	return t
}
