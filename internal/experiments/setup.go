// Package experiments contains one driver per table and figure of the
// paper's evaluation (§4) plus the ablations listed in DESIGN.md. Every
// driver is deterministic given a seed and returns metrics tables or
// series that cmd/reform renders.
//
// # Parallel execution
//
// The experiment cells of a driver — one (scenario, init, strategy)
// run for Table 1, one (level, strategy) point for the figure sweeps —
// are independent: each owns its RNG (derived from the seed, never
// from scheduling), its cluster configuration and its cost engine.
// Drivers therefore fan cells out over a worker pool sized by
// Params.Workers (default: one worker per CPU) and assemble results in
// a fixed cell order, so the output is byte-identical for every worker
// count, including the serial Workers=1 path.
//
// Cells that share a built System only read it; System.Warm
// precomputes the lazily built peer query indexes up front so those
// reads are race-free. Cells that perturb peer content or workloads
// (the update experiments) build a private System per cell instead.
package experiments

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scenario selects the data/query distribution of §4.1.
type Scenario int

const (
	// SameCategory: both the data and the queries of a peer fall into
	// the same category.
	SameCategory Scenario = iota
	// DifferentCategory: each peer holds data of a single category and
	// queries a single but different category.
	DifferentCategory
	// Uniform: data and queries of each peer are drawn uniformly at
	// random from all categories.
	Uniform
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case SameCategory:
		return "same-category"
	case DifferentCategory:
		return "different-category"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// InitKind selects the initial system configuration of §4.1.
type InitKind int

const (
	// InitSingletons: each peer forms its own cluster (case i).
	InitSingletons InitKind = iota
	// InitRandomM: peers are randomly distributed to m = M clusters
	// (case ii).
	InitRandomM
	// InitFewer: peers belong to m < M clusters (case iii).
	InitFewer
	// InitMore: peers belong to m > M clusters (case iv).
	InitMore
)

// String implements fmt.Stringer.
func (k InitKind) String() string {
	switch k {
	case InitSingletons:
		return "i (singletons)"
	case InitRandomM:
		return "ii (m=M)"
	case InitFewer:
		return "iii (m<M)"
	case InitMore:
		return "iv (m>M)"
	}
	return fmt.Sprintf("init(%d)", int(k))
}

// Params bundles every knob of the evaluation. DefaultParams mirrors
// the paper's setting.
type Params struct {
	// Peers is |P| (the paper uses 200).
	Peers int
	// Categories is the number of topical categories (10).
	Categories int
	// DocsPerPeer is how many articles each peer shares.
	DocsPerPeer int
	// TotalQueries is num(Q), the size of the global query list.
	TotalQueries int
	// DistinctQueriesPerPeer bounds how many distinct query words each
	// peer's local workload spans. Peers have focused interests: a few
	// specific words queried repeatedly. Small values concentrate a
	// peer's recall demand on few supplier peers, which is what lets
	// the different-category scenario settle into many small clusters
	// (the paper reports ~90).
	DistinctQueriesPerPeer int
	// DemandZipfS skews how queries are apportioned to peers ("some
	// peers are more demanding than others"). 0 gives every peer the
	// same share (the §4.2 setting).
	DemandZipfS float64
	// PairedDemand applies to the different-category scenario: when
	// true (the default via DefaultParams), a peer of type
	// (data=i, query=j) draws its query words from the documents of
	// the reciprocal peers (data=j, query=i). Interests are then
	// mutual, which is what lets the selfish game settle into the many
	// small clusters Table 1 reports for this scenario; without it the
	// demand graph is an open chain and selfish reformulation churns
	// forever (shown by the paired-demand ablation and consistent with
	// the non-convergence results of Moscibroda et al. that the paper
	// cites).
	PairedDemand bool
	// Alpha is the membership-cost weight (α = 1 in the paper).
	Alpha float64
	// Epsilon is the protocol's gain threshold (0.001).
	Epsilon float64
	// MaxRounds caps protocol runs.
	MaxRounds int
	// Theta is the cluster participation cost function (linear).
	Theta cluster.Theta
	// Corpus configures the synthetic article generator.
	Corpus corpus.Config
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds how many experiment cells run concurrently; 0 (the
	// default) means one worker per available CPU. Results are
	// independent of the value — cells are deterministic per seed and
	// assembled in a fixed order — so Workers only trades wall-clock
	// time for cores.
	Workers int
}

// DefaultParams returns the paper's experimental setting.
func DefaultParams() Params {
	return Params{
		Peers:                  200,
		Categories:             10,
		DocsPerPeer:            5,
		TotalQueries:           2000,
		DistinctQueriesPerPeer: 3,
		DemandZipfS:            0.8,
		PairedDemand:           true,
		Alpha:                  1,
		Epsilon:                0.001,
		MaxRounds:              300,
		Theta:                  cluster.LinearTheta(),
		Corpus: corpus.Config{
			Categories:       10,
			VocabPerCategory: 2000,
			SharedVocab:      50,
			WordsPerDoc:      30,
			TermZipfS:        0.7,
			// Documents are pure category text by default: the Table 1
			// scenario-1 ideal has zero recall cost only when query
			// results never straddle categories. The shared-vocabulary
			// ablation turns this up.
			SharedFraction: 0,
			MorphNoise:     0.3,
			StopNoise:      0.5,
		},
		Seed: 1,
	}
}

// Scaled shrinks the workload for fast tests and benchmarks while
// preserving the scenario shape: peers and queries scale by 1/f.
func (p Params) Scaled(f int) Params {
	if f <= 1 {
		return p
	}
	p.Peers = maxInt(p.Categories*2, p.Peers/f)
	p.TotalQueries = maxInt(p.Peers*4, p.TotalQueries/f)
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// System is a fully built instance of the paper's simulated network:
// content, workload and category bookkeeping, ready to be wired to a
// core engine under some initial configuration.
type System struct {
	Params   Params
	Scenario Scenario
	Gen      *corpus.Generator
	Peers    []*peer.Peer
	WL       *workload.Workload
	// DataCat and QueryCat record each peer's category assignment
	// (-1 under the uniform scenario).
	DataCat, QueryCat []int
	// M is the natural cluster count of the scenario: the number of
	// categories for same-category, the number of ordered category
	// pairs for different-category.
	M int
	// pools[c] holds the terms of category c occurring in generated
	// documents, one entry per (document, distinct term) pair. Queries
	// are drawn uniformly from this urn — the paper generates queries
	// "by choosing a random word from the texts", so a word's chance of
	// being queried is proportional to its document frequency.
	pools [][]attr.ID
	// typePools mirrors pools per (dataCat, queryCat) peer type; only
	// populated for the different-category scenario under PairedDemand.
	typePools map[[2]int][]attr.ID
	// novelSeq numbers the never-before-seen query words JoinPeerNovel
	// mints for the long-haul churn sweep.
	novelSeq int
}

// Build constructs the System for a scenario.
func Build(p Params, sc Scenario) *System {
	gen := corpus.NewGenerator(p.Corpus, p.Seed)
	root := stats.NewRNG(p.Seed ^ 0xabcdef12345)
	rngDocs := root.Split()
	rngAssign := root.Split()
	rngWl := root.Split()

	sys := &System{
		Params:   p,
		Scenario: sc,
		Gen:      gen,
		WL:       workload.New(p.Peers),
		DataCat:  make([]int, p.Peers),
		QueryCat: make([]int, p.Peers),
		pools:    make([][]attr.ID, p.Categories),
	}

	// Category typing per scenario.
	switch sc {
	case SameCategory:
		sys.M = p.Categories
		for i := 0; i < p.Peers; i++ {
			c := i % p.Categories
			sys.DataCat[i], sys.QueryCat[i] = c, c
		}
	case DifferentCategory:
		// Ordered pairs (i,j), i != j: C*(C-1) peer types.
		sys.M = p.Categories * (p.Categories - 1)
		t := 0
		for i := 0; i < p.Peers; i++ {
			di := t / (p.Categories - 1)
			off := t % (p.Categories - 1)
			qi := off
			if qi >= di {
				qi++
			}
			sys.DataCat[i], sys.QueryCat[i] = di, qi
			t = (t + 1) % sys.M
		}
	case Uniform:
		sys.M = p.Categories
		for i := 0; i < p.Peers; i++ {
			sys.DataCat[i], sys.QueryCat[i] = -1, -1
		}
	}

	// Content: DocsPerPeer articles per peer; uniform scenario draws a
	// fresh random category per document.
	sys.Peers = make([]*peer.Peer, p.Peers)
	for i := 0; i < p.Peers; i++ {
		pr := peer.New(i)
		items := make([]attr.Set, 0, p.DocsPerPeer)
		for d := 0; d < p.DocsPerPeer; d++ {
			cat := sys.DataCat[i]
			if cat < 0 {
				cat = rngAssign.Intn(p.Categories)
			}
			doc := gen.DocumentRNG(cat, rngDocs)
			items = append(items, doc.Terms)
			sys.addToPool(cat, doc.Terms.IDs())
			if sc == DifferentCategory && p.PairedDemand {
				key := [2]int{sys.DataCat[i], sys.QueryCat[i]}
				if sys.typePools == nil {
					sys.typePools = make(map[[2]int][]attr.ID)
				}
				sys.typePools[key] = append(sys.typePools[key], doc.Terms.IDs()...)
			}
		}
		pr.SetItems(items)
		sys.Peers[i] = pr
	}

	// Workload: TotalQueries instances apportioned by a Zipf law over a
	// shuffled peer order, each instance a random word from the texts
	// of the peer's query category.
	counts := demandCounts(p, rngWl)
	distinct := p.DistinctQueriesPerPeer
	if distinct <= 0 {
		distinct = 3
	}
	for i := 0; i < p.Peers; i++ {
		cat := sys.QueryCat[i]
		if cat < 0 {
			cat = rngWl.Intn(p.Categories)
		}
		// Under paired demand, the peer's interests target the
		// documents of its reciprocal type (data=queryCat, query=dataCat).
		var partnerPool []attr.ID
		if sys.typePools != nil {
			partnerPool = sys.typePools[[2]int{sys.QueryCat[i], sys.DataCat[i]}]
		}
		words := make([]attr.ID, 0, distinct)
		for len(words) < distinct {
			if len(partnerPool) > 0 {
				words = append(words, partnerPool[rngWl.Intn(len(partnerPool))])
			} else {
				words = append(words, sys.SampleQueryWord(cat, rngWl))
			}
		}
		// Spread the peer's query instances over its words with a mild
		// skew (first word dominates), keeping every word queried at
		// least once when the budget allows.
		w := stats.ZipfWeights(len(words), 1)
		left := counts[i]
		for k, word := range words {
			c := int(w[k]*float64(counts[i]) + 0.5)
			if c < 1 {
				c = 1
			}
			if c > left {
				c = left
			}
			if c == 0 {
				break
			}
			sys.WL.Add(i, attr.NewSet(word), c)
			left -= c
		}
		if left > 0 {
			sys.WL.Add(i, attr.NewSet(words[0]), left)
		}
	}
	return sys
}

// demandCounts apportions TotalQueries across peers: Zipf-skewed when
// DemandZipfS > 0, exactly equal shares when it is 0 (Property 1's
// uniform split, used by §4.2).
func demandCounts(p Params, rng *stats.RNG) []int {
	counts := make([]int, p.Peers)
	if p.DemandZipfS == 0 {
		for i := range counts {
			counts[i] = p.TotalQueries / p.Peers
			if counts[i] == 0 {
				counts[i] = 1
			}
		}
		return counts
	}
	w := stats.ZipfWeights(p.Peers, p.DemandZipfS)
	order := rng.Perm(p.Peers)
	for rank, pi := range order {
		c := int(w[rank]*float64(p.TotalQueries) + 0.5)
		if c < 1 {
			c = 1
		}
		counts[pi] = c
	}
	return counts
}

// addToPool records one document's distinct terms into its category's
// query urn. Terms are credited to the category that owns them in the
// vocabulary, so shared-vocabulary words never pollute a category pool.
func (s *System) addToPool(cat int, ids []attr.ID) {
	for _, id := range ids {
		c, ok := s.Gen.CategoryOf(id)
		if !ok || c != cat {
			continue
		}
		s.pools[cat] = append(s.pools[cat], id)
	}
}

// SampleQueryWord draws a document-frequency-weighted random word from
// the texts of category cat.
func (s *System) SampleQueryWord(cat int, rng *stats.RNG) attr.ID {
	pool := s.pools[cat]
	if len(pool) == 0 {
		// No document of this category was generated (possible only in
		// tiny test systems); fall back to the vocabulary distribution.
		return s.Gen.QueryWordRNG(cat, rng)
	}
	return pool[rng.Intn(len(pool))]
}

// RefreshPool rebuilds the term pool of category cat from the current
// peer contents (content-update experiments replace documents).
func (s *System) RefreshPool(cat int) {
	s.pools[cat] = nil
	for _, pr := range s.Peers {
		for _, it := range pr.Items() {
			s.addToPool(cat, it.IDs())
		}
	}
}

// InitialConfig builds one of the §4.1 starting configurations.
func (s *System) InitialConfig(kind InitKind, rng *stats.RNG) *cluster.Config {
	n := s.Params.Peers
	switch kind {
	case InitSingletons:
		return cluster.NewSingletons(n)
	case InitRandomM:
		return randomConfig(n, minInt(s.M, n), rng)
	case InitFewer:
		// Clamp to n: heavily scaled-down systems can have fewer peers
		// than M/2 natural clusters (cluster IDs must stay below Cmax).
		return randomConfig(n, minInt(n, maxInt(2, s.M/2)), rng)
	case InitMore:
		return randomConfig(n, minInt(n, 2*s.M), rng)
	}
	panic(fmt.Sprintf("experiments: unknown init kind %d", kind))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func randomConfig(n, m int, rng *stats.RNG) *cluster.Config {
	assign := make([]cluster.CID, n)
	for i := range assign {
		assign[i] = cluster.CID(rng.Intn(m))
	}
	return cluster.FromAssignment(assign)
}

// CategoryConfig assigns every peer to the cluster of its data
// category — the ideal clustering of the same-category scenario and
// the "good configuration" §4.2 starts from. It panics under the
// uniform scenario, which has no category structure.
func (s *System) CategoryConfig() *cluster.Config {
	assign := make([]cluster.CID, s.Params.Peers)
	for i, c := range s.DataCat {
		if c < 0 {
			panic("experiments: CategoryConfig on uniform scenario")
		}
		assign[i] = cluster.CID(c)
	}
	return cluster.FromAssignment(assign)
}

// Warm precomputes every peer's query-answering structures (posting
// lists and result-count caches) for the current workload. Peers build
// these lazily on first use, which is a data race when several
// goroutines construct engines over a shared System; drivers that fan
// cells out over shared systems call Warm once beforehand, after which
// concurrent engine builds only read. Warm does not change any result.
func (s *System) Warm() {
	nq := s.WL.NumQueries()
	for _, pr := range s.Peers {
		for q := 0; q < nq; q++ {
			pr.ResultCount(s.WL.Query(workload.QID(q)))
		}
	}
}

// NewEngine wires the system to a fresh core engine over cfg.
func (s *System) NewEngine(cfg *cluster.Config) *core.Engine {
	return core.New(s.Peers, s.WL, cfg, s.Params.Theta, s.Params.Alpha)
}

// NewRunner builds a protocol runner with the system's parameters.
func (s *System) NewRunner(eng *core.Engine, strat core.Strategy, allowNew bool) *protocol.Runner {
	return s.NewRunnerWorkers(eng, strat, allowNew, 0)
}

// NewRunnerWorkers is NewRunner with a phase-1 decide worker pool of
// the given size (0 or 1: serial). Reports are byte-identical for any
// value. Experiment drivers keep the serial protocol — their
// parallelism lives at the cell level — while serving layers pass
// their core budget through.
func (s *System) NewRunnerWorkers(eng *core.Engine, strat core.Strategy, allowNew bool, workers int) *protocol.Runner {
	return protocol.NewRunner(eng, strat, protocol.Options{
		Epsilon:          s.Params.Epsilon,
		MaxRounds:        s.Params.MaxRounds,
		AllowNewClusters: allowNew,
		Workers:          workers,
	})
}
