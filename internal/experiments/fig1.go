package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Fig1Result holds the per-round cost trajectories of Fig. 1: social
// cost (left plot) and workload cost (right plot) for the selfish and
// altruistic strategies on the same-category scenario.
type Fig1Result struct {
	SCost *metrics.Series
	WCost *metrics.Series
}

// RunFig1 reproduces Fig. 1: starting from the random m = M initial
// configuration of scenario 1, it records the normalized social and
// workload cost after every protocol round. The paper's observation:
// demanding peers are granted relocation first, so the workload cost
// falls faster in early rounds while the social cost falls roughly
// linearly.
func RunFig1(p Params, rounds int) *Fig1Result {
	if rounds <= 0 {
		// The paper's runs converge within ~10 rounds; our random
		// initial configurations take longer (see EXPERIMENTS.md), so
		// the default window is wider.
		rounds = 50
	}
	sys := Build(p, SameCategory)
	sc := metrics.NewSeries("Fig 1 (left): social cost per round", "round")
	wc := metrics.NewSeries("Fig 1 (right): workload cost per round", "round")
	sc.AddColumn("selfish")
	sc.AddColumn("altruistic")
	wc.AddColumn("selfish")
	wc.AddColumn("altruistic")

	type traj struct{ s, w []float64 }
	strategies := []func() core.Strategy{
		func() core.Strategy { return core.NewSelfish() },
		func() core.Strategy { return core.NewAltruistic() },
	}
	workers := p.workerCount()
	if workers > 1 {
		sys.Warm()
	}
	trajs := make([]traj, len(strategies))
	runIndexed(workers, len(strategies), func(i int) {
		strat := strategies[i]()
		rng := stats.NewRNG(p.Seed ^ 0x9e3779b97f4a7c15)
		cfg := sys.InitialConfig(InitRandomM, rng)
		eng := sys.NewEngine(cfg)
		runner := sys.NewRunner(eng, strat, true)
		runner.BeginPeriod()
		ss := []float64{eng.SCostNormalized()}
		ws := []float64{eng.WCostNormalized()}
		for round := 1; round <= rounds; round++ {
			rr := runner.RunRound(round)
			ss = append(ss, rr.SCost)
			ws = append(ws, rr.WCost)
			if rr.Requests == 0 {
				// Hold the converged value for the remaining rounds so
				// both trajectories have equal length.
				for len(ss) <= rounds {
					ss = append(ss, rr.SCost)
					ws = append(ws, rr.WCost)
				}
				break
			}
		}
		trajs[i] = traj{s: ss, w: ws}
	})
	sel, alt := trajs[0], trajs[1]
	for r := 0; r <= rounds; r++ {
		sc.AddPoint(float64(r), sel.s[r], alt.s[r])
		wc.AddPoint(float64(r), sel.w[r], alt.w[r])
	}
	return &Fig1Result{SCost: sc, WCost: wc}
}
