package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount resolves the Workers knob: a positive value is used as
// is, zero (the default) means one worker per available CPU.
func (p Params) workerCount() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runIndexed executes fn(0), ..., fn(n-1), spreading the calls over at
// most w workers. With w <= 1 it degenerates to a plain loop, so the
// serial and parallel paths execute identical task code.
//
// Tasks must be independent and deterministic per index: every
// experiment cell owns its own RNG (derived from the seed, never from
// execution order) and writes its result to a preallocated slot, so
// the assembled output is byte-identical for any worker count.
// runRows executes cell(0), ..., cell(n-1) on the worker pool and
// returns the produced rows in index order — the shape shared by every
// table driver whose cells each yield one row.
func (p Params) runRows(n int, cell func(i int) []string) [][]string {
	rows := make([][]string, n)
	runIndexed(p.workerCount(), n, func(i int) { rows[i] = cell(i) })
	return rows
}

// buildSystems builds one System per scenario on the worker pool,
// pre-warming the lazy peer indexes whenever cells will share the
// systems across goroutines (workers > 1).
func buildSystems(p Params, scenarios []Scenario, workers int) []*System {
	systems := make([]*System, len(scenarios))
	runIndexed(workers, len(scenarios), func(i int) {
		systems[i] = Build(p, scenarios[i])
		if workers > 1 {
			systems[i].Warm()
		}
	})
	return systems
}

func runIndexed(w, n int, fn func(i int)) {
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
