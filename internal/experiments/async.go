package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunAsyncComparison contrasts the paper's coordinated two-phase
// protocol with asynchronous best-response dynamics (peers move one at
// a time, no representatives, no lock rule) — the "asynchronous
// players" game variation §6 lists as future work.
func RunAsyncComparison(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: coordinated protocol vs asynchronous best response (singleton init, selfish)",
		"scenario", "mode", "converged", "rounds/passes", "moves", "#clusters", "SCost")
	scenarios := []Scenario{SameCategory, DifferentCategory, Uniform}
	systems := buildSystems(p, scenarios, p.workerCount())
	// Two independent cells per scenario — the coordinated protocol and
	// asynchronous best-response dynamics from the same start — sharing
	// the scenario's warmed System.
	for _, row := range p.runRows(2*len(scenarios), func(i int) []string {
		sc := scenarios[i/2]
		sys := systems[i/2]
		rng := stats.NewRNG(p.Seed ^ 0xd6e8feb8)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		if i%2 == 0 {
			rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
			moves := 0
			for _, rr := range rpt.Rounds {
				moves += rr.Granted
			}
			return []string{sc.String(), "protocol", fmt.Sprint(rpt.Converged),
				metrics.I(rpt.EffectiveRounds()), metrics.I(moves),
				metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3)}
		}
		dyn := eng.BestResponseDynamics(stats.NewRNG(p.Seed^0xa511e9b3), p.Epsilon, p.MaxRounds)
		return []string{sc.String(), "async-BR", fmt.Sprint(dyn.Converged),
			metrics.I(dyn.Passes), metrics.I(dyn.Moves),
			metrics.I(eng.Config().NumNonEmpty()), metrics.F(dyn.FinalSCost, 3)}
	}) {
		t.AddRow(row...)
	}
	return t
}
