package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunAsyncComparison contrasts the paper's coordinated two-phase
// protocol with asynchronous best-response dynamics (peers move one at
// a time, no representatives, no lock rule) — the "asynchronous
// players" game variation §6 lists as future work.
func RunAsyncComparison(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: coordinated protocol vs asynchronous best response (singleton init, selfish)",
		"scenario", "mode", "converged", "rounds/passes", "moves", "#clusters", "SCost")
	for _, sc := range []Scenario{SameCategory, DifferentCategory, Uniform} {
		sys := Build(p, sc)

		// Coordinated protocol.
		rng := stats.NewRNG(p.Seed ^ 0xd6e8feb8)
		cfg := sys.InitialConfig(InitSingletons, rng)
		eng := sys.NewEngine(cfg)
		rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
		moves := 0
		for _, rr := range rpt.Rounds {
			moves += rr.Granted
		}
		t.AddRow(sc.String(), "protocol", fmt.Sprint(rpt.Converged),
			metrics.I(rpt.EffectiveRounds()), metrics.I(moves),
			metrics.I(rpt.FinalClusters), metrics.F(rpt.FinalSCost, 3))

		// Asynchronous best-response dynamics from the same start.
		rng = stats.NewRNG(p.Seed ^ 0xd6e8feb8)
		cfg = sys.InitialConfig(InitSingletons, rng)
		eng = sys.NewEngine(cfg)
		dyn := eng.BestResponseDynamics(stats.NewRNG(p.Seed^0xa511e9b3), p.Epsilon, p.MaxRounds)
		t.AddRow(sc.String(), "async-BR", fmt.Sprint(dyn.Converged),
			metrics.I(dyn.Passes), metrics.I(dyn.Moves),
			metrics.I(eng.Config().NumNonEmpty()), metrics.F(dyn.FinalSCost, 3))
	}
	return t
}
