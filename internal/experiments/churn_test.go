package experiments

import (
	"strconv"
	"testing"
)

// TestChurnDeterministicAcrossWorkers pins the churn driver's output
// to be byte-identical for every worker-pool setting (the driver's
// membership trace is sequential; the worker knob must not leak into
// it) and across repeated runs.
func TestChurnDeterministicAcrossWorkers(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60
	base := ""
	for _, w := range []int{1, 1, 2, 4} {
		pp := p
		pp.Workers = w
		got := RunChurn(pp, 3, 0.1).CSV()
		if base == "" {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("workers=%d churn output diverged:\n%s\nwant:\n%s", w, got, base)
		}
	}
}

// TestFlashCrowdDeterministicAcrossWorkers pins the flash-crowd sweep
// (whose burst cells do fan out over the pool) to byte-identical
// output for every worker count.
func TestFlashCrowdDeterministicAcrossWorkers(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60
	bursts := []int{4, 8, 12}
	base := ""
	for _, w := range []int{1, 2, 4} {
		pp := p
		pp.Workers = w
		got := RunFlashCrowd(pp, bursts).CSV()
		if base == "" {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("workers=%d flash-crowd output diverged:\n%s\nwant:\n%s", w, got, base)
		}
	}
}

// TestFlashCrowdRecovers checks the scenario's shape: the arrival
// burst raises the social cost, maintenance absorbs some of it, and
// after the crowd departs maintenance restores a cost close to the
// settled one, with the population back at its original size.
func TestFlashCrowdRecovers(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 100
	tb := RunFlashCrowd(p, []int{12})
	if len(tb.Rows) != 1 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	row := tb.Rows[0]
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", s, err)
		}
		return v
	}
	settled, arrival := parse(row[1]), parse(row[2])
	absorbed, recovered := parse(row[3]), parse(row[6])
	if arrival <= settled {
		t.Errorf("arrival burst did not raise cost: settled %g arrival %g", settled, arrival)
	}
	if absorbed > arrival+1e-9 {
		t.Errorf("maintenance worsened the burst: arrival %g absorbed %g", arrival, absorbed)
	}
	if recovered > settled+0.05 {
		t.Errorf("system did not recover: settled %g recovered %g", settled, recovered)
	}
}

// TestChurnScalesWithoutRebuild is a smoke test that a churn sweep on
// a larger population stays on the incremental path (it would time out
// if every period paid a full rebuild of a 10k-slot engine; here we
// use a moderate size to keep CI fast while still exercising slot
// growth and reuse at scale).
func TestChurnScalesWithoutRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := fastParams()
	p.Peers = 300
	p.TotalQueries = 1200
	p.MaxRounds = 30
	s := RunChurn(p, 3, 0.02)
	if s.Len() != 3 {
		t.Fatalf("periods=%d", s.Len())
	}
}
