package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunInterleaved measures what the stepped maintenance scheduler buys:
// join/leave latency while a reformulation period is in progress. A
// churner goroutine issues join+leave pairs against the engine mutex
// while maintenance runs under three regimes:
//
//   - idle: no maintenance at all — the floor for a mutation.
//   - monolithic: each period runs to completion under one mutex hold
//     (the pre-scheduler behavior); a mutation arriving mid-period
//     waits for every remaining round.
//   - step-K: the period is a resumable protocol.Period advanced K
//     work units per hold, the mutex released between steps; a
//     mutation waits for at most one step.
//
// Each regime runs the same number of periods over its own private
// system (churn mutates the shared workload) from a singleton start,
// so periods have real work. The table reports the observed mutation
// count and its latency distribution. Latencies are wall-clock — this
// driver measures scheduling, so unlike the cost experiments its
// numbers vary run to run; the structure (monolithic p99 of the order
// of a period, stepped p99 of the order of a step) is the result.
func RunInterleaved(p Params, budgets []int) *metrics.Table {
	if len(budgets) == 0 {
		budgets = []int{1, 16, 128}
	}
	t := metrics.NewTable("Extension: join/leave latency vs in-progress maintenance (stepped scheduler)",
		"regime", "periods", "period-ms", "mutations", "p50-ms", "p95-ms", "p99-ms", "max-ms")
	const periods = 4
	t.AddRow(interleavedCell(p, "idle", 0, false, periods)...)
	t.AddRow(interleavedCell(p, "monolithic", 0, true, periods)...)
	for _, b := range budgets {
		t.AddRow(interleavedCell(p, fmt.Sprintf("step-%d", b), b, true, periods)...)
	}
	return t
}

// interleavedCell runs one regime and renders its row. Cells run
// serially — concurrent cells would contend for cores and corrupt
// each other's latency numbers.
func interleavedCell(p Params, name string, budget int, maintain bool, periods int) []string {
	sys := Build(p, SameCategory)
	rng := stats.NewRNG(p.Seed ^ 0x2545f4914f6cdd1d)
	eng := sys.NewEngine(sys.InitialConfig(InitSingletons, rng))
	runner := sys.NewRunnerWorkers(eng, core.NewSelfish(), true, runtime.GOMAXPROCS(0))

	var mu sync.Mutex
	done := make(chan struct{})
	var maintMs float64

	// The churner: join+leave pairs against the mutex until
	// maintenance finishes (or, idle, for a fixed op count).
	var lat []float64
	churn := func(stop <-chan struct{}, ops int) {
		for i := 0; ops <= 0 || i < ops; i++ {
			if stop != nil {
				select {
				case <-stop:
					return
				default:
				}
			}
			cat := rngIntn(i, p.Categories)
			t0 := time.Now()
			mu.Lock()
			pid := sys.JoinPeer(eng, cat, cat, rng)
			mu.Unlock()
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
			t0 = time.Now()
			mu.Lock()
			sys.LeavePeer(eng, pid)
			mu.Unlock()
			lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
			runtime.Gosched()
		}
	}

	if !maintain {
		start := time.Now()
		churn(nil, 200)
		maintMs = float64(time.Since(start).Nanoseconds()) / 1e6
	} else {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done)
			start := time.Now()
			for period := 0; period < periods; period++ {
				if budget <= 0 {
					// Monolithic: the whole period under one hold.
					mu.Lock()
					runner.Run()
					mu.Unlock()
					continue
				}
				mu.Lock()
				per := runner.Begin()
				for {
					if per.Step(budget) {
						mu.Unlock()
						break
					}
					mu.Unlock()
					runtime.Gosched()
					mu.Lock()
				}
			}
			maintMs = float64(time.Since(start).Nanoseconds()) / 1e6
		}()
		churn(done, 0)
		wg.Wait()
	}

	sort.Float64s(lat)
	row := []string{name, metrics.I(periods), metrics.F(maintMs, 1), metrics.I(len(lat))}
	if len(lat) == 0 {
		return append(row, "-", "-", "-", "-")
	}
	return append(row,
		metrics.F(stats.Quantile(lat, 0.50), 3),
		metrics.F(stats.Quantile(lat, 0.95), 3),
		metrics.F(stats.Quantile(lat, 0.99), 3),
		metrics.F(lat[len(lat)-1], 3))
}

// rngIntn is a tiny deterministic category picker that keeps the
// churner free of the shared RNG outside the mutex.
func rngIntn(i, n int) int {
	if n <= 0 {
		return 0
	}
	return (i * 2654435761 >> 8) % n
}
