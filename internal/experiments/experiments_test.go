package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fastParams is a small but structured instance used by most driver
// tests: 60 peers over 6 categories.
func fastParams() Params {
	p := DefaultParams()
	p.Peers = 60
	p.Categories = 6
	p.Corpus.Categories = 6
	p.TotalQueries = 360
	p.MaxRounds = 150
	return p
}

func TestBuildInvariants(t *testing.T) {
	for _, sc := range []Scenario{SameCategory, DifferentCategory, Uniform} {
		p := fastParams()
		sys := Build(p, sc)
		if err := sys.WL.Validate(); err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		// Zipf apportioning rounds per peer; the realized total may be
		// off by a few instances.
		if got := sys.WL.Total(); got < p.TotalQueries*9/10 || got > p.TotalQueries*11/10 {
			t.Errorf("%v: workload %d far from requested %d", sc, got, p.TotalQueries)
		}
		for i, pr := range sys.Peers {
			if pr.NumItems() != p.DocsPerPeer {
				t.Fatalf("%v peer %d: %d items", sc, i, pr.NumItems())
			}
			if sys.WL.PeerTotal(i) == 0 {
				t.Fatalf("%v peer %d: empty workload", sc, i)
			}
		}
		switch sc {
		case SameCategory:
			if sys.M != p.Categories {
				t.Errorf("M=%d want %d", sys.M, p.Categories)
			}
			for i := range sys.Peers {
				if sys.DataCat[i] != sys.QueryCat[i] {
					t.Errorf("peer %d: data %d != query %d", i, sys.DataCat[i], sys.QueryCat[i])
				}
			}
		case DifferentCategory:
			if sys.M != p.Categories*(p.Categories-1) {
				t.Errorf("M=%d want %d", sys.M, p.Categories*(p.Categories-1))
			}
			for i := range sys.Peers {
				if sys.DataCat[i] == sys.QueryCat[i] {
					t.Errorf("peer %d: data == query category %d", i, sys.DataCat[i])
				}
			}
		case Uniform:
			for i := range sys.Peers {
				if sys.DataCat[i] != -1 {
					t.Errorf("peer %d: uniform scenario has category %d", i, sys.DataCat[i])
				}
			}
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	p := fastParams()
	a := Build(p, SameCategory)
	b := Build(p, SameCategory)
	if a.WL.Total() != b.WL.Total() || a.WL.NumQueries() != b.WL.NumQueries() {
		t.Fatal("workloads differ across identical builds")
	}
	for i := range a.Peers {
		ia, ib := a.Peers[i].Items(), b.Peers[i].Items()
		for d := range ia {
			if !ia[d].Equal(ib[d]) {
				t.Fatalf("peer %d item %d differs", i, d)
			}
		}
	}
}

func TestEveryQueryHasResults(t *testing.T) {
	// Queries are sampled from the actual texts, so every query must
	// have at least one result somewhere in the system.
	sys := Build(fastParams(), SameCategory)
	eng := sys.NewEngine(sys.CategoryConfig())
	for q := 0; q < sys.WL.NumQueries(); q++ {
		if eng.TotalResults(workload.QID(q)) == 0 {
			t.Fatalf("query %d has zero results system-wide", q)
		}
	}
}

func TestInitialConfigs(t *testing.T) {
	sys := Build(fastParams(), SameCategory)
	rng := stats.NewRNG(1)
	if got := sys.InitialConfig(InitSingletons, rng).NumNonEmpty(); got != 60 {
		t.Errorf("singletons: %d clusters", got)
	}
	if got := sys.InitialConfig(InitRandomM, rng).NumNonEmpty(); got > sys.M {
		t.Errorf("m=M init has %d > %d clusters", got, sys.M)
	}
	fewer := sys.InitialConfig(InitFewer, rng).NumNonEmpty()
	more := sys.InitialConfig(InitMore, rng).NumNonEmpty()
	if fewer >= more {
		t.Errorf("fewer=%d !< more=%d", fewer, more)
	}
}

func TestCategoryConfigGroupsByCategory(t *testing.T) {
	sys := Build(fastParams(), SameCategory)
	cfg := sys.CategoryConfig()
	for i := range sys.Peers {
		if int(cfg.ClusterOf(i)) != sys.DataCat[i] {
			t.Fatalf("peer %d in cluster %d, category %d", i, cfg.ClusterOf(i), sys.DataCat[i])
		}
	}
}

func TestSameCategoryScenarioConvergesToCleanClustering(t *testing.T) {
	// The headline integration check (Table 1, scenario 1, init i):
	// from singletons the selfish protocol converges near the category
	// clustering with near-zero recall cost.
	p := fastParams()
	sys := Build(p, SameCategory)
	rng := stats.NewRNG(p.Seed ^ 0x517cc1b727220a95)
	cfg := sys.InitialConfig(InitSingletons, rng)
	eng := sys.NewEngine(cfg)
	rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
	if !rpt.Converged {
		t.Fatalf("no convergence: %+v", rpt)
	}
	if rpt.FinalClusters < p.Categories || rpt.FinalClusters > p.Categories+3 {
		t.Errorf("clusters=%d want ~%d", rpt.FinalClusters, p.Categories)
	}
	ideal := p.Alpha * p.Theta.F(p.Peers/p.Categories) / float64(p.Peers)
	if rpt.FinalSCost > 2*ideal {
		t.Errorf("SCost=%g far above ideal %g", rpt.FinalSCost, ideal)
	}
}

func TestRedirectWorkloadPreservesTotals(t *testing.T) {
	sys := Build(fastParams(), SameCategory)
	rng := stats.NewRNG(5)
	for _, frac := range []float64{0.3, 0.7, 1.0} {
		before := sys.WL.PeerTotal(3)
		sys.RedirectWorkload(3, 1, frac, rng)
		if after := sys.WL.PeerTotal(3); after != before {
			t.Fatalf("frac=%g: total %d -> %d", frac, before, after)
		}
		if err := sys.WL.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRedirectWorkloadMovesInterest(t *testing.T) {
	sys := Build(fastParams(), SameCategory)
	rng := stats.NewRNG(6)
	sys.RedirectWorkload(0, 2, 1.0, rng)
	for _, e := range sys.WL.Peer(0) {
		q := sys.WL.Query(e.Q)
		for _, id := range q.IDs() {
			if c, ok := sys.Gen.CategoryOf(id); ok && c != 2 {
				t.Fatalf("query %v still targets category %d", q, c)
			}
		}
	}
}

func TestReplaceDataChangesCategory(t *testing.T) {
	sys := Build(fastParams(), SameCategory)
	rng := stats.NewRNG(7)
	sys.ReplaceData(0, 3, 1.0, rng)
	if sys.DataCat[0] != 3 {
		t.Fatalf("DataCat=%d want 3", sys.DataCat[0])
	}
	for _, it := range sys.Peers[0].Items() {
		for _, id := range it.IDs() {
			if c, ok := sys.Gen.CategoryOf(id); ok && c != 3 {
				t.Fatalf("item still holds category-%d term", c)
			}
		}
	}
}

func TestReplacePeerIdentity(t *testing.T) {
	sys := Build(fastParams(), SameCategory)
	rng := stats.NewRNG(8)
	oldTotal := sys.WL.PeerTotal(5)
	sys.ReplacePeerIdentity(5, 4, 4, rng)
	if sys.DataCat[5] != 4 || sys.QueryCat[5] != 4 {
		t.Fatal("categories not updated")
	}
	if sys.WL.PeerTotal(5) != oldTotal {
		t.Fatalf("newcomer demand %d want %d", sys.WL.PeerTotal(5), oldTotal)
	}
	if err := sys.WL.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1CellsComplete(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 80
	res := RunTable1(p)
	if len(res.Cells) != 3*4*2 {
		t.Fatalf("cells=%d want 24", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Clusters <= 0 || c.SCost <= 0 || c.WCost <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	tb := res.Table()
	if len(tb.Rows) != 12 {
		t.Fatalf("table rows=%d", len(tb.Rows))
	}
}

func TestFigureDriversShapes(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60

	f1 := RunFig1(p, 8)
	if f1.SCost.Len() != 9 || f1.WCost.Len() != 9 {
		t.Fatalf("fig1 lengths %d/%d", f1.SCost.Len(), f1.WCost.Len())
	}
	// Costs never increase along the selfish trajectory's endpoints.
	s := f1.SCost.Column("selfish")
	if s[len(s)-1] > s[0] {
		t.Errorf("fig1 selfish cost rose: %g -> %g", s[0], s[len(s)-1])
	}

	f2 := RunFig2(p)
	for _, ser := range []int{f2.UpdatedPeers.Len(), f2.UpdatedWorkload.Len()} {
		if ser != 11 {
			t.Fatalf("fig2 length %d", ser)
		}
	}
	// At zero perturbation the reformulated cost equals the unperturbed
	// baseline for both strategies.
	if f2.UpdatedPeers.Column("selfish")[0] != f2.UpdatedPeers.Column("altruistic")[0] {
		t.Error("fig2 x=0 should agree across strategies")
	}

	f3 := RunFig3(p)
	if f3.UpdatedPeers.Len() != 11 || f3.UpdatedData.Len() != 11 {
		t.Fatal("fig3 lengths")
	}
	// The no-reform counterfactual grows with the update level.
	nr := f3.UpdatedPeers.Column("no-reform")
	if nr[10] <= nr[0] {
		t.Errorf("fig3 no-reform flat: %g -> %g", nr[0], nr[10])
	}

	f4 := RunFig4(p, []float64{0, 2})
	if f4.Len() != 11 {
		t.Fatal("fig4 length")
	}
	a0 := f4.Column("alpha=0")
	a2 := f4.Column("alpha=2")
	// With alpha=0 there is no membership cost: the peer's cost is
	// never above the alpha=2 curve.
	for i := range a0 {
		if a0[i] > a2[i]+1e-9 {
			t.Errorf("fig4 point %d: alpha=0 cost %g > alpha=2 cost %g", i, a0[i], a2[i])
		}
	}
}

func TestAblationDriversRun(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60
	if tb := RunThetaAblation(p); len(tb.Rows) != 4 {
		t.Error("theta rows")
	}
	if tb := RunEpsilonAblation(p); len(tb.Rows) != 5 {
		t.Error("epsilon rows")
	}
	if tb := RunPairedDemandAblation(p); len(tb.Rows) != 2 {
		t.Error("paired rows")
	}
	if tb := RunClgainAblation(p); len(tb.Rows) != 4 {
		t.Error("clgain rows")
	}
	if tb := RunAsyncComparison(p); len(tb.Rows) != 6 {
		t.Error("async rows")
	}
	if tb := RunBaselineComparison(p); len(tb.Rows) != 6 {
		t.Error("baseline rows")
	}
	if tb := RunLookupCost(p); len(tb.Rows) != 4 {
		t.Error("lookup rows")
	}
	if s := RunChurn(p, 4, 0.1); s.Len() != 4 {
		t.Error("churn length")
	}
	if tb := RunMultiClusterAnalysis(p, 3); len(tb.Rows) != 3 {
		t.Error("multicluster rows")
	}
}

// TestAsyncDriversDeterministicAcrossWorkers pins that the async
// drivers' output is byte-identical for every worker-pool size: each
// cell derives its randomness from (Seed, cell index) alone, so the
// parallel schedule must be unobservable in the tables.
func TestAsyncDriversDeterministicAcrossWorkers(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60
	run := func(workers int) (string, string) {
		q := p
		q.Workers = workers
		return RunAsyncComparison(q).CSV(), RunAsyncNet(q).CSV()
	}
	cmp1, net1 := run(1)
	for _, workers := range []int{2, 4} {
		cmpN, netN := run(workers)
		if cmpN != cmp1 {
			t.Errorf("RunAsyncComparison diverges at Workers=%d:\n%s\nvs Workers=1:\n%s", workers, cmpN, cmp1)
		}
		if netN != net1 {
			t.Errorf("RunAsyncNet diverges at Workers=%d:\n%s\nvs Workers=1:\n%s", workers, netN, net1)
		}
	}
}

// TestAsyncNetDriverShape pins the asyncnet table layout: per scenario
// one oracle row plus one row per fault profile, with the ideal-network
// row reproducing the oracle row's metrics exactly.
func TestAsyncNetDriverShape(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60
	tb := RunAsyncNet(p)
	perScenario := 1 + len(asyncNetProfiles())
	if len(tb.Rows) != 3*perScenario {
		t.Fatalf("rows=%d, want %d", len(tb.Rows), 3*perScenario)
	}
	for s := 0; s < 3; s++ {
		oracle, ideal := tb.Rows[s*perScenario], tb.Rows[s*perScenario+1]
		// converged, rounds, moves, #clusters, SCost, msgs must match
		// the oracle on the ideal network (columns 2..6 and 8).
		for _, col := range []int{2, 3, 4, 5, 6, 8} {
			if oracle[col] != ideal[col] {
				t.Errorf("scenario %s col %d: ideal %q vs oracle %q", oracle[0], col, ideal[col], oracle[col])
			}
		}
		if ideal[7] != "0.000" {
			t.Errorf("scenario %s: ideal dSCost %q, want 0.000", oracle[0], ideal[7])
		}
	}
}

func TestRoutingAblationErrorShrinksWithBudget(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 40
	tb := RunRoutingAblation(p)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// The flood row (last) must have zero estimation error; the
	// smallest budget must have the largest error.
	var errs []string
	for _, row := range tb.Rows {
		errs = append(errs, row[2])
	}
	if errs[len(errs)-1] != "0.0000" {
		t.Errorf("flood error %s, want 0.0000", errs[len(errs)-1])
	}
	if errs[0] <= errs[len(errs)-2] {
		t.Errorf("probe-1 error %s not above probe-8 error %s", errs[0], errs[len(errs)-2])
	}
}

func TestMultiClusterDiminishingReturns(t *testing.T) {
	p := fastParams()
	p.MaxRounds = 60
	tb := RunMultiClusterAnalysis(p, 4)
	// Mean pcost is non-increasing in the number of joined clusters.
	prev := ""
	for i, row := range tb.Rows {
		if i > 0 && row[1] > prev {
			t.Errorf("mean pcost rose from %s to %s at k=%d", prev, row[1], i+1)
		}
		prev = row[1]
	}
}

func TestChurnMaintenanceImprovesCost(t *testing.T) {
	p := fastParams()
	s := RunChurn(p, 5, 0.1)
	before := s.Column("before-maintenance")
	after := s.Column("after-maintenance")
	for i := range before {
		if after[i] > before[i]+1e-9 {
			t.Errorf("period %d: maintenance worsened cost %g -> %g", i+1, before[i], after[i])
		}
	}
}
