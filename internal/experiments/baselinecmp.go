package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunBaselineComparison quantifies the paper's §1 motivation: after a
// workload drift (half of one cluster's peers change interest), local
// reformulation should restore quality at a fraction of the
// communication cost of re-clustering the whole network from scratch
// with global knowledge. Compared responses:
//
//	none        — leave the stale clustering in place
//	selfish     — the paper's protocol, selfish strategy
//	altruistic  — the paper's protocol, altruistic strategy
//	kmeans      — centralized cosine k-means over all peer vectors
//	flood       — collapse to a single cluster (no clustering)
//	singletons  — no cooperation at all
func RunBaselineComparison(p Params) *metrics.Table {
	p.DemandZipfS = 0
	t := metrics.NewTable("Extension: maintenance responses after workload drift",
		"response", "SCost", "WCost", "#clusters", "purity", "messages")

	build := func() (*System, []int) {
		sys := Build(p, SameCategory)
		cfg := sys.CategoryConfig()
		members := cfg.Members(0)
		rng := stats.NewRNG(p.Seed ^ 0x94d049bb)
		half := members[:len(members)/2]
		for _, pid := range half {
			sys.RedirectWorkload(pid, 1, 1, rng)
		}
		return sys, half
	}

	row := func(name string, sys *System, eng *core.Engine, msgs int) []string {
		return []string{name,
			metrics.F(eng.SCostNormalized(), 3),
			metrics.F(eng.WCostNormalized(), 3),
			metrics.I(eng.Config().NumNonEmpty()),
			metrics.F(baseline.CategoryPurity(eng.Config(), sys.DataCat), 3),
			metrics.I(msgs)}
	}

	// One independent cell per maintenance response, each over its own
	// freshly built and drifted system.
	responses := []func() []string{
		func() []string { // no maintenance
			sys, _ := build()
			eng := sys.NewEngine(sys.CategoryConfig())
			return row("none", sys, eng, 0)
		},
		func() []string {
			sys, _ := build()
			eng := sys.NewEngine(sys.CategoryConfig())
			strat := core.NewSelfish()
			rpt := sys.NewRunner(eng, strat, false).Run()
			return row(strat.Name(), sys, eng, rpt.Messages)
		},
		func() []string {
			sys, _ := build()
			eng := sys.NewEngine(sys.CategoryConfig())
			strat := core.NewAltruistic()
			rpt := sys.NewRunner(eng, strat, false).Run()
			return row(strat.Name(), sys, eng, rpt.Messages)
		},
		func() []string { // global k-means re-clustering (k = categories)
			sys, _ := build()
			km := baseline.KMeans(sys.Peers, p.Categories, 50, stats.NewRNG(p.Seed^0xbf58476d))
			eng := sys.NewEngine(km.Config)
			return row(fmt.Sprintf("kmeans(k=%d)", p.Categories), sys, eng, km.Messages)
		},
		func() []string { // flood: one giant cluster
			sys, _ := build()
			eng := sys.NewEngine(baseline.SingleCluster(p.Peers))
			return row("flood", sys, eng, 0)
		},
		func() []string { // no cooperation at all
			sys, _ := build()
			eng := sys.NewEngine(baseline.Singletons(p.Peers))
			return row("singletons", sys, eng, 0)
		},
	}
	for _, r := range p.runRows(len(responses), func(i int) []string { return responses[i]() }) {
		t.AddRow(r...)
	}
	return t
}

// RunKMeansDiscovery contrasts cluster discovery from scratch: the
// selfish protocol from singletons (the paper's §4.1 conclusion that
// the strategies double as a discovery mechanism) versus centralized
// k-means, on clustering purity and communication.
func RunKMeansDiscovery(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: decentralized discovery vs centralized k-means (same-category scenario)",
		"method", "#clusters", "SCost", "purity", "messages")
	sys := Build(p, SameCategory)
	if p.workerCount() > 1 {
		sys.Warm()
	}
	for _, r := range p.runRows(2, func(i int) []string {
		if i == 0 {
			rng := stats.NewRNG(p.Seed ^ 0x2545f4914f6cdd1d)
			cfg := sys.InitialConfig(InitSingletons, rng)
			eng := sys.NewEngine(cfg)
			rpt := sys.NewRunner(eng, core.NewSelfish(), true).Run()
			return []string{"selfish protocol", metrics.I(rpt.FinalClusters),
				metrics.F(rpt.FinalSCost, 3),
				metrics.F(baseline.CategoryPurity(eng.Config(), sys.DataCat), 3),
				metrics.I(rpt.Messages)}
		}
		km := baseline.KMeans(sys.Peers, p.Categories, 50, stats.NewRNG(p.Seed^0x9e3779b9))
		eng := sys.NewEngine(km.Config)
		return []string{fmt.Sprintf("kmeans(k=%d)", p.Categories), metrics.I(km.Config.NumNonEmpty()),
			metrics.F(eng.SCostNormalized(), 3),
			metrics.F(baseline.CategoryPurity(km.Config, sys.DataCat), 3),
			metrics.I(km.Messages)}
	}) {
		t.AddRow(r...)
	}
	return t
}
