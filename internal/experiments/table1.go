package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// Table1Cell is one (scenario, init, strategy) run.
type Table1Cell struct {
	Scenario Scenario
	Init     InitKind
	Strategy string
	// Converged reports whether the protocol reached quiescence within
	// MaxRounds; Rounds is meaningful only when it did (the paper
	// prints "-" otherwise).
	Converged bool
	Rounds    int
	Clusters  int
	SCost     float64
	WCost     float64
	// Nash reports whether the final configuration is a pure Nash
	// equilibrium of the selfish game (checked with tolerance ε).
	Nash bool
}

// Table1Result holds every cell plus the rendered table.
type Table1Result struct {
	Cells []Table1Cell
}

// RunTable1 reproduces Table 1: fixed query workload and content, three
// data/query scenarios, four initial configurations, selfish and
// altruistic relocation, reporting rounds to equilibrium, final cluster
// count and both normalized cost measures.
//
// The 24 cells are independent — each derives its initial
// configuration from (seed, scenario, init) alone and runs its own
// engine over a shared, read-only System — so they execute on the
// Params.Workers pool. The cell order of the result is fixed and
// identical for every worker count.
func RunTable1(p Params) *Table1Result {
	scenarios := []Scenario{SameCategory, DifferentCategory, Uniform}
	inits := []InitKind{InitSingletons, InitRandomM, InitFewer, InitMore}
	strategies := []func() core.Strategy{
		func() core.Strategy { return core.NewSelfish() },
		func() core.Strategy { return core.NewAltruistic() },
	}
	workers := p.workerCount()

	// One System per scenario, shared read-only by its 8 cells; warm
	// the lazy peer indexes before fanning out concurrent engine builds.
	systems := buildSystems(p, scenarios, workers)

	perScenario := len(inits) * len(strategies)
	cells := make([]Table1Cell, len(scenarios)*perScenario)
	runIndexed(workers, len(cells), func(i int) {
		sc := scenarios[i/perScenario]
		init := inits[(i%perScenario)/len(strategies)]
		strat := strategies[i%len(strategies)]()
		sys := systems[i/perScenario]
		// The initial configuration must be identical across
		// strategies: derive its RNG from (seed, scenario, init) only.
		rng := stats.NewRNG(p.Seed ^ uint64(sc)<<8 ^ uint64(init)<<16 ^ 0x517cc1b727220a95)
		cfg := sys.InitialConfig(init, rng)
		eng := sys.NewEngine(cfg)
		runner := sys.NewRunner(eng, strat, true)
		rpt := runner.Run()
		nash, _ := eng.IsNash(p.Epsilon)
		cells[i] = Table1Cell{
			Scenario:  sc,
			Init:      init,
			Strategy:  strat.Name(),
			Converged: rpt.Converged,
			Rounds:    rpt.EffectiveRounds(),
			Clusters:  rpt.FinalClusters,
			SCost:     rpt.FinalSCost,
			WCost:     rpt.FinalWCost,
			Nash:      nash,
		}
	})
	return &Table1Result{Cells: cells}
}

// Table renders the result in the paper's layout: one row per
// (scenario, init), selfish and altruistic side by side.
func (r *Table1Result) Table() *metrics.Table {
	t := metrics.NewTable(
		"Table 1: results for fixed query workload and content",
		"scenario", "init",
		"rounds(self)", "rounds(alt)",
		"#clusters(self)", "#clusters(alt)",
		"SCost(self)", "SCost(alt)",
		"WCost(self)", "WCost(alt)",
	)
	byKey := map[[2]int]map[string]Table1Cell{}
	for _, c := range r.Cells {
		k := [2]int{int(c.Scenario), int(c.Init)}
		if byKey[k] == nil {
			byKey[k] = map[string]Table1Cell{}
		}
		byKey[k][c.Strategy] = c
	}
	rounds := func(c Table1Cell) string {
		if !c.Converged {
			return "-"
		}
		return metrics.I(c.Rounds)
	}
	for _, sc := range []Scenario{SameCategory, DifferentCategory, Uniform} {
		for _, init := range []InitKind{InitSingletons, InitRandomM, InitFewer, InitMore} {
			cells := byKey[[2]int{int(sc), int(init)}]
			s, a := cells["selfish"], cells["altruistic"]
			t.AddRow(
				sc.String(), init.String(),
				rounds(s), rounds(a),
				metrics.I(s.Clusters), metrics.I(a.Clusters),
				metrics.F(s.SCost, 2), metrics.F(a.SCost, 2),
				metrics.F(s.WCost, 2), metrics.F(a.WCost, 2),
			)
		}
	}
	return t
}

// RunProtocol is a convenience used by several drivers: build an
// engine on cfg's system, run the strategy to quiescence, return the
// report.
func RunProtocol(sys *System, init InitKind, strat core.Strategy, seed uint64) protocol.Report {
	rng := stats.NewRNG(seed)
	cfg := sys.InitialConfig(init, rng)
	eng := sys.NewEngine(cfg)
	return sys.NewRunner(eng, strat, true).Run()
}
