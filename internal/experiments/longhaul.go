package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunLongHaul is the unbounded-uptime sweep: session churn whose
// newcomers issue novel queries, which is the workload that grows
// QID-indexed engine state with query history rather than with the
// live population. Each phase replaces `churn` random peers with
// newcomers (two never-before-seen query words apiece, via the
// incremental membership path), runs one maintenance period, and
// compacts in place whenever the dead-QID ratio exceeds 0.5 — the
// serve daemon's policy. The table records, per churn intensity, the
// peak and final distinct-query counts (bounded memory: the final
// count equals the live demand, not the phase history), the
// compaction count and total queries reclaimed, and the worst
// social-cost perturbation observed across a compaction (zero: the
// remap must preserve costs exactly).
//
// One row per churn intensity; cells run on the worker pool, each
// over a private system, and are byte-identical for every worker
// count.
func RunLongHaul(p Params, phases int, churns []int) *metrics.Table {
	if phases <= 0 {
		phases = 12
	}
	if len(churns) == 0 {
		churns = []int{maxInt(1, p.Peers/20), maxInt(2, p.Peers/10), maxInt(4, p.Peers/4)}
	}
	t := metrics.NewTable("Extension: long-haul novel-query churn with in-place compaction",
		"churn/phase", "phases", "peak-queries", "final-queries", "live-queries",
		"compactions", "reclaimed", "compact-drift", "scost-final", "clusters")
	for _, r := range p.runRows(len(churns), func(i int) []string {
		churn := churns[i]
		sys := Build(p, SameCategory)
		eng := sys.NewEngine(sys.CategoryConfig())
		runner := sys.NewRunner(eng, core.NewSelfish(), true)
		rng := stats.NewRNG(p.Seed ^ 0x2545f4914f6cdd1d ^ uint64(churn)<<24)

		peak := sys.WL.NumQueries()
		compactions, reclaimed := 0, 0
		drift := 0.0
		var live []int
		for phase := 1; phase <= phases; phase++ {
			for c := 0; c < churn; c++ {
				live = live[:0]
				for pid := 0; pid < eng.NumSlots(); pid++ {
					if eng.IsLive(pid) {
						live = append(live, pid)
					}
				}
				sys.LeavePeer(eng, live[rng.Intn(len(live))])
				cat := rng.Intn(p.Categories)
				sys.JoinPeerNovel(eng, cat, cat, 2, rng)
			}
			runner.Run()
			if nq := sys.WL.NumQueries(); nq > peak {
				peak = nq
			}
			if nq := sys.WL.NumQueries(); nq >= 2 && eng.DeadQueries(0)*2 > nq {
				before := eng.SCostNormalized()
				reclaimed += eng.Compact(0)
				compactions++
				if d := math.Abs(eng.SCostNormalized() - before); d > drift {
					drift = d
				}
			}
		}
		final := sys.WL.NumQueries()
		liveQ := final - eng.DeadQueries(0)
		return []string{
			metrics.I(churn), metrics.I(phases), metrics.I(peak), metrics.I(final),
			metrics.I(liveQ), metrics.I(compactions), metrics.I(reclaimed),
			metrics.F(drift, 12), metrics.F(eng.SCostNormalized(), 4),
			metrics.I(eng.Config().NumNonEmpty()),
		}
	}) {
		t.AddRow(r...)
	}
	return t
}
