package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunChurn simulates session churn over successive maintenance
// periods: each period, a fraction of the live population departs and
// as many newcomers (fresh content and interests in a random
// category) join as singleton clusters, both through the engine's
// incremental membership path — no Rebuild — so churn sweeps scale to
// populations where a per-period full rebuild is prohibitive. One
// protocol period then runs. The series records the normalized social
// cost before and after maintenance each period — the paper's
// headline claim is that periodic local reformulation sustains system
// quality under such churn.
func RunChurn(p Params, periods int, churnFraction float64) *metrics.Series {
	if periods <= 0 {
		periods = 10
	}
	if churnFraction <= 0 {
		churnFraction = 0.05
	}
	p.DemandZipfS = 0
	out := metrics.NewSeries("Extension: social cost under churn (selfish maintenance, incremental join/leave)", "period")
	out.AddColumn("before-maintenance")
	out.AddColumn("after-maintenance")
	out.AddColumn("clusters")

	sys := Build(p, SameCategory)
	eng := sys.NewEngine(sys.CategoryConfig())
	runner := sys.NewRunner(eng, core.NewSelfish(), true)
	rng := stats.NewRNG(p.Seed ^ 0xff51afd7ed558ccd)

	k := int(churnFraction*float64(p.Peers) + 0.5)
	var live []int
	for period := 1; period <= periods; period++ {
		// Departures: k random live peers leave.
		live = live[:0]
		for pid := 0; pid < eng.NumSlots(); pid++ {
			if eng.IsLive(pid) {
				live = append(live, pid)
			}
		}
		leave := k
		if leave > len(live) {
			leave = len(live)
		}
		for _, idx := range rng.Perm(len(live))[:leave] {
			sys.LeavePeer(eng, live[idx])
		}
		// Arrivals: k newcomers in random categories join as singletons;
		// the maintenance period integrates them.
		for i := 0; i < k; i++ {
			cat := rng.Intn(p.Categories)
			sys.JoinPeer(eng, cat, cat, rng)
		}
		before := eng.SCostNormalized()
		runner.Run()
		out.AddPoint(float64(period), before, eng.SCostNormalized(), float64(eng.Config().NumNonEmpty()))
	}
	return out
}

// RunFlashCrowd models an arrival burst: a converged same-category
// system absorbs `burst` newcomers — all with content and interests in
// one hot category, as singleton clusters — runs selfish maintenance,
// then the whole crowd departs at once and maintenance runs again.
// Joins and leaves use the incremental membership path exclusively.
// One row per burst size; cells run on the worker pool, each over a
// private System (joins mutate the shared workload, so systems cannot
// be shared across cells).
func RunFlashCrowd(p Params, bursts []int) *metrics.Table {
	if len(bursts) == 0 {
		bursts = []int{maxInt(1, p.Peers/10), maxInt(2, p.Peers/4), maxInt(3, p.Peers/2)}
	}
	t := metrics.NewTable("Extension: flash crowd (arrival burst, incremental membership)",
		"burst", "scost-settled", "scost-arrival", "scost-absorbed", "clusters-peak",
		"scost-departed", "scost-recovered", "clusters-final")
	for _, r := range p.runRows(len(bursts), func(i int) []string {
		burst := bursts[i]
		sys := Build(p, SameCategory)
		eng := sys.NewEngine(sys.CategoryConfig())
		runner := sys.NewRunner(eng, core.NewSelfish(), true)
		rng := stats.NewRNG(p.Seed ^ 0x94d049bb133111eb ^ uint64(burst)<<20)
		runner.Run()
		settled := eng.SCostNormalized()

		const hot = 0
		pids := make([]int, 0, burst)
		for j := 0; j < burst; j++ {
			pids = append(pids, sys.JoinPeer(eng, hot, hot, rng))
		}
		arrival := eng.SCostNormalized()
		runner.Run()
		absorbed := eng.SCostNormalized()
		peak := eng.Config().NumNonEmpty()

		for _, pid := range pids {
			sys.LeavePeer(eng, pid)
		}
		departed := eng.SCostNormalized()
		runner.Run()
		recovered := eng.SCostNormalized()
		return []string{
			metrics.I(burst), metrics.F(settled, 4), metrics.F(arrival, 4),
			metrics.F(absorbed, 4), metrics.I(peak),
			metrics.F(departed, 4), metrics.F(recovered, 4),
			metrics.I(eng.Config().NumNonEmpty()),
		}
	}) {
		t.AddRow(r...)
	}
	return t
}

// RunLookupCost addresses a §6 open issue: the expected look-up cost as
// a function of the number of clusters and their sizes. Under the
// paper's fully connected intra-cluster topology, answering a query
// costs one hop per cluster contacted plus θ(|c|) messages inside each
// contacted cluster; with the initiator's cluster contacted first and
// remote clusters contacted only for missing results, the expected
// cost per query is
//
//	θ(|c_own|) + Σ_{remote c} miss-driven(θ(|c|) + 1)
//
// weighted by where the query's results actually reside. The table
// reports this for the configurations the selfish protocol reaches
// from several initial cluster counts.
func RunLookupCost(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: expected per-query lookup cost vs clustering",
		"init", "#clusters", "mean-size", "in-cluster-recall", "lookup-cost")
	sys := Build(p, SameCategory)
	inits := []InitKind{InitSingletons, InitRandomM, InitFewer, InitMore}
	if p.workerCount() > 1 {
		sys.Warm()
	}
	for _, r := range p.runRows(len(inits), func(i int) []string {
		init := inits[i]
		rng := stats.NewRNG(p.Seed ^ 0xc4ceb9fe1a85ec53)
		cfg := sys.InitialConfig(init, rng)
		eng := sys.NewEngine(cfg)
		sys.NewRunner(eng, core.NewSelfish(), true).Run()

		nonEmpty := eng.Config().NonEmpty()
		meanSize := float64(p.Peers) / float64(len(nonEmpty))
		var recallSum, lookupSum, weightSum float64
		wl := sys.WL
		for pid := 0; pid < p.Peers; pid++ {
			own := eng.Config().ClusterOf(pid)
			for _, entry := range wl.Peer(pid) {
				w := float64(entry.Count)
				if eng.TotalResults(entry.Q) == 0 {
					continue
				}
				inRecall := eng.ClusterRecall(entry.Q, own)
				cost := p.Theta.F(eng.Config().Size(own))
				for _, c := range nonEmpty {
					if c == own {
						continue
					}
					r := eng.ClusterRecall(entry.Q, c)
					if r > 0 {
						// Contact the remote cluster: one routing hop
						// plus the intra-cluster evaluation.
						cost += 1 + p.Theta.F(eng.Config().Size(c))
					}
				}
				recallSum += w * inRecall
				lookupSum += w * cost
				weightSum += w
			}
		}
		return []string{init.String(), metrics.I(len(nonEmpty)), metrics.F(meanSize, 1),
			metrics.F(recallSum/weightSum, 3), metrics.F(lookupSum/weightSum, 1)}
	}) {
		t.AddRow(r...)
	}
	return t
}
