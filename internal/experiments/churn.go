package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunChurn simulates session churn over successive maintenance periods:
// each period, a fraction of peer slots is taken over by fresh peers
// (new content and interests in a random category), then one protocol
// period runs. The series records the normalized social cost before
// and after maintenance each period — the paper's headline claim is
// that periodic local reformulation sustains system quality under such
// churn.
func RunChurn(p Params, periods int, churnFraction float64) *metrics.Series {
	if periods <= 0 {
		periods = 10
	}
	if churnFraction <= 0 {
		churnFraction = 0.05
	}
	p.DemandZipfS = 0
	out := metrics.NewSeries("Extension: social cost under churn (selfish maintenance)", "period")
	out.AddColumn("before-maintenance")
	out.AddColumn("after-maintenance")

	sys := Build(p, SameCategory)
	cfg := sys.CategoryConfig()
	eng := sys.NewEngine(cfg)
	runner := sys.NewRunner(eng, core.NewSelfish(), true)
	rng := stats.NewRNG(p.Seed ^ 0xff51afd7ed558ccd)

	n := p.Peers
	k := int(churnFraction*float64(n) + 0.5)
	for period := 1; period <= periods; period++ {
		// Churn: k random slots are replaced by newcomers.
		for _, slot := range rng.Perm(n)[:k] {
			cat := rng.Intn(p.Categories)
			sys.ReplacePeerIdentity(slot, cat, cat, rng)
		}
		eng.Rebuild()
		before := eng.SCostNormalized()
		runner.Run()
		out.AddPoint(float64(period), before, eng.SCostNormalized())
	}
	return out
}

// RunLookupCost addresses a §6 open issue: the expected look-up cost as
// a function of the number of clusters and their sizes. Under the
// paper's fully connected intra-cluster topology, answering a query
// costs one hop per cluster contacted plus θ(|c|) messages inside each
// contacted cluster; with the initiator's cluster contacted first and
// remote clusters contacted only for missing results, the expected
// cost per query is
//
//	θ(|c_own|) + Σ_{remote c} miss-driven(θ(|c|) + 1)
//
// weighted by where the query's results actually reside. The table
// reports this for the configurations the selfish protocol reaches
// from several initial cluster counts.
func RunLookupCost(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: expected per-query lookup cost vs clustering",
		"init", "#clusters", "mean-size", "in-cluster-recall", "lookup-cost")
	sys := Build(p, SameCategory)
	inits := []InitKind{InitSingletons, InitRandomM, InitFewer, InitMore}
	if p.workerCount() > 1 {
		sys.Warm()
	}
	for _, r := range p.runRows(len(inits), func(i int) []string {
		init := inits[i]
		rng := stats.NewRNG(p.Seed ^ 0xc4ceb9fe1a85ec53)
		cfg := sys.InitialConfig(init, rng)
		eng := sys.NewEngine(cfg)
		sys.NewRunner(eng, core.NewSelfish(), true).Run()

		nonEmpty := eng.Config().NonEmpty()
		meanSize := float64(p.Peers) / float64(len(nonEmpty))
		var recallSum, lookupSum, weightSum float64
		wl := sys.WL
		for pid := 0; pid < p.Peers; pid++ {
			own := eng.Config().ClusterOf(pid)
			for _, entry := range wl.Peer(pid) {
				w := float64(entry.Count)
				if eng.TotalResults(entry.Q) == 0 {
					continue
				}
				inRecall := eng.ClusterRecall(entry.Q, own)
				cost := p.Theta.F(eng.Config().Size(own))
				for _, c := range nonEmpty {
					if c == own {
						continue
					}
					r := eng.ClusterRecall(entry.Q, c)
					if r > 0 {
						// Contact the remote cluster: one routing hop
						// plus the intra-cluster evaluation.
						cost += 1 + p.Theta.F(eng.Config().Size(c))
					}
				}
				recallSum += w * inRecall
				lookupSum += w * cost
				weightSum += w
			}
		}
		return []string{init.String(), metrics.I(len(nonEmpty)), metrics.F(meanSize, 1),
			metrics.F(recallSum/weightSum, 3), metrics.F(lookupSum/weightSum, 1)}
	}) {
		t.AddRow(r...)
	}
	return t
}
