package experiments

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/stats"
)

// RedirectWorkload replaces fraction frac of peer p's query instances
// with queries for words of category toCat (drawn from that category's
// texts). frac = 1 redirects the peer's whole interest — the §4.2
// "workload changes completely" update. The engine must be Rebuilt
// afterwards.
func (s *System) RedirectWorkload(p int, toCat int, frac float64, rng *stats.RNG) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	entries := s.WL.Peer(p)
	total := s.WL.PeerTotal(p)
	moved := int(frac*float64(total) + 0.5)
	if moved == 0 {
		return
	}
	// Keep (total - moved) instances of the old interest, scaling the
	// old entries proportionally (largest remainders win).
	keep := total - moved
	var qs []attr.Set
	var counts []int
	acc := 0
	for _, e := range entries {
		c := keep * e.Count / total
		if acc+c > keep {
			c = keep - acc
		}
		if c > 0 {
			qs = append(qs, s.WL.Query(e.Q))
			counts = append(counts, c)
			acc += c
		}
	}
	// New interest: a couple of distinct words of toCat, like the
	// original workload shape.
	distinct := s.Params.DistinctQueriesPerPeer
	if distinct <= 0 {
		distinct = 3
	}
	words := make([]attr.ID, 0, distinct)
	for len(words) < distinct {
		words = append(words, s.SampleQueryWord(toCat, rng))
	}
	w := stats.ZipfWeights(len(words), 1)
	left := moved + (keep - acc) // absorb rounding remainder into the new interest
	for k, word := range words {
		c := int(w[k]*float64(moved) + 0.5)
		if c < 1 {
			c = 1
		}
		if c > left {
			c = left
		}
		if c == 0 {
			break
		}
		qs = append(qs, attr.NewSet(word))
		counts = append(counts, c)
		left -= c
	}
	if left > 0 {
		qs = append(qs, attr.NewSet(words[0]))
		counts = append(counts, left)
	}
	s.WL.ReplacePeer(p, qs, counts)
}

// ReplaceData replaces fraction frac of peer p's data items with fresh
// documents of category toCat — the §4.2 content update. The engine
// must be Rebuilt afterwards; RefreshPool should be called for affected
// categories if queries will be generated later.
func (s *System) ReplaceData(p int, toCat int, frac float64, rng *stats.RNG) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	pr := s.Peers[p]
	n := pr.NumItems()
	replace := int(frac*float64(n) + 0.5)
	for i := 0; i < replace; i++ {
		doc := s.Gen.DocumentRNG(toCat, rng)
		pr.ReplaceItem(i, doc.Terms)
	}
	if replace == n {
		s.DataCat[p] = toCat
	}
}

// NewcomerMaterials generates the content and local workload of a
// fresh peer with data in dataCat and interests in queryCat, shaped
// like the seed population (DocsPerPeer documents, the usual distinct
// query words, `demand` query instances).
func (s *System) NewcomerMaterials(dataCat, queryCat, demand int, rng *stats.RNG) (items, queries []attr.Set, counts []int) {
	items = make([]attr.Set, 0, s.Params.DocsPerPeer)
	for d := 0; d < s.Params.DocsPerPeer; d++ {
		doc := s.Gen.DocumentRNG(dataCat, rng)
		items = append(items, doc.Terms)
		s.addToPool(dataCat, doc.Terms.IDs())
	}
	if demand <= 0 {
		demand = s.Params.TotalQueries / s.Params.Peers
		if demand <= 0 {
			demand = 1
		}
	}
	distinct := s.Params.DistinctQueriesPerPeer
	if distinct <= 0 {
		distinct = 3
	}
	words := make([]attr.ID, 0, distinct)
	for len(words) < distinct {
		words = append(words, s.SampleQueryWord(queryCat, rng))
	}
	w := stats.ZipfWeights(len(words), 1)
	left := demand
	for k, word := range words {
		c := int(w[k]*float64(demand) + 0.5)
		if c < 1 {
			c = 1
		}
		if c > left {
			c = left
		}
		if c == 0 {
			break
		}
		queries = append(queries, attr.NewSet(word))
		counts = append(counts, c)
		left -= c
	}
	if left > 0 {
		queries = append(queries, attr.NewSet(words[0]))
		counts = append(counts, left)
	}
	return items, queries, counts
}

// JoinPeer admits a brand-new peer (content in dataCat, interests in
// queryCat) into the engine as a fresh singleton cluster via the
// incremental membership path — no Rebuild — and keeps the System's
// category bookkeeping aligned. It returns the assigned peer ID.
func (s *System) JoinPeer(eng *core.Engine, dataCat, queryCat int, rng *stats.RNG) int {
	items, queries, counts := s.NewcomerMaterials(dataCat, queryCat, 0, rng)
	pr := peer.New(-1)
	pr.SetItems(items)
	pid := eng.AddPeer(pr, queries, counts, cluster.None)
	s.Peers = eng.Peers()
	for len(s.DataCat) < len(s.Peers) {
		s.DataCat = append(s.DataCat, -1)
		s.QueryCat = append(s.QueryCat, -1)
	}
	s.DataCat[pid], s.QueryCat[pid] = dataCat, queryCat
	return pid
}

// JoinPeerNovel admits a newcomer like JoinPeer, except `novel` of
// its distinct query words are brand new to the system — drawn from a
// private namespace no document or earlier query uses, so each join
// interns fresh QIDs that strand (global count 0) when the peer
// departs. This is the open-ended pattern the long-haul sweep uses to
// grow query history without growing live demand.
func (s *System) JoinPeerNovel(eng *core.Engine, dataCat, queryCat, novel int, rng *stats.RNG) int {
	items, queries, counts := s.NewcomerMaterials(dataCat, queryCat, 0, rng)
	for k := 0; k < novel; k++ {
		s.novelSeq++
		w := s.Gen.Vocab().Intern(fmt.Sprintf("novel!%d", s.novelSeq))
		queries = append(queries, attr.NewSet(w))
		counts = append(counts, 1)
	}
	pr := peer.New(-1)
	pr.SetItems(items)
	pid := eng.AddPeer(pr, queries, counts, cluster.None)
	s.Peers = eng.Peers()
	for len(s.DataCat) < len(s.Peers) {
		s.DataCat = append(s.DataCat, -1)
		s.QueryCat = append(s.QueryCat, -1)
	}
	s.DataCat[pid], s.QueryCat[pid] = dataCat, queryCat
	return pid
}

// LeavePeer retires peer pid from the engine via the incremental
// membership path and clears the System's category bookkeeping.
func (s *System) LeavePeer(eng *core.Engine, pid int) {
	eng.RemovePeer(pid)
	s.Peers = eng.Peers()
	s.DataCat[pid], s.QueryCat[pid] = -1, -1
}

// ReplacePeerIdentity simulates churn: the peer at slot p leaves and a
// brand-new peer (fresh content and workload of the given categories)
// joins in its place. The engine must be Rebuilt afterwards.
func (s *System) ReplacePeerIdentity(p int, dataCat, queryCat int, rng *stats.RNG) {
	items := make([]attr.Set, 0, s.Params.DocsPerPeer)
	for d := 0; d < s.Params.DocsPerPeer; d++ {
		doc := s.Gen.DocumentRNG(dataCat, rng)
		items = append(items, doc.Terms)
		s.addToPool(dataCat, doc.Terms.IDs())
	}
	s.Peers[p].SetItems(items)
	s.DataCat[p] = dataCat
	s.QueryCat[p] = queryCat
	total := s.WL.PeerTotal(p)
	if total == 0 {
		total = s.Params.TotalQueries / s.Params.Peers
		if total == 0 {
			total = 1
		}
	}
	s.WL.ClearPeer(p)
	distinct := s.Params.DistinctQueriesPerPeer
	if distinct <= 0 {
		distinct = 3
	}
	words := make([]attr.ID, 0, distinct)
	for len(words) < distinct {
		words = append(words, s.SampleQueryWord(queryCat, rng))
	}
	w := stats.ZipfWeights(len(words), 1)
	left := total
	for k, word := range words {
		c := int(w[k]*float64(total) + 0.5)
		if c < 1 {
			c = 1
		}
		if c > left {
			c = left
		}
		if c == 0 {
			break
		}
		s.WL.Add(p, attr.NewSet(word), c)
		left -= c
	}
	if left > 0 {
		s.WL.Add(p, attr.NewSet(words[0]), left)
	}
}
