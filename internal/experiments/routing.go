package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RunRoutingAblation quantifies §3.1's remark that the observed
// cluster recall "depends on the routing algorithm used": peers that
// probe only k remote clusters per period act on partial observations.
// The table reports, per probe budget, the observation message volume,
// the mean absolute error of the locally estimated individual costs
// against the exact engine, and the social cost the selfish protocol
// reaches when driven by those estimates.
func RunRoutingAblation(p Params) *metrics.Table {
	t := metrics.NewTable("Extension: probe budget vs estimate quality (same-category scenario, random m=M init, selfish)",
		"probe-clusters", "query-messages", "mean-abs-pcost-error", "final-SCost", "converged")

	budgets := []int{1, 2, 4, 8, 0} // 0 = flood all clusters
	// One independent cell per probe budget, each over its own System
	// (the actor sim exercises the peers' lazy query indexes, so cells
	// must not share one).
	for _, r := range p.runRows(len(budgets), func(i int) []string {
		k := budgets[i]
		sys := Build(p, SameCategory)
		rng := stats.NewRNG(p.Seed ^ 0x8ebc6af09c88c6e3)
		cfg := sys.InitialConfig(InitRandomM, rng)
		exact := sys.NewEngine(cfg.Clone())
		s := sim.New(sys.Peers, sys.WL, cfg, sim.Options{
			Alpha: p.Alpha, Theta: p.Theta, Epsilon: p.Epsilon,
			MaxRounds: p.MaxRounds, Strategy: sim.Selfish,
			ProbeClusters: k, ProbeSeed: p.Seed,
		})
		before := s.Messages()
		s.QueryPhase()
		observationMsgs := int(s.Messages() - before)

		// Estimation error over every (peer, non-empty cluster) pair.
		var errSum float64
		n := 0
		for pid := 0; pid < p.Peers; pid++ {
			for _, c := range exact.Config().NonEmpty() {
				errSum += math.Abs(s.EstimatedPeerCost(pid, c) - exact.PeerCost(pid, c))
				n++
			}
		}

		rpt := s.RunPeriod()
		// Judge the reached configuration with exact costs.
		final := sys.NewEngine(s.Config().Clone())
		label := metrics.I(k)
		if k == 0 {
			label = "all"
		}
		return []string{label,
			metrics.I(observationMsgs),
			metrics.F(errSum/float64(n), 4),
			metrics.F(final.SCostNormalized(), 3),
			metrics.I(boolToInt(rpt.Converged))}
	}) {
		t.AddRow(r...)
	}
	return t
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RunMultiClusterAnalysis evaluates the unrestricted game of Eq. 1
// (strategies s ⊆ C): after the selfish protocol converges under
// single-cluster strategies, how much would each peer gain by joining
// several clusters? The table reports, per strategy size k, the mean
// individual cost of greedy k-cluster strategies — the diminishing
// return that justifies the paper's single-cluster restriction.
func RunMultiClusterAnalysis(p Params, maxK int) *metrics.Table {
	if maxK <= 0 {
		maxK = 4
	}
	t := metrics.NewTable("Extension: multi-cluster strategies (Eq. 1, greedy, after selfish convergence)",
		"clusters-joined", "mean-pcost", "mean-gain-vs-single", "peers-improved")
	sys := Build(p, SameCategory)
	rng := stats.NewRNG(p.Seed ^ 0x589965cc75374cc3)
	cfg := sys.InitialConfig(InitSingletons, rng)
	eng := sys.NewEngine(cfg)
	sys.NewRunner(eng, core.NewSelfish(), true).Run()

	sums := make([]float64, maxK)
	improved := make([]int, maxK)
	var singleSum float64
	for pid := 0; pid < p.Peers; pid++ {
		me := eng.BestMultiStrategy(pid, maxK)
		singleSum += me.SingleCost
		for k := 0; k < maxK; k++ {
			cost := me.Trajectory[minInt(k, len(me.Trajectory)-1)]
			sums[k] += cost
			if k < len(me.Trajectory) && cost < me.SingleCost-1e-12 {
				improved[k]++
			}
		}
	}
	n := float64(p.Peers)
	for k := 0; k < maxK; k++ {
		t.AddRow(metrics.I(k+1),
			metrics.F(sums[k]/n, 4),
			metrics.F(singleSum/n-sums[k]/n, 4),
			metrics.I(improved[k]))
	}
	return t
}
