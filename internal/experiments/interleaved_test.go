package experiments

import (
	"strconv"
	"testing"
)

// TestRunInterleavedStructure checks the scenario's shape: one row
// per regime, mutations observed in every unblocked regime, and sane
// latency cells. Absolute numbers are wall-clock and deliberately not
// asserted.
func TestRunInterleavedStructure(t *testing.T) {
	p := DefaultParams().Scaled(8)
	p.MaxRounds = 60
	tb := RunInterleaved(p, []int{1, 8})
	if len(tb.Rows) != 4 {
		t.Fatalf("rows=%d want 4 (idle, monolithic, step-1, step-8)", len(tb.Rows))
	}
	wantRegimes := []string{"idle", "monolithic", "step-1", "step-8"}
	for i, row := range tb.Rows {
		if row[0] != wantRegimes[i] {
			t.Fatalf("row %d regime %q, want %q", i, row[0], wantRegimes[i])
		}
		muts, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("row %d mutations %q: %v", i, row[3], err)
		}
		// Only the idle regime is guaranteed mutations (it runs a fixed
		// op count); maintenance regimes can finish before a loaded CI
		// scheduler lets the churner in, so their count is advisory.
		if row[0] == "idle" && muts == 0 {
			t.Fatalf("regime %s observed no mutations", row[0])
		}
		if muts > 0 {
			if v, err := strconv.ParseFloat(row[4], 64); err != nil || v < 0 {
				t.Fatalf("regime %s p50 %q", row[0], row[4])
			}
		}
	}
}
