package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// RunFig4 reproduces Fig. 4 (influence of α): a single selfish peer's
// individual cost as its query workload gradually shifts toward
// content held in a larger cluster, for α ∈ {0, 1, 2}.
//
// Setup: same-category scenario under a uniform demand split; the good
// category clustering, except that categories 1 and 2 are merged into
// one double-size cluster c_new. The subject peer (category 0) shifts
// a fraction x of its workload to category-1 words. Because c_new has
// more members than the subject's current cluster, a larger α demands
// a larger workload shift before the move pays off — the peer's cost
// curve rises with x until the crossover, then drops as the selfish
// move is taken; the crossover shifts right as α grows.
func RunFig4(p Params, alphas []float64) *metrics.Series {
	if len(alphas) == 0 {
		alphas = []float64{0, 1, 2}
	}
	p.DemandZipfS = 0
	out := metrics.NewSeries("Fig 4: individual cost vs percentage of changing workload", "changed-workload")
	for _, a := range alphas {
		out.AddColumn(fmt.Sprintf("alpha=%g", a))
	}

	// One independent cell per (level, alpha), each over a private
	// perturbed system; cells run on the Params.Workers pool and are
	// assembled in a fixed order.
	levels := Levels01()
	ys := make([]float64, len(levels)*len(alphas))
	runIndexed(p.workerCount(), len(ys), func(i int) {
		x := levels[i/len(alphas)]
		a := alphas[i%len(alphas)]
		sys := Build(p, SameCategory)
		// Merge category 2 into category 1's cluster to create the
		// larger c_new.
		assign := sys.CategoryConfig().Assignment()
		for pid, c := range assign {
			if c == 2 {
				assign[pid] = 1
			}
		}
		cfg := cluster.FromAssignment(assign)
		// The subject is the lowest-ID category-0 peer.
		subject := -1
		for pid, c := range sys.DataCat {
			if c == 0 {
				subject = pid
				break
			}
		}
		rng := stats.NewRNG(p.Seed ^ 0xc2b2ae3d ^ uint64(x*1e6))
		sys.RedirectWorkload(subject, 1, x, rng)
		params := sys.Params
		params.Alpha = a
		sys.Params = params
		eng := sys.NewEngine(cfg)
		// The subject applies the selfish strategy: move to the
		// cost-minimizing cluster if it beats staying by more than ε.
		ev := eng.EvaluateMoves(subject)
		if ev.Gain() > sys.Params.Epsilon {
			eng.Move(subject, ev.Best)
		}
		ys[i] = eng.PeerCost(subject, eng.Config().ClusterOf(subject))
	})
	for li, x := range levels {
		out.AddPoint(x, ys[li*len(alphas):(li+1)*len(alphas)]...)
	}
	return out
}
