package peer

import (
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/stats"
)

func TestResultCountSingleAttr(t *testing.T) {
	p := New(1)
	p.SetItems([]attr.Set{
		attr.NewSet(1, 2),
		attr.NewSet(2, 3),
		attr.NewSet(3),
	})
	cases := map[attr.ID]int{1: 1, 2: 2, 3: 2, 4: 0}
	for id, want := range cases {
		if got := p.ResultCount(attr.NewSet(id)); got != want {
			t.Errorf("ResultCount({%d})=%d want %d", id, got, want)
		}
	}
}

func TestResultCountMultiAttrSubsetSemantics(t *testing.T) {
	p := New(2)
	p.SetItems([]attr.Set{
		attr.NewSet(1, 2, 3),
		attr.NewSet(1, 2),
		attr.NewSet(2, 3),
	})
	if got := p.ResultCount(attr.NewSet(1, 2)); got != 2 {
		t.Errorf("q={1,2}: %d want 2", got)
	}
	if got := p.ResultCount(attr.NewSet(2, 3)); got != 2 {
		t.Errorf("q={2,3}: %d want 2", got)
	}
	if got := p.ResultCount(attr.NewSet(1, 2, 3)); got != 1 {
		t.Errorf("q={1,2,3}: %d want 1", got)
	}
	if got := p.ResultCount(attr.NewSet(1, 4)); got != 0 {
		t.Errorf("q={1,4}: %d want 0", got)
	}
}

func TestEmptyQueryMatchesEverything(t *testing.T) {
	p := New(3)
	p.SetItems([]attr.Set{attr.NewSet(1), attr.NewSet(2)})
	if got := p.ResultCount(attr.Set{}); got != 2 {
		t.Errorf("empty query: %d want 2", got)
	}
}

func TestResultCountMatchesBruteForce(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := New(0)
		items := make([]attr.Set, 1+rng.Intn(8))
		for i := range items {
			ids := make([]attr.ID, 1+rng.Intn(4))
			for j := range ids {
				ids[j] = attr.ID(rng.Intn(6))
			}
			items[i] = attr.NewSet(ids...)
		}
		p.SetItems(items)
		qids := make([]attr.ID, 1+rng.Intn(3))
		for j := range qids {
			qids[j] = attr.ID(rng.Intn(6))
		}
		q := attr.NewSet(qids...)
		want := 0
		for _, it := range items {
			if q.SubsetOf(it) {
				want++
			}
		}
		// Twice: second hit exercises the memo cache.
		return p.ResultCount(q) == want && p.ResultCount(q) == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestContentMutationInvalidatesCaches(t *testing.T) {
	p := New(4)
	p.SetItems([]attr.Set{attr.NewSet(1, 2)})
	q := attr.NewSet(1, 2)
	if p.ResultCount(q) != 1 {
		t.Fatal("setup")
	}
	v := p.Version()
	p.ReplaceItem(0, attr.NewSet(3))
	if p.Version() == v {
		t.Fatal("version did not bump")
	}
	if got := p.ResultCount(q); got != 0 {
		t.Fatalf("stale cache: %d", got)
	}
	p.AddItem(attr.NewSet(1, 2, 3))
	if got := p.ResultCount(q); got != 1 {
		t.Fatalf("after AddItem: %d", got)
	}
}

func TestReplaceItemPanicsOutOfRange(t *testing.T) {
	p := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.ReplaceItem(0, attr.NewSet(1))
}

func TestItemsReturnsCopy(t *testing.T) {
	p := New(6)
	p.SetItems([]attr.Set{attr.NewSet(1)})
	items := p.Items()
	items[0] = attr.NewSet(9)
	if p.ResultCount(attr.NewSet(1)) != 1 {
		t.Fatal("Items exposed internal state")
	}
}

func TestAttrFrequencies(t *testing.T) {
	p := New(7)
	p.SetItems([]attr.Set{attr.NewSet(1, 2), attr.NewSet(2), attr.NewSet(2, 3)})
	f := p.AttrFrequencies()
	if f[1] != 1 || f[2] != 3 || f[3] != 1 {
		t.Fatalf("frequencies: %v", f)
	}
}

func TestIDAndNumItems(t *testing.T) {
	p := New(42)
	if p.ID() != 42 || p.NumItems() != 0 {
		t.Fatal("basic accessors")
	}
	p.AddItem(attr.NewSet(1))
	if p.NumItems() != 1 {
		t.Fatal("NumItems after add")
	}
}

// TestResultCountROMatchesResultCount pins the read-only path to the
// caching path over random peers and queries, including the empty
// query, and checks it allocates nothing and tolerates concurrent
// readers alongside a cache-building writer.
func TestResultCountROMatchesResultCount(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		p := New(trial)
		items := make([]attr.Set, 0, 8)
		for i := 0; i < 2+rng.Intn(6); i++ {
			ids := make([]attr.ID, 0, 4)
			for k := 0; k < 1+rng.Intn(4); k++ {
				ids = append(ids, attr.ID(rng.Intn(9)))
			}
			items = append(items, attr.NewSet(ids...))
		}
		p.SetItems(items)
		p.Freeze()
		queries := []attr.Set{{}}
		for i := 0; i < 12; i++ {
			ids := make([]attr.ID, 0, 3)
			for k := 0; k < 1+rng.Intn(3); k++ {
				ids = append(ids, attr.ID(rng.Intn(10)))
			}
			queries = append(queries, attr.NewSet(ids...))
		}
		for _, q := range queries {
			if got, want := p.ResultCountRO(q), p.ResultCount(q); got != want {
				t.Fatalf("trial %d: ResultCountRO(%v)=%d, ResultCount=%d", trial, q, got, want)
			}
		}
		if avg := testing.AllocsPerRun(50, func() {
			for _, q := range queries {
				p.ResultCountRO(q)
			}
		}); avg != 0 {
			t.Fatalf("trial %d: ResultCountRO allocates %v per run, want 0", trial, avg)
		}
	}
}

func TestResultCountROPanicsBeforeFreeze(t *testing.T) {
	p := New(7)
	p.SetItems([]attr.Set{attr.NewSet(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("ResultCountRO on an unfrozen peer did not panic")
		}
	}()
	p.ResultCountRO(attr.NewSet(1))
}
