// Package peer models a node of the peer-to-peer system: its shared
// data items (attribute sets) and the machinery to answer queries over
// them. result(q,p) — the number of items of p matched by q — is the
// primitive everything in the paper's cost model is built from.
package peer

import (
	"fmt"

	"repro/internal/attr"
)

// Peer is one autonomous node. Content may be replaced at any time
// (the update experiments of §4.2 do exactly that); query-answering
// structures are rebuilt lazily. A Peer is not safe for concurrent
// mutation; the sim package serializes access per actor.
type Peer struct {
	id    int
	items []attr.Set

	// postings maps an attribute to the indices of items containing it.
	postings map[attr.ID][]int32
	// cache memoizes ResultCount by query key; reset on content change.
	cache   map[string]int
	version int
}

// New creates a peer with the given ID and no content.
func New(id int) *Peer {
	return &Peer{id: id}
}

// ID returns the peer's identifier.
func (p *Peer) ID() int { return p.id }

// SetID rebinds the peer's identifier. The membership engine assigns
// joiners their slot ID this way (the slot is not known before the
// join is admitted); nothing else should call it.
func (p *Peer) SetID(id int) { p.id = id }

// NumItems returns how many data items the peer shares.
func (p *Peer) NumItems() int { return len(p.items) }

// Items returns a copy of the peer's item list.
func (p *Peer) Items() []attr.Set {
	return append([]attr.Set(nil), p.items...)
}

// Version increments whenever content changes; cost engines use it to
// detect stale snapshots.
func (p *Peer) Version() int { return p.version }

// SetItems replaces the peer's content.
func (p *Peer) SetItems(items []attr.Set) {
	p.items = append(p.items[:0:0], items...)
	p.invalidate()
}

// AddItem appends one data item.
func (p *Peer) AddItem(item attr.Set) {
	p.items = append(p.items, item)
	p.invalidate()
}

// ReplaceItem swaps the item at index i (used by the partial content
// update experiments). It panics on out-of-range i.
func (p *Peer) ReplaceItem(i int, item attr.Set) {
	if i < 0 || i >= len(p.items) {
		panic(fmt.Sprintf("peer %d: ReplaceItem index %d out of range [0,%d)", p.id, i, len(p.items)))
	}
	p.items[i] = item
	p.invalidate()
}

func (p *Peer) invalidate() {
	p.postings = nil
	p.cache = nil
	p.version++
}

func (p *Peer) buildPostings() {
	p.postings = make(map[attr.ID][]int32)
	for i, it := range p.items {
		for _, a := range it.IDs() {
			p.postings[a] = append(p.postings[a], int32(i))
		}
	}
}

// ResultCount returns result(q,p): the number of the peer's items whose
// attributes are a superset of q. The empty query matches every item.
func (p *Peer) ResultCount(q attr.Set) int {
	if q.IsEmpty() {
		return len(p.items)
	}
	if p.postings == nil {
		p.buildPostings()
	}
	if q.Len() == 1 {
		return len(p.postings[q.IDs()[0]])
	}
	key := q.Key()
	if p.cache != nil {
		if n, ok := p.cache[key]; ok {
			return n
		}
	}
	n := p.countMulti(q)
	if p.cache == nil {
		p.cache = make(map[string]int)
	}
	p.cache[key] = n
	return n
}

// Freeze pre-builds the peer's query-answering index so that
// subsequent ResultCountRO calls are pure reads. Callers that share a
// peer with concurrent readers (the routing read views) Freeze it
// under their write lock once; any content mutation re-arms the lazy
// build and requires a fresh Freeze before the next concurrent read.
func (p *Peer) Freeze() {
	if p.postings == nil {
		p.buildPostings()
	}
}

// ResultCountRO is ResultCount for concurrent readers: it never
// mutates the peer — no lazy index build and no memo cache — so any
// number of goroutines may call it on a frozen peer while a separate
// writer runs ResultCount (which only touches the cache). The peer
// must have been Frozen since its last content mutation.
func (p *Peer) ResultCountRO(q attr.Set) int {
	if q.IsEmpty() {
		return len(p.items)
	}
	if p.postings == nil {
		panic(fmt.Sprintf("peer %d: ResultCountRO before Freeze", p.id))
	}
	if q.Len() == 1 {
		return len(p.postings[q.IDs()[0]])
	}
	return p.countMulti(q)
}

// countMulti intersects posting lists, starting from the rarest term.
// It is read-only and allocation-free.
func (p *Peer) countMulti(q attr.Set) int {
	ids := q.IDs()
	// Find the shortest posting list to drive the intersection.
	best := -1
	for i, a := range ids {
		l := len(p.postings[a])
		if l == 0 {
			return 0
		}
		if best < 0 || l < len(p.postings[ids[best]]) {
			best = i
		}
	}
	n := 0
	for _, idx := range p.postings[ids[best]] {
		if q.SubsetOf(p.items[idx]) {
			n++
		}
	}
	return n
}

// AppendAttrs appends the distinct attributes appearing in the peer's
// items to dst and returns the extended slice. The order is
// unspecified (callers that need determinism sort the result); hot
// paths pass a reused scratch slice to stay allocation-free.
func (p *Peer) AppendAttrs(dst []attr.ID) []attr.ID {
	if p.postings == nil {
		p.buildPostings()
	}
	for a := range p.postings {
		dst = append(dst, a)
	}
	return dst
}

// AttrFrequencies returns, for every attribute appearing in the peer's
// items, the number of items containing it. The baseline re-clustering
// algorithm uses this as the peer's term vector.
func (p *Peer) AttrFrequencies() map[attr.ID]int {
	if p.postings == nil {
		p.buildPostings()
	}
	out := make(map[attr.ID]int, len(p.postings))
	for a, lst := range p.postings {
		out[a] = len(lst)
	}
	return out
}
