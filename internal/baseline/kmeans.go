// Package baseline implements the comparators the paper motivates
// against (§1): re-applying a clustering procedure from scratch with
// global knowledge — realized here as cosine k-means over peer term
// vectors — plus the trivial no-clustering configurations (one giant
// cluster, all singletons). Each baseline reports a communication-cost
// model so the harness can quantify the paper's claim that local
// reformulation is far cheaper than global re-clustering.
package baseline

import (
	"math"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
)

// vector is a sparse term-frequency vector with cached norm.
type vector struct {
	terms map[attr.ID]float64
	norm  float64
}

func newVector(freqs map[attr.ID]int) vector {
	v := vector{terms: make(map[attr.ID]float64, len(freqs))}
	var ss float64
	for a, c := range freqs {
		f := float64(c)
		v.terms[a] = f
		ss += f * f
	}
	v.norm = math.Sqrt(ss)
	return v
}

func (v vector) cosine(u vector) float64 {
	if v.norm == 0 || u.norm == 0 {
		return 0
	}
	// Iterate the smaller map.
	a, b := v, u
	if len(b.terms) < len(a.terms) {
		a, b = b, a
	}
	var dot float64
	for t, x := range a.terms {
		if y, ok := b.terms[t]; ok {
			dot += x * y
		}
	}
	return dot / (v.norm * u.norm)
}

func (v vector) add(u vector) vector {
	out := vector{terms: make(map[attr.ID]float64, len(v.terms)+len(u.terms))}
	for t, x := range v.terms {
		out.terms[t] = x
	}
	for t, y := range u.terms {
		out.terms[t] += y
	}
	var ss float64
	for _, x := range out.terms {
		ss += x * x
	}
	out.norm = math.Sqrt(ss)
	return out
}

// KMeansResult is the outcome of a global re-clustering pass.
type KMeansResult struct {
	// Config assigns every peer to one of K clusters (empty clusters
	// possible when K exceeds the natural structure).
	Config *cluster.Config
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Messages models the communication cost of the centralized
	// procedure: every peer ships its term vector to a coordinator
	// (one message per vector entry, the unit also used by the
	// protocol's message counter) and receives its assignment.
	Messages int
	// Moved is the number of peers whose cluster changed in the last
	// refinement step (0 at convergence).
	Moved int
}

// KMeans clusters peers by cosine similarity of their term-frequency
// vectors into k groups (k-means++ seeding, Lloyd refinement). It is
// deterministic given rng.
func KMeans(peers []*peer.Peer, k, maxIter int, rng *stats.RNG) KMeansResult {
	n := len(peers)
	if k <= 0 || k > n {
		panic("baseline: k out of range")
	}
	vecs := make([]vector, n)
	msgs := 0
	for i, p := range peers {
		vecs[i] = newVector(p.AttrFrequencies())
		msgs += len(vecs[i].terms) + 1 // ship vector + receive assignment
	}

	// k-means++ seeding on (1 - cosine) distance.
	centers := make([]vector, 0, k)
	first := rng.Intn(n)
	centers = append(centers, vecs[first])
	dist := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i := range vecs {
			best := math.Inf(1)
			for _, c := range centers {
				d := 1 - vecs[i].cosine(c)
				if d < best {
					best = d
				}
			}
			dist[i] = best * best
			sum += dist[i]
		}
		if sum == 0 {
			// All remaining points coincide with a center; spread
			// arbitrary distinct peers.
			centers = append(centers, vecs[rng.Intn(n)])
			continue
		}
		x := rng.Float64() * sum
		pick := 0
		for i, d := range dist {
			x -= d
			if x < 0 {
				pick = i
				break
			}
		}
		centers = append(centers, vecs[pick])
	}

	assign := make([]int, n)
	res := KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		moved := 0
		for i := range vecs {
			best, bestSim := 0, -1.0
			for ci, c := range centers {
				sim := vecs[i].cosine(c)
				if sim > bestSim {
					best, bestSim = ci, sim
				}
			}
			if iter == 0 || assign[i] != best {
				moved++
			}
			assign[i] = best
		}
		res.Moved = moved
		if iter > 0 && moved == 0 {
			break
		}
		// Recompute centroids.
		sums := make([]vector, k)
		for ci := range sums {
			sums[ci] = vector{terms: map[attr.ID]float64{}}
		}
		for i, a := range assign {
			sums[a] = sums[a].add(vecs[i])
		}
		for ci := range centers {
			if len(sums[ci].terms) > 0 {
				centers[ci] = sums[ci]
			}
		}
	}

	cids := make([]cluster.CID, n)
	for i, a := range assign {
		cids[i] = cluster.CID(a)
	}
	res.Config = cluster.FromAssignment(cids)
	res.Messages = msgs
	return res
}

// SingleCluster returns the degenerate configuration with every peer in
// one cluster (Gnutella-style flooding domain).
func SingleCluster(n int) *cluster.Config {
	assign := make([]cluster.CID, n)
	return cluster.FromAssignment(assign)
}

// Singletons returns the configuration where no peer clusters at all.
func Singletons(n int) *cluster.Config {
	return cluster.NewSingletons(n)
}

// CategoryPurity measures how well a configuration recovers a ground
// truth labeling: for each non-empty cluster take the share of its
// majority label, weighted by cluster size. 1.0 means every cluster is
// label-pure.
func CategoryPurity(cfg *cluster.Config, labels []int) float64 {
	var weighted float64
	n := 0
	for _, cid := range cfg.NonEmpty() {
		members := cfg.Members(cid)
		counts := map[int]int{}
		for _, p := range members {
			counts[labels[p]]++
		}
		best := 0
		keys := make([]int, 0, len(counts))
		for l := range counts {
			keys = append(keys, l)
		}
		sort.Ints(keys)
		for _, l := range keys {
			if counts[l] > best {
				best = counts[l]
			}
		}
		weighted += float64(best)
		n += len(members)
	}
	if n == 0 {
		return 0
	}
	return weighted / float64(n)
}
