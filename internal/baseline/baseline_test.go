package baseline

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/peer"
	"repro/internal/stats"
)

// labeledPeers builds groups*perGroup peers where group g's items use
// attribute ids in [g*8, g*8+8).
func labeledPeers(groups, perGroup int, seed uint64) ([]*peer.Peer, []int) {
	rng := stats.NewRNG(seed)
	n := groups * perGroup
	peers := make([]*peer.Peer, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		g := i % groups
		labels[i] = g
		p := peer.New(i)
		items := make([]attr.Set, 4)
		for d := range items {
			a := attr.ID(g*8 + rng.Intn(8))
			b := attr.ID(g*8 + rng.Intn(8))
			items[d] = attr.NewSet(a, b)
		}
		p.SetItems(items)
		peers[i] = p
	}
	return peers, labels
}

func TestKMeansRecoversGroups(t *testing.T) {
	peers, labels := labeledPeers(4, 8, 3)
	res := KMeans(peers, 4, 50, stats.NewRNG(1))
	if err := res.Config.Validate(); err != nil {
		t.Fatal(err)
	}
	purity := CategoryPurity(res.Config, labels)
	if purity < 0.99 {
		t.Fatalf("purity %g on perfectly separable data (sizes %v)", purity, res.Config.Sizes())
	}
	if res.Messages <= 0 {
		t.Fatal("no communication accounted")
	}
	if res.Iterations <= 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestKMeansDeterminism(t *testing.T) {
	peers, _ := labeledPeers(3, 6, 5)
	a := KMeans(peers, 3, 50, stats.NewRNG(7))
	b := KMeans(peers, 3, 50, stats.NewRNG(7))
	pa, pb := a.Config.Assignment(), b.Config.Assignment()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("assignments diverge at %d", i)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	peers, _ := labeledPeers(2, 3, 9)
	for _, k := range []int{0, len(peers) + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: no panic", k)
				}
			}()
			KMeans(peers, k, 10, stats.NewRNG(1))
		}()
	}
}

func TestTrivialConfigs(t *testing.T) {
	c := SingleCluster(5)
	if c.NumNonEmpty() != 1 || c.Size(0) != 5 {
		t.Fatal("SingleCluster")
	}
	s := Singletons(5)
	if s.NumNonEmpty() != 5 {
		t.Fatal("Singletons")
	}
}

func TestCategoryPurity(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	pure := SingleCluster(4)
	if got := CategoryPurity(pure, labels); got != 0.5 {
		t.Fatalf("mixed purity %g want 0.5", got)
	}
	perfect := Singletons(4)
	if got := CategoryPurity(perfect, labels); got != 1 {
		t.Fatalf("singleton purity %g want 1", got)
	}
}

func TestCosineVector(t *testing.T) {
	a := newVector(map[attr.ID]int{1: 2, 2: 1})
	b := newVector(map[attr.ID]int{1: 2, 2: 1})
	if sim := a.cosine(b); sim < 0.999 {
		t.Fatalf("identical vectors cosine %g", sim)
	}
	c := newVector(map[attr.ID]int{9: 3})
	if sim := a.cosine(c); sim != 0 {
		t.Fatalf("orthogonal vectors cosine %g", sim)
	}
	var zero vector
	if a.cosine(zero) != 0 {
		t.Fatal("zero vector cosine")
	}
}
