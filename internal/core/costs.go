package core

import (
	"repro/internal/cluster"
	"repro/internal/workload"
)

// SCost returns the social cost (Eq. 2): the sum of the individual
// costs of all peers under the current configuration. The value is
// maintained incrementally under Move/AddPeer/RemovePeer (membership,
// demand-weight and cluster-recall sums), so this is an O(1) read, not
// a rescan. |P| is the live peer count; an empty system costs 0.
func (e *Engine) SCost() float64 {
	if e.cfg.Live() == 0 {
		return 0
	}
	return e.alpha*e.membSumRaw/float64(e.cfg.Live()) + e.sumW - e.recallSum
}

// SCostNormalized returns SCost/|P| — the mean individual cost, the
// normalization under which the ideal scenario-1 configuration of the
// paper scores 0.1 (Table 1).
func (e *Engine) SCostNormalized() float64 {
	if e.cfg.Live() == 0 {
		return 0
	}
	return e.SCost() / float64(e.cfg.Live())
}

// SCostParts splits the social cost into its membership and recall
// components: SCost() == membership + recall. As the paper notes (§2.2)
// the membership part equals WCost's maintenance term — each cluster
// appears in the SCost sum once per member.
func (e *Engine) SCostParts() (membership, recall float64) {
	membership = e.wcostMaintenance()
	return membership, e.SCost() - membership
}

// WCostParts splits the workload cost into its maintenance and recall
// components: WCost() == maintenance + recall.
func (e *Engine) WCostParts() (maintenance, recall float64) {
	return e.wcostMaintenance(), e.wcostRecall()
}

// WCost returns the workload cost (Eq. 3): the cluster maintenance term
// α·Σ_c |c|·θ(|c|)/|P| plus the query-frequency-weighted recall lost
// outside the initiators' clusters. Both terms are O(1) reads off the
// incrementally maintained state.
func (e *Engine) WCost() float64 {
	return e.wcostMaintenance() + e.wcostRecall()
}

// WCostNormalized divides the maintenance term by |P| (the recall term
// is already a [0,1] frequency-weighted average), matching the
// normalized values reported in Table 1.
func (e *Engine) WCostNormalized() float64 {
	if e.cfg.Live() == 0 {
		return 0
	}
	return e.wcostMaintenance()/float64(e.cfg.Live()) + e.wcostRecall()
}

func (e *Engine) wcostMaintenance() float64 {
	if e.cfg.Live() == 0 {
		return 0
	}
	return e.alpha * e.membSumRaw / float64(e.cfg.Live())
}

func (e *Engine) wcostRecall() float64 {
	total := e.wl.Total()
	if total == 0 {
		return 0
	}
	return (e.ansDemand - e.wRecallSum) / float64(total)
}

// Contribution returns Eq. 6: the share of the results peer p supplies
// to queries originating in cluster c, relative to the results p
// supplies to the whole system's workload. It is 0 for peers whose
// content answers no query at all.
func (e *Engine) Contribution(p int, c cluster.CID) float64 {
	var num, den float64
	cm := e.stride
	ci := int(c)
	for _, re := range e.peerRes[p] {
		den += e.demandTot[re.qid] * re.res
		num += e.clusterDemand[int(re.qid)*cm+ci] * re.res
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ContributionEval is the altruistic counterpart of MoveEval.
type ContributionEval struct {
	// Cur is the peer's current cluster and CurContribution its Eq. 6
	// value there.
	Cur             cluster.CID
	CurContribution float64
	// Best is the non-empty cluster with maximum contribution
	// (possibly Cur) and BestContribution its value.
	Best             cluster.CID
	BestContribution float64
}

// EvaluateContribution computes Eq. 6 against every non-empty cluster
// in one pass. Ties prefer the current cluster, then the lowest ID.
// Like EvaluateMoves it reuses the engine's dense scratch accumulator
// and allocates nothing at steady state.
func (e *Engine) EvaluateContribution(p int) ContributionEval {
	return e.evaluateContribution(p, e.nonEmptyScratch(), e.accScratch)
}

// evaluateContribution is EvaluateContribution over caller-owned
// scratch; see evaluateMoves.
func (e *Engine) evaluateContribution(p int, nonEmpty []cluster.CID, num []float64) ContributionEval {
	cur := e.cfg.ClusterOf(p)
	var den float64
	cm := e.stride
	for _, re := range e.peerRes[p] {
		den += e.demandTot[re.qid] * re.res
		row := e.clusterDemand[int(re.qid)*cm : int(re.qid)*cm+cm]
		for _, c := range nonEmpty {
			if v := row[c]; v != 0 {
				num[c] += v * re.res
			}
		}
	}
	ev := ContributionEval{Cur: cur}
	if den == 0 {
		ev.Best = cur
		for _, c := range nonEmpty {
			num[c] = 0
		}
		return ev
	}
	ev.CurContribution = num[cur] / den
	ev.Best, ev.BestContribution = cur, ev.CurContribution
	for _, c := range nonEmpty {
		v := num[c] / den
		if v > ev.BestContribution || (v == ev.BestContribution && ev.Best != cur && c < ev.Best) {
			ev.Best, ev.BestContribution = c, v
		}
	}
	for _, c := range nonEmpty {
		num[c] = 0
	}
	return ev
}

// DeltaMembership returns the increase in the membership cost of
// cluster c caused by one more peer joining, summed over its current
// members: α·|c|·(θ(|c|+1) − θ(|c|))/|P|. This is the cost the
// altruistic clgain charges a joiner (§3.1.2); its slope parallels the
// selfish membership term and is what stops altruistic accretion into
// one giant cluster (the weaker per-member marginal reading below lets
// the whole network collapse into a single cluster, SCost = 1).
func (e *Engine) DeltaMembership(c cluster.CID) float64 {
	s := e.cfg.Size(c)
	if s == 0 {
		return 0
	}
	return e.alpha * float64(s) * (e.theta.F(s+1) - e.theta.F(s)) / float64(e.cfg.Live())
}

// DeltaMembershipMarginal is the weaker reading of §3.1.2: only the
// growth of the per-member participation cost, α·(θ(|c|+1)−θ(|c|))/|P|.
// Exposed for the clgain ablation, which demonstrates why the total
// reading is the right model.
func (e *Engine) DeltaMembershipMarginal(c cluster.CID) float64 {
	s := e.cfg.Size(c)
	if s == 0 {
		return 0
	}
	return e.alpha * (e.theta.F(s+1) - e.theta.F(s)) / float64(e.cfg.Live())
}

// ClusterRecall returns R(q,c) = Σ_{p∈c} r(q,p): the fraction of all
// results for query qid held inside cluster c (the paper's "cluster
// recall" measure of §3.1). It returns 0 when the query has no results
// anywhere.
func (e *Engine) ClusterRecall(qid workload.QID, c cluster.CID) float64 {
	return e.clusterRes[int(qid)*e.stride+int(c)] * e.invTot[qid]
}

// TotalResults returns Σ_p result(q,p) for qid.
func (e *Engine) TotalResults(qid workload.QID) float64 { return e.totals[qid] }
