package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
)

func TestBestMultiStrategyNeverWorseThanSingle(t *testing.T) {
	e := newTestEngine(t, 16, 9, 71, nil)
	rng := stats.NewRNG(72)
	for i := 0; i < 30; i++ {
		e.Move(rng.Intn(16), cluster.CID(rng.Intn(8)))
	}
	for p := 0; p < 16; p++ {
		me := e.BestMultiStrategy(p, 4)
		if me.Cost > me.SingleCost+1e-12 {
			t.Errorf("peer %d: multi cost %g above single %g", p, me.Cost, me.SingleCost)
		}
		if len(me.Strategy) == 0 || len(me.Strategy) > 4 {
			t.Errorf("peer %d: strategy size %d", p, len(me.Strategy))
		}
		if !almost(me.Cost, e.PeerCostMulti(p, me.Strategy)) {
			t.Errorf("peer %d: reported cost %g != recomputed %g", p, me.Cost, e.PeerCostMulti(p, me.Strategy))
		}
		if !almost(me.Gain(), me.SingleCost-me.Cost) {
			t.Errorf("peer %d: gain accessor mismatch", p)
		}
	}
}

func TestBestMultiStrategyTrajectoryMonotone(t *testing.T) {
	e := newTestEngine(t, 14, 8, 73, nil)
	rng := stats.NewRNG(74)
	for i := 0; i < 25; i++ {
		e.Move(rng.Intn(14), cluster.CID(rng.Intn(7)))
	}
	for p := 0; p < 14; p++ {
		me := e.BestMultiStrategy(p, 0) // unbounded
		if len(me.Trajectory) != len(me.Strategy) {
			t.Fatalf("peer %d: trajectory %d strategy %d", p, len(me.Trajectory), len(me.Strategy))
		}
		for i := 1; i < len(me.Trajectory); i++ {
			if me.Trajectory[i] > me.Trajectory[i-1]+1e-12 {
				t.Errorf("peer %d: trajectory rose at step %d: %v", p, i, me.Trajectory)
			}
		}
		// Greedy stops only when no addition helps, so the last point
		// is the reported cost.
		if !almost(me.Trajectory[len(me.Trajectory)-1], me.Cost) {
			t.Errorf("peer %d: trajectory end != cost", p)
		}
	}
}

func TestBestMultiStrategyJoiningEverythingBound(t *testing.T) {
	// With every non-empty cluster joined the recall cost vanishes, so
	// the greedy cost can never beat pure membership of all clusters
	// minus nothing — sanity-check against PeerCostMulti(all).
	e := newTestEngine(t, 12, 8, 79, nil)
	all := e.Config().NonEmpty()
	for p := 0; p < 12; p++ {
		me := e.BestMultiStrategy(p, 0)
		allCost := e.PeerCostMulti(p, all)
		if me.Cost > math.Max(allCost, me.SingleCost)+1e-12 {
			t.Errorf("peer %d: greedy %g worse than both single %g and all %g",
				p, me.Cost, me.SingleCost, allCost)
		}
	}
}
