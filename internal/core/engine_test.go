package core

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// testSystem builds a small deterministic system: n peers, each holding
// items over a vocabulary of v attributes, with random single-attribute
// workloads.
func testSystem(t testing.TB, n, v int, seed uint64) ([]*peer.Peer, *workload.Workload, *attr.Vocab) {
	t.Helper()
	rng := stats.NewRNG(seed)
	vocab := attr.NewVocab()
	ids := make([]attr.ID, v)
	for i := range ids {
		ids[i] = vocab.Intern(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	for i := 0; i < n; i++ {
		p := peer.New(i)
		items := make([]attr.Set, 0, 3)
		for d := 0; d < 3; d++ {
			a := ids[rng.Intn(v)]
			b := ids[rng.Intn(v)]
			items = append(items, attr.NewSet(a, b))
		}
		p.SetItems(items)
		peers[i] = p
		for q := 0; q < 2; q++ {
			wl.Add(i, attr.NewSet(ids[rng.Intn(v)]), 1+rng.Intn(4))
		}
	}
	return peers, wl, vocab
}

func newTestEngine(t testing.TB, n, v int, seed uint64, cfg *cluster.Config) *Engine {
	t.Helper()
	peers, wl, _ := testSystem(t, n, v, seed)
	if cfg == nil {
		cfg = cluster.NewSingletons(n)
	}
	return New(peers, wl, cfg, cluster.LinearTheta(), 1)
}

func TestWorkedExampleSection23(t *testing.T) {
	// The paper's §2.3 worked example with linear θ:
	//   split:    pcost(p0,c0) = α/2 + 1, pcost(p1,c1) = α/2
	//   together: pcost(p0,c) = pcost(p1,c) = α
	// and probing p0 -> c1 from the split configuration costs α.
	for _, alpha := range []float64{0.5, 1, 1.5} {
		inst := NewTwoPeerInstance(alpha)
		e := inst.Engine
		if err := inst.SetConfiguration("split"); err != nil {
			t.Fatal(err)
		}
		if got, want := e.PeerCost(0, 0), alpha/2+1; !almost(got, want) {
			t.Errorf("alpha=%g split pcost(p0,c0)=%g want %g", alpha, got, want)
		}
		if got, want := e.PeerCost(1, 1), alpha/2; !almost(got, want) {
			t.Errorf("alpha=%g split pcost(p1,c1)=%g want %g", alpha, got, want)
		}
		if got, want := e.PeerCost(0, 1), alpha; !almost(got, want) {
			t.Errorf("alpha=%g probe pcost(p0,c1)=%g want %g", alpha, got, want)
		}
		if err := inst.SetConfiguration("together"); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 2; p++ {
			if got := e.PeerCost(p, e.Config().ClusterOf(p)); !almost(got, alpha) {
				t.Errorf("alpha=%g together pcost(p%d)=%g want %g", alpha, p, got, alpha)
			}
		}
	}
}

func TestTwoPeerCounterexampleNoNash(t *testing.T) {
	for _, alpha := range []float64{0.25, 1, 1.9} {
		inst := NewTwoPeerInstance(alpha)
		trace, err := inst.VerifyNoNash()
		if err != nil {
			t.Fatalf("alpha=%g: %v", alpha, err)
		}
		if trace == "" {
			t.Fatalf("alpha=%g: empty trace", alpha)
		}
	}
}

func TestTwoPeerCounterexampleRejectsOutOfRangeAlpha(t *testing.T) {
	for _, alpha := range []float64{2, 3} {
		inst := NewTwoPeerInstance(alpha)
		if _, err := inst.VerifyNoNash(); err == nil {
			t.Errorf("alpha=%g: expected error (split is weakly stable at alpha>=2)", alpha)
		}
	}
}

func TestSplitIsNashAtAlphaTwo(t *testing.T) {
	// At α = 2 the deviation of the paper's argument is only weak:
	// the split configuration is a pure Nash equilibrium.
	inst := NewTwoPeerInstance(2)
	if err := inst.SetConfiguration("split"); err != nil {
		t.Fatal(err)
	}
	if ok, w := inst.Engine.IsNash(1e-12); !ok {
		t.Errorf("split at alpha=2 should be Nash; witness %+v", w)
	}
}

func TestSCostIsSumOfIndividualCosts(t *testing.T) {
	e := newTestEngine(t, 20, 12, 7, nil)
	var sum float64
	for p := 0; p < e.NumPeers(); p++ {
		sum += e.PeerCost(p, e.Config().ClusterOf(p))
	}
	if got := e.SCost(); !almost(got, sum) {
		t.Errorf("SCost=%g want sum of pcost=%g", got, sum)
	}
	if got := e.SCostNormalized(); !almost(got, sum/20) {
		t.Errorf("SCostNormalized=%g want %g", got, sum/20)
	}
}

func TestRecallConservation(t *testing.T) {
	e := newTestEngine(t, 15, 10, 11, nil)
	wl := e.Workload()
	for q := 0; q < wl.NumQueries(); q++ {
		qid := workload.QID(q)
		if e.TotalResults(qid) == 0 {
			continue
		}
		var sum float64
		for _, c := range e.Config().NonEmpty() {
			sum += e.ClusterRecall(qid, c)
		}
		if !almost(sum, 1) {
			t.Errorf("query %d: cluster recalls sum to %g, want 1", q, sum)
		}
	}
}

func TestIncrementalMoveMatchesRebuild(t *testing.T) {
	e := newTestEngine(t, 18, 10, 3, nil)
	rng := stats.NewRNG(99)
	for step := 0; step < 200; step++ {
		p := rng.Intn(18)
		to := cluster.CID(rng.Intn(18))
		e.Move(p, to)
		if step%20 != 0 {
			continue
		}
		// Rebuild a fresh engine on a clone and compare every measure.
		fresh := New(e.Peers(), e.Workload(), e.Config().Clone(), e.Theta(), e.Alpha())
		if a, b := e.SCost(), fresh.SCost(); !almost(a, b) {
			t.Fatalf("step %d: incremental SCost=%g rebuilt=%g", step, a, b)
		}
		if a, b := e.WCost(), fresh.WCost(); !almost(a, b) {
			t.Fatalf("step %d: incremental WCost=%g rebuilt=%g", step, a, b)
		}
		for pid := 0; pid < 18; pid++ {
			cid := e.Config().ClusterOf(pid)
			if a, b := e.PeerCost(pid, cid), fresh.PeerCost(pid, cid); !almost(a, b) {
				t.Fatalf("step %d peer %d: incremental pcost=%g rebuilt=%g", step, pid, a, b)
			}
			if a, b := e.Contribution(pid, cid), fresh.Contribution(pid, cid); !almost(a, b) {
				t.Fatalf("step %d peer %d: incremental contribution=%g rebuilt=%g", step, pid, a, b)
			}
		}
		if err := e.Config().Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestEvaluateMovesMatchesPeerCost(t *testing.T) {
	e := newTestEngine(t, 16, 9, 5, nil)
	rng := stats.NewRNG(4)
	for step := 0; step < 30; step++ {
		e.Move(rng.Intn(16), cluster.CID(rng.Intn(16)))
	}
	for p := 0; p < 16; p++ {
		ev := e.EvaluateMoves(p)
		cur := e.Config().ClusterOf(p)
		if ev.Cur != cur {
			t.Fatalf("peer %d: ev.Cur=%d want %d", p, ev.Cur, cur)
		}
		if !almost(ev.CurCost, e.PeerCost(p, cur)) {
			t.Errorf("peer %d: CurCost=%g want %g", p, ev.CurCost, e.PeerCost(p, cur))
		}
		if !almost(ev.AloneCost, e.CostAlone(p)) {
			t.Errorf("peer %d: AloneCost=%g want %g", p, ev.AloneCost, e.CostAlone(p))
		}
		// Best must match an exhaustive scan.
		bestC, bestCost := cur, e.PeerCost(p, cur)
		for _, c := range e.Config().NonEmpty() {
			if cost := e.PeerCost(p, c); cost < bestCost-1e-12 {
				bestC, bestCost = c, cost
			}
		}
		if !almost(ev.BestCost, bestCost) {
			t.Errorf("peer %d: BestCost=%g want %g (best=%d scan=%d)", p, ev.BestCost, bestCost, ev.Best, bestC)
		}
	}
}

func TestEvaluateContributionMatchesContribution(t *testing.T) {
	e := newTestEngine(t, 14, 8, 6, nil)
	rng := stats.NewRNG(8)
	for step := 0; step < 25; step++ {
		e.Move(rng.Intn(14), cluster.CID(rng.Intn(14)))
	}
	for p := 0; p < 14; p++ {
		ev := e.EvaluateContribution(p)
		if !almost(ev.CurContribution, e.Contribution(p, ev.Cur)) {
			t.Errorf("peer %d: CurContribution=%g want %g", p, ev.CurContribution, e.Contribution(p, ev.Cur))
		}
		best := 0.0
		for _, c := range e.Config().NonEmpty() {
			if v := e.Contribution(p, c); v > best {
				best = v
			}
		}
		if ev.BestContribution < best-1e-12 {
			t.Errorf("peer %d: BestContribution=%g below scan max %g", p, ev.BestContribution, best)
		}
	}
}

func TestPeerCostMultiSingleMatchesPeerCost(t *testing.T) {
	// A singleton strategy {c} under Eq. 1 must price exactly like the
	// single-cluster pcost(p, c) — both for the peer's current cluster
	// and for probes of every other non-empty cluster (where the
	// membership term and the peer's own results account for its
	// hypothetical arrival).
	e := newTestEngine(t, 12, 8, 13, nil)
	rng := stats.NewRNG(21)
	for step := 0; step < 20; step++ {
		e.Move(rng.Intn(12), cluster.CID(rng.Intn(12)))
	}
	for p := 0; p < 12; p++ {
		cur := e.Config().ClusterOf(p)
		if a, b := e.PeerCostMulti(p, []cluster.CID{cur}), e.PeerCost(p, cur); !almost(a, b) {
			t.Errorf("peer %d: multi({cur})=%g pcost=%g", p, a, b)
		}
		for _, c := range e.Config().NonEmpty() {
			if a, b := e.PeerCostMulti(p, []cluster.CID{c}), e.PeerCost(p, c); !almost(a, b) {
				t.Errorf("peer %d cluster %d (cur=%d): multi({c})=%g pcost=%g", p, c, cur, a, b)
			}
		}
	}
}

func TestPeerCostMultiAllClustersHasZeroRecallCost(t *testing.T) {
	e := newTestEngine(t, 12, 8, 17, nil)
	all := e.Config().NonEmpty()
	for p := 0; p < 12; p++ {
		got := e.PeerCostMulti(p, all)
		// Joining every cluster leaves no peer outside the strategy;
		// the remaining cost is pure membership.
		var want float64
		cur := e.Config().ClusterOf(p)
		for _, c := range all {
			size := e.Config().Size(c)
			if c != cur {
				size++
			}
			want += e.Alpha() * e.Theta().F(size) / float64(e.NumPeers())
		}
		if !almost(got, want) {
			t.Errorf("peer %d: multi(all)=%g want pure membership %g", p, got, want)
		}
	}
}

func TestProperty1UniformWorkloadProportionality(t *testing.T) {
	// Build a system where every peer issues the same number of query
	// instances; then the recall parts of SCost and WCost must be
	// proportional with factor |P| (Property 1).
	n := 12
	rng := stats.NewRNG(31)
	vocab := attr.NewVocab()
	ids := make([]attr.ID, 8)
	for i := range ids {
		ids[i] = vocab.Intern(string(rune('a' + i)))
	}
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	for i := 0; i < n; i++ {
		p := peer.New(i)
		p.SetItems([]attr.Set{attr.NewSet(ids[rng.Intn(8)]), attr.NewSet(ids[rng.Intn(8)])})
		peers[i] = p
		// Exactly 6 instances per peer.
		wl.Add(i, attr.NewSet(ids[rng.Intn(8)]), 4)
		wl.Add(i, attr.NewSet(ids[rng.Intn(8)]), 2)
	}
	assign := make([]cluster.CID, n)
	for i := range assign {
		assign[i] = cluster.CID(rng.Intn(4))
	}
	e := New(peers, wl, cluster.FromAssignment(assign), cluster.LinearTheta(), 1)

	_, sRecall := e.SCostParts()
	_, wRecall := e.WCostParts()
	if sRecall == 0 {
		t.Skip("degenerate sample: zero recall cost")
	}
	if got, want := sRecall/float64(n), wRecall; !almost(got, want) {
		t.Errorf("Property 1 violated: SCost recall/|P| = %g, WCost recall = %g", got, want)
	}
}

func TestZeroResultQueriesCarryNoCost(t *testing.T) {
	vocab := attr.NewVocab()
	a := vocab.Intern("exists")
	b := vocab.Intern("nowhere")
	p0 := peer.New(0)
	p0.SetItems([]attr.Set{attr.NewSet(a)})
	p1 := peer.New(1)
	wl := workload.New(2)
	wl.Add(0, attr.NewSet(b), 5) // no peer holds b
	wl.Add(1, attr.NewSet(a), 5)
	e := New([]*peer.Peer{p0, p1}, wl, cluster.NewSingletons(2), cluster.LinearTheta(), 1)
	// Peer 0's only query has zero results anywhere: its cost is pure
	// membership.
	if got, want := e.PeerCost(0, 0), 0.5; !almost(got, want) {
		t.Errorf("pcost with zero-result query = %g, want %g", got, want)
	}
}

func TestSetAlphaRescalesMembershipOnly(t *testing.T) {
	e := newTestEngine(t, 10, 6, 23, nil)
	p := 3
	cid := e.Config().ClusterOf(p)
	m1, r1 := e.SCostParts()
	c1 := e.PeerCost(p, cid)
	e.SetAlpha(2)
	m2, r2 := e.SCostParts()
	c2 := e.PeerCost(p, cid)
	if !almost(m2, 2*m1) {
		t.Errorf("membership part %g -> %g, want doubling", m1, m2)
	}
	if !almost(r2, r1) {
		t.Errorf("recall part changed with alpha: %g -> %g", r1, r2)
	}
	if !almost(c2-c1, m2/float64(e.NumPeers())*0) && c2 <= c1 {
		t.Errorf("peer cost should grow with alpha: %g -> %g", c1, c2)
	}
}

func TestStaleDetection(t *testing.T) {
	e := newTestEngine(t, 6, 5, 29, nil)
	if e.Stale() {
		t.Fatal("fresh engine reported stale")
	}
	e.Workload().Add(0, attr.NewSet(0), 1)
	if !e.Stale() {
		t.Fatal("engine did not detect workload change")
	}
	e.Rebuild()
	if e.Stale() {
		t.Fatal("rebuilt engine still stale")
	}
}

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}
