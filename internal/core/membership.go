package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/workload"
)

// This file implements true dynamic membership: Engine.AddPeer and
// Engine.RemovePeer update every incremental aggregate — including the
// O(1) social/workload cost state — without a full Rebuild.
//
// The cost of a join or leave is O(|R(p)|·|clusters| + Σ_q |D(q)|):
// for every query the peer holds results for, the recall sums of that
// query's row are re-bracketed over the non-empty clusters, and every
// remaining demander of the query has its baked-in w/totals factor
// patched (totals changed). Both terms are proportional to the moving
// peer's footprint rather than the population. (One caveat: a leave
// also deletes the peer from its attributes' posting lists, which for
// a term held by many peers scans that list — bounded by the posting
// lists of the leaver's own terms, and in practice a small fraction of
// the cost; a 10k-peer churn event measures ~85µs against a 5.5s
// Rebuild.) Three inverted indexes make this possible:
//
//   - peersByAttr: attribute -> peers whose content contains it, to
//     find the supporters of a query newly interned by a joiner.
//   - queriesByAttr: a distinct query's first attribute -> QIDs, to
//     find the existing queries a joiner's content can answer (a query
//     cannot match an item that lacks its first attribute).
//   - demanders: QID -> peers whose local workload contains it, to
//     patch recall weights when a query's global result total moves.
//
// The indexes are built lazily on the first join/leave and maintained
// incrementally afterwards; Rebuild drops them because the content or
// workload mutation that forced it may have invalidated them.
//
// All result and demand counts are integers carried in float64, so the
// additive aggregates (totals, clusterRes, clusterDemand, demandTot)
// are exact and a query's "answerable" flag flips exactly when its
// last supporter leaves. The division-bearing sums (demandW,
// recallSum, …) accumulate ulp-level drift like Move always has;
// property tests pin join/leave sequences to a fresh Rebuild within
// 1e-9.
//
// Steady-state joins and leaves allocate nothing: slot state, index
// lists and per-peer entry slices all shrink by reslicing and grow
// back within their retained capacity.

// padFloats returns s extended with zeros to length n, preserving the
// prefix and growing the backing array geometrically.
func padFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		clear(s[old:])
		return s
	}
	out := make([]float64, n, max(n, 2*cap(s)))
	copy(out, s)
	return out
}

// padMarks mirrors padFloats for epoch-mark slices; the extension must
// be zeroed so stale capacity can never collide with a live epoch.
func padMarks(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		old := len(s)
		s = s[:n]
		clear(s[old:])
		return s
	}
	out := make([]uint64, n, max(n, 2*cap(s)))
	copy(out, s)
	return out
}

// ensureIndexes builds the membership indexes if a Rebuild (or New)
// dropped them. O(total content attrs + total workload entries).
func (e *Engine) ensureIndexes() {
	if e.peersByAttr != nil {
		return
	}
	e.peersByAttr = make(map[attr.ID][]int32)
	e.queriesByAttr = make(map[attr.ID][]workload.QID)
	e.indexedQueries = 0
	e.indexNewQueries()
	e.demanders = make([][]int32, e.nq)
	for pid, p := range e.peers {
		if p == nil {
			continue
		}
		e.attrScratch = p.AppendAttrs(e.attrScratch[:0])
		for _, a := range e.attrScratch {
			e.peersByAttr[a] = append(e.peersByAttr[a], int32(pid))
		}
		for _, en := range e.wl.Peer(pid) {
			e.demanders[en.Q] = append(e.demanders[en.Q], int32(pid))
		}
	}
}

// indexNewQueries registers workload queries interned since the last
// sync under their first attribute. A query whose first attribute is
// absent from an item cannot match it, so one registration per query
// suffices for candidate generation.
func (e *Engine) indexNewQueries() {
	for q := e.indexedQueries; q < e.wl.NumQueries(); q++ {
		if ids := e.wl.Query(workload.QID(q)).IDs(); len(ids) > 0 {
			e.queriesByAttr[ids[0]] = append(e.queriesByAttr[ids[0]], workload.QID(q))
		}
	}
	e.indexedQueries = e.wl.NumQueries()
}

// growRows extends the query dimension of every QID-indexed structure
// to the workload's current query count, preserving existing content.
func (e *Engine) growRows() {
	nq := e.wl.NumQueries()
	if nq == e.nq {
		return
	}
	e.totals = padFloats(e.totals, nq)
	e.invTot = padFloats(e.invTot, nq)
	e.demandTot = padFloats(e.demandTot, nq)
	e.ownScratch = padFloats(e.ownScratch, nq)
	e.qMark = padMarks(e.qMark, nq)
	e.rowVersion = padMarks(e.rowVersion, nq)
	flat := nq * e.stride
	e.clusterRes = padFloats(e.clusterRes, flat)
	e.clusterDemand = padFloats(e.clusterDemand, flat)
	e.demandW = padFloats(e.demandW, flat)
	e.growDemanders(nq)
	e.nq = nq
}

// growDemanders extends the demanders index to nq rows. Rows exposed
// by regrowing within capacity are reset to length zero but keep
// their backing arrays: compaction parks the emptied rows of removed
// queries past the live length exactly so the next novel query reuses
// them instead of allocating.
func (e *Engine) growDemanders(nq int) {
	if cap(e.demanders) >= nq {
		old := len(e.demanders)
		e.demanders = e.demanders[:nq]
		for i := old; i < nq; i++ {
			e.demanders[i] = e.demanders[i][:0]
		}
		return
	}
	for len(e.demanders) < nq {
		e.demanders = append(e.demanders, nil)
	}
}

// restride re-lays the flat aggregates for a wider column capacity,
// growing geometrically so slot appends are amortized O(1).
func restride(s []float64, nq, oldStride, newStride int) []float64 {
	out := make([]float64, nq*newStride)
	for q := 0; q < nq; q++ {
		copy(out[q*newStride:], s[q*oldStride:q*oldStride+oldStride])
	}
	return out
}

// addSlot appends one peer slot (and its paired cluster slot) across
// the configuration, the workload and every slot-indexed engine
// structure, re-striding the flat aggregates when the column capacity
// is exhausted.
func (e *Engine) addSlot() int {
	pid := e.cfg.AddSlot()
	if wpid := e.wl.AddPeerSlot(); wpid != pid || pid != e.n {
		panic(fmt.Sprintf("core: slot misalignment cfg=%d wl=%d engine=%d", pid, wpid, e.n))
	}
	e.peers = append(e.peers, nil)
	e.peerRes = append(e.peerRes, nil)
	e.peerWl = append(e.peerWl, nil)
	e.peerW = append(e.peerW, 0)
	e.peerOwnW = append(e.peerOwnW, 0)
	e.slotGen = append(e.slotGen, 0)
	e.prune = append(e.prune, peerPrune{})
	e.n++

	cmax := e.cfg.Cmax()
	if cmax > e.stride {
		ns := max(cmax, e.stride+e.stride/2, 8)
		e.clusterRes = restride(e.clusterRes, e.nq, e.stride, ns)
		e.clusterDemand = restride(e.clusterDemand, e.nq, e.stride, ns)
		e.demandW = restride(e.demandW, e.nq, e.stride, ns)
		e.accScratch = make([]float64, ns)
		e.cidMark = make([]uint64, ns)
		// padMarks preserves the recorded cluster versions; the fresh
		// tail slots are empty clusters whose zero stamp is correct.
		e.aggVersion = padMarks(e.aggVersion, ns)
		e.stride = ns
	}
	e.cmax = cmax
	return pid
}

// rowRecallTerms adds sign times query q's contribution to the
// incremental recall sums, over the given cluster list (which must
// cover every cluster with nonzero clusterRes for q).
func (e *Engine) rowRecallTerms(q int, cids []cluster.CID, inv, sign float64) {
	if inv == 0 {
		return
	}
	row := q * e.stride
	for _, c := range cids {
		if r := e.clusterRes[row+int(c)]; r != 0 {
			e.recallSum += sign * e.demandW[row+int(c)] * r * inv
			e.wRecallSum += sign * e.clusterDemand[row+int(c)] * r * inv
		}
	}
}

// findWlEntry locates qid in the (QID-sorted) peerWl list of peer d.
func findWlEntry(lst []wlEntry, qid workload.QID) int {
	return sort.Search(len(lst), func(i int) bool { return lst[i].qid >= qid })
}

// insertWlEntry gives demander d a recall-weight entry for qid, which
// just flipped from unanswerable to answerable. At flip time no live
// peer other than the joiner holds results for qid (its total was 0),
// so d's own-recall is unaffected. The caller re-brackets the row's
// recall sums around this.
func (e *Engine) insertWlEntry(d int, qid workload.QID, inv float64) {
	cnt := float64(e.wl.Count(d, qid))
	w := cnt / float64(e.wl.PeerTotal(d))
	lst := e.peerWl[d]
	i := findWlEntry(lst, qid)
	lst = append(lst, wlEntry{})
	copy(lst[i+1:], lst[i:])
	lst[i] = wlEntry{qid: qid, count: cnt, w: w, wInvT: w * inv}
	e.peerWl[d] = lst
	e.peerW[d] += w
	e.sumW += w
	idx := int(qid)*e.stride + int(e.cfg.ClusterOf(d))
	e.clusterDemand[idx] += cnt
	e.demandW[idx] += w
}

// dropWlEntry removes demander d's recall-weight entry for qid, which
// just flipped back to unanswerable (its last supporter left, so no
// remaining peer holds results and d's own-recall term is already 0).
func (e *Engine) dropWlEntry(d int, qid workload.QID) {
	lst := e.peerWl[d]
	i := findWlEntry(lst, qid)
	if i >= len(lst) || lst[i].qid != qid {
		panic(fmt.Sprintf("core: demander %d missing entry for query %d", d, qid))
	}
	en := lst[i]
	copy(lst[i:], lst[i+1:])
	e.peerWl[d] = lst[:len(lst)-1]
	e.peerW[d] -= en.w
	e.sumW -= en.w
	idx := int(qid)*e.stride + int(e.cfg.ClusterOf(d))
	e.clusterDemand[idx] -= en.count
	e.demandW[idx] -= en.w
}

// patchDemander refreshes demander d's baked-in w/totals factor for
// qid after the query's result total moved from 1/oldInv to 1/newInv,
// and adjusts d's own-recall sum when d itself holds results for it.
func (e *Engine) patchDemander(d int, qid workload.QID, oldInv, newInv float64) {
	lst := e.peerWl[d]
	i := findWlEntry(lst, qid)
	if i >= len(lst) || lst[i].qid != qid {
		panic(fmt.Sprintf("core: demander %d missing entry for query %d", d, qid))
	}
	en := &lst[i]
	en.wInvT = en.w * newInv
	if res := e.peers[d].ResultCount(e.wl.Query(qid)); res > 0 {
		e.peerOwnW[d] += en.w * (newInv - oldInv) * float64(res)
	}
}

// removeInt32 deletes the first occurrence of v by swapping with the
// last element (order is maintenance state, not semantics).
func removeInt32(lst []int32, v int32) []int32 {
	for i, x := range lst {
		if x == v {
			lst[i] = lst[len(lst)-1]
			return lst[:len(lst)-1]
		}
	}
	panic(fmt.Sprintf("core: index entry %d not found", v))
}

// ForEachSupplier invokes fn for every live peer holding results for
// q, using the content index: cost is proportional to the posting
// list of q's first attribute, not the population. Intended for
// read-side query serving (the reform daemon's /query); it builds the
// membership indexes on first use like AddPeer does.
func (e *Engine) ForEachSupplier(q attr.Set, fn func(pid, results int)) {
	ids := q.IDs()
	if len(ids) == 0 {
		return
	}
	e.mustBeFresh("ForEachSupplier")
	e.ensureIndexes()
	for _, pid := range e.peersByAttr[ids[0]] {
		if res := e.peers[pid].ResultCount(q); res > 0 {
			fn(int(pid), res)
		}
	}
}

// AddPeer admits a new peer with the given content owner and local
// workload (queries[i] issued counts[i] times) into cluster `to`, or
// into a fresh singleton cluster when to == cluster.None. It returns
// the peer's assigned ID (a vacated slot when one exists, a fresh slot
// otherwise); the peer's ID is rebound to it. All incremental
// aggregates — including the O(1) social/workload cost state — are
// updated in time proportional to the joiner's content and workload
// footprint; no Rebuild is needed, and at steady state (slot and
// capacity reuse under churn) AddPeer allocates nothing.
func (e *Engine) AddPeer(pr *peer.Peer, queries []attr.Set, counts []int, to cluster.CID) int {
	if pr == nil {
		panic("core: AddPeer nil peer")
	}
	if len(queries) != len(counts) {
		panic(fmt.Sprintf("core: AddPeer %d queries, %d counts", len(queries), len(counts)))
	}
	e.mustBeFresh("AddPeer")
	e.ensureIndexes()

	// Slot assignment: reuse the most recently vacated slot, else grow.
	var pid int
	if k := len(e.free); k > 0 {
		pid = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		pid = e.addSlot()
	}
	pr.SetID(pid)
	e.peers[pid] = pr
	for len(e.slotGen) < e.n {
		e.slotGen = append(e.slotGen, 0)
	}
	e.slotGen[pid]++

	// Dirty-tracking: one clock tick covers the whole join; every row
	// the joiner's results or demand touch is stamped below as the
	// phases visit it, and the target cluster after placement.
	e.aggClock++
	clk := e.aggClock

	// Phase 1: intern the joiner's queries (an allocation-free lookup
	// on the churn steady state, where newcomers re-issue known
	// queries). A genuinely new query gets a fresh row (grown in
	// place, no re-stride) whose result total is gathered from the
	// supporters the content index names; it has no demanders yet, so
	// the recall sums are untouched.
	e.qidScratch = e.qidScratch[:0]
	for _, q := range queries {
		if q.IsEmpty() {
			panic("core: AddPeer empty query")
		}
		if qid, ok := e.wl.Lookup(q); ok {
			e.qidScratch = append(e.qidScratch, qid)
			continue
		}
		qid := e.wl.Intern(q)
		e.qidScratch = append(e.qidScratch, qid)
		e.growRows()
		e.indexNewQueries()
		// A fresh row starts at stamp 0, which would look unchanged to
		// caches recorded before it existed; the supporters discovered
		// below gain result entries for it, so stamp it now.
		e.rowVersion[qid] = clk
		for _, sp := range e.peersByAttr[q.IDs()[0]] {
			res := e.peers[sp].ResultCount(q)
			if res == 0 {
				continue
			}
			r := float64(res)
			e.peerRes[sp] = append(e.peerRes[sp], resEntry{qid: qid, res: r})
			e.totals[qid] += r
			e.clusterRes[int(qid)*e.stride+int(e.cfg.ClusterOf(int(sp)))] += r
		}
		if e.totals[qid] > 0 {
			e.invTot[qid] = 1 / e.totals[qid]
		}
	}

	// Phase 2: placement. An empty cluster slot always exists for a
	// singleton join (cluster slots == peer slots >= live).
	if to == cluster.None {
		slot, ok := e.cfg.EmptyCluster()
		if !ok {
			panic("core: AddPeer found no empty cluster slot")
		}
		to = slot
	}
	if st := e.cfg.Size(to); st > 0 {
		e.membSumRaw -= float64(st) * e.theta.F(st)
		e.membSumRaw += float64(st+1) * e.theta.F(st+1)
	} else {
		e.membSumRaw += e.theta.F(1)
	}
	e.cfg.Place(pid, to)
	e.aggVersion[to] = clk
	e.cidScratch = e.cfg.AppendNonEmpty(e.cidScratch[:0])
	cids := e.cidScratch

	// Phase 3: the joiner's results shift every touched query's global
	// total, so each touched row's recall terms are re-bracketed and
	// the remaining demanders' baked-in factors patched. Candidate
	// queries come from the query index over the joiner's (sorted, for
	// determinism) content attributes.
	e.attrScratch = pr.AppendAttrs(e.attrScratch[:0])
	slices.Sort(e.attrScratch)
	e.qEpoch++
	ep := e.qEpoch
	prl := e.peerRes[pid][:0]
	for _, a := range e.attrScratch {
		for _, qid := range e.queriesByAttr[a] {
			if e.qMark[qid] == ep {
				continue
			}
			e.qMark[qid] = ep
			if res := pr.ResultCount(e.wl.Query(qid)); res > 0 {
				prl = append(prl, resEntry{qid: qid, res: float64(res)})
			}
		}
	}
	e.peerRes[pid] = prl
	for i := range prl {
		qid := prl[i].qid
		q := int(qid)
		r := prl[i].res
		e.rowVersion[q] = clk
		oldInv := e.invTot[q]
		e.rowRecallTerms(q, cids, oldInv, -1)
		e.totals[q] += r
		newInv := 1 / e.totals[q]
		e.invTot[q] = newInv
		e.clusterRes[q*e.stride+int(to)] += r
		if oldInv == 0 {
			e.ansDemand += e.demandTot[q]
			for _, d := range e.demanders[q] {
				e.insertWlEntry(int(d), qid, newInv)
			}
		} else {
			for _, d := range e.demanders[q] {
				e.patchDemander(int(d), qid, oldInv, newInv)
			}
		}
		e.rowRecallTerms(q, cids, newInv, 1)
	}

	// Phase 4: register the joiner's demand (merged by the workload)
	// and derive its recall weights exactly as Rebuild would.
	for i, qid := range e.qidScratch {
		e.wl.AddQID(pid, qid, counts[i])
	}
	tot := float64(e.wl.PeerTotal(pid))
	pw := e.peerWl[pid][:0]
	var wSum float64
	for _, en := range e.wl.Peer(pid) {
		q := int(en.Q)
		cnt := float64(en.Count)
		e.rowVersion[q] = clk
		e.demandTot[q] += cnt
		e.demanders[q] = append(e.demanders[q], int32(pid))
		inv := e.invTot[q]
		if inv == 0 {
			continue
		}
		e.ansDemand += cnt
		w := cnt / tot
		pw = append(pw, wlEntry{qid: en.Q, count: cnt, w: w, wInvT: w * inv})
		wSum += w
		idx := q*e.stride + int(to)
		if r := e.clusterRes[idx]; r != 0 {
			e.recallSum -= e.demandW[idx] * r * inv
			e.wRecallSum -= e.clusterDemand[idx] * r * inv
			e.demandW[idx] += w
			e.clusterDemand[idx] += cnt
			e.recallSum += e.demandW[idx] * r * inv
			e.wRecallSum += e.clusterDemand[idx] * r * inv
		} else {
			e.demandW[idx] += w
			e.clusterDemand[idx] += cnt
		}
	}
	e.peerWl[pid] = pw
	e.peerW[pid] = wSum
	e.sumW += wSum
	var ownW float64
	own := e.ownScratch
	for _, re := range e.peerRes[pid] {
		own[re.qid] = re.res
	}
	for i := range pw {
		ownW += pw[i].wInvT * own[pw[i].qid]
	}
	for _, re := range e.peerRes[pid] {
		own[re.qid] = 0
	}
	e.peerOwnW[pid] = ownW

	// Phase 5: make the joiner discoverable by future joins.
	for _, a := range e.attrScratch {
		e.peersByAttr[a] = append(e.peersByAttr[a], int32(pid))
	}

	e.wlVersion = e.wl.Version()
	e.cfgVersion = e.cfg.MembershipVersion()
	e.popVersion++
	return pid
}

// RemovePeer retires the peer in slot pid: its demand and results are
// withdrawn from every aggregate (the exact inverse of AddPeer), its
// cluster membership is released, and the slot is vacated for reuse.
// Like AddPeer it runs in time proportional to the leaver's footprint
// and allocates nothing at steady state.
func (e *Engine) RemovePeer(pid int) {
	if pid < 0 || pid >= e.n || e.peers[pid] == nil {
		panic(fmt.Sprintf("core: RemovePeer %d is not a live peer", pid))
	}
	e.mustBeFresh("RemovePeer")
	e.ensureIndexes()
	pr := e.peers[pid]
	from := e.cfg.ClusterOf(pid)
	e.cidScratch = e.cfg.AppendNonEmpty(e.cidScratch[:0])
	cids := e.cidScratch

	// Dirty-tracking: one tick covers the leave; the rows of the
	// leaver's demand and results are stamped as the phases walk
	// them, and the vacated cluster after unplacement.
	e.aggClock++
	clk := e.aggClock
	e.aggVersion[from] = clk

	// Phase 1: withdraw the leaver's demand.
	tot := float64(e.wl.PeerTotal(pid))
	for _, en := range e.wl.Peer(pid) {
		q := int(en.Q)
		cnt := float64(en.Count)
		e.rowVersion[q] = clk
		e.demandTot[q] -= cnt
		e.demanders[q] = removeInt32(e.demanders[q], int32(pid))
		inv := e.invTot[q]
		if inv == 0 {
			continue
		}
		e.ansDemand -= cnt
		w := cnt / tot
		idx := q*e.stride + int(from)
		if r := e.clusterRes[idx]; r != 0 {
			e.recallSum -= e.demandW[idx] * r * inv
			e.wRecallSum -= e.clusterDemand[idx] * r * inv
			e.demandW[idx] -= w
			e.clusterDemand[idx] -= cnt
			e.recallSum += e.demandW[idx] * r * inv
			e.wRecallSum += e.clusterDemand[idx] * r * inv
		} else {
			e.demandW[idx] -= w
			e.clusterDemand[idx] -= cnt
		}
	}
	e.sumW -= e.peerW[pid]
	e.wl.ClearPeer(pid)

	// Phase 2: withdraw the leaver's results, re-bracketing each
	// touched row and patching (or dropping, when the query loses its
	// last supporter) the remaining demanders' recall weights.
	for i := range e.peerRes[pid] {
		qid := e.peerRes[pid][i].qid
		q := int(qid)
		r := e.peerRes[pid][i].res
		e.rowVersion[q] = clk
		oldInv := e.invTot[q]
		e.rowRecallTerms(q, cids, oldInv, -1)
		e.totals[q] -= r
		e.clusterRes[q*e.stride+int(from)] -= r
		if e.totals[q] == 0 {
			e.invTot[q] = 0
			e.ansDemand -= e.demandTot[q]
			for _, d := range e.demanders[q] {
				e.dropWlEntry(int(d), qid)
			}
			continue // the row is all-zero; nothing to re-add
		}
		newInv := 1 / e.totals[q]
		e.invTot[q] = newInv
		for _, d := range e.demanders[q] {
			e.patchDemander(int(d), qid, oldInv, newInv)
		}
		e.rowRecallTerms(q, cids, newInv, 1)
	}

	// Phase 3: release the cluster membership.
	s := e.cfg.Size(from)
	e.membSumRaw -= float64(s) * e.theta.F(s)
	if s > 1 {
		e.membSumRaw += float64(s-1) * e.theta.F(s-1)
	}
	e.cfg.Unplace(pid)

	// Phase 4: vacate the slot.
	e.attrScratch = pr.AppendAttrs(e.attrScratch[:0])
	for _, a := range e.attrScratch {
		e.peersByAttr[a] = removeInt32(e.peersByAttr[a], int32(pid))
	}
	e.peerRes[pid] = e.peerRes[pid][:0]
	e.peerWl[pid] = e.peerWl[pid][:0]
	e.peerW[pid], e.peerOwnW[pid] = 0, 0
	e.peers[pid] = nil
	e.free = append(e.free, pid)

	e.wlVersion = e.wl.Version()
	e.cfgVersion = e.cfg.MembershipVersion()
	e.popVersion++
}

// FreeSlots returns the vacated-slot stack: AddPeer reuses the LAST
// element first. The slice aliases engine storage — callers must not
// mutate or retain it across mutations.
func (e *Engine) FreeSlots() []int { return e.free }

// PopVersion returns the population/content version counter (see
// RoutingView.PopVersion).
func (e *Engine) PopVersion() uint64 { return e.popVersion }

// SetPopVersion overwrites the population/content version counter. It
// exists for replication catch-up: a follower restoring a leader's
// state must number its published views exactly as the leader does, or
// the two nodes' views for identical states would disagree.
func (e *Engine) SetPopVersion(v uint64) { e.popVersion = v }

// SetFreeSlots installs a vacated-slot stack, overriding the rebuild
// default (ascending pop order). Replication needs it: slot reuse is
// part of the deterministic history a follower replays, and a follower
// restored from a state snapshot must pop future slots in the order
// the leader will — the leader's stack is vacancy-ordered, which no
// rebuild of the snapshot can reconstruct. The stack must name exactly
// the vacant slots, each once.
func (e *Engine) SetFreeSlots(stack []int) error {
	vacant := 0
	for _, p := range e.peers {
		if p == nil {
			vacant++
		}
	}
	if len(stack) != vacant {
		return fmt.Errorf("core: free stack names %d slots, engine has %d vacant", len(stack), vacant)
	}
	seen := make(map[int]bool, len(stack))
	for _, pid := range stack {
		if pid < 0 || pid >= e.n || e.peers[pid] != nil {
			return fmt.Errorf("core: free stack names non-vacant slot %d", pid)
		}
		if seen[pid] {
			return fmt.Errorf("core: free stack repeats slot %d", pid)
		}
		seen[pid] = true
	}
	e.free = append(e.free[:0], stack...)
	return nil
}
