package core

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/workload"
)

// TwoPeerInstance materializes the §2.3 counterexample showing a pure
// Nash equilibrium need not exist: two peers p0 and p1 where Q(p0) is a
// single query q1 satisfied (only) by p1, and Q(p1) is a single query
// q2 also satisfied (only) by p1.
type TwoPeerInstance struct {
	Engine *Engine
	Vocab  *attr.Vocab
	Q1, Q2 attr.Set
}

// NewTwoPeerInstance builds the counterexample with membership weight
// alpha and a linear θ. For alpha in (0,2) no configuration of the
// instance is a pure Nash equilibrium (VerifyNoNash checks all of
// them). The paper states the result for any alpha > 0 using a
// non-strict deviation (pcost(p1,c2) = α ≤ pcost(p1,c1) = α/2 + 1);
// under the standard strict-improvement reading that step needs
// α < 2, so we verify on the open interval. The individual costs match
// the paper's worked example:
//
//	split configuration:    pcost(p0,c0) = α/2 + 1, pcost(p1,c1) = α/2
//	together configuration: pcost(p0,c)  = α,       pcost(p1,c)  = α
func NewTwoPeerInstance(alpha float64) *TwoPeerInstance {
	v := attr.NewVocab()
	a1 := v.Intern("alpha-attr")
	a2 := v.Intern("beta-attr")
	q1 := attr.NewSet(a1)
	q2 := attr.NewSet(a2)

	p0 := peer.New(0) // holds nothing
	p1 := peer.New(1) // satisfies both q1 and q2
	p1.SetItems([]attr.Set{attr.NewSet(a1), attr.NewSet(a2)})

	wl := workload.New(2)
	wl.Add(0, q1, 1)
	wl.Add(1, q2, 1)

	cfg := cluster.NewSingletons(2) // p0 in c0, p1 in c1
	eng := New([]*peer.Peer{p0, p1}, wl, cfg, cluster.LinearTheta(), alpha)
	return &TwoPeerInstance{Engine: eng, Vocab: v, Q1: q1, Q2: q2}
}

// Configurations returns the distinct configurations of the two-peer
// game up to cluster relabeling: split (each peer its own cluster) and
// together (both in one cluster).
func (t *TwoPeerInstance) Configurations() map[string][]cluster.CID {
	return map[string][]cluster.CID{
		"split":    {0, 1},
		"together": {0, 0},
	}
}

// VerifyNoNash checks every configuration of the instance and returns
// an error if any of them is a pure Nash equilibrium — for alpha > 0
// none should be, reproducing the paper's §2.3 argument. On success it
// returns a human-readable trace of the profitable deviations.
func (t *TwoPeerInstance) VerifyNoNash() (string, error) {
	if a := t.Engine.Alpha(); a <= 0 || a >= 2 {
		return "", fmt.Errorf("counterexample requires 0 < alpha < 2, have %g", a)
	}
	trace := ""
	configs := t.Configurations()
	// Fixed order: map iteration would make the trace nondeterministic.
	for _, name := range []string{"split", "together"} {
		assign := configs[name]
		t.reset(assign)
		ok, w := t.Engine.IsNash(0)
		if ok {
			return "", fmt.Errorf("configuration %q is a Nash equilibrium; the counterexample fails", name)
		}
		trace += fmt.Sprintf("%-8s: peer %d deviates %d -> %v (new=%v) improving by %.4f\n",
			name, w.Peer, w.From, w.To, w.NewCluster, w.Improvement)
	}
	return trace, nil
}

// reset rebuilds the engine on the given assignment.
func (t *TwoPeerInstance) reset(assign []cluster.CID) {
	cfg := cluster.FromAssignment(assign)
	t.Engine.cfg = cfg
	t.Engine.Rebuild()
}

// SetConfiguration switches the instance to the named configuration
// from Configurations.
func (t *TwoPeerInstance) SetConfiguration(name string) error {
	assign, ok := t.Configurations()[name]
	if !ok {
		return fmt.Errorf("unknown configuration %q", name)
	}
	t.reset(assign)
	return nil
}
