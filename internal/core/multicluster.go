package core

import "repro/internal/cluster"

// This file analyzes the general form of the game, where a strategy is
// a set of clusters s ⊆ C (Eq. 1). The protocol and the paper's
// experiments restrict strategies to single clusters (§2.3); the
// multi-cluster analysis quantifies what that restriction costs each
// peer — one of the practical questions §6 leaves open.

// MultiEval is the outcome of a greedy multi-cluster strategy search.
type MultiEval struct {
	// Strategy is the chosen cluster set, in the order clusters were
	// added by the greedy search (most valuable first).
	Strategy []cluster.CID
	// Cost is pcost(p, Strategy) under Eq. 1.
	Cost float64
	// SingleCost is the best single-cluster cost, for comparison.
	SingleCost float64
	// Trajectory[i] is the cost of the first i+1 clusters; it shows
	// the diminishing return of each additional membership.
	Trajectory []float64
}

// Gain returns how much the multi-cluster strategy improves on the
// best single cluster.
func (m MultiEval) Gain() float64 { return m.SingleCost - m.Cost }

// BestMultiStrategy greedily grows peer p's cluster set: starting from
// the best single cluster, it keeps adding the non-member cluster that
// lowers pcost(p, s) the most, stopping when no addition helps or
// maxClusters is reached (maxClusters <= 0 means no bound, i.e. Cmax).
// Greedy is not optimal in general — the exact optimum is exponential
// in |C| — but the recall term is submodular in the cluster set, for
// which greedy carries the usual (1-1/e) guarantee on the recall gain.
func (e *Engine) BestMultiStrategy(p int, maxClusters int) MultiEval {
	if maxClusters <= 0 {
		maxClusters = e.cfg.Cmax()
	}
	ev := e.EvaluateMoves(p)
	out := MultiEval{SingleCost: ev.BestCost}

	chosen := []cluster.CID{ev.Best}
	cost := e.PeerCostMulti(p, chosen)
	out.Trajectory = append(out.Trajectory, cost)
	inSet := map[cluster.CID]bool{ev.Best: true}
	for len(chosen) < maxClusters {
		bestC := cluster.None
		bestCost := cost
		for _, c := range e.cfg.NonEmpty() {
			if inSet[c] {
				continue
			}
			trial := e.PeerCostMulti(p, append(chosen[:len(chosen):len(chosen)], c))
			// Strict improvement; ascending iteration makes the lowest
			// cluster ID win ties deterministically.
			if trial < bestCost-1e-12 {
				bestC, bestCost = c, trial
			}
		}
		if bestC == cluster.None {
			break
		}
		chosen = append(chosen, bestC)
		inSet[bestC] = true
		cost = bestCost
		out.Trajectory = append(out.Trajectory, cost)
	}
	out.Strategy = chosen
	out.Cost = cost
	return out
}
