package core

import (
	"fmt"
	"slices"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
)

// This file implements the snapshot-isolated read path for query
// serving: an immutable RoutingView published by a single writer and
// shared by any number of concurrent readers. The paper's
// query-routing model — route a query to the clusters that can answer
// it — is a pure read over state that only changes at membership and
// maintenance boundaries, so a long-running daemon builds a view
// after every mutation (under its write lock) and serves all queries
// from the latest published view without locking.
//
// A view carries copies of exactly the state Route touches: the
// content posting lists (attribute -> live peers holding it), the
// peer slice (pointers to peers frozen for read-only matching — see
// peer.Freeze/ResultCountRO), the slot -> cluster assignment, and the
// per-cluster sizes. The copies make the view immune to in-place
// index mutation by later joins/leaves; the peers themselves are
// shared because their content is immutable while views exist (the
// serving daemon never mutates a live peer's items — churn replaces
// peers wholesale).
//
// Because relocations (reform rounds) and workload compactions change
// neither the population nor any posting list, BuildRoutingView
// reuses the previous view's posting and peer copies unless a
// join/leave/Rebuild happened in between (tracked by popVersion):
// republishing after a maintenance period costs O(slots), not
// O(total postings).

// RouteHit is one cluster's share of a query's results.
type RouteHit struct {
	// Cluster is the cluster slot ID.
	Cluster cluster.CID
	// Size is the cluster's live member count.
	Size int
	// Results is Σ result(q,p) over the cluster's members.
	Results int
}

// RouteScratch holds the reusable buffers of Route so the per-query
// read path allocates nothing at steady state. A scratch must not be
// shared by concurrent readers; give each goroutine (or pool) its own.
type RouteScratch struct {
	results []int // dense per-CID accumulator, all-zero between calls
	hits    []RouteHit
	key     []byte // canonical query key buffer (RouteCached)
}

// RoutingView is an immutable snapshot of the query-routing state.
// Build one with Engine.BuildRoutingView under the writer's lock,
// then share it freely: every method is safe for concurrent use and
// the view never changes once built.
type RoutingView struct {
	peers      []*peer.Peer
	postings   map[attr.ID][]int32
	clusterOf  []cluster.CID
	sizes      []int
	nonEmpty   []cluster.CID
	live       int
	popVersion uint64
}

// BuildRoutingView snapshots the engine's routing state into an
// immutable view. Passing the previously published view lets the
// build reuse its posting-list and peer copies when no join, leave or
// Rebuild happened since (pure relocations and compactions don't
// invalidate them); pass nil to force full copies. The engine must be
// fresh; the call builds the membership indexes if a Rebuild dropped
// them, and freezes every live peer for read-only matching.
func (e *Engine) BuildRoutingView(prev *RoutingView) *RoutingView {
	e.mustBeFresh("BuildRoutingView")
	e.ensureIndexes()
	v := &RoutingView{
		clusterOf:  e.cfg.Assignment(),
		sizes:      make([]int, e.cfg.Cmax()),
		nonEmpty:   e.cfg.NonEmpty(),
		live:       e.cfg.Live(),
		popVersion: e.popVersion,
	}
	for _, c := range v.nonEmpty {
		v.sizes[c] = e.cfg.Size(c)
	}
	if prev != nil && prev.popVersion == e.popVersion {
		v.peers, v.postings = prev.peers, prev.postings
		return v
	}
	v.peers = slices.Clone(e.peers)
	v.postings = make(map[attr.ID][]int32, len(e.peersByAttr))
	for a, lst := range e.peersByAttr {
		if len(lst) > 0 {
			v.postings[a] = slices.Clone(lst)
		}
	}
	for _, p := range v.peers {
		if p != nil {
			p.Freeze()
		}
	}
	return v
}

// Live returns the live peer count at snapshot time.
func (v *RoutingView) Live() int { return v.live }

// PopVersion returns the engine population/content version the view
// was built at. Two views with equal PopVersion share peers and
// posting lists and differ at most in the cluster assignment — exactly
// the condition under which a pure-relocation delta (DiffFrom /
// ApplyMoves) can carry one view to the other.
func (v *RoutingView) PopVersion() uint64 { return v.popVersion }

// Slots returns the peer-slot count at snapshot time.
func (v *RoutingView) Slots() int { return len(v.clusterOf) }

// NumClusters returns the non-empty cluster count at snapshot time.
func (v *RoutingView) NumClusters() int { return len(v.nonEmpty) }

// Route answers query q against the snapshot: the total result count
// over all live peers and, per non-empty cluster holding results, its
// hit. Hits are in ascending cluster order — the same order the
// engine's locked path reports. The hit slice is owned by sc and
// valid until its next Route, and the call allocates nothing at
// steady state.
//
// The scan is driven from the query's rarest attribute: a peer can
// only contribute results if some item holds every attribute of q, so
// every candidate appears in every one of q's posting lists and
// scanning the shortest visits them all. Cost is therefore bounded by
// the SHORTEST posting list among q's attributes (an O(|q|) argmin
// picks it), not the first — under skewed traffic, where popular
// queries tend to lead with popular (long-posting) attributes, that
// is the difference between scanning the hottest list and the
// coldest. The answer is byte-identical to a scan of any other of
// q's posting lists (hit order comes from the non-empty cluster walk,
// and per-cluster sums are order-independent). An empty query, or one
// with any attribute no live peer holds — including attribute IDs the
// view has never seen, e.g. from a router whose vocabulary ran ahead
// of this snapshot — yields (0, empty); unknown attributes can never
// panic the read path.
func (v *RoutingView) Route(q attr.Set, sc *RouteScratch) (total int, hits []RouteHit) {
	sc.hits = sc.hits[:0]
	ids := q.IDs()
	if len(ids) == 0 {
		return 0, sc.hits
	}
	// BuildRoutingView never stores empty posting lists, so a missing
	// map entry means "no live peer holds this attribute" — and any
	// empty list, including the running minimum, ends the query early.
	scan := v.postings[ids[0]]
	for _, id := range ids[1:] {
		if len(scan) == 0 {
			break
		}
		if lst := v.postings[id]; len(lst) < len(scan) {
			scan = lst
		}
	}
	if len(scan) == 0 {
		return 0, sc.hits
	}
	if len(sc.results) < len(v.sizes) {
		sc.results = make([]int, len(v.sizes))
	}
	for _, pid := range scan {
		if res := v.peers[pid].ResultCountRO(q); res > 0 {
			sc.results[v.clusterOf[pid]] += res
			total += res
		}
	}
	if total == 0 {
		return 0, sc.hits
	}
	// Every touched cluster hosts a live peer, so iterating the
	// non-empty list both emits the hits in ascending order and
	// restores the accumulator's all-zero invariant.
	for _, c := range v.nonEmpty {
		if n := sc.results[c]; n > 0 {
			sc.hits = append(sc.hits, RouteHit{Cluster: c, Size: v.sizes[c], Results: n})
			sc.results[c] = 0
		}
	}
	return total, sc.hits
}

// The remainder of this file is the view replication surface: the
// pieces a stateless query-router tier needs to mirror the
// authoritative engine's RoutingView over a wire protocol. A router
// bootstraps from a full export (Export -> encode -> decode ->
// FromViewData) and then follows the engine with pure-relocation
// deltas (DiffFrom on the engine side, ApplyMoves on the router
// side), resynchronizing with a fresh full view whenever PopVersion
// moves — joins, leaves and rebuilds change peers and posting lists,
// which deltas deliberately cannot express.

// SlotMove is one entry of a pure-relocation delta: the peer in Slot
// is now assigned to cluster To. A sequence of SlotMoves carries a
// RoutingView to a successor with the same PopVersion.
type SlotMove struct {
	Slot int32
	To   cluster.CID
}

// DiffFrom extracts the pure-relocation delta that carries prev to v:
// one SlotMove per slot whose cluster assignment differs. It returns
// ok=false when no such delta exists — prev is nil, from a different
// population version, or (defensively) a different slot count — in
// which case the subscriber needs a full view instead. An empty,
// ok=true delta means the views route identically (e.g. a republish
// after a workload compaction).
func (v *RoutingView) DiffFrom(prev *RoutingView) (moves []SlotMove, ok bool) {
	if prev == nil || prev.popVersion != v.popVersion || len(prev.clusterOf) != len(v.clusterOf) {
		return nil, false
	}
	for i := range v.clusterOf {
		if v.clusterOf[i] != prev.clusterOf[i] {
			moves = append(moves, SlotMove{Slot: int32(i), To: v.clusterOf[i]})
		}
	}
	return moves, true
}

// ApplyMoves derives the successor view reached from v by the given
// pure-relocation delta. Peers and posting lists are shared with v
// (relocations change neither), the assignment is copied and patched,
// and the per-cluster sizes are recomputed, so the call is O(slots).
// Moves must relocate live slots to real clusters; anything else —
// out-of-range slot, dead slot, negative target — returns an error
// and the caller should resynchronize with a full view.
func (v *RoutingView) ApplyMoves(moves []SlotMove) (*RoutingView, error) {
	next := &RoutingView{
		peers:      v.peers,
		postings:   v.postings,
		clusterOf:  slices.Clone(v.clusterOf),
		live:       v.live,
		popVersion: v.popVersion,
	}
	for _, m := range moves {
		if m.Slot < 0 || int(m.Slot) >= len(next.clusterOf) {
			return nil, fmt.Errorf("core: move slot %d out of range [0,%d)", m.Slot, len(next.clusterOf))
		}
		if next.clusterOf[m.Slot] == cluster.None {
			return nil, fmt.Errorf("core: move of unoccupied slot %d", m.Slot)
		}
		if m.To < 0 {
			return nil, fmt.Errorf("core: move slot %d to invalid cluster %d", m.Slot, m.To)
		}
		next.clusterOf[m.Slot] = m.To
	}
	next.rebuildSizes()
	return next, nil
}

// rebuildSizes recomputes sizes and nonEmpty from clusterOf. The
// sizes slice is dimensioned to the highest occupied cluster ID + 1;
// every clusterOf entry is below that bound (Route's accumulator
// indexes by it), and nonEmpty comes out in ascending order (Route's
// hit order contract).
func (v *RoutingView) rebuildSizes() {
	maxC := -1
	for _, c := range v.clusterOf {
		if int(c) > maxC {
			maxC = int(c)
		}
	}
	v.sizes = make([]int, maxC+1)
	for _, c := range v.clusterOf {
		if c != cluster.None {
			v.sizes[c]++
		}
	}
	v.nonEmpty = v.nonEmpty[:0]
	for c, n := range v.sizes {
		if n > 0 {
			v.nonEmpty = append(v.nonEmpty, cluster.CID(c))
		}
	}
}

// ViewData is the neutral, exported form of a RoutingView — the
// payload of a full-view wire record. Slots are parallel across Items
// and ClusterOf; a slot is occupied iff its ClusterOf entry is not
// cluster.None (an occupied slot may legitimately share zero items).
type ViewData struct {
	// PopVersion is the population/content version of the source view.
	PopVersion uint64
	// Items holds each slot's shared content.
	Items [][]attr.Set
	// ClusterOf is the slot -> cluster assignment (None = unoccupied).
	ClusterOf []cluster.CID
	// Postings maps an attribute to the live slots whose content
	// contains it.
	Postings map[attr.ID][]int32
}

// Export renders v as a ViewData. Items are copied per slot; the
// assignment and posting lists alias the view's immutable state, so
// the result must be treated as read-only.
func (v *RoutingView) Export() ViewData {
	items := make([][]attr.Set, len(v.peers))
	for i, p := range v.peers {
		if p != nil {
			items[i] = p.Items()
		}
	}
	return ViewData{
		PopVersion: v.popVersion,
		Items:      items,
		ClusterOf:  v.clusterOf,
		Postings:   v.postings,
	}
}

// FromViewData reconstructs a servable RoutingView from an exported
// (typically wire-decoded) ViewData: fresh peers are built and frozen
// per occupied slot, sizes and the non-empty list are derived from
// the assignment, and the assignment and posting lists are adopted
// (the caller must not mutate them afterwards). The data is validated
// — mismatched slot counts, postings naming unoccupied or
// out-of-range slots, and negative cluster IDs are rejected — so a
// decoder can hand over untrusted input without risking a panic on
// the router's read path.
func FromViewData(d ViewData) (*RoutingView, error) {
	if len(d.Items) != len(d.ClusterOf) {
		return nil, fmt.Errorf("core: view data has %d item slots but %d assignment slots", len(d.Items), len(d.ClusterOf))
	}
	v := &RoutingView{
		clusterOf:  d.ClusterOf,
		postings:   d.Postings,
		popVersion: d.PopVersion,
		peers:      make([]*peer.Peer, len(d.Items)),
	}
	for i, c := range d.ClusterOf {
		if c == cluster.None {
			continue
		}
		if c < 0 {
			return nil, fmt.Errorf("core: slot %d assigned to invalid cluster %d", i, c)
		}
		p := peer.New(i)
		p.SetItems(d.Items[i])
		p.Freeze()
		v.peers[i] = p
		v.live++
	}
	for a, lst := range d.Postings {
		for _, pid := range lst {
			if pid < 0 || int(pid) >= len(v.peers) || v.peers[pid] == nil {
				return nil, fmt.Errorf("core: posting list of attr %d names unoccupied slot %d", a, pid)
			}
		}
	}
	v.rebuildSizes()
	return v, nil
}
