package core

import (
	"slices"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
)

// This file implements the snapshot-isolated read path for query
// serving: an immutable RoutingView published by a single writer and
// shared by any number of concurrent readers. The paper's
// query-routing model — route a query to the clusters that can answer
// it — is a pure read over state that only changes at membership and
// maintenance boundaries, so a long-running daemon builds a view
// after every mutation (under its write lock) and serves all queries
// from the latest published view without locking.
//
// A view carries copies of exactly the state Route touches: the
// content posting lists (attribute -> live peers holding it), the
// peer slice (pointers to peers frozen for read-only matching — see
// peer.Freeze/ResultCountRO), the slot -> cluster assignment, and the
// per-cluster sizes. The copies make the view immune to in-place
// index mutation by later joins/leaves; the peers themselves are
// shared because their content is immutable while views exist (the
// serving daemon never mutates a live peer's items — churn replaces
// peers wholesale).
//
// Because relocations (reform rounds) and workload compactions change
// neither the population nor any posting list, BuildRoutingView
// reuses the previous view's posting and peer copies unless a
// join/leave/Rebuild happened in between (tracked by popVersion):
// republishing after a maintenance period costs O(slots), not
// O(total postings).

// RouteHit is one cluster's share of a query's results.
type RouteHit struct {
	// Cluster is the cluster slot ID.
	Cluster cluster.CID
	// Size is the cluster's live member count.
	Size int
	// Results is Σ result(q,p) over the cluster's members.
	Results int
}

// RouteScratch holds the reusable buffers of Route so the per-query
// read path allocates nothing at steady state. A scratch must not be
// shared by concurrent readers; give each goroutine (or pool) its own.
type RouteScratch struct {
	results []int // dense per-CID accumulator, all-zero between calls
	hits    []RouteHit
}

// RoutingView is an immutable snapshot of the query-routing state.
// Build one with Engine.BuildRoutingView under the writer's lock,
// then share it freely: every method is safe for concurrent use and
// the view never changes once built.
type RoutingView struct {
	peers      []*peer.Peer
	postings   map[attr.ID][]int32
	clusterOf  []cluster.CID
	sizes      []int
	nonEmpty   []cluster.CID
	live       int
	popVersion uint64
}

// BuildRoutingView snapshots the engine's routing state into an
// immutable view. Passing the previously published view lets the
// build reuse its posting-list and peer copies when no join, leave or
// Rebuild happened since (pure relocations and compactions don't
// invalidate them); pass nil to force full copies. The engine must be
// fresh; the call builds the membership indexes if a Rebuild dropped
// them, and freezes every live peer for read-only matching.
func (e *Engine) BuildRoutingView(prev *RoutingView) *RoutingView {
	e.mustBeFresh("BuildRoutingView")
	e.ensureIndexes()
	v := &RoutingView{
		clusterOf:  e.cfg.Assignment(),
		sizes:      make([]int, e.cfg.Cmax()),
		nonEmpty:   e.cfg.NonEmpty(),
		live:       e.cfg.Live(),
		popVersion: e.popVersion,
	}
	for _, c := range v.nonEmpty {
		v.sizes[c] = e.cfg.Size(c)
	}
	if prev != nil && prev.popVersion == e.popVersion {
		v.peers, v.postings = prev.peers, prev.postings
		return v
	}
	v.peers = slices.Clone(e.peers)
	v.postings = make(map[attr.ID][]int32, len(e.peersByAttr))
	for a, lst := range e.peersByAttr {
		if len(lst) > 0 {
			v.postings[a] = slices.Clone(lst)
		}
	}
	for _, p := range v.peers {
		if p != nil {
			p.Freeze()
		}
	}
	return v
}

// Live returns the live peer count at snapshot time.
func (v *RoutingView) Live() int { return v.live }

// Slots returns the peer-slot count at snapshot time.
func (v *RoutingView) Slots() int { return len(v.clusterOf) }

// NumClusters returns the non-empty cluster count at snapshot time.
func (v *RoutingView) NumClusters() int { return len(v.nonEmpty) }

// Route answers query q against the snapshot: the total result count
// over all live peers and, per non-empty cluster holding results, its
// hit. Hits are in ascending cluster order — the same order the
// engine's locked path reports. The hit slice is owned by sc and
// valid until its next Route; cost is bounded by the posting list of
// q's first attribute, and the call allocates nothing at steady
// state. An empty query or one whose first attribute no live peer
// holds yields (0, empty).
func (v *RoutingView) Route(q attr.Set, sc *RouteScratch) (total int, hits []RouteHit) {
	sc.hits = sc.hits[:0]
	ids := q.IDs()
	if len(ids) == 0 {
		return 0, sc.hits
	}
	if len(sc.results) < len(v.sizes) {
		sc.results = make([]int, len(v.sizes))
	}
	for _, pid := range v.postings[ids[0]] {
		if res := v.peers[pid].ResultCountRO(q); res > 0 {
			sc.results[v.clusterOf[pid]] += res
			total += res
		}
	}
	if total == 0 {
		return 0, sc.hits
	}
	// Every touched cluster hosts a live peer, so iterating the
	// non-empty list both emits the hits in ascending order and
	// restores the accumulator's all-zero invariant.
	for _, c := range v.nonEmpty {
		if n := sc.results[c]; n > 0 {
			sc.hits = append(sc.hits, RouteHit{Cluster: c, Size: v.sizes[c], Results: n})
			sc.results[c] = 0
		}
	}
	return total, sc.hits
}
