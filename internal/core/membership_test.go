package core

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// membershipTolerance bounds the drift the incremental join/leave
// updates may accumulate against a from-scratch Rebuild.
const membershipTolerance = 1e-9

// testAttrIDs re-derives the attribute IDs testSystem interned, so
// membership tests can mint joiner content over the same vocabulary.
func testAttrIDs(v int) []attr.ID {
	vocab := attr.NewVocab()
	ids := make([]attr.ID, v)
	for i := range ids {
		ids[i] = vocab.Intern(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	return ids
}

// randomJoiner mints a fresh peer plus workload over the given
// attribute universe: 1-3 items of two attributes each and 1-3
// single-attribute queries.
func randomJoiner(ids []attr.ID, rng *stats.RNG) (*peer.Peer, []attr.Set, []int) {
	pr := peer.New(-1)
	items := make([]attr.Set, 0, 3)
	for d := 0; d <= rng.Intn(3); d++ {
		items = append(items, attr.NewSet(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
	}
	pr.SetItems(items)
	var queries []attr.Set
	var counts []int
	for q := 0; q <= rng.Intn(3); q++ {
		queries = append(queries, attr.NewSet(ids[rng.Intn(len(ids))]))
		counts = append(counts, 1+rng.Intn(4))
	}
	return pr, queries, counts
}

// checkAgainstRebuild compares the incrementally maintained engine
// against a fresh engine built over clones of the same population.
func checkAgainstRebuild(t *testing.T, e *Engine, step string) {
	t.Helper()
	if e.Stale() {
		t.Fatalf("%s: engine stale after its own mutation", step)
	}
	if err := e.Config().Validate(); err != nil {
		t.Fatalf("%s: config invalid: %v", step, err)
	}
	if err := e.Workload().Validate(); err != nil {
		t.Fatalf("%s: workload invalid: %v", step, err)
	}
	peersCopy := append([]*peer.Peer(nil), e.Peers()...)
	fresh := New(peersCopy, e.Workload(), e.Config().Clone(), e.Theta(), e.Alpha())

	close := func(a, b float64) bool {
		return math.Abs(a-b) <= membershipTolerance
	}
	if !close(e.SCost(), fresh.SCost()) {
		t.Fatalf("%s: SCost %g want %g (Δ=%g)", step, e.SCost(), fresh.SCost(), e.SCost()-fresh.SCost())
	}
	if !close(e.WCost(), fresh.WCost()) {
		t.Fatalf("%s: WCost %g want %g", step, e.WCost(), fresh.WCost())
	}
	if e.NumPeers() != fresh.NumPeers() {
		t.Fatalf("%s: live %d want %d", step, e.NumPeers(), fresh.NumPeers())
	}
	nonEmpty := e.Config().NonEmpty()
	for p := 0; p < e.NumSlots(); p++ {
		if !e.IsLive(p) {
			continue
		}
		if !close(e.CostAlone(p), fresh.CostAlone(p)) {
			t.Fatalf("%s: CostAlone(%d) %g want %g", step, p, e.CostAlone(p), fresh.CostAlone(p))
		}
		for _, c := range nonEmpty {
			if got, want := e.PeerCost(p, c), fresh.PeerCost(p, c); !close(got, want) {
				t.Fatalf("%s: PeerCost(%d,%d) %g want %g", step, p, c, got, want)
			}
			if got, want := e.Contribution(p, c), fresh.Contribution(p, c); !close(got, want) {
				t.Fatalf("%s: Contribution(%d,%d) %g want %g", step, p, c, got, want)
			}
		}
	}
}

// TestAddRemoveMatchesRebuild drives randomized membership sequences
// (joins into existing clusters and singletons, departures, interior
// moves) and pins the incremental state to a fresh Rebuild after every
// operation.
func TestAddRemoveMatchesRebuild(t *testing.T) {
	const v = 12
	peers, wl, _ := testSystem(t, 10, v, 101)
	ids := testAttrIDs(v)
	e := New(peers, wl, cluster.NewSingletons(10), cluster.LinearTheta(), 1)
	rng := stats.NewRNG(202)

	livePeers := func() []int {
		var out []int
		for p := 0; p < e.NumSlots(); p++ {
			if e.IsLive(p) {
				out = append(out, p)
			}
		}
		return out
	}

	for step := 0; step < 120; step++ {
		live := livePeers()
		op := rng.Intn(3)
		switch {
		case op == 0 || len(live) <= 2: // join
			pr, qs, cs := randomJoiner(ids, rng)
			to := cluster.None
			if rng.Intn(2) == 0 && len(live) > 0 {
				// Join an existing non-empty cluster.
				to = e.Config().ClusterOf(live[rng.Intn(len(live))])
			}
			pid := e.AddPeer(pr, qs, cs, to)
			if pr.ID() != pid {
				t.Fatalf("step %d: joiner ID %d want %d", step, pr.ID(), pid)
			}
		case op == 1: // leave
			e.RemovePeer(live[rng.Intn(len(live))])
		default: // interior move
			p := live[rng.Intn(len(live))]
			targets := e.Config().NonEmpty()
			e.Move(p, targets[rng.Intn(len(targets))])
		}
		checkAgainstRebuild(t, e, "step")
	}
	if got := len(livePeers()); got != e.NumPeers() {
		t.Fatalf("live scan %d != NumPeers %d", got, e.NumPeers())
	}
}

// TestAddPeerIntoEmptySystem grows a system from zero peers purely
// through AddPeer, which is how the serve daemon bootstraps.
func TestAddPeerIntoEmptySystem(t *testing.T) {
	e := New(nil, workload.New(0), cluster.FromAssignment(nil), cluster.LinearTheta(), 1)
	if e.SCost() != 0 || e.NumPeers() != 0 {
		t.Fatalf("empty system SCost=%g live=%d", e.SCost(), e.NumPeers())
	}
	ids := testAttrIDs(6)
	rng := stats.NewRNG(7)
	for i := 0; i < 8; i++ {
		pr, qs, cs := randomJoiner(ids, rng)
		e.AddPeer(pr, qs, cs, cluster.None)
		checkAgainstRebuild(t, e, "bootstrap")
	}
	for e.NumPeers() > 0 {
		for p := 0; p < e.NumSlots(); p++ {
			if e.IsLive(p) {
				e.RemovePeer(p)
				break
			}
		}
		checkAgainstRebuild(t, e, "drain")
	}
}

// TestAddRemoveSlotReuse pins the slot discipline: a departed slot is
// reused by the next joiner and IDs stay dense.
func TestAddRemoveSlotReuse(t *testing.T) {
	e := newTestEngine(t, 8, 10, 303, nil)
	e.RemovePeer(3)
	if e.IsLive(3) || e.NumPeers() != 7 || e.NumSlots() != 8 {
		t.Fatalf("after remove: live(3)=%v peers=%d slots=%d", e.IsLive(3), e.NumPeers(), e.NumSlots())
	}
	ids := testAttrIDs(10)
	pr, qs, cs := randomJoiner(ids, stats.NewRNG(9))
	if pid := e.AddPeer(pr, qs, cs, cluster.None); pid != 3 {
		t.Fatalf("joiner got slot %d, want reused slot 3", pid)
	}
	pr2, qs2, cs2 := randomJoiner(ids, stats.NewRNG(10))
	if pid := e.AddPeer(pr2, qs2, cs2, cluster.None); pid != 8 {
		t.Fatalf("joiner got slot %d, want fresh slot 8", pid)
	}
	if e.NumSlots() != 9 || e.Config().Cmax() != 9 {
		t.Fatalf("slots=%d cmax=%d want 9/9", e.NumSlots(), e.Config().Cmax())
	}
	checkAgainstRebuild(t, e, "slot-reuse")
}

// TestAddRemoveAllocationFree pins the steady-state promise: once
// capacities are warm, an add/remove churn cycle allocates nothing.
func TestAddRemoveAllocationFree(t *testing.T) {
	e := newTestEngine(t, 16, 10, 404, nil)
	ids := testAttrIDs(10)
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(ids[1], ids[4]), attr.NewSet(ids[2], ids[7])})
	queries := []attr.Set{attr.NewSet(ids[3]), attr.NewSet(ids[5])}
	counts := []int{2, 3}
	// Warm: build the indexes, grow every capacity once.
	pid := e.AddPeer(pr, queries, counts, cluster.None)
	e.RemovePeer(pid)
	pid = e.AddPeer(pr, queries, counts, cluster.None)
	e.RemovePeer(pid)
	if avg := testing.AllocsPerRun(100, func() {
		id := e.AddPeer(pr, queries, counts, cluster.None)
		e.RemovePeer(id)
	}); avg != 0 {
		t.Errorf("AddPeer+RemovePeer allocates %v per cycle, want 0", avg)
	}
}

// TestStaleDetectsMembershipChanges pins the hardened staleness rule:
// an engine must flag configurations whose membership was mutated
// behind its back, while its own mutations keep it fresh.
func TestStaleDetectsMembershipChanges(t *testing.T) {
	e := newTestEngine(t, 6, 8, 505, nil)
	if e.Stale() {
		t.Fatal("fresh engine reports stale")
	}
	e.Move(0, e.Config().ClusterOf(1))
	if e.Stale() {
		t.Fatal("stale after engine-driven Move")
	}
	ids := testAttrIDs(8)
	pr, qs, cs := randomJoiner(ids, stats.NewRNG(1))
	pid := e.AddPeer(pr, qs, cs, cluster.None)
	if e.Stale() {
		t.Fatal("stale after engine-driven AddPeer")
	}
	e.RemovePeer(pid)
	if e.Stale() {
		t.Fatal("stale after engine-driven RemovePeer")
	}
	// Mutating the configuration directly must trip staleness.
	e.Config().Move(0, e.Config().ClusterOf(2))
	if !e.Stale() {
		t.Fatal("external Config.Move not detected")
	}
	e.Rebuild()
	if e.Stale() {
		t.Fatal("stale after Rebuild")
	}
	e.Config().AddSlot()
	if !e.Stale() {
		t.Fatal("external Config.AddSlot not detected")
	}
}

// TestMutatorsRefuseStaleEngine pins that Move/AddPeer/RemovePeer
// panic instead of laundering an external mutation: they sync the
// version counters on exit, so running them over a stale engine would
// otherwise flip Stale back to false over wrong aggregates.
func TestMutatorsRefuseStaleEngine(t *testing.T) {
	ids := testAttrIDs(8)
	mutate := func(e *Engine) { e.Workload().Add(0, attr.NewSet(ids[2]), 1) }
	expectPanic := func(name string, fn func(e *Engine)) {
		e := newTestEngine(t, 6, 8, 606, nil)
		mutate(e)
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a stale engine did not panic", name)
			}
		}()
		fn(e)
	}
	expectPanic("Move", func(e *Engine) { e.Move(0, e.Config().ClusterOf(1)) })
	expectPanic("AddPeer", func(e *Engine) {
		pr, qs, cs := randomJoiner(ids, stats.NewRNG(1))
		e.AddPeer(pr, qs, cs, cluster.None)
	})
	expectPanic("RemovePeer", func(e *Engine) { e.RemovePeer(0) })
}
