package core

import (
	"testing"

	"repro/internal/cluster"
)

// The engine's hot paths promise zero steady-state allocations: all
// per-call state lives in Engine-owned scratch buffers and the global
// costs are maintained incrementally. These regression tests pin that
// promise with testing.AllocsPerRun (which performs one warm-up call,
// letting the scratch buffers and cluster member slices reach their
// steady-state capacity first).

func TestEvaluateMovesAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 41, nil)
	p := 0
	e.EvaluateMoves(p) // reach steady state
	if avg := testing.AllocsPerRun(100, func() {
		e.EvaluateMoves(p)
		p = (p + 1) % e.NumPeers()
	}); avg != 0 {
		t.Errorf("EvaluateMoves allocates %v per call, want 0", avg)
	}
}

func TestPeerCostAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 43, nil)
	cur := e.Config().ClusterOf(5)
	other := cluster.CID((int(cur) + 1) % e.Config().Cmax())
	if avg := testing.AllocsPerRun(100, func() {
		e.PeerCost(5, cur)
		e.PeerCost(5, other)
	}); avg != 0 {
		t.Errorf("PeerCost allocates %v per call, want 0", avg)
	}
}

func TestMoveAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 47, nil)
	// Bounce a peer between two clusters until the member slices have
	// grown to their steady-state capacity.
	a, b := e.Config().ClusterOf(3), cluster.CID(7)
	e.Move(3, b)
	e.Move(3, a)
	targets := [2]cluster.CID{b, a}
	i := 0
	if avg := testing.AllocsPerRun(100, func() {
		e.Move(3, targets[i%2])
		i++
	}); avg != 0 {
		t.Errorf("Move allocates %v per call, want 0", avg)
	}
}

func TestSCostAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 53, nil)
	if avg := testing.AllocsPerRun(100, func() {
		_ = e.SCostNormalized()
		_ = e.WCostNormalized()
	}); avg != 0 {
		t.Errorf("SCost/WCost allocate %v per call, want 0", avg)
	}
}

func TestEvaluateContributionAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 59, nil)
	p := 0
	e.EvaluateContribution(p)
	if avg := testing.AllocsPerRun(100, func() {
		e.EvaluateContribution(p)
		p = (p + 1) % e.NumPeers()
	}); avg != 0 {
		t.Errorf("EvaluateContribution allocates %v per call, want 0", avg)
	}
}

func TestPeerCostMultiAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 61, nil)
	s := []cluster.CID{e.Config().ClusterOf(2), 3, 5}
	e.PeerCostMulti(2, s)
	if avg := testing.AllocsPerRun(100, func() {
		e.PeerCostMulti(2, s)
	}); avg != 0 {
		t.Errorf("PeerCostMulti allocates %v per call, want 0", avg)
	}
}
