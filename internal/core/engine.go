// Package core implements the paper's primary contribution: the
// recall-based cluster-formation game. It provides the recall measure
// r(q,p), the individual peer cost pcost (Eq. 1), the global social and
// workload costs (Eq. 2-4), the contribution measure of the altruistic
// strategy (Eq. 6), the selfish/altruistic/hybrid relocation strategies
// (§3.1), and Nash-equilibrium analysis (§2.3) including the paper's
// two-peer non-existence counterexample.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/workload"
)

// resEntry records that a peer holds `res` results for query `qid`.
type resEntry struct {
	qid workload.QID
	res float64
}

// Engine evaluates all cost measures of the game over a live cluster
// configuration. Recall and demand aggregates per cluster are
// maintained incrementally under Move; content or workload changes
// require Rebuild. Engine is not safe for concurrent use.
type Engine struct {
	peers []*peer.Peer
	wl    *workload.Workload
	cfg   *cluster.Config
	theta cluster.Theta
	alpha float64
	n     int

	// totals[q] = Σ_p result(q,p); zero-result queries carry no recall
	// cost (r is undefined for them, see DESIGN.md §5.3).
	totals []float64
	// peerRes[p] lists every query p holds results for.
	peerRes [][]resEntry
	// clusterRes[q][c] = Σ_{p∈c} result(q,p).
	clusterRes [][]float64
	// demandTot[q] = num(q,Q); clusterDemand[q][c] = Σ_{p∈c} num(q,Q(p)).
	demandTot     []float64
	clusterDemand [][]float64

	wlVersion int
}

// New builds an engine over the given peers, workload and initial
// configuration. The peers slice is indexed by peer ID: peers[i].ID()
// must equal i.
func New(peers []*peer.Peer, wl *workload.Workload, cfg *cluster.Config, theta cluster.Theta, alpha float64) *Engine {
	if len(peers) != cfg.NumPeers() || len(peers) != wl.NumPeers() {
		panic(fmt.Sprintf("core: size mismatch peers=%d cfg=%d wl=%d",
			len(peers), cfg.NumPeers(), wl.NumPeers()))
	}
	for i, p := range peers {
		if p.ID() != i {
			panic(fmt.Sprintf("core: peers[%d] has ID %d", i, p.ID()))
		}
	}
	if alpha < 0 {
		panic("core: negative alpha")
	}
	e := &Engine{peers: peers, wl: wl, cfg: cfg, theta: theta, alpha: alpha, n: len(peers)}
	e.Rebuild()
	return e
}

// Rebuild recomputes every aggregate from scratch. Call it after peer
// content or workload mutations; plain relocations are tracked
// incrementally by Move.
func (e *Engine) Rebuild() {
	nq := e.wl.NumQueries()
	cmax := e.cfg.Cmax()
	e.totals = make([]float64, nq)
	e.peerRes = make([][]resEntry, e.n)
	e.clusterRes = make([][]float64, nq)
	e.demandTot = make([]float64, nq)
	e.clusterDemand = make([][]float64, nq)
	for q := 0; q < nq; q++ {
		e.clusterRes[q] = make([]float64, cmax)
		e.clusterDemand[q] = make([]float64, cmax)
	}
	for pid, p := range e.peers {
		cid := e.cfg.ClusterOf(pid)
		for q := 0; q < nq; q++ {
			res := p.ResultCount(e.wl.Query(workload.QID(q)))
			if res == 0 {
				continue
			}
			r := float64(res)
			e.peerRes[pid] = append(e.peerRes[pid], resEntry{qid: workload.QID(q), res: r})
			e.totals[q] += r
			e.clusterRes[q][cid] += r
		}
		for _, entry := range e.wl.Peer(pid) {
			c := float64(entry.Count)
			e.demandTot[entry.Q] += c
			e.clusterDemand[entry.Q][cid] += c
		}
	}
	e.wlVersion = e.wl.Version()
}

// Move relocates peer p to cluster `to`, updating all incremental
// aggregates. It returns the previous cluster.
func (e *Engine) Move(p int, to cluster.CID) cluster.CID {
	from := e.cfg.Move(p, to)
	if from == to {
		return from
	}
	for _, re := range e.peerRes[p] {
		e.clusterRes[re.qid][from] -= re.res
		e.clusterRes[re.qid][to] += re.res
	}
	for _, entry := range e.wl.Peer(p) {
		c := float64(entry.Count)
		e.clusterDemand[entry.Q][from] -= c
		e.clusterDemand[entry.Q][to] += c
	}
	return from
}

// Config returns the live configuration. Mutate it only through
// Engine.Move, or the incremental aggregates go stale.
func (e *Engine) Config() *cluster.Config { return e.cfg }

// Workload returns the workload the engine was built over.
func (e *Engine) Workload() *workload.Workload { return e.wl }

// Peers returns the peer slice (shared, do not reorder).
func (e *Engine) Peers() []*peer.Peer { return e.peers }

// NumPeers returns |P|.
func (e *Engine) NumPeers() int { return e.n }

// Alpha returns the membership-cost weight α.
func (e *Engine) Alpha() float64 { return e.alpha }

// SetAlpha changes α. No rebuild is needed: α only scales the
// membership term at evaluation time.
func (e *Engine) SetAlpha(a float64) {
	if a < 0 {
		panic("core: negative alpha")
	}
	e.alpha = a
}

// Theta returns the cluster participation cost function.
func (e *Engine) Theta() cluster.Theta { return e.theta }

// Stale reports whether the workload changed since the last Rebuild.
func (e *Engine) Stale() bool { return e.wl.Version() != e.wlVersion }

// recallWeight returns w = num(q,Q(p))/num(Q(p)) for one workload entry.
func (e *Engine) recallWeight(p int, count int) float64 {
	return float64(count) / float64(e.wl.PeerTotal(p))
}

// membership returns the first term of Eq. 1 for a cluster of the given
// size: α·θ(size)/|P|.
func (e *Engine) membership(size int) float64 {
	return e.alpha * e.theta.F(size) / float64(e.n)
}

// ownRecall returns Σ_q w(q)·r(q,p): the recall p supplies to its own
// workload, which is in-cluster wherever p goes.
func (e *Engine) ownRecall(p int) float64 {
	own := ownResMap(e.peerRes[p])
	var acc float64
	for _, entry := range e.wl.Peer(p) {
		t := e.totals[entry.Q]
		if t == 0 {
			continue
		}
		acc += e.recallWeight(p, entry.Count) * own[entry.Q] / t
	}
	return acc
}

func ownResMap(entries []resEntry) map[workload.QID]float64 {
	m := make(map[workload.QID]float64, len(entries))
	for _, re := range entries {
		m[re.qid] = re.res
	}
	return m
}

// PeerCost returns pcost(p, c) (Eq. 1 restricted to single-cluster
// strategies): the cost for p if its cluster were c. Probing a cluster
// p does not belong to accounts for p's own arrival: the membership
// term uses θ(|c|+1) and p's own results count as in-cluster, matching
// the §2.3 worked example.
func (e *Engine) PeerCost(p int, c cluster.CID) float64 {
	cur := e.cfg.ClusterOf(p)
	size := e.cfg.Size(c)
	if c != cur {
		size++
	}
	cost := e.membership(size)
	own := ownResMap(e.peerRes[p])
	for _, entry := range e.wl.Peer(p) {
		t := e.totals[entry.Q]
		if t == 0 {
			continue
		}
		in := e.clusterRes[entry.Q][c]
		if c != cur {
			in += own[entry.Q]
		}
		cost += e.recallWeight(p, entry.Count) * (1 - in/t)
	}
	return cost
}

// CostAlone returns pcost for p in a fresh singleton cluster:
// α·θ(1)/|P| plus the recall of everything p does not hold itself.
func (e *Engine) CostAlone(p int) float64 {
	cost := e.membership(1)
	own := ownResMap(e.peerRes[p])
	for _, entry := range e.wl.Peer(p) {
		t := e.totals[entry.Q]
		if t == 0 {
			continue
		}
		cost += e.recallWeight(p, entry.Count) * (1 - own[entry.Q]/t)
	}
	return cost
}

// PeerCostMulti evaluates the full Eq. 1 for a multi-cluster strategy
// s ⊆ C: Σ_{c∈s} α·θ(|c ∪ {p}|)/|P| plus the recall lost to peers in no
// cluster of s. It is exposed for completeness; the protocol and the
// experiments use single-cluster strategies per §2.3.
func (e *Engine) PeerCostMulti(p int, s []cluster.CID) float64 {
	cur := e.cfg.ClusterOf(p)
	var cost float64
	seen := make(map[cluster.CID]bool, len(s))
	inAny := false
	for _, c := range s {
		if seen[c] {
			continue
		}
		seen[c] = true
		size := e.cfg.Size(c)
		if c != cur {
			size++
		} else {
			inAny = true
		}
		cost += e.membership(size)
	}
	own := ownResMap(e.peerRes[p])
	for _, entry := range e.wl.Peer(p) {
		t := e.totals[entry.Q]
		if t == 0 {
			continue
		}
		var in float64
		for c := range seen {
			in += e.clusterRes[entry.Q][c]
		}
		if !inAny && len(seen) > 0 {
			in += own[entry.Q]
		}
		if in > t {
			in = t
		}
		cost += e.recallWeight(p, entry.Count) * (1 - in/t)
	}
	return cost
}

// MoveEval holds the outcome of evaluating all candidate clusters for a
// peer.
type MoveEval struct {
	// Cur is the peer's current cluster; CurCost its pcost there.
	Cur     cluster.CID
	CurCost float64
	// Best is the cheapest cluster (possibly Cur); BestCost its pcost.
	Best     cluster.CID
	BestCost float64
	// AloneCost is pcost in a fresh singleton cluster.
	AloneCost float64
}

// Gain returns CurCost - BestCost (>= 0 when an improving move exists).
func (m MoveEval) Gain() float64 { return m.CurCost - m.BestCost }

// EvaluateMoves computes pcost(p,c) for every non-empty cluster plus
// the singleton option in one pass over p's workload. Ties prefer the
// current cluster (no churn), then the lowest cluster ID, keeping the
// dynamics deterministic.
func (e *Engine) EvaluateMoves(p int) MoveEval {
	cur := e.cfg.ClusterOf(p)
	nonEmpty := e.cfg.NonEmpty()

	// acc[c] accumulates Σ_q w·clusterRes[q][c]/totals[q].
	acc := make(map[cluster.CID]float64, len(nonEmpty))
	var w float64 // Σ weights of answerable queries
	var ownAcc float64
	own := ownResMap(e.peerRes[p])
	for _, entry := range e.wl.Peer(p) {
		t := e.totals[entry.Q]
		if t == 0 {
			continue
		}
		wq := e.recallWeight(p, entry.Count)
		w += wq
		ownAcc += wq * own[entry.Q] / t
		row := e.clusterRes[entry.Q]
		for _, c := range nonEmpty {
			if row[c] != 0 {
				acc[c] += wq * row[c] / t
			}
		}
	}

	ev := MoveEval{Cur: cur}
	ev.CurCost = e.membership(e.cfg.Size(cur)) + w - acc[cur]
	ev.AloneCost = e.membership(1) + w - ownAcc
	ev.Best, ev.BestCost = cur, ev.CurCost
	for _, c := range nonEmpty {
		if c == cur {
			continue
		}
		cost := e.membership(e.cfg.Size(c)+1) + w - acc[c] - ownAcc
		if cost < ev.BestCost || (cost == ev.BestCost && ev.Best != cur && c < ev.Best) {
			ev.Best, ev.BestCost = c, cost
		}
	}
	return ev
}
