// Package core implements the paper's primary contribution: the
// recall-based cluster-formation game. It provides the recall measure
// r(q,p), the individual peer cost pcost (Eq. 1), the global social and
// workload costs (Eq. 2-4), the contribution measure of the altruistic
// strategy (Eq. 6), the selfish/altruistic/hybrid relocation strategies
// (§3.1), and Nash-equilibrium analysis (§2.3) including the paper's
// two-peer non-existence counterexample.
//
// # Performance design
//
// The cost engine sits on the hot path of every experiment: each
// protocol round scores every candidate cluster for every peer. Its
// steady-state paths (EvaluateMoves, PeerCost, Move, SCost) are
// allocation-free by construction:
//
//   - All cluster-by-query aggregates (clusterRes, clusterDemand,
//     demandW) live in single contiguous []float64 backing arrays
//     indexed q*Cmax+c, for cache locality and cheap addressing.
//   - Per-peer recall weights w(q) = num(q,Q(p))/num(Q(p)) — and
//     w(q)/totals[q], the factor every recall term multiplies by — are
//     precomputed once per Rebuild into peerWl, restricted to
//     answerable queries so the hot loops carry no zero-total branch.
//   - Evaluation methods use dense scratch slices owned by the Engine
//     (ownScratch by QID, accScratch by CID, cidScratch for the
//     non-empty cluster list) that are reset via explicit touched-entry
//     lists, never reallocated.
//   - The social and workload costs are maintained incrementally under
//     Move (see the recallSum/wRecallSum/membSumRaw fields), so
//     SCost/WCost are O(1) reads instead of full rescans.
//
// The scratch buffers are the reason an Engine is not safe for
// concurrent use; build one engine per goroutine over shared read-only
// peers and workload instead (see experiments.System.Warm).
package core

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/workload"
)

// resEntry records that a peer holds `res` results for query `qid`.
type resEntry struct {
	qid workload.QID
	res float64
}

// wlEntry is a per-peer workload entry precomputed at Rebuild time,
// restricted to answerable queries (totals[qid] > 0): the multiplicity
// as a float, the recall weight w = num(q,Q(p))/num(Q(p)), and
// w/totals[qid], which every recall term multiplies by.
type wlEntry struct {
	qid   workload.QID
	count float64
	w     float64
	wInvT float64
}

// Engine evaluates all cost measures of the game over a live cluster
// configuration. Recall and demand aggregates per cluster — and the
// global social/workload costs — are maintained incrementally under
// Move, AddPeer and RemovePeer; content or workload mutations of
// peers already in the system require Rebuild. Engine is not safe for
// concurrent use (it owns reusable scratch buffers).
//
// # Dynamic membership
//
// Peers occupy slots: a departed peer leaves a nil slot behind (kept
// so IDs stay dense and stable) that the next joiner reuses. n counts
// slots; the live |P| every per-|P| normalization uses is the
// configuration's occupied-slot count (cfg.Live()), so it can never
// drift from the membership state. The flattened aggregates are indexed q*stride+c with
// stride >= Cmax, so appending peer/cluster slots only re-strides the
// arrays when the geometrically grown column capacity is exhausted
// (amortized O(1) per join). See membership.go for the incremental
// join/leave updates and the inverted content/query indexes they use.
type Engine struct {
	peers []*peer.Peer
	wl    *workload.Workload
	cfg   *cluster.Config
	theta cluster.Theta
	alpha float64
	n     int // peer slots (len(peers)); the live |P| is cfg.Live()
	nq    int
	cmax  int // cluster slots (cfg.Cmax(), <= stride)

	// totals[q] = Σ_p result(q,p); zero-result queries carry no recall
	// cost (r is undefined for them, see DESIGN.md §5.3). invTot[q] is
	// 1/totals[q], or 0 for zero-result queries.
	totals []float64
	invTot []float64
	// peerRes[p] lists every query p holds results for.
	peerRes [][]resEntry
	// peerWl[p] is p's local workload restricted to answerable queries,
	// with recall weights baked in; peerW[p] = Σ w over those entries
	// and peerOwnW[p] = Σ w·r(q,p) — the recall p supplies to its own
	// workload, which is in-cluster wherever p goes. All three are
	// invariant under Move.
	peerWl   [][]wlEntry
	peerW    []float64
	peerOwnW []float64

	// Flattened [nq*stride] aggregates, indexed q*stride+c:
	//   clusterRes    = Σ_{p∈c} result(q,p)
	//   clusterDemand = Σ_{p∈c} num(q,Q(p))   (answerable queries only)
	//   demandW       = Σ_{p∈c} w_p(q)        (answerable queries only)
	stride        int
	clusterRes    []float64
	clusterDemand []float64
	demandW       []float64
	// demandTot[q] = num(q,Q).
	demandTot []float64

	// Incrementally maintained cost state:
	//   membSumRaw = Σ_c |c|·θ(|c|)            (membership, sans α/|P|)
	//   recallSum  = Σ_{q,c} demandW·clusterRes/totals
	//   wRecallSum = Σ_{q,c} clusterDemand·clusterRes/totals
	//   sumW       = Σ_p peerW[p]
	//   ansDemand  = Σ_{q: totals[q]>0} demandTot[q]
	// so SCost = α·membSumRaw/|P| + sumW − recallSum and the workload
	// recall term is (ansDemand − wRecallSum)/num(Q).
	membSumRaw float64
	recallSum  float64
	wRecallSum float64
	sumW       float64
	ansDemand  float64

	// Scratch buffers (the reason Engine is single-goroutine):
	// ownScratch is zero outside method calls; accScratch likewise;
	// qMark/cidMark are epoch-stamped visited sets.
	ownScratch   []float64
	accScratch   []float64
	cidScratch   []cluster.CID
	multiScratch []cluster.CID
	attrScratch  []attr.ID
	qidScratch   []workload.QID
	qMark        []uint64
	qEpoch       uint64
	cidMark      []uint64
	cidEpoch     uint64
	// selfEval is the lazily created engine-owned Evaluator that
	// Strategy.Decide routes through (see evaluator.go); concurrent
	// scans build private evaluators with NewEvaluator instead.
	selfEval *Evaluator

	// Dynamic-membership state (see membership.go): the free-slot
	// stack, the inverted indexes that make joins proportional to the
	// joiner's footprint instead of the system size, and how many
	// workload queries the query index covers. The indexes are built
	// lazily on the first join/leave and invalidated by Rebuild
	// (content may have changed under it).
	free           []int
	slotGen        []uint32
	peersByAttr    map[attr.ID][]int32
	queriesByAttr  map[attr.ID][]workload.QID
	demanders      [][]int32
	indexedQueries int
	// demSpare parks the emptied demander rows of compacted-away
	// queries so growDemanders can hand their capacity to future
	// queries (see compact.go).
	demSpare [][]int32

	// Pruned-Decide state (see prune.go): a global mutation clock,
	// per-cluster and per-query-row last-change stamps, a bump-all
	// epoch for wholesale rewrites, the per-peer shortlist/decision
	// caches, and the cached minimum non-empty cluster size behind
	// the shortlist's admissible outside bound.
	aggClock   uint64
	aggVersion []uint64
	rowVersion []uint64
	pruneEpoch uint64
	prune      []peerPrune
	minSize    int
	minSizeVer int

	wlVersion     int
	wlCompactions int
	cfgVersion    int
	// popVersion counts population/content changes (AddPeer,
	// RemovePeer, Rebuild): exactly the mutations that invalidate the
	// posting-list and peer-slice copies a RoutingView carries, so
	// BuildRoutingView can reuse the previous view's copies across
	// pure relocations (reform periods) and compactions.
	popVersion uint64
}

// New builds an engine over the given peers, workload and initial
// configuration. The peers slice is indexed by peer ID: peers[i].ID()
// must equal i. A nil entry is an unoccupied slot (a departed peer);
// it must be unplaced in cfg and carry no workload, and conversely
// every non-nil peer must be placed. An empty system (no peers) is
// valid and can be grown entirely through AddPeer.
func New(peers []*peer.Peer, wl *workload.Workload, cfg *cluster.Config, theta cluster.Theta, alpha float64) *Engine {
	if len(peers) != cfg.NumPeers() || len(peers) != wl.NumPeers() {
		panic(fmt.Sprintf("core: size mismatch peers=%d cfg=%d wl=%d",
			len(peers), cfg.NumPeers(), wl.NumPeers()))
	}
	for i, p := range peers {
		if p == nil {
			if cfg.IsPlaced(i) {
				panic(fmt.Sprintf("core: empty slot %d is placed in cluster %d", i, cfg.ClusterOf(i)))
			}
			if wl.PeerTotal(i) != 0 {
				panic(fmt.Sprintf("core: empty slot %d has workload", i))
			}
			continue
		}
		if p.ID() != i {
			panic(fmt.Sprintf("core: peers[%d] has ID %d", i, p.ID()))
		}
		if !cfg.IsPlaced(i) {
			panic(fmt.Sprintf("core: peer %d is not placed in any cluster", i))
		}
	}
	if alpha < 0 {
		panic("core: negative alpha")
	}
	e := &Engine{peers: peers, wl: wl, cfg: cfg, theta: theta, alpha: alpha, n: len(peers)}
	e.Rebuild()
	return e
}

// grow returns s resliced to length n, reusing its backing array when
// large enough and zeroing the live region either way.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growMarks(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// Rebuild recomputes every aggregate from scratch, reusing the
// engine's backing arrays when their capacity allows. Call it after
// peer content or workload mutations; plain relocations are tracked
// incrementally by Move, and joins/leaves by AddPeer/RemovePeer.
// Rebuild also invalidates the membership indexes (the mutation that
// forced it may have changed peer content); the next join/leave
// rebuilds them.
func (e *Engine) Rebuild() {
	if e.n != e.cfg.NumPeers() || e.n != e.wl.NumPeers() || e.n != len(e.peers) {
		panic(fmt.Sprintf("core: slot mismatch peers=%d cfg=%d wl=%d",
			len(e.peers), e.cfg.NumPeers(), e.wl.NumPeers()))
	}
	nq := e.wl.NumQueries()
	cmax := e.cfg.Cmax()
	e.nq, e.cmax = nq, cmax
	e.stride = cmax

	e.totals = grow(e.totals, nq)
	e.invTot = grow(e.invTot, nq)
	e.demandTot = grow(e.demandTot, nq)
	flat := nq * cmax
	e.clusterRes = grow(e.clusterRes, flat)
	e.clusterDemand = grow(e.clusterDemand, flat)
	e.demandW = grow(e.demandW, flat)
	e.ownScratch = grow(e.ownScratch, nq)
	e.accScratch = grow(e.accScratch, cmax)
	e.qMark = growMarks(e.qMark, nq)
	e.cidMark = growMarks(e.cidMark, cmax)
	if e.peerRes == nil {
		e.peerRes = make([][]resEntry, e.n)
		e.peerWl = make([][]wlEntry, e.n)
		e.peerW = make([]float64, e.n)
		e.peerOwnW = make([]float64, e.n)
	}
	e.peersByAttr = nil
	e.queriesByAttr = nil
	e.demanders = nil
	e.indexedQueries = 0
	e.free = e.free[:0]
	for pid := e.n - 1; pid >= 0; pid-- {
		if e.peers[pid] == nil {
			e.free = append(e.free, pid)
		}
	}

	// Pass 1: result counts -> totals, peerRes, clusterRes.
	for pid, p := range e.peers {
		if p == nil {
			e.peerRes[pid] = e.peerRes[pid][:0]
			continue
		}
		cid := int(e.cfg.ClusterOf(pid))
		pr := e.peerRes[pid][:0]
		for q := 0; q < nq; q++ {
			res := p.ResultCount(e.wl.Query(workload.QID(q)))
			if res == 0 {
				continue
			}
			r := float64(res)
			pr = append(pr, resEntry{qid: workload.QID(q), res: r})
			e.totals[q] += r
			e.clusterRes[q*cmax+cid] += r
		}
		e.peerRes[pid] = pr
		for _, entry := range e.wl.Peer(pid) {
			e.demandTot[entry.Q] += float64(entry.Count)
		}
	}
	for q := 0; q < nq; q++ {
		if e.totals[q] > 0 {
			e.invTot[q] = 1 / e.totals[q]
		}
	}

	// Pass 2: precompute per-peer recall weights over answerable
	// queries and accumulate the cluster demand aggregates.
	for pid, p := range e.peers {
		if p == nil {
			e.peerWl[pid] = e.peerWl[pid][:0]
			e.peerW[pid], e.peerOwnW[pid] = 0, 0
			continue
		}
		cid := int(e.cfg.ClusterOf(pid))
		tot := float64(e.wl.PeerTotal(pid))
		pw := e.peerWl[pid][:0]
		var wSum float64
		for _, entry := range e.wl.Peer(pid) {
			q := int(entry.Q)
			if e.totals[q] == 0 {
				continue
			}
			w := float64(entry.Count) / tot
			pw = append(pw, wlEntry{
				qid:   entry.Q,
				count: float64(entry.Count),
				w:     w,
				wInvT: w * e.invTot[q],
			})
			wSum += w
			e.clusterDemand[q*cmax+cid] += float64(entry.Count)
			e.demandW[q*cmax+cid] += w
		}
		e.peerWl[pid] = pw
		e.peerW[pid] = wSum
		var ownW float64
		own := e.ownScratch
		for _, re := range e.peerRes[pid] {
			own[re.qid] = re.res
		}
		for _, en := range pw {
			ownW += en.wInvT * own[en.qid]
		}
		for _, re := range e.peerRes[pid] {
			own[re.qid] = 0
		}
		e.peerOwnW[pid] = ownW
	}

	// Pass 3: global incremental-cost state.
	e.membSumRaw = 0
	for c := 0; c < cmax; c++ {
		if s := e.cfg.Size(cluster.CID(c)); s > 0 {
			e.membSumRaw += float64(s) * e.theta.F(s)
		}
	}
	e.sumW = 0
	for _, w := range e.peerW {
		e.sumW += w
	}
	e.ansDemand = 0
	for q := 0; q < nq; q++ {
		if e.totals[q] > 0 {
			e.ansDemand += e.demandTot[q]
		}
	}
	e.recallSum, e.wRecallSum = 0, 0
	for q := 0; q < nq; q++ {
		it := e.invTot[q]
		if it == 0 {
			continue
		}
		row := q * cmax
		for c := 0; c < cmax; c++ {
			if r := e.clusterRes[row+c]; r != 0 {
				e.recallSum += e.demandW[row+c] * r * it
				e.wRecallSum += e.clusterDemand[row+c] * r * it
			}
		}
	}

	e.initPruneState()
	e.minSize, e.minSizeVer = 0, -1

	e.wlVersion = e.wl.Version()
	e.wlCompactions = e.wl.Compactions()
	e.cfgVersion = e.cfg.MembershipVersion()
	e.popVersion++
}

// moveRecallTerms adds sign times the recall-sum terms of query q in
// clusters fo and to (flat row offsets already scaled by cmax).
func (e *Engine) moveRecallTerms(iF, iT int, it, sign float64) {
	e.recallSum += sign * (e.demandW[iF]*e.clusterRes[iF] + e.demandW[iT]*e.clusterRes[iT]) * it
	e.wRecallSum += sign * (e.clusterDemand[iF]*e.clusterRes[iF] + e.clusterDemand[iT]*e.clusterRes[iT]) * it
}

// Move relocates peer p to cluster `to`, updating all incremental
// aggregates — including the global social/workload cost state — in
// time proportional to p's workload and result lists. It returns the
// previous cluster. Move allocates nothing at steady state. Like
// AddPeer/RemovePeer it refuses to run on a stale engine: syncing the
// version counters at exit would otherwise mask the external mutation
// that made the aggregates wrong.
func (e *Engine) Move(p int, to cluster.CID) cluster.CID {
	e.mustBeFresh("Move")
	from := e.cfg.ClusterOf(p)
	if from == to {
		return from
	}
	// Membership: only the sizes of `from` and `to` change.
	sf, st := e.cfg.Size(from), e.cfg.Size(to)
	e.membSumRaw -= float64(sf) * e.theta.F(sf)
	if sf > 1 {
		e.membSumRaw += float64(sf-1) * e.theta.F(sf-1)
	}
	if st > 0 {
		e.membSumRaw -= float64(st) * e.theta.F(st)
	}
	e.membSumRaw += float64(st+1) * e.theta.F(st+1)
	e.cfg.Move(p, to)
	e.cfgVersion = e.cfg.MembershipVersion()

	cm := e.stride
	fo, t := int(from), int(to)
	pw := e.peerWl[p]
	pr := e.peerRes[p]

	// Dirty-tracking: both endpoint clusters change (size plus their
	// aggregate columns), and exactly the rows of p's demand and
	// results change.
	e.aggClock++
	clk := e.aggClock
	e.aggVersion[fo] = clk
	e.aggVersion[t] = clk
	for i := range pw {
		e.rowVersion[pw[i].qid] = clk
	}
	for i := range pr {
		e.rowVersion[pr[i].qid] = clk
	}

	// The recall sums change exactly at the (q, from/to) slots touched
	// by p's demand (peerWl) or p's results (peerRes). Subtract the old
	// terms over the union of both query lists, apply the aggregate
	// deltas, then add the new terms back. qMark deduplicates queries
	// appearing in both lists without allocating.
	e.qEpoch++
	ep := e.qEpoch
	for i := range pw {
		q := int(pw[i].qid)
		e.qMark[q] = ep
		e.moveRecallTerms(q*cm+fo, q*cm+t, e.invTot[q], -1)
	}
	for i := range pr {
		q := int(pr[i].qid)
		if e.qMark[q] != ep {
			e.moveRecallTerms(q*cm+fo, q*cm+t, e.invTot[q], -1)
		}
	}
	for i := range pw {
		en := &pw[i]
		q := int(en.qid)
		e.demandW[q*cm+fo] -= en.w
		e.demandW[q*cm+t] += en.w
		e.clusterDemand[q*cm+fo] -= en.count
		e.clusterDemand[q*cm+t] += en.count
	}
	for i := range pr {
		re := &pr[i]
		q := int(re.qid)
		e.clusterRes[q*cm+fo] -= re.res
		e.clusterRes[q*cm+t] += re.res
	}
	for i := range pw {
		q := int(pw[i].qid)
		e.moveRecallTerms(q*cm+fo, q*cm+t, e.invTot[q], 1)
	}
	for i := range pr {
		q := int(pr[i].qid)
		if e.qMark[q] != ep {
			e.moveRecallTerms(q*cm+fo, q*cm+t, e.invTot[q], 1)
		}
	}
	return from
}

// Config returns the live configuration. Mutate it only through
// Engine.Move, or the incremental aggregates go stale.
func (e *Engine) Config() *cluster.Config { return e.cfg }

// Workload returns the workload the engine was built over.
func (e *Engine) Workload() *workload.Workload { return e.wl }

// Peers returns the peer slice (shared, do not reorder).
func (e *Engine) Peers() []*peer.Peer { return e.peers }

// NumPeers returns the live |P|: the number of peers currently in the
// system. Use NumSlots for the slot range to iterate over.
func (e *Engine) NumPeers() int { return e.cfg.Live() }

// NumSlots returns the number of peer slots, live or vacated. Peer IDs
// lie in [0, NumSlots()); use IsLive to skip vacated slots.
func (e *Engine) NumSlots() int { return e.n }

// IsLive reports whether slot p currently holds a peer.
func (e *Engine) IsLive(p int) bool { return e.peers[p] != nil }

// SlotGeneration counts how many joins slot p has hosted. Consumers
// that cache per-peer state across membership changes (the protocol's
// period baseline) compare generations to tell a reused slot's
// newcomer from the peer they sampled.
func (e *Engine) SlotGeneration(p int) uint32 {
	if p >= len(e.slotGen) {
		return 0
	}
	return e.slotGen[p]
}

// Alpha returns the membership-cost weight α.
func (e *Engine) Alpha() float64 { return e.alpha }

// SetAlpha changes α. No rebuild is needed: α only scales the
// membership term at evaluation time (the incremental state stores the
// membership sum without the α factor).
func (e *Engine) SetAlpha(a float64) {
	if a < 0 {
		panic("core: negative alpha")
	}
	e.alpha = a
	// Every membership term changes; invalidate all pruning caches.
	e.bumpAll()
}

// Theta returns the cluster participation cost function.
func (e *Engine) Theta() cluster.Theta { return e.theta }

// Stale reports whether the engine's incremental state may no longer
// match its inputs: the workload changed, or the configuration's
// membership was mutated (a move, join or leave) behind the engine's
// back. Mutations applied through the engine itself (Move, AddPeer,
// RemovePeer) keep it fresh; anything else requires Rebuild before
// the engine may serve costs again.
func (e *Engine) Stale() bool {
	return e.wl.Version() != e.wlVersion || e.cfg.MembershipVersion() != e.cfgVersion
}

// mustBeFresh panics when the engine is stale: the incremental
// mutators sync the version counters on exit, so running them over a
// stale engine would silently launder the external mutation instead
// of surfacing it.
func (e *Engine) mustBeFresh(op string) {
	if e.Stale() {
		panic(fmt.Sprintf("core: %s on a stale engine (workload or membership mutated externally); Rebuild first", op))
	}
}

// membership returns the first term of Eq. 1 for a cluster of the given
// size: α·θ(size)/|P|, with |P| the live peer count.
func (e *Engine) membership(size int) float64 {
	return e.alpha * e.theta.F(size) / float64(e.cfg.Live())
}

// ownRecall returns Σ_q w(q)·r(q,p): the recall p supplies to its own
// workload, which is in-cluster wherever p goes. Precomputed at
// Rebuild — it is invariant under relocations.
func (e *Engine) ownRecall(p int) float64 { return e.peerOwnW[p] }

// nonEmptyScratch refreshes and returns the engine's reusable
// non-empty-cluster list.
func (e *Engine) nonEmptyScratch() []cluster.CID {
	e.cidScratch = e.cfg.AppendNonEmpty(e.cidScratch[:0])
	return e.cidScratch
}

// PeerCost returns pcost(p, c) (Eq. 1 restricted to single-cluster
// strategies): the cost for p if its cluster were c. Probing a cluster
// p does not belong to accounts for p's own arrival: the membership
// term uses θ(|c|+1) and p's own results count as in-cluster, matching
// the §2.3 worked example. PeerCost allocates nothing.
func (e *Engine) PeerCost(p int, c cluster.CID) float64 {
	return e.peerCost(p, c, e.ownScratch)
}

// peerCost is PeerCost over caller-owned QID scratch (zero outside the
// call, length >= nq), so evaluators with private scratch can probe
// concurrently while the engine is frozen.
func (e *Engine) peerCost(p int, c cluster.CID, own []float64) float64 {
	cur := e.cfg.ClusterOf(p)
	size := e.cfg.Size(c)
	cm := e.stride
	ci := int(c)
	if c == cur {
		cost := e.membership(size)
		for _, en := range e.peerWl[p] {
			cost += en.w - en.wInvT*e.clusterRes[int(en.qid)*cm+ci]
		}
		return cost
	}
	cost := e.membership(size + 1)
	pr := e.peerRes[p]
	for i := range pr {
		own[pr[i].qid] = pr[i].res
	}
	for _, en := range e.peerWl[p] {
		cost += en.w - en.wInvT*(e.clusterRes[int(en.qid)*cm+ci]+own[en.qid])
	}
	for i := range pr {
		own[pr[i].qid] = 0
	}
	return cost
}

// CostAlone returns pcost for p in a fresh singleton cluster:
// α·θ(1)/|P| plus the recall of everything p does not hold itself.
func (e *Engine) CostAlone(p int) float64 {
	return e.membership(1) + e.peerW[p] - e.peerOwnW[p]
}

// PeerCostMulti evaluates the full Eq. 1 for a multi-cluster strategy
// s ⊆ C: Σ_{c∈s} α·θ(|c ∪ {p}|)/|P| plus the recall lost to peers in no
// cluster of s. It is exposed for completeness; the protocol and the
// experiments use single-cluster strategies per §2.3. Like the other
// evaluation methods it reuses the engine's scratch buffers and
// allocates nothing at steady state.
func (e *Engine) PeerCostMulti(p int, s []cluster.CID) float64 {
	cur := e.cfg.ClusterOf(p)
	var cost float64
	e.cidEpoch++
	ep := e.cidEpoch
	e.multiScratch = e.multiScratch[:0]
	inAny := false
	for _, c := range s {
		if e.cidMark[c] == ep {
			continue
		}
		e.cidMark[c] = ep
		e.multiScratch = append(e.multiScratch, c)
		size := e.cfg.Size(c)
		if c != cur {
			size++
		} else {
			inAny = true
		}
		cost += e.membership(size)
	}
	chosen := e.multiScratch
	own := e.ownScratch
	pr := e.peerRes[p]
	for i := range pr {
		own[pr[i].qid] = pr[i].res
	}
	cm := e.stride
	for _, en := range e.peerWl[p] {
		q := int(en.qid)
		var in float64
		for _, c := range chosen {
			in += e.clusterRes[q*cm+int(c)]
		}
		if !inAny && len(chosen) > 0 {
			in += own[en.qid]
		}
		if t := e.totals[q]; in > t {
			in = t
		}
		cost += en.w - en.wInvT*in
	}
	for i := range pr {
		own[pr[i].qid] = 0
	}
	return cost
}

// MoveEval holds the outcome of evaluating all candidate clusters for a
// peer.
type MoveEval struct {
	// Cur is the peer's current cluster; CurCost its pcost there.
	Cur     cluster.CID
	CurCost float64
	// Best is the cheapest cluster (possibly Cur); BestCost its pcost.
	Best     cluster.CID
	BestCost float64
	// AloneCost is pcost in a fresh singleton cluster.
	AloneCost float64
}

// Gain returns CurCost - BestCost (>= 0 when an improving move exists).
func (m MoveEval) Gain() float64 { return m.CurCost - m.BestCost }

// EvaluateMoves computes pcost(p,c) for every non-empty cluster plus
// the singleton option in one pass over p's workload. Ties prefer the
// current cluster (no churn), then the lowest cluster ID, keeping the
// dynamics deterministic. EvaluateMoves allocates nothing at steady
// state: the per-cluster accumulator is a dense scratch slice reset
// through the non-empty cluster list.
func (e *Engine) EvaluateMoves(p int) MoveEval {
	return e.evaluateMoves(p, e.nonEmptyScratch(), e.accScratch)
}

// evaluateMoves is EvaluateMoves over a caller-owned non-empty cluster
// list and CID-indexed accumulator (zero outside the call, length >=
// cmax) — the scratch-parameterized form Evaluator uses for concurrent
// scans over a frozen engine.
func (e *Engine) evaluateMoves(p int, nonEmpty []cluster.CID, acc []float64) MoveEval {
	cur := e.cfg.ClusterOf(p)

	// acc[c] accumulates Σ_q w·clusterRes[q][c]/totals[q].
	cm := e.stride
	for _, en := range e.peerWl[p] {
		row := e.clusterRes[int(en.qid)*cm : int(en.qid)*cm+cm]
		wit := en.wInvT
		for _, c := range nonEmpty {
			if v := row[c]; v != 0 {
				acc[c] += wit * v
			}
		}
	}
	w := e.peerW[p]
	ownAcc := e.peerOwnW[p]

	ev := MoveEval{Cur: cur}
	ev.CurCost = e.membership(e.cfg.Size(cur)) + w - acc[cur]
	ev.AloneCost = e.membership(1) + w - ownAcc
	ev.Best, ev.BestCost = cur, ev.CurCost
	for _, c := range nonEmpty {
		if c == cur {
			continue
		}
		cost := e.membership(e.cfg.Size(c)+1) + w - acc[c] - ownAcc
		if cost < ev.BestCost || (cost == ev.BestCost && ev.Best != cur && c < ev.Best) {
			ev.Best, ev.BestCost = c, cost
		}
	}
	for _, c := range nonEmpty {
		acc[c] = 0
	}
	return ev
}
