package core

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

func scrambled(t *testing.T, seed uint64) *Engine {
	t.Helper()
	e := newTestEngine(t, 16, 9, seed, nil)
	rng := stats.NewRNG(seed ^ 0xabc)
	for i := 0; i < 30; i++ {
		e.Move(rng.Intn(16), cluster.CID(rng.Intn(8)))
	}
	return e
}

func TestSelfishDecisionImprovesOwnCost(t *testing.T) {
	e := scrambled(t, 41)
	s := NewSelfish()
	for p := 0; p < e.NumPeers(); p++ {
		before := e.PeerCost(p, e.Config().ClusterOf(p))
		d := s.Decide(e, p, math.NaN(), false)
		if !d.Move {
			continue
		}
		if d.NewCluster {
			t.Fatalf("peer %d: NewCluster with allowNew=false", p)
		}
		after := e.PeerCost(p, d.To)
		if after >= before {
			t.Errorf("peer %d: selfish move to %d raises cost %g -> %g", p, d.To, before, after)
		}
		if !almost(d.Gain, before-after) {
			t.Errorf("peer %d: gain %g != cost delta %g", p, d.Gain, before-after)
		}
	}
}

func TestSelfishNewClusterRequiresDrift(t *testing.T) {
	e := scrambled(t, 43)
	s := NewSelfish()
	for p := 0; p < e.NumPeers(); p++ {
		// With baseline equal to the current cost there is no drift, so
		// no new-cluster decision may be emitted even with allowNew.
		cur := e.PeerCost(p, e.Config().ClusterOf(p))
		d := s.Decide(e, p, cur, true)
		if d.NewCluster {
			t.Errorf("peer %d: founded new cluster without cost drift", p)
		}
	}
}

func TestSelfishNewClusterOnDrift(t *testing.T) {
	// Build a peer whose cost is high, with no improving existing
	// cluster: everything it wants vanished. With a much lower
	// baseline, it must ask for an empty cluster when being alone is
	// cheaper than staying.
	e := scrambled(t, 47)
	s := NewSelfish()
	found := false
	for p := 0; p < e.NumPeers(); p++ {
		ev := e.EvaluateMoves(p)
		if ev.Best == ev.Cur && ev.AloneCost < ev.CurCost && e.Config().Size(ev.Cur) > 1 {
			d := s.Decide(e, p, ev.CurCost-1 /* large drift */, true)
			if !d.NewCluster {
				t.Errorf("peer %d: expected new-cluster decision", p)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no peer in this sample satisfies the new-cluster precondition")
	}
}

func TestAltruisticMovesTowardMaxContribution(t *testing.T) {
	e := scrambled(t, 53)
	a := NewAltruistic()
	for p := 0; p < e.NumPeers(); p++ {
		d := a.Decide(e, p, math.NaN(), true)
		if !d.Move {
			continue
		}
		// The target must hold the maximum contribution among clusters.
		target := e.Contribution(p, d.To)
		for _, c := range e.Config().NonEmpty() {
			if e.Contribution(p, c) > target+1e-12 {
				t.Errorf("peer %d: moved to %d (contribution %g) but cluster %d offers %g",
					p, d.To, target, c, e.Contribution(p, c))
			}
		}
		// And the gain accounts for the membership growth it causes.
		want := target - e.Contribution(p, d.From) - e.DeltaMembership(d.To)
		if !almost(d.Gain, want) {
			t.Errorf("peer %d: clgain=%g want %g", p, d.Gain, want)
		}
	}
}

func TestHybridDegeneratesToSelfishTargets(t *testing.T) {
	e := scrambled(t, 59)
	h := NewHybrid(1)
	s := NewSelfish()
	for p := 0; p < e.NumPeers(); p++ {
		dh := h.Decide(e, p, math.NaN(), false)
		ds := s.Decide(e, p, math.NaN(), false)
		if dh.Move != ds.Move {
			t.Errorf("peer %d: hybrid(1) move=%v selfish move=%v", p, dh.Move, ds.Move)
			continue
		}
		if dh.Move && dh.To != ds.To {
			// Both must be cost-minimizing; allow distinct but equal-cost targets.
			if !almost(e.PeerCost(p, dh.To), e.PeerCost(p, ds.To)) {
				t.Errorf("peer %d: hybrid(1) target %d (cost %g) != selfish %d (cost %g)",
					p, dh.To, e.PeerCost(p, dh.To), ds.To, e.PeerCost(p, ds.To))
			}
		}
	}
}

func TestHybridLambdaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHybrid(1.5) did not panic")
		}
	}()
	NewHybrid(1.5)
}

func TestBestResponseDynamicsConvergesOnClusterableData(t *testing.T) {
	// A clean two-group instance: peers 0-7 hold and query attribute a,
	// peers 8-15 attribute b. Best-response dynamics must converge to a
	// partition separating the groups.
	e := groupedEngine(t)
	res := e.BestResponseDynamics(stats.NewRNG(5), 1e-9, 100)
	if !res.Converged {
		t.Fatalf("dynamics did not converge: %+v", res)
	}
	ok, w := e.IsNash(1e-9)
	if !ok {
		t.Fatalf("converged state is not Nash: %+v", w)
	}
	// Groups must not share clusters.
	for p := 0; p < 8; p++ {
		for q := 8; q < 16; q++ {
			if e.Config().ClusterOf(p) == e.Config().ClusterOf(q) {
				t.Fatalf("peers %d and %d of different groups share cluster %d",
					p, q, e.Config().ClusterOf(p))
			}
		}
	}
}

func TestNashWitnessIsActionable(t *testing.T) {
	e := groupedEngine(t)
	// Singletons over clusterable data cannot be Nash.
	ok, w := e.IsNash(1e-9)
	if ok {
		t.Fatal("singleton configuration reported as Nash on clusterable data")
	}
	before := e.PeerCost(w.Peer, w.From)
	to := w.To
	if w.NewCluster {
		slot, okE := e.Config().EmptyCluster()
		if !okE {
			t.Fatal("witness proposes new cluster but no slot free")
		}
		to = slot
	}
	e.Move(w.Peer, to)
	after := e.PeerCost(w.Peer, to)
	if !almost(before-after, w.Improvement) {
		t.Errorf("witness improvement %g, realized %g", w.Improvement, before-after)
	}
}

// groupedEngine builds a clean two-group instance starting from
// singletons: peers 0-7 hold and query attribute a, peers 8-15
// attribute b. Its unique stable partitions separate the groups.
func groupedEngine(t *testing.T) *Engine {
	t.Helper()
	vocab := attr.NewVocab()
	a := vocab.Intern("group-a")
	b := vocab.Intern("group-b")
	peers := make([]*peer.Peer, 16)
	wl := workload.New(16)
	for i := range peers {
		p := peer.New(i)
		id := a
		if i >= 8 {
			id = b
		}
		p.SetItems([]attr.Set{attr.NewSet(id), attr.NewSet(id)})
		peers[i] = p
		wl.Add(i, attr.NewSet(id), 3)
	}
	return New(peers, wl, cluster.NewSingletons(16), cluster.LinearTheta(), 1)
}
