package core

import (
	"repro/internal/cluster"
	"repro/internal/stats"
)

// BestResponse returns peer p's best unilateral deviation: the target
// cluster (an existing one or a fresh empty slot) and the cost
// improvement it yields. Improvement <= 0 means p is already playing a
// best response.
func (e *Engine) BestResponse(p int) (to cluster.CID, improvement float64, newCluster bool) {
	ev := e.EvaluateMoves(p)
	to, cost := ev.Best, ev.BestCost
	// Deviating to an empty cluster is a legal strategy change (the
	// §2.3 counterexample depends on it), provided a slot is free.
	if _, ok := e.cfg.EmptyCluster(); ok && e.cfg.Size(ev.Cur) > 1 && ev.AloneCost < cost {
		to, cost, newCluster = cluster.None, ev.AloneCost, true
	}
	return to, ev.CurCost - cost, newCluster
}

// NashWitness describes a profitable deviation found by IsNash.
type NashWitness struct {
	Peer        int
	From, To    cluster.CID
	Improvement float64
	NewCluster  bool
}

// IsNash reports whether the current configuration is a pure Nash
// equilibrium: no peer can lower its individual cost by more than tol
// with a unilateral cluster change (including founding an empty
// cluster). On failure it returns a witness deviation.
func (e *Engine) IsNash(tol float64) (bool, NashWitness) {
	for p := 0; p < e.n; p++ {
		if e.peers[p] == nil {
			continue
		}
		to, imp, isNew := e.BestResponse(p)
		if imp > tol {
			return false, NashWitness{
				Peer: p, From: e.cfg.ClusterOf(p), To: to,
				Improvement: imp, NewCluster: isNew,
			}
		}
	}
	return true, NashWitness{Peer: -1, From: cluster.None, To: cluster.None}
}

// DynamicsResult reports the outcome of asynchronous best-response
// dynamics (the "asynchronous players" variation the paper lists as
// future work in §6).
type DynamicsResult struct {
	// Converged is true when a full pass over all peers produced no
	// improving move.
	Converged bool
	// Passes counts full passes over the peer set.
	Passes int
	// Moves counts executed relocations.
	Moves int
	// CycleDetected is true when the dynamics revisited an earlier
	// partition, proving non-convergence of this trajectory.
	CycleDetected bool
	// FinalSCost is the normalized social cost at termination.
	FinalSCost float64
}

// BestResponseDynamics plays the game asynchronously: peers act one at
// a time in random order, each applying its exact best response
// (moves with improvement <= tol are skipped). It stops when a pass
// makes no move, when a partition repeats (cycle), or after maxPasses.
func (e *Engine) BestResponseDynamics(rng *stats.RNG, tol float64, maxPasses int) DynamicsResult {
	var res DynamicsResult
	seen := map[uint64]bool{e.cfg.CanonicalHash(): true}
	for pass := 0; pass < maxPasses; pass++ {
		res.Passes++
		moved := false
		for _, p := range rng.Perm(e.n) {
			if e.peers[p] == nil {
				continue
			}
			to, imp, isNew := e.BestResponse(p)
			if imp <= tol {
				continue
			}
			if isNew {
				slot, ok := e.cfg.EmptyCluster()
				if !ok {
					continue
				}
				to = slot
			}
			e.Move(p, to)
			res.Moves++
			moved = true
		}
		if !moved {
			res.Converged = true
			break
		}
		h := e.cfg.CanonicalHash()
		if seen[h] {
			res.CycleDetected = true
			break
		}
		seen[h] = true
	}
	res.FinalSCost = e.SCostNormalized()
	return res
}
