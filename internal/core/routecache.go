package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/attr"
)

// This file implements the hot-query result cache of the read path: a
// bounded, sharded cache of fully computed Route answers, coherent
// with the routing view by construction. Every entry records the
// exact *RoutingView it was computed against, and a lookup only hits
// when the entry's view IS the view being queried — pointer identity,
// the strictest possible epoch. Publishing a new view therefore
// invalidates the whole cache wholesale with zero coordination: no
// TTLs, no staleness window, no flush — a cached answer is
// definitionally identical to recomputation against the same view,
// and a new view simply never matches old entries. (Entries for
// superseded views are overwritten lazily as misses repopulate their
// slots; the cache is bounded, so at most Capacity stale entries
// linger, each only pinning state its successor views largely share.)
//
// Reads are lock-free: entries are immutable and published through
// atomic pointers, and a hit copies the answer into the caller's
// RouteScratch, so the steady-state hit path performs no allocation
// and no synchronization beyond a few atomic loads (plus the counter
// increments). Inserts serialize on a per-shard mutex and place the
// entry in one of two hash-derived candidate slots — a 2-candidate
// set-associative scheme with an alternating eviction hand, cheap and
// scan-resistant enough for the Zipf traffic the cache exists for:
// the hot head of the key distribution re-arms its slots constantly,
// while one-off cold queries at worst displace each other.

const (
	// routeCacheDefaultEntries is the capacity NewRouteCache(0) gives.
	routeCacheDefaultEntries = 4096
	// routeCacheMinEntries floors tiny requested capacities so the
	// 2-candidate scheme always has room to breathe.
	routeCacheMinEntries = 64
	// routeCacheShards is the insert-mutex shard count (power of two).
	routeCacheShards = 16
	// maxRouteCacheKeyBytes bounds the canonical key length the cache
	// will index; rarer-than-rare giant queries bypass it (counted).
	maxRouteCacheKeyBytes = 256
)

// routeCacheEntry is one immutable cached answer. The key is the
// query's canonical attr.Set key; view pins the snapshot the answer
// was computed against.
type routeCacheEntry struct {
	view  *RoutingView
	key   string
	total int
	hits  []RouteHit
}

// RouteCacheStats is a point-in-time snapshot of a cache's counters.
type RouteCacheStats struct {
	// Capacity is the entry-slot count (fixed at construction).
	Capacity int
	// Hits counts lookups answered from the cache.
	Hits int64
	// Misses counts lookups that fell through to Route (each miss
	// inserts, so Misses also counts insertions).
	Misses int64
	// Evictions counts insertions that displaced a live entry of the
	// same view (stale-view and empty slots are reclaimed silently).
	Evictions int64
	// Bypasses counts queries the cache declined to index (canonical
	// key over maxRouteCacheKeyBytes).
	Bypasses int64
}

// RouteCache is a bounded, sharded, view-coherent cache of Route
// answers. Create one per serving process with NewRouteCache and pass
// it to RoutingView.RouteCached; all methods are safe for concurrent
// use. The zero value is not usable; a nil *RouteCache disables
// caching wherever one is accepted.
type RouteCache struct {
	mask  uint64
	slots []atomic.Pointer[routeCacheEntry]

	// Insert path: per-shard mutex plus the shard's eviction hand
	// (guarded by its mutex), alternating between the two candidate
	// slots when both hold live entries.
	mus  [routeCacheShards]sync.Mutex
	hand [routeCacheShards]uint64

	nHits      atomic.Int64
	nMisses    atomic.Int64
	nEvictions atomic.Int64
	nBypasses  atomic.Int64
}

// NewRouteCache builds a cache with at least the requested number of
// entry slots (rounded up to a power of two; <= 0 selects the default
// capacity of 4096).
func NewRouteCache(entries int) *RouteCache {
	if entries <= 0 {
		entries = routeCacheDefaultEntries
	}
	if entries < routeCacheMinEntries {
		entries = routeCacheMinEntries
	}
	n := 1
	for n < entries {
		n <<= 1
	}
	return &RouteCache{
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[routeCacheEntry], n),
	}
}

// Stats returns a snapshot of the cache's counters.
func (c *RouteCache) Stats() RouteCacheStats {
	return RouteCacheStats{
		Capacity:  len(c.slots),
		Hits:      c.nHits.Load(),
		Misses:    c.nMisses.Load(),
		Evictions: c.nEvictions.Load(),
		Bypasses:  c.nBypasses.Load(),
	}
}

// routeCacheHash is FNV-1a over the canonical key, finalized with a
// murmur-style mixer so the low and high halves (the two candidate
// slot indexes) are independently well distributed even for the short
// keys single-attribute queries produce.
func routeCacheHash(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// keyEqual compares an entry's stored key with a transient key buffer
// without converting the buffer to a string (no allocation).
func keyEqual(s string, b []byte) bool {
	if len(s) != len(b) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup probes the two candidate slots for (v, key), copying a hit's
// answer into sc. Lock-free and allocation-free at steady state.
func (c *RouteCache) lookup(v *RoutingView, h uint64, key []byte, sc *RouteScratch) (total int, ok bool) {
	for _, i := range [2]uint64{h & c.mask, (h >> 32) & c.mask} {
		if e := c.slots[i].Load(); e != nil && e.view == v && keyEqual(e.key, key) {
			sc.hits = append(sc.hits[:0], e.hits...)
			return e.total, true
		}
	}
	return 0, false
}

// insert places a freshly computed answer into one of the two
// candidate slots, preferring an empty or superseded-view slot and
// evicting (alternating hand) only when both hold live entries. The
// entry is immutable from birth: the key and hit slice are copied, so
// callers keep ownership of their buffers.
func (c *RouteCache) insert(v *RoutingView, h uint64, key []byte, total int, hits []RouteHit) {
	e := &routeCacheEntry{
		view:  v,
		key:   string(key),
		total: total,
		hits:  append([]RouteHit(nil), hits...),
	}
	i1, i2 := h&c.mask, (h>>32)&c.mask
	shard := h & (routeCacheShards - 1)
	c.mus[shard].Lock()
	defer c.mus[shard].Unlock()
	e1, e2 := c.slots[i1].Load(), c.slots[i2].Load()
	victim := i1
	switch {
	case e1 == nil || e1.view != v || e1.key == e.key:
		victim = i1
	case e2 == nil || e2.view != v || e2.key == e.key:
		victim = i2
	default:
		// Both candidates hold live answers for this very view:
		// somebody has to go. Alternate so one hot collider cannot
		// permanently pin both slots.
		c.hand[shard]++
		if c.hand[shard]&1 == 1 {
			victim = i2
		}
		c.nEvictions.Add(1)
	}
	c.slots[victim].Store(e)
}

// RouteCached answers q like Route, consulting (and populating) the
// cache. A nil cache degrades to plain Route. Answers are
// byte-identical to Route against the same view by construction:
// entries are keyed by (exact view, canonical query key), so a hit
// replays an answer computed against this very snapshot — there is no
// staleness to reason about. On a hit the answer is copied into sc
// (the same ownership contract as Route: valid until sc's next use)
// and the call is allocation-free; a miss computes via Route and
// inserts. Queries whose canonical key exceeds the cache's key bound
// bypass it.
func (v *RoutingView) RouteCached(q attr.Set, c *RouteCache, sc *RouteScratch) (total int, hits []RouteHit) {
	if c == nil {
		return v.Route(q, sc)
	}
	sc.key = q.AppendKey(sc.key[:0])
	if len(sc.key) > maxRouteCacheKeyBytes {
		c.nBypasses.Add(1)
		return v.Route(q, sc)
	}
	h := routeCacheHash(sc.key)
	if total, ok := c.lookup(v, h, sc.key, sc); ok {
		c.nHits.Add(1)
		return total, sc.hits
	}
	c.nMisses.Add(1)
	total, hits = v.Route(q, sc)
	c.insert(v, h, sc.key, total, hits)
	return total, hits
}
