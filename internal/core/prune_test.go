package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
)

// pruneChurn drives one random engine mutation, covering every
// version-bump site the pruning machinery depends on: Move (cluster +
// row bumps), AddPeer/RemovePeer (slot generations, fresh-row stamps,
// answerability flips), Compact (query remap epoch bump), SetAlpha and
// Rebuild (wholesale epoch bumps).
func pruneChurn(t *testing.T, eng *Engine, rng *rand.Rand, novel *attr.ID) {
	t.Helper()
	live := make([]int, 0, eng.NumSlots())
	for p := 0; p < eng.NumSlots(); p++ {
		if eng.IsLive(p) {
			live = append(live, p)
		}
	}
	switch rng.IntN(8) {
	case 0, 1, 2: // moves dominate real rounds
		p := live[rng.IntN(len(live))]
		eng.Move(p, cluster.CID(rng.IntN(eng.Config().Cmax())))
	case 3: // join, sometimes with a novel query (fresh QID row)
		pr := peer.New(-1)
		pr.SetItems([]attr.Set{attr.NewSet(attr.ID(rng.IntN(5)))})
		q := attr.NewSet(attr.ID(rng.IntN(5)))
		if rng.IntN(2) == 0 {
			*novel++
			q = attr.NewSet(*novel)
		}
		eng.AddPeer(pr, []attr.Set{q}, []int{1 + rng.IntN(3)}, cluster.None)
	case 4: // leave
		if len(live) > 2 {
			eng.RemovePeer(live[rng.IntN(len(live))])
		}
	case 5:
		eng.Compact(0)
	case 6:
		eng.SetAlpha(0.5 + rng.Float64())
	case 7:
		eng.Rebuild()
	}
}

// TestPrunedEvaluationsMatchExact is the scan-level oracle: under
// randomized mutation interleavings, a pruned evaluator must produce
// bit-identical MoveEval and ContributionEval results to an exhaustive
// one — whether the probe answers from the shortlist, falls back, or
// the cache is cold. Each state is evaluated twice so the second pass
// exercises the warm probe/replay paths.
func TestPrunedEvaluationsMatchExact(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, 7))
		eng := evalSystem(t, 4, 5)
		pruned := eng.NewEvaluator()
		pruned.SetPruned(true)
		exact := eng.NewEvaluator()
		novel := attr.ID(9000 + 1000*seed)
		check := func(step int) {
			for pass := 0; pass < 2; pass++ {
				for p := 0; p < eng.NumSlots(); p++ {
					if !eng.IsLive(p) {
						continue
					}
					if got, want := pruned.EvaluateMoves(p), exact.EvaluateMoves(p); got != want {
						t.Fatalf("seed %d step %d pass %d peer %d: pruned EvaluateMoves %+v, exact %+v",
							seed, step, pass, p, got, want)
					}
					if got, want := pruned.EvaluateContribution(p), exact.EvaluateContribution(p); got != want {
						t.Fatalf("seed %d step %d pass %d peer %d: pruned EvaluateContribution %+v, exact %+v",
							seed, step, pass, p, got, want)
					}
				}
			}
		}
		check(-1)
		for step := 0; step < 60; step++ {
			pruneChurn(t, eng, rng, &novel)
			check(step)
		}
		ss := pruned.TakeScanStats()
		if ss.Evaluated != ss.Replayed+ss.Shortlist+ss.Fallback+ss.Full {
			t.Fatalf("seed %d: scan stats don't add up: %+v", seed, ss)
		}
		if ss.Shortlist == 0 {
			t.Fatalf("seed %d: shortlist never hit — pruning not exercised: %+v", seed, ss)
		}
	}
}

// TestPrunedDecideEvalMatchesExact is the decision-level oracle: every
// strategy's DecideEval through a pruned evaluator — including the
// decision-replay cache — must equal the exhaustive decision, across
// mutations, baseline changes and allowNew flips.
func TestPrunedDecideEvalMatchesExact(t *testing.T) {
	strategies := []EvalStrategy{NewSelfish(), NewAltruistic(), NewHybrid(0.5)}
	for _, s := range strategies {
		for seed := uint64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewPCG(seed, 11))
			eng := evalSystem(t, 4, 6)
			pruned := eng.NewEvaluator()
			pruned.SetPruned(true)
			exact := eng.NewEvaluator()
			novel := attr.ID(8000 + 1000*seed)

			baseline := make(map[int]float64)
			snapshot := func() {
				clear(baseline)
				cfg := eng.Config()
				for p := 0; p < eng.NumSlots(); p++ {
					if eng.IsLive(p) {
						baseline[p] = eng.PeerCost(p, cfg.ClusterOf(p))
					}
				}
			}
			snapshot()
			for step := 0; step < 50; step++ {
				pruneChurn(t, eng, rng, &novel)
				if step%17 == 0 {
					snapshot() // new period: baselines move, caches must re-key
				}
				allowNew := step%2 == 0
				for pass := 0; pass < 2; pass++ {
					for p := 0; p < eng.NumSlots(); p++ {
						if !eng.IsLive(p) {
							continue
						}
						bl, ok := baseline[p]
						if !ok {
							bl = math.NaN()
						}
						got := s.DecideEval(pruned, p, bl, allowNew)
						want := s.DecideEval(exact, p, bl, allowNew)
						if got != want {
							t.Fatalf("%s seed %d step %d pass %d peer %d: pruned %+v, exact %+v",
								s.Name(), seed, step, pass, p, got, want)
						}
					}
				}
			}
			ss := pruned.TakeScanStats()
			if ss.Replayed == 0 {
				t.Fatalf("%s seed %d: decision replay never hit: %+v", s.Name(), seed, ss)
			}
		}
	}
}

// TestPrunedDecideAllocFree pins the pruned hot path allocation-free in
// both regimes: the quiescent replay loop and the re-scan after a
// mutation (shortlist recording included).
func TestPrunedDecideAllocFree(t *testing.T) {
	eng := evalSystem(t, 4, 6)
	ev := eng.NewEvaluator()
	ev.SetPruned(true)
	s := NewSelfish()
	decideAll := func() {
		for p := 0; p < eng.NumSlots(); p++ {
			if eng.IsLive(p) {
				s.DecideEval(ev, p, math.NaN(), true)
			}
		}
	}
	decideAll() // warm scratch, shortlists and decision caches
	if avg := testing.AllocsPerRun(100, decideAll); avg != 0 {
		t.Fatalf("quiescent pruned decide allocates %v allocs/op, want 0", avg)
	}
	cfg := eng.Config()
	home := cfg.ClusterOf(0)
	if avg := testing.AllocsPerRun(100, func() {
		eng.Move(0, cluster.CID((int(home)+1)%cfg.Cmax()))
		eng.Move(0, home)
		decideAll()
	}); avg != 0 {
		t.Fatalf("post-mutation pruned decide allocates %v allocs/op, want 0", avg)
	}
}
