package core

import (
	"fmt"

	"repro/internal/workload"
)

// This file implements in-place query compaction: the engine-side
// counterpart of workload.Compact. A long-lived engine accumulates one
// row per distinct query ever interned — under open-ended churn with
// novel queries the flat q*stride+c aggregates, the scratch slices and
// the inverted query/demander indexes grow with query history, not
// with the live population. Compact retires the dead queries and
// rewrites every QID-indexed structure under the monotone old->new
// remap in one forward pass, without a full Rebuild: the incremental
// cost state (membSumRaw, recallSum, wRecallSum, sumW, ansDemand) is
// invariant under compaction, because a dead query carries no demand
// and therefore contributes zero to every sum.
//
// The version/Stale machinery stays authoritative. Engine.Compact
// refuses to run on a stale engine (mustBeFresh), and the lower-level
// CompactQueries accepts a workload compacted exactly once since the
// engine last synchronized — any other external mutation still
// surfaces as staleness instead of being laundered by the remap.
//
// Like the other steady-state mutators, the compact path allocates
// nothing once capacities are warm: the remap is a workload-owned
// scratch buffer, rows slide down within their backing arrays, index
// lists are rewritten in place (emptied ones keep their capacity),
// and the demander rows of removed queries are parked for reuse by
// growDemanders.

// Compact retires every workload query that is dead under the given
// last-use policy (global count 0 and idle for at least minIdle
// demand events; minIdle <= 0 retires all zero-count queries) and
// remaps all QID-indexed engine state in one pass. It returns the
// number of queries removed (0 when nothing was dead; the engine and
// workload are then untouched). Costs are preserved exactly: Compact
// never changes SCost, WCost or any PeerCost.
func (e *Engine) Compact(minIdle int) int {
	e.mustBeFresh("Compact")
	// Materialize rows for any queries interned externally since the
	// last sync, so the remap covers every row the engine owns.
	e.growRows()
	remap, removed := e.wl.Compact(minIdle)
	if removed == 0 {
		return 0
	}
	e.applyQueryRemap(remap)
	e.wlVersion = e.wl.Version()
	e.wlCompactions = e.wl.Compactions()
	return removed
}

// DeadQueries reports how many of the workload's distinct queries a
// Compact(minIdle) would remove right now.
func (e *Engine) DeadQueries(minIdle int) int { return e.wl.DeadQueries(minIdle) }

// CompactQueries rewrites all QID-indexed engine state under remap,
// the old->new mapping returned by a workload.Compact the caller ran
// directly. The workload must have been compacted exactly once since
// the engine last synchronized with it, with no other mutation in
// between; CompactQueries panics otherwise — the compaction
// generation and version counters would mismatch, and remapping over
// an unrelated mutation would silently launder it. Most callers want
// Engine.Compact, which performs the workload compaction itself under
// the same guard.
func (e *Engine) CompactQueries(remap workload.CompactRemap) {
	if e.wl.Compactions() != e.wlCompactions+1 || e.wl.Version() != e.wlVersion+1 {
		panic(fmt.Sprintf("core: CompactQueries needs exactly one workload compaction since the last sync (compactions %d->%d, version %d->%d); Rebuild instead",
			e.wlCompactions, e.wl.Compactions(), e.wlVersion, e.wl.Version()))
	}
	if len(remap) < e.nq {
		panic(fmt.Sprintf("core: CompactQueries remap spans %d queries, engine has %d rows", len(remap), e.nq))
	}
	e.applyQueryRemap(remap)
	e.wlVersion = e.wl.Version()
	e.wlCompactions = e.wl.Compactions()
}

// applyQueryRemap rewrites every QID-indexed structure under the
// monotone remap. remap covers the engine's oldNq rows (possibly
// more, when queries were interned externally after the last sync —
// those have no rows and no demand, so their survivors get correct
// zero rows from the padding).
func (e *Engine) applyQueryRemap(remap workload.CompactRemap) {
	oldNq := e.nq
	newNq := e.wl.NumQueries()
	st := e.stride

	// Aggregate rows slide down in one forward pass: the remap is
	// monotone, so nid <= q and no row is overwritten before it moved.
	liveRows := 0
	for q := 0; q < oldNq; q++ {
		nid := int(remap[q])
		if nid < 0 {
			continue
		}
		if nid != q {
			e.totals[nid] = e.totals[q]
			e.invTot[nid] = e.invTot[q]
			e.demandTot[nid] = e.demandTot[q]
			copy(e.clusterRes[nid*st:(nid+1)*st], e.clusterRes[q*st:(q+1)*st])
			copy(e.clusterDemand[nid*st:(nid+1)*st], e.clusterDemand[q*st:(q+1)*st])
			copy(e.demandW[nid*st:(nid+1)*st], e.demandW[q*st:(q+1)*st])
		}
		liveRows++
	}
	// Shrink to the survivors, then pad back out to newNq (a no-op
	// unless external interns outran the engine); padFloats zeroes
	// everything past the live prefix either way.
	e.totals = padFloats(e.totals[:liveRows], newNq)
	e.invTot = padFloats(e.invTot[:liveRows], newNq)
	e.demandTot = padFloats(e.demandTot[:liveRows], newNq)
	e.ownScratch = padFloats(e.ownScratch[:liveRows], newNq)
	e.clusterRes = padFloats(e.clusterRes[:liveRows*st], newNq*st)
	e.clusterDemand = padFloats(e.clusterDemand[:liveRows*st], newNq*st)
	e.demandW = padFloats(e.demandW[:liveRows*st], newNq*st)
	e.qMark = padMarks(e.qMark[:0], newNq)

	// Per-peer lists: results of dead queries are dropped (the query
	// is forgotten; a future re-intern rediscovers its supporters),
	// demand entries are all live by construction.
	for pid := range e.peerRes {
		lst := e.peerRes[pid]
		k := 0
		for i := range lst {
			if nid := remap[lst[i].qid]; nid >= 0 {
				lst[k] = resEntry{qid: nid, res: lst[i].res}
				k++
			}
		}
		e.peerRes[pid] = lst[:k]
	}
	for pid := range e.peerWl {
		lst := e.peerWl[pid]
		for i := range lst {
			nid := remap[lst[i].qid]
			if nid < 0 {
				panic(fmt.Sprintf("core: peer %d demands compacted-away query %d", pid, lst[i].qid))
			}
			lst[i].qid = nid
		}
	}

	// Membership indexes, when built. Emptied queriesByAttr lists are
	// kept (not deleted) so a re-intern of the same first attribute
	// appends into retained capacity.
	if e.peersByAttr != nil {
		for a, lst := range e.queriesByAttr {
			k := 0
			for _, qid := range lst {
				if nid := remap[qid]; nid >= 0 {
					lst[k] = nid
					k++
				}
			}
			e.queriesByAttr[a] = lst[:k]
		}
		// Demander rows: live rows slide down to their new ids; the
		// emptied rows of dead queries park their capacity past the
		// live prefix, where growDemanders reuses it.
		e.demSpare = e.demSpare[:0]
		for q := 0; q < oldNq; q++ {
			if remap[q] < 0 {
				if len(e.demanders[q]) != 0 {
					panic(fmt.Sprintf("core: dead query %d still has demanders", q))
				}
				e.demSpare = append(e.demSpare, e.demanders[q][:0])
			}
		}
		k := 0
		for q := 0; q < oldNq; q++ {
			if remap[q] >= 0 {
				e.demanders[k] = e.demanders[q]
				k++
			}
		}
		for _, spare := range e.demSpare {
			e.demanders[k] = spare
			k++
		}
		e.demanders = e.demanders[:liveRows]
		e.growDemanders(newNq)

		liveIndexed := 0
		for q := 0; q < e.indexedQueries; q++ {
			if remap[q] >= 0 {
				liveIndexed++
			}
		}
		e.indexedQueries = liveIndexed
		e.nq = newNq
		e.indexNewQueries()
	}
	e.nq = newNq

	// Pruning caches key validity by QID-indexed row stamps; the remap
	// renumbered every row, so invalidate everything at once. The
	// cleared stamps are sound: any cache recorded after this bump-all
	// carries a clock >= every future row stamp until the row is
	// actually mutated again.
	e.rowVersion = padMarks(e.rowVersion[:0], newNq)
	e.bumpAll()
}
