package core

import (
	"repro/internal/cluster"
)

// Evaluator is a cost-evaluation context with private scratch buffers
// over a shared Engine. The engine's evaluation methods are read-only
// but not reentrant — they reuse engine-owned scratch — so concurrent
// phase-1 Decide scans (protocol.Options.Workers) give each worker its
// own Evaluator instead. Any number of evaluators may evaluate
// concurrently as long as nothing mutates the engine (no Move,
// AddPeer, RemovePeer, Rebuild, Compact) for the duration; evaluations
// are pure reads of the engine's aggregates, so an Evaluator produces
// bit-identical results to the engine's own methods.
//
// An Evaluator sizes its scratch lazily against the engine's current
// geometry, so it stays valid across engine mutations between (not
// during) concurrent scans, including workload compactions and
// membership changes that re-stride the aggregates.
type Evaluator struct {
	e *Engine
	// own is QID-indexed, acc CID-indexed; both zero outside calls.
	own []float64
	acc []float64
	cid []cluster.CID
	// pruned routes EvaluateMoves/EvaluateContribution and the
	// strategies' decision caching through the shortlist machinery of
	// prune.go (byte-identical to the exhaustive path). Off by
	// default; the protocol Runner enables it per worker evaluator.
	pruned bool
	// stats counts evaluation outcomes; demAux carries the altruistic
	// outside bound from the last contribution scan to the decision
	// cache.
	stats  ScanStats
	demAux float64
}

// NewEvaluator returns a fresh evaluator over the engine. The zero
// cost is deferred: buffers are sized on first use.
func (e *Engine) NewEvaluator() *Evaluator { return &Evaluator{e: e} }

// Eval returns the engine-owned evaluator, creating it on first use.
// It shares the engine's single-goroutine discipline (unlike
// NewEvaluator instances it may not run concurrently with anything)
// and exists so Strategy.Decide and DecideEval share one
// implementation.
func (e *Engine) Eval() *Evaluator {
	if e.selfEval == nil {
		e.selfEval = e.NewEvaluator()
	}
	return e.selfEval
}

// Engine returns the engine the evaluator reads from.
func (ev *Evaluator) Engine() *Engine { return ev.e }

// ensure grows the scratch to the engine's current geometry. Growth
// only ever happens between concurrent scans (mutating the engine
// while evaluators run is already a data race), so each evaluator
// resizes its private buffers safely.
func (ev *Evaluator) ensure() {
	if cap(ev.own) < ev.e.nq {
		ev.own = make([]float64, ev.e.nq)
	} else {
		ev.own = ev.own[:ev.e.nq]
	}
	if cap(ev.acc) < ev.e.stride {
		ev.acc = make([]float64, ev.e.stride)
	} else {
		ev.acc = ev.acc[:ev.e.stride]
	}
}

// NonEmpty refreshes and returns the evaluator's private non-empty
// cluster list (ascending CID). The slice is reused across calls.
func (ev *Evaluator) NonEmpty() []cluster.CID {
	ev.cid = ev.e.cfg.AppendNonEmpty(ev.cid[:0])
	return ev.cid
}

// SetPruned enables (or disables) shortlist pruning and decision
// caching for this evaluator. Pruned evaluations are byte-identical
// to exhaustive ones; callers running pruned evaluators concurrently
// must call Engine.PrepareDecide after the last mutation and before
// the scan (the protocol Runner does).
func (ev *Evaluator) SetPruned(on bool) { ev.pruned = on }

// Pruned reports whether shortlist pruning is enabled.
func (ev *Evaluator) Pruned() bool { return ev.pruned }

// TakeScanStats returns the evaluation-outcome counters accumulated
// since the last call and resets them.
func (ev *Evaluator) TakeScanStats() ScanStats {
	s := ev.stats
	ev.stats = ScanStats{}
	return s
}

// EvaluateMoves mirrors Engine.EvaluateMoves on private scratch. With
// pruning enabled it probes the peer's recorded top-k shortlist first
// and runs the full scan only when the cache is invalid or the
// admissible outside bound cannot exclude a better cluster.
func (ev *Evaluator) EvaluateMoves(p int) MoveEval {
	ev.ensure()
	ev.stats.Evaluated++
	if ev.pruned {
		if me, st := ev.e.probeMoves(p, &ev.e.prune[p]); st == probeHit {
			ev.stats.Shortlist++
			return me
		} else if st == probeFallback {
			ev.stats.Fallback++
		} else {
			ev.stats.Full++
		}
		return ev.e.scanMovesRecord(p, ev.NonEmpty(), ev.acc, &ev.e.prune[p])
	}
	ev.stats.Full++
	return ev.e.evaluateMoves(p, ev.NonEmpty(), ev.acc)
}

// EvaluateContribution mirrors Engine.EvaluateContribution on private
// scratch, with the same shortlist pruning as EvaluateMoves.
func (ev *Evaluator) EvaluateContribution(p int) ContributionEval {
	ev.ensure()
	ev.stats.Evaluated++
	if ev.pruned {
		if ce, st := ev.e.probeContribution(p, &ev.e.prune[p], &ev.demAux); st == probeHit {
			ev.stats.Shortlist++
			return ce
		} else if st == probeFallback {
			ev.stats.Fallback++
		} else {
			ev.stats.Full++
		}
		return ev.e.scanContributionRecord(p, ev.NonEmpty(), ev.acc, &ev.e.prune[p], &ev.demAux)
	}
	ev.stats.Full++
	return ev.e.evaluateContribution(p, ev.NonEmpty(), ev.acc)
}

// PeerCost mirrors Engine.PeerCost on private scratch.
func (ev *Evaluator) PeerCost(p int, c cluster.CID) float64 {
	ev.ensure()
	return ev.e.peerCost(p, c, ev.own)
}

// Contribution mirrors Engine.Contribution (scratch-free, delegated).
func (ev *Evaluator) Contribution(p int, c cluster.CID) float64 { return ev.e.Contribution(p, c) }

// DeltaMembership mirrors Engine.DeltaMembership (scratch-free).
func (ev *Evaluator) DeltaMembership(c cluster.CID) float64 { return ev.e.DeltaMembership(c) }

// CostAlone mirrors Engine.CostAlone (scratch-free).
func (ev *Evaluator) CostAlone(p int) float64 { return ev.e.CostAlone(p) }
