package core

import (
	"math"

	"repro/internal/cluster"
)

// This file makes the phase-1 Decide scan sublinear in practice while
// staying byte-identical to the exhaustive path. Three cooperating
// mechanisms, all engine-side so every Evaluator shares them:
//
//  1. Dirty-tracking. A global monotone aggClock stamps every
//     aggregate mutation; aggVersion[c] records the last clock at
//     which cluster c's cost-relevant aggregates (size, clusterRes,
//     clusterDemand, demandW columns) changed, and rowVersion[q]
//     records the last clock at which anything in query q's row
//     changed (clusterRes, clusterDemand, demandW, totals/invTot,
//     demandTot). Move, AddPeer and RemovePeer bump exactly the
//     clusters and rows they touch — including answerability flips,
//     which ride the mover's result rows — in time proportional to
//     the mover's footprint. Mutations that rewrite state wholesale
//     (Rebuild, Compact's query remap, SetAlpha, a restride) bump
//     pruneEpoch instead, invalidating every cache at once.
//
//  2. Per-peer top-k candidate shortlists with an admissible outside
//     bound. A full scan records, per peer, the k clusters with the
//     highest recall overlap acc[c] = Σ_q w·clusterRes[q][c]/totals[q]
//     (for the selfish cost) and the k with the highest raw
//     contribution numerator (for the altruistic measure), plus the
//     maximum value over all clusters left outside the shortlist.
//     While the peer's rows are clean those accumulators cannot have
//     changed, so a later evaluation probes only the shortlist
//     exactly and skips the full scan when even the most optimistic
//     outside cluster — minimum membership cost (θ monotone, so
//     θ(minSize+1) bounds every join term from below) and the
//     recorded maximum overlap — provably loses. The skip condition
//     is strict: a tie falls back to the full scan, preserving the
//     exhaustive path's lowest-CID tie-breaks bit for bit.
//
//  3. Decision replay. Each DecideEval caches its Decision together
//     with everything it depended on (strategy identity and
//     parameters, baseline bits, live peer count, current cluster,
//     the clock). While nothing relevant changed the cached decision
//     is replayed outright — the common case for the convergence
//     rounds of a quiescent system, where aggClock equality proves
//     the whole engine untouched.
//
// All cached state is engine-owned (per peer slot), fixed-size and
// allocation-free; concurrent evaluators only read it for peers they
// were assigned, and the protocol's phase-1 fan-out assigns disjoint
// clusters, so the frozen-engine concurrent-read contract is
// preserved. Pruning is off by default (Engine.Eval and plain
// NewEvaluator instances stay exhaustive); the protocol Runner turns
// it on unless Options.ExactDecide. Callers that run pruned
// evaluators concurrently must call Engine.PrepareDecide after the
// last mutation and before the scan, exactly like the Runner does.

// pruneK is the shortlist length k. Large enough that the true best
// cluster is almost always on the list, small enough that a probe
// costs k·|Wl(p)| instead of C·|Wl(p)|.
const pruneK = 12

// decision-cache kinds: the replay validity rules differ per strategy.
const (
	decNone uint8 = iota
	decSelfish
	decAltruistic
	decHybrid
)

// decCache is one peer's cached Decision plus everything its replay
// validity depends on.
type decCache struct {
	valid    bool
	kind     uint8
	allowNew bool
	strat    Strategy
	param    float64 // DriftThreshold (selfish) or Lambda (hybrid)
	baseline uint64  // math.Float64bits of the period baseline
	epoch    uint64
	gen      uint32
	clock    uint64 // aggClock at decision time
	live     int
	cur      cluster.CID
	best     cluster.CID // evaluation's best candidate (may differ from d.To on no-move)
	bestVal  float64     // candidate best cost/contribution at decision
	aux      float64     // altruistic: outside-bound contribution at decision
	d        Decision
}

// peerPrune is the engine-owned per-peer pruning state: the two
// shortlists (selfish overlap, altruistic contribution) with their
// validity clocks, and the cached decision.
type peerPrune struct {
	// Selfish shortlist state: valid while every row of the peer's
	// workload is unchanged since accClock and the peer's recall
	// weights (peerW/peerOwnW) are bit-identical — the latter catches
	// answerability flips that removed a workload entry entirely.
	accEpoch  uint64
	accGen    uint32
	accClock  uint64
	nAcc      uint8
	accShort  [pruneK]cluster.CID
	outAcc    float64 // max acc over clusters outside accShort (>= 0)
	peerWBits uint64
	ownWBits  uint64

	// Altruistic shortlist state: valid while every row of the peer's
	// result list is unchanged since demClock.
	demEpoch uint64
	demGen   uint32
	demClock uint64
	nDem     uint8
	demShort [pruneK]cluster.CID
	outDem   float64 // max raw contribution numerator outside demShort

	dec decCache
}

// ScanStats counts phase-1 evaluation outcomes per Evaluator. Every
// DecideEval (or direct shortlist-capable scan) increments Evaluated
// plus exactly one outcome counter.
type ScanStats struct {
	// Evaluated is the number of peer evaluations.
	Evaluated int
	// Replayed counts evaluations answered by the cached decision
	// (skipped clean — no scan of any kind ran).
	Replayed int
	// Shortlist counts evaluations resolved by probing the top-k
	// candidate shortlist with the outside bound holding.
	Shortlist int
	// Fallback counts shortlist probes whose outside bound could not
	// exclude a better cluster, forcing the full scan.
	Fallback int
	// Full counts evaluations that ran the exhaustive scan directly
	// (cold or invalidated cache, or pruning disabled).
	Full int
}

// Add accumulates o into s.
func (s *ScanStats) Add(o ScanStats) {
	s.Evaluated += o.Evaluated
	s.Replayed += o.Replayed
	s.Shortlist += o.Shortlist
	s.Fallback += o.Fallback
	s.Full += o.Full
}

// initPruneState (re)sizes the version arrays and per-peer cache after
// a Rebuild and invalidates every cache via the epoch. Stale version
// values are harmless: clocks never reset, so a stale entry is always
// <= aggClock and the epoch bump forces the one full rescan that
// re-stamps it.
func (e *Engine) initPruneState() {
	e.aggVersion = growMarks(e.aggVersion, e.stride)
	e.rowVersion = growMarks(e.rowVersion, e.nq)
	if cap(e.prune) < e.n {
		e.prune = make([]peerPrune, e.n)
	} else {
		e.prune = e.prune[:e.n]
	}
	e.pruneEpoch++
}

// bumpAll invalidates every pruning cache (wholesale rewrites:
// SetAlpha, Compact's query remap).
func (e *Engine) bumpAll() { e.pruneEpoch++ }

// PrepareDecide refreshes the serial pruning state concurrent scans
// read — currently the minimum non-empty cluster size backing the
// shortlist's admissible outside bound. The protocol Runner calls it
// after the last mutation and before fanning a decide scan over
// workers; serial callers may rely on the lazy refresh inside the
// pruned paths instead.
func (e *Engine) PrepareDecide() { e.pruneMinSize() }

// pruneMinSize recomputes the minimum non-empty cluster size when the
// membership version moved. During a frozen concurrent scan the
// version cannot move, so the refresh branch never runs concurrently.
func (e *Engine) pruneMinSize() {
	v := e.cfg.MembershipVersion()
	if e.minSizeVer == v && e.minSize > 0 {
		return
	}
	min := 0
	for c := 0; c < e.cmax; c++ {
		if s := e.cfg.Size(cluster.CID(c)); s > 0 && (min == 0 || s < min) {
			min = s
		}
	}
	e.minSize = min
	e.minSizeVer = v
}

// probe outcomes.
type probeStatus uint8

const (
	probeHit probeStatus = iota
	probeFallback
	probeInvalid
)

// probeAcc recomputes acc[c] = Σ_q w·clusterRes[q][c]/totals[q] for
// one cluster, term by term in workload order — the identical
// floating-point operation sequence the exhaustive scan accumulates,
// so the probed value is bit-identical to the scanned one.
func (e *Engine) probeAcc(p int, c cluster.CID) float64 {
	cm, ci := e.stride, int(c)
	var a float64
	for _, en := range e.peerWl[p] {
		if v := e.clusterRes[int(en.qid)*cm+ci]; v != 0 {
			a += en.wInvT * v
		}
	}
	return a
}

// probeNum recomputes the raw contribution numerator for one cluster,
// mirroring evaluateContribution's accumulation order exactly.
func (e *Engine) probeNum(p int, c cluster.CID) float64 {
	cm, ci := e.stride, int(c)
	var num float64
	for _, re := range e.peerRes[p] {
		if v := e.clusterDemand[int(re.qid)*cm+ci]; v != 0 {
			num += v * re.res
		}
	}
	return num
}

// accStateValid reports whether p's selfish shortlist state still
// describes the engine: same epoch and slot generation, recall
// weights bit-identical (catches workload entries dropped by
// answerability flips), and no row of p's current workload stamped
// after the recording scan.
func (e *Engine) accStateValid(p int, ps *peerPrune) bool {
	if ps.accEpoch != e.pruneEpoch || ps.accGen != e.SlotGeneration(p) ||
		math.Float64bits(e.peerW[p]) != ps.peerWBits ||
		math.Float64bits(e.peerOwnW[p]) != ps.ownWBits {
		return false
	}
	for i := range e.peerWl[p] {
		if e.rowVersion[e.peerWl[p][i].qid] > ps.accClock {
			return false
		}
	}
	return true
}

// demStateValid is accStateValid for the altruistic shortlist: the
// contribution measure depends only on the rows of p's result list.
func (e *Engine) demStateValid(p int, ps *peerPrune) bool {
	if ps.demEpoch != e.pruneEpoch || ps.demGen != e.SlotGeneration(p) {
		return false
	}
	for i := range e.peerRes[p] {
		if e.rowVersion[e.peerRes[p][i].qid] > ps.demClock {
			return false
		}
	}
	return true
}

// probeMoves answers EvaluateMoves from the shortlist alone: the
// candidate costs are recomputed exactly (current sizes and live
// count, so relocations elsewhere do not invalidate the probe) and
// the full scan is skipped only when the admissible outside bound —
// the cheapest conceivable membership term plus the largest recorded
// outside overlap — strictly exceeds the candidate best. Ties fall
// back, preserving the exhaustive tie-breaks.
func (e *Engine) probeMoves(p int, ps *peerPrune) (MoveEval, probeStatus) {
	if !e.accStateValid(p, ps) {
		return MoveEval{}, probeInvalid
	}
	e.pruneMinSize()
	cur := e.cfg.ClusterOf(p)
	w := e.peerW[p]
	ownAcc := e.peerOwnW[p]
	me := MoveEval{Cur: cur}
	me.CurCost = e.membership(e.cfg.Size(cur)) + w - e.probeAcc(p, cur)
	me.AloneCost = e.membership(1) + w - ownAcc
	me.Best, me.BestCost = cur, me.CurCost
	for _, c := range ps.accShort[:ps.nAcc] {
		if c == cur || e.cfg.Size(c) == 0 {
			continue
		}
		cost := e.membership(e.cfg.Size(c)+1) + w - e.probeAcc(p, c) - ownAcc
		if cost < me.BestCost || (cost == me.BestCost && me.Best != cur && c < me.Best) {
			me.Best, me.BestCost = c, cost
		}
	}
	// Every non-empty cluster outside the shortlist (including ones
	// that were empty at scan time: their overlap is 0 <= outAcc) has
	// acc <= outAcc and size >= minSize, so its cost — evaluated with
	// the same expression shape, which floating-point monotonicity
	// then bounds below — is at least this bound.
	bound := e.membership(e.minSize+1) + w - ps.outAcc - ownAcc
	if !(bound > me.BestCost) {
		return MoveEval{}, probeFallback
	}
	return me, probeHit
}

// probeContribution is probeMoves for the altruistic measure. The
// comparison stays in normalized contribution space (num/den), where
// division by the common positive denominator is monotone, so
// outDem/den bounds every outside cluster's contribution from above.
func (e *Engine) probeContribution(p int, ps *peerPrune, aux *float64) (ContributionEval, probeStatus) {
	if !e.demStateValid(p, ps) {
		return ContributionEval{}, probeInvalid
	}
	cur := e.cfg.ClusterOf(p)
	var den float64
	for _, re := range e.peerRes[p] {
		den += e.demandTot[re.qid] * re.res
	}
	evc := ContributionEval{Cur: cur}
	if den == 0 {
		evc.Best = cur
		*aux = math.Inf(-1)
		return evc, probeHit
	}
	evc.CurContribution = e.probeNum(p, cur) / den
	evc.Best, evc.BestContribution = cur, evc.CurContribution
	for _, c := range ps.demShort[:ps.nDem] {
		if c == cur || e.cfg.Size(c) == 0 {
			continue
		}
		v := e.probeNum(p, c) / den
		if v > evc.BestContribution || (v == evc.BestContribution && evc.Best != cur && c < evc.Best) {
			evc.Best, evc.BestContribution = c, v
		}
	}
	out := ps.outDem / den
	if !(out < evc.BestContribution) {
		return ContributionEval{}, probeFallback
	}
	*aux = out
	return evc, probeHit
}

// shortlist is the scratch top-k accumulator a recording full scan
// fills: entries ordered by descending value, out tracking the
// maximum value that did not make the list.
type shortlist struct {
	n   int
	c   [pruneK]cluster.CID
	v   [pruneK]float64
	out float64
}

// add offers (c, v) to the shortlist; zero and negative overlaps stay
// off the list (the outside bound already covers them: out >= 0).
func (s *shortlist) add(c cluster.CID, v float64) {
	if v <= 0 {
		return
	}
	if s.n == pruneK {
		if v <= s.v[pruneK-1] {
			if v > s.out {
				s.out = v
			}
			return
		}
		if s.v[pruneK-1] > s.out {
			s.out = s.v[pruneK-1]
		}
	} else {
		s.n++
	}
	i := s.n - 1
	for i > 0 && s.v[i-1] < v {
		s.v[i] = s.v[i-1]
		s.c[i] = s.c[i-1]
		i--
	}
	s.v[i], s.c[i] = v, c
}

// scanMovesRecord is the exhaustive EvaluateMoves scan — the same
// accumulation order, comparator and expression shapes as
// Engine.evaluateMoves, kept in lockstep by the pruned-vs-exact
// property suite — extended to record p's selfish shortlist state.
func (e *Engine) scanMovesRecord(p int, nonEmpty []cluster.CID, acc []float64, ps *peerPrune) MoveEval {
	cur := e.cfg.ClusterOf(p)
	cm := e.stride
	for _, en := range e.peerWl[p] {
		row := e.clusterRes[int(en.qid)*cm : int(en.qid)*cm+cm]
		wit := en.wInvT
		for _, c := range nonEmpty {
			if v := row[c]; v != 0 {
				acc[c] += wit * v
			}
		}
	}
	w := e.peerW[p]
	ownAcc := e.peerOwnW[p]

	me := MoveEval{Cur: cur}
	me.CurCost = e.membership(e.cfg.Size(cur)) + w - acc[cur]
	me.AloneCost = e.membership(1) + w - ownAcc
	me.Best, me.BestCost = cur, me.CurCost
	for _, c := range nonEmpty {
		if c == cur {
			continue
		}
		cost := e.membership(e.cfg.Size(c)+1) + w - acc[c] - ownAcc
		if cost < me.BestCost || (cost == me.BestCost && me.Best != cur && c < me.Best) {
			me.Best, me.BestCost = c, cost
		}
	}

	var sl shortlist
	for _, c := range nonEmpty {
		sl.add(c, acc[c])
	}
	ps.accEpoch = e.pruneEpoch
	ps.accGen = e.SlotGeneration(p)
	ps.accClock = e.aggClock
	ps.nAcc = uint8(sl.n)
	ps.accShort = sl.c
	ps.outAcc = sl.out
	ps.peerWBits = math.Float64bits(w)
	ps.ownWBits = math.Float64bits(ownAcc)

	for _, c := range nonEmpty {
		acc[c] = 0
	}
	return me
}

// scanContributionRecord mirrors Engine.evaluateContribution with
// altruistic shortlist recording; aux receives the outside bound in
// contribution space for the decision cache.
func (e *Engine) scanContributionRecord(p int, nonEmpty []cluster.CID, num []float64, ps *peerPrune, aux *float64) ContributionEval {
	cur := e.cfg.ClusterOf(p)
	var den float64
	cm := e.stride
	for _, re := range e.peerRes[p] {
		den += e.demandTot[re.qid] * re.res
		row := e.clusterDemand[int(re.qid)*cm : int(re.qid)*cm+cm]
		for _, c := range nonEmpty {
			if v := row[c]; v != 0 {
				num[c] += v * re.res
			}
		}
	}
	ev := ContributionEval{Cur: cur}
	record := func() {
		var sl shortlist
		for _, c := range nonEmpty {
			sl.add(c, num[c])
		}
		ps.demEpoch = e.pruneEpoch
		ps.demGen = e.SlotGeneration(p)
		ps.demClock = e.aggClock
		ps.nDem = uint8(sl.n)
		ps.demShort = sl.c
		ps.outDem = sl.out
	}
	if den == 0 {
		ev.Best = cur
		record()
		*aux = math.Inf(-1)
		for _, c := range nonEmpty {
			num[c] = 0
		}
		return ev
	}
	ev.CurContribution = num[cur] / den
	ev.Best, ev.BestContribution = cur, ev.CurContribution
	for _, c := range nonEmpty {
		v := num[c] / den
		if v > ev.BestContribution || (v == ev.BestContribution && ev.Best != cur && c < ev.Best) {
			ev.Best, ev.BestContribution = c, v
		}
	}
	record()
	*aux = ps.outDem / den
	for _, c := range nonEmpty {
		num[c] = 0
	}
	return ev
}

// replayDecision returns p's cached decision when it provably still
// holds. The cheap clock-equality fast path covers quiescent rounds
// (nothing anywhere changed); otherwise the kind-specific rules check
// exactly the state the decision depended on.
func (ev *Evaluator) replayDecision(s Strategy, kind uint8, param float64, p int, baseline float64, allowNew bool) (Decision, bool) {
	if !ev.pruned {
		return Decision{}, false
	}
	e := ev.e
	ps := &e.prune[p]
	dec := &ps.dec
	if !dec.valid || dec.kind != kind || dec.strat != s || dec.param != param ||
		dec.baseline != math.Float64bits(baseline) || dec.allowNew != allowNew ||
		dec.epoch != e.pruneEpoch || dec.gen != e.SlotGeneration(p) {
		return Decision{}, false
	}
	if dec.clock == e.aggClock {
		ev.stats.Evaluated++
		ev.stats.Replayed++
		return dec.d, true
	}
	if kind == decHybrid {
		// The hybrid score touches every cluster's size; anything
		// changed means re-deciding (still exhaustive beyond the
		// quiescent fast path above).
		return Decision{}, false
	}
	if e.cfg.ClusterOf(p) != dec.cur || e.cfg.Live() != dec.live {
		return Decision{}, false
	}
	switch kind {
	case decSelfish:
		if math.Float64bits(e.peerW[p]) != ps.peerWBits ||
			math.Float64bits(e.peerOwnW[p]) != ps.ownWBits {
			return Decision{}, false
		}
		for i := range e.peerWl[p] {
			if e.rowVersion[e.peerWl[p][i].qid] > dec.clock {
				return Decision{}, false
			}
		}
		// Candidate clusters (current shortlist, the current cluster,
		// the chosen target) must be size-stable; everything else is
		// excluded by the outside bound under the current minimum
		// cluster size.
		if e.aggVersion[dec.cur] > dec.clock {
			return Decision{}, false
		}
		for _, c := range ps.accShort[:ps.nAcc] {
			if e.aggVersion[c] > dec.clock {
				return Decision{}, false
			}
		}
		if dec.d.Move && !dec.d.NewCluster && e.aggVersion[dec.d.To] > dec.clock {
			return Decision{}, false
		}
		e.pruneMinSize()
		bound := e.membership(e.minSize+1) + e.peerW[p] - ps.outAcc - e.peerOwnW[p]
		if !(bound > dec.bestVal) {
			return Decision{}, false
		}
	case decAltruistic:
		for i := range e.peerRes[p] {
			if e.rowVersion[e.peerRes[p][i].qid] > dec.clock {
				return Decision{}, false
			}
		}
		// Contributions ignore cluster sizes, but the gain subtracts
		// ΔmembershipCost(best) — size-dependent even when the gain came
		// out non-positive and the cached decision is a no-move, so the
		// best candidate must be size-stable unconditionally.
		if dec.best != dec.cur && e.aggVersion[dec.best] > dec.clock {
			return Decision{}, false
		}
		if !(dec.aux < dec.bestVal) {
			return Decision{}, false
		}
	default:
		return Decision{}, false
	}
	ev.stats.Evaluated++
	ev.stats.Replayed++
	return dec.d, true
}

// rememberDecision caches d for replay. Called immediately after the
// evaluation that produced it, so the shortlist state is valid at
// store time — the invariant replayDecision's clock reasoning needs.
func (ev *Evaluator) rememberDecision(s Strategy, kind uint8, param float64, p int, baseline float64, allowNew bool, best cluster.CID, bestVal, aux float64, d Decision) {
	if !ev.pruned {
		return
	}
	e := ev.e
	ps := &e.prune[p]
	ps.dec = decCache{
		valid:    true,
		kind:     kind,
		allowNew: allowNew,
		strat:    s,
		param:    param,
		baseline: math.Float64bits(baseline),
		epoch:    e.pruneEpoch,
		gen:      e.SlotGeneration(p),
		clock:    e.aggClock,
		live:     e.cfg.Live(),
		cur:      e.cfg.ClusterOf(p),
		best:     best,
		bestVal:  bestVal,
		aux:      aux,
		d:        d,
	}
}
