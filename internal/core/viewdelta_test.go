package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
)

// checkViewsAgree asserts two views answer every query identically.
func checkViewsAgree(t *testing.T, want, got *RoutingView, qs []attr.Set, label string) {
	t.Helper()
	var scW, scG RouteScratch
	for i, q := range qs {
		wantTotal, wantHits := want.Route(q, &scW)
		gotTotal, gotHits := got.Route(q, &scG)
		if gotTotal != wantTotal || !sameHits(gotHits, wantHits) {
			t.Fatalf("%s: query %d (%v): (%d, %v) != (%d, %v)",
				label, i, q, gotTotal, gotHits, wantTotal, wantHits)
		}
	}
}

// TestViewExportImportRoundTrip pins the full-view replication path:
// a view reconstructed from its export answers every query exactly
// like the original, across churned populations with dead slots.
func TestViewExportImportRoundTrip(t *testing.T) {
	e := newTestEngine(t, 24, 12, 97, nil)
	rng := stats.NewRNG(13)
	for p := 0; p < 24; p++ {
		e.Move(p, cluster.CID(p%5))
	}
	// Punch holes in the slot space and add a fresh joiner so the
	// export carries unoccupied slots.
	e.RemovePeer(3)
	e.RemovePeer(11)
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(0, 1), attr.NewSet(2)})
	e.AddPeer(pr, []attr.Set{attr.NewSet(0)}, []int{2}, cluster.None)

	v := e.BuildRoutingView(nil)
	imported, err := FromViewData(v.Export())
	if err != nil {
		t.Fatal(err)
	}
	if imported.PopVersion() != v.PopVersion() || imported.Live() != v.Live() || imported.Slots() != v.Slots() {
		t.Fatalf("imported view header diverged: pop %d/%d live %d/%d slots %d/%d",
			imported.PopVersion(), v.PopVersion(), imported.Live(), v.Live(), imported.Slots(), v.Slots())
	}
	checkViewsAgree(t, v, imported, testQueries(e, rng), "import")
	checkViewMatchesOracle(t, e, imported, testQueries(e, rng), "import vs engine")
}

// TestViewDiffApply pins the delta replication path: the
// pure-relocation delta extracted from consecutive views carries a
// follower's view — engine-built or import-reconstructed — to answers
// identical to the authoritative successor.
func TestViewDiffApply(t *testing.T) {
	e := newTestEngine(t, 20, 10, 101, nil)
	rng := stats.NewRNG(17)
	v1 := e.BuildRoutingView(nil)
	follower, err := FromViewData(v1.Export())
	if err != nil {
		t.Fatal(err)
	}

	qs := testQueries(e, rng)
	for step := 0; step < 8; step++ {
		// A handful of relocations, including into previously empty
		// cluster slots the follower's trimmed sizes table has not seen.
		for k := 0; k < 3; k++ {
			e.Move(rng.Intn(20), cluster.CID(rng.Intn(e.Config().Cmax())))
		}
		v2 := e.BuildRoutingView(v1)
		moves, ok := v2.DiffFrom(v1)
		if !ok {
			t.Fatalf("step %d: no delta between consecutive relocation views", step)
		}
		follower, err = follower.ApplyMoves(moves)
		if err != nil {
			t.Fatalf("step %d: apply: %v", step, err)
		}
		checkViewsAgree(t, v2, follower, qs, "delta follower")
		checkViewMatchesOracle(t, e, follower, qs, "delta follower vs engine")
		v1 = v2
	}

	// Zero-move delta (a compaction republish) is ok and changes nothing.
	v2 := e.BuildRoutingView(v1)
	if moves, ok := v2.DiffFrom(v1); !ok || len(moves) != 0 {
		t.Fatalf("quiescent republish: delta (%v, %v), want (empty, true)", moves, ok)
	}

	// A population change makes the delta impossible: full resync needed.
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(1, 2)})
	e.AddPeer(pr, []attr.Set{attr.NewSet(1)}, []int{1}, cluster.None)
	v3 := e.BuildRoutingView(v2)
	if _, ok := v3.DiffFrom(v2); ok {
		t.Fatal("DiffFrom crossed a population version boundary")
	}
}

// TestApplyMovesRejects pins the defensive surface a router relies on:
// corrupt deltas are errors, never panics, and leave the source view
// untouched.
func TestApplyMovesRejects(t *testing.T) {
	e := newTestEngine(t, 8, 6, 103, nil)
	e.RemovePeer(2)
	v := e.BuildRoutingView(nil)
	before := v.clusterOf[1]
	for _, bad := range [][]SlotMove{
		{{Slot: -1, To: 0}},
		{{Slot: int32(v.Slots()), To: 0}},
		{{Slot: 2, To: 0}},            // unoccupied slot
		{{Slot: 1, To: cluster.None}}, // relocation cannot vacate
	} {
		if _, err := v.ApplyMoves(bad); err == nil {
			t.Errorf("ApplyMoves(%v) accepted a corrupt delta", bad)
		}
	}
	if v.clusterOf[1] != before {
		t.Fatal("failed ApplyMoves mutated the source view")
	}
}

// TestFromViewDataRejects pins validation of untrusted full views.
func TestFromViewDataRejects(t *testing.T) {
	base := ViewData{
		PopVersion: 1,
		Items:      [][]attr.Set{{attr.NewSet(0)}, nil},
		ClusterOf:  []cluster.CID{0, cluster.None},
		Postings:   map[attr.ID][]int32{0: {0}},
	}
	if _, err := FromViewData(base); err != nil {
		t.Fatalf("valid view data rejected: %v", err)
	}
	bad := base
	bad.ClusterOf = []cluster.CID{0}
	if _, err := FromViewData(bad); err == nil {
		t.Error("mismatched slot counts accepted")
	}
	bad = base
	bad.ClusterOf = []cluster.CID{-7, cluster.None}
	if _, err := FromViewData(bad); err == nil {
		t.Error("negative cluster ID accepted")
	}
	bad = base
	bad.Postings = map[attr.ID][]int32{0: {1}}
	if _, err := FromViewData(bad); err == nil {
		t.Error("posting naming an unoccupied slot accepted")
	}
	bad = base
	bad.Postings = map[attr.ID][]int32{0: {9}}
	if _, err := FromViewData(bad); err == nil {
		t.Error("posting naming an out-of-range slot accepted")
	}
}
