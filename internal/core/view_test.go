package core

import (
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// routeOracle computes Route's answer the locked way: ForEachSupplier
// over the live engine plus the configuration's cluster data.
func routeOracle(e *Engine, q attr.Set) (int, []RouteHit) {
	total := 0
	perCluster := make(map[cluster.CID]int)
	e.ForEachSupplier(q, func(pid, res int) {
		perCluster[e.cfg.ClusterOf(pid)] += res
		total += res
	})
	var hits []RouteHit
	for _, c := range e.cfg.NonEmpty() {
		if n, ok := perCluster[c]; ok {
			hits = append(hits, RouteHit{Cluster: c, Size: e.cfg.Size(c), Results: n})
		}
	}
	return total, hits
}

// testQueries returns a mix of workload queries, ad-hoc multi-term
// sets, an unknown-attribute set and the empty set.
func testQueries(e *Engine, rng *stats.RNG) []attr.Set {
	qs := []attr.Set{{}, attr.NewSet(attr.ID(1 << 20))}
	for q := 0; q < e.wl.NumQueries(); q++ {
		qs = append(qs, e.wl.Query(workload.QID(q)))
	}
	for i := 0; i < 10; i++ {
		qs = append(qs, attr.NewSet(attr.ID(rng.Intn(12)), attr.ID(rng.Intn(12))))
	}
	return qs
}

func sameHits(a, b []RouteHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkViewMatchesOracle(t *testing.T, e *Engine, v *RoutingView, qs []attr.Set, label string) {
	t.Helper()
	var sc RouteScratch
	for i, q := range qs {
		wantTotal, wantHits := routeOracle(e, q)
		gotTotal, gotHits := v.Route(q, &sc)
		if gotTotal != wantTotal || !sameHits(gotHits, wantHits) {
			t.Fatalf("%s: query %d (%v): view (%d, %v) != engine (%d, %v)",
				label, i, q, gotTotal, gotHits, wantTotal, wantHits)
		}
	}
}

func TestRoutingViewMatchesEngine(t *testing.T) {
	e := newTestEngine(t, 24, 12, 71, nil)
	rng := stats.NewRNG(3)
	// Clump the singletons a little so multi-member clusters exist.
	for p := 0; p < 24; p++ {
		e.Move(p, cluster.CID(p%5))
	}
	checkViewMatchesOracle(t, e, e.BuildRoutingView(nil), testQueries(e, rng), "initial")

	// After churn: joins (some into fresh slots), leaves, relocations.
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(0, 1), attr.NewSet(2)})
	pid := e.AddPeer(pr, []attr.Set{attr.NewSet(0)}, []int{2}, cluster.None)
	e.RemovePeer(3)
	e.Move(7, cluster.CID(9))
	checkViewMatchesOracle(t, e, e.BuildRoutingView(nil), testQueries(e, rng), "after churn")
	e.RemovePeer(pid)
	checkViewMatchesOracle(t, e, e.BuildRoutingView(nil), testQueries(e, rng), "after leave")
}

// TestRoutingViewSnapshotIsolation pins immutability: a published
// view keeps answering from its snapshot while the engine churns.
func TestRoutingViewSnapshotIsolation(t *testing.T) {
	e := newTestEngine(t, 20, 10, 73, nil)
	rng := stats.NewRNG(5)
	qs := testQueries(e, rng)
	v := e.BuildRoutingView(nil)

	// Record the view's answers, then churn the engine hard.
	type ans struct {
		total int
		hits  []RouteHit
	}
	var sc RouteScratch
	want := make([]ans, len(qs))
	for i, q := range qs {
		total, hits := v.Route(q, &sc)
		want[i] = ans{total, append([]RouteHit(nil), hits...)}
	}
	for p := 0; p < 8; p++ {
		e.RemovePeer(p)
	}
	for i := 0; i < 5; i++ {
		pr := peer.New(-1)
		pr.SetItems([]attr.Set{attr.NewSet(attr.ID(i), attr.ID(i+1))})
		e.AddPeer(pr, []attr.Set{attr.NewSet(attr.ID(i))}, []int{1}, cluster.None)
	}
	for p := 8; p < 20; p++ {
		e.Move(p, cluster.CID(p%3))
	}
	for i, q := range qs {
		total, hits := v.Route(q, &sc)
		if total != want[i].total || !sameHits(hits, want[i].hits) {
			t.Fatalf("query %d: stale view drifted: (%d, %v) != (%d, %v)",
				i, total, hits, want[i].total, want[i].hits)
		}
	}
	// And a freshly built view agrees with the mutated engine again.
	checkViewMatchesOracle(t, e, e.BuildRoutingView(v), qs, "rebuilt")
}

// TestRoutingViewReuse pins the cheap-republish path: relocations and
// compactions reuse the previous view's posting/peer copies, while a
// join or leave forces fresh ones.
func TestRoutingViewReuse(t *testing.T) {
	e := newTestEngine(t, 16, 8, 79, nil)
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(0, 1)})
	pid := e.AddPeer(pr, []attr.Set{attr.NewSet(0)}, []int{1}, cluster.None) // build indexes
	v1 := e.BuildRoutingView(nil)

	e.Move(2, cluster.CID(5))
	v2 := e.BuildRoutingView(v1)
	if &v2.peers[0] != &v1.peers[0] {
		t.Fatal("move-only republish did not reuse the peer copy")
	}
	if v2.clusterOf[2] != 5 {
		t.Fatalf("reused view kept a stale assignment: %d", v2.clusterOf[2])
	}

	e.RemovePeer(pid)
	e.Compact(0)
	v3 := e.BuildRoutingView(v2)
	if &v3.peers[0] == &v2.peers[0] {
		t.Fatal("leave republish reused the stale peer copy")
	}
	e.Compact(0) // no-op compaction
	v4 := e.BuildRoutingView(v3)
	if &v4.peers[0] != &v3.peers[0] {
		t.Fatal("compaction-only republish did not reuse the peer copy")
	}
}

func TestRouteAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 83, nil)
	rng := stats.NewRNG(7)
	v := e.BuildRoutingView(nil)
	qs := testQueries(e, rng)
	var sc RouteScratch
	for _, q := range qs {
		v.Route(q, &sc) // reach steady-state capacity
	}
	if avg := testing.AllocsPerRun(100, func() {
		for _, q := range qs {
			v.Route(q, &sc)
		}
	}); avg != 0 {
		t.Errorf("Route allocates %v per run, want 0", avg)
	}
}

// TestRoutingViewConcurrentReaders drives many readers over published
// views while the single writer churns the engine — the daemon's
// locking discipline, pinned under -race. Readers only check
// self-consistency (every hit positive, totals add up); value-level
// correctness is pinned by the deterministic tests above.
func TestRoutingViewConcurrentReaders(t *testing.T) {
	e := newTestEngine(t, 24, 12, 89, nil)
	var mu sync.Mutex // the writer lock a serving daemon would hold
	rng := stats.NewRNG(11)
	qs := testQueries(e, rng)

	var published struct {
		sync.Mutex
		v *RoutingView
	}
	published.v = e.BuildRoutingView(nil)
	load := func() *RoutingView {
		published.Lock()
		defer published.Unlock()
		return published.v
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc RouteScratch
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				total, hits := load().Route(qs[i%len(qs)], &sc)
				sum := 0
				for _, h := range hits {
					if h.Results <= 0 || h.Size <= 0 {
						t.Errorf("incoherent hit %+v", h)
						return
					}
					sum += h.Results
				}
				if sum != total {
					t.Errorf("hits sum to %d, total %d", sum, total)
					return
				}
			}
		}()
	}
	for i := 0; i < 60; i++ {
		mu.Lock()
		pr := peer.New(-1)
		pr.SetItems([]attr.Set{attr.NewSet(attr.ID(i%12), attr.ID((i+3)%12))})
		pid := e.AddPeer(pr, []attr.Set{attr.NewSet(attr.ID(i % 12))}, []int{1}, cluster.None)
		e.Move(pid, cluster.CID(i%6))
		if i%2 == 1 {
			e.RemovePeer(pid)
			e.Compact(0)
		}
		nv := e.BuildRoutingView(load())
		mu.Unlock()
		published.Lock()
		published.v = nv
		published.Unlock()
	}
	close(stop)
	wg.Wait()
}
