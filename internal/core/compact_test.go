package core

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// novelJoiner mints a joiner whose queries are brand-new to the
// system: single-attribute queries over a private, ever-advancing ID
// range no content or earlier query uses. Such queries intern fresh
// QIDs on join and die (global count 0) on leave — the open-ended
// churn pattern that grows QID-indexed state without bound unless
// compaction reclaims it.
type novelJoiner struct {
	next attr.ID
}

func (n *novelJoiner) materials(ids []attr.ID, rng *stats.RNG, novel int) (*peer.Peer, []attr.Set, []int) {
	pr := peer.New(-1)
	items := make([]attr.Set, 0, 2)
	for d := 0; d <= rng.Intn(2); d++ {
		items = append(items, attr.NewSet(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]))
	}
	pr.SetItems(items)
	var queries []attr.Set
	var counts []int
	// One known query keeps the joiner coupled to the population.
	queries = append(queries, attr.NewSet(ids[rng.Intn(len(ids))]))
	counts = append(counts, 1+rng.Intn(3))
	for k := 0; k < novel; k++ {
		queries = append(queries, attr.NewSet(n.next))
		counts = append(counts, 1+rng.Intn(3))
		n.next++
	}
	return pr, queries, counts
}

// liveDistinctQueries counts the distinct queries demanded by at
// least one live peer — the exact row count a compacted workload must
// shrink to under the minIdle=0 policy.
func liveDistinctQueries(wl *workload.Workload) int {
	live := make(map[workload.QID]bool)
	for p := 0; p < wl.NumPeers(); p++ {
		for _, en := range wl.Peer(p) {
			live[en.Q] = true
		}
	}
	return len(live)
}

// TestCompactMatchesRebuild drives randomized membership churn with
// novel queries, compacting at random points, and pins the engine
// after every operation to a fresh engine built over the compacted
// workload (the property the whole feature rests on: compaction is
// invisible to every cost).
func TestCompactMatchesRebuild(t *testing.T) {
	const v = 12
	peers, wl, _ := testSystem(t, 10, v, 909)
	ids := testAttrIDs(v)
	e := New(peers, wl, cluster.NewSingletons(10), cluster.LinearTheta(), 1)
	rng := stats.NewRNG(808)
	nov := &novelJoiner{next: attr.ID(10_000)}

	livePeers := func() []int {
		var out []int
		for p := 0; p < e.NumSlots(); p++ {
			if e.IsLive(p) {
				out = append(out, p)
			}
		}
		return out
	}

	compactions := 0
	for step := 0; step < 160; step++ {
		live := livePeers()
		op := rng.Intn(5)
		switch {
		case op <= 1 || len(live) <= 2: // join with novel queries
			pr, qs, cs := nov.materials(ids, rng, 1+rng.Intn(2))
			to := cluster.None
			if rng.Intn(2) == 0 && len(live) > 0 {
				to = e.Config().ClusterOf(live[rng.Intn(len(live))])
			}
			e.AddPeer(pr, qs, cs, to)
		case op == 2: // leave (strands the leaver's novel queries)
			e.RemovePeer(live[rng.Intn(len(live))])
		case op == 3: // interior move
			p := live[rng.Intn(len(live))]
			targets := e.Config().NonEmpty()
			e.Move(p, targets[rng.Intn(len(targets))])
		default: // compact
			before := e.Workload().NumQueries()
			dead := e.DeadQueries(0)
			removed := e.Compact(0)
			if removed != dead {
				t.Fatalf("step %d: Compact removed %d, DeadQueries said %d", step, removed, dead)
			}
			if got, want := e.Workload().NumQueries(), before-removed; got != want {
				t.Fatalf("step %d: %d queries after compact, want %d", step, got, want)
			}
			if got, want := e.Workload().NumQueries(), liveDistinctQueries(e.Workload()); got != want {
				t.Fatalf("step %d: compacted to %d queries, live distinct is %d", step, got, want)
			}
			if removed > 0 {
				compactions++
			}
		}
		if err := e.Workload().Validate(); err != nil {
			t.Fatalf("step %d: workload invalid: %v", step, err)
		}
		checkAgainstRebuild(t, e, "compact-churn")
	}
	if compactions < 5 {
		t.Fatalf("only %d effective compactions in 160 steps; churn mix too tame to test anything", compactions)
	}
}

// TestCompactPreservesCostsExactly pins the stronger-than-tolerance
// claim the implementation makes: compaction never touches the
// incremental cost sums, so every cost is bit-identical — not merely
// within 1e-9 — before and after.
func TestCompactPreservesCostsExactly(t *testing.T) {
	e := newTestEngine(t, 8, 10, 1212, nil)
	ids := testAttrIDs(10)
	rng := stats.NewRNG(77)
	nov := &novelJoiner{next: 5000}
	var joined []int
	for i := 0; i < 6; i++ {
		pr, qs, cs := nov.materials(ids, rng, 2)
		joined = append(joined, e.AddPeer(pr, qs, cs, cluster.None))
	}
	for _, pid := range joined[:4] {
		e.RemovePeer(pid)
	}
	if e.DeadQueries(0) == 0 {
		t.Fatal("setup produced no dead queries")
	}

	scost, wcost := e.SCost(), e.WCost()
	type pc struct {
		p    int
		c    cluster.CID
		cost float64
	}
	var costs []pc
	for p := 0; p < e.NumSlots(); p++ {
		if !e.IsLive(p) {
			continue
		}
		for _, c := range e.Config().NonEmpty() {
			costs = append(costs, pc{p, c, e.PeerCost(p, c)})
		}
	}
	if e.Compact(0) == 0 {
		t.Fatal("compact removed nothing")
	}
	if got := e.SCost(); got != scost {
		t.Errorf("SCost %v != %v after compact", got, scost)
	}
	if got := e.WCost(); got != wcost {
		t.Errorf("WCost %v != %v after compact", got, wcost)
	}
	for _, x := range costs {
		if got := e.PeerCost(x.p, x.c); got != x.cost {
			t.Errorf("PeerCost(%d,%d) %v != %v after compact", x.p, x.c, got, x.cost)
		}
	}
}

// TestCompactExternalTwoStepFlow exercises the public low-level pair:
// Workload.Compact run by the caller, then Engine.CompactQueries with
// the returned remap. The result must match the one-call Engine.Compact
// path and a fresh rebuild.
func TestCompactExternalTwoStepFlow(t *testing.T) {
	e := newTestEngine(t, 8, 10, 404, nil)
	ids := testAttrIDs(10)
	rng := stats.NewRNG(55)
	nov := &novelJoiner{next: 7000}
	pr, qs, cs := nov.materials(ids, rng, 3)
	pid := e.AddPeer(pr, qs, cs, cluster.None)
	e.RemovePeer(pid)

	remap, removed := e.Workload().Compact(0)
	if removed == 0 {
		t.Fatal("nothing to compact")
	}
	if !e.Stale() {
		t.Fatal("external workload compaction not flagged stale")
	}
	e.CompactQueries(remap)
	if e.Stale() {
		t.Fatal("engine stale after CompactQueries")
	}
	checkAgainstRebuild(t, e, "two-step")
}

// TestCompactGuards pins the version machinery around compaction:
// mutating the workload beyond the single compaction — or calling
// CompactQueries with no compaction at all — panics instead of
// laundering the mutation, and Compact itself refuses stale engines.
func TestCompactGuards(t *testing.T) {
	ids := testAttrIDs(8)
	expectPanic := func(name string, fn func(e *Engine)) {
		t.Helper()
		e := newTestEngine(t, 6, 8, 606, nil)
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn(e)
	}
	expectPanic("CompactQueries without a compaction", func(e *Engine) {
		e.CompactQueries(make([]workload.QID, e.Workload().NumQueries()))
	})
	expectPanic("CompactQueries after compaction plus another mutation", func(e *Engine) {
		nov := &novelJoiner{next: 9000}
		pr, qs, cs := nov.materials(ids, stats.NewRNG(1), 2)
		pid := e.AddPeer(pr, qs, cs, cluster.None)
		e.RemovePeer(pid)
		remap, removed := e.Workload().Compact(0)
		if removed == 0 {
			t.Fatal("nothing to compact")
		}
		e.Workload().Add(0, attr.NewSet(ids[1]), 1) // the laundering attempt
		e.CompactQueries(remap)
	})
	expectPanic("Compact on a stale engine", func(e *Engine) {
		e.Workload().Add(0, attr.NewSet(ids[2]), 1)
		e.Compact(0)
	})
}

// TestCompactRetainsRecentlyUsed pins the last-use policy: a query
// whose demand vanished only minIdle-1 demand events ago survives
// Compact(minIdle), and is reclaimed once enough demand has flowed —
// so a reused QID can never be inherited by a different query while
// the retention window is open.
func TestCompactRetainsRecentlyUsed(t *testing.T) {
	e := newTestEngine(t, 6, 8, 707, nil)
	ids := testAttrIDs(8)
	nov := &novelJoiner{next: 4000}
	pr, qs, cs := nov.materials(ids, stats.NewRNG(3), 1)
	pid := e.AddPeer(pr, qs, cs, cluster.None)
	novelQ := qs[len(qs)-1]
	e.RemovePeer(pid)

	qid, ok := e.Workload().Lookup(novelQ)
	if !ok {
		t.Fatal("novel query not interned")
	}
	if got := e.Compact(1_000_000); got != 0 {
		t.Fatalf("Compact removed %d recently used queries, want 0", got)
	}
	if got, ok := e.Workload().Lookup(novelQ); !ok || got != qid {
		t.Fatalf("retained query moved: %v/%v", got, ok)
	}
	// Age the query: every Add advances the demand clock.
	for i := 0; i < 10; i++ {
		e.Workload().Add(0, attr.NewSet(ids[i%len(ids)]), 1)
	}
	e.Rebuild()
	if got := e.Compact(5); got == 0 {
		t.Fatal("aged-out query not reclaimed")
	}
	if _, ok := e.Workload().Lookup(novelQ); ok {
		t.Fatal("reclaimed query still interned")
	}
	checkAgainstRebuild(t, e, "retention")
}

// TestCompactBoundsNovelChurn is the acceptance-scale pin: a churn
// phase interning 10k novel queries, then one compaction that shrinks
// the workload (and with it every engine row) to the live QIDs only,
// with costs equal to a fresh rebuild.
func TestCompactBoundsNovelChurn(t *testing.T) {
	const novel = 10_000
	e := newTestEngine(t, 12, 10, 111, nil)
	ids := testAttrIDs(10)
	rng := stats.NewRNG(222)
	nov := &novelJoiner{next: 100_000}
	for done := 0; done < novel; {
		pr, qs, cs := nov.materials(ids, rng, 4)
		done += 4
		pid := e.AddPeer(pr, qs, cs, cluster.None)
		e.RemovePeer(pid)
	}
	peak := e.Workload().NumQueries()
	if peak < novel {
		t.Fatalf("churn interned %d queries, want >= %d", peak, novel)
	}
	removed := e.Compact(0)
	if got, want := e.Workload().NumQueries(), liveDistinctQueries(e.Workload()); got != want {
		t.Fatalf("after compact %d queries, live distinct %d (removed %d, peak %d)", got, want, removed, peak)
	}
	if e.Workload().NumQueries() >= peak/10 {
		t.Fatalf("compaction barely shrank the workload: %d of %d", e.Workload().NumQueries(), peak)
	}
	checkAgainstRebuild(t, e, "novel-churn")
}

// TestCompactSteadyStateAllocs pins the compact path's allocation
// behavior under churn at steady state. A cycle joins a peer issuing
// one novel query, retires it, and compacts. The only allocations
// allowed per cycle are the two of re-interning the (forgotten)
// query's key string — a price any intern pays, compaction or not;
// Compact and the remap application themselves must add none. The
// no-op probe (nothing dead) must be allocation-free outright.
func TestCompactSteadyStateAllocs(t *testing.T) {
	e := newTestEngine(t, 16, 10, 404, nil)
	ids := testAttrIDs(10)
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(ids[1], ids[4])})
	queries := []attr.Set{attr.NewSet(ids[3]), attr.NewSet(attr.ID(77_777))}
	counts := []int{2, 3}
	cycle := func() {
		pid := e.AddPeer(pr, queries, counts, cluster.None)
		e.RemovePeer(pid)
		if e.Compact(0) == 0 {
			t.Fatal("cycle compacted nothing")
		}
	}
	cycle() // warm every capacity (indexes, rows, remap scratch)
	cycle()
	if avg := testing.AllocsPerRun(100, cycle); avg > 2 {
		t.Errorf("join+leave+compact cycle allocates %v/op at steady state, want <= 2 (the re-interned key string)", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if e.Compact(0) != 0 {
			t.Fatal("probe unexpectedly compacted")
		}
	}); avg != 0 {
		t.Errorf("no-op Compact probe allocates %v/op, want 0", avg)
	}
}
