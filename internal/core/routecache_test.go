package core

import (
	"fmt"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/stats"
)

// routeFirstAttribute is the pre-rarest-scan Route: it always drives
// the scan from the query's FIRST attribute's posting list. Kept here
// as the oracle the rarest-attribute argmin must match byte-for-byte.
func routeFirstAttribute(v *RoutingView, q attr.Set) (total int, hits []RouteHit) {
	ids := q.IDs()
	if len(ids) == 0 {
		return 0, nil
	}
	results := make([]int, len(v.sizes))
	for _, pid := range v.postings[ids[0]] {
		if res := v.peers[pid].ResultCountRO(q); res > 0 {
			results[v.clusterOf[pid]] += res
			total += res
		}
	}
	if total == 0 {
		return 0, nil
	}
	for _, c := range v.nonEmpty {
		if n := results[c]; n > 0 {
			hits = append(hits, RouteHit{Cluster: c, Size: v.sizes[c], Results: n})
		}
	}
	return total, hits
}

// churnStep applies one randomized mutation to the engine: join,
// leave, relocation, or compaction.
func churnStep(e *Engine, rng *stats.RNG, i int) {
	switch rng.Intn(4) {
	case 0:
		pr := peer.New(-1)
		pr.SetItems([]attr.Set{
			attr.NewSet(attr.ID(rng.Intn(12)), attr.ID(rng.Intn(12))),
			attr.NewSet(attr.ID(rng.Intn(12))),
		})
		e.AddPeer(pr, []attr.Set{attr.NewSet(attr.ID(rng.Intn(12)))}, []int{1 + rng.Intn(3)}, cluster.None)
	case 1:
		if pid := rng.Intn(e.NumSlots()); e.IsLive(pid) && e.NumPeers() > 4 {
			e.RemovePeer(pid)
		}
	case 2:
		if pid := rng.Intn(e.NumSlots()); e.IsLive(pid) {
			e.Move(pid, cluster.CID(rng.Intn(8)))
		}
	case 3:
		if i%7 == 0 {
			e.Compact(0)
		}
	}
}

// TestRouteRarestMatchesFirstAttributeProperty pins the tentpole's
// byte-identity claim: over randomized systems and churn, driving the
// scan from the rarest attribute answers exactly what the historical
// first-attribute scan answered, for every query shape (workload,
// ad-hoc multi-term, unknown-attribute, empty).
func TestRouteRarestMatchesFirstAttributeProperty(t *testing.T) {
	for _, seed := range []uint64{1, 17, 4242} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newTestEngine(t, 24, 12, seed, nil)
			rng := stats.NewRNG(seed ^ 0xabcdef)
			var sc RouteScratch
			var v *RoutingView
			for step := 0; step < 40; step++ {
				churnStep(e, rng, step)
				v = e.BuildRoutingView(v)
				for qi, q := range testQueries(e, rng) {
					wantTotal, wantHits := routeFirstAttribute(v, q)
					gotTotal, gotHits := v.Route(q, &sc)
					if gotTotal != wantTotal || !sameHits(gotHits, wantHits) {
						t.Fatalf("step %d query %d (%v): rarest scan (%d, %v) != first-attribute scan (%d, %v)",
							step, qi, q, gotTotal, gotHits, wantTotal, wantHits)
					}
				}
			}
		})
	}
}

// TestRouteUnknownAttributeIDs pins the stale-vocab router edge: a
// query naming attribute IDs this view has never seen — arbitrarily
// far beyond its vocabulary — answers (0, empty) instead of
// panicking, alone and mixed with known attributes.
func TestRouteUnknownAttributeIDs(t *testing.T) {
	e := newTestEngine(t, 16, 8, 91, nil)
	v := e.BuildRoutingView(nil)
	var sc RouteScratch
	for _, q := range []attr.Set{
		attr.NewSet(attr.ID(1 << 30)),
		attr.NewSet(attr.ID(1<<31 - 1)),
		attr.NewSet(0, attr.ID(1<<30)),                  // known first, unknown rarest
		attr.NewSet(attr.ID(1<<30), attr.ID(1<<30+500)), // all unknown
	} {
		total, hits := v.Route(q, &sc)
		if total != 0 || len(hits) != 0 {
			t.Errorf("query %v against unknown attrs: got (%d, %v), want (0, [])", q, total, hits)
		}
		cache := NewRouteCache(64)
		total, hits = v.RouteCached(q, cache, &sc)
		if total != 0 || len(hits) != 0 {
			t.Errorf("cached query %v against unknown attrs: got (%d, %v), want (0, [])", q, total, hits)
		}
	}
}

// TestRouteCachedMatchesRouteProperty is the cache's byte-identity
// oracle: one shared cache serves a sequence of views across
// randomized churn (so entries go stale wholesale at every publish),
// every query asked twice (miss then hit), and every answer — hit,
// miss, or bypass — must equal an uncached Route against the same
// view. Old views are re-queried through the same cache to pin that
// stale entries can never leak across epochs in either direction.
func TestRouteCachedMatchesRouteProperty(t *testing.T) {
	for _, seed := range []uint64{3, 99} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := newTestEngine(t, 24, 12, seed, nil)
			rng := stats.NewRNG(seed * 7919)
			cache := NewRouteCache(64) // small: force evictions too
			var cSc, uSc RouteScratch
			var v *RoutingView
			var old []*RoutingView
			check := func(view *RoutingView, label string) {
				for qi, q := range testQueries(e, rng) {
					for pass := 0; pass < 2; pass++ { // miss then hit
						wantTotal, wantHits := view.Route(q, &uSc)
						gotTotal, gotHits := view.RouteCached(q, cache, &cSc)
						if gotTotal != wantTotal || !sameHits(gotHits, wantHits) {
							t.Fatalf("%s query %d pass %d (%v): cached (%d, %v) != Route (%d, %v)",
								label, qi, pass, q, gotTotal, gotHits, wantTotal, wantHits)
						}
					}
				}
			}
			for step := 0; step < 30; step++ {
				churnStep(e, rng, step)
				v = e.BuildRoutingView(v)
				check(v, fmt.Sprintf("step %d", step))
				if step%10 == 0 {
					old = append(old, v)
				}
			}
			// Snapshot isolation through the cache: superseded views
			// queried through the same shared cache still answer from
			// their own epoch.
			for i, ov := range old {
				check(ov, fmt.Sprintf("old view %d", i))
			}
			st := cache.Stats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("degenerate property run: stats %+v", st)
			}
		})
	}
}

func TestRouteCacheCountersAndCapacity(t *testing.T) {
	for _, tc := range []struct{ entries, want int }{
		{0, 4096}, {-5, 4096}, {1, 64}, {100, 128}, {4096, 4096},
	} {
		if got := NewRouteCache(tc.entries).Stats().Capacity; got != tc.want {
			t.Errorf("NewRouteCache(%d) capacity %d, want %d", tc.entries, got, tc.want)
		}
	}

	e := newTestEngine(t, 16, 8, 97, nil)
	v := e.BuildRoutingView(nil)
	c := NewRouteCache(64)
	var sc RouteScratch
	q := attr.NewSet(0, 1)
	v.RouteCached(q, c, &sc)
	v.RouteCached(q, c, &sc)
	v.RouteCached(q, c, &sc)
	if st := c.Stats(); st.Misses != 1 || st.Hits != 2 || st.Bypasses != 0 {
		t.Fatalf("after 3 identical queries: %+v, want 1 miss + 2 hits", st)
	}

	// A canonical key over the bound bypasses the cache (counted) but
	// still answers correctly.
	var giant []attr.ID
	for i := 0; i < 64; i++ {
		giant = append(giant, attr.ID(1<<20+i))
	}
	gq := attr.NewSet(giant...)
	if len(gq.Key()) <= maxRouteCacheKeyBytes {
		t.Fatalf("test query key %d bytes, need > %d", len(gq.Key()), maxRouteCacheKeyBytes)
	}
	v.RouteCached(gq, c, &sc)
	v.RouteCached(gq, c, &sc)
	if st := c.Stats(); st.Bypasses != 2 {
		t.Fatalf("oversized key should bypass twice: %+v", st)
	}

	// Nil cache degrades to plain Route.
	wantTotal, wantHits := v.Route(q, &sc)
	hits := append([]RouteHit(nil), wantHits...)
	gotTotal, gotHits := v.RouteCached(q, nil, &sc)
	if gotTotal != wantTotal || !sameHits(gotHits, hits) {
		t.Fatalf("nil cache: (%d, %v) != Route (%d, %v)", gotTotal, gotHits, wantTotal, hits)
	}

	// Pressure far past capacity forces evictions.
	small := NewRouteCache(1)
	for i := 0; i < 64*8; i++ {
		small.RouteCachedPressure(v, attr.NewSet(attr.ID(i%12), attr.ID(i/12)), &sc)
	}
	if st := small.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions after %d inserts into %d slots: %+v", 64*8, st.Capacity, st)
	}
}

// RouteCachedPressure is a test shim so the pressure loop reads as a
// cache method.
func (c *RouteCache) RouteCachedPressure(v *RoutingView, q attr.Set, sc *RouteScratch) {
	v.RouteCached(q, c, sc)
}

// TestRouteCachedHitAllocationFree pins the tentpole's 0-allocs/op
// contract on the steady-state hit path.
func TestRouteCachedHitAllocationFree(t *testing.T) {
	e := newTestEngine(t, 24, 12, 101, nil)
	rng := stats.NewRNG(13)
	v := e.BuildRoutingView(nil)
	c := NewRouteCache(0)
	qs := testQueries(e, rng)
	var sc RouteScratch
	for _, q := range qs {
		v.RouteCached(q, c, &sc) // populate: every further lookup hits
	}
	if avg := testing.AllocsPerRun(100, func() {
		for _, q := range qs {
			v.RouteCached(q, c, &sc)
		}
	}); avg != 0 {
		t.Errorf("cache-hit path allocates %v per run, want 0", avg)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Evictions != 0 {
		t.Fatalf("hit-path run not steady state: %+v", st)
	}
}
