package core

import (
	"math"

	"repro/internal/cluster"
)

// Decision is the outcome of a peer evaluating its relocation options
// at the end of a period T (§3.1).
type Decision struct {
	// Peer is the deciding peer.
	Peer int
	// From is the peer's current cluster.
	From cluster.CID
	// To is the chosen target; meaningful only when Move is true. When
	// NewCluster is set, To is filled in by the protocol with an empty
	// slot at grant time.
	To cluster.CID
	// Gain is the strategy-specific gain value the representatives sort
	// relocation requests by: pgain for selfish peers, clgain for
	// altruistic ones.
	Gain float64
	// Move reports whether the peer wants to relocate at all.
	Move bool
	// NewCluster reports that the peer wants to found a new (empty)
	// cluster rather than join an existing one.
	NewCluster bool
}

// Strategy decides peer relocations. baseline is the peer's individual
// cost recorded at the start of the current period (NaN disables the
// drift-triggered new-cluster rule); allowNew gates new-cluster
// creation (§3.2 — some experiments keep the number of clusters fixed).
type Strategy interface {
	Name() string
	Decide(e *Engine, p int, baseline float64, allowNew bool) Decision
}

// EvalStrategy is implemented by strategies whose decision can run
// through a caller-provided Evaluator. Decide is side-effect-free, so
// workers holding private evaluators may call DecideEval concurrently
// over a frozen engine — the basis of the protocol's parallel phase-1
// scan. DecideEval(e.Eval(), ...) and Decide(e, ...) are the same
// computation; the built-in strategies implement Decide as exactly
// that delegation.
type EvalStrategy interface {
	Strategy
	DecideEval(ev *Evaluator, p int, baseline float64, allowNew bool) Decision
}

// Selfish implements §3.1.1: the peer moves to the cluster minimizing
// its own individual cost; the request gain is
// pgain = pcost(p, c_cur) − pcost(p, c_new).
type Selfish struct {
	// DriftThreshold is how much a peer's cost must have risen since
	// the period baseline before it founds a new cluster when no
	// existing cluster improves its cost (§3.2). The paper calls this
	// "significantly increased"; 0.1 (10% of the cost scale) is our
	// default.
	DriftThreshold float64
}

// NewSelfish returns the selfish strategy with the default drift
// threshold.
func NewSelfish() *Selfish { return &Selfish{DriftThreshold: 0.1} }

// Name implements Strategy.
func (s *Selfish) Name() string { return "selfish" }

// Decide implements Strategy.
func (s *Selfish) Decide(e *Engine, p int, baseline float64, allowNew bool) Decision {
	return s.DecideEval(e.Eval(), p, baseline, allowNew)
}

// DecideEval implements EvalStrategy.
func (s *Selfish) DecideEval(evl *Evaluator, p int, baseline float64, allowNew bool) Decision {
	if d, ok := evl.replayDecision(s, decSelfish, s.DriftThreshold, p, baseline, allowNew); ok {
		return d
	}
	ev := evl.EvaluateMoves(p)
	d := Decision{Peer: p, From: ev.Cur}
	switch {
	case ev.Best != ev.Cur && ev.BestCost < ev.CurCost:
		d.To = ev.Best
		d.Gain = ev.CurCost - ev.BestCost
		d.Move = true
	// No existing cluster improves the cost. Found a new cluster only
	// if cost drifted up significantly since the period baseline and
	// being alone actually helps (§3.2).
	case allowNew && !math.IsNaN(baseline) &&
		ev.CurCost-baseline > s.DriftThreshold &&
		ev.AloneCost < ev.CurCost && evl.e.cfg.Size(ev.Cur) > 1:
		d.Gain = ev.CurCost - ev.AloneCost
		d.Move = true
		d.NewCluster = true
		d.To = cluster.None
	}
	evl.rememberDecision(s, decSelfish, s.DriftThreshold, p, baseline, allowNew, ev.Best, ev.BestCost, 0, d)
	return d
}

// Altruistic implements §3.1.2: the peer moves to the cluster whose
// recall its presence would improve the most, i.e. the cluster it
// contributes the most results to (Eq. 6). The request gain is
// clgain = contribution(p, c_new) − ΔmembershipCost(c_new)
// (see DESIGN.md §5.4 for the sign convention).
type Altruistic struct{}

// NewAltruistic returns the altruistic strategy.
func NewAltruistic() *Altruistic { return &Altruistic{} }

// Name implements Strategy.
func (a *Altruistic) Name() string { return "altruistic" }

// Decide implements Strategy.
func (a *Altruistic) Decide(e *Engine, p int, baseline float64, allowNew bool) Decision {
	return a.DecideEval(e.Eval(), p, baseline, allowNew)
}

// DecideEval implements EvalStrategy.
func (a *Altruistic) DecideEval(evl *Evaluator, p int, _ float64, _ bool) Decision {
	if d, ok := evl.replayDecision(a, decAltruistic, 0, p, 0, false); ok {
		return d
	}
	ev := evl.EvaluateContribution(p)
	d := Decision{Peer: p, From: ev.Cur}
	if ev.Best != ev.Cur {
		gain := ev.BestContribution - ev.CurContribution - evl.DeltaMembership(ev.Best)
		if gain > 0 {
			d.To = ev.Best
			d.Gain = gain
			d.Move = true
		}
	}
	evl.rememberDecision(a, decAltruistic, 0, p, 0, false, ev.Best, ev.BestContribution, evl.demAux, d)
	return d
}

// Hybrid is the strategy the paper sketches as future work (§6): a
// convex combination of the selfish pgain and the altruistic clgain.
// Lambda = 1 degenerates to selfish, Lambda = 0 to altruistic.
type Hybrid struct {
	// Lambda weighs the selfish component.
	Lambda float64
	// DriftThreshold mirrors Selfish.DriftThreshold for the selfish
	// component's new-cluster rule.
	DriftThreshold float64
}

// NewHybrid returns a hybrid strategy with the given selfish weight.
func NewHybrid(lambda float64) *Hybrid {
	if lambda < 0 || lambda > 1 {
		panic("core: hybrid lambda outside [0,1]")
	}
	return &Hybrid{Lambda: lambda, DriftThreshold: 0.1}
}

// Name implements Strategy.
func (h *Hybrid) Name() string { return "hybrid" }

// Decide implements Strategy.
func (h *Hybrid) Decide(e *Engine, p int, baseline float64, allowNew bool) Decision {
	return h.DecideEval(e.Eval(), p, baseline, allowNew)
}

// DecideEval implements EvalStrategy. It scores every non-empty
// cluster by λ·pgain + (1−λ)·clgain and requests the best
// positive-score move.
func (h *Hybrid) DecideEval(evl *Evaluator, p int, _ float64, _ bool) Decision {
	if d, ok := evl.replayDecision(h, decHybrid, h.Lambda, p, 0, false); ok {
		return d
	}
	evl.stats.Evaluated++
	evl.stats.Full++
	e := evl.e
	cur := e.cfg.ClusterOf(p)
	curCost := evl.PeerCost(p, cur)
	curContrib := evl.Contribution(p, cur)
	d := Decision{Peer: p, From: cur}
	bestScore := 0.0
	bestC := cur
	// The private non-empty list stays valid through the loop: PeerCost
	// and Contribution do not refresh it and the configuration does not
	// change during evaluation.
	for _, c := range evl.NonEmpty() {
		if c == cur {
			continue
		}
		pg := curCost - evl.PeerCost(p, c)
		cg := evl.Contribution(p, c) - curContrib - evl.DeltaMembership(c)
		score := h.Lambda*pg + (1-h.Lambda)*cg
		if score > bestScore || (score == bestScore && bestC != cur && c < bestC) {
			bestScore, bestC = score, c
		}
	}
	if bestC != cur && bestScore > 0 {
		d.To = bestC
		d.Gain = bestScore
		d.Move = true
	}
	evl.rememberDecision(h, decHybrid, h.Lambda, p, 0, false, bestC, bestScore, 0, d)
	return d
}
