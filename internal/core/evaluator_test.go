package core

import (
	"sync"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/peer"
	"repro/internal/workload"
)

// evalSystem builds a small mixed system: g groups of perGroup peers,
// each holding and querying its group attribute plus a shared one, so
// clusters have cross-demand and non-trivial best moves.
func evalSystem(t testing.TB, groups, perGroup int) *Engine {
	t.Helper()
	n := groups * perGroup
	vocab := attr.NewVocab()
	shared := vocab.Intern("shared")
	ids := make([]attr.ID, groups)
	for g := range ids {
		ids[g] = vocab.Intern(string(rune('a' + g)))
	}
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	assign := make([]cluster.CID, n)
	for i := 0; i < n; i++ {
		g := i % groups
		p := peer.New(i)
		p.SetItems([]attr.Set{attr.NewSet(ids[g]), attr.NewSet(ids[g], shared)})
		peers[i] = p
		wl.Add(i, attr.NewSet(ids[g]), 2)
		wl.Add(i, attr.NewSet(ids[(g+1)%groups]), 1)
		if i%3 == 0 {
			wl.Add(i, attr.NewSet(shared), 1)
		}
		assign[i] = cluster.CID(i % (groups + 1))
	}
	return New(peers, wl, cluster.FromAssignment(assign), cluster.LinearTheta(), 1)
}

// TestEvaluatorMatchesEngine pins bit-identity: a private Evaluator
// must reproduce every engine evaluation exactly.
func TestEvaluatorMatchesEngine(t *testing.T) {
	eng := evalSystem(t, 4, 5)
	ev := eng.NewEvaluator()
	nonEmpty := eng.Config().NonEmpty()
	for p := 0; p < eng.NumSlots(); p++ {
		if got, want := ev.EvaluateMoves(p), eng.EvaluateMoves(p); got != want {
			t.Fatalf("peer %d: EvaluateMoves %+v vs engine %+v", p, got, want)
		}
		if got, want := ev.EvaluateContribution(p), eng.EvaluateContribution(p); got != want {
			t.Fatalf("peer %d: EvaluateContribution %+v vs engine %+v", p, got, want)
		}
		if got, want := ev.CostAlone(p), eng.CostAlone(p); got != want {
			t.Fatalf("peer %d: CostAlone %v vs %v", p, got, want)
		}
		for _, c := range nonEmpty {
			if got, want := ev.PeerCost(p, c), eng.PeerCost(p, c); got != want {
				t.Fatalf("peer %d cluster %d: PeerCost %v vs %v", p, c, got, want)
			}
			if got, want := ev.Contribution(p, c), eng.Contribution(p, c); got != want {
				t.Fatalf("peer %d cluster %d: Contribution %v vs %v", p, c, got, want)
			}
		}
	}
}

// TestEvaluatorSurvivesEngineMutation pins lazy resizing: an Evaluator
// created before joins, moves and compactions keeps matching the
// engine afterwards.
func TestEvaluatorSurvivesEngineMutation(t *testing.T) {
	eng := evalSystem(t, 3, 4)
	ev := eng.NewEvaluator()
	ev.EvaluateMoves(0) // size scratch against the old geometry

	for i := 0; i < 8; i++ {
		pr := peer.New(-1)
		pr.SetItems([]attr.Set{attr.NewSet(attr.ID(1))})
		pid := eng.AddPeer(pr, []attr.Set{attr.NewSet(attr.ID(500 + i))}, []int{2}, cluster.None)
		if i%2 == 0 {
			eng.RemovePeer(pid)
		}
	}
	eng.Compact(0)
	eng.Move(0, eng.Config().NonEmpty()[0])

	for p := 0; p < eng.NumSlots(); p++ {
		if !eng.IsLive(p) {
			continue
		}
		if got, want := ev.EvaluateMoves(p), eng.EvaluateMoves(p); got != want {
			t.Fatalf("peer %d after mutation: %+v vs %+v", p, got, want)
		}
	}
}

// TestConcurrentEvaluators runs many evaluators over one frozen engine
// at once (meaningful under -race) and checks each against the
// engine's serial answers.
func TestConcurrentEvaluators(t *testing.T) {
	eng := evalSystem(t, 4, 6)
	n := eng.NumSlots()
	want := make([]MoveEval, n)
	wantC := make([]ContributionEval, n)
	for p := 0; p < n; p++ {
		want[p] = eng.EvaluateMoves(p)
		wantC[p] = eng.EvaluateContribution(p)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := eng.NewEvaluator()
			for p := 0; p < n; p++ {
				if got := ev.EvaluateMoves(p); got != want[p] {
					errs <- "EvaluateMoves diverged under concurrency"
					return
				}
				if got := ev.EvaluateContribution(p); got != wantC[p] {
					errs <- "EvaluateContribution diverged under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestDecideEvalMatchesDecide pins the delegation contract for every
// built-in strategy: Decide(e) == DecideEval(private evaluator).
func TestDecideEvalMatchesDecide(t *testing.T) {
	for _, strat := range []EvalStrategy{NewSelfish(), NewAltruistic(), NewHybrid(0.5)} {
		eng := evalSystem(t, 4, 5)
		ev := eng.NewEvaluator()
		for p := 0; p < eng.NumSlots(); p++ {
			base := eng.PeerCost(p, eng.Config().ClusterOf(p))
			got := strat.DecideEval(ev, p, base, true)
			want := strat.Decide(eng, p, base, true)
			if got != want {
				t.Fatalf("%s peer %d: DecideEval %+v vs Decide %+v", strat.Name(), p, got, want)
			}
		}
	}
}

// TestEvaluatorAllocFree pins the steady-state allocation contract of
// the evaluator paths the parallel decide scan runs per peer.
func TestEvaluatorAllocFree(t *testing.T) {
	eng := evalSystem(t, 4, 5)
	ev := eng.NewEvaluator()
	ev.EvaluateMoves(0) // warm scratch
	ev.EvaluateContribution(0)
	avg := testing.AllocsPerRun(100, func() {
		ev.EvaluateMoves(3)
		ev.EvaluateContribution(4)
		ev.PeerCost(5, ev.NonEmpty()[0])
	})
	if avg != 0 {
		t.Fatalf("evaluator steady state allocates %v allocs/op, want 0", avg)
	}
}
