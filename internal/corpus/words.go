// Package corpus generates the synthetic document collection that
// stands in for the Newsgroup articles of the paper's evaluation (§4).
//
// The paper's experiments depend on three properties of the collection:
// (1) documents belong to one of 10 categories and words of a category
// co-occur on peers holding that category, (2) term frequencies are
// skewed (the paper sorts words by frequency after preprocessing), and
// (3) texts pass through a preprocessing pipeline (stop-word removal and
// lemmatization). The generator reproduces all three: each category has
// a disjoint synthetic vocabulary with Zipf-distributed term
// frequencies, plus an optional shared vocabulary, and raw texts are
// salted with stop words and morphological variants so the textproc
// pipeline does real work. Generation is fully deterministic per seed.
package corpus

import (
	"fmt"
	"strings"

	"repro/internal/textproc"
)

// Word construction: purely alphabetic tokens built from
// consonant-vowel syllables, ending in a consonant that the stemmer
// leaves alone, so that canonical words are fixed points of the
// preprocessing pipeline while their morphological variants (word+"s",
// word+"ing", ...) normalize back to them.
const (
	wordConsonants = "bcdfghjkmnpqrtvw" // no 'l','s','z' to dodge stemmer edge rules
	wordVowels     = "aeiou"
)

// categoryConsonant gives each category a distinct leading consonant,
// guaranteeing category vocabularies are disjoint.
func categoryConsonant(cat int) byte {
	return wordConsonants[cat%len(wordConsonants)]
}

// syllable encodes i as a consonant-vowel pair; there are 16*5 = 80
// distinct syllables.
func syllable(i int) string {
	nc, nv := len(wordConsonants), len(wordVowels)
	return string([]byte{wordConsonants[(i/nv)%nc], wordVowels[i%nv]})
}

const syllableSpace = 80 // len(wordConsonants) * len(wordVowels)

// CategoryWord returns the canonical form of word index k of category
// cat. Words are fixed points of textproc.Stem by construction (a test
// asserts this for the whole vocabulary).
func CategoryWord(cat, k int) string {
	var b strings.Builder
	b.WriteByte(categoryConsonant(cat))
	b.WriteByte('a')
	b.WriteString(syllable(k % syllableSpace))
	b.WriteString(syllable((k / syllableSpace) % syllableSpace))
	b.WriteByte('x')
	return b.String()
}

// SharedWord returns the canonical form of shared-vocabulary word k.
// Shared words start with the reserved prefix "zu" (the letter 'z' is
// excluded from category consonants), so they never collide with any
// category word.
func SharedWord(k int) string {
	var b strings.Builder
	b.WriteString("zu")
	b.WriteString(syllable(k % syllableSpace))
	b.WriteString(syllable((k / syllableSpace) % syllableSpace))
	b.WriteByte('x')
	return b.String()
}

// morphVariants lists suffixes used to inflect canonical words in raw
// text; the textproc stemmer maps every variant back to the canonical
// word (asserted by tests).
var morphVariants = []string{"", "s", "ing", "ed", "ly"}

// inflect applies variant v to word w.
func inflect(w string, v int) string {
	return w + morphVariants[v%len(morphVariants)]
}

// verifyStable panics if w is not a fixed point of the preprocessing
// pipeline; used by the generator constructor to validate configuration
// up front rather than corrupting an experiment silently.
func verifyStable(w string) {
	if textproc.Stem(w) != w || textproc.IsStopword(w) {
		panic(fmt.Sprintf("corpus: word %q is not preprocessing-stable", w))
	}
	for v := range morphVariants {
		got := textproc.Stem(inflect(w, v))
		if got != w {
			panic(fmt.Sprintf("corpus: variant %q of %q stems to %q", inflect(w, v), w, got))
		}
	}
}
