package corpus

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/textproc"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.VocabPerCategory = 100
	cfg.WordsPerDoc = 25
	return cfg
}

func TestVocabularyIsPreprocessingStable(t *testing.T) {
	// Every canonical word and every morphological variant must
	// normalize back to the canonical form under the full pipeline.
	for cat := 0; cat < 10; cat++ {
		for k := 0; k < 200; k++ {
			w := CategoryWord(cat, k)
			if textproc.Stem(w) != w {
				t.Fatalf("word %q not a stemmer fixed point", w)
			}
			for v := range morphVariants {
				if got := textproc.Stem(inflect(w, v)); got != w {
					t.Fatalf("variant %q of %q stems to %q", inflect(w, v), w, got)
				}
			}
		}
	}
	for k := 0; k < 100; k++ {
		w := SharedWord(k)
		if textproc.Stem(w) != w {
			t.Fatalf("shared word %q not stable", w)
		}
	}
}

func TestVocabularyDisjointness(t *testing.T) {
	seen := map[string][2]int{}
	for cat := 0; cat < 10; cat++ {
		for k := 0; k < 300; k++ {
			w := CategoryWord(cat, k)
			if prev, dup := seen[w]; dup {
				t.Fatalf("word %q collides: cat%d/k%d and cat%d/k%d", w, prev[0], prev[1], cat, k)
			}
			seen[w] = [2]int{cat, k}
		}
	}
	for k := 0; k < 100; k++ {
		w := SharedWord(k)
		if _, dup := seen[w]; dup {
			t.Fatalf("shared word %q collides with a category word", w)
		}
		if !strings.HasPrefix(w, "zu") {
			t.Fatalf("shared word %q lacks the reserved prefix", w)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(testConfig(), 5)
	b := NewGenerator(testConfig(), 5)
	for i := 0; i < 20; i++ {
		da := a.Document(i % 10)
		db := b.Document(i % 10)
		if da.Text != db.Text {
			t.Fatalf("doc %d diverged", i)
		}
		if !da.Terms.Equal(db.Terms) {
			t.Fatalf("doc %d terms diverged", i)
		}
	}
}

func TestDocumentTermsBelongToCategory(t *testing.T) {
	cfg := testConfig()
	cfg.SharedFraction = 0
	g := NewGenerator(cfg, 7)
	for cat := 0; cat < cfg.Categories; cat++ {
		doc := g.Document(cat)
		if doc.Category != cat {
			t.Fatalf("doc category %d want %d", doc.Category, cat)
		}
		if doc.Terms.Len() == 0 {
			t.Fatalf("empty document for category %d", cat)
		}
		for _, id := range doc.Terms.IDs() {
			c, ok := g.CategoryOf(id)
			if !ok || c != cat {
				t.Fatalf("category-%d doc contains foreign term %q (cat %d, ok=%v)",
					cat, g.Vocab().Name(id), c, ok)
			}
		}
	}
}

func TestSharedFractionIntroducesSharedTerms(t *testing.T) {
	cfg := testConfig()
	cfg.SharedFraction = 0.5
	g := NewGenerator(cfg, 9)
	sharedSeen := false
	for i := 0; i < 10 && !sharedSeen; i++ {
		doc := g.Document(0)
		for _, id := range doc.Terms.IDs() {
			if _, ok := g.CategoryOf(id); !ok {
				sharedSeen = true
				break
			}
		}
	}
	if !sharedSeen {
		t.Fatal("no shared-vocabulary term in 10 documents at fraction 0.5")
	}
}

func TestRawTextExercisesPipeline(t *testing.T) {
	cfg := testConfig()
	cfg.StopNoise = 2 // heavy stop-word salting
	cfg.MorphNoise = 1
	g := NewGenerator(cfg, 11)
	doc := g.Document(3)
	toks := textproc.Tokenize(doc.Text)
	stops, inflected := 0, 0
	for _, tok := range toks {
		if textproc.IsStopword(tok) {
			stops++
		} else if textproc.Stem(tok) != tok {
			inflected++
		}
	}
	if stops == 0 {
		t.Error("no stop words in raw text despite StopNoise")
	}
	if inflected == 0 {
		t.Error("no inflected forms in raw text despite MorphNoise")
	}
}

func TestQueryWordRNGInVocabulary(t *testing.T) {
	g := NewGenerator(testConfig(), 13)
	rng := stats.NewRNG(1)
	for i := 0; i < 100; i++ {
		id := g.QueryWordRNG(4, rng)
		c, ok := g.CategoryOf(id)
		if !ok || c != 4 {
			t.Fatalf("query word from wrong category: %v %v", c, ok)
		}
	}
}

func TestWordRank(t *testing.T) {
	g := NewGenerator(testConfig(), 15)
	if g.Vocab().Name(g.WordRank(2, 0)) != CategoryWord(2, 0) {
		t.Fatal("WordRank mismatch")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	cases := []Config{
		{Categories: 0, VocabPerCategory: 10, WordsPerDoc: 5},
		{Categories: 100, VocabPerCategory: 10, WordsPerDoc: 5},
		{Categories: 5, VocabPerCategory: 0, WordsPerDoc: 5},
		{Categories: 5, VocabPerCategory: 10, WordsPerDoc: 0},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			NewGenerator(cfg, 1)
		}()
	}
}

func TestCategoryOfSharedWord(t *testing.T) {
	g := NewGenerator(testConfig(), 17)
	rng := stats.NewRNG(2)
	doc := g.DocumentRNG(0, rng)
	_ = doc
	id := g.shWords[0]
	if _, ok := g.CategoryOf(id); ok {
		t.Fatal("shared word attributed to a category")
	}
}
