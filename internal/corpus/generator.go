package corpus

import (
	"fmt"
	"strings"

	"repro/internal/attr"
	"repro/internal/stats"
	"repro/internal/textproc"
)

// Config parametrizes the synthetic collection.
type Config struct {
	// Categories is the number of topical categories (the paper uses 10).
	Categories int
	// VocabPerCategory is the number of distinct canonical words per
	// category.
	VocabPerCategory int
	// SharedVocab is the number of canonical words shared across all
	// categories (topic-neutral vocabulary). May be zero.
	SharedVocab int
	// WordsPerDoc is the number of content words sampled per document.
	WordsPerDoc int
	// TermZipfS is the Zipf exponent of term frequencies within a
	// category vocabulary.
	TermZipfS float64
	// SharedFraction is the probability that a sampled content word is
	// drawn from the shared vocabulary instead of the category one.
	SharedFraction float64
	// MorphNoise is the probability a word appears inflected
	// (plural, -ing, -ed, -ly) in the raw text.
	MorphNoise float64
	// StopNoise is the expected number of stop words inserted per
	// content word in the raw text.
	StopNoise float64
}

// DefaultConfig mirrors the paper's setting: 10 categories, a few
// hundred words each, moderately skewed term frequencies.
func DefaultConfig() Config {
	return Config{
		Categories:       10,
		VocabPerCategory: 200,
		SharedVocab:      50,
		WordsPerDoc:      60,
		TermZipfS:        0.9,
		SharedFraction:   0.1,
		MorphNoise:       0.3,
		StopNoise:        0.5,
	}
}

// Document is one synthetic article.
type Document struct {
	// Category is the topical category the document was generated from.
	Category int
	// Text is the raw text, pre-preprocessing (contains stop words and
	// inflected forms).
	Text string
	// Terms is the document's attribute set after the full textproc
	// pipeline, interned against the generator's vocabulary.
	Terms attr.Set
}

// Generator produces documents and query words deterministically from a
// seed. It owns the attr.Vocab shared by all documents it generates.
type Generator struct {
	cfg     Config
	vocab   *attr.Vocab
	rng     *stats.RNG
	catDist *stats.Zipf
	shDist  *stats.Zipf

	// catWords[c][k] is the interned ID of category c's k-th word;
	// sorted by decreasing expected frequency (rank order).
	catWords [][]attr.ID
	shWords  []attr.ID
}

// NewGenerator validates cfg and builds the category vocabularies.
func NewGenerator(cfg Config, seed uint64) *Generator {
	if cfg.Categories <= 0 || cfg.Categories > len(wordConsonants) {
		panic(fmt.Sprintf("corpus: Categories=%d outside [1,%d]", cfg.Categories, len(wordConsonants)))
	}
	if cfg.VocabPerCategory <= 0 || cfg.VocabPerCategory > syllableSpace*syllableSpace {
		panic(fmt.Sprintf("corpus: VocabPerCategory=%d out of range", cfg.VocabPerCategory))
	}
	if cfg.WordsPerDoc <= 0 {
		panic("corpus: WordsPerDoc must be positive")
	}
	g := &Generator{
		cfg:     cfg,
		vocab:   attr.NewVocab(),
		rng:     stats.NewRNG(seed),
		catDist: stats.NewZipf(cfg.VocabPerCategory, cfg.TermZipfS),
	}
	if cfg.SharedVocab > 0 {
		g.shDist = stats.NewZipf(cfg.SharedVocab, cfg.TermZipfS)
	}
	g.catWords = make([][]attr.ID, cfg.Categories)
	for c := 0; c < cfg.Categories; c++ {
		g.catWords[c] = make([]attr.ID, cfg.VocabPerCategory)
		for k := 0; k < cfg.VocabPerCategory; k++ {
			w := CategoryWord(c, k)
			verifyStable(w)
			g.catWords[c][k] = g.vocab.Intern(w)
		}
	}
	g.shWords = make([]attr.ID, cfg.SharedVocab)
	for k := 0; k < cfg.SharedVocab; k++ {
		w := SharedWord(k)
		verifyStable(w)
		g.shWords[k] = g.vocab.Intern(w)
	}
	return g
}

// Vocab returns the vocabulary shared by all generated documents.
func (g *Generator) Vocab() *attr.Vocab { return g.vocab }

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Document generates one article of the given category using the
// generator's own RNG stream.
func (g *Generator) Document(category int) Document {
	return g.DocumentRNG(category, g.rng)
}

// DocumentRNG generates one article of the given category using rng,
// allowing callers to carve independent deterministic streams.
func (g *Generator) DocumentRNG(category int, rng *stats.RNG) Document {
	if category < 0 || category >= g.cfg.Categories {
		panic(fmt.Sprintf("corpus: category %d out of range [0,%d)", category, g.cfg.Categories))
	}
	var raw strings.Builder
	for i := 0; i < g.cfg.WordsPerDoc; i++ {
		var w string
		if g.shDist != nil && rng.Bool(g.cfg.SharedFraction) {
			w = SharedWord(g.shDist.Sample(rng))
		} else {
			w = CategoryWord(category, g.catDist.Sample(rng))
		}
		if rng.Bool(g.cfg.MorphNoise) {
			w = inflect(w, 1+rng.Intn(len(morphVariants)-1))
		}
		if i > 0 {
			raw.WriteByte(' ')
		}
		raw.WriteString(w)
		// Salt with stop words so the pipeline's filter has work to do.
		for rng.Bool(g.cfg.StopNoise / (1 + g.cfg.StopNoise)) {
			raw.WriteByte(' ')
			raw.WriteString(textproc.StopwordAt(rng.Intn(textproc.StopwordCount())))
		}
	}
	text := raw.String()
	terms := textproc.UniqueTerms(text)
	ids := make([]attr.ID, 0, len(terms))
	for _, t := range terms {
		// Every canonical word was interned at construction; anything
		// unseen would indicate pipeline drift, which we want loudly.
		id, ok := g.vocab.Lookup(t)
		if !ok {
			panic(fmt.Sprintf("corpus: processed term %q missing from vocabulary", t))
		}
		ids = append(ids, id)
	}
	return Document{Category: category, Text: text, Terms: attr.NewSet(ids...)}
}

// QueryWordRNG samples a category word with the same Zipf skew used for
// document generation — the paper generates queries "by choosing a
// random word from the texts", so frequent words are queried more.
func (g *Generator) QueryWordRNG(category int, rng *stats.RNG) attr.ID {
	return g.catWords[category][g.catDist.Sample(rng)]
}

// WordRank returns the interned ID of category cat's rank-k word
// (rank 0 = most frequent).
func (g *Generator) WordRank(cat, k int) attr.ID {
	return g.catWords[cat][k]
}

// CategoryOf returns the category owning id and true, or 0,false for
// shared-vocabulary attributes.
func (g *Generator) CategoryOf(id attr.ID) (int, bool) {
	name := g.vocab.Name(id)
	if strings.HasPrefix(name, "zu") {
		return 0, false
	}
	c := strings.IndexByte(wordConsonants, name[0])
	if c < 0 || c >= g.cfg.Categories {
		return 0, false
	}
	return c, true
}
