package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/viewwire"
)

// rawDo issues one request with a raw string body and returns status,
// body and headers.
func rawDo(t *testing.T, ts *httptest.Server, method, path, body string) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

// TestV1ErrorEnvelope pins the error contract, table-driven across
// every handler-rejected request: each failure is exactly the
// {"error":{"code","message"}} envelope, with the documented stable
// code and the documented status — on the v1 route and byte-identical
// on its legacy alias.
func TestV1ErrorEnvelope(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	doJSON(t, ts, "POST", "/v1/peers", joinBody(0, 0), http.StatusCreated)

	bigBatch := batchRequest{Queries: make([]queryRequest, maxBatchQueries+1)}
	for i := range bigBatch.Queries {
		bigBatch.Queries[i] = queryRequest{Terms: []string{"c0-t0"}}
	}
	bigBatchBody, _ := json.Marshal(bigBatch)

	cases := []struct {
		name       string
		method     string
		path       string // v1 path; legacy alias derived by trimming /v1
		body       string
		wantStatus int
		wantCode   string
	}{
		{"query bad json", "POST", "/v1/query", `{"terms":`, http.StatusBadRequest, api.CodeBadJSON},
		{"query unknown field", "POST", "/v1/query", `{"terms":["x"],"bogus":1}`, http.StatusBadRequest, api.CodeBadJSON},
		{"query trailing data", "POST", "/v1/query", `{"terms":["x"]} garbage`, http.StatusBadRequest, api.CodeBadJSON},
		{"query no terms", "POST", "/v1/query", `{"terms":[]}`, http.StatusBadRequest, api.CodeEmptyQuery},
		{"query body too large", "POST", "/v1/query",
			fmt.Sprintf(`{"terms":["%s"]}`, strings.Repeat("x", maxBodyBytes+1)),
			http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge},
		{"batch no queries", "POST", "/v1/query/batch", `{"queries":[]}`, http.StatusBadRequest, api.CodeEmptyBatch},
		{"batch element no terms", "POST", "/v1/query/batch", `{"queries":[{"terms":[]}]}`, http.StatusBadRequest, api.CodeEmptyQuery},
		{"batch too large", "POST", "/v1/query/batch", string(bigBatchBody), http.StatusRequestEntityTooLarge, api.CodeBatchTooLarge},
		{"join query no terms", "POST", "/v1/peers", `{"items":[],"queries":[{"terms":[],"count":1}]}`, http.StatusBadRequest, api.CodeEmptyQuery},
		{"join bad count", "POST", "/v1/peers", `{"items":[],"queries":[{"terms":["x"],"count":0}]}`, http.StatusBadRequest, api.CodeBadQueryCount},
		{"peer id not a number", "GET", "/v1/peers/xyz", "", http.StatusBadRequest, api.CodeBadPeerID},
		{"peer not found", "GET", "/v1/peers/999", "", http.StatusNotFound, api.CodePeerNotFound},
		{"peer delete not found", "DELETE", "/v1/peers/999", "", http.StatusNotFound, api.CodePeerNotFound},
		{"watch bad seq", "GET", "/v1/view/watch?seq=abc", "", http.StatusBadRequest, api.CodeBadParam},
		{"watch bad pop", "GET", "/v1/view/watch?pop=-3", "", http.StatusBadRequest, api.CodeBadParam},
		{"watch bad timeout", "GET", "/v1/view/watch?timeout_ms=nope", "", http.StatusBadRequest, api.CodeBadParam},
		{"watch negative timeout", "GET", "/v1/view/watch?timeout_ms=-1", "", http.StatusBadRequest, api.CodeBadParam},
		{"watch timeout beyond int64", "GET", "/v1/view/watch?timeout_ms=9223372036854775808", "", http.StatusBadRequest, api.CodeBadParam},
		{"replog bad timeout", "GET", "/v1/replog/watch?timeout_ms=nope", "", http.StatusBadRequest, api.CodeBadParam},
		{"replog negative timeout", "GET", "/v1/replog/watch?timeout_ms=-1", "", http.StatusBadRequest, api.CodeBadParam},
		{"replog timeout beyond int64", "GET", "/v1/replog/watch?timeout_ms=9223372036854775808", "", http.StatusBadRequest, api.CodeBadParam},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := rawDo(t, ts, tc.method, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", status, tc.wantStatus, body)
			}
			var env struct {
				Error *api.ErrorInfo `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
				t.Fatalf("response is not the error envelope: %s (%v)", body, err)
			}
			if env.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
			// The envelope must be exactly {"error":{...}} with only
			// code and message inside.
			var shape map[string]map[string]any
			if err := json.Unmarshal(body, &shape); err != nil || len(shape) != 1 || len(shape["error"]) != 2 {
				t.Fatalf("envelope shape: %s", body)
			}
			// The deprecated alias answers byte-identically (view/watch
			// and replog/watch are v1-only).
			legacy := strings.TrimPrefix(tc.path, "/v1")
			if strings.HasPrefix(legacy, "/view/") || strings.HasPrefix(legacy, "/replog/") {
				return
			}
			lstatus, lbody, lhdr := rawDo(t, ts, tc.method, legacy, tc.body)
			if lstatus != status || string(lbody) != string(body) {
				t.Fatalf("legacy alias diverged: %d %s vs %d %s", lstatus, lbody, status, body)
			}
			if lhdr.Get("Deprecation") == "" {
				t.Fatal("legacy alias missing Deprecation header")
			}
		})
	}
}

// TestLegacyAliasEquivalence pins that the unprefixed routes are pure
// aliases: same bytes for successful responses, Deprecation header on
// the alias only, and both spellings land in the same stats entry.
func TestLegacyAliasEquivalence(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 4; i++ {
		doJSON(t, ts, "POST", "/v1/peers", joinBody(i%2, i), http.StatusCreated)
	}

	body := `{"terms":["c0-t0"]}`
	v1Status, v1Body, v1Hdr := rawDo(t, ts, "POST", "/v1/query", body)
	lgStatus, lgBody, lgHdr := rawDo(t, ts, "POST", "/query", body)
	if v1Status != http.StatusOK || lgStatus != http.StatusOK || string(v1Body) != string(lgBody) {
		t.Fatalf("alias answers diverged: %d %s vs %d %s", v1Status, v1Body, lgStatus, lgBody)
	}
	if v1Hdr.Get("Deprecation") != "" {
		t.Fatal("v1 route carries a Deprecation header")
	}
	if lgHdr.Get("Deprecation") == "" {
		t.Fatal("legacy route missing Deprecation header")
	}

	st := doJSON(t, ts, "GET", "/v1/stats", nil, http.StatusOK)
	q := st["endpoints"].(map[string]any)["query"].(map[string]any)
	if got := q["requests"].(float64); got != 2 {
		t.Fatalf("alias and v1 should share one metrics entry: requests = %v, want 2", got)
	}
	if q["route"] != "POST /v1/query" {
		t.Fatalf("stats route = %v, want POST /v1/query", q["route"])
	}
}

// TestStatsEndpointRoutes pins satellite (c): every per-endpoint stats
// entry names its canonical v1 route.
func TestStatsEndpointRoutes(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st := doJSON(t, ts, "GET", "/v1/stats", nil, http.StatusOK)
	eps := st["endpoints"].(map[string]any)
	want := map[string]string{
		"query":        "POST /v1/query",
		"query_batch":  "POST /v1/query/batch",
		"stats":        "GET /v1/stats",
		"peers_join":   "POST /v1/peers",
		"peers_get":    "GET /v1/peers/{id}",
		"peers_leave":  "DELETE /v1/peers/{id}",
		"reform":       "POST /v1/reform",
		"compact":      "POST /v1/compact",
		"snapshot":     "GET /v1/snapshot",
		"view_watch":   "GET /v1/view/watch",
		"replog_watch": "GET /v1/replog/watch",
		"promote":      "POST /v1/promote",
	}
	if len(eps) != len(want) {
		t.Fatalf("%d endpoint entries, want %d", len(eps), len(want))
	}
	for name, route := range want {
		ep, ok := eps[name].(map[string]any)
		if !ok {
			t.Fatalf("missing endpoint entry %q", name)
		}
		if ep["route"] != route {
			t.Errorf("endpoint %q route = %v, want %q", name, ep["route"], route)
		}
	}
}

// watchRecord long-polls /v1/view/watch once and decodes the record.
func watchRecord(t *testing.T, ts *httptest.Server, query string) (viewwire.Record, int) {
	t.Helper()
	status, body, hdr := rawDo(t, ts, "GET", "/v1/view/watch"+query, "")
	if status != http.StatusOK {
		return viewwire.Record{}, status
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("watch content type %q", ct)
	}
	rec, err := viewwire.Decode(body)
	if err != nil {
		t.Fatalf("watch record does not decode: %v", err)
	}
	return rec, status
}

// TestViewWatchDeltaOnPureRelocation is the acceptance pin for the
// replication feed: first contact yields a full record; a maintenance
// period that only relocates peers (no membership change) advances the
// subscriber with a DELTA record on the same population version; a
// membership change forces the next record back to a full resync.
func TestViewWatchDeltaOnPureRelocation(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 12; i++ {
		doJSON(t, ts, "POST", "/v1/peers", joinBody(i%3, i/3), http.StatusCreated)
	}

	// First contact: full record at the current position.
	full, status := watchRecord(t, ts, "")
	if status != http.StatusOK || full.Kind != viewwire.KindFull {
		t.Fatalf("first contact: status %d kind %d, want 200/full", status, full.Kind)
	}
	if _, err := core.FromViewData(full.View); err != nil {
		t.Fatalf("full record rejected by view validation: %v", err)
	}

	// A maintenance period relocates peers but changes no membership:
	// the subscriber's next record must be a pure-relocation delta.
	rpt := doJSON(t, ts, "POST", "/v1/reform", nil, http.StatusOK)
	if rpt["moves"].(float64) == 0 {
		t.Fatal("reform granted no moves; the fixture no longer exercises relocation")
	}
	rec, status := watchRecord(t, ts, fmt.Sprintf("?seq=%d&pop=%d", full.Seq, full.PopVersion))
	if status != http.StatusOK {
		t.Fatalf("watch after reform: status %d", status)
	}
	if rec.Kind != viewwire.KindDelta {
		t.Fatalf("pure-relocation reform shipped record kind %d, want delta", rec.Kind)
	}
	if rec.PopVersion != full.PopVersion {
		t.Fatalf("delta pop %d, want %d", rec.PopVersion, full.PopVersion)
	}
	if rec.Seq <= full.Seq || len(rec.Moves) == 0 {
		t.Fatalf("delta seq %d (base %d) with %d moves", rec.Seq, full.Seq, len(rec.Moves))
	}
	st := doJSON(t, ts, "GET", "/v1/stats", nil, http.StatusOK)
	if st["watch_delta"].(float64) == 0 {
		t.Fatal("stats watch_delta still zero after a delta record")
	}

	// Membership change: the same subscriber position now requires a
	// full resync on the new population version.
	doJSON(t, ts, "POST", "/v1/peers", joinBody(1, 7), http.StatusCreated)
	rec2, status := watchRecord(t, ts, fmt.Sprintf("?seq=%d&pop=%d", rec.Seq, rec.PopVersion))
	if status != http.StatusOK || rec2.Kind != viewwire.KindFull {
		t.Fatalf("after membership change: status %d kind %d, want 200/full", status, rec2.Kind)
	}
	if rec2.PopVersion == rec.PopVersion {
		t.Fatal("population version did not move across a join")
	}
}

// TestViewWatchLongPoll pins the blocking behavior: an up-to-date
// watcher times out with 204, and a watcher blocked mid-poll is woken
// by the next publication.
func TestViewWatchLongPoll(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	doJSON(t, ts, "POST", "/v1/peers", joinBody(0, 0), http.StatusCreated)

	cur, _ := watchRecord(t, ts, "")
	pos := fmt.Sprintf("?seq=%d&pop=%d", cur.Seq, cur.PopVersion)

	status, body, _ := rawDo(t, ts, "GET", "/v1/view/watch"+pos+"&timeout_ms=30", "")
	if status != http.StatusNoContent {
		t.Fatalf("up-to-date watcher: status %d (%s), want 204", status, body)
	}

	type result struct {
		rec    viewwire.Record
		status int
	}
	done := make(chan result, 1)
	go func() {
		rec, status := watchRecord(t, ts, pos+"&timeout_ms=5000")
		done <- result{rec, status}
	}()
	// Give the poller time to block, then publish via a join.
	time.Sleep(20 * time.Millisecond)
	doJSON(t, ts, "POST", "/v1/peers", joinBody(1, 1), http.StatusCreated)
	select {
	case r := <-done:
		if r.status != http.StatusOK || r.rec.Kind != viewwire.KindFull {
			t.Fatalf("woken watcher: status %d kind %d, want 200/full (join bumps pop)", r.status, r.rec.Kind)
		}
		if r.rec.Seq <= cur.Seq {
			t.Fatalf("woken watcher seq %d, base %d", r.rec.Seq, cur.Seq)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("watcher not woken by publication")
	}
}
