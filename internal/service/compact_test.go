package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// rawJSON fetches a response body verbatim, for byte-identity pins.
func rawJSON(t *testing.T, srv *httptest.Server, method, path string, body any) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d: %s", method, path, resp.StatusCode, out)
	}
	return out
}

// floodNovel churns `n` throwaway peers through the daemon, each
// issuing two queries never seen before (and never again): the
// open-ended novel-query pattern that grows the interned query set.
func floodNovel(t *testing.T, ts *httptest.Server, cycle, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		term := func(k int) string { return fmt.Sprintf("novel-%d-%d-%d", cycle, i, k) }
		req := joinRequest{
			Items:   [][]string{{term(0), term(1)}},
			Queries: []queryCount{{Terms: []string{term(0)}, Count: 2}, {Terms: []string{term(2)}, Count: 1}},
		}
		resp := doJSON(t, ts, "POST", "/peers", req, http.StatusCreated)
		doJSON(t, ts, "DELETE", fmt.Sprintf("/peers/%d", int(resp["id"].(float64))), nil, http.StatusOK)
	}
}

// TestCompactEndpointSurvivesFloods is the end-to-end acceptance pin:
// a stable population plus repeated novel-query floods, compacted
// through POST /compact across three cycles. Query answers must be
// byte-identical through every compaction, the interned query count
// must return to the same live floor each cycle (bounded memory), and
// a snapshot/restore after the last cycle must serve identical state.
func TestCompactEndpointSurvivesFloods(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Stable population: 9 peers across 3 categories.
	for i := 0; i < 9; i++ {
		doJSON(t, ts, "POST", "/peers", joinBody(i%3, i/3), http.StatusCreated)
	}
	doJSON(t, ts, "POST", "/reform", nil, http.StatusOK)

	probes := []queryRequest{
		{Terms: []string{"c0-t0"}},
		{Terms: []string{"c1-t1"}},
		{Terms: []string{"c2-t2"}},
	}
	probe := func() [][]byte {
		var out [][]byte
		for _, q := range probes {
			out = append(out, rawJSON(t, ts, "POST", "/query", q))
		}
		return out
	}
	baseline := probe()
	baseQueries := int(doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)["queries"].(float64))

	var floor []int
	for cycle := 1; cycle <= 3; cycle++ {
		floodNovel(t, ts, cycle, 30)
		st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
		if grown := int(st["queries"].(float64)); grown <= baseQueries {
			t.Fatalf("cycle %d: flood did not grow the query set (%d <= %d)", cycle, grown, baseQueries)
		}
		before := probe()
		scost := st["scost"].(float64)

		comp := doJSON(t, ts, "POST", "/compact", nil, http.StatusOK)
		if comp["removed"].(float64) == 0 {
			t.Fatalf("cycle %d: compaction removed nothing", cycle)
		}
		if got := int(comp["compactions"].(float64)); got != cycle {
			t.Fatalf("cycle %d: compaction generation %d", cycle, got)
		}

		after := probe()
		for i := range before {
			if !bytes.Equal(before[i], after[i]) {
				t.Fatalf("cycle %d: query %d answer changed across compaction:\n%s\n%s",
					cycle, i, before[i], after[i])
			}
			if !bytes.Equal(baseline[i], after[i]) {
				t.Fatalf("cycle %d: query %d answer drifted from baseline", cycle, i)
			}
		}
		st = doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
		if got := st["scost"].(float64); got != scost {
			t.Fatalf("cycle %d: scost changed across compaction: %v -> %v", cycle, scost, got)
		}
		floor = append(floor, int(st["queries"].(float64)))
	}
	// Bounded memory: every cycle compacts back to the same live floor.
	for i := 1; i < len(floor); i++ {
		if floor[i] != floor[0] {
			t.Fatalf("query floor drifts across cycles: %v", floor)
		}
	}
	if floor[0] != baseQueries {
		t.Fatalf("compacted floor %d != live query set %d", floor[0], baseQueries)
	}

	// Snapshot -> restore: identical peers, costs, answers, generation.
	var snap Snapshot
	if err := json.Unmarshal(rawJSON(t, ts, "GET", "/snapshot", nil), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Compactions != 3 {
		t.Fatalf("snapshot records generation %d, want 3", snap.Compactions)
	}
	restored, err := NewFromSnapshot(Config{}, &snap)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(restored.Handler())
	defer ts2.Close()
	for i, q := range probes {
		if got := rawJSON(t, ts2, "POST", "/query", q); !bytes.Equal(got, baseline[i]) {
			t.Fatalf("restored daemon answers query %d differently:\n%s\n%s", i, got, baseline[i])
		}
	}
	st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
	st2 := doJSON(t, ts2, "GET", "/stats", nil, http.StatusOK)
	for _, k := range []string{"peers", "slots", "clusters", "queries", "compactions"} {
		if st[k] != st2[k] {
			t.Fatalf("restored stats[%q] = %v, want %v", k, st2[k], st[k])
		}
	}
	// The restored engine computes costs by a fresh rebuild; the live
	// one accumulated them incrementally through the churn, so they
	// agree to the membership tolerance, not bit-for-bit.
	for _, k := range []string{"scost", "wcost"} {
		a, b := st[k].(float64), st2[k].(float64)
		if d := a - b; d > 1e-9 || d < -1e-9 {
			t.Fatalf("restored stats[%q] = %v, want %v", k, b, a)
		}
	}
}

// TestCompactTickerAndReformTrigger pins the automatic paths: the
// dead-ratio threshold fires from the compaction ticker, and — with
// the ticker disabled — from the check after each maintenance period.
func TestCompactTickerAndReformTrigger(t *testing.T) {
	t.Run("ticker", func(t *testing.T) {
		s := New(Config{CompactEvery: 2 * time.Millisecond, CompactMinQueries: 1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		s.Start()
		defer s.Shutdown()

		for i := 0; i < 4; i++ {
			doJSON(t, ts, "POST", "/peers", joinBody(i%2, i), http.StatusCreated)
		}
		floodNovel(t, ts, 0, 20)
		// The ticker may already have fired mid-flood; the stable
		// invariant is the policy's own: compactions happened, and the
		// dead ratio ends at or below the threshold (stragglers under
		// it are by design not worth a remap).
		deadline := time.Now().Add(2 * time.Second)
		for {
			st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
			if st["compactions"].(float64) > 0 &&
				st["dead_queries"].(float64) <= 0.5*st["queries"].(float64) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("compaction ticker never enforced the policy: %v", st)
			}
			time.Sleep(time.Millisecond)
		}
	})
	t.Run("reform", func(t *testing.T) {
		s := New(Config{CompactMinQueries: 1})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for i := 0; i < 4; i++ {
			doJSON(t, ts, "POST", "/peers", joinBody(i%2, i), http.StatusCreated)
		}
		floodNovel(t, ts, 0, 20)
		doJSON(t, ts, "POST", "/reform", nil, http.StatusOK)
		st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
		if st["compactions"].(float64) == 0 || st["dead_queries"].(float64) != 0 {
			t.Fatalf("maintenance-period compaction check did not fire: %v", st)
		}
	})
}
