package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"
)

func doJSON(t *testing.T, srv *httptest.Server, method, path string, body any, wantCode int) map[string]any {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode: %v", method, path, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d want %d (%v)", method, path, resp.StatusCode, wantCode, out)
	}
	return out
}

func joinBody(cat int, doc int) joinRequest {
	// Three terms per item, category-prefixed so clusters can form.
	term := func(i int) string { return fmt.Sprintf("c%d-t%d", cat, (doc+i)%5) }
	return joinRequest{
		Items:   [][]string{{term(0), term(1)}, {term(1), term(2)}},
		Queries: []queryCount{{Terms: []string{term(0)}, Count: 3}, {Terms: []string{term(2)}, Count: 2}},
	}
}

// TestServeLifecycle drives the acceptance cycle end to end over HTTP:
// join -> query -> reform -> leave -> snapshot -> restore, with the
// restored daemon serving identical peers, clusters and costs.
func TestServeLifecycle(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Join 9 peers across 3 categories.
	ids := make([]int, 0, 9)
	for i := 0; i < 9; i++ {
		resp := doJSON(t, ts, "POST", "/peers", joinBody(i%3, i/3), http.StatusCreated)
		ids = append(ids, int(resp["id"].(float64)))
	}
	if got := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK); got["peers"].(float64) != 9 {
		t.Fatalf("stats peers = %v, want 9", got["peers"])
	}

	// Query: results for a category-0 term must exist and recall must
	// sum to 1 across clusters.
	q := doJSON(t, ts, "POST", "/query", queryRequest{Terms: []string{"c0-t0"}}, http.StatusOK)
	if q["total"].(float64) <= 0 {
		t.Fatalf("query found no results: %v", q)
	}
	var recall float64
	for _, hit := range q["clusters"].([]any) {
		recall += hit.(map[string]any)["recall"].(float64)
	}
	if math.Abs(recall-1) > 1e-9 {
		t.Fatalf("cluster recall sums to %g, want 1", recall)
	}
	// Unknown terms yield an empty result, not an error.
	if q := doJSON(t, ts, "POST", "/query", queryRequest{Terms: []string{"nope"}}, http.StatusOK); q["total"].(float64) != 0 {
		t.Fatalf("unknown term matched: %v", q)
	}

	// Maintenance integrates the singleton joiners into clusters.
	doJSON(t, ts, "POST", "/reform", nil, http.StatusOK)
	st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
	if st["clusters"].(float64) >= 9 {
		t.Fatalf("reform did not merge singletons: %v clusters", st["clusters"])
	}

	// One peer leaves; its slot shows up in slots but not peers.
	doJSON(t, ts, "DELETE", fmt.Sprintf("/peers/%d", ids[4]), nil, http.StatusOK)
	doJSON(t, ts, "GET", fmt.Sprintf("/peers/%d", ids[4]), nil, http.StatusNotFound)
	doJSON(t, ts, "DELETE", fmt.Sprintf("/peers/%d", ids[4]), nil, http.StatusNotFound)
	st = doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
	if st["peers"].(float64) != 8 || st["slots"].(float64) != 9 {
		t.Fatalf("after leave: peers=%v slots=%v, want 8/9", st["peers"], st["slots"])
	}
	scost := st["scost"].(float64)

	// Snapshot over HTTP, restore into a fresh daemon: identical state.
	var snap Snapshot
	resp, err := ts.Client().Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	restored, err := NewFromSnapshot(Config{}, &snap)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(restored.Handler())
	defer ts2.Close()
	st2 := doJSON(t, ts2, "GET", "/stats", nil, http.StatusOK)
	if st2["peers"].(float64) != 8 || st2["slots"].(float64) != 9 {
		t.Fatalf("restored: peers=%v slots=%v, want 8/9", st2["peers"], st2["slots"])
	}
	if got := st2["scost"].(float64); math.Abs(got-scost) > 1e-9 {
		t.Fatalf("restored scost %g, want %g", got, scost)
	}
	for _, id := range ids {
		want := http.StatusOK
		if id == ids[4] {
			want = http.StatusNotFound
		}
		got := doJSON(t, ts2, "GET", fmt.Sprintf("/peers/%d", id), nil, want)
		if want == http.StatusOK {
			orig := doJSON(t, ts, "GET", fmt.Sprintf("/peers/%d", id), nil, http.StatusOK)
			if got["cluster"] != orig["cluster"] {
				t.Fatalf("peer %d cluster %v, want %v", id, got["cluster"], orig["cluster"])
			}
			if math.Abs(got["cost"].(float64)-orig["cost"].(float64)) > 1e-9 {
				t.Fatalf("peer %d cost %v, want %v", id, got["cost"], orig["cost"])
			}
		}
	}

	// A rejoin on the restored daemon reuses the vacated slot.
	rejoin := doJSON(t, ts2, "POST", "/peers", joinBody(1, 1), http.StatusCreated)
	if int(rejoin["id"].(float64)) != ids[4] {
		t.Fatalf("rejoin got slot %v, want vacated slot %d", rejoin["id"], ids[4])
	}
}

// TestSnapshotFileRoundTrip pins the on-disk snapshot path: write,
// load, restore, compare.
func TestSnapshotFileRoundTrip(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 6; i++ {
		doJSON(t, ts, "POST", "/peers", joinBody(i%2, i), http.StatusCreated)
	}
	s.Reform()

	path := filepath.Join(t.TempDir(), "overlay", "snapshot.json")
	if err := s.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromSnapshot(Config{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Snapshot(), restored.Snapshot()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("snapshot round-trip diverged:\n%s\n%s", aj, bj)
	}
}

// TestTickerAndShutdown exercises the background maintenance ticker
// and the graceful-shutdown snapshot.
func TestTickerAndShutdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.json")
	s := New(Config{ReformEvery: 5 * time.Millisecond, SnapshotPath: path})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Start()
	for i := 0; i < 4; i++ {
		doJSON(t, ts, "POST", "/peers", joinBody(i%2, i), http.StatusCreated)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
		if st["reforms"].(float64) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never ran a maintenance period")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("shutdown snapshot missing: %v", err)
	}
	if len(snap.Peers) != 4 {
		t.Fatalf("shutdown snapshot has %d peers, want 4", len(snap.Peers))
	}
}
