package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRouteCacheByteIdentity pins the route cache's end-to-end
// contract: a daemon with the cache on (the default) answers every
// query and batch byte-identically to one with the cache disabled —
// on cold lookups, on hot repeats, and again after a mutation
// publishes a new view (which must invalidate wholesale).
func TestRouteCacheByteIdentity(t *testing.T) {
	cached := New(Config{})
	uncached := New(Config{RouteCache: -1})
	tsC := httptest.NewServer(cached.Handler())
	defer tsC.Close()
	tsU := httptest.NewServer(uncached.Handler())
	defer tsU.Close()
	seed := func(ts *httptest.Server) {
		for i := 0; i < 9; i++ {
			doJSON(t, ts, "POST", "/v1/peers", joinBody(i%3, i/3), http.StatusCreated)
		}
	}
	seed(tsC)
	seed(tsU)

	bodies := []string{
		`{"terms":["c0-t0"]}`,
		`{"terms":["c0-t0","c0-t1"]}`,
		`{"terms":["c0-t1","c0-t0"]}`, // same canonical query, reordered
		`{"terms":["c2-t3"]}`,
		`{"terms":["nope"]}`,
	}
	batch := `{"queries":[{"terms":["c0-t0"]},{"terms":["c0-t0"]},{"terms":["c0-t1","c0-t0"]},{"terms":["c0-t0","c0-t1"]},{"terms":["nope"]}]}`

	compare := func(label string) {
		t.Helper()
		for pass := 0; pass < 2; pass++ { // cold then hot
			for _, b := range bodies {
				codeC, gotC, _ := rawDo(t, tsC, "POST", "/v1/query", b)
				codeU, gotU, _ := rawDo(t, tsU, "POST", "/v1/query", b)
				if codeC != http.StatusOK || codeU != http.StatusOK || !bytes.Equal(gotC, gotU) {
					t.Fatalf("%s pass %d query %s: cached %d %s != uncached %d %s",
						label, pass, b, codeC, gotC, codeU, gotU)
				}
			}
			codeC, gotC, _ := rawDo(t, tsC, "POST", "/v1/query/batch", batch)
			codeU, gotU, _ := rawDo(t, tsU, "POST", "/v1/query/batch", batch)
			if codeC != http.StatusOK || codeU != http.StatusOK || !bytes.Equal(gotC, gotU) {
				t.Fatalf("%s pass %d batch: cached %d %s != uncached %d %s",
					label, pass, codeC, gotC, codeU, gotU)
			}
		}
	}
	compare("initial view")

	// A mutation publishes a new view; cached answers must follow it
	// immediately (view-epoch keying — no TTL to wait out).
	doJSON(t, tsC, "POST", "/v1/peers", joinBody(1, 7), http.StatusCreated)
	doJSON(t, tsU, "POST", "/v1/peers", joinBody(1, 7), http.StatusCreated)
	compare("after churn")

	// Observability: the cached daemon reports live counters, the
	// uncached one reports itself disabled.
	st := doJSON(t, tsC, "GET", "/v1/stats", nil, http.StatusOK)
	rc, ok := st["route_cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing route_cache: %v", st)
	}
	if on, _ := rc["enabled"].(bool); !on {
		t.Fatalf("cached daemon reports route_cache disabled: %v", rc)
	}
	if hits, _ := rc["hits"].(float64); hits == 0 {
		t.Fatalf("hot repeats produced no cache hits: %v", rc)
	}
	if misses, _ := rc["misses"].(float64); misses == 0 {
		t.Fatalf("cold lookups produced no cache misses: %v", rc)
	}
	stU := doJSON(t, tsU, "GET", "/v1/stats", nil, http.StatusOK)
	rcU, ok := stU["route_cache"].(map[string]any)
	if !ok {
		t.Fatalf("uncached stats missing route_cache: %v", stU)
	}
	if on, _ := rcU["enabled"].(bool); on {
		t.Fatalf("uncached daemon reports route_cache enabled: %v", rcU)
	}
}

// TestBatchDedupSharesAnswers pins /v1/query/batch dedup: elements
// that resolve to the same canonical query — whatever the term order
// or repetition — return answers byte-identical to each other AND to
// the same query posted alone, and unknown-term elements still
// marshal the empty clusters array.
func TestBatchDedupSharesAnswers(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 6; i++ {
		doJSON(t, ts, "POST", "/v1/peers", joinBody(i%2, i/2), http.StatusCreated)
	}

	batch := `{"queries":[` +
		`{"terms":["c0-t0","c0-t1"]},` +
		`{"terms":["c0-t1","c0-t0"]},` + // dup of 0, reordered
		`{"terms":["c0-t0","c0-t1","c0-t0"]},` + // dup of 0, repeated term
		`{"terms":["c1-t2"]},` +
		`{"terms":["ghost"]}]}`
	code, body, _ := rawDo(t, ts, "POST", "/v1/query/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var br struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil || len(br.Results) != 5 {
		t.Fatalf("batch decode (%v): %s", err, body)
	}
	if !bytes.Equal(br.Results[0], br.Results[1]) || !bytes.Equal(br.Results[0], br.Results[2]) {
		t.Fatalf("deduped elements differ:\n%s\n%s\n%s", br.Results[0], br.Results[1], br.Results[2])
	}
	if bytes.Equal(br.Results[0], br.Results[3]) {
		t.Fatalf("distinct queries share an answer: %s", br.Results[0])
	}
	for i, q := range []string{`{"terms":["c0-t0","c0-t1"]}`, `{"terms":["c1-t2"]}`} {
		codeS, single, _ := rawDo(t, ts, "POST", "/v1/query", q)
		if codeS != http.StatusOK {
			t.Fatalf("single %s: %d %s", q, codeS, single)
		}
		want := bytes.TrimSpace(single)
		got := bytes.TrimSpace(br.Results[i*3]) // results[0] and results[3]
		if !bytes.Equal(got, want) {
			t.Fatalf("batch element %d %s != single answer %s", i*3, got, want)
		}
	}
	var ghost struct {
		Total    int   `json:"total"`
		Clusters []any `json:"clusters"`
	}
	if err := json.Unmarshal(br.Results[4], &ghost); err != nil || ghost.Total != 0 || ghost.Clusters == nil || len(ghost.Clusters) != 0 {
		t.Fatalf("unknown-term element: %s (err %v)", br.Results[4], err)
	}
	if !bytes.Contains(br.Results[4], []byte(`"clusters":[]`)) {
		t.Fatalf("unknown-term element must marshal clusters as []: %s", br.Results[4])
	}
}
