package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// snapshotVersion identifies the snapshot schema.
const snapshotVersion = 1

// Snapshot is the daemon's full serialized state: every live peer
// with its slot, cluster, content and local workload, all attributes
// resolved to their term strings (the vocabulary is rebuilt on
// restore, so snapshots are self-contained and stable across
// processes). Slots records the total slot count so peer IDs survive
// a restore even with vacated slots in between.
type Snapshot struct {
	Version int     `json:"version"`
	Alpha   float64 `json:"alpha"`
	Epsilon float64 `json:"epsilon"`
	Slots   int     `json:"slots"`
	// Compactions is the daemon's compaction generation at snapshot
	// time. Restores carry it forward so operational counters survive
	// restarts; the peer state needs nothing else — a restore
	// re-interns only live queries and is itself maximally compact.
	Compactions int            `json:"compactions,omitempty"`
	Peers       []PeerSnapshot `json:"peers"`
}

// PeerSnapshot is one live peer's state.
type PeerSnapshot struct {
	Slot    int          `json:"slot"`
	Cluster int          `json:"cluster"`
	Items   [][]string   `json:"items"`
	Queries []queryCount `json:"queries"`
}

// Snapshot captures the daemon's current state.
func (s *Server) Snapshot() *Snapshot {
	defer s.lockMutation()()
	snap := &Snapshot{
		Version:     snapshotVersion,
		Alpha:       s.cfg.Alpha,
		Epsilon:     s.cfg.Epsilon,
		Slots:       s.eng.NumSlots(),
		Compactions: int(s.compactions.Load()),
		Peers:       []PeerSnapshot{},
	}
	wl := s.eng.Workload()
	for pid := 0; pid < s.eng.NumSlots(); pid++ {
		if !s.eng.IsLive(pid) {
			continue
		}
		ps := PeerSnapshot{
			Slot:    pid,
			Cluster: int(s.eng.Config().ClusterOf(pid)),
			Items:   [][]string{},
			Queries: []queryCount{},
		}
		for _, it := range s.eng.Peers()[pid].Items() {
			ps.Items = append(ps.Items, it.Names(s.vocab))
		}
		for _, en := range wl.Peer(pid) {
			ps.Queries = append(ps.Queries, queryCount{
				Terms: wl.Query(en.Q).Names(s.vocab),
				Count: en.Count,
			})
		}
		snap.Peers = append(snap.Peers, ps)
	}
	return snap
}

// NewFromSnapshot builds a Server whose overlay resumes exactly where
// the snapshot left off: same peer IDs, same clusters, same costs.
// The snapshot's alpha/epsilon override the config's.
func NewFromSnapshot(cfg Config, snap *Snapshot) (*Server, error) {
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("service: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	cfg.Alpha = snap.Alpha
	cfg.Epsilon = snap.Epsilon
	s := New(cfg)
	s.compactions.Store(int64(snap.Compactions))

	peers := make([]*peer.Peer, snap.Slots)
	wl := workload.New(snap.Slots)
	assign := make([]cluster.CID, snap.Slots)
	for i := range assign {
		assign[i] = cluster.None
	}
	for _, ps := range snap.Peers {
		if ps.Slot < 0 || ps.Slot >= snap.Slots {
			return nil, fmt.Errorf("service: snapshot slot %d out of range [0,%d)", ps.Slot, snap.Slots)
		}
		if peers[ps.Slot] != nil {
			return nil, fmt.Errorf("service: snapshot slot %d duplicated", ps.Slot)
		}
		if ps.Cluster < 0 || ps.Cluster >= snap.Slots {
			return nil, fmt.Errorf("service: snapshot peer %d in invalid cluster %d", ps.Slot, ps.Cluster)
		}
		pr := peer.New(ps.Slot)
		items := make([]attr.Set, 0, len(ps.Items))
		for _, it := range ps.Items {
			items = append(items, attr.NewSet(s.vocab.InternAll(it)...))
		}
		pr.SetItems(items)
		peers[ps.Slot] = pr
		for _, q := range ps.Queries {
			if len(q.Terms) == 0 || q.Count <= 0 {
				return nil, fmt.Errorf("service: snapshot peer %d has invalid query", ps.Slot)
			}
			wl.Add(ps.Slot, attr.NewSet(s.vocab.InternAll(q.Terms)...), q.Count)
		}
		assign[ps.Slot] = cluster.CID(ps.Cluster)
	}
	s.eng = core.New(peers, wl, cluster.FromAssignment(assign), s.cfg.Theta, s.cfg.Alpha)
	s.runner = s.newRunner()
	s.publishLocked()
	return s, nil
}

func (s *Server) newRunner() *protocol.Runner {
	return protocol.NewRunner(s.eng, core.NewSelfish(), protocol.Options{
		Epsilon:          s.cfg.Epsilon,
		MaxRounds:        s.cfg.MaxRounds,
		AllowNewClusters: true,
		Workers:          s.cfg.ReformWorkers,
		ExactDecide:      s.cfg.ExactDecide,
	})
}

// WriteSnapshot atomically writes the current snapshot to path.
func (s *Server) WriteSnapshot(path string) error {
	snap := s.Snapshot()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode snapshot: %w", err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("service: snapshot dir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: write snapshot: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot reads a snapshot written by WriteSnapshot.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("service: decode snapshot %s: %w", path, err)
	}
	return &snap, nil
}
