package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/replog"
	"repro/internal/retry"
)

// This file is the follower side of the replication log: a sync loop
// that long-polls an upstream's GET /v1/replog/watch, installs
// snapshot records wholesale (installCatchUp) and replays entry
// records one mutation at a time through the same engine path the
// leader used (applyEntryLocked), publishing a fresh read view after
// each — a follower's data plane serves with the leader's cadence,
// one view per mutation.
//
// Upstreams rotate on failure and retries use the shared capped
// exponential backoff with jitter (internal/retry), so a fleet of
// followers does not stampede a recovering leader. A divergence or
// rejected record drops the loop's position, forcing the next poll to
// resynchronize with a snapshot.

// followMaxRecord bounds one replication record read from upstream.
const followMaxRecord = 1 << 28

// followLoop runs until shutdown or promotion. upstreams is the
// rotation list from Config.Join.
func (s *Server) followLoop(ctx context.Context, upstreams []string) {
	defer s.wg.Done()
	defer close(s.followDone)
	client := &http.Client{Timeout: watchDefaultTimeout + 10*time.Second}
	bo := retry.NewBackoff(time.Second, 30*time.Second, retry.AutoSeed())
	ui := 0
	// epoch is the current upstream instance's epoch as last observed;
	// "" means unpositioned — the next poll requests a snapshot.
	epoch := ""
	for ctx.Err() == nil && !s.isLeader.Load() {
		upstream := upstreams[ui]
		rec, status, hint, newEpoch, err := s.fetchReplog(ctx, client, upstream, epoch)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			s.replErrors.Add(1)
			s.cfg.Logf("follow: %s: %v", upstream, err)
			// Rotate to the next upstream; its history is another
			// instance's, so the position resets with the epoch.
			ui = (ui + 1) % len(upstreams)
			epoch = ""
			s.followSleep(ctx, bo.Next(hint))
			continue
		}
		bo.Reset()
		epoch = newEpoch
		s.leaderURL.Store(upstream)
		if status == http.StatusNoContent {
			continue // long-poll timeout: nothing new
		}
		if err := s.applyReplogRecord(rec); err != nil {
			s.replErrors.Add(1)
			s.cfg.Logf("follow: %s: %v (forcing snapshot resync)", upstream, err)
			epoch = ""
			s.followSleep(ctx, bo.Next(0))
		}
	}
}

// applyReplogRecord installs one decoded wire record.
func (s *Server) applyReplogRecord(rec replog.Record) error {
	switch rec.Kind {
	case replog.RecSnapshot:
		return s.installCatchUp(rec.Snapshot)
	case replog.RecEntries:
		for _, e := range rec.Entries {
			unlock := s.lockMutation()
			err := s.applyEntryLocked(e)
			if err == nil {
				s.publishLocked()
			}
			unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("service: replication record of unknown kind %d", rec.Kind)
}

// fetchReplog issues one long-poll against upstream. A non-empty epoch
// asserts the follower's log position is against that instance's
// history; without it the server responds with a snapshot record.
func (s *Server) fetchReplog(ctx context.Context, client *http.Client, upstream, epoch string) (rec replog.Record, status int, hint time.Duration, newEpoch string, err error) {
	// timeout_ms is always watchDefaultTimeout, well under the server's
	// watchMaxTimeout clamp and under the http.Client.Timeout in
	// followLoop, so the client deadline never fires before a healthy
	// upstream answers.
	url := upstream + "/v1/replog/watch?timeout_ms=" +
		strconv.FormatInt(watchDefaultTimeout.Milliseconds(), 10)
	if epoch != "" {
		url += "&epoch=" + epoch + "&from=" + strconv.FormatUint(s.replLog.LastIndex(), 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return replog.Record{}, 0, 0, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return replog.Record{}, 0, 0, "", err
	}
	defer resp.Body.Close()
	newEpoch = resp.Header.Get(epochHeader)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return replog.Record{}, http.StatusNoContent, 0, newEpoch, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, followMaxRecord))
		if err != nil {
			return replog.Record{}, 0, 0, "", err
		}
		rec, err := replog.DecodeRecord(body)
		if err != nil {
			return replog.Record{}, 0, 0, "", err
		}
		return rec, http.StatusOK, 0, newEpoch, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return replog.Record{}, resp.StatusCode, retry.Hint(resp), "",
			fmt.Errorf("replog watch: upstream %d: %s", resp.StatusCode, body)
	}
}

// followSleep backs off, waking early on cancellation.
func (s *Server) followSleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
