package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/replog"
)

// waitUntil polls cond every 2ms until it holds, failing the test at
// the deadline.
func waitUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports whether the follower has applied everything the
// leader has logged.
func caughtUp(leader, follower *Server) bool {
	return follower.replSynced.Load() &&
		follower.replLog.LastIndex() == leader.replLog.LastIndex()
}

func marshalSnapshot(t *testing.T, s *Server) []byte {
	t.Helper()
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFollowerReplicatesByteIdentical is the replication tier's core
// contract: a follower that joined mid-history (snapshot catch-up over
// a state with vacated slots) and then rode the entry feed holds
// byte-identical overlay state — snapshot, free-slot stack, published
// view, and query answers — after joins, leaves, a maintenance period
// and a compaction on the leader.
func TestFollowerReplicatesByteIdentical(t *testing.T) {
	s1 := New(Config{StepBudget: 1})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	defer s1.BeginShutdown()

	// Pre-history the catch-up document must carry: peers across three
	// categories, two leaves punching holes in the slot space.
	for i := 0; i < 9; i++ {
		doJSON(t, ts1, "POST", "/v1/peers", joinBody(i%3, i), http.StatusCreated)
	}
	doJSON(t, ts1, "DELETE", "/v1/peers/2", nil, http.StatusOK)
	doJSON(t, ts1, "DELETE", "/v1/peers/5", nil, http.StatusOK)

	s2 := New(Config{Join: []string{ts1.URL}, StepBudget: 1})
	s2.Start()
	defer s2.Shutdown()
	waitUntil(t, "follower catch-up", 10*time.Second, func() bool { return caughtUp(s1, s2) })

	// Live history: joins that must reuse the leader's vacancy order,
	// more churn, a maintenance period, a compaction.
	for i := 0; i < 6; i++ {
		doJSON(t, ts1, "POST", "/v1/peers", joinBody(i%3, i+9), http.StatusCreated)
	}
	doJSON(t, ts1, "DELETE", "/v1/peers/7", nil, http.StatusOK)
	doJSON(t, ts1, "POST", "/v1/reform", nil, http.StatusOK)
	doJSON(t, ts1, "POST", "/v1/compact", nil, http.StatusOK)
	waitUntil(t, "follower replay", 10*time.Second, func() bool { return caughtUp(s1, s2) })

	if a, b := marshalSnapshot(t, s1), marshalSnapshot(t, s2); !bytes.Equal(a, b) {
		t.Fatalf("snapshots diverge:\nleader   %s\nfollower %s", a, b)
	}
	if a, b := s1.eng.FreeSlots(), s2.eng.FreeSlots(); !reflect.DeepEqual(a, b) {
		t.Fatalf("free-slot stacks diverge: leader %v, follower %v", a, b)
	}

	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	recA, _ := watchRecord(t, ts1, "")
	recB, _ := watchRecord(t, ts2, "")
	if !reflect.DeepEqual(recA.View, recB.View) {
		t.Fatal("published routing views diverge")
	}
	if !reflect.DeepEqual(recA.Terms, recB.Terms) {
		t.Fatal("published term tables diverge")
	}
	for cat := 0; cat < 3; cat++ {
		for d := 0; d < 5; d++ {
			body := fmt.Sprintf(`{"terms":["c%d-t%d"]}`, cat, d)
			_, a, _ := rawDo(t, ts1, "POST", "/v1/query", body)
			_, b, _ := rawDo(t, ts2, "POST", "/v1/query", body)
			if !bytes.Equal(a, b) {
				t.Fatalf("query %s diverges: %s vs %s", body, a, b)
			}
		}
	}
}

// TestFollowerControlPlane pins the follower's HTTP contract: data
// plane 503 not_ready before the first catch-up, control plane 503
// not_leader with no known leader, 307 to the leader once known (and
// a redirect-following client lands the mutation on the leader), and
// 409 not_leader from POST /v1/promote on a node already leading.
func TestFollowerControlPlane(t *testing.T) {
	s1 := New(Config{})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	defer s1.BeginShutdown()
	doJSON(t, ts1, "POST", "/v1/peers", joinBody(0, 0), http.StatusCreated)

	// An unstarted follower: no leader known, nothing synced.
	cold := New(Config{Join: []string{ts1.URL}})
	tsCold := httptest.NewServer(cold.Handler())
	defer tsCold.Close()
	status, body, _ := rawDo(t, tsCold, "POST", "/v1/query", `{"terms":["c0-t0"]}`)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "not_ready") {
		t.Fatalf("cold follower query: %d %s, want 503 not_ready", status, body)
	}
	status, body, _ = rawDo(t, tsCold, "POST", "/v1/peers", `{"items":[["x"]],"queries":[]}`)
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "not_leader") {
		t.Fatalf("cold follower join: %d %s, want 503 not_leader", status, body)
	}

	s2 := New(Config{Join: []string{ts1.URL}})
	s2.Start()
	defer s2.Shutdown()
	waitUntil(t, "follower synced", 10*time.Second, func() bool { return caughtUp(s1, s2) })
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The raw redirect: 307 with a Location pointing at the leader.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	join, _ := json.Marshal(joinBody(1, 1))
	req, _ := http.NewRequest("POST", ts2.URL+"/v1/peers", bytes.NewReader(join))
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower join: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != ts1.URL+"/v1/peers" {
		t.Fatalf("redirect location %q, want %q", loc, ts1.URL+"/v1/peers")
	}

	// A default client follows it and the mutation replicates back.
	doJSON(t, ts2, "POST", "/v1/peers", joinBody(2, 2), http.StatusCreated)
	waitUntil(t, "redirected join replicated", 10*time.Second, func() bool {
		return caughtUp(s1, s2)
	})
	if a, b := marshalSnapshot(t, s1), marshalSnapshot(t, s2); !bytes.Equal(a, b) {
		t.Fatal("snapshots diverge after redirected join")
	}

	// Promoting the leader is a conflict.
	doJSON(t, ts1, "POST", "/v1/promote", nil, http.StatusConflict)
}

// TestWatchShutdownRegression pins the long-poll shutdown fix: a
// watcher parked on either feed gets its 204 within a second of
// BeginShutdown instead of sleeping out its full timeout.
func TestWatchShutdownRegression(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	doJSON(t, ts, "POST", "/v1/peers", joinBody(0, 0), http.StatusCreated)
	rec, _ := watchRecord(t, ts, "")

	paths := []string{
		"/v1/view/watch?timeout_ms=30000&seq=" + strconv.FormatUint(rec.Seq, 10) +
			"&pop=" + strconv.FormatUint(rec.PopVersion, 10),
		"/v1/replog/watch?timeout_ms=30000&epoch=" + strconv.FormatUint(s.epoch, 10) +
			"&from=" + strconv.FormatUint(s.replLog.LastIndex(), 10),
	}
	type result struct {
		path   string
		status int
		err    error
	}
	got := make(chan result, len(paths))
	for _, p := range paths {
		go func(p string) {
			resp, err := ts.Client().Get(ts.URL + p)
			if err != nil {
				got <- result{p, 0, err}
				return
			}
			resp.Body.Close()
			got <- result{p, resp.StatusCode, nil}
		}(p)
	}
	time.Sleep(100 * time.Millisecond) // let both watchers park
	start := time.Now()
	s.BeginShutdown()
	for range paths {
		select {
		case r := <-got:
			if r.err != nil || r.status != http.StatusNoContent {
				t.Fatalf("%s: status %d, err %v, want 204", r.path, r.status, r.err)
			}
		case <-time.After(time.Second):
			t.Fatal("parked watcher not released within 1s of BeginShutdown")
		}
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("watcher release took %v, want <1s", el)
	}
}

// TestFailoverConvergenceProperty pins the promotion contract: cut the
// leader's replicated log at any prefix — before, inside, or after a
// maintenance period — hand the prefix to two fresh followers, promote
// one in each mode, and after one full maintenance period both hold
// byte-identical snapshots and bit-identical costs. "resume" and
// "abort" differ only in when that period runs.
func TestFailoverConvergenceProperty(t *testing.T) {
	s1 := New(Config{StepBudget: 1})
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	defer s1.BeginShutdown()
	for i := 0; i < 12; i++ {
		doJSON(t, ts1, "POST", "/v1/peers", joinBody(i%3, i), http.StatusCreated)
	}
	doJSON(t, ts1, "DELETE", "/v1/peers/4", nil, http.StatusOK)
	doJSON(t, ts1, "POST", "/v1/reform", nil, http.StatusOK)
	doJSON(t, ts1, "POST", "/v1/peers", joinBody(1, 20), http.StatusCreated)

	entries, ok := s1.replLog.Since(0, 0)
	if !ok || len(entries) == 0 {
		t.Fatalf("leader log capture failed (ok %v, %d entries)", ok, len(entries))
	}
	// Locate the maintenance period so the cut sample straddles it.
	pstart, pend := -1, -1
	for i, e := range entries {
		switch e.Kind {
		case replog.KindPeriodStart:
			pstart = i
		case replog.KindPeriodEnd:
			pend = i
		}
	}
	if pstart < 0 || pend <= pstart {
		t.Fatalf("no maintenance period in log (start %d, end %d)", pstart, pend)
	}
	cuts := map[int]bool{
		pstart:                       true, // period opened, no grants yet
		pstart + 1 + (pend-pstart)/2: true, // mid-grants
		pend:                         true, // period closed
		len(entries):                 true, // everything
	}
	if pstart > 0 {
		cuts[pstart-1] = true // pre-period
	}

	newFollower := func(prefix int) *Server {
		f := New(Config{Join: []string{"http://invalid.invalid"}, StepBudget: 1})
		for _, e := range entries[:prefix] {
			unlock := f.lockMutation()
			err := f.applyEntryLocked(e)
			if err == nil {
				f.publishLocked()
			}
			unlock()
			if err != nil {
				t.Fatalf("replay entry %d: %v", e.Index, err)
			}
		}
		return f
	}

	for cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			resume, abort := newFollower(cut), newFollower(cut)
			base := resume.reforms.Load()
			if _, err := resume.Promote("resume"); err != nil {
				t.Fatal(err)
			}
			waitUntil(t, "resumed period", 10*time.Second, func() bool {
				return resume.reforms.Load() > base && !resume.replOpenPeriod.Load()
			})
			if _, err := abort.Promote("abort"); err != nil {
				t.Fatal(err)
			}
			abort.Reform() // the tick the abort mode waits for

			if a, b := marshalSnapshot(t, resume), marshalSnapshot(t, abort); !bytes.Equal(a, b) {
				t.Fatalf("modes diverge at cut %d:\nresume %s\nabort  %s", cut, a, b)
			}
			va, vb := resume.loadView(), abort.loadView()
			if va.g.scost != vb.g.scost || va.g.wcost != vb.g.wcost {
				t.Fatalf("costs diverge at cut %d: resume (%v,%v) abort (%v,%v)",
					cut, va.g.scost, va.g.wcost, vb.g.scost, vb.g.wcost)
			}
			resume.Shutdown()
			abort.Shutdown()
		})
	}
}
