package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/stats"
)

// do drives the handler directly (no network) and returns status +
// body — the cheap path the concurrency tests hammer.
func do(h http.Handler, method, path string, body any) (int, []byte) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// checkCoherent asserts a query answer is internally consistent: the
// per-cluster results sum to the total, every hit names a non-empty
// cluster, and recall fractions sum to 1 when anything matched. A
// torn (half-published) view would violate these.
func checkCoherent(t *testing.T, body []byte) {
	t.Helper()
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad query response %s: %v", body, err)
	}
	sum, recall := 0, 0.0
	for _, h := range resp.Clusters {
		if h.Results <= 0 || h.Size <= 0 {
			t.Fatalf("incoherent hit %+v in %s", h, body)
		}
		sum += h.Results
		recall += h.Recall
	}
	if sum != resp.Total {
		t.Fatalf("hits sum to %d, total %d: %s", sum, resp.Total, body)
	}
	if resp.Total > 0 && math.Abs(recall-1) > 1e-9 {
		t.Fatalf("recall sums to %g: %s", recall, body)
	}
}

// TestConcurrentServingUnderChurn is the race test: query, batch and
// stats readers hammer the daemon while joins, leaves, maintenance
// periods and compactions cycle on the mutation path. Run under
// -race in CI; the readers additionally assert every answer is
// coherent (from exactly one published view).
func TestConcurrentServingUnderChurn(t *testing.T) {
	s := New(Config{CompactMinQueries: 1, CompactDeadRatio: -1})
	h := s.Handler()
	for i := 0; i < 12; i++ {
		if code, body := do(h, "POST", "/peers", joinBody(i%3, i/3)); code != http.StatusCreated {
			t.Fatalf("seed join: %d %s", code, body)
		}
	}

	const readers = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(1000 + r))
			term := func() string { return fmt.Sprintf("c%d-t%d", rng.Intn(3), rng.Intn(5)) }
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					code, body := do(h, "POST", "/query", queryRequest{Terms: []string{term()}})
					if code != http.StatusOK {
						t.Errorf("query: %d %s", code, body)
						return
					}
					checkCoherent(t, body)
				case 1:
					batch := batchRequest{Queries: []queryRequest{
						{Terms: []string{term()}},
						{Terms: []string{term(), term()}},
						{Terms: []string{"never-seen"}},
					}}
					code, body := do(h, "POST", "/query/batch", batch)
					if code != http.StatusOK {
						t.Errorf("batch: %d %s", code, body)
						return
					}
					var resp batchResponse
					if err := json.Unmarshal(body, &resp); err != nil || len(resp.Results) != 3 {
						t.Errorf("bad batch response %s: %v", body, err)
						return
					}
					for _, qr := range resp.Results {
						b, _ := json.Marshal(qr)
						checkCoherent(t, b)
					}
				case 2:
					if code, body := do(h, "GET", "/stats", nil); code != http.StatusOK {
						t.Errorf("stats: %d %s", code, body)
						return
					}
				}
			}
		}(r)
	}

	// The mutation path: churn + maintenance + compaction cycles.
	deadline := time.Now().Add(500 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		code, body := do(h, "POST", "/peers", joinRequest{
			Items:   [][]string{{fmt.Sprintf("c%d-t%d", i%3, i%5), fmt.Sprintf("novel-%d", i)}},
			Queries: []queryCount{{Terms: []string{fmt.Sprintf("novel-%d", i)}, Count: 1}},
		})
		if code != http.StatusCreated {
			t.Fatalf("churn join: %d %s", code, body)
		}
		var jr joinResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		switch i % 4 {
		case 0:
			s.Reform()
		case 1:
			s.Compact()
		}
		if code, body := do(h, "DELETE", fmt.Sprintf("/peers/%d", jr.ID), nil); code != http.StatusOK {
			t.Fatalf("churn leave: %d %s", code, body)
		}
	}
	close(stop)
	wg.Wait()
}

// engineAnswerJSON computes a query's answer the pre-view way: under
// the server mutex, straight off the live engine — the oracle the
// published view must match byte for byte (including the trailing
// newline writeJSON emits).
func engineAnswerJSON(t *testing.T, s *Server, terms []string) []byte {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]attr.ID, 0, len(terms))
	known := true
	for _, tm := range terms {
		id, ok := s.vocab.Lookup(tm)
		if !ok {
			known = false
			break
		}
		ids = append(ids, id)
	}
	resp := queryResponse{Clusters: []clusterHit{}}
	if known {
		q := attr.NewSet(ids...)
		cfg := s.eng.Config()
		perCluster := make(map[cluster.CID]int)
		s.eng.ForEachSupplier(q, func(pid, res int) {
			perCluster[cfg.ClusterOf(pid)] += res
			resp.Total += res
		})
		for _, c := range cfg.NonEmpty() {
			if n, ok := perCluster[c]; ok {
				resp.Clusters = append(resp.Clusters, clusterHit{
					Cluster: int(c),
					Size:    cfg.Size(c),
					Results: n,
					Recall:  float64(n) / float64(resp.Total),
				})
			}
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestViewAnswersMatchEngineProperty is the property test: after every
// step of a randomized churn+reform+compact sequence, queries answered
// through the published view are byte-identical to the answer computed
// by locking the engine directly, and a batch answer matches its
// single-query answers element-wise.
func TestViewAnswersMatchEngineProperty(t *testing.T) {
	s := New(Config{CompactMinQueries: 1, CompactDeadRatio: -1})
	h := s.Handler()
	rng := stats.NewRNG(2026)
	term := func(i int) string { return fmt.Sprintf("w%d", i) }
	var live []int

	probeTerms := func() []string {
		n := 1 + rng.Intn(2)
		out := make([]string, 0, n)
		for k := 0; k < n; k++ {
			if rng.Intn(8) == 0 {
				out = append(out, fmt.Sprintf("unknown-%d", rng.Intn(5)))
			} else {
				out = append(out, term(rng.Intn(14)))
			}
		}
		return out
	}

	for step := 0; step < 150; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // join
			a, b, c := term(rng.Intn(14)), term(rng.Intn(14)), term(rng.Intn(14))
			code, body := do(h, "POST", "/peers", joinRequest{
				Items:   [][]string{{a, b}, {c}},
				Queries: []queryCount{{Terms: []string{a}, Count: 1 + rng.Intn(3)}, {Terms: []string{b, c}, Count: 1}},
			})
			if code != http.StatusCreated {
				t.Fatalf("step %d: join %d %s", step, code, body)
			}
			var jr joinResponse
			if err := json.Unmarshal(body, &jr); err != nil {
				t.Fatal(err)
			}
			live = append(live, jr.ID)
		case op < 8: // leave
			i := rng.Intn(len(live))
			if code, body := do(h, "DELETE", fmt.Sprintf("/peers/%d", live[i]), nil); code != http.StatusOK {
				t.Fatalf("step %d: leave %d %s", step, code, body)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case op == 8:
			s.Reform()
		default:
			s.Compact()
		}

		for probe := 0; probe < 4; probe++ {
			terms := probeTerms()
			want := engineAnswerJSON(t, s, terms)
			code, got := do(h, "POST", "/query", queryRequest{Terms: terms})
			if code != http.StatusOK {
				t.Fatalf("step %d: query %d %s", step, code, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: view answer diverged for %v:\nview:   %sengine: %s", step, terms, got, want)
			}
		}

		// Batch == element-wise singles (all from one view).
		qs := []queryRequest{{Terms: probeTerms()}, {Terms: probeTerms()}, {Terms: probeTerms()}}
		code, body := do(h, "POST", "/query/batch", batchRequest{Queries: qs})
		if code != http.StatusOK {
			t.Fatalf("step %d: batch %d %s", step, code, body)
		}
		var br batchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatal(err)
		}
		if len(br.Results) != len(qs) {
			t.Fatalf("step %d: batch returned %d results, want %d", step, len(br.Results), len(qs))
		}
		for i, q := range qs {
			single, _ := json.Marshal(br.Results[i])
			want := engineAnswerJSON(t, s, q.Terms)
			if !bytes.Equal(append(single, '\n'), want) {
				t.Fatalf("step %d: batch element %d diverged:\nbatch:  %s\nengine: %s", step, i, single, want)
			}
		}
	}
}

// TestReadPathNeedsNoLock pins the tentpole mechanically: with the
// server mutex held (a maintenance period in flight), /query,
// /query/batch and /stats still answer, and the stats counters are
// exact for the requests served meanwhile.
func TestReadPathNeedsNoLock(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	for i := 0; i < 6; i++ {
		do(h, "POST", "/peers", joinBody(i%2, i))
	}
	_, base := do(h, "GET", "/stats", nil)
	var baseStats map[string]any
	if err := json.Unmarshal(base, &baseStats); err != nil {
		t.Fatal(err)
	}
	baseServed := int64(baseStats["queries_served"].(float64))

	s.mu.Lock() // simulate a long maintenance period
	done := make(chan struct{})
	var statsBody []byte
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			code, body := do(h, "POST", "/query", queryRequest{Terms: []string{"c0-t0"}})
			if code != http.StatusOK {
				t.Errorf("query under lock: %d %s", code, body)
				return
			}
			checkCoherent(t, body)
		}
		if code, body := do(h, "POST", "/query/batch", batchRequest{
			Queries: []queryRequest{{Terms: []string{"c0-t1"}}, {Terms: []string{"c1-t2"}}},
		}); code != http.StatusOK {
			t.Errorf("batch under lock: %d %s", code, body)
			return
		}
		_, statsBody = do(h, "GET", "/stats", nil)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read path blocked on the server mutex")
	}
	s.mu.Unlock()

	var st map[string]any
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	// Stats taken under the held lock count every query served so far:
	// 5 singles + 2 batched.
	if got := int64(st["queries_served"].(float64)); got != baseServed+7 {
		t.Fatalf("queries_served mid-maintenance = %d, want %d", got, baseServed+7)
	}
	eps := st["endpoints"].(map[string]any)
	if got := eps["query"].(map[string]any)["requests"].(float64); got < 5 {
		t.Fatalf("query endpoint requests mid-maintenance = %v, want >= 5", got)
	}
	if got := eps["query_batch"].(map[string]any)["requests"].(float64); got < 1 {
		t.Fatalf("batch endpoint requests mid-maintenance = %v, want >= 1", got)
	}
}

// TestStrictDecoding pins the 4xx surface: malformed JSON, unknown
// fields, oversized bodies and oversized batches are rejected cleanly
// on every JSON endpoint.
func TestStrictDecoding(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	do(h, "POST", "/peers", joinBody(0, 0))

	post := func(path, body string) (int, []byte) {
		req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(body)))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}
	check := func(path, body string, want int) {
		t.Helper()
		code, resp := post(path, body)
		if code != want {
			t.Errorf("POST %s %q: code %d want %d (%s)", path, body, code, want, resp)
		}
		var out map[string]any
		if err := json.Unmarshal(resp, &out); err != nil {
			t.Errorf("POST %s %q: non-JSON error body %s", path, body, resp)
		}
	}

	check("/query", `{"terms":["c0-t0"]}`, http.StatusOK)
	check("/query", `{"terms":["c0-t0"]}   `, http.StatusOK)
	check("/query", `{"terms":["c0-t0"]}{"terms":["c0-t1"]}`, http.StatusBadRequest)
	check("/query", `{"terms":["c0-t0"]} garbage`, http.StatusBadRequest)
	check("/query", `{"terms":[]}`, http.StatusBadRequest)
	check("/query", `{`, http.StatusBadRequest)
	check("/query", `{"terms":["a"],"nope":1}`, http.StatusBadRequest)
	check("/query/batch", `{"queries":[{"terms":["c0-t0"]}]}`, http.StatusOK)
	check("/query/batch", `{"queries":[]}`, http.StatusBadRequest)
	check("/query/batch", `{"queries":[{"terms":[]}]}`, http.StatusBadRequest)
	check("/query/batch", `{"unknown":true}`, http.StatusBadRequest)
	check("/peers", `{"items":[],"queries":[{"terms":["a"],"count":0}]}`, http.StatusBadRequest)
	check("/peers", `{"bogus":1}`, http.StatusBadRequest)

	var big bytes.Buffer
	big.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`{"terms":["x"]}`)
	}
	big.WriteString(`]}`)
	if code, _ := post("/query/batch", big.String()); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: code %d want 413", code)
	}
	huge := `{"terms":["` + string(bytes.Repeat([]byte("a"), maxBodyBytes)) + `"]}`
	if code, _ := post("/query", huge); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code %d want 413", code)
	}
}
