package service

import (
	"slices"
	"sync"

	"repro/internal/attr"
	"repro/internal/core"
)

// This file implements the daemon's read path: an immutable readView
// published through an atomic pointer after every mutation
// (join/leave/reform/compact/restore), so POST /query,
// POST /query/batch and GET /stats never take the server mutex. Each
// request loads the latest view once and answers entirely from it —
// snapshot isolation per request (and per batch: all queries of a
// batch see the same view).

// readView is one published snapshot: the term table for resolving
// query strings, the core routing view, and the engine gauges /stats
// reports. All fields are immutable once published.
type readView struct {
	// terms maps attribute names to IDs. The vocabulary is
	// append-only, so the map is rebuilt only when it grew since the
	// previous publish and shared otherwise; vocabLen records the
	// length it covers.
	terms    map[string]attr.ID
	vocabLen int
	routing  *core.RoutingView
	// eng identifies the engine the routing view was built from:
	// version-based reuse is only valid against the same engine
	// instance (a snapshot restore swaps the engine wholesale).
	eng *core.Engine
	g   gauges
}

// gauges are the engine-derived numbers of GET /stats, captured at
// publish time. They change only at mutation boundaries, so the
// snapshot is exact — not stale — between publishes.
type gauges struct {
	peers       int
	slots       int
	clusters    int
	queries     int
	deadQueries int
	scost       float64
	wcost       float64
}

// publishLocked snapshots the current engine state into a fresh
// readView and publishes it. Callers hold s.mu (or, during
// construction, have exclusive access).
func (s *Server) publishLocked() {
	prev := s.view.Load()
	var terms map[string]attr.ID
	var prevRouting *core.RoutingView
	if prev != nil {
		if prev.eng == s.eng {
			prevRouting = prev.routing
		}
		if prev.vocabLen == s.vocab.Len() {
			terms = prev.terms
		}
	}
	if terms == nil {
		terms = make(map[string]attr.ID, s.vocab.Len())
		for id := 0; id < s.vocab.Len(); id++ {
			terms[s.vocab.Name(attr.ID(id))] = attr.ID(id)
		}
	}
	s.publishes.Add(1)
	s.view.Store(&readView{
		terms:    terms,
		vocabLen: s.vocab.Len(),
		routing:  s.eng.BuildRoutingView(prevRouting),
		eng:      s.eng,
		g: gauges{
			peers:       s.eng.NumPeers(),
			slots:       s.eng.NumSlots(),
			clusters:    s.eng.Config().NumNonEmpty(),
			queries:     s.eng.Workload().NumQueries(),
			deadQueries: s.eng.DeadQueries(0),
			scost:       s.eng.SCostNormalized(),
			wcost:       s.eng.WCostNormalized(),
		},
	})
}

// loadView returns the latest published view (never nil: New and
// NewFromSnapshot publish before serving).
func (s *Server) loadView() *readView { return s.view.Load() }

// queryScratch bundles the reusable buffers of one in-flight query
// request; a sync.Pool recycles them across requests so the hot read
// path allocates only what the HTTP layer itself requires.
type queryScratch struct {
	route core.RouteScratch
	ids   []attr.ID
	hits  []clusterHit
}

var scratchPool = sync.Pool{
	New: func() any {
		// hits must start non-nil: an empty answer marshals as [].
		return &queryScratch{hits: make([]clusterHit, 0, 8)}
	},
}

// answerQuery evaluates terms against the view and returns the
// routing answer. The response's Clusters slice aliases sc.hits and
// is valid until sc's next use; callers that retain answers (the
// batch handler) copy it out. Unknown terms cannot match anything
// (items only contain interned attributes), so any unknown term
// yields the empty answer.
func answerQuery(v *readView, terms []string, sc *queryScratch) queryResponse {
	sc.ids = sc.ids[:0]
	for _, t := range terms {
		id, ok := v.terms[t]
		if !ok {
			sc.hits = sc.hits[:0]
			return queryResponse{Clusters: sc.hits}
		}
		sc.ids = append(sc.ids, id)
	}
	slices.Sort(sc.ids)
	q := attr.FromSorted(slices.Compact(sc.ids))
	total, hits := v.routing.Route(q, &sc.route)
	sc.hits = sc.hits[:0]
	for _, h := range hits {
		sc.hits = append(sc.hits, clusterHit{
			Cluster: int(h.Cluster),
			Size:    h.Size,
			Results: h.Results,
			Recall:  float64(h.Results) / float64(total),
		})
	}
	return queryResponse{Total: total, Clusters: sc.hits}
}
