package service

import (
	"sync"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/viewwire"
)

// This file implements the daemon's read path and its replication
// feed: an immutable readView published through an atomic pointer
// after every mutation (join/leave/reform/compact/restore), so
// POST /v1/query, POST /v1/query/batch and GET /v1/stats never take
// the server mutex. Each request loads the latest view once and
// answers entirely from it — snapshot isolation per request (and per
// batch: all queries of a batch see the same view).
//
// Every publication also gets a monotone sequence number, is kept in a
// small ring of recent views, and wakes the long-poll watchers of
// GET /v1/view/watch. A watcher that is only a few publications behind
// on the same population version receives a pure-relocation delta
// record diffed against its own ring entry; anything else — first
// contact, a population change, or falling further behind than the
// ring remembers — resynchronizes with a full record. The full
// record's wire encoding is cached per view (lazily, at most once), so
// any number of router replicas syncing the same view share one
// encoding.

// viewRing is how many recent views delta bases are retained for. A
// watcher further behind than this resyncs with a full record.
const viewRing = 64

// readView is one published snapshot: the term table for resolving
// query strings, the core routing view, the engine gauges /v1/stats
// reports, and the replication metadata. All fields are immutable once
// published (the cached wire encoding is built lazily under a Once).
type readView struct {
	// seq is this view's publication sequence number (monotone from 1).
	seq uint64
	// terms maps attribute names to IDs. The vocabulary is
	// append-only, so the map is rebuilt only when it grew since the
	// previous publish and shared otherwise; vocabLen records the
	// length it covers. names is the inverse, in vocabulary order —
	// captured at publish time because the vocabulary is not
	// concurrent-safe — and is what the wire encoding carries.
	terms map[string]attr.ID
	names []string
	// vocabObj/vocabLen identify the vocabulary instance and length the
	// term table covers: reuse needs the same instance (a replication
	// catch-up swaps the vocabulary wholesale) at the same length.
	vocabObj *attr.Vocab
	vocabLen int
	routing  *core.RoutingView
	// eng identifies the engine the routing view was built from:
	// version-based reuse (and delta extraction between views) is only
	// valid against the same engine instance (a snapshot restore swaps
	// the engine wholesale).
	eng *core.Engine
	g   gauges

	// fullOnce guards the lazily cached full-record wire encoding.
	fullOnce sync.Once
	fullRec  []byte
}

// fullRecord returns the view's cached full-record wire encoding,
// building it on first use.
func (v *readView) fullRecord() []byte {
	v.fullOnce.Do(func() {
		v.fullRec = viewwire.AppendFull(nil, v.seq, v.names, v.routing.Export())
	})
	return v.fullRec
}

// notifier is the broadcast channel watchers block on; publishing
// closes the current one (after storing the new view) and installs a
// fresh channel for the next round of watchers.
type notifier struct {
	ch chan struct{}
}

// gauges are the engine-derived numbers of GET /v1/stats, captured at
// publish time. They change only at mutation boundaries, so the
// snapshot is exact — not stale — between publishes.
type gauges struct {
	peers       int
	slots       int
	clusters    int
	queries     int
	deadQueries int
	scost       float64
	wcost       float64
}

// publishLocked snapshots the current engine state into a fresh
// readView, publishes it, records it in the delta ring and wakes the
// watchers. Callers hold s.mu (or, during construction, have
// exclusive access).
func (s *Server) publishLocked() {
	prev := s.view.Load()
	var terms map[string]attr.ID
	var names []string
	var prevRouting *core.RoutingView
	if prev != nil {
		if prev.eng == s.eng {
			prevRouting = prev.routing
		}
		if prev.vocabObj == s.vocab && prev.vocabLen == s.vocab.Len() {
			terms = prev.terms
			names = prev.names
		}
	}
	if terms == nil {
		terms = make(map[string]attr.ID, s.vocab.Len())
		names = make([]string, s.vocab.Len())
		for id := 0; id < s.vocab.Len(); id++ {
			names[id] = s.vocab.Name(attr.ID(id))
			terms[names[id]] = attr.ID(id)
		}
	}
	s.viewSeq++
	v := &readView{
		seq:      s.viewSeq,
		terms:    terms,
		names:    names,
		vocabObj: s.vocab,
		vocabLen: s.vocab.Len(),
		routing:  s.eng.BuildRoutingView(prevRouting),
		eng:      s.eng,
		g: gauges{
			peers:       s.eng.NumPeers(),
			slots:       s.eng.NumSlots(),
			clusters:    s.eng.Config().NumNonEmpty(),
			queries:     s.eng.Workload().NumQueries(),
			deadQueries: s.eng.DeadQueries(0),
			scost:       s.eng.SCostNormalized(),
			wcost:       s.eng.WCostNormalized(),
		},
	}
	s.ringMu.Lock()
	s.ring[v.seq%viewRing] = v
	s.ringMu.Unlock()
	s.publishes.Add(1)
	// Order matters for watchers: the view must be visible before the
	// wake-up, so a woken watcher always observes seq >= the
	// publication that woke it.
	s.view.Store(v)
	next := &notifier{ch: make(chan struct{})}
	if old := s.notify.Swap(next); old != nil {
		close(old.ch)
	}
}

// loadView returns the latest published view (never nil: New and
// NewFromSnapshot publish before serving).
func (s *Server) loadView() *readView { return s.view.Load() }

// ringView returns the retained view with the given sequence number,
// or nil if the ring has moved past it.
func (s *Server) ringView(seq uint64) *readView {
	s.ringMu.Lock()
	v := s.ring[seq%viewRing]
	s.ringMu.Unlock()
	if v == nil || v.seq != seq {
		return nil
	}
	return v
}

// recordSince renders the wire record that carries a watcher from
// (seq, pop) to the latest view, or nil when the watcher is already
// current. A delta record is possible exactly when the watcher's base
// view is still in the ring, belongs to the same engine, and shares
// the latest view's population version — i.e. everything since the
// base was pure relocation; everything else falls back to a full
// record.
func (s *Server) recordSince(seq, pop uint64) []byte {
	cur := s.loadView()
	if cur.seq == seq && cur.routing.PopVersion() == pop {
		return nil
	}
	if base := s.ringView(seq); base != nil &&
		base.eng == cur.eng &&
		base.routing.PopVersion() == pop &&
		cur.routing.PopVersion() == pop {
		if moves, ok := cur.routing.DiffFrom(base.routing); ok {
			s.deltaRecords.Add(1)
			return viewwire.AppendDelta(nil, cur.seq, pop, moves)
		}
	}
	s.fullRecords.Add(1)
	return cur.fullRecord()
}
