package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzQueryHandlers throws arbitrary bodies at the JSON POST
// endpoints (/query, /query/batch, /peers — selected by the first
// input byte). The contract under fuzz: the daemon never panics,
// never returns a 5xx, and always answers with well-formed JSON —
// malformed bodies, unknown fields and oversized batches all land on
// clean 4xx responses. CI runs a short continuation of this fuzz on
// top of the committed seed corpus in testdata/fuzz.
func FuzzQueryHandlers(f *testing.F) {
	f.Add(byte('q'), []byte(`{"terms":["fz-a"]}`))
	f.Add(byte('q'), []byte(`{"terms":[]}`))
	f.Add(byte('q'), []byte(`{"terms":["fz-a"],"extra":1}`))
	f.Add(byte('q'), []byte(`{`))
	f.Add(byte('b'), []byte(`{"queries":[{"terms":["fz-a"]},{"terms":["fz-b","fz-c"]}]}`))
	f.Add(byte('b'), []byte(`{"queries":[]}`))
	f.Add(byte('b'), []byte(`{"queries":[{"terms":[]}]}`))
	f.Add(byte('p'), []byte(`{"items":[["fz-a"]],"queries":[{"terms":["fz-a"],"count":2}]}`))
	f.Add(byte('p'), []byte(`{"items":[["fz-a"]],"queries":[{"terms":["fz-a"],"count":-1}]}`))
	f.Add(byte('p'), []byte(`{"bogus":true}`))
	f.Add(byte('x'), []byte(`null`))
	f.Add(byte('q'), []byte(`"terms"`))
	f.Add(byte('q'), []byte(`{"terms":["fz-a"]}{"terms":["fz-b"]}`))

	paths := []string{"/query", "/query/batch", "/peers"}
	f.Fuzz(func(t *testing.T, which byte, body []byte) {
		s := New(Config{})
		h := s.Handler()
		seed := httptest.NewRequest("POST", "/peers", strings.NewReader(
			`{"items":[["fz-a","fz-b"],["fz-b","fz-c"]],"queries":[{"terms":["fz-a"],"count":1}]}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, seed)
		if rec.Code != http.StatusCreated {
			t.Fatalf("seed join failed: %d %s", rec.Code, rec.Body.Bytes())
		}

		path := paths[int(which)%len(paths)]
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here fails the fuzz run
		if rec.Code >= 500 {
			t.Fatalf("POST %s %q: server error %d %s", path, body, rec.Code, rec.Body.Bytes())
		}
		var out any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("POST %s %q: non-JSON response %q: %v", path, body, rec.Body.Bytes(), err)
		}
		if rec.Code >= 400 {
			m, ok := out.(map[string]any)
			if !ok || m["error"] == nil {
				t.Fatalf("POST %s %q: %d without error field: %s", path, body, rec.Code, rec.Body.Bytes())
			}
		}
	})
}
