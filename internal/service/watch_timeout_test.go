package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestViewWatchHugeTimeoutParks is the regression pin for the
// timeout_ms overflow: a value that fits int64 as milliseconds but
// overflows the nanosecond time.Duration used to overflow negative
// before the max clamp, so the deadline timer fired immediately and an
// up-to-date watcher got an instant 204 instead of parking. The fix
// clamps to watchMaxTimeout before converting; the watcher must stay
// parked and be woken by the next publication.
func TestViewWatchHugeTimeoutParks(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	doJSON(t, ts, "POST", "/v1/peers", joinBody(0, 0), http.StatusCreated)

	cur, _ := watchRecord(t, ts, "")
	pos := fmt.Sprintf("?seq=%d&pop=%d&timeout_ms=922337203685477580", cur.Seq, cur.PopVersion)

	type result struct{ status int }
	done := make(chan result, 1)
	go func() {
		status, _, _ := rawDo(t, ts, "GET", "/v1/view/watch"+pos, "")
		done <- result{status}
	}()

	// With the overflow bug this returned 204 within microseconds.
	select {
	case r := <-done:
		t.Fatalf("huge-timeout watcher answered immediately with %d; deadline overflowed", r.status)
	case <-time.After(150 * time.Millisecond):
	}

	doJSON(t, ts, "POST", "/v1/peers", joinBody(1, 1), http.StatusCreated)
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("woken watcher: status %d, want 200", r.status)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("watcher not woken by publication")
	}
}

// TestNewEpochNonZeroAndDistinct pins the epoch source: draws come
// from OS entropy, never zero, and practically never collide — in
// particular two instances created back to back (the case the old
// unseeded global-math/rand source risked making correlated) must not
// share an epoch.
func TestNewEpochNonZeroAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		e := newEpoch()
		if e == 0 {
			t.Fatal("newEpoch returned the reserved zero epoch")
		}
		if seen[e] {
			t.Fatalf("duplicate epoch %#x within 64 draws", e)
		}
		seen[e] = true
	}
	a, b := New(Config{}), New(Config{})
	if a.epoch == 0 || b.epoch == 0 || a.epoch == b.epoch {
		t.Fatalf("server epochs %#x and %#x: want distinct and nonzero", a.epoch, b.epoch)
	}
}
