package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestSteppedMaintenanceReleasesLockBetweenSteps pins the scheduler
// acceptance criterion: a maintenance period executed via Step never
// holds the service mutex across more than one step. The step hook —
// which the scheduler invokes between steps, after releasing the
// mutation lock — performs synchronous joins and leaves through the
// HTTP handlers, which themselves take the lock: if the scheduler
// held the mutex across steps, the first hook join would deadlock
// (and the test would time out) instead of completing mid-period.
func TestSteppedMaintenanceReleasesLockBetweenSteps(t *testing.T) {
	s := New(Config{StepBudget: 1, ReformWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 12; i++ {
		doJSON(t, ts, "POST", "/peers", joinBody(i%3, i), http.StatusCreated)
	}

	hookJoins := 0
	var joinedID int
	var leftOnce bool
	midPeriodActive := 0
	s.stepHook = func() {
		// The mutation lock is supposed to be free here. These calls
		// acquire it; a held lock deadlocks the test.
		switch {
		case hookJoins < 3:
			resp := doJSON(t, ts, "POST", "/peers", joinBody(hookJoins%3, 20+hookJoins), http.StatusCreated)
			joinedID = int(resp["id"].(float64))
			hookJoins++
		case !leftOnce:
			doJSON(t, ts, "DELETE", fmt.Sprintf("/peers/%d", joinedID), nil, http.StatusOK)
			leftOnce = true
		}
		if s.maintProgress.Load() != nil {
			midPeriodActive++
		}
	}

	rpt := s.Reform()
	if rpt.RoundsRun == 0 {
		t.Fatal("no rounds ran")
	}
	st := doJSON(t, ts, "GET", "/stats", nil, http.StatusOK)
	maint := st["maintenance"].(map[string]any)
	if maint["active"].(bool) {
		t.Fatal("maintenance still active after Reform returned")
	}
	if maint["step_budget"].(float64) != 1 {
		t.Fatalf("step_budget %v, want 1", maint["step_budget"])
	}
	if hookJoins == 0 {
		t.Fatal("step hook never ran: the period completed in a single step despite budget 1")
	}
	if midPeriodActive == 0 {
		t.Fatal("no hook call observed an active period")
	}
	if !leftOnce {
		t.Fatal("no leave interleaved with the period")
	}
	// 12 seeded + 3 hook joins - 1 leave.
	if st["peers"].(float64) != 14 {
		t.Fatalf("peers=%v, want 14", st["peers"])
	}
	lock := st["mutation_lock"].(map[string]any)
	if lock["holds"].(float64) == 0 {
		t.Fatal("mutation-lock histogram recorded no holds")
	}
}

// TestNegativeStepBudgetRunsMonolithic pins the escape hatch: a
// negative StepBudget runs each period under one lock hold (the
// pre-scheduler behavior) and still converges.
func TestNegativeStepBudgetRunsMonolithic(t *testing.T) {
	s := New(Config{StepBudget: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 9; i++ {
		doJSON(t, ts, "POST", "/peers", joinBody(i%3, i), http.StatusCreated)
	}
	steps := 0
	s.stepHook = func() { steps++ }
	rpt := s.Reform()
	if !rpt.Converged {
		t.Fatalf("monolithic reform did not converge: %+v", rpt)
	}
	if steps != 0 {
		t.Fatalf("monolithic reform released the lock %d times mid-period", steps)
	}
}

// TestSteppedMatchesMonolithicOutcome pins end-to-end equivalence at
// the service layer: the same joined population maintained with
// budget 1 and with one monolithic hold reaches identical costs and
// cluster counts.
func TestSteppedMatchesMonolithicOutcome(t *testing.T) {
	run := func(budget, workers int) (float64, float64) {
		s := New(Config{StepBudget: budget, ReformWorkers: workers})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for i := 0; i < 12; i++ {
			doJSON(t, ts, "POST", "/peers", joinBody(i%3, i), http.StatusCreated)
		}
		rpt := s.Reform()
		return rpt.FinalSCost, float64(rpt.FinalClusters)
	}
	wantS, wantC := run(-1, 1)
	for _, cfg := range [][2]int{{1, 1}, {1, 4}, {7, 2}, {1000, 1}} {
		if gotS, gotC := run(cfg[0], cfg[1]); gotS != wantS || gotC != wantC {
			t.Fatalf("budget=%d workers=%d: scost/clusters %g/%g, want %g/%g",
				cfg[0], cfg[1], gotS, gotC, wantS, wantC)
		}
	}
}
