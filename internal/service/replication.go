package service

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/replog"
	"repro/internal/workload"
)

// This file is the serve tier's replication layer: the leader side of
// the mutation log (every join, leave, maintenance-step grant batch,
// compaction and period boundary becomes a replog entry, appended
// under the same mutation-lock hold as the mutation itself), the
// GET /v1/replog/watch feed any node serves from its local log, the
// catch-up document a fresh or fallen-behind follower installs, and
// POST /v1/promote. The follower's sync loop lives in follow.go.
//
// Determinism is the contract that makes this work: the engine's
// mutation path is deterministic over (state, operation), so a
// follower that replays the leader's mutations in log order holds a
// byte-identical engine — same slots, same clusters, same costs — and
// the log carries outcomes (the join's placement, the compaction's
// removal count) purely to VERIFY that, never to re-decide it. The
// one decision that cannot be replayed is maintenance itself (its
// outcome depends on step budgets and interleaved churn only the
// leader saw), so maintenance relocations are replicated as data:
// each step's granted moves, final targets resolved.
//
// Every server instance carries a random epoch; both long-poll feeds
// (/v1/view/watch and /v1/replog/watch) stamp it on responses and
// compare it against the client's echoed copy, so a client that
// outlived its upstream's restart — sequence numbers reset, history
// gone — is detected by mismatch and resynchronized with a full
// record instead of being fed records keyed against someone else's
// history.

// epochHeader carries the serving instance's epoch on both replication
// feeds; clients echo it back as the `epoch` query parameter.
const epochHeader = "X-Reform-Epoch"

// Replication-feed bounds.
const (
	// replogMaxBatch bounds entries per /v1/replog/watch response.
	replogMaxBatch = 1024
	// replogRetain is how many applied entries the leader keeps for
	// incremental catch-up; followers further behind get a snapshot.
	// Truncation is amortized: the log is cut back to replogRetain
	// once it doubles.
	replogRetain = 4096
)

// newEpoch draws a random instance epoch from the OS entropy source.
// Zero is reserved ("no epoch"), so it is never returned. The global
// math/rand source is deliberately avoided: epochs must be distinct
// across instances even when processes share a seeding strategy, and
// nothing else in the process may perturb (or be perturbed by) the
// draw.
func newEpoch() uint64 {
	var buf [8]byte
	for {
		if _, err := crand.Read(buf[:]); err != nil {
			panic(fmt.Sprintf("service: reading entropy for epoch: %v", err))
		}
		if e := binary.LittleEndian.Uint64(buf[:]); e != 0 {
			return e
		}
	}
}

// currentTerm is the term stamped on outgoing replication records: the
// leadership term when leading, the highest replicated term otherwise.
func (s *Server) currentTerm() uint64 {
	if s.isLeader.Load() {
		return s.leaderTerm.Load()
	}
	return s.replLog.Term()
}

// logLocked appends one mutation to the replication log. Callers hold
// s.mu — the log order is the mutation order because every append
// shares the mutation's critical section. No-op on followers: their
// entries arrive pre-sequenced from the leader's stream.
func (s *Server) logLocked(kind replog.Kind, op any) {
	if !s.isLeader.Load() {
		return
	}
	var data []byte
	if op != nil {
		data = replog.EncodeOp(op)
	}
	s.replLog.Next(s.leaderTerm.Load(), kind, data)
	s.entriesLogged.Add(1)
	if s.replLog.Len() > 2*replogRetain {
		s.replLog.TruncateBefore(s.replLog.LastIndex() - replogRetain)
	}
}

// logGrantsLocked replicates the relocations a maintenance step
// granted beyond the first `drained` and returns the new cursor
// (Period.Moves at drain time). Callers hold s.mu; the entry shares
// the step's critical section, so followers apply each grant batch at
// the same history point the leader's read view first reflected it.
func (s *Server) logGrantsLocked(per *protocol.Period, drained int) int {
	n := per.Moves()
	if n <= drained || !s.isLeader.Load() {
		return n
	}
	reqs := per.AppendGrantsSince(nil, drained)
	op := replog.GrantsOp{Moves: make([]replog.Grant, len(reqs))}
	for i, r := range reqs {
		op.Moves[i] = replog.Grant{Slot: r.Peer, To: int(r.To)}
	}
	s.logLocked(replog.KindGrants, op)
	return n
}

// catchUpVersion identifies the catch-up document schema.
const catchUpVersion = 1

// catchUp is the snapshot payload of a RecSnapshot record: the serving
// state at one log position, pinned down to the identifier orderings a
// byte-identical replay needs. The regular Snapshot is not enough —
// restoring it re-interns terms and queries in peer order, but future
// log entries were produced against the leader's historical vocabulary
// ID order, QID order (dead queries included: they still occupy IDs
// until a compaction entry retires them) and vacated-slot stack, so
// the document carries all three explicitly.
type catchUp struct {
	Version     int     `json:"version"`
	Alpha       float64 `json:"alpha"`
	Epsilon     float64 `json:"epsilon"`
	Slots       int     `json:"slots"`
	Compactions int64   `json:"compactions"`
	// Terms is the vocabulary in ID order.
	Terms []string `json:"terms"`
	// Queries is every distinct query in QID order, as sorted term IDs.
	Queries [][]int       `json:"queries"`
	Peers   []catchUpPeer `json:"peers"`
	// Free is the vacated-slot stack (AddPeer pops the last element).
	Free []int `json:"free"`
	// Pop is the engine's population/content version, carried so the
	// follower's published RoutingViews are byte-identical to the
	// leader's (routers compare PopVersion when applying deltas).
	Pop uint64 `json:"pop"`
	// Index and Term are the log position the state reflects; the
	// follower resumes streaming from here.
	Index uint64 `json:"index"`
	Term  uint64 `json:"term"`
	// InPeriod reports a maintenance period open at this position — a
	// follower promoted before seeing its period_end must close it.
	InPeriod bool `json:"in_period"`
}

// catchUpPeer is one live peer, content and workload resolved to the
// pinned ID spaces.
type catchUpPeer struct {
	Slot    int     `json:"slot"`
	Cluster int     `json:"cluster"`
	Items   [][]int `json:"items"`
	// Workload pairs are {QID, count}.
	Workload [][2]int `json:"workload"`
}

// buildCatchUpLocked captures the serving state as a catch-up
// document. Callers hold s.mu, which also freezes the log position.
func (s *Server) buildCatchUpLocked() *catchUp {
	doc := &catchUp{
		Version:     catchUpVersion,
		Alpha:       s.cfg.Alpha,
		Epsilon:     s.cfg.Epsilon,
		Slots:       s.eng.NumSlots(),
		Compactions: s.compactions.Load(),
		Terms:       make([]string, s.vocab.Len()),
		Index:       s.replLog.LastIndex(),
		Term:        s.currentTerm(),
		InPeriod:    s.replOpenPeriod.Load(),
		Free:        append([]int(nil), s.eng.FreeSlots()...),
		Pop:         s.eng.PopVersion(),
	}
	for id := range doc.Terms {
		doc.Terms[id] = s.vocab.Name(attr.ID(id))
	}
	wl := s.eng.Workload()
	doc.Queries = make([][]int, wl.NumQueries())
	for qid := range doc.Queries {
		ids := wl.Query(workload.QID(qid)).IDs()
		q := make([]int, len(ids))
		for i, id := range ids {
			q[i] = int(id)
		}
		doc.Queries[qid] = q
	}
	for pid := 0; pid < s.eng.NumSlots(); pid++ {
		if !s.eng.IsLive(pid) {
			continue
		}
		cp := catchUpPeer{
			Slot:    pid,
			Cluster: int(s.eng.Config().ClusterOf(pid)),
		}
		for _, it := range s.eng.Peers()[pid].Items() {
			ids := it.IDs()
			item := make([]int, len(ids))
			for i, id := range ids {
				item[i] = int(id)
			}
			cp.Items = append(cp.Items, item)
		}
		for _, en := range wl.Peer(pid) {
			cp.Workload = append(cp.Workload, [2]int{int(en.Q), en.Count})
		}
		doc.Peers = append(doc.Peers, cp)
	}
	return doc
}

// installCatchUp replaces the server's overlay state with a catch-up
// document: fresh vocabulary interned in the pinned ID order, distinct
// queries interned in the pinned QID order, every peer placed in its
// recorded slot and cluster, and the vacated-slot stack installed so
// future replicated joins pop the same slots the leader's will.
func (s *Server) installCatchUp(data []byte) error {
	var doc catchUp
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("service: decode catch-up: %w", err)
	}
	if doc.Version != catchUpVersion {
		return fmt.Errorf("service: catch-up version %d, want %d", doc.Version, catchUpVersion)
	}
	vocab := attr.NewVocab()
	for id, name := range doc.Terms {
		if got := vocab.Intern(name); int(got) != id {
			return fmt.Errorf("service: catch-up term %d (%q) interned as %d", id, name, got)
		}
	}
	toSet := func(ids []int) (attr.Set, error) {
		out := make([]attr.ID, len(ids))
		for i, id := range ids {
			if id < 0 || id >= len(doc.Terms) {
				return attr.Set{}, fmt.Errorf("service: catch-up term id %d out of range", id)
			}
			out[i] = attr.ID(id)
		}
		return attr.NewSet(out...), nil
	}
	wl := workload.New(doc.Slots)
	for qid, ids := range doc.Queries {
		set, err := toSet(ids)
		if err != nil {
			return err
		}
		if set.IsEmpty() {
			return fmt.Errorf("service: catch-up query %d empty", qid)
		}
		if got := wl.Intern(set); int(got) != qid {
			return fmt.Errorf("service: catch-up query %d interned as %d", qid, got)
		}
	}
	peers := make([]*peer.Peer, doc.Slots)
	assign := make([]cluster.CID, doc.Slots)
	for i := range assign {
		assign[i] = cluster.None
	}
	for _, cp := range doc.Peers {
		if cp.Slot < 0 || cp.Slot >= doc.Slots {
			return fmt.Errorf("service: catch-up slot %d out of range [0,%d)", cp.Slot, doc.Slots)
		}
		if peers[cp.Slot] != nil {
			return fmt.Errorf("service: catch-up slot %d duplicated", cp.Slot)
		}
		if cp.Cluster < 0 || cp.Cluster >= doc.Slots {
			return fmt.Errorf("service: catch-up peer %d in invalid cluster %d", cp.Slot, cp.Cluster)
		}
		pr := peer.New(cp.Slot)
		items := make([]attr.Set, 0, len(cp.Items))
		for _, it := range cp.Items {
			set, err := toSet(it)
			if err != nil {
				return err
			}
			items = append(items, set)
		}
		pr.SetItems(items)
		peers[cp.Slot] = pr
		for _, qc := range cp.Workload {
			if qc[0] < 0 || qc[0] >= wl.NumQueries() || qc[1] <= 0 {
				return fmt.Errorf("service: catch-up peer %d has invalid workload entry %v", cp.Slot, qc)
			}
			wl.AddQID(cp.Slot, workload.QID(qc[0]), qc[1])
		}
		assign[cp.Slot] = cluster.CID(cp.Cluster)
	}
	eng := core.New(peers, wl, cluster.FromAssignment(assign), s.cfg.Theta, doc.Alpha)
	if err := eng.SetFreeSlots(doc.Free); err != nil {
		return err
	}
	eng.SetPopVersion(doc.Pop)

	defer s.lockMutation()()
	s.cfg.Alpha, s.cfg.Epsilon = doc.Alpha, doc.Epsilon
	s.vocab, s.eng = vocab, eng
	s.runner = s.newRunner()
	s.compactions.Store(doc.Compactions)
	s.replLog.Reset(doc.Index, doc.Term)
	s.replOpenPeriod.Store(doc.InPeriod)
	s.publishLocked()
	s.catchupsInstalled.Add(1)
	s.replSynced.Store(true)
	return nil
}

// applyEntryLocked replays one replicated mutation through the same
// engine path the leader used, verifying the outcomes the entry
// records. An error means divergence: the caller must discard its
// position and resynchronize with a catch-up snapshot. Callers hold
// s.mu and publish after a nil return.
func (s *Server) applyEntryLocked(e replog.Entry) error {
	switch e.Kind {
	case replog.KindJoin:
		op, err := replog.DecodeOp[replog.JoinOp](e.Data)
		if err != nil {
			return err
		}
		items := make([]attr.Set, 0, len(op.Items))
		for _, it := range op.Items {
			items = append(items, attr.NewSet(s.vocab.InternAll(it)...))
		}
		queries := make([]attr.Set, 0, len(op.Queries))
		counts := make([]int, 0, len(op.Queries))
		for _, q := range op.Queries {
			if len(q.Terms) == 0 || q.Count <= 0 {
				return fmt.Errorf("service: replicated join has invalid query")
			}
			queries = append(queries, attr.NewSet(s.vocab.InternAll(q.Terms)...))
			counts = append(counts, q.Count)
		}
		pr := peer.New(-1)
		pr.SetItems(items)
		pid := s.eng.AddPeer(pr, queries, counts, cluster.None)
		if pid != op.Slot {
			return fmt.Errorf("service: replicated join placed in slot %d, leader chose %d (diverged)", pid, op.Slot)
		}
		if got := int(s.eng.Config().ClusterOf(pid)); got != op.Cluster {
			return fmt.Errorf("service: replicated join placed in cluster %d, leader chose %d (diverged)", got, op.Cluster)
		}
		s.joins.Add(1)
	case replog.KindLeave:
		op, err := replog.DecodeOp[replog.LeaveOp](e.Data)
		if err != nil {
			return err
		}
		if op.Slot < 0 || op.Slot >= s.eng.NumSlots() || !s.eng.IsLive(op.Slot) {
			return fmt.Errorf("service: replicated leave of non-live slot %d (diverged)", op.Slot)
		}
		s.eng.RemovePeer(op.Slot)
		s.leaves.Add(1)
	case replog.KindGrants:
		op, err := replog.DecodeOp[replog.GrantsOp](e.Data)
		if err != nil {
			return err
		}
		for _, m := range op.Moves {
			if m.Slot < 0 || m.Slot >= s.eng.NumSlots() || !s.eng.IsLive(m.Slot) {
				return fmt.Errorf("service: replicated grant for non-live slot %d (diverged)", m.Slot)
			}
			s.eng.Move(m.Slot, cluster.CID(m.To))
		}
		s.moves.Add(int64(len(op.Moves)))
	case replog.KindCompact:
		op, err := replog.DecodeOp[replog.CompactOp](e.Data)
		if err != nil {
			return err
		}
		removed := s.eng.Compact(0)
		if removed != op.Removed || s.eng.Workload().NumQueries() != op.Queries {
			return fmt.Errorf("service: replicated compaction removed %d -> %d queries, leader had %d -> %d (diverged)",
				removed, s.eng.Workload().NumQueries(), op.Removed, op.Queries)
		}
		s.compactions.Add(1)
		s.compacted.Add(int64(removed))
	case replog.KindPeriodStart:
		s.replOpenPeriod.Store(true)
	case replog.KindPeriodEnd:
		op, err := replog.DecodeOp[replog.PeriodEndOp](e.Data)
		if err != nil {
			return err
		}
		s.replOpenPeriod.Store(false)
		s.reforms.Add(1)
		s.rounds.Add(int64(op.Rounds))
	default:
		return fmt.Errorf("service: replicated entry of unknown kind %d", e.Kind)
	}
	if err := s.replLog.Append(e); err != nil {
		return err
	}
	s.entriesApplied.Add(1)
	return nil
}

// handleReplogWatch is the mutation-log feed: a long-poll that carries
// a follower from its log position to the present. First contact, an
// epoch mismatch (the client followed a previous instance) or a
// position below the truncation floor get a snapshot record built from
// live state; a positioned follower gets the next batch of entries; an
// up-to-date one parks until the next append, its timeout (204) or
// server shutdown (204). Any node serves the feed from its local log,
// so a promoted follower's own followers keep streaming seamlessly.
func (s *Server) handleReplogWatch(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(epochHeader, strconv.FormatUint(s.epoch, 10))
	q := r.URL.Query()
	var from uint64
	positioned := false
	if raw := q.Get("from"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			api.Error(w, http.StatusBadRequest, api.CodeBadParam, "bad from %q", raw)
			return
		}
		from, positioned = n, true
	}
	if raw := q.Get("epoch"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			api.Error(w, http.StatusBadRequest, api.CodeBadParam, "bad epoch %q", raw)
			return
		}
		if n != s.epoch {
			positioned = false
		}
	} else {
		// No epoch: the client cannot prove its position is against
		// this instance's history.
		positioned = false
	}
	timeout, err := api.ParseTimeoutMS(q.Get("timeout_ms"), watchDefaultTimeout, watchMaxTimeout)
	if err != nil {
		api.Error(w, http.StatusBadRequest, api.CodeBadParam, "%v", err)
		return
	}

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		notify := s.replLog.Watch()
		if !positioned {
			unlock := s.lockMutation()
			doc := s.buildCatchUpLocked()
			unlock()
			// The document is a private copy; encode and ship it off
			// the mutation lock.
			rec := replog.AppendSnapshot(nil, doc.Term, doc.Index, replog.EncodeOp(doc))
			s.catchupsServed.Add(1)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(rec)
			return
		}
		batch, ok := s.replLog.Since(from, replogMaxBatch)
		if !ok {
			// Below the truncation floor, or claiming a future the log
			// has not reached: resynchronize with a snapshot.
			positioned = false
			continue
		}
		if len(batch) > 0 {
			rec := replog.AppendEntries(nil, s.currentTerm(), batch)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(rec)
			return
		}
		select {
		case <-notify:
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-s.stop:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// promoteRequest is the POST /v1/promote body.
type promoteRequest struct {
	// Mode is "resume" (default: run a maintenance period immediately
	// over the replicated state, completing what the dead leader's
	// in-flight period would have) or "abort" (close any open period
	// and wait for the regular reform cadence). Both converge to the
	// same clusters; resume gets there without waiting a tick.
	Mode string `json:"mode"`
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	req := promoteRequest{Mode: "resume"}
	if r.ContentLength != 0 {
		if !api.DecodeStrict(w, r, "promote", &req) {
			return
		}
	}
	if req.Mode != "resume" && req.Mode != "abort" {
		api.Error(w, http.StatusBadRequest, api.CodeBadParam, "promote mode %q (want resume or abort)", req.Mode)
		return
	}
	term, err := s.Promote(req.Mode)
	if err != nil {
		api.Error(w, http.StatusConflict, api.CodeNotLeader, "%v", err)
		return
	}
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"role": "leader",
		"term": term,
		"mode": req.Mode,
	})
}

// Promote turns a follower into the leader: the follow loop is stopped
// and drained, the term advances past everything replicated, and a
// maintenance period the dead leader left open is closed in the log
// (every grant it had already made is replicated state — nothing is
// lost). Mode "resume" then runs a fresh period immediately — over the
// replicated state it converges to the same clusters the interrupted
// period was heading for; "abort" leaves that to the reform ticker.
func (s *Server) Promote(mode string) (term uint64, err error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.isLeader.Load() {
		return 0, fmt.Errorf("service: already the leader (term %d)", s.leaderTerm.Load())
	}
	// Stop the follow loop first so no entry lands between the term
	// bump and leadership: after followDone, the log is quiescent.
	s.followCancel()
	<-s.followDone

	unlock := s.lockMutation()
	term = s.replLog.Term() + 1
	s.leaderTerm.Store(term)
	s.isLeader.Store(true)
	s.replSynced.Store(true)
	if s.replOpenPeriod.Load() {
		// Close the dead leader's period at the last replicated step.
		s.logLocked(replog.KindPeriodEnd, replog.PeriodEndOp{Aborted: true})
		s.replOpenPeriod.Store(false)
	}
	unlock()
	s.cfg.Logf("promote: leading at term %d (mode %s)", term, mode)

	if mode == "resume" {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			rpt := s.Reform()
			s.cfg.Logf("promote: resumed maintenance: %d rounds, %d moves", rpt.RoundsRun, countMoves(rpt))
		}()
	}
	return term, nil
}

// leaderOnly gates a control-plane mutation: followers answer 307 to
// their leader (Go clients replay the body via Request.GetBody) or 503
// not_leader when no leader is known.
func (s *Server) leaderOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.isLeader.Load() {
			h(w, r)
			return
		}
		if u, _ := s.leaderURL.Load().(string); u != "" {
			http.Redirect(w, r, u+r.URL.RequestURI(), http.StatusTemporaryRedirect)
			return
		}
		api.Error(w, http.StatusServiceUnavailable, api.CodeNotLeader,
			"follower with no known leader; promote one or retry")
	}
}

// replicationStats is the /v1/stats replication section.
func (s *Server) replicationStats() map[string]any {
	role := "follower"
	if s.isLeader.Load() {
		role = "leader"
	}
	out := map[string]any{
		"role":               role,
		"term":               s.currentTerm(),
		"epoch":              strconv.FormatUint(s.epoch, 10),
		"log_base":           s.replLog.Base(),
		"log_last":           s.replLog.LastIndex(),
		"log_len":            s.replLog.Len(),
		"entries_logged":     s.entriesLogged.Load(),
		"entries_applied":    s.entriesApplied.Load(),
		"catchups_served":    s.catchupsServed.Load(),
		"catchups_installed": s.catchupsInstalled.Load(),
		"sync_errors":        s.replErrors.Load(),
		"synced":             s.isLeader.Load() || s.replSynced.Load(),
		"open_period":        s.replOpenPeriod.Load(),
	}
	if u, _ := s.leaderURL.Load().(string); u != "" {
		out["leader_url"] = u
	}
	return out
}
