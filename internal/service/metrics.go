package service

import "repro/internal/api"

// The daemon's lock-free request metrics live in the shared api
// package (the router tier records through the same implementation);
// this file only lays out which endpoints the daemon instruments and
// how GET /v1/stats names them.

// serverMetrics holds one api.EndpointMetrics per instrumented
// endpoint plus the mutation-lock hold-time histogram. Legacy
// unprefixed aliases share their v1 endpoint's metrics: the stats
// entry describes the endpoint, not the spelling the client used.
type serverMetrics struct {
	query    api.EndpointMetrics
	batch    api.EndpointMetrics
	stats    api.EndpointMetrics
	join     api.EndpointMetrics
	peerGet  api.EndpointMetrics
	leave    api.EndpointMetrics
	reform   api.EndpointMetrics
	compact  api.EndpointMetrics
	snapshot api.EndpointMetrics
	watch    api.EndpointMetrics
	replog   api.EndpointMetrics
	promote  api.EndpointMetrics

	// lockHold records every mutation-lock hold duration (joins,
	// leaves, compactions, snapshots and individual maintenance
	// steps). Under the stepped scheduler its p99 is bounded by one
	// step's work, not one period's.
	lockHold api.LatencyHist
}

// init stamps each endpoint with its canonical v1 route, which the
// stats payload reports so dashboards key on the HTTP surface.
func (sm *serverMetrics) init() {
	sm.query.Route = "POST /v1/query"
	sm.batch.Route = "POST /v1/query/batch"
	sm.stats.Route = "GET /v1/stats"
	sm.join.Route = "POST /v1/peers"
	sm.peerGet.Route = "GET /v1/peers/{id}"
	sm.leave.Route = "DELETE /v1/peers/{id}"
	sm.reform.Route = "POST /v1/reform"
	sm.compact.Route = "POST /v1/compact"
	sm.snapshot.Route = "GET /v1/snapshot"
	sm.watch.Route = "GET /v1/view/watch"
	sm.replog.Route = "GET /v1/replog/watch"
	sm.promote.Route = "POST /v1/promote"
}

// endpoints renders the per-endpoint stats map.
func (sm *serverMetrics) endpoints() map[string]any {
	return map[string]any{
		"query":        sm.query.Snapshot(),
		"query_batch":  sm.batch.Snapshot(),
		"stats":        sm.stats.Snapshot(),
		"peers_join":   sm.join.Snapshot(),
		"peers_get":    sm.peerGet.Snapshot(),
		"peers_leave":  sm.leave.Snapshot(),
		"reform":       sm.reform.Snapshot(),
		"compact":      sm.compact.Snapshot(),
		"snapshot":     sm.snapshot.Snapshot(),
		"view_watch":   sm.watch.Snapshot(),
		"replog_watch": sm.replog.Snapshot(),
		"promote":      sm.promote.Snapshot(),
	}
}
