package service

import (
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"
)

// This file implements the daemon's lock-free request metrics: every
// endpoint owns an endpointMetrics — request/error counters plus a
// log₂-bucketed latency histogram — updated with atomics only, so
// GET /stats reads exact numbers at any moment, including while a
// maintenance period holds the server mutex.

// latBuckets spans 1ns..2^43ns (~2.4h); slower requests clamp into
// the last bucket.
const latBuckets = 44

// latencyHist is a lock-free log₂-bucketed latency histogram. Bucket
// i counts samples whose nanosecond duration has bit length i, i.e.
// durations in [2^(i-1), 2^i).
type latencyHist struct {
	sumNs  atomic.Int64
	bucket [latBuckets]atomic.Int64
}

// Observe records one request latency.
func (h *latencyHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= latBuckets {
		i = latBuckets - 1
	}
	h.bucket[i].Add(1)
	h.sumNs.Add(ns)
}

// quantiles estimates the given quantiles (ascending, in [0,1]) in
// one pass, returning each as the upper bound of the bucket holding
// its rank — an overestimate by at most 2x, which is the resolution
// the log₂ buckets buy for being lock-free. It also returns the total
// sample count. Concurrent Observes may land mid-scan; the estimate
// is self-consistent over the counts it reads.
func (h *latencyHist) quantiles(qs []float64) (total int64, out []time.Duration) {
	var counts [latBuckets]int64
	for i := range counts {
		counts[i] = h.bucket[i].Load()
		total += counts[i]
	}
	out = make([]time.Duration, len(qs))
	if total == 0 {
		return 0, out
	}
	seen := int64(0)
	qi := 0
	for i := 0; i < latBuckets && qi < len(qs); i++ {
		seen += counts[i]
		for qi < len(qs) && float64(seen) >= qs[qi]*float64(total) {
			out[qi] = time.Duration(uint64(1) << uint(i))
			qi++
		}
	}
	return total, out
}

// endpointMetrics aggregates one endpoint's counters and latencies.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	lat      latencyHist
}

// snapshot renders the endpoint's stats for the /stats payload.
func (m *endpointMetrics) snapshot() map[string]any {
	_, q := m.lat.quantiles([]float64{0.5, 0.95, 0.99})
	n := m.requests.Load()
	meanUs := 0.0
	if n > 0 {
		meanUs = float64(m.lat.sumNs.Load()) / float64(n) / 1e3
	}
	return map[string]any{
		"requests": n,
		"errors":   m.errors.Load(),
		"mean_us":  meanUs,
		"p50_us":   float64(q[0].Nanoseconds()) / 1e3,
		"p95_us":   float64(q[1].Nanoseconds()) / 1e3,
		"p99_us":   float64(q[2].Nanoseconds()) / 1e3,
	}
}

// holdSnapshot renders a bare histogram (no error counter) for the
// /stats payload — used for the mutation-lock hold times, where the
// histogram is the entire story: how long any single critical section
// stalls a queued join or leave.
func (h *latencyHist) holdSnapshot() map[string]any {
	total, q := h.quantiles([]float64{0.5, 0.95, 0.99})
	meanUs := 0.0
	if total > 0 {
		meanUs = float64(h.sumNs.Load()) / float64(total) / 1e3
	}
	return map[string]any{
		"holds":   total,
		"mean_us": meanUs,
		"p50_us":  float64(q[0].Nanoseconds()) / 1e3,
		"p95_us":  float64(q[1].Nanoseconds()) / 1e3,
		"p99_us":  float64(q[2].Nanoseconds()) / 1e3,
	}
}

// serverMetrics holds one endpointMetrics per instrumented endpoint
// plus the mutation-lock hold-time histogram.
type serverMetrics struct {
	query    endpointMetrics
	batch    endpointMetrics
	stats    endpointMetrics
	join     endpointMetrics
	peerGet  endpointMetrics
	leave    endpointMetrics
	reform   endpointMetrics
	compact  endpointMetrics
	snapshot endpointMetrics

	// lockHold records every mutation-lock hold duration (joins,
	// leaves, compactions, snapshots and individual maintenance
	// steps). Under the stepped scheduler its p99 is bounded by one
	// step's work, not one period's.
	lockHold latencyHist
}

// endpoints renders the per-endpoint stats map.
func (sm *serverMetrics) endpoints() map[string]any {
	return map[string]any{
		"query":       sm.query.snapshot(),
		"query_batch": sm.batch.snapshot(),
		"stats":       sm.stats.snapshot(),
		"peers_join":  sm.join.snapshot(),
		"peers_get":   sm.peerGet.snapshot(),
		"peers_leave": sm.leave.snapshot(),
		"reform":      sm.reform.snapshot(),
		"compact":     sm.compact.snapshot(),
		"snapshot":    sm.snapshot.snapshot(),
	}
}

// statusWriter captures the response code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency
// recording for m. The wrapper itself takes no locks.
func instrument(m *endpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		m.requests.Add(1)
		if sw.code >= 400 {
			m.errors.Add(1)
		}
		m.lat.Observe(time.Since(start))
	}
}
