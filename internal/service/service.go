// Package service runs the clustered overlay as a long-lived network
// daemon: an always-on process whose membership is driven by HTTP
// requests (peers join and leave at any time through the engine's
// incremental membership path) and whose overlay quality is sustained
// by reformulation rounds on a ticker — the paper's periodic selfish
// maintenance turned into an online serving loop.
//
// The JSON API lives under a versioned /v1/ prefix and splits into a
// data plane — reads any stateless router replica (internal/router)
// can also serve — and a control plane only this authoritative daemon
// serves:
//
//	data plane:
//	  POST   /v1/query        route a query against the live population
//	  POST   /v1/query/batch  route up to 1024 queries in one request
//	  GET    /v1/stats        live system metrics (exact, lock-free)
//	control plane:
//	  POST   /v1/peers        admit a peer (content items + local workload)
//	  GET    /v1/peers/{id}   inspect one peer (cluster, individual cost)
//	  DELETE /v1/peers/{id}   retire a peer
//	  POST   /v1/reform       run one maintenance period now
//	  POST   /v1/compact      retire dead workload queries now
//	  GET    /v1/snapshot     full serialized state (the snapshot format)
//	  GET    /v1/view/watch   long-poll the routing-view replication feed
//
// The original unprefixed paths remain as deprecated aliases of the
// same handlers (marked with a Deprecation response header). Errors
// everywhere carry the api package's JSON envelope with a stable
// machine-readable code; see API.md at the repository root.
//
// # Concurrency: a mutation path and a lock-free read path
//
// All mutations (join, leave, reform, compact, restore) serialize on
// one mutex: the cost engine is single-threaded by design (it owns
// scratch buffers), and membership operations are cheap (proportional
// to the moving peer's footprint), so a single writer serializes
// cleanly. Maintenance periods, the one mutation whose cost grows
// with the system rather than with one peer's footprint, run OFF the
// mutation critical path: a resumable protocol.Period is stepped with
// at most StepBudget work units per mutex hold (each step's phase-1
// decide scan additionally fans out over ReformWorkers cores), the
// lock is released between steps so queued joins and leaves
// interleave with the period, and the read view is republished after
// every step that granted relocations. p99 mutation latency is
// therefore bounded by one step, not one period; the /v1/stats
// mutation_lock histogram records every hold. After every mutation
// the server snapshots the routing
// state into an immutable read view — term table, posting lists,
// cluster assignment, stats gauges — and publishes it through an
// atomic pointer. POST /v1/query, POST /v1/query/batch and
// GET /v1/stats are served entirely from the latest view: they never
// take the mutex, scale across cores, and keep answering at full
// speed while a slow maintenance period holds the lock. Every answer
// is snapshot isolated — it reflects exactly one published view,
// never a half-applied mutation — and all queries of a batch share
// one view. Request counters and latency histograms are atomics, so
// GET /v1/stats is exact even mid-maintenance.
//
// Each publication is also numbered and fed to GET /v1/view/watch,
// the replication feed a router tier follows: full view records on
// first contact or population change, compact pure-relocation deltas
// while only the cluster assignment moves (see internal/viewwire).
//
// Snapshots taken periodically and on graceful shutdown let the
// overlay survive restarts: a new process restored from a snapshot
// serves the same peers, clusters and costs.
//
// # Long-running operation
//
// Distinct queries intern QIDs, and every QID owns a row in the cost
// engine's aggregates — under open-ended churn with novel queries that
// state grows with query history, not with the live population. The
// daemon therefore compacts in place (Engine.Compact: dead QIDs are
// retired and the survivors densely renumbered) whenever the dead-QID
// ratio crosses CompactDeadRatio, checked on the CompactEvery ticker
// and after every maintenance period; POST /v1/compact forces one
// immediately. Compaction preserves every cost and answer exactly, so
// it is invisible to clients; with it the daemon's memory is bounded
// by its live query set and reform serve runs indefinitely.
package service

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/replog"
	"repro/internal/workload"
)

// Config parameterizes a Server. Zero values fall back to the paper's
// setting (α = 1, ε = 0.001, linear θ).
type Config struct {
	// Alpha is the membership-cost weight.
	Alpha float64
	// Epsilon is the reformulation gain threshold.
	Epsilon float64
	// Theta is the cluster participation cost; nil means linear.
	Theta cluster.Theta
	// MaxRounds bounds each maintenance period.
	MaxRounds int
	// ReformEvery drives maintenance periods on a ticker; 0 disables
	// the ticker (maintenance then runs only via POST /v1/reform).
	ReformEvery time.Duration
	// StepBudget bounds the work — phase-1 cluster scans plus phase-2
	// grant services — one maintenance step performs while holding the
	// mutation lock; between steps the lock is released, so joins and
	// leaves interleave with an in-progress period and p99 mutation
	// latency is bounded by one step instead of one period. 0 means
	// the default 32; a negative value runs each whole period under a
	// single lock hold (the pre-scheduler behavior).
	StepBudget int
	// ReformWorkers sizes the worker pool the phase-1 decide scan of
	// each maintenance step fans out over (protocol.Options.Workers).
	// 0 means one worker per CPU; 1 scans serially. Any value produces
	// byte-identical maintenance outcomes.
	ReformWorkers int
	// ExactDecide disables the sublinear phase-1 pruning
	// (protocol.Options.ExactDecide): every maintenance scan then
	// evaluates every peer exhaustively. The pruned default is
	// byte-identical; this is an escape hatch for debugging and
	// cross-checking.
	ExactDecide bool
	// SnapshotPath, when set, is where periodic and shutdown snapshots
	// are written.
	SnapshotPath string
	// SnapshotEvery is the snapshot period (0: only on shutdown).
	SnapshotEvery time.Duration
	// CompactEvery drives workload-compaction checks on a ticker; 0
	// disables the ticker (the check still runs after every
	// maintenance period, and POST /v1/compact forces a compaction).
	CompactEvery time.Duration
	// CompactDeadRatio is the dead-QID fraction above which a check
	// compacts; 0 means the default 0.5. A negative value compacts
	// whenever any dead query exists (an always-compact policy).
	CompactDeadRatio float64
	// CompactMinQueries suppresses threshold compactions while the
	// workload has fewer distinct queries than this (tiny workloads
	// flap around any ratio); 0 means the default 64.
	CompactMinQueries int
	// RouteCache sizes the view-epoch hot-query result cache the data
	// plane consults (entries; rounded up to a power of two). 0 means
	// the default 4096; a negative value disables caching so every
	// query routes from scratch. Cached answers are byte-identical to
	// uncached ones by construction (entries are keyed to the exact
	// published view), so this is purely a performance knob.
	RouteCache int
	// Join, when non-empty, starts the server as a replication
	// follower of the listed base URLs (rotated on failure; usually
	// the leader first, then sibling followers as relays). A follower
	// serves the data plane from its replicated state, redirects
	// control-plane mutations to its leader, and becomes the leader
	// itself via POST /v1/promote. Empty means lead from the start.
	Join []string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.001
	}
	if c.Theta.F == nil {
		c.Theta = cluster.LinearTheta()
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 300
	}
	if c.StepBudget == 0 {
		c.StepBudget = 32
	}
	if c.ReformWorkers == 0 {
		c.ReformWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CompactDeadRatio == 0 {
		c.CompactDeadRatio = 0.5
	}
	if c.CompactMinQueries == 0 {
		c.CompactMinQueries = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the online overlay daemon.
type Server struct {
	cfg Config

	// mu serializes the mutation path: every write to vocab, eng and
	// runner happens under it, followed by a publishLocked. The read
	// path (query, batch, stats, watch) never takes it. Acquire it
	// through lockMutation so every hold is recorded in the hold-time
	// histogram; maintenance periods take it once per bounded step,
	// never across steps.
	mu      sync.Mutex
	vocab   *attr.Vocab
	eng     *core.Engine
	runner  *protocol.Runner
	started time.Time
	// viewSeq numbers publications (under mu; monotone from 1).
	viewSeq uint64

	// maintMu serializes maintenance periods themselves (the ticker
	// and POST /v1/reform): one period at a time, while mu stays free
	// between its steps.
	maintMu sync.Mutex
	// maintProgress is the in-progress period's latest position (nil
	// when no period runs); /v1/stats reads it lock-free.
	maintProgress atomic.Pointer[protocol.Progress]
	// stepHook, when set (tests only), runs between maintenance steps
	// with the mutation lock released.
	stepHook func()

	// routeCache is the view-epoch hot-query result cache the data
	// plane consults (nil when Config.RouteCache < 0). Entries are
	// keyed to the exact *RoutingView they were computed against, so
	// every publication invalidates wholesale with no coordination.
	routeCache *core.RouteCache

	// view is the atomically published read snapshot; ring retains the
	// last viewRing publications as delta bases for /v1/view/watch and
	// notify wakes its long-pollers. See view.go.
	view   atomic.Pointer[readView]
	ringMu sync.Mutex
	ring   [viewRing]*readView
	notify atomic.Pointer[notifier]

	// Operational counters. All atomics: the read path and GET
	// /v1/stats touch them without the mutex.
	reforms atomic.Int64 // maintenance periods run
	rounds  atomic.Int64 // reformulation rounds executed
	moves   atomic.Int64 // granted relocations
	// Cumulative phase-1 evaluation outcomes over finished maintenance
	// periods (see core.ScanStats); the in-flight period's counters are
	// exposed live through maintProgress.
	scanned       atomic.Int64
	skippedClean  atomic.Int64
	shortlistHits atomic.Int64
	scanFallbacks atomic.Int64
	fullScans     atomic.Int64
	joins         atomic.Int64
	leaves        atomic.Int64
	// compactions is the daemon's compaction generation (carried
	// across snapshot restores); compacted counts retired queries.
	compactions atomic.Int64
	compacted   atomic.Int64
	// served counts queries answered (single + batched).
	served atomic.Int64
	// publishes counts read-view publications; fullRecords and
	// deltaRecords count what /v1/view/watch actually shipped.
	publishes    atomic.Int64
	fullRecords  atomic.Int64
	deltaRecords atomic.Int64

	met serverMetrics

	// Replication (see replication.go and follow.go). Every node —
	// leader or follower — carries the mutation log; the leader
	// appends to it under the mutation lock, followers append what
	// they replay from the stream, and any node serves the
	// /v1/replog/watch feed from its copy. epoch is this instance's
	// random identity, stamped on both replication feeds so clients
	// detect restarts.
	replLog    *replog.Log
	epoch      uint64
	isLeader   atomic.Bool
	leaderTerm atomic.Uint64
	// replSynced flips once a follower installs its first catch-up;
	// until then its data plane answers 503 not_ready.
	replSynced atomic.Bool
	// replOpenPeriod tracks whether the log shows a maintenance period
	// open (leader: set around Reform; follower: tracked from period
	// boundary entries) — what a promotion must close.
	replOpenPeriod atomic.Bool
	// leaderURL is where a follower redirects control-plane mutations
	// (the upstream it last synced from; holds a string).
	leaderURL atomic.Value
	// promoteMu serializes Promote against itself.
	promoteMu sync.Mutex
	// followCancel/followDone bound the follower sync loop's lifetime;
	// Promote and BeginShutdown cancel it and wait on done.
	followCancel context.CancelFunc
	followDone   chan struct{}

	entriesLogged     atomic.Int64
	entriesApplied    atomic.Int64
	catchupsServed    atomic.Int64
	catchupsInstalled atomic.Int64
	replErrors        atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Server over an initially empty system: the population
// grows entirely through the join API, a snapshot restore, or — with
// Config.Join set — replication from a leader.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		vocab:   attr.NewVocab(),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	s.met.init()
	if cfg.RouteCache >= 0 {
		s.routeCache = core.NewRouteCache(cfg.RouteCache)
	}
	s.replLog = replog.NewLog()
	s.epoch = newEpoch()
	// No follow loop yet: done is pre-closed and cancel a no-op, so
	// Promote works even on a follower whose Start was never called.
	s.followDone = make(chan struct{})
	close(s.followDone)
	s.followCancel = func() {}
	if len(cfg.Join) == 0 {
		// Standalone == a leader with no followers yet; it logs every
		// mutation so followers can join at any time.
		s.isLeader.Store(true)
		s.leaderTerm.Store(1)
	}
	s.eng = core.New(nil, workload.New(0), cluster.FromAssignment(nil), cfg.Theta, cfg.Alpha)
	s.runner = s.newRunner()
	s.publishLocked()
	return s
}

// Start launches the background loops: maintenance and compaction
// tickers (which fire only while this node leads — a promoted
// follower's tickers come alive without new goroutines), the snapshot
// ticker, and — when Config.Join is set — the replication follow loop.
// Callers that only use the HTTP handler (tests, manual maintenance)
// may skip it.
func (s *Server) Start() {
	if s.cfg.ReformEvery > 0 {
		s.wg.Add(1)
		go s.tick(s.cfg.ReformEvery, func() {
			if !s.isLeader.Load() {
				return // maintenance is scheduled by the leader alone
			}
			rpt := s.Reform()
			s.cfg.Logf("reform: %d rounds, %d moves, scost %.4f -> %.4f",
				rpt.RoundsRun, countMoves(rpt), rpt.InitialSCost, rpt.FinalSCost)
		})
	}
	if s.cfg.SnapshotPath != "" && s.cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.tick(s.cfg.SnapshotEvery, func() {
			if err := s.WriteSnapshot(s.cfg.SnapshotPath); err != nil {
				s.cfg.Logf("snapshot: %v", err)
			}
		})
	}
	if s.cfg.CompactEvery > 0 {
		s.wg.Add(1)
		go s.tick(s.cfg.CompactEvery, func() {
			if !s.isLeader.Load() {
				return // compactions replicate from the leader's log
			}
			defer s.lockMutation()()
			// Republish only when the check actually compacted: a
			// no-op tick changes nothing a view carries.
			if s.maybeCompactLocked() > 0 {
				s.publishLocked()
			}
		})
	}
	select {
	case <-s.stop:
		return // shut down before Start: don't launch the follow loop
	default:
	}
	if len(s.cfg.Join) > 0 && !s.isLeader.Load() {
		ctx, cancel := context.WithCancel(context.Background())
		s.followCancel = cancel
		s.followDone = make(chan struct{})
		s.wg.Add(1)
		go s.followLoop(ctx, s.cfg.Join)
	}
}

func (s *Server) tick(every time.Duration, fn func()) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fn()
		case <-s.stop:
			return
		}
	}
}

// BeginShutdown starts a graceful stop without waiting: the stop
// channel closes, which ends the tickers and the follow loop and —
// critically — wakes every long-poll parked in /v1/view/watch and
// /v1/replog/watch (they answer 204 immediately). Call it BEFORE
// http.Server.Shutdown, which otherwise waits out each watcher's
// long-poll timeout (up to watchMaxTimeout) as an in-flight request.
// Idempotent.
func (s *Server) BeginShutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.followCancel()
}

// Shutdown stops the background loops, waits for them, and writes a
// final snapshot when a path is configured, so a restarted daemon
// resumes the same overlay. (It includes BeginShutdown; callers
// pairing with an http.Server should call BeginShutdown first, then
// http.Server.Shutdown, then this.)
func (s *Server) Shutdown() error {
	s.BeginShutdown()
	s.wg.Wait()
	if s.cfg.SnapshotPath != "" {
		return s.WriteSnapshot(s.cfg.SnapshotPath)
	}
	return nil
}

// lockMutation acquires the mutation lock and returns its release
// func, which records the hold duration in the mutation-lock
// histogram /v1/stats exposes — the direct measure of how long any
// single critical section can stall a join or leave.
func (s *Server) lockMutation() func() {
	s.mu.Lock()
	start := time.Now()
	return func() {
		s.met.lockHold.Observe(time.Since(start))
		s.mu.Unlock()
	}
}

// Reform runs one maintenance period now and returns its report.
//
// The period executes off the mutation critical path: a resumable
// protocol.Period is stepped with StepBudget work units per step, the
// mutation lock is taken for one step at a time and released between
// steps, so joins, leaves and compactions interleave with an
// in-progress period instead of stalling behind all of its rounds.
// The read view is republished after every step that granted
// relocations — queries see the overlay improve mid-period — and a
// threshold compaction check rides along at the end: maintenance
// periods are the natural cadence at which churned-away demand
// accumulates. Concurrent Reform calls (the ticker and POST
// /v1/reform) serialize on maintMu, one period at a time.
func (s *Server) Reform() protocol.Report {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	budget := s.cfg.StepBudget
	if budget < 0 {
		budget = 0 // protocol: unbounded step = whole period in one hold
	}

	unlock := s.lockMutation()
	per := s.runner.Begin()
	s.logLocked(replog.KindPeriodStart, nil)
	s.replOpenPeriod.Store(true)
	drained := 0
	pr := per.Progress()
	s.maintProgress.Store(&pr)
	for {
		moves := per.Moves()
		done := per.Step(budget)
		if per.Moves() > moves {
			// Replicate this step's grants before publishing, under the
			// same hold: followers learn each relocation exactly when
			// the leader's own read view starts reflecting it.
			drained = s.logGrantsLocked(per, drained)
			s.publishLocked()
		}
		pr := per.Progress()
		s.maintProgress.Store(&pr)
		if done {
			ss := s.runner.ScanStats()
			s.scanned.Add(int64(ss.Evaluated))
			s.skippedClean.Add(int64(ss.Replayed))
			s.shortlistHits.Add(int64(ss.Shortlist))
			s.scanFallbacks.Add(int64(ss.Fallback))
			s.fullScans.Add(int64(ss.Full))
			s.maybeCompactLocked()
			finRpt := per.Report()
			s.logLocked(replog.KindPeriodEnd, replog.PeriodEndOp{
				Converged: finRpt.Converged,
				Rounds:    finRpt.RoundsRun,
				Moves:     countMoves(finRpt),
			})
			s.replOpenPeriod.Store(false)
			s.publishLocked()
			unlock()
			break
		}
		unlock()
		// The lock is free: queued joins and leaves get their turn
		// before the next step is scheduled.
		if h := s.stepHook; h != nil {
			h()
		}
		runtime.Gosched()
		unlock = s.lockMutation()
	}
	s.maintProgress.Store(nil)

	rpt := per.Report()
	// Detach the report from the runner-recycled Rounds storage: the
	// caller may still be reading it when the next period begins.
	rpt.Rounds = append([]protocol.RoundReport(nil), rpt.Rounds...)
	s.reforms.Add(1)
	s.rounds.Add(int64(rpt.RoundsRun))
	s.moves.Add(int64(countMoves(rpt)))
	return rpt
}

// Compact retires dead queries now, regardless of the dead-QID ratio.
// It returns how many were removed, the surviving distinct-query
// count, and the daemon's compaction generation — the same triple
// POST /v1/compact reports.
func (s *Server) Compact() (removed, queries, generation int) {
	defer s.lockMutation()()
	removed = s.compactLocked()
	s.publishLocked()
	return removed, s.eng.Workload().NumQueries(), int(s.compactions.Load())
}

// maybeCompactLocked compacts when the dead-QID ratio crosses the
// configured threshold and returns the number of queries removed
// (0 when the check was a no-op). Callers hold s.mu.
func (s *Server) maybeCompactLocked() int {
	total := s.eng.Workload().NumQueries()
	if total < s.cfg.CompactMinQueries {
		return 0
	}
	dead := s.eng.DeadQueries(0)
	if dead == 0 || float64(dead) <= s.cfg.CompactDeadRatio*float64(total) {
		return 0
	}
	return s.compactLocked()
}

func (s *Server) compactLocked() int {
	before := s.eng.Workload().NumQueries()
	removed := s.eng.Compact(0)
	if removed > 0 {
		s.compactions.Add(1)
		s.compacted.Add(int64(removed))
		s.logLocked(replog.KindCompact, replog.CompactOp{
			Removed: removed,
			Queries: s.eng.Workload().NumQueries(),
		})
		s.cfg.Logf("compact: %d -> %d distinct queries (generation %d)",
			before, s.eng.Workload().NumQueries(), s.compactions.Load())
	}
	return removed
}

func countMoves(rpt protocol.Report) int {
	n := 0
	for _, rr := range rpt.Rounds {
		n += rr.Granted
	}
	return n
}

// Handler returns the daemon's HTTP handler: the v1 surface plus the
// deprecated unprefixed aliases. Aliases share their v1 endpoint's
// handler and metrics and announce themselves with a Deprecation
// header.
func (s *Server) Handler() http.Handler {
	routes := []struct {
		v1     string // versioned pattern
		legacy string // deprecated unprefixed alias ("" = v1-only)
		m      *api.EndpointMetrics
		h      http.HandlerFunc
	}{
		// Data plane: servable from a published view alone (on a
		// follower, once the first catch-up installed).
		{"POST /v1/query", "POST /query", &s.met.query, s.handleQuery},
		{"POST /v1/query/batch", "POST /query/batch", &s.met.batch, s.handleQueryBatch},
		{"GET /v1/stats", "GET /stats", &s.met.stats, s.handleStats},
		// Control plane: mutations serve on the leader; followers
		// redirect them there (307) so clients can talk to any node.
		{"POST /v1/peers", "POST /peers", &s.met.join, s.leaderOnly(s.handleJoin)},
		{"GET /v1/peers/{id}", "GET /peers/{id}", &s.met.peerGet, s.handlePeerGet},
		{"DELETE /v1/peers/{id}", "DELETE /peers/{id}", &s.met.leave, s.leaderOnly(s.handleLeave)},
		{"POST /v1/reform", "POST /reform", &s.met.reform, s.leaderOnly(s.handleReform)},
		{"POST /v1/compact", "POST /compact", &s.met.compact, s.leaderOnly(s.handleCompact)},
		{"GET /v1/snapshot", "GET /snapshot", &s.met.snapshot, s.handleSnapshot},
		{"GET /v1/view/watch", "", &s.met.watch, s.handleViewWatch},
		// Replication plane: the mutation-log feed (any node) and
		// follower promotion (deliberately NOT leader-gated: it is
		// what a follower runs when the leader is gone).
		{"GET /v1/replog/watch", "", &s.met.replog, s.handleReplogWatch},
		{"POST /v1/promote", "", &s.met.promote, s.handlePromote},
	}
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.HandleFunc(rt.v1, api.Instrument(rt.m, rt.h))
		if rt.legacy != "" {
			mux.HandleFunc(rt.legacy, api.Instrument(rt.m, deprecated(rt.h)))
		}
	}
	return mux
}

// deprecated marks a legacy unprefixed route: same behavior, plus the
// standard Deprecation header pointing clients at the v1 surface.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `<API.md>; rel="deprecation"`)
		h(w, r)
	}
}

// The request-size limits are the api package's.
const (
	maxBodyBytes    = api.MaxBodyBytes
	maxBatchQueries = api.MaxBatchQueries
)

// The data-plane wire types are the api package's; the aliases keep
// this package's tests and callers spelled the way the handlers read.
type (
	queryRequest  = api.QueryRequest
	clusterHit    = api.ClusterHit
	queryResponse = api.QueryResponse
	batchRequest  = api.BatchRequest
	batchResponse = api.BatchResponse
)

// joinRequest is the POST /v1/peers body.
type joinRequest struct {
	// Items is the peer's shared content: one attribute-set (e.g. the
	// distinct terms of a document) per item.
	Items [][]string `json:"items"`
	// Queries is the peer's local workload.
	Queries []queryCount `json:"queries"`
}

type queryCount struct {
	Terms []string `json:"terms"`
	Count int      `json:"count"`
}

type joinResponse struct {
	ID      int     `json:"id"`
	Cluster int     `json:"cluster"`
	Peers   int     `json:"peers"`
	SCost   float64 `json:"scost"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !api.DecodeStrict(w, r, "join", &req) {
		return
	}
	for _, q := range req.Queries {
		if len(q.Terms) == 0 {
			api.Error(w, http.StatusBadRequest, api.CodeEmptyQuery, "query with no terms")
			return
		}
		if q.Count <= 0 {
			api.Error(w, http.StatusBadRequest, api.CodeBadQueryCount, "query count must be positive")
			return
		}
	}

	defer s.lockMutation()()
	items := make([]attr.Set, 0, len(req.Items))
	for _, it := range req.Items {
		items = append(items, attr.NewSet(s.vocab.InternAll(it)...))
	}
	queries := make([]attr.Set, 0, len(req.Queries))
	counts := make([]int, 0, len(req.Queries))
	for _, q := range req.Queries {
		queries = append(queries, attr.NewSet(s.vocab.InternAll(q.Terms)...))
		counts = append(counts, q.Count)
	}
	pr := peer.New(-1)
	pr.SetItems(items)
	pid := s.eng.AddPeer(pr, queries, counts, cluster.None)
	s.joins.Add(1)
	if s.isLeader.Load() {
		op := replog.JoinOp{
			Items:   req.Items,
			Queries: make([]replog.QueryCount, len(req.Queries)),
			Slot:    pid,
			Cluster: int(s.eng.Config().ClusterOf(pid)),
		}
		for i, q := range req.Queries {
			op.Queries[i] = replog.QueryCount{Terms: q.Terms, Count: q.Count}
		}
		s.logLocked(replog.KindJoin, op)
	}
	s.publishLocked()
	api.WriteJSON(w, http.StatusCreated, joinResponse{
		ID:      pid,
		Cluster: int(s.eng.Config().ClusterOf(pid)),
		Peers:   s.eng.NumPeers(),
		SCost:   s.eng.SCostNormalized(),
	})
}

func (s *Server) peerID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		api.Error(w, http.StatusBadRequest, api.CodeBadPeerID, "bad peer id %q", r.PathValue("id"))
		return 0, false
	}
	if id < 0 || id >= s.eng.NumSlots() || !s.eng.IsLive(id) {
		api.Error(w, http.StatusNotFound, api.CodePeerNotFound, "no live peer %d", id)
		return 0, false
	}
	return id, true
}

func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	defer s.lockMutation()()
	id, ok := s.peerID(w, r)
	if !ok {
		return
	}
	cid := s.eng.Config().ClusterOf(id)
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"id":           id,
		"cluster":      int(cid),
		"cluster_size": s.eng.Config().Size(cid),
		"cost":         s.eng.PeerCost(id, cid),
	})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	defer s.lockMutation()()
	id, ok := s.peerID(w, r)
	if !ok {
		return
	}
	s.eng.RemovePeer(id)
	s.leaves.Add(1)
	s.logLocked(replog.KindLeave, replog.LeaveOp{Slot: id})
	s.publishLocked()
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"removed": id,
		"peers":   s.eng.NumPeers(),
		"scost":   s.eng.SCostNormalized(),
	})
}

// handleQuery routes a query: it reports, cluster by cluster, where
// the query's results live — the routing view a querying client uses
// to decide which clusters to contact. It is read-only (ad-hoc
// queries are not recorded as demand) and lock-free: the answer comes
// entirely from the latest published read view, through the exact
// code path every router replica runs (api.ServeQuery).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.dataReady(w) {
		return
	}
	v := s.loadView()
	s.served.Add(int64(api.ServeQuery(w, r, v.terms, v.routing, s.routeCache)))
}

// dataReady gates the data plane on a follower that has not installed
// its first catch-up yet: its (empty) view is not the overlay, so it
// answers 503 not_ready — exactly like an unsynchronized router
// replica — instead of confidently wrong empty answers.
func (s *Server) dataReady(w http.ResponseWriter) bool {
	if s.isLeader.Load() || s.replSynced.Load() {
		return true
	}
	w.Header().Set("Retry-After", "1")
	api.Error(w, http.StatusServiceUnavailable, api.CodeNotReady,
		"follower has no replicated state yet; retry shortly")
	return false
}

// handleQueryBatch routes up to api.MaxBatchQueries queries in one
// request. All answers come from one published view, so the batch is
// internally consistent even while mutations land concurrently.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if !s.dataReady(w) {
		return
	}
	v := s.loadView()
	s.served.Add(int64(api.ServeQueryBatch(w, r, v.terms, v.routing, s.routeCache)))
}

// Long-poll bounds for GET /v1/view/watch.
const (
	watchDefaultTimeout = 25 * time.Second
	watchMaxTimeout     = 55 * time.Second
)

// handleViewWatch is the view replication feed: a long-poll that
// returns the wire record carrying the watcher from its (seq, pop)
// position to the latest published view. First contact (no position)
// gets the current full record immediately; an up-to-date watcher
// blocks until the next publication, its timeout, or server shutdown
// (both 204); a watcher on the same population version whose base is
// still in the delta ring gets a pure-relocation delta, anything else
// a full resync. Positions are only honored when the watcher echoes
// this instance's epoch: a watcher that outlived a restart (sequence
// numbers reset with the process) is otherwise resynchronized with a
// full record instead of silently fed records keyed against the dead
// instance's history. Lock-free like the rest of the read path.
func (s *Server) handleViewWatch(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(epochHeader, strconv.FormatUint(s.epoch, 10))
	q := r.URL.Query()
	parseU64 := func(name string) (uint64, bool) {
		raw := q.Get(name)
		if raw == "" {
			return 0, true
		}
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			api.Error(w, http.StatusBadRequest, api.CodeBadParam, "bad %s %q", name, raw)
			return 0, false
		}
		return n, true
	}
	seq, ok := parseU64("seq")
	if !ok {
		return
	}
	pop, ok := parseU64("pop")
	if !ok {
		return
	}
	epoch, ok := parseU64("epoch")
	if !ok {
		return
	}
	if epoch != 0 && epoch != s.epoch {
		// The watcher followed another instance; its position means
		// nothing here. Treat as first contact.
		seq, pop = 0, 0
	}
	timeout, err := api.ParseTimeoutMS(q.Get("timeout_ms"), watchDefaultTimeout, watchMaxTimeout)
	if err != nil {
		api.Error(w, http.StatusBadRequest, api.CodeBadParam, "%v", err)
		return
	}

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		// Load the notifier before checking state: a publication
		// between the check and the select has already closed this
		// channel, so the select cannot miss it.
		n := s.notify.Load()
		if rec := s.recordSince(seq, pop); rec != nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(rec)
			return
		}
		select {
		case <-n.ch:
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-s.stop:
			// Graceful shutdown: answer every parked watcher now so
			// http.Server.Shutdown is not held hostage by long polls.
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleReform(w http.ResponseWriter, _ *http.Request) {
	rpt := s.Reform()
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"rounds":    rpt.RoundsRun,
		"moves":     countMoves(rpt),
		"converged": rpt.Converged,
		"scost":     rpt.FinalSCost,
		"wcost":     rpt.FinalWCost,
		"clusters":  rpt.FinalClusters,
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	removed, queries, generation := s.Compact()
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"removed":     removed,
		"queries":     queries,
		"compactions": generation,
	})
}

// handleStats is lock-free: gauges come from the latest published
// view (exact between mutations by construction) and counters from
// atomics, so the numbers are correct even while a maintenance
// period holds the mutation lock.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	v := s.loadView()
	api.WriteJSON(w, http.StatusOK, map[string]any{
		"peers":             v.g.peers,
		"slots":             v.g.slots,
		"clusters":          v.g.clusters,
		"queries":           v.g.queries,
		"dead_queries":      v.g.deadQueries,
		"compactions":       s.compactions.Load(),
		"compacted_queries": s.compacted.Load(),
		"scost":             v.g.scost,
		"wcost":             v.g.wcost,
		"reforms":           s.reforms.Load(),
		"rounds":            s.rounds.Load(),
		"moves":             s.moves.Load(),
		"joins":             s.joins.Load(),
		"leaves":            s.leaves.Load(),
		"queries_served":    s.served.Load(),
		"route_cache":       api.CacheStatsMap(s.routeCache),
		"published_views":   s.publishes.Load(),
		"view_seq":          v.seq,
		"pop_version":       v.routing.PopVersion(),
		"watch_full":        s.fullRecords.Load(),
		"watch_delta":       s.deltaRecords.Load(),
		"endpoints":         s.met.endpoints(),
		"maintenance":       s.maintenanceStats(),
		"replication":       s.replicationStats(),
		"mutation_lock":     s.met.lockHold.HoldSnapshot(),
		"uptime_seconds":    time.Since(s.started).Seconds(),
	})
}

// maintenanceStats renders the in-progress period's position (idle
// between periods). Lock-free: the scheduler publishes a Progress
// snapshot after every step.
func (s *Server) maintenanceStats() map[string]any {
	out := map[string]any{
		"active":       false,
		"step_budget":  s.cfg.StepBudget,
		"workers":      s.cfg.ReformWorkers,
		"exact_decide": s.cfg.ExactDecide,
		// Cumulative phase-1 scan outcomes over finished periods.
		"scanned":        s.scanned.Load(),
		"skipped_clean":  s.skippedClean.Load(),
		"shortlist_hits": s.shortlistHits.Load(),
		"fallbacks":      s.scanFallbacks.Load(),
		"full_scans":     s.fullScans.Load(),
	}
	if pr := s.maintProgress.Load(); pr != nil {
		out["active"] = true
		out["round"] = pr.Round
		out["phase"] = pr.Phase
		out["pos"] = pr.Pos
		out["total"] = pr.Total
		out["requests"] = pr.Requests
		out["granted"] = pr.Granted
		out["steps"] = pr.Steps
		// The in-flight period's scan outcomes so far.
		out["period_scanned"] = pr.Scanned
		out["period_skipped_clean"] = pr.SkippedClean
		out["period_shortlist_hits"] = pr.ShortlistHits
		out["period_fallbacks"] = pr.Fallbacks
		out["period_full_scans"] = pr.FullScans
	}
	return out
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.Snapshot())
}
