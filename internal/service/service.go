// Package service runs the clustered overlay as a long-lived network
// daemon: an always-on process whose membership is driven by HTTP
// requests (peers join and leave at any time through the engine's
// incremental membership path) and whose overlay quality is sustained
// by reformulation rounds on a ticker — the paper's periodic selfish
// maintenance turned into an online serving loop.
//
// The JSON API:
//
//	POST   /peers       admit a peer (content items + local workload)
//	GET    /peers/{id}  inspect one peer (cluster, individual cost)
//	DELETE /peers/{id}  retire a peer
//	POST   /query       evaluate a query against the live population
//	POST   /reform      run one maintenance period now
//	POST   /compact     retire dead workload queries now
//	GET    /stats       live system metrics
//	GET    /snapshot    full serialized state (the snapshot format)
//
// All state lives behind one mutex: the cost engine is single-threaded
// by design (it owns scratch buffers), and membership operations are
// cheap (proportional to the moving peer's footprint), so a single
// writer serializes cleanly. Snapshots taken periodically and on
// graceful shutdown let the overlay survive restarts: a new process
// restored from a snapshot serves the same peers, clusters and costs.
//
// # Long-running operation
//
// Distinct queries intern QIDs, and every QID owns a row in the cost
// engine's aggregates — under open-ended churn with novel queries that
// state grows with query history, not with the live population. The
// daemon therefore compacts in place (Engine.Compact: dead QIDs are
// retired and the survivors densely renumbered) whenever the dead-QID
// ratio crosses CompactDeadRatio, checked on the CompactEvery ticker
// and after every maintenance period; POST /compact forces one
// immediately. Compaction preserves every cost and answer exactly, so
// it is invisible to clients; with it the daemon's memory is bounded
// by its live query set and reform serve runs indefinitely.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/workload"
)

// Config parameterizes a Server. Zero values fall back to the paper's
// setting (α = 1, ε = 0.001, linear θ).
type Config struct {
	// Alpha is the membership-cost weight.
	Alpha float64
	// Epsilon is the reformulation gain threshold.
	Epsilon float64
	// Theta is the cluster participation cost; nil means linear.
	Theta cluster.Theta
	// MaxRounds bounds each maintenance period.
	MaxRounds int
	// ReformEvery drives maintenance periods on a ticker; 0 disables
	// the ticker (maintenance then runs only via POST /reform).
	ReformEvery time.Duration
	// SnapshotPath, when set, is where periodic and shutdown snapshots
	// are written.
	SnapshotPath string
	// SnapshotEvery is the snapshot period (0: only on shutdown).
	SnapshotEvery time.Duration
	// CompactEvery drives workload-compaction checks on a ticker; 0
	// disables the ticker (the check still runs after every
	// maintenance period, and POST /compact forces a compaction).
	CompactEvery time.Duration
	// CompactDeadRatio is the dead-QID fraction above which a check
	// compacts; 0 means the default 0.5. A negative value compacts
	// whenever any dead query exists (an always-compact policy).
	CompactDeadRatio float64
	// CompactMinQueries suppresses threshold compactions while the
	// workload has fewer distinct queries than this (tiny workloads
	// flap around any ratio); 0 means the default 64.
	CompactMinQueries int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.001
	}
	if c.Theta.F == nil {
		c.Theta = cluster.LinearTheta()
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 300
	}
	if c.CompactDeadRatio == 0 {
		c.CompactDeadRatio = 0.5
	}
	if c.CompactMinQueries == 0 {
		c.CompactMinQueries = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the online overlay daemon.
type Server struct {
	cfg Config

	mu      sync.Mutex
	vocab   *attr.Vocab
	eng     *core.Engine
	runner  *protocol.Runner
	started time.Time
	reforms int // maintenance periods run
	rounds  int // reformulation rounds executed
	moves   int // granted relocations
	joins   int
	leaves  int
	// compactions is the daemon's compaction generation (carried
	// across snapshot restores); compacted counts retired queries.
	compactions int
	compacted   int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Server over an initially empty system: the population
// grows entirely through the join API (or a snapshot restore).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		vocab:   attr.NewVocab(),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	s.eng = core.New(nil, workload.New(0), cluster.FromAssignment(nil), cfg.Theta, cfg.Alpha)
	s.runner = s.newRunner()
	return s
}

// Start launches the background maintenance and snapshot tickers.
// Callers that only use the HTTP handler (tests, manual maintenance)
// may skip it.
func (s *Server) Start() {
	if s.cfg.ReformEvery > 0 {
		s.wg.Add(1)
		go s.tick(s.cfg.ReformEvery, func() {
			rpt := s.Reform()
			s.cfg.Logf("reform: %d rounds, %d moves, scost %.4f -> %.4f",
				rpt.RoundsRun, countMoves(rpt), rpt.InitialSCost, rpt.FinalSCost)
		})
	}
	if s.cfg.SnapshotPath != "" && s.cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.tick(s.cfg.SnapshotEvery, func() {
			if err := s.WriteSnapshot(s.cfg.SnapshotPath); err != nil {
				s.cfg.Logf("snapshot: %v", err)
			}
		})
	}
	if s.cfg.CompactEvery > 0 {
		s.wg.Add(1)
		go s.tick(s.cfg.CompactEvery, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.maybeCompactLocked()
		})
	}
}

func (s *Server) tick(every time.Duration, fn func()) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fn()
		case <-s.stop:
			return
		}
	}
}

// Shutdown stops the tickers and writes a final snapshot when a path
// is configured, so a restarted daemon resumes the same overlay.
func (s *Server) Shutdown() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	if s.cfg.SnapshotPath != "" {
		return s.WriteSnapshot(s.cfg.SnapshotPath)
	}
	return nil
}

// Reform runs one maintenance period now and returns its report. A
// threshold compaction check rides along: maintenance periods are the
// natural cadence at which churned-away demand accumulates.
func (s *Server) Reform() protocol.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	rpt := s.runner.Run()
	s.reforms++
	s.rounds += rpt.RoundsRun
	s.moves += countMoves(rpt)
	s.maybeCompactLocked()
	return rpt
}

// Compact retires dead queries now, regardless of the dead-QID ratio.
// It returns how many were removed, the surviving distinct-query
// count, and the daemon's compaction generation — the same triple
// POST /compact reports.
func (s *Server) Compact() (removed, queries, generation int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed = s.compactLocked()
	return removed, s.eng.Workload().NumQueries(), s.compactions
}

// maybeCompactLocked compacts when the dead-QID ratio crosses the
// configured threshold. Callers hold s.mu.
func (s *Server) maybeCompactLocked() {
	total := s.eng.Workload().NumQueries()
	if total < s.cfg.CompactMinQueries {
		return
	}
	dead := s.eng.DeadQueries(0)
	if dead == 0 || float64(dead) <= s.cfg.CompactDeadRatio*float64(total) {
		return
	}
	s.compactLocked()
}

func (s *Server) compactLocked() int {
	before := s.eng.Workload().NumQueries()
	removed := s.eng.Compact(0)
	if removed > 0 {
		s.compactions++
		s.compacted += removed
		s.cfg.Logf("compact: %d -> %d distinct queries (generation %d)",
			before, s.eng.Workload().NumQueries(), s.compactions)
	}
	return removed
}

func countMoves(rpt protocol.Report) int {
	n := 0
	for _, rr := range rpt.Rounds {
		n += rr.Granted
	}
	return n
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /peers", s.handleJoin)
	mux.HandleFunc("GET /peers/{id}", s.handlePeerGet)
	mux.HandleFunc("DELETE /peers/{id}", s.handleLeave)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /reform", s.handleReform)
	mux.HandleFunc("POST /compact", s.handleCompact)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	return mux
}

// joinRequest is the POST /peers body.
type joinRequest struct {
	// Items is the peer's shared content: one attribute-set (e.g. the
	// distinct terms of a document) per item.
	Items [][]string `json:"items"`
	// Queries is the peer's local workload.
	Queries []queryCount `json:"queries"`
}

type queryCount struct {
	Terms []string `json:"terms"`
	Count int      `json:"count"`
}

type joinResponse struct {
	ID      int     `json:"id"`
	Cluster int     `json:"cluster"`
	Peers   int     `json:"peers"`
	SCost   float64 `json:"scost"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad join body: %v", err)
		return
	}
	for _, q := range req.Queries {
		if len(q.Terms) == 0 {
			httpError(w, http.StatusBadRequest, "query with no terms")
			return
		}
		if q.Count <= 0 {
			httpError(w, http.StatusBadRequest, "query count must be positive")
			return
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	items := make([]attr.Set, 0, len(req.Items))
	for _, it := range req.Items {
		items = append(items, attr.NewSet(s.vocab.InternAll(it)...))
	}
	queries := make([]attr.Set, 0, len(req.Queries))
	counts := make([]int, 0, len(req.Queries))
	for _, q := range req.Queries {
		queries = append(queries, attr.NewSet(s.vocab.InternAll(q.Terms)...))
		counts = append(counts, q.Count)
	}
	pr := peer.New(-1)
	pr.SetItems(items)
	pid := s.eng.AddPeer(pr, queries, counts, cluster.None)
	s.joins++
	writeJSON(w, http.StatusCreated, joinResponse{
		ID:      pid,
		Cluster: int(s.eng.Config().ClusterOf(pid)),
		Peers:   s.eng.NumPeers(),
		SCost:   s.eng.SCostNormalized(),
	})
}

func (s *Server) peerID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad peer id %q", r.PathValue("id"))
		return 0, false
	}
	if id < 0 || id >= s.eng.NumSlots() || !s.eng.IsLive(id) {
		httpError(w, http.StatusNotFound, "no live peer %d", id)
		return 0, false
	}
	return id, true
}

func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.peerID(w, r)
	if !ok {
		return
	}
	cid := s.eng.Config().ClusterOf(id)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":           id,
		"cluster":      int(cid),
		"cluster_size": s.eng.Config().Size(cid),
		"cost":         s.eng.PeerCost(id, cid),
	})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.peerID(w, r)
	if !ok {
		return
	}
	s.eng.RemovePeer(id)
	s.leaves++
	writeJSON(w, http.StatusOK, map[string]any{
		"removed": id,
		"peers":   s.eng.NumPeers(),
		"scost":   s.eng.SCostNormalized(),
	})
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Terms []string `json:"terms"`
}

type clusterHit struct {
	Cluster int     `json:"cluster"`
	Size    int     `json:"size"`
	Results int     `json:"results"`
	Recall  float64 `json:"recall"`
}

type queryResponse struct {
	Total    int          `json:"total"`
	Clusters []clusterHit `json:"clusters"`
}

// handleQuery evaluates a query against every live peer and reports
// where its results live, cluster by cluster — the routing view a
// querying client uses to decide which clusters to contact. It is
// read-only: ad-hoc queries are not recorded as demand.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad query body: %v", err)
		return
	}
	if len(req.Terms) == 0 {
		httpError(w, http.StatusBadRequest, "query with no terms")
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Unknown terms cannot match anything: items only contain interned
	// attributes.
	ids := make([]attr.ID, 0, len(req.Terms))
	known := true
	for _, t := range req.Terms {
		id, ok := s.vocab.Lookup(t)
		if !ok {
			known = false
			break
		}
		ids = append(ids, id)
	}
	resp := queryResponse{Clusters: []clusterHit{}}
	if known {
		q := attr.NewSet(ids...)
		cfg := s.eng.Config()
		perCluster := make(map[cluster.CID]int)
		// The engine's content index bounds this by the first term's
		// posting list, not the population, so queries stay cheap under
		// the daemon's single mutex.
		s.eng.ForEachSupplier(q, func(pid, res int) {
			perCluster[cfg.ClusterOf(pid)] += res
			resp.Total += res
		})
		for _, c := range cfg.NonEmpty() {
			if n, ok := perCluster[c]; ok {
				resp.Clusters = append(resp.Clusters, clusterHit{
					Cluster: int(c),
					Size:    cfg.Size(c),
					Results: n,
					Recall:  float64(n) / float64(resp.Total),
				})
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReform(w http.ResponseWriter, _ *http.Request) {
	rpt := s.Reform()
	writeJSON(w, http.StatusOK, map[string]any{
		"rounds":    rpt.RoundsRun,
		"moves":     countMoves(rpt),
		"converged": rpt.Converged,
		"scost":     rpt.FinalSCost,
		"wcost":     rpt.FinalWCost,
		"clusters":  rpt.FinalClusters,
	})
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	removed, queries, generation := s.Compact()
	writeJSON(w, http.StatusOK, map[string]any{
		"removed":     removed,
		"queries":     queries,
		"compactions": generation,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"peers":             s.eng.NumPeers(),
		"slots":             s.eng.NumSlots(),
		"clusters":          s.eng.Config().NumNonEmpty(),
		"queries":           s.eng.Workload().NumQueries(),
		"dead_queries":      s.eng.DeadQueries(0),
		"compactions":       s.compactions,
		"compacted_queries": s.compacted,
		"scost":             s.eng.SCostNormalized(),
		"wcost":             s.eng.WCostNormalized(),
		"reforms":           s.reforms,
		"rounds":            s.rounds,
		"moves":             s.moves,
		"joins":             s.joins,
		"leaves":            s.leaves,
		"uptime_seconds":    time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
