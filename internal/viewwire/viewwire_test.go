package viewwire

import (
	"bytes"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// wireSystem builds a small churned engine plus the vocabulary-order
// term table a publisher would capture, mirroring the serving daemon.
func wireSystem(t testing.TB, n, v int, seed uint64) (*core.Engine, []string) {
	t.Helper()
	rng := stats.NewRNG(seed)
	vocab := attr.NewVocab()
	ids := make([]attr.ID, v)
	names := make([]string, v)
	for i := range ids {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		ids[i] = vocab.Intern(names[i])
	}
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	for i := 0; i < n; i++ {
		p := peer.New(i)
		items := make([]attr.Set, 0, 3)
		for d := 0; d < 3; d++ {
			items = append(items, attr.NewSet(ids[rng.Intn(v)], ids[rng.Intn(v)]))
		}
		p.SetItems(items)
		peers[i] = p
		wl.Add(i, attr.NewSet(ids[rng.Intn(v)]), 1+rng.Intn(4))
	}
	e := core.New(peers, wl, cluster.NewSingletons(n), cluster.LinearTheta(), 1)
	for p := 0; p < n; p++ {
		e.Move(p, cluster.CID(rng.Intn(1+n/3)))
	}
	return e, names
}

func wireQueries(v int, rng *stats.RNG) []attr.Set {
	qs := []attr.Set{{}, attr.NewSet(attr.ID(1 << 20))}
	for i := 0; i < 16; i++ {
		qs = append(qs, attr.NewSet(attr.ID(rng.Intn(v)), attr.ID(rng.Intn(v))))
	}
	return qs
}

func checkSameAnswers(t *testing.T, want, got *core.RoutingView, qs []attr.Set, label string) {
	t.Helper()
	var scW, scG core.RouteScratch
	for i, q := range qs {
		wantTotal, wantHits := want.Route(q, &scW)
		gotTotal, gotHits := got.Route(q, &scG)
		same := gotTotal == wantTotal && len(gotHits) == len(wantHits)
		for j := 0; same && j < len(wantHits); j++ {
			same = gotHits[j] == wantHits[j]
		}
		if !same {
			t.Fatalf("%s: query %d: (%d, %v) != (%d, %v)", label, i, gotTotal, gotHits, wantTotal, wantHits)
		}
	}
}

// TestWireFullRoundTrip pins the full-record path end to end: encode
// is deterministic, decode recovers header, terms and a view that
// answers every query exactly like the original — including across
// populations with unoccupied slots.
func TestWireFullRoundTrip(t *testing.T) {
	e, names := wireSystem(t, 24, 12, 97)
	e.RemovePeer(5)
	e.RemovePeer(17)
	v := e.BuildRoutingView(nil)

	enc := AppendFull(nil, 42, names, v.Export())
	if again := AppendFull(nil, 42, names, v.Export()); !bytes.Equal(enc, again) {
		t.Fatal("AppendFull is not deterministic for the same view")
	}

	rec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindFull || rec.Seq != 42 || rec.PopVersion != v.PopVersion() {
		t.Fatalf("header: kind %d seq %d pop %d, want full/42/%d", rec.Kind, rec.Seq, rec.PopVersion, v.PopVersion())
	}
	if len(rec.Terms) != len(names) {
		t.Fatalf("terms: %d != %d", len(rec.Terms), len(names))
	}
	for i := range names {
		if rec.Terms[i] != names[i] {
			t.Fatalf("term %d: %q != %q", i, rec.Terms[i], names[i])
		}
	}
	got, err := core.FromViewData(rec.View)
	if err != nil {
		t.Fatal(err)
	}
	if got.Live() != v.Live() || got.Slots() != v.Slots() {
		t.Fatalf("decoded view shape: live %d/%d slots %d/%d", got.Live(), v.Live(), got.Slots(), v.Slots())
	}
	checkSameAnswers(t, v, got, wireQueries(12, stats.NewRNG(7)), "decoded full record")
}

// TestWireDeltaRoundTrip pins the delta-record path, including the
// empty republish.
func TestWireDeltaRoundTrip(t *testing.T) {
	moves := []core.SlotMove{{Slot: 3, To: 0}, {Slot: 19, To: 7}, {Slot: 0, To: 2}}
	rec, err := Decode(AppendDelta(nil, 9, 4, moves))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindDelta || rec.Seq != 9 || rec.PopVersion != 4 || len(rec.Moves) != len(moves) {
		t.Fatalf("header: %+v", rec)
	}
	for i, m := range moves {
		if rec.Moves[i] != m {
			t.Fatalf("move %d: %v != %v", i, rec.Moves[i], m)
		}
	}
	rec, err = Decode(AppendDelta(nil, 10, 4, nil))
	if err != nil || len(rec.Moves) != 0 {
		t.Fatalf("empty delta: %v, %+v", err, rec)
	}
}

// TestWireDeltaCarriesFollower pins the protocol's point: a follower
// that applies a decoded delta to its decoded full view answers like
// the authoritative successor.
func TestWireDeltaCarriesFollower(t *testing.T) {
	e, names := wireSystem(t, 20, 10, 131)
	rng := stats.NewRNG(19)
	v1 := e.BuildRoutingView(nil)
	rec, err := Decode(AppendFull(nil, 1, names, v1.Export()))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := core.FromViewData(rec.View)
	if err != nil {
		t.Fatal(err)
	}
	qs := wireQueries(10, rng)
	for step := 0; step < 6; step++ {
		for k := 0; k < 3; k++ {
			e.Move(rng.Intn(20), cluster.CID(rng.Intn(e.Config().Cmax())))
		}
		v2 := e.BuildRoutingView(v1)
		moves, ok := v2.DiffFrom(v1)
		if !ok {
			t.Fatalf("step %d: expected pure-relocation delta", step)
		}
		drec, err := Decode(AppendDelta(nil, uint64(2+step), v2.PopVersion(), moves))
		if err != nil {
			t.Fatal(err)
		}
		if drec.PopVersion != follower.PopVersion() {
			t.Fatalf("step %d: delta pop %d vs follower %d", step, drec.PopVersion, follower.PopVersion())
		}
		follower, err = follower.ApplyMoves(drec.Moves)
		if err != nil {
			t.Fatal(err)
		}
		checkSameAnswers(t, v2, follower, qs, "wire follower")
		v1 = v2
	}
}

// TestWireDecodeRejects pins the strict decoder: corrupt and
// truncated records are errors, never panics.
func TestWireDecodeRejects(t *testing.T) {
	e, names := wireSystem(t, 8, 6, 151)
	full := AppendFull(nil, 3, names, e.BuildRoutingView(nil).Export())
	delta := AppendDelta(nil, 4, 1, []core.SlotMove{{Slot: 1, To: 0}})

	// Every strict prefix of a valid record must fail cleanly.
	for _, rec := range [][]byte{full, delta} {
		for n := 0; n < len(rec); n++ {
			if _, err := Decode(rec[:n]); err == nil {
				t.Fatalf("decode accepted %d-byte truncation of a %d-byte record", n, len(rec))
			}
		}
	}

	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), full...))
	}
	cases := map[string][]byte{
		"bad magic":      corrupt(func(b []byte) []byte { b[0] = 'X'; return b }),
		"bad version":    corrupt(func(b []byte) []byte { b[2] = 99; return b }),
		"unknown kind":   corrupt(func(b []byte) []byte { b[3] = 7; return b }),
		"trailing bytes": append(append([]byte(nil), delta...), 0),
		"huge count":     append(append([]byte(nil), delta[:len(delta)-3]...), 0xFF, 0xFF, 0x7F),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decode accepted corrupt record", name)
		}
	}
}

// FuzzViewWire throws arbitrary bytes at the decoder and, whenever a
// record survives, at the full validation + re-encode cycle: nothing
// may panic, and decode(encode(decode(x))) must agree with decode(x).
func FuzzViewWire(f *testing.F) {
	e, names := wireSystem(f, 12, 8, 211)
	e.RemovePeer(4)
	v := e.BuildRoutingView(nil)
	f.Add(AppendFull(nil, 5, names, v.Export()))
	f.Add(AppendDelta(nil, 6, v.PopVersion(), []core.SlotMove{{Slot: 0, To: 1}, {Slot: 7, To: 0}}))
	f.Add(AppendDelta(nil, 7, v.PopVersion(), nil))
	f.Add([]byte("RV"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		switch rec.Kind {
		case KindFull:
			view, err := core.FromViewData(rec.View)
			if err != nil {
				return // structurally valid wire bytes, semantically rejected
			}
			var sc core.RouteScratch
			view.Route(attr.NewSet(0, 3), &sc)
			reenc := AppendFull(nil, rec.Seq, rec.Terms, view.Export())
			rec2, err := Decode(reenc)
			if err != nil {
				t.Fatalf("re-encode of accepted record does not decode: %v", err)
			}
			if rec2.Seq != rec.Seq || rec2.PopVersion != rec.PopVersion ||
				len(rec2.Terms) != len(rec.Terms) || len(rec2.View.ClusterOf) != len(rec.View.ClusterOf) {
				t.Fatalf("re-encode changed the record: %+v vs %+v", rec2, rec)
			}
		case KindDelta:
			reenc := AppendDelta(nil, rec.Seq, rec.PopVersion, rec.Moves)
			rec2, err := Decode(reenc)
			if err != nil || rec2.Seq != rec.Seq || rec2.PopVersion != rec.PopVersion || len(rec2.Moves) != len(rec.Moves) {
				t.Fatalf("delta re-encode diverged: %v, %+v vs %+v", err, rec2, rec)
			}
		}
	})
}
