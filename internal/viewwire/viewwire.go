// Package viewwire is the versioned wire encoding of the routing-view
// replication protocol: the byte records the authoritative serving
// daemon streams over GET /v1/view/watch and a stateless router
// replica decodes to maintain its local core.RoutingView.
//
// Two record kinds share a common header:
//
//	magic "RV" | format version (1) | kind | seq uvarint | ...
//
// A FULL record carries everything a replica needs to serve queries
// from scratch: the term table (attribute names in vocabulary order,
// so the replica can resolve query strings to the engine's attribute
// IDs), every slot's content items, the slot -> cluster assignment,
// the per-cluster sizes, and the content posting lists. A DELTA
// record carries only a pure-relocation diff — (slot, new cluster)
// pairs — and is valid against exactly the population version it
// names: relocations are the only mutation the paper's reformulation
// protocol performs between membership events, so a maintenance
// period's republish is a few bytes per granted move instead of a
// full snapshot. Any population change (join, leave, restore) bumps
// popVersion and forces the subscriber to resynchronize with a FULL
// record; seq is the publisher's monotone view sequence number and
// totally orders records from one publisher.
//
// All integers are unsigned varints. Sorted ID lists (item attribute
// sets) are gap-encoded; the decoder is strict — unknown versions,
// non-positive gaps, counts that cannot fit the remaining input,
// inconsistent sizes, trailing bytes and truncations are all errors,
// never panics or unbounded allocations — so a replica can feed it
// untrusted bytes (pinned by FuzzViewWire).
package viewwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
)

// Kind discriminates the record types of the protocol.
type Kind byte

const (
	// KindFull is a complete view snapshot.
	KindFull Kind = 1
	// KindDelta is a pure-relocation diff against the same popVersion.
	KindDelta Kind = 2
)

// FormatVersion is the wire format this package speaks. Bump on any
// incompatible layout change; decoders reject other versions.
const FormatVersion = 1

// magic opens every record.
var magic = [2]byte{'R', 'V'}

// Record is one decoded protocol record.
type Record struct {
	Kind Kind
	// Seq is the publisher's monotone view sequence number.
	Seq uint64
	// PopVersion is the population version the record belongs to (for
	// a full record it equals View.PopVersion).
	PopVersion uint64

	// Terms and View are set for KindFull: the attribute names in
	// vocabulary order and the full routing state.
	Terms []string
	View  core.ViewData

	// Moves is set for KindDelta (possibly empty: a republish that
	// relocated nothing, e.g. after a workload compaction).
	Moves []core.SlotMove
}

func appendHeader(dst []byte, kind Kind, seq uint64) []byte {
	dst = append(dst, magic[0], magic[1], FormatVersion, byte(kind))
	return binary.AppendUvarint(dst, seq)
}

// AppendFull encodes a full-view record onto dst and returns the
// extended slice. terms must be the attribute names in vocabulary
// order covering every attribute ID appearing in d.
func AppendFull(dst []byte, seq uint64, terms []string, d core.ViewData) []byte {
	dst = appendHeader(dst, KindFull, seq)
	dst = binary.AppendUvarint(dst, d.PopVersion)

	dst = binary.AppendUvarint(dst, uint64(len(terms)))
	for _, t := range terms {
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		dst = append(dst, t...)
	}

	dst = binary.AppendUvarint(dst, uint64(len(d.ClusterOf)))
	for slot, items := range d.Items {
		if d.ClusterOf[slot] == cluster.None {
			dst = binary.AppendUvarint(dst, 0)
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(len(items))+1)
		for _, it := range items {
			ids := it.IDs()
			dst = binary.AppendUvarint(dst, uint64(len(ids)))
			prev := attr.ID(0)
			for i, id := range ids {
				if i == 0 {
					dst = binary.AppendUvarint(dst, uint64(id))
				} else {
					dst = binary.AppendUvarint(dst, uint64(id-prev))
				}
				prev = id
			}
		}
	}
	for _, c := range d.ClusterOf {
		dst = binary.AppendUvarint(dst, uint64(c)+1) // None (-1) -> 0
	}

	// Per-cluster sizes, derived from the assignment: redundant on the
	// wire, verified by the decoder — a cheap end-to-end integrity
	// check on the record.
	sizes := deriveSizes(d.ClusterOf)
	dst = binary.AppendUvarint(dst, uint64(len(sizes)))
	for _, n := range sizes {
		dst = binary.AppendUvarint(dst, uint64(n))
	}

	attrs := make([]attr.ID, 0, len(d.Postings))
	for a := range d.Postings {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		lst := d.Postings[a]
		dst = binary.AppendUvarint(dst, uint64(a))
		dst = binary.AppendUvarint(dst, uint64(len(lst)))
		for _, pid := range lst {
			dst = binary.AppendUvarint(dst, uint64(pid))
		}
	}
	return dst
}

// AppendDelta encodes a pure-relocation record onto dst and returns
// the extended slice.
func AppendDelta(dst []byte, seq, popVersion uint64, moves []core.SlotMove) []byte {
	dst = appendHeader(dst, KindDelta, seq)
	dst = binary.AppendUvarint(dst, popVersion)
	dst = binary.AppendUvarint(dst, uint64(len(moves)))
	for _, m := range moves {
		dst = binary.AppendUvarint(dst, uint64(m.Slot))
		dst = binary.AppendUvarint(dst, uint64(m.To))
	}
	return dst
}

func deriveSizes(clusterOf []cluster.CID) []int {
	maxC := -1
	for _, c := range clusterOf {
		if int(c) > maxC {
			maxC = int(c)
		}
	}
	sizes := make([]int, maxC+1)
	for _, c := range clusterOf {
		if c != cluster.None {
			sizes[c]++
		}
	}
	return sizes
}

// reader walks a record with strict bounds checking.
type reader struct {
	data []byte
	pos  int
}

var errTruncated = errors.New("viewwire: truncated record")

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.pos += n
	return v, nil
}

// count reads a uvarint element count whose elements each occupy at
// least min encoded bytes, rejecting counts the remaining input
// cannot possibly hold — the guard that keeps hostile lengths from
// turning into unbounded allocations.
func (r *reader) count(min int, what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if rem := len(r.data) - r.pos; v > uint64(rem/min)+1 && v > uint64(rem) {
		return 0, fmt.Errorf("viewwire: %s count %d exceeds remaining input", what, v)
	}
	return int(v), nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.data)-r.pos < n {
		return nil, errTruncated
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// Decode parses one record from data. The whole input must be exactly
// one record; trailing bytes are an error. Full records are
// structurally validated (assignment/content slot parity, sorted item
// sets, size table consistency) but not semantically checked against
// the peer contents — pair with core.FromViewData, which validates
// the posting lists, before serving from the result.
func Decode(data []byte) (Record, error) {
	r := &reader{data: data}
	hdr, err := r.bytes(4)
	if err != nil {
		return Record{}, err
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] {
		return Record{}, fmt.Errorf("viewwire: bad magic %q", hdr[:2])
	}
	if hdr[2] != FormatVersion {
		return Record{}, fmt.Errorf("viewwire: unsupported format version %d (speaking %d)", hdr[2], FormatVersion)
	}
	rec := Record{Kind: Kind(hdr[3])}
	if rec.Seq, err = r.uvarint(); err != nil {
		return Record{}, err
	}
	switch rec.Kind {
	case KindFull:
		err = decodeFull(r, &rec)
	case KindDelta:
		err = decodeDelta(r, &rec)
	default:
		return Record{}, fmt.Errorf("viewwire: unknown record kind %d", rec.Kind)
	}
	if err != nil {
		return Record{}, err
	}
	if r.pos != len(r.data) {
		return Record{}, fmt.Errorf("viewwire: %d trailing bytes after record", len(r.data)-r.pos)
	}
	return rec, nil
}

func decodeFull(r *reader, rec *Record) error {
	var err error
	if rec.PopVersion, err = r.uvarint(); err != nil {
		return err
	}
	rec.View.PopVersion = rec.PopVersion

	numTerms, err := r.count(1, "term")
	if err != nil {
		return err
	}
	rec.Terms = make([]string, numTerms)
	for i := range rec.Terms {
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return err
		}
		rec.Terms[i] = string(b)
	}

	slots, err := r.count(1, "slot")
	if err != nil {
		return err
	}
	rec.View.Items = make([][]attr.Set, slots)
	occupied := make([]bool, slots)
	for slot := 0; slot < slots; slot++ {
		tag, err := r.count(1, "item")
		if err != nil {
			return err
		}
		if tag == 0 {
			continue // unoccupied slot
		}
		occupied[slot] = true
		items := make([]attr.Set, 0, tag-1)
		for k := 0; k < tag-1; k++ {
			n, err := r.count(1, "item id")
			if err != nil {
				return err
			}
			ids := make([]attr.ID, 0, n)
			prev := int64(-1)
			for j := 0; j < n; j++ {
				v, err := r.uvarint()
				if err != nil {
					return err
				}
				var id int64
				if j == 0 {
					id = int64(v)
				} else {
					if v == 0 {
						return fmt.Errorf("viewwire: slot %d item %d: non-increasing attribute ids", slot, k)
					}
					id = prev + int64(v)
				}
				if id > int64(1)<<31-1 || (len(rec.Terms) > 0 && id >= int64(len(rec.Terms))) {
					return fmt.Errorf("viewwire: slot %d item %d: attribute id %d out of range", slot, k, id)
				}
				ids = append(ids, attr.ID(id))
				prev = id
			}
			items = append(items, attr.FromSorted(ids))
		}
		rec.View.Items[slot] = items
	}

	rec.View.ClusterOf = make([]cluster.CID, slots)
	for slot := 0; slot < slots; slot++ {
		v, err := r.uvarint()
		if err != nil {
			return err
		}
		if v > uint64(1)<<31 {
			return fmt.Errorf("viewwire: slot %d: cluster id %d out of range", slot, v)
		}
		c := cluster.CID(int64(v) - 1) // 0 -> None
		if (c == cluster.None) == occupied[slot] {
			return fmt.Errorf("viewwire: slot %d: occupancy disagrees between content and assignment", slot)
		}
		rec.View.ClusterOf[slot] = c
	}

	numSizes, err := r.count(1, "size")
	if err != nil {
		return err
	}
	sizes := make([]int, numSizes)
	for i := range sizes {
		v, err := r.uvarint()
		if err != nil {
			return err
		}
		sizes[i] = int(v)
	}
	derived := deriveSizes(rec.View.ClusterOf)
	if len(derived) != len(sizes) {
		return fmt.Errorf("viewwire: size table has %d clusters, assignment implies %d", len(sizes), len(derived))
	}
	for c := range sizes {
		if sizes[c] != derived[c] {
			return fmt.Errorf("viewwire: cluster %d size %d disagrees with assignment (%d)", c, sizes[c], derived[c])
		}
	}

	numAttrs, err := r.count(2, "posting")
	if err != nil {
		return err
	}
	rec.View.Postings = make(map[attr.ID][]int32, numAttrs)
	for i := 0; i < numAttrs; i++ {
		a, err := r.uvarint()
		if err != nil {
			return err
		}
		if a > uint64(1)<<31-1 {
			return fmt.Errorf("viewwire: posting attribute id %d out of range", a)
		}
		n, err := r.count(1, "posting entry")
		if err != nil {
			return err
		}
		lst := make([]int32, 0, n)
		for j := 0; j < n; j++ {
			pid, err := r.uvarint()
			if err != nil {
				return err
			}
			if pid >= uint64(slots) {
				return fmt.Errorf("viewwire: posting of attr %d names slot %d of %d", a, pid, slots)
			}
			lst = append(lst, int32(pid))
		}
		if _, dup := rec.View.Postings[attr.ID(a)]; dup {
			return fmt.Errorf("viewwire: duplicate posting list for attr %d", a)
		}
		rec.View.Postings[attr.ID(a)] = lst
	}
	return nil
}

func decodeDelta(r *reader, rec *Record) error {
	var err error
	if rec.PopVersion, err = r.uvarint(); err != nil {
		return err
	}
	n, err := r.count(2, "move")
	if err != nil {
		return err
	}
	rec.Moves = make([]core.SlotMove, 0, n)
	for i := 0; i < n; i++ {
		slot, err := r.uvarint()
		if err != nil {
			return err
		}
		to, err := r.uvarint()
		if err != nil {
			return err
		}
		if slot > uint64(1)<<31-1 || to > uint64(1)<<31-1 {
			return fmt.Errorf("viewwire: move %d out of range (slot %d, to %d)", i, slot, to)
		}
		rec.Moves = append(rec.Moves, core.SlotMove{Slot: int32(slot), To: cluster.CID(to)})
	}
	return nil
}
