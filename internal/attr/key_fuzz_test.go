package attr

import (
	"bytes"
	"encoding/binary"
	"strconv"
	"strings"
	"testing"
)

// FuzzQueryKey fuzzes the canonical query-key encoding that the route
// cache and the batch deduper key on. The contract under test: Key and
// AppendKey emit identical bytes; the key is canonical (any ordering
// or duplication of the same IDs encodes identically); it round-trips
// (the decimal encoding parses back to exactly the set's IDs); and it
// is injective (two sets share a key iff they are equal) — the
// property that makes a cache hit safe to serve.
func FuzzQueryKey(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 255, 255, 255, 255})
	f.Add([]byte{0, 0, 0, 7, 0, 0, 0, 3, 0, 0, 0, 7, 127, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode the corpus bytes into IDs: 4-byte big-endian chunks,
		// masked non-negative (negative IDs never exist; the vocab
		// interns densely from 0).
		var ids []ID
		for len(data) >= 4 {
			ids = append(ids, ID(binary.BigEndian.Uint32(data)&0x7fffffff))
			data = data[4:]
		}
		s := NewSet(ids...)

		key := s.Key()
		if got := string(s.AppendKey(nil)); got != key {
			t.Fatalf("AppendKey %q != Key %q", got, key)
		}
		if got := s.AppendKey(append([]byte(nil), "prefix-"...)); !bytes.Equal(got, append([]byte("prefix-"), key...)) {
			t.Fatalf("AppendKey onto a prefix produced %q, want %q", got, "prefix-"+key)
		}

		// Canonical: reversing (and duplicating) the input IDs must not
		// change the key.
		rev := make([]ID, 0, 2*len(ids))
		for i := len(ids) - 1; i >= 0; i-- {
			rev = append(rev, ids[i], ids[i])
		}
		if got := NewSet(rev...).Key(); got != key {
			t.Fatalf("key not canonical: %q (forward) vs %q (reversed+duplicated)", key, got)
		}

		// Round-trip: parse the decimal encoding back.
		var parsed []ID
		if key != "" {
			for _, part := range strings.Split(key, ",") {
				n, err := strconv.ParseInt(part, 10, 32)
				if err != nil {
					t.Fatalf("key %q has unparsable element %q: %v", key, part, err)
				}
				parsed = append(parsed, ID(n))
			}
		}
		if !s.Equal(NewSet(parsed...)) {
			t.Fatalf("key %q round-tripped to %v, want %v", key, parsed, s.IDs())
		}

		// Injective: split the IDs in two halves; their keys agree iff
		// the sets agree.
		a, b := NewSet(ids[:len(ids)/2]...), NewSet(ids[len(ids)/2:]...)
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("injectivity broken: %v vs %v, keys %q vs %q", a.IDs(), b.IDs(), a.Key(), b.Key())
		}
	})
}
