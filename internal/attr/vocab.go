// Package attr models the paper's generic data model: every data item
// is described by a set of attributes (keywords for text documents) and
// queries are sets of attributes. A query q matches an item d when q's
// attributes are a subset of d's attributes (§2).
//
// Attributes are interned into dense int32 IDs by a Vocab so that sets
// can be stored as sorted ID slices and compared cheaply.
package attr

import "fmt"

// ID is a dense, vocabulary-local attribute identifier.
type ID int32

// Vocab interns attribute strings into dense IDs. The zero value is
// ready to use. Vocab is not safe for concurrent mutation.
type Vocab struct {
	byName map[string]ID
	names  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byName: make(map[string]ID)}
}

// Intern returns the ID for name, assigning a fresh one on first use.
func (v *Vocab) Intern(name string) ID {
	if v.byName == nil {
		v.byName = make(map[string]ID)
	}
	if id, ok := v.byName[name]; ok {
		return id
	}
	id := ID(len(v.names))
	v.byName[name] = id
	v.names = append(v.names, name)
	return id
}

// Lookup returns the ID for name and whether it is known.
func (v *Vocab) Lookup(name string) (ID, bool) {
	id, ok := v.byName[name]
	return id, ok
}

// Name returns the string for id. It panics on unknown IDs, which
// always indicates a programming error (IDs only come from Intern).
func (v *Vocab) Name(id ID) string {
	if int(id) < 0 || int(id) >= len(v.names) {
		panic(fmt.Sprintf("attr: unknown ID %d (vocab size %d)", id, len(v.names)))
	}
	return v.names[id]
}

// Len returns the number of interned attributes.
func (v *Vocab) Len() int { return len(v.names) }

// InternAll interns every name and returns the IDs in order.
func (v *Vocab) InternAll(names []string) []ID {
	ids := make([]ID, len(names))
	for i, n := range names {
		ids[i] = v.Intern(n)
	}
	return ids
}
