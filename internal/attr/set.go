package attr

import (
	"fmt"
	"sort"
)

// Set is an immutable, sorted, duplicate-free collection of attribute
// IDs. The zero value is the empty set. Sets are value types: all
// operations return new sets and never mutate their receivers, so a Set
// may be shared freely across goroutines once built.
type Set struct {
	ids []ID
}

// NewSet builds a Set from ids, sorting and deduplicating.
func NewSet(ids ...ID) Set {
	if len(ids) == 0 {
		return Set{}
	}
	cp := append([]ID(nil), ids...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, id := range cp[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Set{ids: out}
}

// FromSorted adopts ids that are already sorted and unique. It panics
// otherwise; use NewSet for unsanitized input. The slice is adopted
// without copying and must not be mutated afterwards.
func FromSorted(ids []ID) Set {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			panic(fmt.Sprintf("attr: FromSorted input not strictly increasing at %d", i))
		}
	}
	return Set{ids: ids}
}

// Len returns the cardinality of s.
func (s Set) Len() int { return len(s.ids) }

// IsEmpty reports whether s has no elements.
func (s Set) IsEmpty() bool { return len(s.ids) == 0 }

// IDs returns the sorted attribute IDs. The returned slice is shared;
// callers must not modify it.
func (s Set) IDs() []ID { return s.ids }

// Contains reports whether id is in s.
func (s Set) Contains(id ID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// SubsetOf reports whether every element of s is in t. This is the
// paper's matching predicate: a query matches a data item when the
// query's attributes are a subset of the item's.
func (s Set) SubsetOf(t Set) bool {
	if len(s.ids) > len(t.ids) {
		return false
	}
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] == t.ids[j]:
			i++
			j++
		case s.ids[i] > t.ids[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s.ids)
}

// Equal reports whether s and t contain the same IDs.
func (s Set) Equal(t Set) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	out := make([]ID, 0, len(s.ids)+len(t.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			out = append(out, s.ids[i])
			i++
		case s.ids[i] > t.ids[j]:
			out = append(out, t.ids[j])
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, t.ids[j:]...)
	return Set{ids: out}
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	out := make([]ID, 0)
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			i++
		case s.ids[i] > t.ids[j]:
			j++
		default:
			out = append(out, s.ids[i])
			i++
			j++
		}
	}
	return Set{ids: out}
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	out := make([]ID, 0, len(s.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] < t.ids[j]:
			out = append(out, s.ids[i])
			i++
		case s.ids[i] > t.ids[j]:
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	return Set{ids: out}
}

// AppendKey appends the canonical key of s (the same bytes Key
// returns) to dst and returns the extended slice. Callers that only
// need a transient key for a map lookup use it with a reused scratch
// buffer to avoid allocating a string per probe.
func (s Set) AppendKey(dst []byte) []byte {
	for i, id := range s.ids {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendInt(dst, int64(id))
	}
	return dst
}

func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// Key returns a canonical string usable as a map key identifying the
// set's contents (e.g. for query deduplication). It is AppendKey's
// bytes — a single format shared by both paths, so interning and
// lookup can never diverge.
func (s Set) Key() string {
	if len(s.ids) == 0 {
		return ""
	}
	return string(s.AppendKey(nil))
}

// String renders the set for debugging as {1,5,9}.
func (s Set) String() string {
	return "{" + s.Key() + "}"
}

// Names resolves the set against a vocabulary, for human-readable output.
func (s Set) Names(v *Vocab) []string {
	out := make([]string, len(s.ids))
	for i, id := range s.ids {
		out[i] = v.Name(id)
	}
	return out
}
