package attr

import (
	"testing"
	"testing/quick"
)

func TestVocabInternRoundtrip(t *testing.T) {
	v := NewVocab()
	a := v.Intern("alpha")
	b := v.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if v.Intern("alpha") != a {
		t.Fatal("re-intern changed ID")
	}
	if v.Name(a) != "alpha" || v.Name(b) != "beta" {
		t.Fatal("Name roundtrip failed")
	}
	if v.Len() != 2 {
		t.Fatalf("Len=%d", v.Len())
	}
	if id, ok := v.Lookup("alpha"); !ok || id != a {
		t.Fatal("Lookup failed")
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Fatal("Lookup found missing name")
	}
}

func TestVocabZeroValueUsable(t *testing.T) {
	var v Vocab
	if v.Intern("x") != 0 {
		t.Fatal("zero-value vocab broken")
	}
}

func TestVocabNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Name(99) did not panic")
		}
	}()
	NewVocab().Name(99)
}

func TestVocabInternAll(t *testing.T) {
	v := NewVocab()
	ids := v.InternAll([]string{"a", "b", "a"})
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("InternAll ids: %v", ids)
	}
}

func TestNewSetSortsAndDedups(t *testing.T) {
	s := NewSet(5, 1, 3, 1, 5)
	want := []ID{1, 3, 5}
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("ids %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids %v want %v", got, want)
		}
	}
	if s.Len() != 3 || s.IsEmpty() {
		t.Fatal("bad Len/IsEmpty")
	}
	if !NewSet().IsEmpty() {
		t.Fatal("empty set not empty")
	}
}

func TestFromSortedValidation(t *testing.T) {
	FromSorted([]ID{1, 2, 3}) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("FromSorted with duplicates did not panic")
		}
	}()
	FromSorted([]ID{1, 1})
}

func TestContains(t *testing.T) {
	s := NewSet(2, 4, 6)
	for _, id := range []ID{2, 4, 6} {
		if !s.Contains(id) {
			t.Errorf("missing %d", id)
		}
	}
	for _, id := range []ID{1, 3, 5, 7} {
		if s.Contains(id) {
			t.Errorf("spurious %d", id)
		}
	}
}

// toMap is the reference model for property tests.
func toMap(s Set) map[ID]bool {
	m := map[ID]bool{}
	for _, id := range s.IDs() {
		m[id] = true
	}
	return m
}

func fromRaw(raw []int16) Set {
	ids := make([]ID, len(raw))
	for i, r := range raw {
		ids[i] = ID(r)
	}
	return NewSet(ids...)
}

func TestSubsetOfMatchesModel(t *testing.T) {
	err := quick.Check(func(ra, rb []int16) bool {
		a, b := fromRaw(ra), fromRaw(rb)
		ma, mb := toMap(a), toMap(b)
		want := true
		for id := range ma {
			if !mb[id] {
				want = false
				break
			}
		}
		return a.SubsetOf(b) == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetAlgebraMatchesModel(t *testing.T) {
	err := quick.Check(func(ra, rb []int16) bool {
		a, b := fromRaw(ra), fromRaw(rb)
		ma, mb := toMap(a), toMap(b)
		u, i, d := a.Union(b), a.Intersect(b), a.Diff(b)
		// Union.
		for id := range ma {
			if !u.Contains(id) {
				return false
			}
		}
		for id := range mb {
			if !u.Contains(id) {
				return false
			}
		}
		if u.Len() != len(ma)+len(mb)-i.Len() {
			return false
		}
		// Intersection.
		for _, id := range i.IDs() {
			if !ma[id] || !mb[id] {
				return false
			}
		}
		// Difference.
		for _, id := range d.IDs() {
			if !ma[id] || mb[id] {
				return false
			}
		}
		if d.Len() != len(ma)-i.Len() {
			return false
		}
		// Subset relations.
		return i.SubsetOf(a) && i.SubsetOf(b) && a.SubsetOf(u) && d.SubsetOf(a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKeyIdentifiesContent(t *testing.T) {
	err := quick.Check(func(ra, rb []int16) bool {
		a, b := fromRaw(ra), fromRaw(rb)
		return (a.Key() == b.Key()) == a.Equal(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if NewSet().Key() != "" {
		t.Fatal("empty key not empty")
	}
}

func TestStringAndNames(t *testing.T) {
	v := NewVocab()
	a := v.Intern("apple")
	b := v.Intern("pear")
	s := NewSet(b, a)
	if s.String() != "{0,1}" {
		t.Fatalf("String=%q", s.String())
	}
	names := s.Names(v)
	if len(names) != 2 || names[0] != "apple" || names[1] != "pear" {
		t.Fatalf("Names=%v", names)
	}
}

func TestEqual(t *testing.T) {
	if !NewSet(1, 2).Equal(NewSet(2, 1)) {
		t.Fatal("order-insensitive equality failed")
	}
	if NewSet(1).Equal(NewSet(1, 2)) || NewSet(1).Equal(NewSet(2)) {
		t.Fatal("unequal sets reported equal")
	}
}
