package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// do drives a handler directly and returns status and body bytes.
func do(h http.Handler, method, path string, body []byte) (int, []byte) {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.Bytes()
}

func joinBodyJSON(cat, doc int) []byte {
	term := func(i int) string { return fmt.Sprintf("c%d-t%d", cat, (doc+i)%5) }
	b, _ := json.Marshal(map[string]any{
		"items": [][]string{{term(0), term(1)}, {term(1), term(2)}},
		"queries": []map[string]any{
			{"terms": []string{term(0)}, "count": 3},
			{"terms": []string{term(2)}, "count": 2},
		},
	})
	return b
}

// randQuery builds a query body over the joinBodyJSON vocabulary,
// occasionally with an unknown term.
func randQuery(rng *rand.Rand) []byte {
	n := 1 + rng.Intn(3)
	terms := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			terms = append(terms, "no-such-term")
		} else {
			terms = append(terms, fmt.Sprintf("c%d-t%d", rng.Intn(3), rng.Intn(5)))
		}
	}
	b, _ := json.Marshal(map[string]any{"terms": terms})
	return b
}

// serviceSeq reads the daemon's current view sequence from its stats.
func serviceSeq(t *testing.T, h http.Handler) uint64 {
	t.Helper()
	code, body := do(h, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st struct {
		ViewSeq uint64 `json:"view_seq"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.ViewSeq
}

// newPair boots a daemon plus one synchronized router over real HTTP.
func newPair(t *testing.T) (*service.Server, http.Handler, *Router) {
	t.Helper()
	s := service.New(service.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	rt := New(Config{
		Upstream:    ts.URL,
		PollTimeout: 200 * time.Millisecond,
		RetryAfter:  5 * time.Millisecond,
	})
	rt.Start()
	t.Cleanup(rt.Shutdown)
	return s, s.Handler(), rt
}

// TestRouterNotReady pins the unsynchronized contract: 503, a
// Retry-After header, and the not_ready error code.
func TestRouterNotReady(t *testing.T) {
	rt := New(Config{Upstream: "http://127.0.0.1:1"}) // never started
	h := rt.Handler()
	for _, path := range []string{"/v1/query", "/v1/query/batch"} {
		req := httptest.NewRequest("POST", path, bytes.NewReader([]byte(`{"terms":["x"]}`)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503", path, w.Code)
		}
		if w.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: missing Retry-After", path)
		}
		var env struct {
			Error struct{ Code string } `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code != "not_ready" {
			t.Fatalf("%s: body %s", path, w.Body.Bytes())
		}
	}
}

// TestRouterByteIdenticalProperty is the tier's correctness property:
// across a randomized schedule of joins, leaves, maintenance periods
// and compactions, a router that has caught up to the daemon's
// published sequence answers every query and batch byte-identically
// to the authoritative engine — and advances through pure-relocation
// phases on delta records, resyncing fully only across membership
// changes.
func TestRouterByteIdenticalProperty(t *testing.T) {
	_, sh, rt := newPair(t)
	rh := rt.Handler()
	rng := rand.New(rand.NewSource(42))

	var live []int
	join := func() {
		code, body := do(sh, "POST", "/v1/peers", joinBodyJSON(rng.Intn(3), rng.Intn(9)))
		if code != http.StatusCreated {
			t.Fatalf("join: %d %s", code, body)
		}
		var jr struct{ ID int }
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		live = append(live, jr.ID)
	}
	for i := 0; i < 8; i++ {
		join()
	}

	compare := func(step int) {
		seq := serviceSeq(t, sh)
		if !rt.WaitSynced(seq, 5*time.Second) {
			t.Fatalf("step %d: router stuck at seq %d, daemon at %d (sync errors: %d)",
				step, rt.Seq(), seq, rt.SyncErrors())
		}
		for q := 0; q < 6; q++ {
			body := randQuery(rng)
			sc, sb := do(sh, "POST", "/v1/query", body)
			rc, rb := do(rh, "POST", "/v1/query", body)
			if sc != rc || !bytes.Equal(sb, rb) {
				t.Fatalf("step %d: query %s diverged:\n  daemon %d %s\n  router %d %s", step, body, sc, sb, rc, rb)
			}
		}
		batch := []byte(fmt.Sprintf(`{"queries":[%s,%s,%s]}`, randQuery(rng), randQuery(rng), randQuery(rng)))
		sc, sb := do(sh, "POST", "/v1/query/batch", batch)
		rc, rb := do(rh, "POST", "/v1/query/batch", batch)
		if sc != rc || !bytes.Equal(sb, rb) {
			t.Fatalf("step %d: batch diverged:\n  daemon %d %s\n  router %d %s", step, sc, sb, rc, rb)
		}
	}
	compare(-1)

	for step := 0; step < 60; step++ {
		switch r := rng.Intn(10); {
		case r < 3:
			join()
		case r < 5 && len(live) > 4:
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if code, body := do(sh, "DELETE", fmt.Sprintf("/v1/peers/%d", id), nil); code != http.StatusOK {
				t.Fatalf("leave %d: %d %s", id, code, body)
			}
		case r < 8:
			do(sh, "POST", "/v1/reform", nil)
		default:
			do(sh, "POST", "/v1/compact", nil)
		}
		compare(step)
	}

	if rt.FullSyncs() == 0 || rt.DeltaSyncs() == 0 {
		t.Fatalf("schedule exercised full=%d delta=%d syncs; both paths must run", rt.FullSyncs(), rt.DeltaSyncs())
	}
}

// TestRouterDeltaOnPureRelocation pins, at the router level, that a
// relocation-only maintenance period advances the replica via delta
// records without a full resync.
func TestRouterDeltaOnPureRelocation(t *testing.T) {
	_, sh, rt := newPair(t)
	for i := 0; i < 12; i++ {
		if code, body := do(sh, "POST", "/v1/peers", joinBodyJSON(i%3, i/3)); code != http.StatusCreated {
			t.Fatalf("join: %d %s", code, body)
		}
	}
	if !rt.WaitSynced(serviceSeq(t, sh), 5*time.Second) {
		t.Fatal("router never synced")
	}
	fullBefore, deltaBefore := rt.FullSyncs(), rt.DeltaSyncs()

	code, body := do(sh, "POST", "/v1/reform", nil)
	if code != http.StatusOK {
		t.Fatalf("reform: %d %s", code, body)
	}
	var rr struct{ Moves int }
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Moves == 0 {
		t.Fatal("reform granted no moves; fixture no longer exercises relocation")
	}
	if !rt.WaitSynced(serviceSeq(t, sh), 5*time.Second) {
		t.Fatal("router did not catch up after reform")
	}
	if rt.FullSyncs() != fullBefore {
		t.Fatalf("pure-relocation reform forced %d full resync(s)", rt.FullSyncs()-fullBefore)
	}
	if rt.DeltaSyncs() == deltaBefore {
		t.Fatal("pure-relocation reform applied no delta records")
	}
}

// TestRouterSoak hammers the pair under -race: churn, maintenance and
// router queries all concurrent, then a final convergence check. The
// race detector owns the interleavings; the final comparison owns the
// data.
func TestRouterSoak(t *testing.T) {
	_, sh, rt := newPair(t)
	rh := rt.Handler()
	for i := 0; i < 10; i++ {
		do(sh, "POST", "/v1/peers", joinBodyJSON(i%3, i/3))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var routerErrors atomic.Int64
	wg.Add(3)
	go func() { // churn
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		var ids []int
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(6) {
			case 0:
				_, body := do(sh, "POST", "/v1/peers", joinBodyJSON(rng.Intn(3), i%9))
				var jr struct{ ID int }
				if json.Unmarshal(body, &jr) == nil {
					ids = append(ids, jr.ID)
				}
			case 1:
				if len(ids) > 0 {
					k := rng.Intn(len(ids))
					do(sh, "DELETE", fmt.Sprintf("/v1/peers/%d", ids[k]), nil)
					ids = append(ids[:k], ids[k+1:]...)
				}
			case 2:
				do(sh, "POST", "/v1/reform", nil)
			default:
				do(sh, "POST", "/v1/compact", nil)
			}
		}
	}()
	for g := 0; g < 2; g++ { // router query load
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _ := do(rh, "POST", "/v1/query", randQuery(rng))
				if code != http.StatusOK && code != http.StatusServiceUnavailable {
					routerErrors.Add(1)
				}
				do(rh, "GET", "/v1/stats", nil)
			}
		}(int64(g))
	}
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := routerErrors.Load(); n > 0 {
		t.Fatalf("%d unexpected router statuses under load", n)
	}

	// Quiesced: the router must converge and agree byte-for-byte.
	seq := serviceSeq(t, sh)
	if !rt.WaitSynced(seq, 5*time.Second) {
		t.Fatalf("router stuck at %d, daemon at %d", rt.Seq(), seq)
	}
	rng := rand.New(rand.NewSource(99))
	for q := 0; q < 20; q++ {
		body := randQuery(rng)
		sc, sb := do(sh, "POST", "/v1/query", body)
		rc, rb := do(rh, "POST", "/v1/query", body)
		if sc != rc || !bytes.Equal(sb, rb) {
			t.Fatalf("post-soak divergence on %s:\n  daemon %d %s\n  router %d %s", body, sc, sb, rc, rb)
		}
	}
}
