package router

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestRouterRouteCache pins the router tier's cache wiring: hot
// repeats of the same query answer byte-identically to the first
// (cold) answer and to the daemon, the /v1/stats route_cache block
// reports the hits, and a -route-cache=0 router reports itself
// disabled while still answering identically.
func TestRouterRouteCache(t *testing.T) {
	_, sh, rt := newPair(t)
	rh := rt.Handler()
	for i := 0; i < 6; i++ {
		if code, body := do(sh, "POST", "/v1/peers", joinBodyJSON(i%3, i)); code != http.StatusCreated {
			t.Fatalf("join %d: %d %s", i, code, body)
		}
	}
	want := serviceSeq(t, sh)
	if !rt.WaitSynced(want, 5*time.Second) {
		t.Fatalf("router stuck at seq %d, want %d", rt.Seq(), want)
	}

	queries := [][]byte{
		[]byte(`{"terms":["c0-t0"]}`),
		[]byte(`{"terms":["c1-t1","c1-t2"]}`),
		[]byte(`{"terms":["c2-t0","c0-t1"]}`),
	}
	var cold [][]byte
	for _, q := range queries {
		code, body := do(rh, "POST", "/v1/query", q)
		if code != http.StatusOK {
			t.Fatalf("cold query %s: %d %s", q, code, body)
		}
		cold = append(cold, append([]byte(nil), body...))
	}
	for pass := 0; pass < 3; pass++ {
		for i, q := range queries {
			code, body := do(rh, "POST", "/v1/query", q)
			if code != http.StatusOK || !bytes.Equal(body, cold[i]) {
				t.Fatalf("hot pass %d query %s: %d %s != cold %s", pass, q, code, body, cold[i])
			}
			sCode, sBody := do(sh, "POST", "/v1/query", q)
			if sCode != http.StatusOK || !bytes.Equal(body, sBody) {
				t.Fatalf("query %s: router %s != daemon %s", q, body, sBody)
			}
		}
	}

	code, body := do(rh, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("router stats: %d %s", code, body)
	}
	var st struct {
		RouteCache struct {
			Enabled bool    `json:"enabled"`
			Hits    float64 `json:"hits"`
			Misses  float64 `json:"misses"`
		} `json:"route_cache"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("router stats decode: %v %s", err, body)
	}
	if !st.RouteCache.Enabled || st.RouteCache.Hits == 0 || st.RouteCache.Misses == 0 {
		t.Fatalf("router route_cache stats %+v, want enabled with hits and misses", st.RouteCache)
	}

	// A cache-disabled router over the same daemon answers identically
	// and reports the cache off.
	off := New(Config{Upstream: rt.cfg.Upstream, RouteCache: -1,
		PollTimeout: 200 * time.Millisecond, RetryAfter: 5 * time.Millisecond})
	off.Start()
	t.Cleanup(off.Shutdown)
	if !off.WaitSynced(want, 5*time.Second) {
		t.Fatalf("uncached router stuck at seq %d, want %d", off.Seq(), want)
	}
	oh := off.Handler()
	for i, q := range queries {
		code, body := do(oh, "POST", "/v1/query", q)
		if code != http.StatusOK || !bytes.Equal(body, cold[i]) {
			t.Fatalf("uncached router query %s: %d %s != %s", q, code, body, cold[i])
		}
	}
	code, body = do(oh, "GET", "/v1/stats", nil)
	var stOff struct {
		RouteCache struct {
			Enabled bool `json:"enabled"`
		} `json:"route_cache"`
	}
	if code != http.StatusOK {
		t.Fatalf("uncached router stats: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &stOff); err != nil || stOff.RouteCache.Enabled {
		t.Fatalf("uncached router stats %s (err %v), want route_cache disabled", body, err)
	}
}
