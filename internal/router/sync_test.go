package router

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// flakyUpstream fronts a real daemon handler with a switchable failure
// mode, timestamping every request it rejects.
type flakyUpstream struct {
	daemon http.Handler
	fail   atomic.Bool
	// retryAfter, when set, is sent on failures as a Retry-After header.
	retryAfter string

	mu       sync.Mutex
	failures []time.Time
}

func (f *flakyUpstream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.fail.Load() {
		f.mu.Lock()
		f.failures = append(f.failures, time.Now())
		f.mu.Unlock()
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	f.daemon.ServeHTTP(w, r)
}

func (f *flakyUpstream) failureTimes() []time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Time(nil), f.failures...)
}

func (f *flakyUpstream) waitFailures(t *testing.T, n int, d time.Duration) []time.Time {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if ts := f.failureTimes(); len(ts) >= n {
			return ts[:n]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d upstream failures (have %d)", n, len(f.failureTimes()))
	return nil
}

// TestSyncLoopBackoffSpacing pins the retry-storm fix: consecutive
// failed sync attempts space out exponentially (with jitter), one
// success resets the ceiling, and the loop keeps running throughout.
func TestSyncLoopBackoffSpacing(t *testing.T) {
	s := service.New(service.Config{})
	defer s.BeginShutdown()
	up := &flakyUpstream{daemon: s.Handler()}
	up.fail.Store(true)
	ts := httptest.NewServer(up)
	defer ts.Close()

	const base = 40 * time.Millisecond
	rt := New(Config{Upstream: ts.URL, RetryAfter: base, PollTimeout: 100 * time.Millisecond})
	rt.Start()
	defer rt.Shutdown()

	// Six failures: jittered gaps drawn from [20,40], [40,80], [80,160],
	// [160,320], [320,640] ms — the whole run must span at least the
	// minimum sum, and the last gap must exceed the first (growth).
	times := up.waitFailures(t, 6, 15*time.Second)
	gaps := make([]time.Duration, 0, 5)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]))
	}
	if span := times[5].Sub(times[0]); span < 500*time.Millisecond {
		t.Fatalf("six failures in %v: retries are not backing off (gaps %v)", span, gaps)
	}
	if gaps[4] <= gaps[0] {
		t.Fatalf("backoff not growing: first gap %v, fifth gap %v", gaps[0], gaps[4])
	}
	if rt.SyncErrors() < 5 {
		t.Fatalf("sync_errors %d, want >= 5", rt.SyncErrors())
	}

	// One success resets the ceiling: the next failure gap shrinks far
	// below the pre-success minimum of 320ms.
	up.fail.Store(false)
	if !rt.WaitSynced(0, 10*time.Second) {
		t.Fatal("router did not sync once the upstream recovered")
	}
	before := len(up.failureTimes())
	up.fail.Store(true)
	post := up.waitFailures(t, before+2, 15*time.Second)[before:]
	if g := post[1].Sub(post[0]); g >= 320*time.Millisecond {
		t.Fatalf("post-success gap %v: backoff ceiling was not reset", g)
	}
}

// TestSyncLoopHonorsRetryAfter pins the hint path: an upstream saying
// Retry-After: 1 is not hammered on the loop's own shorter schedule.
func TestSyncLoopHonorsRetryAfter(t *testing.T) {
	s := service.New(service.Config{})
	defer s.BeginShutdown()
	up := &flakyUpstream{daemon: s.Handler(), retryAfter: "1"}
	up.fail.Store(true)
	ts := httptest.NewServer(up)
	defer ts.Close()

	rt := New(Config{Upstream: ts.URL, RetryAfter: 10 * time.Millisecond, PollTimeout: 100 * time.Millisecond})
	rt.Start()
	defer rt.Shutdown()

	times := up.waitFailures(t, 2, 15*time.Second)
	if g := times[1].Sub(times[0]); g < 900*time.Millisecond {
		t.Fatalf("second attempt after %v, want >= ~1s (Retry-After: 1)", g)
	}
}

// TestWaitSyncedReturnsOnShutdown pins the busy-poll fix: a waiter
// parked in WaitSynced returns the moment the router shuts down, not
// at its timeout.
func TestWaitSyncedReturnsOnShutdown(t *testing.T) {
	rt := New(Config{Upstream: "http://127.0.0.1:1", RetryAfter: 10 * time.Millisecond})
	rt.Start()
	done := make(chan bool, 1)
	go func() { done <- rt.WaitSynced(0, 30*time.Second) }()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	rt.Shutdown()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("WaitSynced true with no view")
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("WaitSynced returned %v after Shutdown, want immediate", el)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitSynced still parked 2s after Shutdown")
	}
}

// TestRouterResyncsAfterDaemonRestart is the restart property: when
// the daemon behind the router's URL restarts from a snapshot (view
// sequence numbering starts over, epoch changes), the router detects
// the new epoch, full-resyncs, never serves an inconsistent view, and
// does not spin in an error loop.
func TestRouterResyncsAfterDaemonRestart(t *testing.T) {
	s1 := service.New(service.Config{})
	var cur atomic.Value // http.Handler
	cur.Store(s1.Handler())
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer front.Close()

	rt := New(Config{Upstream: front.URL, PollTimeout: 200 * time.Millisecond, RetryAfter: 10 * time.Millisecond})
	rt.Start()
	defer rt.Shutdown()

	for i := 0; i < 5; i++ {
		if code, body := do(s1.Handler(), "POST", "/v1/peers", joinBodyJSON(i%2, i)); code != http.StatusCreated {
			t.Fatalf("join: %d %s", code, body)
		}
	}
	seq1 := serviceSeq(t, s1.Handler())
	if !rt.WaitSynced(seq1, 10*time.Second) {
		t.Fatal("router never caught up to the first daemon")
	}

	// Restart: a new daemon restored from the snapshot takes over the
	// same URL; its view numbering restarts at 1 under a fresh epoch.
	s2, err := service.NewFromSnapshot(service.Config{}, s1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.BeginShutdown()
	cur.Store(s2.Handler())
	s1.BeginShutdown() // wakes the router's parked long-poll with a 204

	seq2 := serviceSeq(t, s2.Handler())
	if seq2 >= seq1 {
		t.Fatalf("restarted daemon's view seq %d did not reset (was %d)", seq2, seq1)
	}
	deadline := time.Now().Add(10 * time.Second)
	for rt.Seq() != seq2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if rt.Seq() != seq2 {
		t.Fatalf("router seq %d, want restarted daemon's %d", rt.Seq(), seq2)
	}
	if rt.FullSyncs() < 2 {
		t.Fatalf("full syncs %d, want >= 2 (one per daemon instance)", rt.FullSyncs())
	}

	// The router must keep advancing on the new instance — and answer
	// byte-identically to it.
	if code, body := do(s2.Handler(), "POST", "/v1/peers", joinBodyJSON(1, 7)); code != http.StatusCreated {
		t.Fatalf("post-restart join: %d %s", code, body)
	}
	if !rt.WaitSynced(serviceSeq(t, s2.Handler()), 10*time.Second) {
		t.Fatal("router stopped advancing after the restart")
	}
	errsBefore := rt.SyncErrors()
	q := []byte(`{"terms":["c0-t0","c1-t1"]}`)
	codeA, bodyA := do(s2.Handler(), "POST", "/v1/query", q)
	codeB, bodyB := do(rt.Handler(), "POST", "/v1/query", q)
	if codeA != codeB || string(bodyA) != string(bodyB) {
		t.Fatalf("post-restart answers diverge: %d %s vs %d %s", codeA, bodyA, codeB, bodyB)
	}
	// No error loop: the loop settles into quiet long-polls.
	time.Sleep(300 * time.Millisecond)
	if rt.SyncErrors() != errsBefore {
		t.Fatalf("sync errors still accumulating after restart (%d -> %d)", errsBefore, rt.SyncErrors())
	}
}
