// Package router is the stateless query-router tier: a process that
// follows the authoritative daemon's routing-view replication feed
// (GET /v1/view/watch, wire format in internal/viewwire) and serves
// the v1 data plane — POST /v1/query and POST /v1/query/batch — from
// its local copy of the view.
//
// A router holds no overlay state of its own: everything it serves is
// reconstructed from full records and advanced by pure-relocation
// delta records, so any number of replicas scale the read path
// horizontally while the daemon remains the single writer. Because a
// replica answers through exactly the same code path as the daemon
// (internal/api over a core.RoutingView), its responses are
// byte-identical to the engine's for the same published view — the
// tier's correctness contract, pinned by the property tests in this
// package.
//
// Until the first full record arrives (and again only if the process
// restarts), the data plane answers 503 with a Retry-After header and
// the api.CodeNotReady error code. After that the router always
// serves its latest synchronized view, even while the upstream is
// briefly unreachable — stale-but-consistent beats unavailable for a
// read tier; /v1/stats reports how far behind it is.
package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/retry"
	"repro/internal/viewwire"
)

// maxRecordBytes bounds one replication record read from upstream.
const maxRecordBytes = 1 << 28

// Config parameterizes a Router.
type Config struct {
	// Upstream is the authoritative daemon's base URL. Ignored when
	// Upstreams is set.
	Upstream string
	// Upstreams is the rotation list of upstream base URLs: the sync
	// loop follows one and rotates to the next on failure, so a router
	// rides out a leader failover by re-syncing from a survivor. Empty
	// means []string{Upstream}.
	Upstreams []string
	// PollTimeout is the long-poll timeout requested from upstream;
	// 0 means 25s.
	PollTimeout time.Duration
	// RetryAfter is the base backoff between failed sync attempts and
	// the Retry-After the data plane advertises while unsynchronized;
	// 0 means 1s. Repeated failures double the backoff (with jitter)
	// up to maxRetryBackoff; one success resets it.
	RetryAfter time.Duration
	// Client is the HTTP client used upstream; nil means a dedicated
	// client with sane long-poll timeouts.
	Client *http.Client
	// RouteCache sizes the replica's view-epoch hot-query result cache
	// (entries; rounded up to a power of two). 0 means the default
	// 4096; negative disables caching. Because every applied
	// replication record publishes a fresh *core.RoutingView, cached
	// answers stay byte-identical to uncached routing automatically.
	RouteCache int
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// maxRetryBackoff caps the sync loop's exponential backoff.
const maxRetryBackoff = 30 * time.Second

func (c Config) withDefaults() Config {
	if len(c.Upstreams) == 0 {
		c.Upstreams = []string{c.Upstream}
	}
	c.Upstream = c.Upstreams[0]
	if c.PollTimeout <= 0 {
		c.PollTimeout = 25 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Client == nil {
		// The read deadline must outlive a full long-poll plus slack.
		c.Client = &http.Client{Timeout: c.PollTimeout + 10*time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// syncedView is one atomically published local view: the resolved
// term table plus the reconstructed routing view.
type syncedView struct {
	seq     uint64
	terms   map[string]attr.ID
	routing *core.RoutingView
}

// routerMetrics instruments the three endpoints a router serves.
type routerMetrics struct {
	query api.EndpointMetrics
	batch api.EndpointMetrics
	stats api.EndpointMetrics
}

// Router follows the replication feed and serves the data plane.
type Router struct {
	cfg     Config
	started time.Time

	// view is the latest synchronized local view (nil until the first
	// full record lands); the data plane loads it once per request.
	view atomic.Pointer[syncedView]

	// cache is the replica's view-epoch hot-query result cache (nil
	// when Config.RouteCache < 0).
	cache *core.RouteCache

	// upstream is the rotation member the sync loop currently follows.
	upstream atomic.Value // string

	// notifyMu guards notify, a channel closed (and replaced) whenever
	// a new view is published — WaitSynced parks on it instead of
	// polling.
	notifyMu sync.Mutex
	notify   chan struct{}

	fullSyncs  atomic.Int64
	deltaSyncs atomic.Int64
	syncErrors atomic.Int64
	served     atomic.Int64

	met routerMetrics

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// New builds a Router; call Start to launch the sync loop.
func New(cfg Config) *Router {
	rt := &Router{cfg: cfg.withDefaults(), started: time.Now()}
	if rt.cfg.RouteCache >= 0 {
		rt.cache = core.NewRouteCache(rt.cfg.RouteCache)
	}
	rt.upstream.Store(rt.cfg.Upstreams[0])
	rt.notify = make(chan struct{})
	rt.met.query.Route = "POST /v1/query"
	rt.met.batch.Route = "POST /v1/query/batch"
	rt.met.stats.Route = "GET /v1/stats"
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	return rt
}

// Start launches the background sync loop against cfg.Upstream.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go rt.syncLoop()
}

// Shutdown stops the sync loop and waits for it to exit.
func (rt *Router) Shutdown() {
	rt.stopOnce.Do(rt.cancel)
	rt.wg.Wait()
}

// ApplyRecord advances the local view with one decoded replication
// record: full records (re)build it, delta records relocate within
// it. Errors leave the current view untouched; the caller decides
// whether to resynchronize.
func (rt *Router) ApplyRecord(rec viewwire.Record) error {
	switch rec.Kind {
	case viewwire.KindFull:
		routing, err := core.FromViewData(rec.View)
		if err != nil {
			return fmt.Errorf("router: full record rejected: %w", err)
		}
		terms := make(map[string]attr.ID, len(rec.Terms))
		for id, name := range rec.Terms {
			terms[name] = attr.ID(id)
		}
		rt.view.Store(&syncedView{seq: rec.Seq, terms: terms, routing: routing})
		rt.fullSyncs.Add(1)
		rt.wakeWaiters()
	case viewwire.KindDelta:
		cur := rt.view.Load()
		if cur == nil {
			return fmt.Errorf("router: delta record with no base view")
		}
		if got := cur.routing.PopVersion(); got != rec.PopVersion {
			return fmt.Errorf("router: delta for population version %d against %d", rec.PopVersion, got)
		}
		routing, err := cur.routing.ApplyMoves(rec.Moves)
		if err != nil {
			return fmt.Errorf("router: delta rejected: %w", err)
		}
		rt.view.Store(&syncedView{seq: rec.Seq, terms: cur.terms, routing: routing})
		rt.deltaSyncs.Add(1)
		rt.wakeWaiters()
	default:
		return fmt.Errorf("router: unknown record kind %d", rec.Kind)
	}
	return nil
}

// syncLoop long-polls the upstream watch endpoint forever, applying
// each record as it arrives. Failures count in sync_errors, back off
// exponentially with jitter (base RetryAfter, cap maxRetryBackoff,
// honoring an upstream Retry-After hint, reset by any success) and
// rotate to the next upstream; a record the apply path rejects drops
// the loop's position so the next poll resynchronizes with a full
// record. An upstream epoch change — the daemon restarted, so its
// view sequence numbering started over — likewise voids the position.
func (rt *Router) syncLoop() {
	defer rt.wg.Done()
	bo := retry.NewBackoff(rt.cfg.RetryAfter, maxRetryBackoff, retry.AutoSeed())
	var seq, pop uint64
	have := false
	epoch := ""
	ui := 0
	for rt.ctx.Err() == nil {
		upstream := rt.cfg.Upstreams[ui]
		rec, status, hint, newEpoch, err := rt.fetch(upstream, seq, pop, have, epoch)
		if err != nil {
			if rt.ctx.Err() != nil {
				return
			}
			rt.syncErrors.Add(1)
			rt.cfg.Logf("router: sync: %s: %v", upstream, err)
			// The next rotation member's view numbering is its own:
			// drop the position along with the epoch.
			ui = (ui + 1) % len(rt.cfg.Upstreams)
			seq, pop, have, epoch = 0, 0, false, ""
			rt.sleep(bo.Next(hint))
			continue
		}
		bo.Reset()
		rt.upstream.Store(upstream)
		if newEpoch != epoch {
			if epoch != "" {
				rt.cfg.Logf("router: upstream %s restarted (epoch %s -> %s); full resync", upstream, epoch, newEpoch)
				seq, pop, have = 0, 0, false
			}
			epoch = newEpoch
		}
		if status == http.StatusNoContent {
			continue // long-poll timeout: nothing new, poll again
		}
		if err := rt.ApplyRecord(rec); err != nil {
			rt.syncErrors.Add(1)
			rt.cfg.Logf("router: %v (forcing full resync)", err)
			seq, pop, have = 0, 0, false
			rt.sleep(bo.Next(0))
			continue
		}
		seq, pop, have = rec.Seq, rec.PopVersion, true
	}
}

func (rt *Router) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-rt.ctx.Done():
	}
}

// fetch issues one long-poll against upstream. It returns the decoded
// record on 200, status 204 on a quiet timeout, and an error
// otherwise (with any Retry-After hint the upstream sent). A
// non-empty epoch asserts the seq/pop position is against that
// daemon instance's history; the response's own epoch comes back in
// newEpoch.
func (rt *Router) fetch(upstream string, seq, pop uint64, have bool, epoch string) (rec viewwire.Record, status int, hint time.Duration, newEpoch string, err error) {
	url := upstream + "/v1/view/watch?timeout_ms=" +
		strconv.FormatInt(rt.cfg.PollTimeout.Milliseconds(), 10)
	if have {
		url += "&seq=" + strconv.FormatUint(seq, 10) + "&pop=" + strconv.FormatUint(pop, 10)
	}
	if epoch != "" {
		url += "&epoch=" + epoch
	}
	req, err := http.NewRequestWithContext(rt.ctx, http.MethodGet, url, nil)
	if err != nil {
		return viewwire.Record{}, 0, 0, "", err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return viewwire.Record{}, 0, 0, "", err
	}
	defer resp.Body.Close()
	newEpoch = resp.Header.Get("X-Reform-Epoch")
	switch resp.StatusCode {
	case http.StatusNoContent:
		return viewwire.Record{}, http.StatusNoContent, 0, newEpoch, nil
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes))
		if err != nil {
			return viewwire.Record{}, 0, 0, "", err
		}
		rec, err := viewwire.Decode(body)
		if err != nil {
			return viewwire.Record{}, 0, 0, "", err
		}
		return rec, http.StatusOK, 0, newEpoch, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return viewwire.Record{}, resp.StatusCode, retry.Hint(resp), "",
			fmt.Errorf("watch: upstream %d: %s", resp.StatusCode, body)
	}
}

// Synced reports whether a view is available to serve from.
func (rt *Router) Synced() bool { return rt.view.Load() != nil }

// Seq returns the synchronized view's sequence number (0 before the
// first sync).
func (rt *Router) Seq() uint64 {
	if v := rt.view.Load(); v != nil {
		return v.seq
	}
	return 0
}

// FullSyncs returns how many full records have been applied.
func (rt *Router) FullSyncs() int64 { return rt.fullSyncs.Load() }

// DeltaSyncs returns how many delta records have been applied.
func (rt *Router) DeltaSyncs() int64 { return rt.deltaSyncs.Load() }

// SyncErrors returns how many sync attempts failed.
func (rt *Router) SyncErrors() int64 { return rt.syncErrors.Load() }

// wakeWaiters releases every WaitSynced parked on the notify channel
// after a new view publishes.
func (rt *Router) wakeWaiters() {
	rt.notifyMu.Lock()
	close(rt.notify)
	rt.notify = make(chan struct{})
	rt.notifyMu.Unlock()
}

// WaitSynced blocks until the router has reached at least seq (0: any
// view at all), the timeout elapses, or the router shuts down; it
// reports success. It parks on a notification from ApplyRecord rather
// than polling, so it wakes the instant a view publishes — and
// returns immediately once Shutdown cancels the sync loop.
func (rt *Router) WaitSynced(seq uint64, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		// Grab the notification channel before checking the view: a
		// publish between the check and the park closes this channel,
		// so the wake-up cannot be missed.
		rt.notifyMu.Lock()
		ch := rt.notify
		rt.notifyMu.Unlock()
		if v := rt.view.Load(); v != nil && v.seq >= seq {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return false
		case <-rt.ctx.Done():
			return false
		}
	}
}

// AnswerQuery answers one query from the current view without HTTP
// framing — the loadtest verifier and the RouterServe benchmark drive
// this directly. ok is false while unsynchronized.
func (rt *Router) AnswerQuery(raw []string, sc *api.Scratch) (resp api.QueryResponse, ok bool) {
	v := rt.view.Load()
	if v == nil {
		return api.QueryResponse{}, false
	}
	return api.AnswerQuery(v.terms, v.routing, rt.cache, raw, sc), true
}

// Handler returns the router's HTTP handler: the v1 data plane plus
// the router's own stats.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", api.Instrument(&rt.met.query, rt.handleQuery))
	mux.HandleFunc("POST /v1/query/batch", api.Instrument(&rt.met.batch, rt.handleBatch))
	mux.HandleFunc("GET /v1/stats", api.Instrument(&rt.met.stats, rt.handleStats))
	return mux
}

// notReady answers 503 with the Retry-After the config advertises.
func (rt *Router) notReady(w http.ResponseWriter) {
	secs := int(rt.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	api.Error(w, http.StatusServiceUnavailable, api.CodeNotReady, "no synchronized view yet; retry shortly")
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	v := rt.view.Load()
	if v == nil {
		rt.notReady(w)
		return
	}
	rt.served.Add(int64(api.ServeQuery(w, r, v.terms, v.routing, rt.cache)))
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	v := rt.view.Load()
	if v == nil {
		rt.notReady(w)
		return
	}
	rt.served.Add(int64(api.ServeQueryBatch(w, r, v.terms, v.routing, rt.cache)))
}

// handleStats reports the router's replication position and endpoint
// metrics — deliberately a different payload from the daemon's
// /v1/stats: a router has no engine gauges, only a followed view.
func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{
		"synced":         false,
		"upstream":       rt.upstream.Load(),
		"upstreams":      rt.cfg.Upstreams,
		"full_syncs":     rt.fullSyncs.Load(),
		"delta_syncs":    rt.deltaSyncs.Load(),
		"sync_errors":    rt.syncErrors.Load(),
		"queries_served": rt.served.Load(),
		"route_cache":    api.CacheStatsMap(rt.cache),
		"uptime_seconds": time.Since(rt.started).Seconds(),
		"endpoints": map[string]any{
			"query":       rt.met.query.Snapshot(),
			"query_batch": rt.met.batch.Snapshot(),
			"stats":       rt.met.stats.Snapshot(),
		},
	}
	if v := rt.view.Load(); v != nil {
		out["synced"] = true
		out["view_seq"] = v.seq
		out["pop_version"] = v.routing.PopVersion()
		out["peers"] = v.routing.Live()
		out["slots"] = v.routing.Slots()
	}
	api.WriteJSON(w, http.StatusOK, out)
}
