// Package retry is the shared reconnect policy of the replication
// followers — the query-router tier following /v1/view/watch and the
// serve-tier followers following /v1/replog/watch. Both loops used to
// retry a failed upstream at a fixed interval, so N replicas whose
// upstream restarts resynchronize their retries into a lock-step
// thundering herd against the recovering process. A Backoff spreads
// them out: capped exponential growth with full jitter, an explicit
// upstream Retry-After hint override, and a reset on success.
package retry

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Backoff produces successive retry delays. The zero value is unusable;
// call NewBackoff. A Backoff is safe for use from one goroutine (the
// sync loop that owns it).
type Backoff struct {
	// base is the first retry's upper bound; max caps the growth.
	base, max time.Duration
	// cur is the current exponential ceiling.
	cur time.Duration
	rng *rand.Rand
}

// NewBackoff builds a policy growing from base to max. Non-positive
// arguments fall back to 250ms and 30s; max below base is raised to
// base. seed fixes the jitter stream (tests); pass 0 for a
// time-derived seed.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < base {
		max = base
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{base: base, max: max, cur: base, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay before the next retry and advances the
// exponential ceiling. The delay is jittered over [cur/2, cur) — two
// replicas failing at the same instant almost surely pick different
// delays — and cur doubles up to the cap. When the upstream supplied a
// Retry-After hint, the hint wins when it is longer than the jittered
// delay: the server knows its own recovery schedule better than we do.
func (b *Backoff) Next(hint time.Duration) time.Duration {
	d := b.cur/2 + time.Duration(b.rng.Int63n(int64(b.cur/2)+1))
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
	if hint > d {
		d = hint
	}
	return d
}

// Reset restores the ceiling to base; call it after any successful
// exchange so a healthy upstream is re-polled promptly after a blip.
func (b *Backoff) Reset() { b.cur = b.base }

// Current exposes the present ceiling (tests assert growth and cap).
func (b *Backoff) Current() time.Duration { return b.cur }

// Hint extracts a Retry-After hint from an HTTP response: the header's
// delay-seconds form, or 0 when absent or unparseable (the HTTP-date
// form is not worth the dependency for a retry hint).
func Hint(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// seedCounter desynchronizes concurrent zero-seed callers created
// within one clock tick (a fleet of replicas booting together).
var (
	seedMu      sync.Mutex
	seedCounter int64
)

// AutoSeed returns a process-unique seed: wall clock plus a counter,
// so replicas constructed in the same nanosecond still jitter apart.
func AutoSeed() int64 {
	seedMu.Lock()
	defer seedMu.Unlock()
	seedCounter++
	return time.Now().UnixNano() + seedCounter<<32
}
