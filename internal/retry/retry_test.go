package retry

import (
	"net/http"
	"testing"
	"time"
)

// TestBackoffGrowsAndCaps pins the exponential envelope: every delay
// lies in [cur/2, cur], the ceiling doubles per failure, and the cap
// holds.
func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	ceil := 10 * time.Millisecond
	for i := 0; i < 10; i++ {
		d := b.Next(0)
		if d < ceil/2 || d > ceil {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, ceil/2, ceil)
		}
		ceil *= 2
		if ceil > 80*time.Millisecond {
			ceil = 80 * time.Millisecond
		}
		if got := b.Current(); got != ceil {
			t.Fatalf("attempt %d: ceiling %v, want %v", i, got, ceil)
		}
	}
}

// TestBackoffResets pins that a success drops the ceiling back to base.
func TestBackoffResets(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, time.Second, 7)
	for i := 0; i < 5; i++ {
		b.Next(0)
	}
	if b.Current() == 10*time.Millisecond {
		t.Fatal("ceiling never grew")
	}
	b.Reset()
	if got := b.Current(); got != 10*time.Millisecond {
		t.Fatalf("after reset ceiling %v, want base", got)
	}
	if d := b.Next(0); d > 10*time.Millisecond {
		t.Fatalf("first post-reset delay %v exceeds base", d)
	}
}

// TestBackoffJitterSpreadsReplicas pins the herd-breaking property:
// two policies with different seeds do not produce identical delay
// sequences.
func TestBackoffJitterSpreadsReplicas(t *testing.T) {
	a := NewBackoff(64*time.Millisecond, time.Second, 1)
	b := NewBackoff(64*time.Millisecond, time.Second, 2)
	same := true
	for i := 0; i < 8; i++ {
		if a.Next(0) != b.Next(0) {
			same = false
		}
	}
	if same {
		t.Fatal("two seeds produced identical delay sequences")
	}
}

// TestBackoffHonorsHint pins that a longer upstream Retry-After
// overrides the jittered delay, and a shorter one does not shrink it.
func TestBackoffHonorsHint(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 3)
	if d := b.Next(2 * time.Second); d != 2*time.Second {
		t.Fatalf("delay %v, want the 2s hint", d)
	}
	// The ceiling still advanced; a zero hint falls back to jitter.
	if d := b.Next(time.Nanosecond); d < 10*time.Millisecond || d > 20*time.Millisecond {
		t.Fatalf("delay %v outside the jitter envelope [10ms, 20ms]", d)
	}
}

func TestHint(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		raw  string
		want time.Duration
	}{
		{"", 0}, {"3", 3 * time.Second}, {"0", 0},
		{"-1", 0}, {"soon", 0},
	}
	for _, c := range cases {
		if got := Hint(mk(c.raw)); got != c.want {
			t.Fatalf("Hint(%q) = %v, want %v", c.raw, got, c.want)
		}
	}
	if Hint(nil) != 0 {
		t.Fatal("Hint(nil) != 0")
	}
}

func TestAutoSeedUnique(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := AutoSeed()
		if seen[s] {
			t.Fatal("AutoSeed repeated within one process")
		}
		seen[s] = true
	}
}
