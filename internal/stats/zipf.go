package stats

import (
	"fmt"
	"math"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. The paper uses Zipf distributions both for term
// frequencies inside a category vocabulary and for assigning query
// demand across peers ("some peers are more demanding than others").
type Zipf struct {
	cdf []float64
	s   float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics on
// n <= 0 or s < 0; s == 0 degenerates to the uniform distribution.
func NewZipf(n int, s float64) *Zipf {
	w := ZipfWeights(n, s)
	cdf := make([]float64, n)
	var acc float64
	for i, wi := range w {
		acc += wi
		cdf[i] = acc
	}
	cdf[n-1] = 1 // guard against floating point drift
	return &Zipf{cdf: cdf, s: s}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(r *RNG) int {
	x := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// ZipfWeights returns n normalized weights with weight(i) ∝ 1/(i+1)^s.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("stats: ZipfWeights with n=%d", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("stats: ZipfWeights with s=%g < 0", s))
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
