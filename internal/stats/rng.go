// Package stats provides the deterministic randomness and statistical
// helpers used throughout the reproduction: a seedable splitmix64-based
// random number generator, Zipf samplers, summary statistics and
// histograms.
//
// All experiment randomness flows through RNG so that every table and
// figure is exactly reproducible from a seed, independent of the Go
// version's math/rand internals.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// based on splitmix64. It is not safe for concurrent use; give each
// goroutine its own RNG (see Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams on every platform.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r.
// It advances r.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire-style rejection-free for our purposes: modulo bias is
	// negligible for n << 2^64, but use rejection to stay exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen index weighted by the non-negative
// weights. It panics if the weights sum to zero or are empty.
func (r *RNG) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("stats: weights sum to zero")
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1)
// using the polar Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
