package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestRNGIntnRangeAndCoverage(t *testing.T) {
	r := NewRNG(11)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn in 10000 tries", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPickRespectsWeights(t *testing.T) {
	r := NewRNG(13)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weights not respected: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if math.Abs(frac-0.7) > 0.03 {
		t.Fatalf("weight-7 frequency %g, want ~0.7", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(17)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestZipfWeightsNormalizedAndMonotone(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 2} {
		w := ZipfWeights(100, s)
		var sum float64
		for i, wi := range w {
			sum += wi
			if i > 0 && wi > w[i-1]+1e-15 {
				t.Fatalf("s=%g: weights not monotone at %d", s, i)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%g: weights sum to %g", s, sum)
		}
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	w := ZipfWeights(10, 0)
	for _, wi := range w {
		if math.Abs(wi-0.1) > 1e-12 {
			t.Fatalf("s=0 weight %g, want 0.1", wi)
		}
	}
}

func TestZipfSamplerMatchesWeights(t *testing.T) {
	z := NewZipf(20, 1)
	r := NewRNG(19)
	counts := make([]int, 20)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for rank := 0; rank < 20; rank++ {
		got := float64(counts[rank]) / draws
		want := z.Prob(rank)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: frequency %g, probability %g", rank, got, want)
		}
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z := NewZipf(5, 1)
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Fatal("out-of-range Prob must be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %g", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0=%g", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1=%g", q)
	}
	if q := Quantile(xs, 0.5); q != 2.5 {
		t.Fatalf("median=%g", q)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileWithinBounds(t *testing.T) {
	err := quick.Check(func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw%101) / 100
		v := Quantile(xs, q)
		s := Summarize(xs)
		return v >= s.Min-1e-9 && v <= s.Max+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramClampsAndCounts(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-5, 0, 3, 9.9, 42} {
		h.Observe(x)
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Buckets[0] != 2 { // -5 clamped + 0
		t.Fatalf("first bucket %d", h.Buckets[0])
	}
	if h.Buckets[4] != 2 { // 9.9 + 42 clamped
		t.Fatalf("last bucket %d", h.Buckets[4])
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(23)
	var sum, ss float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		ss += x * x
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean %g", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance %g", variance)
	}
}
