package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates descriptive statistics of a float64 sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It copies xs; the input is not
// modified. An empty sample returns NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of range", q))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// AbsDiff returns |a-b|.
func AbsDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// terms. It is the tolerance used across tests comparing incremental
// and recomputed costs.
func AlmostEqual(a, b, tol float64) bool {
	return AbsDiff(a, b) <= tol
}
