package stats

import (
	"fmt"
	"strings"
)

// Histogram counts observations into fixed-width buckets over [Lo, Hi).
// Observations outside the range are clamped into the first or last
// bucket so no sample is silently dropped.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	total   int
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram bounds [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Observe records x.
func (h *Histogram) Observe(x float64) {
	n := len(h.Buckets)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// String renders an ASCII bar chart, one bucket per line.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	width := float64(h.Hi-h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%8.3f,%8.3f) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c,
			strings.Repeat("#", bar))
	}
	return b.String()
}
