// Package api is the HTTP surface shared by the authoritative serving
// daemon (internal/service) and the stateless query-router tier
// (internal/router): the v1 JSON wire types, the machine-readable
// error envelope, strict request decoding, the allocation-free query
// answering path over a published core.RoutingView, and the lock-free
// per-endpoint metrics.
//
// Both tiers answer data-plane requests through the same functions,
// so a router's response — success or error — is byte-identical to
// the engine's for the same request against the same view. That
// identity is the router tier's correctness contract, and it is
// pinned by property tests rather than re-implemented per tier.
//
// # The v1 API
//
// Endpoints live under a versioned /v1/ prefix and split into a data
// plane (reads, servable by any router replica) and a control plane
// (mutations and admin, authoritative daemon only):
//
//	data plane:    POST /v1/query, POST /v1/query/batch, GET /v1/stats
//	control plane: POST /v1/peers, GET|DELETE /v1/peers/{id},
//	               POST /v1/reform, POST /v1/compact,
//	               GET /v1/snapshot, GET /v1/view/watch
//
// Every error response carries one JSON envelope:
//
//	{"error": {"code": "<machine-readable>", "message": "<human-readable>"}}
//
// Codes are stable API: clients branch on them, messages are free to
// change. See API.md at the repository root for the full contract.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// MaxBodyBytes bounds every request body; larger bodies get 413.
const MaxBodyBytes = 1 << 20

// MaxBatchQueries bounds one POST /v1/query/batch; larger batches get
// 413.
const MaxBatchQueries = 1024

// Stable machine-readable error codes. These are API: a code, once
// shipped, keeps its meaning (messages are informational only).
const (
	// CodeBadJSON: the body is not one well-formed JSON document of
	// the expected shape (syntax error, unknown field, trailing data).
	CodeBadJSON = "bad_json"
	// CodeBodyTooLarge: the request body exceeds MaxBodyBytes.
	CodeBodyTooLarge = "body_too_large"
	// CodeBatchTooLarge: a batch carries more than MaxBatchQueries.
	CodeBatchTooLarge = "batch_too_large"
	// CodeEmptyQuery: a query (standalone or batch element) has no terms.
	CodeEmptyQuery = "empty_query"
	// CodeEmptyBatch: a batch carries no queries.
	CodeEmptyBatch = "empty_batch"
	// CodeBadQueryCount: a join workload entry has a non-positive count.
	CodeBadQueryCount = "bad_query_count"
	// CodeBadPeerID: the peer id path element is not an integer.
	CodeBadPeerID = "bad_peer_id"
	// CodePeerNotFound: no live peer occupies the named slot.
	CodePeerNotFound = "peer_not_found"
	// CodeBadParam: a query-string parameter is malformed.
	CodeBadParam = "bad_param"
	// CodeNotLeader: a control-plane mutation hit a follower that knows
	// no live leader to redirect to (a follower that does know its
	// leader answers 307 with a Location header instead).
	CodeNotLeader = "not_leader"
	// CodeNotReady: a router replica has no synchronized view yet
	// (503; retry after the Retry-After header).
	CodeNotReady = "not_ready"
)

// ErrorInfo is the payload of the error envelope.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the envelope every non-2xx response carries.
type errorBody struct {
	Error ErrorInfo `json:"error"`
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Error writes the JSON error envelope with a stable machine-readable
// code and a formatted human-readable message.
func Error(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteJSON(w, status, errorBody{Error: ErrorInfo{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// DecodeStrict decodes a JSON request body into dst, rejecting
// unknown fields, trailing data and bodies over MaxBodyBytes. On
// failure it writes the enveloped 4xx response and returns false.
func DecodeStrict(w http.ResponseWriter, r *http.Request, what string, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			Error(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge, "%s body over %d bytes", what, mbe.Limit)
		} else {
			Error(w, http.StatusBadRequest, CodeBadJSON, "bad %s body: %v", what, err)
		}
		return false
	}
	// Exactly one JSON document per request: trailing content is as
	// malformed as a truncated body.
	if _, err := dec.Token(); err != io.EOF {
		Error(w, http.StatusBadRequest, CodeBadJSON, "bad %s body: trailing data after JSON document", what)
		return false
	}
	return true
}
