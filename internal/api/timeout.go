package api

import (
	"fmt"
	"strconv"
	"time"
)

// ParseTimeoutMS interprets a long-poll timeout_ms query parameter.
// An empty value means def; negatives and non-integers are an error
// (callers answer bad_param); anything above max — the documented
// per-endpoint ceiling — is clamped to max. The clamp happens on the
// millisecond integer, before the time.Duration conversion: values
// near math.MaxInt64 milliseconds would otherwise overflow the
// nanosecond representation into the negatives, turning an
// "effectively forever" request into a timer that fires immediately.
func ParseTimeoutMS(raw string, def, max time.Duration) (time.Duration, error) {
	if raw == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad timeout_ms %q", raw)
	}
	if n > max.Milliseconds() {
		return max, nil
	}
	return time.Duration(n) * time.Millisecond, nil
}
