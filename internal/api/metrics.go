package api

import (
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"
)

// This file implements the lock-free request metrics both tiers
// expose: every endpoint owns an EndpointMetrics — request/error
// counters plus a log₂-bucketed latency histogram — updated with
// atomics only, so GET /v1/stats reads exact numbers at any moment,
// including while the daemon's maintenance holds its mutation lock.

// latBuckets spans 1ns..2^43ns (~2.4h); slower requests clamp into
// the last bucket.
const latBuckets = 44

// LatencyHist is a lock-free log₂-bucketed latency histogram. Bucket
// i counts samples whose nanosecond duration has bit length i, i.e.
// durations in [2^(i-1), 2^i).
type LatencyHist struct {
	sumNs  atomic.Int64
	bucket [latBuckets]atomic.Int64
}

// Observe records one sample.
func (h *LatencyHist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= latBuckets {
		i = latBuckets - 1
	}
	h.bucket[i].Add(1)
	h.sumNs.Add(ns)
}

// Quantiles estimates the given quantiles (ascending, in [0,1]) in
// one pass, returning each as the upper bound of the bucket holding
// its rank — an overestimate by at most 2x, which is the resolution
// the log₂ buckets buy for being lock-free. It also returns the total
// sample count. Concurrent Observes may land mid-scan; the estimate
// is self-consistent over the counts it reads.
func (h *LatencyHist) Quantiles(qs []float64) (total int64, out []time.Duration) {
	var counts [latBuckets]int64
	for i := range counts {
		counts[i] = h.bucket[i].Load()
		total += counts[i]
	}
	out = make([]time.Duration, len(qs))
	if total == 0 {
		return 0, out
	}
	seen := int64(0)
	qi := 0
	for i := 0; i < latBuckets && qi < len(qs); i++ {
		seen += counts[i]
		for qi < len(qs) && float64(seen) >= qs[qi]*float64(total) {
			out[qi] = time.Duration(uint64(1) << uint(i))
			qi++
		}
	}
	return total, out
}

// HoldSnapshot renders a bare histogram (no error counter) for a
// stats payload — used for lock hold times, where the histogram is
// the entire story.
func (h *LatencyHist) HoldSnapshot() map[string]any {
	total, q := h.Quantiles([]float64{0.5, 0.95, 0.99})
	meanUs := 0.0
	if total > 0 {
		meanUs = float64(h.sumNs.Load()) / float64(total) / 1e3
	}
	return map[string]any{
		"holds":   total,
		"mean_us": meanUs,
		"p50_us":  float64(q[0].Nanoseconds()) / 1e3,
		"p95_us":  float64(q[1].Nanoseconds()) / 1e3,
		"p99_us":  float64(q[2].Nanoseconds()) / 1e3,
	}
}

// EndpointMetrics aggregates one endpoint's counters and latencies.
// Route names the endpoint's canonical v1 route ("POST /v1/query");
// it is part of the stats payload so dashboards key on the HTTP
// surface, not on internal metric names, and survive route renames.
type EndpointMetrics struct {
	Route    string
	requests atomic.Int64
	errors   atomic.Int64
	lat      LatencyHist
}

// Snapshot renders the endpoint's stats for the stats payload.
func (m *EndpointMetrics) Snapshot() map[string]any {
	_, q := m.lat.Quantiles([]float64{0.5, 0.95, 0.99})
	n := m.requests.Load()
	meanUs := 0.0
	if n > 0 {
		meanUs = float64(m.lat.sumNs.Load()) / float64(n) / 1e3
	}
	return map[string]any{
		"route":    m.Route,
		"requests": n,
		"errors":   m.errors.Load(),
		"mean_us":  meanUs,
		"p50_us":   float64(q[0].Nanoseconds()) / 1e3,
		"p95_us":   float64(q[1].Nanoseconds()) / 1e3,
		"p99_us":   float64(q[2].Nanoseconds()) / 1e3,
	}
}

// Requests returns the request count so far.
func (m *EndpointMetrics) Requests() int64 { return m.requests.Load() }

// Errors returns the 4xx/5xx count so far.
func (m *EndpointMetrics) Errors() int64 { return m.errors.Load() }

// statusWriter captures the response code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Instrument wraps a handler with request counting and latency
// recording for m. The wrapper itself takes no locks.
func Instrument(m *EndpointMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		m.requests.Add(1)
		if sw.code >= 400 {
			m.errors.Add(1)
		}
		m.lat.Observe(time.Since(start))
	}
}
