package api

import (
	"testing"
	"time"
)

func TestParseTimeoutMS(t *testing.T) {
	const (
		def = 25 * time.Second
		max = 55 * time.Second
	)
	cases := []struct {
		name    string
		raw     string
		want    time.Duration
		wantErr bool
	}{
		{"empty means default", "", def, false},
		{"zero", "0", 0, false},
		{"plain value", "1500", 1500 * time.Millisecond, false},
		{"exactly max", "55000", max, false},
		{"above max clamps", "55001", max, false},
		{"negative", "-1", 0, true},
		{"very negative", "-9223372036854775808", 0, true},
		{"not a number", "nope", 0, true},
		{"trailing junk", "100x", 0, true},
		{"float", "1.5", 0, true},
		{"beyond int64", "9223372036854775808", 0, true},
		// The overflow trap: fits int64 as milliseconds but overflows
		// the nanosecond time.Duration representation. Must clamp to
		// max, not wrap negative and fire instantly.
		{"duration overflow clamps", "9223372036854775807", max, false},
		{"near overflow clamps", "922337203685477580", max, false},
	}
	for _, tc := range cases {
		got, err := ParseTimeoutMS(tc.raw, def, max)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: ParseTimeoutMS(%q) = %v, want error", tc.name, tc.raw, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: ParseTimeoutMS(%q): %v", tc.name, tc.raw, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: ParseTimeoutMS(%q) = %v, want %v", tc.name, tc.raw, got, tc.want)
		}
		if got < 0 {
			t.Errorf("%s: negative duration %v escaped", tc.name, got)
		}
	}
}
