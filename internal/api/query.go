package api

import (
	"net/http"
	"slices"
	"sync"

	"repro/internal/attr"
	"repro/internal/core"
)

// This file is the shared data-plane read path: resolve query terms
// against a published term table, Route over an immutable
// core.RoutingView, and render the JSON answer — with every buffer
// pooled, so the per-query path allocates nothing at steady state.
// The serving daemon and every router replica answer through these
// functions, which is what makes router answers byte-identical to the
// engine's by construction.

// QueryRequest is the POST /v1/query body (and one batch element).
type QueryRequest struct {
	Terms []string `json:"terms"`
}

// ClusterHit is one cluster's share of a query's results.
type ClusterHit struct {
	Cluster int     `json:"cluster"`
	Size    int     `json:"size"`
	Results int     `json:"results"`
	Recall  float64 `json:"recall"`
}

// QueryResponse is the answer to one routed query.
type QueryResponse struct {
	Total    int          `json:"total"`
	Clusters []ClusterHit `json:"clusters"`
}

// BatchRequest is the POST /v1/query/batch body.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchResponse is the answer to a batch, element-wise parallel to
// the request.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// Scratch bundles the reusable buffers of one in-flight query
// request; a pool recycles them across requests so the hot read path
// allocates only what the HTTP layer itself requires. A Scratch must
// not be shared by concurrent requests.
type Scratch struct {
	route core.RouteScratch
	ids   []attr.ID
	hits  []ClusterHit
}

var scratchPool = sync.Pool{
	New: func() any {
		// hits must start non-nil: an empty answer marshals as [].
		return &Scratch{hits: make([]ClusterHit, 0, 8)}
	},
}

// GetScratch borrows a scratch from the shared pool; return it with
// PutScratch once every QueryResponse aliasing it has been encoded.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a borrowed scratch to the pool.
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// emptyHits is the shared empty answer (non-nil so it marshals as
// []); it is only ever read.
var emptyHits = []ClusterHit{}

// resolve renders raw query terms into a canonical attribute set.
// Unknown terms cannot match anything (items only contain interned
// attributes), so any unknown term resolves to ok=false and the
// caller answers empty without routing.
func (sc *Scratch) resolve(terms map[string]attr.ID, raw []string) (q attr.Set, ok bool) {
	sc.ids = sc.ids[:0]
	for _, t := range raw {
		id, known := terms[t]
		if !known {
			return attr.Set{}, false
		}
		sc.ids = append(sc.ids, id)
	}
	slices.Sort(sc.ids)
	return attr.FromSorted(slices.Compact(sc.ids)), true
}

// answerResolved routes an already-resolved query (through the cache
// when one is supplied) and renders the cluster hits into sc.
func answerResolved(rv *core.RoutingView, cache *core.RouteCache, q attr.Set, sc *Scratch) QueryResponse {
	total, hits := rv.RouteCached(q, cache, &sc.route)
	sc.hits = sc.hits[:0]
	for _, h := range hits {
		sc.hits = append(sc.hits, ClusterHit{
			Cluster: int(h.Cluster),
			Size:    h.Size,
			Results: h.Results,
			Recall:  float64(h.Results) / float64(total),
		})
	}
	return QueryResponse{Total: total, Clusters: sc.hits}
}

// AnswerQuery evaluates terms against the view and returns the
// routing answer, consulting cache (which may be nil) for repeated
// queries against the same view. The response's Clusters slice
// aliases sc and is valid until sc's next use; callers that retain
// answers (the batch path) copy it out. Unknown terms yield the empty
// answer. The call is allocation-free at steady state.
func AnswerQuery(terms map[string]attr.ID, rv *core.RoutingView, cache *core.RouteCache, raw []string, sc *Scratch) QueryResponse {
	q, ok := sc.resolve(terms, raw)
	if !ok {
		sc.hits = sc.hits[:0]
		return QueryResponse{Clusters: sc.hits}
	}
	return answerResolved(rv, cache, q, sc)
}

// ServeQuery implements the POST /v1/query data-plane endpoint over
// one published (terms, view) snapshot: decode, validate, answer,
// encode. It returns the number of queries answered (0 when the
// request was rejected), for the caller's served counter.
func ServeQuery(w http.ResponseWriter, r *http.Request, terms map[string]attr.ID, rv *core.RoutingView, cache *core.RouteCache) int {
	var req QueryRequest
	if !DecodeStrict(w, r, "query", &req) {
		return 0
	}
	if len(req.Terms) == 0 {
		Error(w, http.StatusBadRequest, CodeEmptyQuery, "query with no terms")
		return 0
	}
	sc := GetScratch()
	resp := AnswerQuery(terms, rv, cache, req.Terms, sc)
	WriteJSON(w, http.StatusOK, resp)
	PutScratch(sc)
	return 1
}

// ServeQueryBatch implements POST /v1/query/batch: up to
// MaxBatchQueries queries answered from one (terms, view) snapshot,
// so the batch is internally consistent even while mutations land
// concurrently. Duplicate queries within a batch (same canonical
// attribute set, whatever the term order or repetition) are routed
// once and share the answer — legal precisely because the whole batch
// is served from one snapshot. It returns the number of queries
// answered.
func ServeQueryBatch(w http.ResponseWriter, r *http.Request, terms map[string]attr.ID, rv *core.RoutingView, cache *core.RouteCache) int {
	var req BatchRequest
	if !DecodeStrict(w, r, "batch", &req) {
		return 0
	}
	if len(req.Queries) == 0 {
		Error(w, http.StatusBadRequest, CodeEmptyBatch, "batch with no queries")
		return 0
	}
	if len(req.Queries) > MaxBatchQueries {
		Error(w, http.StatusRequestEntityTooLarge, CodeBatchTooLarge,
			"batch of %d queries over the %d limit", len(req.Queries), MaxBatchQueries)
		return 0
	}
	for i, q := range req.Queries {
		if len(q.Terms) == 0 {
			Error(w, http.StatusBadRequest, CodeEmptyQuery, "query %d with no terms", i)
			return 0
		}
	}
	sc := GetScratch()
	results := make([]QueryResponse, len(req.Queries))
	var seen map[string]int // canonical key -> index of first occurrence
	if len(req.Queries) > 1 {
		seen = make(map[string]int, len(req.Queries))
	}
	var kb []byte
	for i := range req.Queries {
		q, ok := sc.resolve(terms, req.Queries[i].Terms)
		if !ok {
			results[i] = QueryResponse{Clusters: emptyHits}
			continue
		}
		if seen != nil {
			kb = q.AppendKey(kb[:0])
			if j, dup := seen[string(kb)]; dup {
				results[i] = results[j]
				continue
			}
			seen[string(kb)] = i
		}
		resp := answerResolved(rv, cache, q, sc)
		resp.Clusters = append(make([]ClusterHit, 0, len(resp.Clusters)), resp.Clusters...)
		results[i] = resp
	}
	PutScratch(sc)
	WriteJSON(w, http.StatusOK, BatchResponse{Results: results})
	return len(req.Queries)
}

// CacheStatsMap renders a route cache's counters for a /v1/stats
// payload; a nil cache reports itself disabled.
func CacheStatsMap(c *core.RouteCache) map[string]any {
	if c == nil {
		return map[string]any{"enabled": false}
	}
	st := c.Stats()
	return map[string]any{
		"enabled":   true,
		"capacity":  st.Capacity,
		"hits":      st.Hits,
		"misses":    st.Misses,
		"evictions": st.Evictions,
		"bypasses":  st.Bypasses,
	}
}
