// Package cluster models the clustered overlay: the assignment of
// peers to clusters (with up to Cmax = |P| cluster slots, §2.1), and
// the θ cost function capturing how the cost of participating in a
// cluster grows with its size — linear when all peers in a cluster are
// fully connected, logarithmic for structured (DHT-like) intra-cluster
// overlays.
package cluster

import "math"

// Theta maps a cluster size to its per-member participation cost. It
// must be monotonically non-decreasing in size; θ(0) is never consulted.
type Theta struct {
	// Name identifies the function in reports.
	Name string
	// F computes the cost for a cluster of the given size (>= 1).
	F func(size int) float64
}

// LinearTheta models fully connected clusters (the paper's experimental
// setting): θ(n) = n.
func LinearTheta() Theta {
	return Theta{Name: "linear", F: func(n int) float64 { return float64(n) }}
}

// LogTheta models structured intra-cluster overlays: θ(n) = 1 + log2(n).
func LogTheta() Theta {
	return Theta{Name: "log", F: func(n int) float64 {
		if n <= 1 {
			return 1
		}
		return 1 + math.Log2(float64(n))
	}}
}

// SqrtTheta models partially meshed clusters: θ(n) = sqrt(n).
func SqrtTheta() Theta {
	return Theta{Name: "sqrt", F: func(n int) float64 { return math.Sqrt(float64(n)) }}
}

// ConstTheta models size-independent membership cost; with it the game
// degenerates (all peers want one big cluster), which the θ ablation
// demonstrates.
func ConstTheta() Theta {
	return Theta{Name: "const", F: func(int) float64 { return 1 }}
}
