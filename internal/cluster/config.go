package cluster

import (
	"fmt"
	"sort"
)

// CID identifies a cluster slot. The system has Cmax slots (Cmax = |P|
// in the paper); a slot with no members is an empty cluster available
// for new-cluster creation.
type CID int32

// None is the sentinel for "no cluster".
const None CID = -1

// Config is a complete cluster configuration: the strategy profile
// S = {s_1, ..., s_|P|} restricted to single-cluster strategies
// (§2.3). It supports O(1) moves, membership queries and size lookups.
//
// Peer entries are slots: a slot whose assignment is None holds no
// peer (it either never joined or has departed). AddSlot, Place and
// Unplace realize dynamic membership; Live counts the occupied slots.
// Every structural change bumps an internal version counter that cost
// engines use to detect configurations mutated behind their back.
type Config struct {
	assign  []CID   // peer slot -> cluster (None = unoccupied slot)
	members [][]int // cid -> member peer IDs (unordered)
	pos     []int   // peer -> index within members[assign[peer]] (-1 when unplaced)
	live    int     // number of slots with assign != None
	version int     // bumped on every membership mutation
}

// NewSingletons builds the configuration where each peer forms its own
// cluster (initial configuration (i) of §4.1).
func NewSingletons(numPeers int) *Config {
	assign := make([]CID, numPeers)
	for i := range assign {
		assign[i] = CID(i)
	}
	return FromAssignment(assign)
}

// FromAssignment builds a configuration from a peer->cluster mapping.
// Cluster IDs must lie in [0, len(assign)) or be None (an unoccupied
// slot); the number of cluster slots Cmax always equals the number of
// peer slots.
func FromAssignment(assign []CID) *Config {
	n := len(assign)
	c := &Config{
		assign:  append([]CID(nil), assign...),
		members: make([][]int, n),
		pos:     make([]int, n),
	}
	for p, cid := range c.assign {
		if cid == None {
			c.pos[p] = -1
			continue
		}
		if cid < 0 || int(cid) >= n {
			panic(fmt.Sprintf("cluster: peer %d assigned to invalid cluster %d", p, cid))
		}
		c.pos[p] = len(c.members[cid])
		c.members[cid] = append(c.members[cid], p)
		c.live++
	}
	return c
}

// NumPeers returns the number of peer slots (occupied or not).
func (c *Config) NumPeers() int { return len(c.assign) }

// Live returns the number of occupied peer slots: the live |P|.
func (c *Config) Live() int { return c.live }

// IsPlaced reports whether slot p currently holds a peer.
func (c *Config) IsPlaced(p int) bool { return c.assign[p] != None }

// MembershipVersion increments on every membership mutation (Move,
// AddSlot, Place, Unplace). Cost engines compare it against the value
// they last synchronized with to detect external mutation.
func (c *Config) MembershipVersion() int { return c.version }

// AddSlot appends one unoccupied peer slot — and, to preserve the
// Cmax = #slots invariant that guarantees a singleton cluster is
// always available, one empty cluster slot. It returns the new peer
// slot's ID.
func (c *Config) AddSlot() int {
	p := len(c.assign)
	c.assign = append(c.assign, None)
	c.pos = append(c.pos, -1)
	c.members = append(c.members, nil)
	c.version++
	return p
}

// Place puts the peer occupying slot p (which must be unplaced) into
// cluster cid.
func (c *Config) Place(p int, cid CID) {
	if c.assign[p] != None {
		panic(fmt.Sprintf("cluster: Place peer %d already in cluster %d", p, c.assign[p]))
	}
	if cid < 0 || int(cid) >= len(c.members) {
		panic(fmt.Sprintf("cluster: Place peer %d into invalid cluster %d", p, cid))
	}
	c.pos[p] = len(c.members[cid])
	c.members[cid] = append(c.members[cid], p)
	c.assign[p] = cid
	c.live++
	c.version++
}

// Unplace removes peer p from its cluster, leaving its slot
// unoccupied, and returns the cluster it left.
func (c *Config) Unplace(p int) CID {
	from := c.assign[p]
	if from == None {
		panic(fmt.Sprintf("cluster: Unplace peer %d is not placed", p))
	}
	m := c.members[from]
	i := c.pos[p]
	last := len(m) - 1
	m[i] = m[last]
	c.pos[m[i]] = i
	c.members[from] = m[:last]
	c.assign[p] = None
	c.pos[p] = -1
	c.live--
	c.version++
	return from
}

// Cmax returns the number of cluster slots (= |P|).
func (c *Config) Cmax() int { return len(c.members) }

// ClusterOf returns the cluster peer p belongs to.
func (c *Config) ClusterOf(p int) CID { return c.assign[p] }

// Size returns the number of members of cid.
func (c *Config) Size(cid CID) int { return len(c.members[cid]) }

// Members returns the member peer IDs of cid in ascending order.
func (c *Config) Members(cid CID) []int {
	out := append([]int(nil), c.members[cid]...)
	sort.Ints(out)
	return out
}

// Representative returns the cluster representative of cid: the member
// with the smallest peer ID (§3.2 notes representatives need not be
// stable across rounds; a deterministic choice keeps runs reproducible).
// It returns -1 for empty clusters.
func (c *Config) Representative(cid CID) int {
	rep := -1
	for _, p := range c.members[cid] {
		if rep < 0 || p < rep {
			rep = p
		}
	}
	return rep
}

// NonEmpty returns the IDs of non-empty clusters in ascending order.
func (c *Config) NonEmpty() []CID {
	return c.AppendNonEmpty(nil)
}

// AppendNonEmpty appends the IDs of non-empty clusters in ascending
// order to dst and returns the extended slice. Hot paths pass a reused
// scratch slice (dst[:0]) to stay allocation-free.
func (c *Config) AppendNonEmpty(dst []CID) []CID {
	for cid := range c.members {
		if len(c.members[cid]) > 0 {
			dst = append(dst, CID(cid))
		}
	}
	return dst
}

// MembersUnsorted returns the member peer IDs of cid in internal
// (arbitrary) order. The returned slice is shared with the Config and
// must not be modified or retained across Moves; use Members for a
// stable sorted copy.
func (c *Config) MembersUnsorted(cid CID) []int { return c.members[cid] }

// NumNonEmpty returns the number of non-empty clusters.
func (c *Config) NumNonEmpty() int {
	n := 0
	for cid := range c.members {
		if len(c.members[cid]) > 0 {
			n++
		}
	}
	return n
}

// EmptyCluster returns the lowest-numbered empty cluster slot, or
// (None, false) if every slot is occupied.
func (c *Config) EmptyCluster() (CID, bool) {
	for cid := range c.members {
		if len(c.members[cid]) == 0 {
			return CID(cid), true
		}
	}
	return None, false
}

// Move relocates peer p to cluster to, returning its previous cluster.
// Moving a peer to its current cluster is a no-op. p must occupy its
// slot (use Place for unoccupied slots).
func (c *Config) Move(p int, to CID) CID {
	from := c.assign[p]
	if from == to {
		return from
	}
	if from == None {
		panic(fmt.Sprintf("cluster: move of unplaced peer %d", p))
	}
	if to < 0 || int(to) >= len(c.members) {
		panic(fmt.Sprintf("cluster: move to invalid cluster %d", to))
	}
	c.version++
	// Remove p from its old cluster by swapping with the last member.
	m := c.members[from]
	i := c.pos[p]
	last := len(m) - 1
	m[i] = m[last]
	c.pos[m[i]] = i
	c.members[from] = m[:last]
	// Append to the new cluster.
	c.pos[p] = len(c.members[to])
	c.members[to] = append(c.members[to], p)
	c.assign[p] = to
	return from
}

// Clone deep-copies the configuration.
func (c *Config) Clone() *Config {
	cp := &Config{
		assign:  append([]CID(nil), c.assign...),
		members: make([][]int, len(c.members)),
		pos:     append([]int(nil), c.pos...),
		live:    c.live,
		version: c.version,
	}
	for i, m := range c.members {
		if len(m) > 0 {
			cp.members[i] = append([]int(nil), m...)
		}
	}
	return cp
}

// Assignment returns a copy of the peer->cluster mapping.
func (c *Config) Assignment() []CID {
	return append([]CID(nil), c.assign...)
}

// Hash returns an order-sensitive FNV-1a hash of the assignment,
// used to detect cycles in best-response dynamics.
func (c *Config) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, cid := range c.assign {
		v := uint32(cid)
		for s := 0; s < 32; s += 8 {
			h ^= uint64((v >> s) & 0xff)
			h *= prime
		}
	}
	return h
}

// CanonicalHash hashes the *partition* rather than the labeled
// assignment: two configurations that group peers identically but use
// different cluster IDs hash equally. Cluster labels are irrelevant to
// all costs, so cycle detection uses this form.
func (c *Config) CanonicalHash() uint64 {
	relabel := make(map[CID]CID, len(c.members))
	canon := make([]CID, len(c.assign))
	next := CID(0)
	for p, cid := range c.assign {
		if cid == None {
			canon[p] = None
			continue
		}
		nc, ok := relabel[cid]
		if !ok {
			nc = next
			relabel[cid] = nc
			next++
		}
		canon[p] = nc
	}
	tmp := Config{assign: canon}
	return tmp.Hash()
}

// Sizes returns the sorted sizes of all non-empty clusters.
func (c *Config) Sizes() []int {
	var out []int
	for _, m := range c.members {
		if len(m) > 0 {
			out = append(out, len(m))
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks internal consistency; property tests drive random
// move sequences through it.
func (c *Config) Validate() error {
	if len(c.assign) != len(c.pos) || len(c.assign) != len(c.members) {
		return fmt.Errorf("cluster: inconsistent lengths")
	}
	seen := 0
	for cid, m := range c.members {
		for i, p := range m {
			if p < 0 || p >= len(c.assign) {
				return fmt.Errorf("cluster %d has invalid member %d", cid, p)
			}
			if c.assign[p] != CID(cid) {
				return fmt.Errorf("peer %d in members of %d but assigned to %d", p, cid, c.assign[p])
			}
			if c.pos[p] != i {
				return fmt.Errorf("peer %d pos %d != index %d", p, c.pos[p], i)
			}
			seen++
		}
	}
	for p, cid := range c.assign {
		if cid == None && c.pos[p] != -1 {
			return fmt.Errorf("unplaced peer %d has pos %d, want -1", p, c.pos[p])
		}
	}
	if seen != c.live {
		return fmt.Errorf("members cover %d peers, want live count %d", seen, c.live)
	}
	return nil
}
