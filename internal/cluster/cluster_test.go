package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestThetaMonotonicity(t *testing.T) {
	for _, th := range []Theta{LinearTheta(), LogTheta(), SqrtTheta(), ConstTheta()} {
		prev := th.F(1)
		if prev <= 0 {
			t.Errorf("%s: theta(1)=%g not positive", th.Name, prev)
		}
		for n := 2; n <= 300; n++ {
			v := th.F(n)
			if v < prev {
				t.Errorf("%s: theta not monotone at %d: %g < %g", th.Name, n, v, prev)
				break
			}
			prev = v
		}
	}
}

func TestThetaLinearValues(t *testing.T) {
	th := LinearTheta()
	if th.F(20) != 20 {
		t.Fatalf("linear theta(20)=%g", th.F(20))
	}
}

func TestNewSingletons(t *testing.T) {
	c := NewSingletons(5)
	for p := 0; p < 5; p++ {
		if c.ClusterOf(p) != CID(p) {
			t.Fatalf("peer %d in cluster %d", p, c.ClusterOf(p))
		}
		if c.Size(CID(p)) != 1 {
			t.Fatalf("cluster %d size %d", p, c.Size(CID(p)))
		}
	}
	if c.NumNonEmpty() != 5 {
		t.Fatal("NumNonEmpty")
	}
	if _, ok := c.EmptyCluster(); ok {
		t.Fatal("singletons have no empty slot")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromAssignmentAndMove(t *testing.T) {
	c := FromAssignment([]CID{0, 0, 1, 1})
	if c.Size(0) != 2 || c.Size(1) != 2 {
		t.Fatal("sizes")
	}
	from := c.Move(2, 0)
	if from != 1 {
		t.Fatalf("Move returned %d", from)
	}
	if c.Size(0) != 3 || c.Size(1) != 1 || c.ClusterOf(2) != 0 {
		t.Fatal("post-move state")
	}
	// No-op move.
	if got := c.Move(2, 0); got != 0 {
		t.Fatalf("no-op move returned %d", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMembersSortedAndRepresentative(t *testing.T) {
	c := FromAssignment([]CID{1, 1, 1, 0})
	m := c.Members(1)
	if len(m) != 3 || m[0] != 0 || m[1] != 1 || m[2] != 2 {
		t.Fatalf("members %v", m)
	}
	if c.Representative(1) != 0 {
		t.Fatal("representative")
	}
	if c.Representative(2) != -1 {
		t.Fatal("empty representative")
	}
}

func TestEmptyClusterDiscovery(t *testing.T) {
	c := FromAssignment([]CID{0, 0, 0})
	cid, ok := c.EmptyCluster()
	if !ok || cid != 1 {
		t.Fatalf("EmptyCluster = %d, %v", cid, ok)
	}
	c.Move(1, 1)
	cid, ok = c.EmptyCluster()
	if !ok || cid != 2 {
		t.Fatalf("after move: %d, %v", cid, ok)
	}
}

func TestNonEmptyAndSizes(t *testing.T) {
	c := FromAssignment([]CID{3, 3, 0, 0, 0})
	ne := c.NonEmpty()
	if len(ne) != 2 || ne[0] != 0 || ne[1] != 3 {
		t.Fatalf("NonEmpty %v", ne)
	}
	sz := c.Sizes()
	if len(sz) != 2 || sz[0] != 2 || sz[1] != 3 {
		t.Fatalf("Sizes %v", sz)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := FromAssignment([]CID{0, 1, 2})
	cp := c.Clone()
	cp.Move(0, 2)
	if c.ClusterOf(0) != 0 {
		t.Fatal("clone mutation leaked")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHashesDistinguishPartitions(t *testing.T) {
	a := FromAssignment([]CID{0, 0, 1})
	b := FromAssignment([]CID{0, 1, 1})
	if a.Hash() == b.Hash() {
		t.Fatal("different assignments share Hash")
	}
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Fatal("different partitions share CanonicalHash")
	}
}

func TestCanonicalHashIgnoresLabels(t *testing.T) {
	a := FromAssignment([]CID{0, 0, 1, 2})
	b := FromAssignment([]CID{3, 3, 0, 1})
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("relabeled partition hashes differ")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("labeled hashes should differ")
	}
}

func TestValidateUnderRandomMoves(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(20)
		c := NewSingletons(n)
		for op := 0; op < 60; op++ {
			c.Move(rng.Intn(n), CID(rng.Intn(n)))
			if err := c.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		// Every peer accounted for exactly once.
		total := 0
		for _, cid := range c.NonEmpty() {
			total += c.Size(cid)
		}
		return total == n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFromAssignmentValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid cid")
		}
	}()
	FromAssignment([]CID{0, 5})
}

func TestMoveValidation(t *testing.T) {
	c := NewSingletons(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid target")
		}
	}()
	c.Move(0, 99)
}
