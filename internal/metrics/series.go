package metrics

import (
	"fmt"
	"strings"
)

// Series is a figure-style data set: one x axis and several named y
// columns (e.g. "selfish" and "altruistic").
type Series struct {
	Title  string
	XLabel string
	X      []float64
	names  []string
	ys     map[string][]float64
}

// NewSeries creates an empty series with the given title and x label.
func NewSeries(title, xlabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, ys: map[string][]float64{}}
}

// AddColumn registers a named y column. Columns render in registration
// order.
func (s *Series) AddColumn(name string) {
	if _, dup := s.ys[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate column %q", name))
	}
	s.names = append(s.names, name)
	s.ys[name] = nil
}

// AddPoint appends an x value along with one y per registered column
// (in registration order).
func (s *Series) AddPoint(x float64, ys ...float64) {
	if len(ys) != len(s.names) {
		panic(fmt.Sprintf("metrics: point has %d ys, series %q has %d columns",
			len(ys), s.Title, len(s.names)))
	}
	s.X = append(s.X, x)
	for i, name := range s.names {
		s.ys[name] = append(s.ys[name], ys[i])
	}
}

// Column returns the y values of a column.
func (s *Series) Column(name string) []float64 { return s.ys[name] }

// Columns returns the column names in order.
func (s *Series) Columns() []string { return append([]string(nil), s.names...) }

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Render returns the series as an aligned text table: x first, then
// one column per name.
func (s *Series) Render() string {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.names...)...)
	for i, x := range s.X {
		row := []string{F(x, 3)}
		for _, name := range s.names {
			row = append(row, F(s.ys[name][i], 4))
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// CSV exports the series.
func (s *Series) CSV() string {
	t := NewTable(s.Title, append([]string{s.XLabel}, s.names...)...)
	for i, x := range s.X {
		row := []string{F(x, 4)}
		for _, name := range s.names {
			row = append(row, F(s.ys[name][i], 6))
		}
		t.AddRow(row...)
	}
	return t.CSV()
}

// Plot renders a crude ASCII chart of the series (one mark per column)
// for quick visual inspection in the terminal; y is auto-scaled.
func (s *Series) Plot(width, height int) string {
	if len(s.X) == 0 || width < 8 || height < 2 {
		return ""
	}
	minY, maxY := s.ys[s.names[0]][0], s.ys[s.names[0]][0]
	for _, name := range s.names {
		for _, y := range s.ys[name] {
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@"
	minX, maxX := s.X[0], s.X[len(s.X)-1]
	if maxX == minX {
		maxX = minX + 1
	}
	for ci, name := range s.names {
		mark := marks[ci%len(marks)]
		for i, x := range s.X {
			col := int(float64(width-1) * (x - minX) / (maxX - minX))
			row := height - 1 - int(float64(height-1)*(s.ys[name][i]-minY)/(maxY-minY))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: %.3f..%.3f)\n", s.Title, minY, maxY)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	for ci, name := range s.names {
		fmt.Fprintf(&b, "  %c = %s\n", marks[ci%len(marks)], name)
	}
	return b.String()
}
