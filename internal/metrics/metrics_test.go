package metrics

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "col1", "longer-column")
	tb.AddRow("a", "b")
	tb.AddRow("value", "x")
	out := tb.Render()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "col1") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: both data rows start "a" / "value" padded to equal width.
	if len(lines[3]) == 0 || len(lines[4]) == 0 {
		t.Fatal("empty rows")
	}
}

func TestTableRowValidation(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short row")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("1,5", "2")
	csv := tb.CSV()
	want := "a,b\n1;5,2\n"
	if csv != want {
		t.Fatalf("CSV=%q want %q", csv, want)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("costs", "round")
	s.AddColumn("selfish")
	s.AddColumn("altruistic")
	s.AddPoint(0, 0.9, 0.8)
	s.AddPoint(1, 0.5, 0.6)
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	if got := s.Column("selfish"); len(got) != 2 || got[1] != 0.5 {
		t.Fatalf("Column %v", got)
	}
	cols := s.Columns()
	if len(cols) != 2 || cols[0] != "selfish" {
		t.Fatalf("Columns %v", cols)
	}
	out := s.Render()
	if !strings.Contains(out, "selfish") || !strings.Contains(out, "0.5000") {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(s.CSV(), "round,selfish,altruistic") {
		t.Fatal("CSV header")
	}
}

func TestSeriesValidation(t *testing.T) {
	s := NewSeries("x", "t")
	s.AddColumn("a")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on wrong arity")
			}
		}()
		s.AddPoint(0, 1, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on duplicate column")
			}
		}()
		s.AddColumn("a")
	}()
}

func TestSeriesPlot(t *testing.T) {
	s := NewSeries("p", "x")
	s.AddColumn("y")
	for i := 0; i <= 10; i++ {
		s.AddPoint(float64(i), float64(i*i))
	}
	plot := s.Plot(40, 10)
	if !strings.Contains(plot, "*") || !strings.Contains(plot, "y") {
		t.Fatalf("plot:\n%s", plot)
	}
	if s2 := NewSeries("e", "x"); s2.Plot(40, 10) != "" {
		t.Fatal("empty series should not plot")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatal("F")
	}
	if I(42) != "42" {
		t.Fatal("I")
	}
}
