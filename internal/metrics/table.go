// Package metrics renders the harness output: ASCII tables matching
// the paper's tables and aligned numeric series matching its figures,
// with CSV export for external plotting.
package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it panics when the cell count does not match
// the header count (catching driver bugs at the source).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("metrics: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Headers)))
	}
	t.Rows = append(t.Rows, append([]string(nil), cells...))
}

// Render returns the table as aligned ASCII text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV returns the table in comma-separated form (quotes are not needed
// for our numeric content; commas in cells are replaced by semicolons).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }
