package asyncnet

import (
	"bytes"
	"testing"
)

// FuzzMessageCodec feeds the strict decoder arbitrary bytes. The
// decoder must never panic; any input it accepts must survive a
// bit-exact round trip — re-encoding the decoded message decodes
// cleanly and re-encodes to the same bytes. (Byte-identity with the
// original input is not required: varints admit non-minimal encodings
// the decoder tolerates. Comparing encodings rather than Messages
// keeps NaN gains, which are bit-preserved but not DeepEqual,
// comparable.)
func FuzzMessageCodec(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(AppendMessage(nil, m))
	}
	f.Add([]byte{'A', 'N', WireVersion, byte(KindAnnounce)})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc := AppendMessage(nil, m1)
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoding of accepted input failed to decode: %v", err)
		}
		if re := AppendMessage(nil, m2); !bytes.Equal(enc, re) {
			t.Fatalf("round trip not bit-stable:\n first %x\nsecond %x", enc, re)
		}
	})
}
