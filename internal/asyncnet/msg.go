package asyncnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file is the wire format of the runtime's messages, following the
// replog/viewwire discipline: a versioned binary frame with a strict
// decoder — truncations, hostile counts, out-of-range values and
// trailing bytes are errors, never panics or unbounded allocations.
// The transport round-trips every message through this codec before
// delivery, so the encoding is on the hot path of every simulated
// exchange, not test-only decoration.
//
//	magic "AN" | format version (1) | kind | fixed field sequence
//
// Every field is encoded unconditionally in a fixed order regardless of
// kind, which keeps the frame trivially canonical for the fields it
// carries: signed fields as zigzag varints, unsigned as uvarints,
// floats as 8 little-endian bytes of their IEEE bits, bools as a single
// 0/1 byte (the decoder rejects anything else), slices as a uvarint
// length followed by the elements.

// MsgKind discriminates runtime messages.
type MsgKind byte

const (
	// KindStart kicks off the coordinator; scheduler-local, never on
	// the transport.
	KindStart MsgKind = 1
	// KindTimer is the coordinator's round deadline; scheduler-local.
	KindTimer MsgKind = 2
	// KindBaseline tells a representative a new period began and the
	// drift baselines were snapshotted.
	KindBaseline MsgKind = 3
	// KindRoundStart opens a round: it names the round's
	// representatives and the empty slots at round start.
	KindRoundStart MsgKind = 4
	// KindAnnounce is a representative's phase-1 broadcast — its
	// cluster's best relocation request, or a bare cid announcement
	// when HasRequest is false.
	KindAnnounce MsgKind = 5
	// KindGrant submits a self-granted relocation for application.
	KindGrant MsgKind = 6
	// KindGrantNotify informs the target cluster's representative of a
	// granted move (coordination traffic; carries no state).
	KindGrantNotify MsgKind = 7
	// KindRoundDone reports a representative's round completion.
	KindRoundDone MsgKind = 8
)

const kindMax = KindRoundDone

// Req is a relocation request as carried on the wire. It mirrors
// protocol.Request plus the size of the requesting cluster at decide
// time, which the decentralized grant simulation needs to track slots
// emptied mid-round.
type Req struct {
	Peer     int32
	From, To int32
	Gain     float64
	// NewCluster marks a request for an empty slot; To is -1 until the
	// grant phase resolves it.
	NewCluster bool
	// Gen is Peer's slot generation at decide time (staleness guard).
	Gen uint32
	// FromSize is the size of the From cluster at decide time.
	FromSize int32
}

// Message is one runtime message.
type Message struct {
	Kind     MsgKind
	From, To int32 // actor IDs (0 = coordinator, cid+1 = representative)
	Round    uint32

	// HasRequest and Req are meaningful for KindAnnounce and KindGrant.
	HasRequest bool
	Req        Req

	// Reps and Empties are meaningful for KindRoundStart: the cluster
	// IDs of the round's representatives and the empty slots at round
	// start, both ascending.
	Reps    []int32
	Empties []int32

	// HadRequest and Granted are meaningful for KindRoundDone.
	HadRequest bool
	Granted    bool
}

// WireVersion is the framing version; the decoder rejects others.
const WireVersion = 1

var msgMagic = [2]byte{'A', 'N'}

// maxSlice bounds the Reps/Empties lengths the decoder accepts.
const maxSlice = 1 << 20

// AppendMessage encodes m onto dst.
func AppendMessage(dst []byte, m Message) []byte {
	dst = append(dst, msgMagic[0], msgMagic[1], WireVersion, byte(m.Kind))
	dst = binary.AppendVarint(dst, int64(m.From))
	dst = binary.AppendVarint(dst, int64(m.To))
	dst = binary.AppendUvarint(dst, uint64(m.Round))
	dst = appendBool(dst, m.HasRequest)
	dst = binary.AppendVarint(dst, int64(m.Req.Peer))
	dst = binary.AppendVarint(dst, int64(m.Req.From))
	dst = binary.AppendVarint(dst, int64(m.Req.To))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Req.Gain))
	dst = appendBool(dst, m.Req.NewCluster)
	dst = binary.AppendUvarint(dst, uint64(m.Req.Gen))
	dst = binary.AppendVarint(dst, int64(m.Req.FromSize))
	dst = binary.AppendUvarint(dst, uint64(len(m.Reps)))
	for _, c := range m.Reps {
		dst = binary.AppendVarint(dst, int64(c))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Empties)))
	for _, c := range m.Empties {
		dst = binary.AppendVarint(dst, int64(c))
	}
	dst = appendBool(dst, m.HadRequest)
	dst = appendBool(dst, m.Granted)
	return dst
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

var errMsgTruncated = errors.New("asyncnet: truncated message")

type msgReader struct {
	data []byte
	pos  int
}

func (r *msgReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errMsgTruncated
	}
	r.pos += n
	return v, nil
}

func (r *msgReader) int32() (int32, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, errMsgTruncated
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("asyncnet: varint %d outside int32", v)
	}
	r.pos += n
	return int32(v), nil
}

func (r *msgReader) uint32() (uint32, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 {
		return 0, fmt.Errorf("asyncnet: uvarint %d outside uint32", v)
	}
	return uint32(v), nil
}

func (r *msgReader) float64() (float64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, errMsgTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, nil
}

func (r *msgReader) bool() (bool, error) {
	if r.pos >= len(r.data) {
		return false, errMsgTruncated
	}
	b := r.data[r.pos]
	if b > 1 {
		return false, fmt.Errorf("asyncnet: bool byte %d", b)
	}
	r.pos++
	return b == 1, nil
}

func (r *msgReader) cidSlice() ([]int32, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxSlice {
		return nil, fmt.Errorf("asyncnet: slice length %d exceeds limit", n)
	}
	// Every element occupies at least one encoded byte.
	if rem := len(r.data) - r.pos; n > uint64(rem) {
		return nil, fmt.Errorf("asyncnet: slice length %d exceeds remaining input", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int32, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := r.int32()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// DecodeMessage parses exactly one message; trailing bytes are an
// error.
func DecodeMessage(data []byte) (Message, error) {
	r := &msgReader{data: data}
	if len(data) < 4 {
		return Message{}, errMsgTruncated
	}
	if data[0] != msgMagic[0] || data[1] != msgMagic[1] {
		return Message{}, fmt.Errorf("asyncnet: bad magic %q", data[:2])
	}
	if data[2] != WireVersion {
		return Message{}, fmt.Errorf("asyncnet: unsupported wire version %d (speaking %d)", data[2], WireVersion)
	}
	m := Message{Kind: MsgKind(data[3])}
	if m.Kind == 0 || m.Kind > kindMax {
		return Message{}, fmt.Errorf("asyncnet: unknown message kind %d", data[3])
	}
	r.pos = 4
	var err error
	if m.From, err = r.int32(); err != nil {
		return Message{}, err
	}
	if m.To, err = r.int32(); err != nil {
		return Message{}, err
	}
	if m.Round, err = r.uint32(); err != nil {
		return Message{}, err
	}
	if m.HasRequest, err = r.bool(); err != nil {
		return Message{}, err
	}
	if m.Req.Peer, err = r.int32(); err != nil {
		return Message{}, err
	}
	if m.Req.From, err = r.int32(); err != nil {
		return Message{}, err
	}
	if m.Req.To, err = r.int32(); err != nil {
		return Message{}, err
	}
	if m.Req.Gain, err = r.float64(); err != nil {
		return Message{}, err
	}
	if m.Req.NewCluster, err = r.bool(); err != nil {
		return Message{}, err
	}
	if m.Req.Gen, err = r.uint32(); err != nil {
		return Message{}, err
	}
	if m.Req.FromSize, err = r.int32(); err != nil {
		return Message{}, err
	}
	if m.Reps, err = r.cidSlice(); err != nil {
		return Message{}, err
	}
	if m.Empties, err = r.cidSlice(); err != nil {
		return Message{}, err
	}
	if m.HadRequest, err = r.bool(); err != nil {
		return Message{}, err
	}
	if m.Granted, err = r.bool(); err != nil {
		return Message{}, err
	}
	if r.pos != len(data) {
		return Message{}, fmt.Errorf("asyncnet: %d trailing bytes after message", len(data)-r.pos)
	}
	return m, nil
}
