package asyncnet

import (
	"sync"

	"repro/internal/cluster"
)

// coordinator opens rounds, collects round-done reports and grant
// submissions, applies each round's grants through the world at round
// close, and decides termination. It stands in for the "all
// representatives know the round ended" agreement a fully
// decentralized deployment would reach by flooding; keeping it an
// actor on the same faulty transport preserves the message-passing
// discipline while keeping round bookkeeping in one mailbox.
type coordinator struct {
	n *Net

	round        uint32
	expected     int
	doneSeen     int
	requestsSeen int
	grants       []Req
	// quiet counts consecutive rounds with no requests and no grants;
	// under message loss a fully-complete quiescent round may never be
	// observed, so QuiescentRounds of silence also terminate.
	quiet int

	rounds        int
	requests      int
	granted       int
	timeoutRounds int
	converged     bool

	finished   bool
	finishOnce sync.Once
	doneCh     chan struct{}
}

func newCoordinator(n *Net) *coordinator {
	return &coordinator{n: n, doneCh: make(chan struct{})}
}

func (c *coordinator) handle(m Message) {
	if c.finished {
		return
	}
	switch m.Kind {
	case KindStart:
		c.n.world.beginPeriod()
		c.startRound(1)
	case KindGrant:
		if m.Round != c.round {
			c.n.stale.Add(1)
			return
		}
		c.grants = append(c.grants, m.Req)
	case KindRoundDone:
		if m.Round != c.round {
			c.n.stale.Add(1)
			return
		}
		c.doneSeen++
		if m.HadRequest {
			c.requestsSeen++
		}
		if c.doneSeen >= c.expected {
			c.closeRound(true)
		}
	case KindTimer:
		if m.Round == c.round {
			c.closeRound(false)
		}
	default:
		c.n.stale.Add(1)
	}
}

// startRound opens round r: snapshot the round's representatives and
// empty slots, make sure every representative actor exists, and send
// the round-start fan-out with a deadline timer.
func (c *coordinator) startRound(r uint32) {
	c.round = r
	c.rounds++
	reps, empties := c.n.world.roundInfo()
	if len(reps) == 0 {
		// Empty network: a round with no representatives issues no
		// requests, which is the convergence condition.
		c.converged = true
		c.finish()
		return
	}
	c.expected = len(reps)
	c.doneSeen = 0
	c.requestsSeen = 0
	c.grants = c.grants[:0]

	repIDs := make([]int32, len(reps))
	emptyIDs := make([]int32, len(empties))
	for i, cid := range reps {
		repIDs[i] = int32(cid)
		c.n.ensureRep(cid)
	}
	for i, cid := range empties {
		emptyIDs[i] = int32(cid)
	}
	for _, cid := range reps {
		c.n.control.Add(1)
		c.n.tr.send(coordID, actorID(cid)+1, Message{
			Kind: KindRoundStart, Round: r, Reps: repIDs, Empties: emptyIDs,
		})
	}
	// The deadline timer bypasses the transport: a coordinator's clock
	// cannot be dropped or delayed, which is what guarantees liveness
	// under arbitrary message loss.
	c.n.sched.deliverAfter(coordID, Message{Kind: KindTimer, Round: r}, c.n.opts.RoundTimeout)
}

// closeRound applies the round's grants and decides whether to
// terminate. complete reports whether every representative checked in
// before the deadline.
func (c *coordinator) closeRound(complete bool) {
	granted, msgs := c.n.world.serveRound(c.grants)
	c.n.protoMsgs.Add(int64(msgs))
	c.granted += granted
	c.requests += c.requestsSeen
	if !complete {
		c.timeoutRounds++
	}
	if c.requestsSeen == 0 && granted == 0 {
		c.quiet++
	} else {
		c.quiet = 0
	}
	switch {
	case complete && c.requestsSeen == 0:
		// The oracle's stop condition: a fully observed round with no
		// relocation requests.
		c.converged = true
		c.finish()
	case c.quiet >= c.n.opts.QuiescentRounds:
		c.converged = true
		c.finish()
	case int(c.round) >= c.n.opts.MaxRounds:
		c.finish()
	default:
		c.startRound(c.round + 1)
	}
}

func (c *coordinator) finish() {
	c.finished = true
	c.finishOnce.Do(func() { close(c.doneCh) })
}

// ensureRep creates and registers the representative actor for cid if
// it does not exist yet, sending it the period-start baseline message.
// Only the coordinator calls this, so the map needs no lock.
func (n *Net) ensureRep(cid cluster.CID) *rep {
	if r, ok := n.reps[cid]; ok {
		return r
	}
	ev := n.world.eng.NewEvaluator()
	r := &rep{n: n, id: actorID(cid) + 1, cid: cid, ev: ev}
	n.reps[cid] = r
	n.sched.register(r.id, r)
	n.control.Add(1)
	n.tr.send(coordID, r.id, Message{Kind: KindBaseline, Round: 0})
	return r
}
