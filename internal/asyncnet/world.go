package asyncnet

import (
	"math"
	"slices"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
)

// world guards the shared cost engine. It is deliberately not an
// actor: representatives take the read lock for their phase-1 decide
// scans (evaluators over a frozen engine are concurrent-read safe when
// unpruned), and the coordinator takes the write lock to apply a
// round's granted moves. The grant service replicates
// protocol.Runner's phase 2 exactly — same sort order, same staleness
// checks, same cycle-avoiding lock rule, same empty-slot resolution —
// which is what makes the zero-fault runs byte-identical to the
// synchronous oracle.
type world struct {
	mu  sync.RWMutex
	eng *core.Engine

	// baseline/baselineGen mirror protocol.Runner.BeginPeriod: each
	// peer's individual cost at period start, guarded by the slot join
	// generation so reused slots never inherit a departed peer's
	// baseline.
	baseline    []float64
	baselineGen []uint32

	// Per-round grant-phase lock tables, cleared each round.
	joinLocked  []bool
	leaveLocked []bool
}

func newWorld(eng *core.Engine) *world { return &world{eng: eng} }

// beginPeriod snapshots the drift baselines (see Runner.BeginPeriod).
func (w *world) beginPeriod() {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.eng.NumSlots()
	w.baseline = make([]float64, n)
	w.baselineGen = make([]uint32, n)
	cfg := w.eng.Config()
	for p := 0; p < n; p++ {
		w.baselineGen[p] = w.eng.SlotGeneration(p)
		if !w.eng.IsLive(p) {
			w.baseline[p] = math.NaN()
			continue
		}
		w.baseline[p] = w.eng.PeerCost(p, cfg.ClusterOf(p))
	}
}

// roundInfo returns the non-empty clusters (ascending) and the empty
// slots (ascending) of the current configuration.
func (w *world) roundInfo() (reps, empties []cluster.CID) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	cfg := w.eng.Config()
	reps = cfg.AppendNonEmpty(nil)
	for c := 0; c < cfg.Cmax(); c++ {
		if cfg.Size(cluster.CID(c)) == 0 {
			empties = append(empties, cluster.CID(c))
		}
	}
	return reps, empties
}

// decideCluster runs the phase-1 scan for cluster c's representative:
// every member decides under the period baseline rules and the best
// request is selected under the total (gain desc, peer asc) order —
// the exact computation of Runner.decideCluster. It returns the
// cluster's request (ok=false when no member clears epsilon) and the
// gain-report message count (one per non-representative member).
func (w *world) decideCluster(es core.EvalStrategy, ev *core.Evaluator, c cluster.CID, epsilon float64, allowNew bool) (req Req, ok bool, gainMsgs int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	members := w.eng.Config().MembersUnsorted(c)
	bestGain := math.Inf(-1)
	bestPeer := 0
	for _, p := range members {
		baseline := math.NaN()
		if p < len(w.baseline) && w.eng.SlotGeneration(p) == w.baselineGen[p] {
			baseline = w.baseline[p]
		}
		d := es.DecideEval(ev, p, baseline, allowNew)
		if !d.Move || d.Gain <= epsilon {
			continue
		}
		if d.Gain > bestGain || (d.Gain == bestGain && d.Peer < bestPeer) {
			bestGain, bestPeer = d.Gain, d.Peer
			req = Req{
				Peer:       int32(d.Peer),
				From:       int32(d.From),
				To:         int32(d.To),
				Gain:       d.Gain,
				NewCluster: d.NewCluster,
				Gen:        w.eng.SlotGeneration(d.Peer),
				FromSize:   int32(len(members)),
			}
			ok = true
		}
	}
	return req, ok, len(members) - 1
}

// sortReqs orders requests for the grant phase exactly like
// protocol.sortRequests: decreasing gain, ties by peer ID.
func sortReqs(reqs []Req) {
	slices.SortFunc(reqs, func(a, b Req) int {
		switch {
		case a.Gain > b.Gain:
			return -1
		case a.Gain < b.Gain:
			return 1
		}
		return int(a.Peer) - int(b.Peer)
	})
}

// serveRound applies the round's submitted grants under the
// cycle-avoiding lock rule, replicating Runner.serve: requests are
// sorted (gain desc, peer asc), staled requests are dropped, a
// NewCluster request resolves the lowest-index empty slot at service
// time, and each granted move costs two coordination messages and
// locks both ends for the rest of the round.
func (w *world) serveRound(grants []Req) (granted, protoMsgs int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	sortReqs(grants)
	cmax := w.eng.Config().Cmax()
	if len(w.joinLocked) < cmax {
		w.joinLocked = make([]bool, cmax)
		w.leaveLocked = make([]bool, cmax)
	}
	clear(w.joinLocked)
	clear(w.leaveLocked)
	for _, req := range grants {
		p := int(req.Peer)
		from := cluster.CID(req.From)
		if p >= w.eng.NumSlots() || !w.eng.IsLive(p) ||
			w.eng.SlotGeneration(p) != req.Gen ||
			w.eng.Config().ClusterOf(p) != from {
			continue
		}
		to := cluster.CID(req.To)
		if req.NewCluster {
			slot, ok := w.eng.Config().EmptyCluster()
			if !ok {
				continue
			}
			to = slot
		}
		if w.leaveLocked[from] || w.joinLocked[to] {
			continue
		}
		protoMsgs += 2
		w.eng.Move(p, to)
		w.joinLocked[from] = true
		w.leaveLocked[to] = true
		granted++
	}
	return granted, protoMsgs
}

// costs reads the normalized global costs and the non-empty cluster
// count.
func (w *world) costs() (scost, wcost float64, clusters int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.eng.SCostNormalized(), w.eng.WCostNormalized(), w.eng.Config().NumNonEmpty()
}
