package asyncnet

import (
	"repro/internal/cluster"
	"repro/internal/core"
)

// rep is one cluster representative: a mailbox-driven actor that runs
// the phase-1 decide scan for its own members, broadcasts its best
// request (or a bare announcement) to every other representative, and
// — once it has heard from all of them or the round moves on — decides
// the fate of its OWN request by simulating the grant phase locally
// over the collected view. Each cluster submits at most one request
// per round, so a representative only ever needs to resolve its own;
// with full views the simulations at every representative agree with
// the synchronous serve order exactly, and with partial views (drops,
// stragglers) a wrong self-grant is caught by the world's authoritative
// lock check while a missed grant simply re-arises next round.
type rep struct {
	n   *Net
	id  actorID
	cid cluster.CID
	ev  *core.Evaluator

	// lastStarted is the highest round this rep has begun; older
	// round-start and announce arrivals are stale.
	lastStarted uint32
	active      bool
	expected    int
	seen        int
	view        []Req
	ownReq      Req
	ownHas      bool
	empties     []cluster.CID

	// pending buffers announces that arrive before their round's
	// RoundStart (reordering can deliver a fast peer's announce first).
	pending []Message
}

const maxPending = 256

func (r *rep) handle(m Message) {
	switch m.Kind {
	case KindBaseline:
		// The period baselines live in the world; the message is the
		// period-start signal.
	case KindRoundStart:
		r.onRoundStart(m)
	case KindAnnounce:
		r.onAnnounce(m)
	case KindTimer:
		// The representative's own round deadline: complete with
		// whatever view arrived. Without it, a single lost RoundStart
		// or announce would stall every peer of the round — no
		// representative may wait on another's message to guarantee its
		// own progress. Late timers for finished rounds are expected
		// and ignored.
		if r.active && m.Round == r.lastStarted {
			r.n.partial.Add(1)
			r.complete()
		}
	case KindGrantNotify:
		// Coordination traffic only; the move is applied by the world.
	default:
		r.n.stale.Add(1)
	}
}

func (r *rep) onRoundStart(m Message) {
	if m.Round <= r.lastStarted {
		r.n.stale.Add(1)
		return
	}
	if r.active {
		// A newer round superseded one we never finished (our
		// announcements or peers' were lost, or the deadline fired).
		r.n.abandoned.Add(1)
	}
	r.lastStarted = m.Round
	r.active = true
	r.expected = len(m.Reps)
	r.seen = 1 // our own announcement
	r.view = r.view[:0]
	r.empties = r.empties[:0]
	for _, c := range m.Empties {
		r.empties = append(r.empties, cluster.CID(c))
	}

	req, has, gainMsgs := r.n.world.decideCluster(r.n.strat, r.ev, r.cid, r.n.opts.Epsilon, r.n.opts.AllowNewClusters)
	r.n.protoMsgs.Add(int64(gainMsgs))
	r.ownReq, r.ownHas = req, has
	if has {
		r.view = append(r.view, req)
	}

	// Broadcast to every other representative — the request, or a bare
	// cid announcement.
	for _, c := range m.Reps {
		if cluster.CID(c) == r.cid {
			continue
		}
		r.n.protoMsgs.Add(1)
		r.n.tr.send(r.id, actorID(c)+1, Message{
			Kind: KindAnnounce, Round: m.Round, HasRequest: has, Req: req,
		})
	}

	// Replay any early announces buffered for this round, keeping ones
	// for still-future rounds buffered.
	pend := r.pending
	r.pending = r.pending[:0]
	for _, pm := range pend {
		switch {
		case pm.Round > m.Round:
			r.pending = append(r.pending, pm)
		case pm.Round == m.Round && r.active:
			r.onAnnounce(pm)
		default:
			r.n.stale.Add(1)
		}
	}
	if r.active && r.seen >= r.expected {
		r.complete()
	}
	if r.active {
		// Self deadline, off the transport like the coordinator's:
		// local clocks cannot be dropped or delayed.
		r.n.sched.deliverAfter(r.id, Message{Kind: KindTimer, Round: m.Round}, r.n.repTimeout())
	}
}

func (r *rep) onAnnounce(m Message) {
	if m.Round > r.lastStarted {
		if len(r.pending) < maxPending {
			r.pending = append(r.pending, m)
		} else {
			r.n.stale.Add(1)
		}
		return
	}
	if !r.active || m.Round != r.lastStarted {
		r.n.stale.Add(1)
		return
	}
	r.seen++
	if m.HasRequest {
		r.view = append(r.view, m.Req)
	}
	if r.seen >= r.expected {
		r.complete()
	}
}

// complete closes the round at this representative: simulate the grant
// phase, submit a self-granted move, and report done to the
// coordinator.
func (r *rep) complete() {
	r.active = false
	granted := false
	if r.ownHas {
		granted = simulateGrant(r.view, int32(r.cid), r.empties)
		if granted {
			r.n.control.Add(1)
			r.n.tr.send(r.id, coordID, Message{
				Kind: KindGrant, Round: r.lastStarted, HasRequest: true, Req: r.ownReq,
			})
			if !r.ownReq.NewCluster {
				r.n.control.Add(1)
				r.n.tr.send(r.id, actorID(r.ownReq.To)+1, Message{
					Kind: KindGrantNotify, Round: r.lastStarted, Req: r.ownReq,
				})
			}
		}
	}
	r.n.control.Add(1)
	r.n.tr.send(r.id, coordID, Message{
		Kind: KindRoundDone, Round: r.lastStarted, HadRequest: r.ownHas, Granted: granted,
	})
}

// simulateGrant replays the grant phase over the collected view and
// reports whether self's request is granted. It mirrors the world's
// serveRound decision sequence exactly: requests in (gain desc, peer
// asc) order under the cycle-avoiding lock rule, with NewCluster
// requests resolving the lowest-index empty slot as it would exist at
// that point of the serve order — the round-start empties, plus slots
// emptied by earlier granted moves out of singleton clusters, minus
// slots consumed by earlier granted NewCluster requests. With a
// complete view this reproduces the oracle's serve loop state
// machine, so every representative reaches the oracle's verdict for
// its own request.
func simulateGrant(view []Req, self int32, startEmpties []cluster.CID) bool {
	reqs := make([]Req, len(view))
	copy(reqs, view)
	sortReqs(reqs)
	avail := make([]cluster.CID, len(startEmpties))
	copy(avail, startEmpties)
	joinLocked := make(map[int32]bool, len(reqs))
	leaveLocked := make(map[int32]bool, len(reqs))
	for _, req := range reqs {
		to := req.To
		if req.NewCluster {
			slot, ok := minCID(avail)
			if !ok {
				if req.From == self {
					return false
				}
				continue
			}
			to = int32(slot)
		}
		if leaveLocked[req.From] || joinLocked[to] {
			if req.From == self {
				return false
			}
			continue
		}
		// Granted: lock both ends, consume a resolved empty slot, and
		// free the From slot if the move empties it.
		joinLocked[req.From] = true
		leaveLocked[to] = true
		if req.NewCluster {
			avail = removeCID(avail, cluster.CID(to))
		}
		if req.FromSize == 1 {
			avail = append(avail, cluster.CID(req.From))
		}
		if req.From == self {
			return true
		}
	}
	return false
}

func minCID(s []cluster.CID) (cluster.CID, bool) {
	if len(s) == 0 {
		return 0, false
	}
	best := s[0]
	for _, c := range s[1:] {
		if c < best {
			best = c
		}
	}
	return best, true
}

func removeCID(s []cluster.CID, c cluster.CID) []cluster.CID {
	for i, v := range s {
		if v == c {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
