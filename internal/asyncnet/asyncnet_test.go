package asyncnet_test

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/asyncnet"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/protocol"
	"repro/internal/stats"
)

func testParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Peers = 60
	p.Categories = 6
	p.TotalQueries = 360
	p.MaxRounds = 150
	p.Corpus.Categories = 6
	p.Corpus.VocabPerCategory = 300
	p.Seed = 7
	return p
}

func scenarios() []experiments.Scenario {
	return []experiments.Scenario{
		experiments.SameCategory, experiments.DifferentCategory, experiments.Uniform,
	}
}

// TestVirtualZeroFaultMatchesOracle pins the acceptance property: with
// zero injected latency and loss, the virtual-time runtime's execution
// is byte-identical to the synchronous protocol.Runner oracle on all
// three scenarios — same final SCost bits, same cluster count, same
// final assignment, and the same round and message totals.
func TestVirtualZeroFaultMatchesOracle(t *testing.T) {
	p := testParams()
	for _, sc := range scenarios() {
		sys := experiments.Build(p, sc)
		rng := stats.NewRNG(p.Seed ^ 0x1234)
		engOracle := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, rng))
		oracle := protocol.NewRunner(engOracle, core.NewSelfish(), protocol.Options{
			Epsilon: p.Epsilon, MaxRounds: p.MaxRounds, AllowNewClusters: true,
		}).Run()

		engAsync := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, rng))
		rpt := asyncnet.Run(engAsync, core.NewSelfish(), asyncnet.Options{
			Epsilon: p.Epsilon, MaxRounds: p.MaxRounds, AllowNewClusters: true, Seed: 42,
		})

		if rpt.FinalSCost != oracle.FinalSCost {
			t.Errorf("%v: FinalSCost %v, oracle %v", sc, rpt.FinalSCost, oracle.FinalSCost)
		}
		if rpt.FinalWCost != oracle.FinalWCost {
			t.Errorf("%v: FinalWCost %v, oracle %v", sc, rpt.FinalWCost, oracle.FinalWCost)
		}
		if rpt.FinalClusters != oracle.FinalClusters {
			t.Errorf("%v: FinalClusters %d, oracle %d", sc, rpt.FinalClusters, oracle.FinalClusters)
		}
		if rpt.Converged != oracle.Converged {
			t.Errorf("%v: Converged %v, oracle %v", sc, rpt.Converged, oracle.Converged)
		}
		if rpt.Rounds != oracle.RoundsRun {
			t.Errorf("%v: Rounds %d, oracle %d", sc, rpt.Rounds, oracle.RoundsRun)
		}
		if rpt.Messages != oracle.Messages {
			t.Errorf("%v: Messages %d, oracle %d", sc, rpt.Messages, oracle.Messages)
		}
		if !reflect.DeepEqual(engAsync.Config().Assignment(), engOracle.Config().Assignment()) {
			t.Errorf("%v: final assignments diverge from oracle", sc)
		}
		if rpt.Dropped != 0 || rpt.TimeoutRounds != 0 || rpt.AbandonedRounds != 0 || rpt.Stale != 0 {
			t.Errorf("%v: zero-fault run reported faults: %+v", sc, rpt)
		}
	}
}

// TestRealTimeZeroFaultMatchesOracle runs the same property on the
// wall-clock scheduler: with no faults the execution is confluent —
// views are order-independent sets, the grant service is sorted — so
// real concurrency must reach the oracle's exact result too. The round
// deadline is set far above any plausible scheduler stall so a slow CI
// machine cannot fault a round.
func TestRealTimeZeroFaultMatchesOracle(t *testing.T) {
	p := testParams()
	p.Peers = 36
	p.TotalQueries = 216
	sc := experiments.DifferentCategory
	sys := experiments.Build(p, sc)
	rng := stats.NewRNG(p.Seed ^ 0x1234)
	engOracle := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, rng))
	oracle := protocol.NewRunner(engOracle, core.NewSelfish(), protocol.Options{
		Epsilon: p.Epsilon, MaxRounds: p.MaxRounds, AllowNewClusters: true,
	}).Run()

	engAsync := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, rng))
	rpt := asyncnet.Run(engAsync, core.NewSelfish(), asyncnet.Options{
		Epsilon: p.Epsilon, MaxRounds: p.MaxRounds, AllowNewClusters: true, Seed: 42,
		RealTime: true, Tick: 100 * time.Microsecond, RoundTimeout: 600_000, // 60s of wall time
	})
	if rpt.FinalSCost != oracle.FinalSCost || rpt.FinalClusters != oracle.FinalClusters {
		t.Fatalf("real-time zero-fault run diverged: SCost %v vs %v, clusters %d vs %d",
			rpt.FinalSCost, oracle.FinalSCost, rpt.FinalClusters, oracle.FinalClusters)
	}
	if !reflect.DeepEqual(engAsync.Config().Assignment(), engOracle.Config().Assignment()) {
		t.Fatal("real-time zero-fault assignment diverged from oracle")
	}
}

func lossyPlan() asyncnet.FaultPlan {
	return asyncnet.FaultPlan{
		LatencyMean: 3, LatencyJitter: 2,
		ReorderProb: 0.1, DropProb: 0.03,
		StragglerFrac: 0.1, StragglerFactor: 8,
	}
}

// TestReplayableFromSeed pins that a fault-injected virtual-time run is
// a pure function of its seed: identical Report and identical final
// assignment across replays, and a different seed steers the schedule.
func TestReplayableFromSeed(t *testing.T) {
	p := testParams()
	sys := experiments.Build(p, experiments.Uniform)
	run := func(seed uint64) (asyncnet.Report, []int32) {
		rng := stats.NewRNG(p.Seed ^ 0x1234)
		eng := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, rng))
		rpt := asyncnet.Run(eng, core.NewSelfish(), asyncnet.Options{
			Epsilon: p.Epsilon, MaxRounds: 60, AllowNewClusters: true,
			Seed: seed, Faults: lossyPlan(),
		})
		assign := eng.Config().Assignment()
		out := make([]int32, len(assign))
		for i, c := range assign {
			out[i] = int32(c)
		}
		return rpt, out
	}
	r1, a1 := run(99)
	r2, a2 := run(99)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed replay diverged:\n%+v\nvs\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same-seed replay produced different assignments")
	}
	if r1.Dropped == 0 {
		t.Fatalf("lossy plan dropped nothing: %+v", r1)
	}
	r3, _ := run(100)
	if reflect.DeepEqual(r1, r3) {
		t.Log("note: seeds 99 and 100 produced identical reports (possible but unexpected)")
	}
}

// TestFaultInjectionSoak drives the real-time scheduler with latency,
// reordering, drops and stragglers — the configuration the CI job runs
// under -race — and checks the run terminates with a sane, conserving
// state.
func TestFaultInjectionSoak(t *testing.T) {
	p := testParams()
	p.Peers = 40
	p.TotalQueries = 240
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(p.Seed ^ 0x1234)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, rng))
	initial := eng.SCostNormalized()
	rpt := asyncnet.Run(eng, core.NewSelfish(), asyncnet.Options{
		Epsilon: p.Epsilon, MaxRounds: 40, AllowNewClusters: true,
		Seed: 1, Faults: lossyPlan(),
		RealTime: true, Tick: 50 * time.Microsecond,
	})
	if rpt.Rounds == 0 || rpt.Rounds > 40 {
		t.Fatalf("implausible round count %d", rpt.Rounds)
	}
	if math.IsNaN(rpt.FinalSCost) || rpt.FinalSCost < 0 {
		t.Fatalf("implausible final SCost %v", rpt.FinalSCost)
	}
	if rpt.FinalSCost > initial+1e-9 {
		t.Errorf("fault-injected run worsened SCost: %v -> %v", initial, rpt.FinalSCost)
	}
	if err := eng.Config().Validate(); err != nil {
		t.Fatalf("configuration invariant broken after soak: %v", err)
	}
	if rpt.InitialSCost != initial {
		t.Errorf("InitialSCost %v, want %v", rpt.InitialSCost, initial)
	}
}
