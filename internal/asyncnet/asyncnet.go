// Package asyncnet runs the paper's cluster reformulation protocol as
// real message passing: an actor-style runtime (one goroutine-or-event
// driven mailbox per cluster representative, gen_server style) where
// the request/grant/baseline traffic of §3.2 travels through a
// pluggable transport with injectable per-link latency, reordering,
// drops, and straggler peers — all sampled from a seeded stats.RNG so
// every schedule is replayable.
//
// Two scheduler modes drive the same actors:
//
//   - Virtual time (the default): a deterministic single-threaded event
//     queue keyed by (tick, send sequence). Same seed, same inputs →
//     identical schedule, identical Report. With a zero FaultPlan the
//     run is byte-identical to the synchronous protocol.Runner oracle —
//     same final SCost bits, same cluster count, same round and message
//     counts — which is the property the test suite pins.
//
//   - Real time (Options.RealTime): one goroutine and mailbox per
//     actor, delays mapped onto the wall clock via Options.Tick. No
//     determinism is claimed; this mode exists to run the identical
//     protocol logic under the race detector with true concurrency.
//
// The decide work reuses core.Evaluator: each representative owns a
// private (unpruned) evaluator and scans its members under the world's
// read lock, so concurrent scans in real time are race-free. Grants
// are applied by the world exactly as protocol.Runner's phase 2 does;
// each representative decides its own request's fate by simulating the
// grant phase over its collected view (see rep.go), which is what
// makes the runtime decentralized in the common case while staying
// oracle-exact when no messages are lost.
package asyncnet

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
)

// Options configure a run. Zero values take the documented defaults.
type Options struct {
	// Epsilon is the gain threshold ε below which no request is issued.
	Epsilon float64
	// MaxRounds caps the run (default 300, mirroring protocol).
	MaxRounds int
	// AllowNewClusters enables the empty-cluster creation rule of §3.2.
	AllowNewClusters bool
	// Seed drives the transport RNG (fault sampling and straggler
	// selection). Two virtual-time runs with the same seed, engine and
	// options produce identical schedules and Reports.
	Seed uint64
	// Faults is the injected fault plan; the zero value is a perfect
	// network.
	Faults FaultPlan
	// RoundTimeout is the coordinator's round deadline in ticks;
	// 0 derives a generous default from the fault plan's latency.
	RoundTimeout int64
	// QuiescentRounds terminates after this many consecutive rounds
	// with no requests and no grants even when round completion could
	// not be observed (message loss makes the oracle's exact stop
	// condition unobservable); default 3.
	QuiescentRounds int
	// RealTime selects the wall-clock scheduler; Tick is the wall
	// duration of one virtual tick (default 200µs).
	RealTime bool
	Tick     time.Duration
}

func (o Options) withDefaults() Options {
	if o.Epsilon < 0 {
		panic(fmt.Sprintf("asyncnet: negative epsilon %g", o.Epsilon))
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 300
	}
	if o.QuiescentRounds <= 0 {
		o.QuiescentRounds = 3
	}
	if o.Tick <= 0 {
		o.Tick = 200 * time.Microsecond
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = 64 * int64(o.Faults.LatencyMean+o.Faults.LatencyJitter+1)
	}
	if o.Faults.StragglerFrac > 0 && o.Faults.StragglerFactor <= 1 {
		o.Faults.StragglerFactor = 8
	}
	return o
}

// Report summarizes a run.
type Report struct {
	// Rounds is the number of rounds opened (including the final
	// quiescent round that only detects convergence).
	Rounds int
	// Converged reports termination by quiescence rather than
	// MaxRounds.
	Converged bool
	// Initial/Final normalized global costs and final cluster count.
	InitialSCost, InitialWCost float64
	FinalSCost, FinalWCost     float64
	FinalClusters              int
	// Requests and Granted total the relocation requests observed by
	// the coordinator and the moves actually applied.
	Requests, Granted int
	// Messages counts protocol messages — gain reports, request
	// broadcasts, grant coordination — with the same accounting as
	// protocol.Report.Messages, so the two are directly comparable.
	Messages int
	// Control counts runtime control messages (baselines, round
	// starts, round dones, grant submissions and notifications).
	Control int
	// Transport outcome counters.
	Delivered, Dropped, Reordered int
	// Stale counts wrong-round arrivals discarded by actors.
	Stale int
	// TimeoutRounds is how many rounds closed on the deadline rather
	// than full participation; AbandonedRounds how many a
	// representative had to abandon unfinished; PartialCompletes how
	// many representative-rounds completed on the local deadline with
	// a partial view.
	TimeoutRounds, AbandonedRounds, PartialCompletes int
	// Stragglers is the number of representatives sampled as slow.
	Stragglers int
	// VirtualTicks is the virtual clock at termination (0 in real
	// time).
	VirtualTicks uint64
}

// Net wires one run together: world, transport, scheduler, actors.
type Net struct {
	opts  Options
	strat core.EvalStrategy
	world *world
	sched scheduler
	tr    *transport
	coord *coordinator
	reps  map[cluster.CID]*rep

	protoMsgs atomic.Int64
	control   atomic.Int64
	delivered atomic.Int64
	dropped   atomic.Int64
	reordered atomic.Int64
	stale     atomic.Int64
	abandoned atomic.Int64
	partial   atomic.Int64
}

// repTimeout is a representative's own round deadline: half the
// coordinator's, so partial completions and their done reports reach
// the coordinator before it closes the round.
func (n *Net) repTimeout() int64 {
	t := n.opts.RoundTimeout / 2
	if t < 1 {
		t = 1
	}
	return t
}

// Run executes one reformulation period over eng — rounds until
// quiescence or MaxRounds — on the asynchronous runtime and returns
// its report. The engine is mutated in place (moves are applied as
// grants are served), exactly like protocol.Runner.Run.
func Run(eng *core.Engine, strat core.EvalStrategy, opts Options) Report {
	opts = opts.withDefaults()
	n := &Net{
		opts:  opts,
		strat: strat,
		world: newWorld(eng),
		reps:  make(map[cluster.CID]*rep),
	}
	if opts.RealTime {
		n.sched = newRSched(opts.Tick)
	} else {
		n.sched = newVSched()
	}
	rng := stats.NewRNG(opts.Seed ^ 0xa5a5a5a55a5a5a5a)
	n.tr = newTransport(n, opts.Faults, rng, eng.Config().Cmax())
	n.coord = newCoordinator(n)
	n.sched.register(coordID, n.coord)

	var rpt Report
	rpt.InitialSCost, rpt.InitialWCost, _ = n.world.costs()
	n.sched.deliverAfter(coordID, Message{Kind: KindStart}, 0)
	n.sched.run(func() bool { return n.coord.finished }, n.coord.doneCh)
	n.sched.shutdown()

	rpt.Rounds = n.coord.rounds
	rpt.Converged = n.coord.converged
	rpt.Requests = n.coord.requests
	rpt.Granted = n.coord.granted
	rpt.TimeoutRounds = n.coord.timeoutRounds
	rpt.FinalSCost, rpt.FinalWCost, rpt.FinalClusters = n.world.costs()
	rpt.Messages = int(n.protoMsgs.Load())
	rpt.Control = int(n.control.Load())
	rpt.Delivered = int(n.delivered.Load())
	rpt.Dropped = int(n.dropped.Load())
	rpt.Reordered = int(n.reordered.Load())
	rpt.Stale = int(n.stale.Load())
	rpt.AbandonedRounds = int(n.abandoned.Load())
	rpt.PartialCompletes = int(n.partial.Load())
	rpt.Stragglers = n.tr.stragglers()
	rpt.VirtualTicks = n.sched.now()
	return rpt
}
