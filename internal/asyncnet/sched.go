package asyncnet

import (
	"container/heap"
	"sync"
	"time"
)

// actorID addresses an actor: 0 is the coordinator, cid+1 the
// representative of cluster cid.
type actorID int32

const coordID actorID = 0

// handler is an actor's message entry point. In virtual time handlers
// run one at a time on the scheduler thread; in real time each actor's
// handler runs on its own mailbox goroutine, serialized per actor.
type handler interface {
	handle(m Message)
}

// scheduler delivers messages to actors after a delay measured in
// ticks. The virtual implementation is a deterministic event queue —
// same seed, same schedule, every run — and the real implementation
// maps ticks onto wall-clock time with one goroutine and mailbox per
// actor, which is what the -race soak exercises.
type scheduler interface {
	register(id actorID, h handler)
	// deliverAfter schedules m for delivery to `to` after delay ticks.
	// Safe to call from inside handlers (and, in real time, from timer
	// goroutines).
	deliverAfter(to actorID, m Message, delay int64)
	// run drives deliveries until stop reports true (virtual) or until
	// stopCh closes (real).
	run(stop func() bool, stopCh <-chan struct{})
	// shutdown stops delivery and waits for in-flight handlers; after
	// it returns no handler is running and counters may be read freely.
	shutdown()
	// now is the current virtual tick (0 in real time).
	now() uint64
}

// --- virtual time ---

type vevent struct {
	at  uint64
	seq uint64
	to  actorID
	m   Message
}

type veventHeap []vevent

func (h veventHeap) Len() int { return len(h) }
func (h veventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h veventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *veventHeap) Push(x any)   { *h = append(*h, x.(vevent)) }
func (h *veventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// vsched is the deterministic virtual-time scheduler: a single-threaded
// event loop over a (time, sequence) priority queue. Ties on time
// resolve in send order, so zero-latency delivery is FIFO and every
// schedule is a pure function of the seed and the inputs.
type vsched struct {
	events veventHeap
	seq    uint64
	clock  uint64
	actors map[actorID]handler
}

func newVSched() *vsched {
	return &vsched{actors: make(map[actorID]handler)}
}

func (s *vsched) register(id actorID, h handler) { s.actors[id] = h }

func (s *vsched) deliverAfter(to actorID, m Message, delay int64) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, vevent{at: s.clock + uint64(delay), seq: s.seq, to: to, m: m})
}

func (s *vsched) run(stop func() bool, _ <-chan struct{}) {
	for !stop() && len(s.events) > 0 {
		e := heap.Pop(&s.events).(vevent)
		s.clock = e.at
		if h, ok := s.actors[e.to]; ok {
			h.handle(e.m)
		}
	}
}

func (s *vsched) shutdown()   {}
func (s *vsched) now() uint64 { return s.clock }

// --- real time ---

// mailbox is an unbounded FIFO queue feeding one actor goroutine.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// push enqueues m; a push after close is a no-op (late timers may fire
// after shutdown).
func (mb *mailbox) push(m Message) {
	mb.mu.Lock()
	if !mb.closed {
		mb.q = append(mb.q, m)
		mb.cond.Signal()
	}
	mb.mu.Unlock()
}

// next blocks for the next message; ok is false once the mailbox is
// closed and drained.
func (mb *mailbox) next() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.q) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.q) == 0 {
		return Message{}, false
	}
	m := mb.q[0]
	mb.q = mb.q[1:]
	return m, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.q = nil
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// rsched runs each actor as a goroutine draining its mailbox; delays
// map to wall time through the tick duration via time.AfterFunc. No
// determinism is claimed — this mode exists to run the same protocol
// logic under the race detector with real concurrency.
type rsched struct {
	mu     sync.Mutex
	boxes  map[actorID]*mailbox
	timers []*time.Timer
	closed bool
	wg     sync.WaitGroup
	tick   time.Duration
}

func newRSched(tick time.Duration) *rsched {
	return &rsched{boxes: make(map[actorID]*mailbox), tick: tick}
}

func (s *rsched) register(id actorID, h handler) {
	mb := newMailbox()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.boxes[id] = mb
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for {
			m, ok := mb.next()
			if !ok {
				return
			}
			h.handle(m)
		}
	}()
}

func (s *rsched) deliverAfter(to actorID, m Message, delay int64) {
	s.mu.Lock()
	mb := s.boxes[to]
	if mb == nil || s.closed {
		s.mu.Unlock()
		return
	}
	if delay <= 0 {
		s.mu.Unlock()
		mb.push(m)
		return
	}
	t := time.AfterFunc(time.Duration(delay)*s.tick, func() { mb.push(m) })
	s.timers = append(s.timers, t)
	s.mu.Unlock()
}

func (s *rsched) run(_ func() bool, stopCh <-chan struct{}) { <-stopCh }

func (s *rsched) shutdown() {
	s.mu.Lock()
	s.closed = true
	for _, t := range s.timers {
		t.Stop()
	}
	s.timers = nil
	boxes := s.boxes
	s.mu.Unlock()
	for _, mb := range boxes {
		mb.close()
	}
	s.wg.Wait()
}

func (s *rsched) now() uint64 { return 0 }
