package asyncnet

import (
	"math"
	"reflect"
	"testing"
)

func sampleMessages() []Message {
	return []Message{
		{Kind: KindStart},
		{Kind: KindTimer, Round: 7},
		{Kind: KindBaseline, From: 0, To: 5},
		{Kind: KindRoundStart, From: 0, To: 3, Round: 2,
			Reps: []int32{0, 2, 9}, Empties: []int32{1, 3, 4}},
		{Kind: KindAnnounce, From: 3, To: 10, Round: 2, HasRequest: true,
			Req: Req{Peer: 17, From: 2, To: 9, Gain: 0.125, Gen: 3, FromSize: 4}},
		{Kind: KindAnnounce, From: 3, To: 10, Round: 2}, // bare cid announce
		{Kind: KindGrant, From: 3, To: 0, Round: 2, HasRequest: true,
			Req: Req{Peer: 17, From: 2, To: -1, Gain: math.Inf(1), NewCluster: true, Gen: 1, FromSize: 1}},
		{Kind: KindGrantNotify, From: 3, To: 10, Round: 2,
			Req: Req{Peer: 17, From: 2, To: 9, Gain: -0.5}},
		{Kind: KindRoundDone, From: 3, To: 0, Round: 2, HadRequest: true, Granted: true},
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		enc := AppendMessage(nil, m)
		dec, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", m, err)
		}
		if !reflect.DeepEqual(dec, m) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, m)
		}
		// Re-encoding the decoded message is byte-identical: the
		// encoder is canonical for everything it emits.
		if re := AppendMessage(nil, dec); !reflect.DeepEqual(re, enc) {
			t.Fatalf("re-encode mismatch for %+v", m)
		}
	}
}

func TestMessageCodecRejectsHostileInput(t *testing.T) {
	good := AppendMessage(nil, sampleMessages()[3])
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:3],
		"bad magic":      append([]byte{'X', 'N'}, good[2:]...),
		"bad version":    append([]byte{'A', 'N', 99}, good[3:]...),
		"bad kind zero":  append([]byte{'A', 'N', WireVersion, 0}, good[4:]...),
		"bad kind high":  append([]byte{'A', 'N', WireVersion, 200}, good[4:]...),
		"truncated body": good[:len(good)-2],
		"trailing bytes": append(append([]byte{}, good...), 0),
		// Header + a hostile slice count with no room for elements.
		"hostile count": append(append([]byte{}, good[:4]...),
			0, 0, 0, 0, // From, To, Round, HasRequest
			0, 0, 0, // Req.Peer/From/To
			0, 0, 0, 0, 0, 0, 0, 0, // Gain
			0, 0, 0, // NewCluster, Gen, FromSize
			0xff, 0xff, 0xff, 0x7f), // Reps length ~256M
	}
	for name, data := range cases {
		if _, err := DecodeMessage(data); err == nil {
			t.Errorf("%s: decoder accepted hostile input", name)
		}
	}
	// A bool byte outside {0,1} is rejected (keeps the encoding
	// canonical for bools).
	bad := append([]byte{}, good...)
	bad[len(bad)-1] = 2 // Granted flag
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("decoder accepted bool byte 2")
	}
}
