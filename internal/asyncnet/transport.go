package asyncnet

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// FaultPlan describes the injected link faults. All latencies are in
// scheduler ticks (virtual time units; the real-time scheduler maps a
// tick onto Options.Tick of wall time). The zero value is a perfect
// network: instant, ordered, lossless.
type FaultPlan struct {
	// LatencyMean and LatencyJitter give each delivery a latency drawn
	// uniformly from [mean-jitter, mean+jitter], clamped at zero.
	LatencyMean   int
	LatencyJitter int
	// ReorderProb is the chance a message is held back by an extra
	// delay (how reordering manifests: a held message is overtaken by
	// later sends).
	ReorderProb float64
	// DropProb is the chance a message is silently lost.
	DropProb float64
	// StragglerFrac is the fraction of representatives whose outgoing
	// messages are slowed by StragglerFactor (default 8 when a
	// fraction is set and the factor is unset).
	StragglerFrac   float64
	StragglerFactor int
}

// zero reports whether the plan injects nothing.
func (f FaultPlan) zero() bool {
	return f.LatencyMean == 0 && f.LatencyJitter == 0 && f.ReorderProb == 0 &&
		f.DropProb == 0 && f.StragglerFrac == 0
}

// transport carries every inter-actor message. Each send round-trips
// the message through the wire codec (the codec is load-bearing, not
// decorative), samples the fault plan from a seeded RNG, and hands the
// surviving message to the scheduler with its sampled delay. In
// virtual time sends happen in deterministic order on one thread, so
// the RNG stream — and with it every drop, delay, and reordering — is
// a pure function of the seed; in real time the mutex serializes
// sampling without any determinism claim.
type transport struct {
	n    *Net
	plan FaultPlan

	mu  sync.Mutex
	rng *stats.RNG
	// straggler[id] marks actors whose sends are slowed; index 0 (the
	// coordinator) never straggles.
	straggler []bool
}

func newTransport(n *Net, plan FaultPlan, rng *stats.RNG, numReps int) *transport {
	t := &transport{n: n, plan: plan, rng: rng, straggler: make([]bool, numReps+1)}
	if plan.StragglerFrac > 0 {
		for i := 1; i < len(t.straggler); i++ {
			t.straggler[i] = rng.Bool(plan.StragglerFrac)
		}
	}
	return t
}

func (t *transport) stragglers() int {
	n := 0
	for _, s := range t.straggler {
		if s {
			n++
		}
	}
	return n
}

// send encodes, faults, and schedules one message.
func (t *transport) send(from, to actorID, m Message) {
	m.From, m.To = int32(from), int32(to)
	enc := AppendMessage(nil, m)
	dec, err := DecodeMessage(enc)
	if err != nil {
		panic(fmt.Sprintf("asyncnet: codec round-trip failed: %v", err))
	}
	delay, drop, reorder := t.sample(from)
	if drop {
		t.n.dropped.Add(1)
		return
	}
	if reorder {
		t.n.reordered.Add(1)
	}
	t.n.delivered.Add(1)
	t.n.sched.deliverAfter(to, dec, delay)
}

// sample draws one delivery's fate from the plan.
func (t *transport) sample(from actorID) (delay int64, drop, reorder bool) {
	if t.plan.zero() {
		return 0, false, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.plan
	if p.DropProb > 0 && t.rng.Bool(p.DropProb) {
		return 0, true, false
	}
	delay = int64(p.LatencyMean)
	if p.LatencyJitter > 0 {
		delay += int64(t.rng.Intn(2*p.LatencyJitter+1) - p.LatencyJitter)
	}
	if delay < 0 {
		delay = 0
	}
	if int(from) < len(t.straggler) && t.straggler[from] {
		delay *= int64(p.StragglerFactor)
	}
	if p.ReorderProb > 0 && t.rng.Bool(p.ReorderProb) {
		delay += int64(t.rng.Intn(4*(p.LatencyMean+1) + 1))
		reorder = true
	}
	return delay, false, reorder
}
