package textproc

// stopwords is a standard English stop-word list of the kind used by IR
// preprocessing pipelines. The paper removes stop words from article
// texts before clustering.
var stopwords = map[string]bool{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = true
	}
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am",
	"an", "and", "any", "are", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "did", "do", "does", "doing", "down", "during",
	"each", "few", "for", "from", "further", "had", "has", "have",
	"having", "he", "her", "here", "hers", "herself", "him", "himself",
	"his", "how", "if", "in", "into", "is", "it", "its", "itself",
	"just", "me", "more", "most", "my", "myself", "no", "nor", "not",
	"now", "of", "off", "on", "once", "only", "or", "other", "our",
	"ours", "ourselves", "out", "over", "own", "same", "she", "should",
	"so", "some", "such", "than", "that", "the", "their", "theirs",
	"them", "themselves", "then", "there", "these", "they", "this",
	"those", "through", "to", "too", "under", "until", "up", "very",
	"was", "we", "were", "what", "when", "where", "which", "while",
	"who", "whom", "why", "will", "with", "you", "your", "yours",
	"yourself", "yourselves",
}

// IsStopword reports whether w (already lowercased) is a stop word.
func IsStopword(w string) bool { return stopwords[w] }

// StopwordCount returns the size of the built-in list (useful for the
// corpus generator, which salts documents with stop words to exercise
// the pipeline).
func StopwordCount() int { return len(stopwordList) }

// StopwordAt returns the i-th stop word of the built-in list.
func StopwordAt(i int) string { return stopwordList[i%len(stopwordList)] }
