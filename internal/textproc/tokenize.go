// Package textproc implements the text preprocessing pipeline the paper
// applies to its Newsgroup articles before clustering (§4): texts are
// tokenized, stop words are removed, a lemmatization step normalizes
// morphological variants (approximated here with a light suffix-stripping
// stemmer), and the resulting words are sorted by frequency of
// appearance.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into maximal runs of letters
// and digits. Punctuation and other symbols act as separators. Tokens
// shorter than two characters are dropped (they carry no topical
// signal and the paper's stop-word pass would remove most of them
// anyway).
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 {
			out = append(out, b.String())
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}
