package textproc

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"peer-to-peer systems", []string{"peer", "to", "peer", "systems"}},
		{"  a b  ", []string{}}, // single-char tokens dropped
		{"κλυστερ overlay", []string{"κλυστερ", "overlay"}},
		{"x1y2 42", []string{"x1y2", "42"}},
		{"", []string{}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is", "yourselves"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stop word", w)
		}
	}
	for _, w := range []string{"cluster", "peer", "recall"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stop word", w)
		}
	}
	if StopwordCount() < 100 {
		t.Errorf("suspiciously small stop word list: %d", StopwordCount())
	}
	if StopwordAt(0) == "" || StopwordAt(StopwordCount()+3) == "" {
		t.Error("StopwordAt returned empty")
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"classes":   "class",
		"queries":   "query",
		"peers":     "peer",
		"class":     "class", // keep ss
		"running":   "run",   // undouble
		"caching":   "cach",
		"clustered": "cluster",
		"quickly":   "quick",
		"gas":       "gas",      // too short for the s rule (n = 3)
		"bus":       "bus",      // -us protected
		"analysis":  "analysis", // -is protected
		"cat":       "cat",
		"moved":     "mov",
		"recall":    "recall",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q)=%q want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnCommonForms(t *testing.T) {
	for _, w := range []string{"cluster", "peer", "recall", "overlay", "network"} {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not idempotent on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestProcessPipeline(t *testing.T) {
	got := Process("The peers are clustering their queries, and the clusters improved!")
	want := []string{"peer", "cluster", "query", "cluster", "improv"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process=%v want %v", got, want)
	}
}

func TestTermFrequenciesAndSorting(t *testing.T) {
	tf := TermFrequencies([]string{"b", "a", "b", "c", "b", "a"})
	if tf["b"] != 3 || tf["a"] != 2 || tf["c"] != 1 {
		t.Fatalf("tf=%v", tf)
	}
	sorted := SortByFrequency(tf)
	if sorted[0].Term != "b" || sorted[1].Term != "a" || sorted[2].Term != "c" {
		t.Fatalf("sorted=%v", sorted)
	}
	// Ties break lexicographically for determinism.
	tie := SortByFrequency(map[string]int{"z": 2, "m": 2, "a": 2})
	if tie[0].Term != "a" || tie[1].Term != "m" || tie[2].Term != "z" {
		t.Fatalf("tie order=%v", tie)
	}
}

func TestUniqueTerms(t *testing.T) {
	got := UniqueTerms("peer peer peers cluster the of")
	if len(got) != 2 || got[0] != "peer" || got[1] != "cluster" {
		t.Fatalf("UniqueTerms=%v", got)
	}
}
