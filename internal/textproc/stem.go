package textproc

import "strings"

// Stem normalizes common English inflections with a light
// suffix-stripping stemmer (a compact approximation of the
// lemmatization step in the paper's preprocessing). It intentionally
// errs on the conservative side: a wrong merge between two distinct
// topical words is worse for clustering than a missed merge.
//
// Rules, applied in order, first match wins:
//
//	sses -> ss  (classes -> class)
//	ies  -> y   (queries -> query)
//	s    -> ""  (peers -> peer; "ss"/"us"/"is" endings are kept)
//	ing  -> ""  (running -> run via undoubling; caching -> cach)
//	ed   -> ""  (clustered -> cluster)
//	ly   -> ""  (quickly -> quick)
func Stem(w string) string {
	n := len(w)
	switch {
	case n > 4 && strings.HasSuffix(w, "sses"):
		return w[:n-2]
	case n > 4 && strings.HasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 3 && strings.HasSuffix(w, "ss"):
		return w
	case n > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return w[:n-1]
	case n > 5 && strings.HasSuffix(w, "ing"):
		stem := w[:n-3]
		return undouble(stem)
	case n > 4 && strings.HasSuffix(w, "ed"):
		stem := w[:n-2]
		return undouble(stem)
	case n > 4 && strings.HasSuffix(w, "ly"):
		return w[:n-2]
	}
	return w
}

// undouble collapses a doubled final consonant left by -ing/-ed
// stripping (running -> runn -> run) but keeps legitimate doubles that
// end in l/s/z rarely matter at this fidelity; we collapse all doubles
// except "ss".
func undouble(w string) string {
	n := len(w)
	if n >= 2 && w[n-1] == w[n-2] && !isVowel(w[n-1]) && w[n-1] != 's' {
		return w[:n-1]
	}
	return w
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
