package textproc

import "sort"

// Process runs the paper's full preprocessing pipeline over raw text:
// tokenize, drop stop words, stem. The result preserves token order
// (duplicates included); use TermFrequencies / SortByFrequency for the
// frequency-sorted view the paper describes.
func Process(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if IsStopword(t) {
			continue
		}
		s := Stem(t)
		if len(s) < 2 || IsStopword(s) {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TermFrequencies counts occurrences of each processed term.
func TermFrequencies(terms []string) map[string]int {
	tf := make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	return tf
}

// TermCount pairs a term with its frequency.
type TermCount struct {
	Term  string
	Count int
}

// SortByFrequency returns the terms sorted by decreasing frequency,
// breaking ties lexicographically so the order is deterministic — the
// paper sorts the resulting words by frequency of appearance.
func SortByFrequency(tf map[string]int) []TermCount {
	out := make([]TermCount, 0, len(tf))
	for t, c := range tf {
		out = append(out, TermCount{Term: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Term < out[j].Term
	})
	return out
}

// UniqueTerms returns the distinct processed terms of text, sorted by
// decreasing frequency. This is the attribute set extraction used to
// describe a document.
func UniqueTerms(text string) []string {
	tc := SortByFrequency(TermFrequencies(Process(text)))
	out := make([]string, len(tc))
	for i, t := range tc {
		out[i] = t.Term
	}
	return out
}
