// Package replog is the serve tier's replicated mutation log: the
// monotone, term-numbered record of every state transition the
// authoritative daemon performs — peer joins and leaves, the
// relocation grants of each maintenance step, workload compactions,
// and maintenance-period boundaries. A leader appends one entry per
// mutation in application order and streams the log to followers over
// HTTP (see the wire records in wire.go); a follower applies entries
// through the same mutation path the leader used, so its engine — and
// therefore its published routing views — tracks the leader's exactly.
//
// Entries are identified by a dense index (monotone from 1) and carry
// the term of the leader that appended them. Terms are bumped on every
// promotion, so a follower can tell a new leader's entries from a
// deposed one's: a record stream whose term regresses is rejected.
// Maintenance-period boundaries are first-class entries precisely for
// failover — a follower promoted while the log shows an open period
// knows maintenance was in flight and either resumes it (fresh period
// over the replicated state, which already contains every granted
// move) or closes it at the last replicated step; both paths converge
// to the same configuration because grants are replicated as they
// happen, never reconstructed.
//
// The log is held in memory. Truncate drops a prefix once it is no
// longer needed; a follower positioned before the truncation floor
// (or making first contact) catches up with a snapshot record built
// from the leader's live state instead of replaying history.
package replog

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Kind discriminates log entries.
type Kind byte

const (
	// KindJoin admits one peer (op: JoinOp).
	KindJoin Kind = 1
	// KindLeave retires one peer (op: LeaveOp).
	KindLeave Kind = 2
	// KindGrants applies the relocations one maintenance step granted
	// (op: GrantsOp).
	KindGrants Kind = 3
	// KindCompact retires dead workload queries (op: CompactOp).
	KindCompact Kind = 4
	// KindPeriodStart marks the beginning of a maintenance period (no
	// op payload).
	KindPeriodStart Kind = 5
	// KindPeriodEnd closes a maintenance period (op: PeriodEndOp).
	KindPeriodEnd Kind = 6
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindGrants:
		return "grants"
	case KindCompact:
		return "compact"
	case KindPeriodStart:
		return "period_start"
	case KindPeriodEnd:
		return "period_end"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Entry is one replicated mutation.
type Entry struct {
	// Index is the entry's position in the log (dense, from 1).
	Index uint64
	// Term is the leadership term that appended the entry.
	Term uint64
	// Kind discriminates Data.
	Kind Kind
	// Data is the kind-specific op payload (JSON; see the *Op types).
	Data []byte
}

// QueryCount is one workload entry of a joining peer.
type QueryCount struct {
	Terms []string `json:"terms"`
	Count int      `json:"count"`
}

// JoinOp admits a peer. Slot and Cluster record the placement the
// leader's engine chose; the follower's engine — replaying the same
// history — must choose identically, and a mismatch is divergence.
type JoinOp struct {
	Items   [][]string   `json:"items"`
	Queries []QueryCount `json:"queries"`
	Slot    int          `json:"slot"`
	Cluster int          `json:"cluster"`
}

// LeaveOp retires the peer in Slot.
type LeaveOp struct {
	Slot int `json:"slot"`
}

// Grant is one granted relocation: the peer in Slot moves to cluster
// To (the final target — new-cluster requests are resolved to a
// concrete cluster slot before they are logged).
type Grant struct {
	Slot int `json:"slot"`
	To   int `json:"to"`
}

// GrantsOp applies the relocations granted since the previous grants
// entry of the same period, in grant order.
type GrantsOp struct {
	Moves []Grant `json:"moves"`
}

// CompactOp retires dead workload queries. Removed and Queries record
// the leader's outcome (queries removed, distinct queries surviving);
// compaction is deterministic over replicated state, so a follower
// whose outcome differs has diverged.
type CompactOp struct {
	Removed int `json:"removed"`
	Queries int `json:"queries"`
}

// PeriodEndOp closes a maintenance period.
type PeriodEndOp struct {
	// Aborted is true when the period did not finish under the leader
	// that started it (leader death; the promoted leader closes it).
	Aborted bool `json:"aborted"`
	// Converged mirrors the protocol report for finished periods.
	Converged bool `json:"converged"`
	// Rounds and Moves summarize the finished period (observability).
	Rounds int `json:"rounds"`
	Moves  int `json:"moves"`
}

// EncodeOp serializes an op payload. Ops are built by the serving
// layer and are always marshalable; errors are programming mistakes.
func EncodeOp(op any) []byte {
	data, err := json.Marshal(op)
	if err != nil {
		panic(fmt.Sprintf("replog: encode op: %v", err))
	}
	return data
}

// DecodeOp parses an op payload of the given type.
func DecodeOp[T any](data []byte) (T, error) {
	var op T
	if err := json.Unmarshal(data, &op); err != nil {
		return op, fmt.Errorf("replog: decode op: %w", err)
	}
	return op, nil
}

// Log is the in-memory mutation log. Every node holds one: the leader
// appends via Next, followers append the streamed entries via Append
// (and can therefore serve the feed themselves — after a promotion,
// or as a relay). A Log is safe for concurrent use.
type Log struct {
	mu sync.Mutex
	// base is the index of the state the retained suffix starts from:
	// entries[i].Index == base+1+i. A fresh log has base 0 (the empty
	// boot state); Reset moves it to a snapshot's index.
	base    uint64
	entries []Entry
	term    uint64
	// notify is closed and replaced on every append; Watch returns the
	// current channel so long-pollers can park on it.
	notify chan struct{}
}

// NewLog builds an empty log at base 0, term floor 0.
func NewLog() *Log {
	return &Log{notify: make(chan struct{})}
}

// Next appends a new entry as the given term's leader, assigning the
// next index. It returns the appended entry.
func (l *Log) Next(term uint64, kind Kind, data []byte) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if term < l.term {
		panic(fmt.Sprintf("replog: leader term %d behind log term %d", term, l.term))
	}
	e := Entry{Index: l.lastLocked() + 1, Term: term, Kind: kind, Data: data}
	l.appendLocked(e)
	return e
}

// Append adds a replicated entry, enforcing index contiguity and term
// monotonicity — the guards that reject a deposed leader's stream.
func (l *Log) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if want := l.lastLocked() + 1; e.Index != want {
		return fmt.Errorf("replog: entry index %d, want %d", e.Index, want)
	}
	if e.Term < l.term {
		return fmt.Errorf("replog: entry term %d regresses from %d", e.Term, l.term)
	}
	l.appendLocked(e)
	return nil
}

func (l *Log) appendLocked(e Entry) {
	l.entries = append(l.entries, e)
	l.term = e.Term
	close(l.notify)
	l.notify = make(chan struct{})
}

func (l *Log) lastLocked() uint64 {
	return l.base + uint64(len(l.entries))
}

// LastIndex returns the newest entry's index (== Base when empty).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLocked()
}

// Base returns the index the retained suffix starts from: entries
// (Base, LastIndex] are available; positions below Base need a
// snapshot.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Term returns the highest term appended so far.
func (l *Log) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// Len returns the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Since returns up to max entries after index from (max <= 0 means
// all). ok is false when from precedes the retained suffix — the
// caller must catch up with a snapshot instead. The returned slice
// aliases log storage; callers must not mutate it.
func (l *Log) Since(from uint64, max int) (batch []Entry, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base || from > l.lastLocked() {
		return nil, false
	}
	batch = l.entries[from-l.base:]
	if max > 0 && len(batch) > max {
		batch = batch[:max]
	}
	return batch, true
}

// Watch returns a channel closed at the next append; pair with Since
// to long-poll the log.
func (l *Log) Watch() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}

// TruncateBefore drops entries at or below index, raising Base. It
// never drops past the newest entry's index.
func (l *Log) TruncateBefore(index uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index > l.lastLocked() {
		index = l.lastLocked()
	}
	if index <= l.base {
		return
	}
	drop := index - l.base
	kept := l.entries[drop:]
	// Copy down so the dropped prefix is collectible.
	l.entries = append(l.entries[:0], kept...)
	l.base = index
}

// Reset re-bases the log on a snapshot: retained entries are dropped
// and the next expected index is index+1 at the given term floor. A
// follower installs the base its catch-up record names with it.
func (l *Log) Reset(index, term uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = l.entries[:0]
	l.base = index
	l.term = term
	close(l.notify)
	l.notify = make(chan struct{})
}
