package replog

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLogNextAssignsDenseIndexes(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 5; i++ {
		e := l.Next(1, KindJoin, []byte("x"))
		if e.Index != uint64(i) {
			t.Fatalf("entry %d got index %d", i, e.Index)
		}
		if e.Term != 1 {
			t.Fatalf("entry %d got term %d", i, e.Term)
		}
	}
	if got := l.LastIndex(); got != 5 {
		t.Fatalf("LastIndex = %d, want 5", got)
	}
	if got := l.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
}

func TestLogNextPanicsOnTermRegression(t *testing.T) {
	l := NewLog()
	l.Next(3, KindJoin, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Next with a stale term did not panic")
		}
	}()
	l.Next(2, KindJoin, nil)
}

func TestLogAppendEnforcesContiguityAndTerms(t *testing.T) {
	l := NewLog()
	if err := l.Append(Entry{Index: 1, Term: 1, Kind: KindJoin}); err != nil {
		t.Fatal(err)
	}
	// Gap.
	if err := l.Append(Entry{Index: 3, Term: 1, Kind: KindJoin}); err == nil {
		t.Fatal("gapped append accepted")
	}
	// Duplicate.
	if err := l.Append(Entry{Index: 1, Term: 1, Kind: KindJoin}); err == nil {
		t.Fatal("duplicate append accepted")
	}
	// Term regression.
	l.Next(2, KindLeave, nil)
	if err := l.Append(Entry{Index: 3, Term: 1, Kind: KindJoin}); err == nil {
		t.Fatal("term-regressing append accepted")
	}
	// Term advance is fine.
	if err := l.Append(Entry{Index: 3, Term: 5, Kind: KindJoin}); err != nil {
		t.Fatal(err)
	}
	if got := l.Term(); got != 5 {
		t.Fatalf("Term = %d, want 5", got)
	}
}

func TestLogSinceAndTruncate(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Next(1, KindGrants, nil)
	}
	batch, ok := l.Since(0, 0)
	if !ok || len(batch) != 10 || batch[0].Index != 1 {
		t.Fatalf("Since(0) = %d entries ok=%v", len(batch), ok)
	}
	batch, ok = l.Since(7, 2)
	if !ok || len(batch) != 2 || batch[0].Index != 8 {
		t.Fatalf("Since(7, 2) = %v ok=%v", batch, ok)
	}
	if batch, ok = l.Since(10, 0); !ok || len(batch) != 0 {
		t.Fatalf("Since(last) should be an empty ok batch, got %v ok=%v", batch, ok)
	}
	if _, ok = l.Since(11, 0); ok {
		t.Fatal("Since past the end reported ok")
	}

	l.TruncateBefore(4)
	if got := l.Base(); got != 4 {
		t.Fatalf("Base = %d, want 4", got)
	}
	if _, ok = l.Since(3, 0); ok {
		t.Fatal("Since below the truncation floor reported ok")
	}
	batch, ok = l.Since(4, 0)
	if !ok || len(batch) != 6 || batch[0].Index != 5 {
		t.Fatalf("Since(4) after truncate = %d entries ok=%v", len(batch), ok)
	}
	// Truncating past the end clamps to the newest entry.
	l.TruncateBefore(99)
	if got, last := l.Base(), l.LastIndex(); got != last {
		t.Fatalf("Base %d != LastIndex %d after over-truncate", got, last)
	}
}

func TestLogReset(t *testing.T) {
	l := NewLog()
	l.Next(1, KindJoin, nil)
	l.Reset(42, 3)
	if got := l.Base(); got != 42 {
		t.Fatalf("Base = %d, want 42", got)
	}
	if got := l.LastIndex(); got != 42 {
		t.Fatalf("LastIndex = %d, want 42", got)
	}
	if err := l.Append(Entry{Index: 43, Term: 3, Kind: KindJoin}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Index: 44, Term: 2, Kind: KindJoin}); err == nil {
		t.Fatal("append below the reset term floor accepted")
	}
}

func TestLogWatchFiresOnAppend(t *testing.T) {
	l := NewLog()
	ch := l.Watch()
	select {
	case <-ch:
		t.Fatal("watch channel closed before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	l.Next(1, KindJoin, nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not wake the watcher")
	}
}

func TestOpRoundTrip(t *testing.T) {
	in := JoinOp{
		Items:   [][]string{{"genre:jazz", "era:50s"}},
		Queries: []QueryCount{{Terms: []string{"genre:jazz"}, Count: 3}},
		Slot:    7, Cluster: 2,
	}
	out, err := DecodeOp[JoinOp](EncodeOp(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Slot != 7 || out.Cluster != 2 || len(out.Items) != 1 || len(out.Queries) != 1 {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
	if _, err := DecodeOp[JoinOp]([]byte("{nope")); err == nil {
		t.Fatal("malformed op decoded")
	}
}

func TestWireEntriesRoundTrip(t *testing.T) {
	entries := []Entry{
		{Index: 11, Term: 2, Kind: KindJoin, Data: []byte(`{"slot":1}`)},
		{Index: 12, Term: 2, Kind: KindGrants, Data: nil},
		{Index: 13, Term: 3, Kind: KindPeriodEnd, Data: []byte(`{}`)},
	}
	buf := AppendEntries(nil, 3, entries)
	rec, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != RecEntries || rec.Term != 3 {
		t.Fatalf("decoded kind=%d term=%d", rec.Kind, rec.Term)
	}
	if len(rec.Entries) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(rec.Entries), len(entries))
	}
	for i, e := range rec.Entries {
		w := entries[i]
		if e.Index != w.Index || e.Term != w.Term || e.Kind != w.Kind || !bytes.Equal(e.Data, w.Data) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, w)
		}
	}
}

func TestWireSnapshotRoundTrip(t *testing.T) {
	payload := []byte(`{"snapshot":true}`)
	buf := AppendSnapshot(nil, 4, 99, payload)
	rec, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != RecSnapshot || rec.Term != 4 || rec.Index != 99 {
		t.Fatalf("decoded %+v", rec)
	}
	if !bytes.Equal(rec.Snapshot, payload) {
		t.Fatalf("payload mismatch: %q", rec.Snapshot)
	}
}

func TestWireRejectsHostileInput(t *testing.T) {
	good := AppendEntries(nil, 1, []Entry{{Index: 1, Term: 1, Kind: KindJoin, Data: []byte("x")}})
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"bad magic", []byte{'X', 'Y', 1, 2, 0, 0}, "bad magic"},
		{"bad version", []byte{'R', 'M', 9, 2, 0, 0}, "unsupported wire version"},
		{"unknown kind", []byte{'R', 'M', 1, 7, 0}, "unknown record kind"},
		{"truncated mid-entry", good[:len(good)-1], "truncated"},
		{"trailing bytes", append(append([]byte{}, good...), 0xEE), "trailing"},
		{"hostile count", []byte{'R', 'M', 1, 2, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, "exceeds remaining"},
	}
	for _, c := range cases {
		_, err := DecodeRecord(c.data)
		if err == nil {
			t.Fatalf("%s: decode accepted", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestWireRejectsNonContiguousEntries(t *testing.T) {
	buf := AppendEntries(nil, 2, []Entry{
		{Index: 5, Term: 1, Kind: KindJoin},
		{Index: 7, Term: 1, Kind: KindJoin},
	})
	if _, err := DecodeRecord(buf); err == nil {
		t.Fatal("gapped entry batch decoded")
	}
	buf = AppendEntries(nil, 2, []Entry{
		{Index: 5, Term: 2, Kind: KindJoin},
		{Index: 6, Term: 1, Kind: KindJoin},
	})
	if _, err := DecodeRecord(buf); err == nil {
		t.Fatal("term-regressing entry batch decoded")
	}
	buf = AppendEntries(nil, 2, []Entry{{Index: 5, Term: 3, Kind: KindJoin}})
	if _, err := DecodeRecord(buf); err == nil {
		t.Fatal("entry term above record term decoded")
	}
}
