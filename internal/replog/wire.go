package replog

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file is the wire framing of GET /v1/replog/watch, following the
// viewwire discipline: versioned binary records, a catch-up kind that
// carries everything a fresh follower needs, an incremental kind that
// carries a batch of log entries, and a strict decoder — truncations,
// hostile counts and trailing bytes are errors, never panics or
// unbounded allocations — so a follower can feed it untrusted bytes.
//
//	magic "RM" | format version (1) | record kind | leader term uvarint | ...
//
// A SNAPSHOT record carries the serving state at one log position as
// an opaque payload (the service layer's catch-up document: vocabulary
// in ID order, distinct queries in QID order, every live peer) plus
// the (index, term) the follower resumes streaming from. An ENTRIES
// record carries consecutive log entries; the follower applies each in
// order and advances its position to the last one's index.

// RecordKind discriminates the wire records.
type RecordKind byte

const (
	// RecSnapshot is a full catch-up record.
	RecSnapshot RecordKind = 1
	// RecEntries is a batch of consecutive log entries.
	RecEntries RecordKind = 2
)

// WireVersion is the framing version; decoders reject others.
const WireVersion = 1

// wireMagic opens every record ("RM": replicated mutations).
var wireMagic = [2]byte{'R', 'M'}

// maxEntryData bounds one entry payload accepted by the decoder.
const maxEntryData = 1 << 26

// Record is one decoded wire record.
type Record struct {
	Kind RecordKind
	// Term is the sending leader's current term.
	Term uint64

	// Index and Snapshot are set for RecSnapshot: the log position the
	// snapshot captures and the opaque catch-up payload.
	Index    uint64
	Snapshot []byte

	// Entries is set for RecEntries.
	Entries []Entry
}

// AppendSnapshot encodes a catch-up record onto dst.
func AppendSnapshot(dst []byte, term, index uint64, payload []byte) []byte {
	dst = append(dst, wireMagic[0], wireMagic[1], WireVersion, byte(RecSnapshot))
	dst = binary.AppendUvarint(dst, term)
	dst = binary.AppendUvarint(dst, index)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendEntries encodes an entry-batch record onto dst.
func AppendEntries(dst []byte, term uint64, entries []Entry) []byte {
	dst = append(dst, wireMagic[0], wireMagic[1], WireVersion, byte(RecEntries))
	dst = binary.AppendUvarint(dst, term)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.Index)
		dst = binary.AppendUvarint(dst, e.Term)
		dst = append(dst, byte(e.Kind))
		dst = binary.AppendUvarint(dst, uint64(len(e.Data)))
		dst = append(dst, e.Data...)
	}
	return dst
}

type wireReader struct {
	data []byte
	pos  int
}

var errWireTruncated = errors.New("replog: truncated record")

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errWireTruncated
	}
	r.pos += n
	return v, nil
}

func (r *wireReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.data)-r.pos < n {
		return nil, errWireTruncated
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// DecodeRecord parses exactly one wire record; trailing bytes are an
// error.
func DecodeRecord(data []byte) (Record, error) {
	r := &wireReader{data: data}
	hdr, err := r.bytes(4)
	if err != nil {
		return Record{}, err
	}
	if hdr[0] != wireMagic[0] || hdr[1] != wireMagic[1] {
		return Record{}, fmt.Errorf("replog: bad magic %q", hdr[:2])
	}
	if hdr[2] != WireVersion {
		return Record{}, fmt.Errorf("replog: unsupported wire version %d (speaking %d)", hdr[2], WireVersion)
	}
	rec := Record{Kind: RecordKind(hdr[3])}
	if rec.Term, err = r.uvarint(); err != nil {
		return Record{}, err
	}
	switch rec.Kind {
	case RecSnapshot:
		if rec.Index, err = r.uvarint(); err != nil {
			return Record{}, err
		}
		n, err := r.uvarint()
		if err != nil {
			return Record{}, err
		}
		if rec.Snapshot, err = r.bytes(int(n)); err != nil {
			return Record{}, err
		}
	case RecEntries:
		count, err := r.uvarint()
		if err != nil {
			return Record{}, err
		}
		// Every entry occupies at least 4 encoded bytes; reject counts
		// the remaining input cannot hold.
		if rem := len(r.data) - r.pos; count > uint64(rem/4)+1 {
			return Record{}, fmt.Errorf("replog: entry count %d exceeds remaining input", count)
		}
		rec.Entries = make([]Entry, 0, count)
		prev := uint64(0)
		prevTerm := uint64(0)
		for i := uint64(0); i < count; i++ {
			var e Entry
			if e.Index, err = r.uvarint(); err != nil {
				return Record{}, err
			}
			if e.Term, err = r.uvarint(); err != nil {
				return Record{}, err
			}
			kb, err := r.bytes(1)
			if err != nil {
				return Record{}, err
			}
			e.Kind = Kind(kb[0])
			n, err := r.uvarint()
			if err != nil {
				return Record{}, err
			}
			if n > maxEntryData {
				return Record{}, fmt.Errorf("replog: entry %d payload %d bytes exceeds limit", i, n)
			}
			if e.Data, err = r.bytes(int(n)); err != nil {
				return Record{}, err
			}
			if i > 0 {
				if e.Index != prev+1 {
					return Record{}, fmt.Errorf("replog: entry %d index %d, want %d", i, e.Index, prev+1)
				}
				if e.Term < prevTerm {
					return Record{}, fmt.Errorf("replog: entry %d term %d regresses from %d", i, e.Term, prevTerm)
				}
			}
			prev, prevTerm = e.Index, e.Term
			rec.Entries = append(rec.Entries, e)
		}
		if prevTerm > rec.Term {
			return Record{}, fmt.Errorf("replog: entry term %d exceeds record term %d", prevTerm, rec.Term)
		}
	default:
		return Record{}, fmt.Errorf("replog: unknown record kind %d", rec.Kind)
	}
	if r.pos != len(r.data) {
		return Record{}, fmt.Errorf("replog: %d trailing bytes after record", len(r.data)-r.pos)
	}
	return rec, nil
}
