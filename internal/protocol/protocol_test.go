package protocol

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/workload"
)

// grouped builds a clean k-group system from singletons: group g's
// peers hold and query attribute g. Stable partitions separate groups.
func grouped(t testing.TB, groups, perGroup int) *core.Engine {
	t.Helper()
	n := groups * perGroup
	vocab := attr.NewVocab()
	ids := make([]attr.ID, groups)
	for g := range ids {
		ids[g] = vocab.Intern(string(rune('a' + g)))
	}
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	for i := 0; i < n; i++ {
		g := i % groups
		p := peer.New(i)
		p.SetItems([]attr.Set{attr.NewSet(ids[g]), attr.NewSet(ids[g])})
		peers[i] = p
		wl.Add(i, attr.NewSet(ids[g]), 2)
	}
	return core.New(peers, wl, cluster.NewSingletons(n), cluster.LinearTheta(), 1)
}

func TestProtocolConvergesAndSeparatesGroups(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	rpt := r.Run()
	if !rpt.Converged {
		t.Fatalf("did not converge: %+v", rpt)
	}
	if rpt.FinalClusters != 4 {
		t.Fatalf("clusters=%d want 4 (sizes %v)", rpt.FinalClusters, eng.Config().Sizes())
	}
	if rpt.FinalSCost >= rpt.InitialSCost {
		t.Fatalf("cost did not improve: %g -> %g", rpt.InitialSCost, rpt.FinalSCost)
	}
	// At the separated partition the recall cost is zero: each peer
	// pays only membership 6/24.
	if want := 6.0 / 24; !within(rpt.FinalSCost, want, 1e-9) {
		t.Fatalf("final SCost=%g want %g", rpt.FinalSCost, want)
	}
	if ok, w := eng.IsNash(0.001); !ok {
		t.Fatalf("final state not Nash: %+v", w)
	}
}

func TestAtMostOneRequestPerClusterAndLockRule(t *testing.T) {
	eng := grouped(t, 3, 5)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 50, AllowNewClusters: true})
	r.BeginPeriod()
	for round := 1; round <= 50; round++ {
		before := eng.Config().NumNonEmpty()
		rr := r.RunRound(round)
		if rr.Requests > before {
			t.Fatalf("round %d: %d requests from %d clusters", round, rr.Requests, before)
		}
		// Lock rule over the granted sequence: once a move c_i -> c_j is
		// granted, no later grant may join c_i or leave c_j.
		joinLocked := map[cluster.CID]bool{}
		leaveLocked := map[cluster.CID]bool{}
		for _, mv := range rr.Moves {
			if leaveLocked[mv.From] {
				t.Fatalf("round %d: grant leaves leave-locked cluster %d", round, mv.From)
			}
			if joinLocked[mv.To] {
				t.Fatalf("round %d: grant joins join-locked cluster %d", round, mv.To)
			}
			joinLocked[mv.From] = true
			leaveLocked[mv.To] = true
		}
		// Every granted gain exceeds epsilon.
		for _, mv := range rr.Moves {
			if mv.Gain <= 0.001 {
				t.Fatalf("round %d: granted gain %g <= epsilon", round, mv.Gain)
			}
		}
		if rr.Requests == 0 {
			return
		}
	}
	t.Fatal("never quiesced")
}

func TestSourceClusterUniquePerRound(t *testing.T) {
	eng := grouped(t, 4, 5)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 50, AllowNewClusters: false})
	r.BeginPeriod()
	for round := 1; round <= 50; round++ {
		rr := r.RunRound(round)
		seen := map[cluster.CID]bool{}
		for _, mv := range rr.Moves {
			if seen[mv.From] {
				t.Fatalf("round %d: two grants out of cluster %d", round, mv.From)
			}
			seen[mv.From] = true
		}
		if rr.Requests == 0 {
			return
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report {
		eng := grouped(t, 4, 6)
		return NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true}).Run()
	}
	a, b := run(), run()
	if a.RoundsRun != b.RoundsRun || a.Messages != b.Messages ||
		a.FinalSCost != b.FinalSCost || a.FinalClusters != b.FinalClusters {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
	for i := range a.Rounds {
		if a.Rounds[i].Granted != b.Rounds[i].Granted {
			t.Fatalf("round %d granted differs", i+1)
		}
	}
}

func TestAllowNewClustersFalseKeepsClusterSet(t *testing.T) {
	eng := grouped(t, 3, 4)
	// Start from two clusters so there is pressure to split.
	for p := 0; p < 12; p++ {
		eng.Move(p, cluster.CID(p%2))
	}
	initial := map[cluster.CID]bool{}
	for _, c := range eng.Config().NonEmpty() {
		initial[c] = true
	}
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 60, AllowNewClusters: false})
	r.Run()
	for _, c := range eng.Config().NonEmpty() {
		if !initial[c] {
			t.Fatalf("new cluster %d appeared despite AllowNewClusters=false", c)
		}
	}
}

func TestMessagesAccounted(t *testing.T) {
	eng := grouped(t, 3, 5)
	rpt := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 60, AllowNewClusters: true}).Run()
	if rpt.Messages <= 0 {
		t.Fatal("no messages counted")
	}
	sum := 0
	for _, rr := range rpt.Rounds {
		sum += rr.Messages
	}
	if sum != rpt.Messages {
		t.Fatalf("message total %d != per-round sum %d", rpt.Messages, sum)
	}
}

func TestEffectiveRounds(t *testing.T) {
	eng := grouped(t, 2, 4)
	rpt := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 60, AllowNewClusters: true}).Run()
	if !rpt.Converged {
		t.Fatal("expected convergence")
	}
	if rpt.EffectiveRounds() != rpt.RoundsRun-1 {
		t.Fatalf("EffectiveRounds=%d RoundsRun=%d", rpt.EffectiveRounds(), rpt.RoundsRun)
	}
}

func TestCostTrajectoryShape(t *testing.T) {
	eng := grouped(t, 3, 4)
	rpt := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 60, AllowNewClusters: true}).Run()
	rounds, sc, wc := rpt.CostTrajectory()
	if len(rounds) != rpt.RoundsRun+1 || len(sc) != len(rounds) || len(wc) != len(rounds) {
		t.Fatalf("trajectory lengths %d/%d/%d rounds=%d", len(rounds), len(sc), len(wc), rpt.RoundsRun)
	}
	if rounds[0] != 0 || sc[0] != rpt.InitialSCost {
		t.Fatal("trajectory must start at the initial cost")
	}
	if sc[len(sc)-1] != rpt.FinalSCost {
		t.Fatal("trajectory must end at the final cost")
	}
}

func TestEpsilonStopsEarly(t *testing.T) {
	strict := grouped(t, 4, 6)
	loose := grouped(t, 4, 6)
	rs := NewRunner(strict, core.NewSelfish(), Options{Epsilon: 0.0001, MaxRounds: 200, AllowNewClusters: true}).Run()
	rl := NewRunner(loose, core.NewSelfish(), Options{Epsilon: 0.3, MaxRounds: 200, AllowNewClusters: true}).Run()
	if !rl.Converged {
		t.Fatal("loose run did not converge")
	}
	if rl.EffectiveRounds() > rs.EffectiveRounds() {
		t.Fatalf("higher epsilon ran longer: %d > %d", rl.EffectiveRounds(), rs.EffectiveRounds())
	}
}

func TestNewClusterCreationOnDrift(t *testing.T) {
	// Eight peers, each holding and querying its own private attribute
	// (no peer needs any other). Half start in cluster 0, half in
	// cluster 1; the period baseline is taken there (membership cost
	// θ(4)/8 = 0.5 each). Then cluster 1's peers are forced into
	// cluster 0 — membership doubles with no recall to gain, no other
	// non-empty cluster exists, and being alone is far cheaper, so the
	// drift rule of §3.2 must fire and found new clusters.
	vocab := attr.NewVocab()
	n := 8
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	assign := make([]cluster.CID, n)
	for i := 0; i < n; i++ {
		own := vocab.Intern(string(rune('a' + i)))
		p := peer.New(i)
		p.SetItems([]attr.Set{attr.NewSet(own)})
		peers[i] = p
		wl.Add(i, attr.NewSet(own), 2)
		assign[i] = cluster.CID(i / 4) // 0,0,0,0,1,1,1,1
	}
	eng := core.New(peers, wl, cluster.FromAssignment(assign), cluster.LinearTheta(), 1)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 30, AllowNewClusters: true})
	r.BeginPeriod()

	// The overlay degrades: cluster 1's peers all pile into cluster 0.
	for i := 4; i < n; i++ {
		eng.Move(i, 0)
	}

	sawNew := false
	for round := 1; round <= 30; round++ {
		rr := r.RunRound(round)
		for _, mv := range rr.Moves {
			if mv.NewCluster {
				sawNew = true
			}
		}
		if rr.Requests == 0 {
			break
		}
	}
	if !sawNew {
		t.Fatal("no new cluster founded despite drift")
	}
	if eng.Config().NumNonEmpty() < 2 {
		t.Fatalf("expected a split, sizes %v", eng.Config().Sizes())
	}
}

func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// baselineProbe records the baseline each peer decides with.
type baselineProbe struct {
	got map[int]float64
}

func (b *baselineProbe) Name() string { return "probe" }

func (b *baselineProbe) Decide(e *core.Engine, p int, baseline float64, _ bool) core.Decision {
	b.got[p] = baseline
	return core.Decision{Peer: p, From: e.Config().ClusterOf(p)}
}

// TestMidPeriodJoinGetsNaNBaseline pins the slot-generation guard: a
// newcomer that joins mid-period — whether into a reused slot or a
// fresh one — must decide with a NaN baseline, never the departed
// peer's snapshot.
func TestMidPeriodJoinGetsNaNBaseline(t *testing.T) {
	eng := grouped(t, 3, 4)
	probe := &baselineProbe{got: map[int]float64{}}
	r := NewRunner(eng, probe, Options{Epsilon: 0.001, MaxRounds: 10, AllowNewClusters: true})
	r.BeginPeriod()

	// Peer 5 departs; a newcomer reuses its slot mid-period. A second
	// newcomer takes a fresh slot beyond the baseline's length.
	eng.RemovePeer(5)
	joiner := peer.New(-1)
	joiner.SetItems([]attr.Set{attr.NewSet(0)})
	if pid := eng.AddPeer(joiner, []attr.Set{attr.NewSet(0)}, []int{2}, cluster.None); pid != 5 {
		t.Fatalf("joiner got slot %d, want reused slot 5", pid)
	}
	fresh := peer.New(-1)
	fresh.SetItems([]attr.Set{attr.NewSet(1)})
	freshID := eng.AddPeer(fresh, []attr.Set{attr.NewSet(1)}, []int{2}, cluster.None)

	r.RunRound(1)
	for _, pid := range []int{5, freshID} {
		got, ok := probe.got[pid]
		if !ok {
			t.Fatalf("peer %d never decided", pid)
		}
		if !math.IsNaN(got) {
			t.Errorf("mid-period joiner %d decided with baseline %g, want NaN", pid, got)
		}
	}
	// A peer present at the snapshot keeps its real baseline.
	if got := probe.got[0]; math.IsNaN(got) {
		t.Error("pre-existing peer 0 lost its baseline")
	}
}

// churnNovel joins then retires a throwaway peer whose workload is the
// novel single-attribute query `id`, leaving a dead QID behind.
func churnNovel(eng *core.Engine, id attr.ID) {
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(id)})
	pid := eng.AddPeer(pr, []attr.Set{attr.NewSet(id)}, []int{3}, cluster.None)
	eng.RemovePeer(pid)
}

// TestMidPeriodCompactionIsInvisible pins the compaction/protocol
// contract: compacting dead QIDs between rounds — mid-period, without
// re-snapshotting baselines — changes nothing about the run. Two
// identical systems churn identically; one compacts after round 1;
// every subsequent round must grant the same moves at the same costs.
func TestMidPeriodCompactionIsInvisible(t *testing.T) {
	mk := func() (*core.Engine, *Runner) {
		eng := grouped(t, 3, 5)
		for i := 0; i < 20; i++ {
			churnNovel(eng, attr.ID(1000+i))
		}
		return eng, NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 50, AllowNewClusters: true})
	}
	engA, ra := mk()
	engB, rb := mk()
	ra.BeginPeriod()
	rb.BeginPeriod()
	ra.RunRound(1)
	rb.RunRound(1)

	if engB.DeadQueries(0) == 0 {
		t.Fatal("churn left no dead queries")
	}
	if engB.Compact(0) == 0 {
		t.Fatal("compaction removed nothing")
	}
	// Reclaimed QIDs get reused by fresh novel queries on both sides;
	// on B they overlay compacted rows, on A they extend the arrays.
	churnNovel(engA, 2000)
	churnNovel(engB, 2000)

	for round := 2; round <= 10; round++ {
		rrA := ra.RunRound(round)
		rrB := rb.RunRound(round)
		if rrA.SCost != rrB.SCost || rrA.WCost != rrB.WCost {
			t.Fatalf("round %d: costs diverged: scost %v vs %v, wcost %v vs %v",
				round, rrA.SCost, rrB.SCost, rrA.WCost, rrB.WCost)
		}
		if len(rrA.Moves) != len(rrB.Moves) {
			t.Fatalf("round %d: %d vs %d moves", round, len(rrA.Moves), len(rrB.Moves))
		}
		for i := range rrA.Moves {
			if rrA.Moves[i] != rrB.Moves[i] {
				t.Fatalf("round %d move %d: %+v vs %+v", round, i, rrA.Moves[i], rrB.Moves[i])
			}
		}
	}
}
