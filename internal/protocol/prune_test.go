package protocol

import (
	"math"
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
)

// twinSystems builds two byte-identical engines and runners, one on
// the default pruned phase-1 path and one forced exhaustive through
// Options.ExactDecide. Because engine mutations are deterministic in
// their arguments (slot reuse included), replaying the same op
// schedule on both keeps them in lockstep — unless pruning changes a
// decision, which is exactly what the callers assert never happens.
func twinSystems(t testing.TB, groups, perGroup int, strat func() core.Strategy, w int) (*core.Engine, *core.Engine, *Runner, *Runner) {
	engP := grouped(t, groups, perGroup)
	engX := grouped(t, groups, perGroup)
	opts := Options{Epsilon: 0.001, MaxRounds: 60, AllowNewClusters: true, Workers: w}
	rp := NewRunner(engP, strat(), opts)
	opts.ExactDecide = true
	rx := NewRunner(engX, strat(), opts)
	return engP, engX, rp, rx
}

// twinChurn applies one random membership/workload mutation to both
// engines with identical arguments. Argument choices derive only from
// rng and engP's state; lockstep (checked by the callers) guarantees
// engX agrees on liveness, so the op is valid on both.
func twinChurn(engP, engX *core.Engine, rng *rand.Rand, novel *attr.ID) {
	live := make([]int, 0, engP.NumSlots())
	for pid := 0; pid < engP.NumSlots(); pid++ {
		if engP.IsLive(pid) {
			live = append(live, pid)
		}
	}
	switch rng.IntN(5) {
	case 0: // join, half the time with a never-seen query (fresh QID row)
		q := attr.NewSet(attr.ID(rng.IntN(4)))
		if rng.IntN(2) == 0 {
			*novel++
			q = attr.NewSet(*novel)
		}
		items := attr.NewSet(attr.ID(rng.IntN(4)))
		cnt := 1 + rng.IntN(3)
		for _, eng := range []*core.Engine{engP, engX} {
			pr := peer.New(-1)
			pr.SetItems([]attr.Set{items})
			eng.AddPeer(pr, []attr.Set{q}, []int{cnt}, cluster.None)
		}
	case 1: // leave
		if len(live) > 2 {
			pid := live[rng.IntN(len(live))]
			engP.RemovePeer(pid)
			engX.RemovePeer(pid)
		}
	case 2: // out-of-band move (a version-bump site rounds never take)
		pid := live[rng.IntN(len(live))]
		to := cluster.CID(rng.IntN(engP.Config().Cmax()))
		engP.Move(pid, to)
		engX.Move(pid, to)
	case 3: // workload compaction (QID remap, prune-epoch bump)
		engP.Compact(0)
		engX.Compact(0)
	case 4: // quiet step
	}
}

// requireLockstep fails unless the two engines hold bit-identical
// configurations and costs.
func requireLockstep(t *testing.T, engP, engX *core.Engine, stage string) {
	t.Helper()
	if engP.NumSlots() != engX.NumSlots() {
		t.Fatalf("%s: slot counts diverged: pruned %d, exact %d", stage, engP.NumSlots(), engX.NumSlots())
	}
	cfgP, cfgX := engP.Config(), engX.Config()
	for pid := 0; pid < engP.NumSlots(); pid++ {
		if engP.IsLive(pid) != engX.IsLive(pid) {
			t.Fatalf("%s: liveness diverged at peer %d", stage, pid)
		}
		if engP.IsLive(pid) && cfgP.ClusterOf(pid) != cfgX.ClusterOf(pid) {
			t.Fatalf("%s: peer %d in cluster %d pruned, %d exact",
				stage, pid, cfgP.ClusterOf(pid), cfgX.ClusterOf(pid))
		}
	}
	if pb, xb := math.Float64bits(engP.SCostNormalized()), math.Float64bits(engX.SCostNormalized()); pb != xb {
		t.Fatalf("%s: SCost bits diverged: pruned %x, exact %x", stage, pb, xb)
	}
}

// TestPrunedDecideMatchesExact is the end-to-end acceptance oracle for
// the sublinear phase-1: the default pruned Runner and an ExactDecide
// Runner, driven through identical randomized join/leave/move/compact/
// reform interleavings, must produce byte-identical period reports and
// final configurations — for every strategy, step budget and worker
// count. Run under -race this also re-checks the frozen-engine
// concurrent-read contract of the pruned per-worker evaluators.
func TestPrunedDecideMatchesExact(t *testing.T) {
	strategies := []struct {
		name string
		mk   func() core.Strategy
	}{
		{"selfish", func() core.Strategy { return core.NewSelfish() }},
		{"altruistic", func() core.Strategy { return core.NewAltruistic() }},
		{"hybrid", func() core.Strategy { return core.NewHybrid(0.5) }},
	}
	budgets := []int{1, 3, 0} // 0 = whole period in one step
	workers := []int{1, 2, runtime.GOMAXPROCS(0) + 1}
	for _, st := range strategies {
		for seed := uint64(1); seed <= 3; seed++ {
			for _, budget := range budgets {
				for _, w := range workers {
					rng := rand.New(rand.NewPCG(seed, 0xd1)) // one schedule per (seed,budget,w)
					engP, engX, rp, rx := twinSystems(t, 4, 5, st.mk, w)
					novel := attr.ID(6000 + 100*seed)
					for period := 0; period < 3; period++ {
						pp, px := rp.Begin(), rx.Begin()
						for {
							doneP := pp.Step(budget)
							doneX := px.Step(budget)
							if doneP != doneX {
								t.Fatalf("%s seed %d budget %d workers %d period %d: pruned done=%v, exact done=%v",
									st.name, seed, budget, w, period, doneP, doneX)
							}
							if doneP {
								break
							}
							twinChurn(engP, engX, rng, &novel)
						}
						if got, want := pp.Report(), px.Report(); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s seed %d budget %d workers %d period %d: reports diverged:\npruned %+v\nexact  %+v",
								st.name, seed, budget, w, period, got, want)
						}
						requireLockstep(t, engP, engX, st.name)
					}
					ssP, ssX := rp.ScanStats(), rx.ScanStats()
					if ssP.Evaluated != ssP.Replayed+ssP.Shortlist+ssP.Fallback+ssP.Full {
						t.Fatalf("%s: pruned scan stats don't add up: %+v", st.name, ssP)
					}
					if ssX.Replayed != 0 || ssX.Shortlist != 0 {
						t.Fatalf("%s: ExactDecide runner took pruned paths: %+v", st.name, ssX)
					}
				}
			}
		}
	}
}

// FuzzPrunedDecide fuzzes the version-bump surface: an arbitrary byte
// string decodes to an interleaving of joins, leaves, moves,
// compactions, reformulation rounds and period boundaries, applied to
// a pruned and an exhaustive twin. Any divergence — in a round report
// or in the final configuration — means a dirty-tracking bump was
// missed or a shortlist bound was inadmissible.
func FuzzPrunedDecide(f *testing.F) {
	f.Add([]byte{0x04, 0x00, 0x04, 0x01})                                                 // two plain rounds
	f.Add([]byte{0x00, 0x03, 0x04, 0x00, 0x01, 0x00, 0x04, 0x01})                         // join, round, leave, round
	f.Add([]byte{0x02, 0x07, 0x03, 0x00, 0x04, 0x02, 0x05, 0x00})                         // move, compact, round, new period
	f.Add([]byte{0x00, 0x01, 0x00, 0x02, 0x02, 0x09, 0x04, 0x00, 0x04, 0x01, 0x04, 0x02}) // churn burst then quiescent rounds (replay path)
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 128 {
			ops = ops[:128]
		}
		engP := grouped(t, 3, 4)
		engX := grouped(t, 3, 4)
		opts := Options{Epsilon: 0.001, MaxRounds: 40, AllowNewClusters: true, Workers: 2}
		rp := NewRunner(engP, core.NewSelfish(), opts)
		opts.ExactDecide = true
		rx := NewRunner(engX, core.NewSelfish(), opts)
		novel := attr.ID(7000)
		round := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], int(ops[i+1])
			live := make([]int, 0, engP.NumSlots())
			for pid := 0; pid < engP.NumSlots(); pid++ {
				if engP.IsLive(pid) {
					live = append(live, pid)
				}
			}
			switch op % 6 {
			case 0: // join
				q := attr.NewSet(attr.ID(arg % 3))
				if arg&1 == 1 {
					novel++
					q = attr.NewSet(novel)
				}
				for _, eng := range []*core.Engine{engP, engX} {
					pr := peer.New(-1)
					pr.SetItems([]attr.Set{attr.NewSet(attr.ID(arg % 3))})
					eng.AddPeer(pr, []attr.Set{q}, []int{1 + arg%3}, cluster.None)
				}
			case 1: // leave
				if len(live) > 2 {
					pid := live[arg%len(live)]
					engP.RemovePeer(pid)
					engX.RemovePeer(pid)
				}
			case 2: // move
				pid := live[arg%len(live)]
				to := cluster.CID(arg % engP.Config().Cmax())
				engP.Move(pid, to)
				engX.Move(pid, to)
			case 3: // compact
				engP.Compact(0)
				engX.Compact(0)
			case 4: // reformulation round
				round++
				rrP := rp.RunRound(round)
				rrX := rx.RunRound(round)
				if !reflect.DeepEqual(rrP, rrX) {
					t.Fatalf("op %d: round reports diverged:\npruned %+v\nexact  %+v", i, rrP, rrX)
				}
			case 5: // period boundary: fresh baselines
				rp.BeginPeriod()
				rx.BeginPeriod()
			}
		}
		requireLockstep(t, engP, engX, "fuzz")
	})
}
