package protocol

import (
	"math"

	"repro/internal/cluster"
)

// periodPhase is the Period state machine's current phase.
type periodPhase uint8

const (
	phaseDecide periodPhase = iota
	phaseGrant
	phaseDone
)

func (p periodPhase) String() string {
	switch p {
	case phaseDecide:
		return "decide"
	case phaseGrant:
		return "grant"
	case phaseDone:
		return "done"
	}
	return "unknown"
}

// Period is a resumable maintenance period: the same two-phase rounds
// Runner.Run executes, re-cut into bounded steps so a serving layer
// can interleave joins, leaves and workload compactions between steps
// instead of stalling them behind a whole period. Each Step performs
// at most `budget` work units — a phase-1 decide scan of one cluster
// or a phase-2 grant service each count one — and the caller decides
// what happens between steps (release a mutex, republish a read view,
// admit a peer).
//
// With no mutations between steps a Period is byte-identical to
// Runner.Run for every budget and Options.Workers value: same moves,
// same costs, same message counts, same report. With mutations
// interleaved, the period tolerates them: the round's cluster
// worklist is a snapshot (clusters emptied before their scan are
// skipped; clusters born mid-round are picked up next round), the
// baseline machinery already NaNs-out newcomers via slot generations,
// requests staled by a departure are dropped at grant time, and the
// lock tables grow — preserving content — when joins add cluster
// slots mid-round.
//
// A Period is owned by its Runner: Begin recycles one Period's
// storage, and BeginPeriod, Run or a later Begin invalidate an
// in-progress one (its next Step reports done without further work).
// The Report of a finished period shares that recycled storage —
// callers that retain it across periods must copy Rounds.
type Period struct {
	r     *Runner
	phase periodPhase
	round int
	steps int

	// worklist is the round's snapshot of non-empty clusters; next
	// indexes into it during phaseDecide and into requests during
	// phaseGrant. scanned counts clusters still non-empty at scan
	// time — the representatives that broadcast at the end of phase 1.
	worklist []cluster.CID
	next     int
	scanned  int
	requests []Request
	// batch is the per-step scratch of still-non-empty clusters.
	batch []cluster.CID

	cur     RoundReport
	rpt     Report
	granted int // moves granted in finished rounds
}

// Begin starts a resumable maintenance period, snapshotting the
// period baseline exactly like Run. Only one period may be in
// progress per Runner at a time: a later Begin, Run, RunRound or
// BeginPeriod supersedes an unfinished period — it is frozen at done
// (further Steps are no-ops, its partial Report stays readable) and
// the new period gets fresh storage. A period that finished normally
// has its storage recycled by the next Begin instead, which is what
// keeps quiescent stepping allocation-free; its Report therefore
// shares that storage — copy Rounds before the next Begin if
// retained.
func (r *Runner) Begin() *Period {
	prev := r.period
	superseded := prev != nil && prev.phase != phaseDone
	r.BeginPeriod()
	p := prev
	if p == nil || superseded {
		p = &Period{}
	}
	r.period = p
	p.r = r
	p.round = 1
	p.steps = 0
	p.granted = 0
	p.rpt = Report{
		Rounds:       p.rpt.Rounds[:0],
		InitialSCost: r.eng.SCostNormalized(),
		InitialWCost: r.eng.WCostNormalized(),
	}
	p.beginRound()
	return p
}

// beginRound snapshots the round's worklist and resets the round
// state. Reused storage keeps steady-state stepping allocation-free.
func (p *Period) beginRound() {
	r := p.r
	r.growLocks()
	p.worklist = r.eng.Config().AppendNonEmpty(p.worklist[:0])
	p.next, p.scanned = 0, 0
	p.requests = p.requests[:0]
	p.cur = RoundReport{Round: p.round}
	p.phase = phaseDecide
}

// Step executes at most budget work units and reports whether the
// period has finished. budget <= 0 means unbounded: the single call
// completes the whole period, which is Run re-spelled. Step may cross
// phase and round boundaries within one budget; it never blocks on
// anything but the work itself.
func (p *Period) Step(budget int) bool {
	if p.phase == phaseDone {
		return true
	}
	if budget <= 0 {
		budget = math.MaxInt
	}
	p.steps++
	for budget > 0 && p.phase != phaseDone {
		switch p.phase {
		case phaseDecide:
			n := len(p.worklist) - p.next
			if n > budget {
				n = budget
			}
			if n > 0 {
				p.decideSlice(p.worklist[p.next : p.next+n])
				p.next += n
				budget -= n
			}
			if p.next == len(p.worklist) {
				p.finishDecide()
			}
		case phaseGrant:
			// Joins between steps may have added cluster slots; the
			// lock tables must cover any grant target.
			p.r.growLocks()
			for budget > 0 && p.next < len(p.requests) {
				p.r.serve(p.requests[p.next], &p.cur)
				p.next++
				budget--
			}
			if p.next == len(p.requests) {
				p.finishRound()
			}
		}
	}
	return p.phase == phaseDone
}

// decideSlice scans one budget slice of the round worklist. Clusters
// emptied by departures since the worklist snapshot no longer have
// members (or a representative) and are skipped; each still counts
// one budget unit, which only makes steps cheaper than their budget.
func (p *Period) decideSlice(clusters []cluster.CID) {
	r := p.r
	cfg := r.eng.Config()
	p.batch = p.batch[:0]
	for _, c := range clusters {
		if cfg.Size(c) > 0 {
			p.batch = append(p.batch, c)
		}
	}
	r.decideBatch(p.batch)
	p.scanned += len(p.batch)
	for i := range p.batch {
		p.cur.Messages += r.bestMsgs[i]
		if !math.IsInf(r.bests[i].Gain, -1) {
			p.requests = append(p.requests, r.bests[i])
		}
	}
}

// finishDecide closes phase 1: broadcast accounting over the scanned
// representatives, then the grant order.
func (p *Period) finishDecide() {
	if p.scanned > 1 {
		p.cur.Messages += p.scanned * (p.scanned - 1)
	}
	p.cur.Requests = len(p.requests)
	sortRequests(p.requests)
	p.next = 0
	p.phase = phaseGrant
}

// finishRound closes the round, appends its report, and either starts
// the next round or finishes the period (convergence or MaxRounds).
func (p *Period) finishRound() {
	r := p.r
	r.resetLocks(&p.cur)
	p.cur.Granted = len(p.cur.Moves)
	p.cur.SCost = r.eng.SCostNormalized()
	p.cur.WCost = r.eng.WCostNormalized()
	p.granted += len(p.cur.Moves)
	p.rpt.Rounds = append(p.rpt.Rounds, p.cur)
	p.rpt.Messages += p.cur.Messages
	if p.cur.Requests == 0 {
		p.rpt.Converged = true
		p.finish()
		return
	}
	if p.round >= r.opts.MaxRounds {
		p.finish()
		return
	}
	p.round++
	p.beginRound()
}

// finish seals the period report.
func (p *Period) finish() {
	r := p.r
	p.rpt.RoundsRun = len(p.rpt.Rounds)
	p.rpt.FinalSCost = r.eng.SCostNormalized()
	p.rpt.FinalWCost = r.eng.WCostNormalized()
	p.rpt.FinalClusters = r.eng.Config().NumNonEmpty()
	p.cur = RoundReport{}
	p.phase = phaseDone
}

// Abort cancels an in-progress period: grant-phase locks are
// released, the partial report is sealed (Converged false) and the
// runner may Begin or Run afresh. Moves already granted stay applied —
// they were real relocations.
func (p *Period) Abort() {
	if p.phase == phaseDone {
		return
	}
	p.r.resetLocks(&p.cur)
	p.granted += len(p.cur.Moves)
	p.finish()
}

// Done reports whether the period has finished (or was aborted or
// invalidated by a newer period).
func (p *Period) Done() bool { return p.phase == phaseDone }

// Report returns the period report: complete once Done, partial up to
// the last finished round otherwise. Its Rounds share runner-recycled
// storage — copy them before the next Begin if retained.
func (p *Period) Report() Report { return p.rpt }

// Moves returns the cumulative relocations granted so far, including
// the in-progress round — the signal a serving layer republishes its
// read view on.
func (p *Period) Moves() int { return p.granted + len(p.cur.Moves) }

// AppendGrantsSince appends the relocations granted after the first n
// — in grant order, across round boundaries — onto dst and returns it.
// n is a cursor in the flat sequence Moves() counts, which is how a
// serving layer drains each step's grants exactly once (replication
// logs them as they happen). The appended Requests carry the resolved
// target cluster: serve rewrites To before recording a move, so a
// NewCluster request appears here with the concrete cluster it opened.
// Only grants still enumerable are returned; an aborted round's
// in-flight moves are counted by Moves but no longer walkable, so
// drain before Abort.
func (p *Period) AppendGrantsSince(dst []Request, n int) []Request {
	for i := range p.rpt.Rounds {
		moves := p.rpt.Rounds[i].Moves
		if n >= len(moves) {
			n -= len(moves)
			continue
		}
		dst = append(dst, moves[n:]...)
		n = 0
	}
	if n < len(p.cur.Moves) {
		dst = append(dst, p.cur.Moves[n:]...)
	}
	return dst
}

// Progress describes how far an in-progress period has advanced.
type Progress struct {
	// Round is the 1-based current round (the last one when done).
	Round int
	// Phase is "decide", "grant" or "done".
	Phase string
	// Pos/Total locate the phase: clusters scanned of the round
	// worklist during decide, requests served during grant.
	Pos, Total int
	// Requests counts the current round's collected requests.
	Requests int
	// Granted counts moves granted over the whole period so far.
	Granted int
	// Steps counts Step calls so far.
	Steps int
	// Phase-1 evaluation-outcome counters over the period so far (see
	// core.ScanStats): peers evaluated, answered by decision replay
	// (skipped clean), resolved from the candidate shortlist, shortlist
	// probes whose bound forced the full scan, and exhaustive scans.
	Scanned       int
	SkippedClean  int
	ShortlistHits int
	Fallbacks     int
	FullScans     int
}

// Progress reports the period's current position.
func (p *Period) Progress() Progress {
	ss := p.r.scanStats
	pr := Progress{
		Round:         p.round,
		Phase:         p.phase.String(),
		Pos:           p.next,
		Requests:      len(p.requests),
		Granted:       p.Moves(),
		Steps:         p.steps,
		Scanned:       ss.Evaluated,
		SkippedClean:  ss.Replayed,
		ShortlistHits: ss.Shortlist,
		Fallbacks:     ss.Fallback,
		FullScans:     ss.Full,
	}
	switch p.phase {
	case phaseDecide:
		pr.Total = len(p.worklist)
	case phaseGrant:
		pr.Total = len(p.requests)
	}
	return pr
}
