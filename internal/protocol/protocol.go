// Package protocol implements the paper's cluster reformulation
// protocol (§3.2). The protocol runs in rounds of two phases. In phase
// one, every peer evaluates its gain factor under its relocation
// strategy and reports it to its cluster representative; each
// representative forwards the single highest-gain relocation request of
// its cluster to all other representatives (clusters with no request
// still announce their cid). In phase two, every representative sorts
// the collected requests by decreasing gain and serves them under the
// cycle-avoiding lock rule: granting a move c_i -> c_j locks c_i with
// direction "leave" and c_j with direction "join" — for the rest of the
// round no peer may join c_i or leave c_j. A request is issued only
// when its gain exceeds the threshold ε (the stop condition), and the
// protocol ends when no representative receives a relocation request.
package protocol

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Request is a relocation request exchanged between representatives.
type Request struct {
	// Peer is the relocating peer; From its cluster; To the target
	// (filled at grant time for NewCluster requests).
	Peer     int
	From, To cluster.CID
	// Gain is the strategy gain the request is sorted by.
	Gain float64
	// NewCluster marks a request for an empty cluster slot.
	NewCluster bool
	// gen is Peer's slot generation when the request was computed. A
	// stepped period admits joins and leaves between the decide scan
	// and the grant service; a request whose peer departed (or whose
	// slot was reused by a newcomer) in that window is detected by the
	// generation mismatch and dropped instead of relocating a stranger.
	gen uint32
}

// RoundReport captures one protocol round.
type RoundReport struct {
	// Round is the 1-based round number.
	Round int
	// Requests is the number of relocation requests issued (at most
	// one per non-empty cluster).
	Requests int
	// Granted is the number of requests served after lock filtering.
	Granted int
	// Moves lists the granted relocations in service order.
	Moves []Request
	// SCost and WCost are the normalized global costs after the round.
	SCost, WCost float64
	// Messages is the number of protocol messages exchanged this round
	// (gain reports, request broadcasts, grant coordination).
	Messages int
}

// Report summarizes a full protocol run.
type Report struct {
	// Rounds holds one entry per executed round.
	Rounds []RoundReport
	// Converged is true when the run stopped because no requests were
	// issued (as opposed to hitting MaxRounds).
	Converged bool
	// RoundsRun is len(Rounds).
	RoundsRun int
	// Messages is the total message count.
	Messages int
	// InitialSCost/InitialWCost are the normalized costs before round 1.
	InitialSCost, InitialWCost float64
	// FinalSCost/FinalWCost are the normalized costs at termination.
	FinalSCost, FinalWCost float64
	// FinalClusters is the number of non-empty clusters at termination.
	FinalClusters int
}

// Options configure a Runner.
type Options struct {
	// Epsilon is the gain threshold ε below which no request is issued
	// (the paper's stop condition; its experiments use 0.001).
	Epsilon float64
	// MaxRounds caps the run for configurations that never converge
	// (the paper's uniform scenario).
	MaxRounds int
	// AllowNewClusters enables the empty-cluster creation rule of
	// §3.2. The update experiments of §4.2 keep the cluster count
	// fixed and disable it.
	AllowNewClusters bool
	// Workers bounds the phase-1 decide worker pool. Decide is
	// side-effect-free, so the per-cluster best requests are computed
	// in parallel — each worker holding a private core.Evaluator over
	// the frozen engine — and merged in worklist order under the total
	// (gain desc, peer asc) tie-break, making every report
	// byte-identical to the serial scan for any value. 0 or 1 scans
	// serially; values above 1 require the strategy to implement
	// core.EvalStrategy (the built-in strategies do) and quietly fall
	// back to serial otherwise.
	Workers int
	// ExactDecide disables the sublinear phase-1 machinery — dirty
	// tracking, top-k candidate shortlists, decision replay — and scans
	// every peer against every non-empty cluster exhaustively, as the
	// paper specifies the protocol. The pruned path is byte-identical
	// by construction (strict bounds, ties fall back to the full scan),
	// so this is an escape hatch and the oracle the property suite
	// compares against, not a correctness knob.
	ExactDecide bool
}

// DefaultOptions mirror the paper's experimental setting.
func DefaultOptions() Options {
	return Options{Epsilon: 0.001, MaxRounds: 300, AllowNewClusters: true}
}

// Runner drives the reformulation protocol over a core engine. It owns
// reusable per-round scratch (request list, lock tables, non-empty
// cluster list), so steady-state rounds allocate only their report
// data. A Runner, like its engine, is not safe for concurrent use.
//
// Workload compaction (Engine.Compact) may run mid-period: it
// preserves every individual cost exactly, so the per-peer baselines
// the drift rule compares against stay valid, and the runner keys no
// state by QID — the engine remaps its own QID-indexed aggregates, so
// a QID reused by a later novel query can never inherit protocol
// state from the query that previously held it (the same hazard the
// per-slot join generations solve for reused peer slots).
type Runner struct {
	eng      *core.Engine
	strategy core.Strategy
	opts     Options

	// baseline records each peer's individual cost at the start of the
	// period; the drift rule for new-cluster creation compares against
	// it. baselineGen records each slot's join generation at snapshot
	// time: a slot reused by a newcomer mid-period carries a different
	// generation, so the newcomer never inherits the departed peer's
	// baseline.
	baseline    []float64
	baselineGen []uint32

	// Per-round scratch, reused across rounds.
	requests    []Request
	nonEmpty    []cluster.CID
	joinLocked  []bool
	leaveLocked []bool

	// Phase-1 scan scratch: per-worklist-position best request and
	// gain-report message count, written by index so the merge is
	// independent of scheduling; evals holds one private evaluator per
	// decide worker.
	bests    []Request
	bestMsgs []int
	evals    []*core.Evaluator

	// scanStats accumulates the evaluators' phase-1 outcome counters
	// over the current period (reset by BeginPeriod). They are
	// observability only — never part of a Report, so pruned and exact
	// runs stay comparable by DeepEqual.
	scanStats core.ScanStats

	// period is the most recent Period (see period.go). Begin recycles
	// its storage once it finished; a Begin that supersedes an
	// unfinished period leaves it frozen and allocates fresh storage.
	period *Period
}

// NewRunner creates a protocol runner. Options zero values are replaced
// by defaults.
func NewRunner(eng *core.Engine, strategy core.Strategy, opts Options) *Runner {
	if opts.Epsilon < 0 {
		panic(fmt.Sprintf("protocol: negative epsilon %g", opts.Epsilon))
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = DefaultOptions().MaxRounds
	}
	return &Runner{eng: eng, strategy: strategy, opts: opts}
}

// Engine returns the underlying engine.
func (r *Runner) Engine() *core.Engine { return r.eng }

// BeginPeriod snapshots every peer's individual cost as the baseline
// the new-cluster drift rule compares against. Run calls it
// automatically; call it manually when interleaving workload updates
// or membership changes with single rounds. Vacated slots get a NaN
// baseline (which disables the drift rule), as do peers joining after
// the snapshot — a newcomer founds no drift cluster in its first
// period.
//
// BeginPeriod also clears the grant-phase lock tables and invalidates
// any in-progress stepped Period (its next Step reports done): locks
// belong to a single round, and an aborted or superseded period must
// never leak its lock entries into the next one — previously stale
// entries survived until a Cmax-growth reallocation happened to drop
// them.
func (r *Runner) BeginPeriod() {
	clear(r.joinLocked)
	clear(r.leaveLocked)
	r.scanStats = core.ScanStats{}
	if r.period != nil {
		r.period.phase = phaseDone
	}
	n := r.eng.NumSlots()
	if cap(r.baseline) < n {
		r.baseline = make([]float64, n)
		r.baselineGen = make([]uint32, n)
	}
	r.baseline = r.baseline[:n]
	r.baselineGen = r.baselineGen[:n]
	cfg := r.eng.Config()
	for p := 0; p < n; p++ {
		r.baselineGen[p] = r.eng.SlotGeneration(p)
		if !r.eng.IsLive(p) {
			r.baseline[p] = math.NaN()
			continue
		}
		r.baseline[p] = r.eng.PeerCost(p, cfg.ClusterOf(p))
	}
}

// growLocks sizes the lock tables to the current Cmax, preserving
// entries already set: a stepped round may be mid-grant-phase when a
// join adds cluster slots, and a reallocation would drop its locks.
func (r *Runner) growLocks() {
	cmax := r.eng.Config().Cmax()
	for len(r.joinLocked) < cmax {
		r.joinLocked = append(r.joinLocked, false)
		r.leaveLocked = append(r.leaveLocked, false)
	}
}

// ensureEvals sizes the private-evaluator pool for w decide workers.
// Runner evaluators run pruned unless Options.ExactDecide.
func (r *Runner) ensureEvals(w int) {
	for len(r.evals) < w {
		ev := r.eng.NewEvaluator()
		ev.SetPruned(!r.opts.ExactDecide)
		r.evals = append(r.evals, ev)
	}
}

// ScanStats returns the phase-1 evaluation-outcome counters accumulated
// since the last BeginPeriod (equivalently, since the current period
// began).
func (r *Runner) ScanStats() core.ScanStats { return r.scanStats }

// decideOne evaluates peer p under the period baseline rules, through
// a private evaluator when the strategy supports it (es non-nil) and
// through the engine otherwise.
func (r *Runner) decideOne(es core.EvalStrategy, ev *core.Evaluator, p int) core.Decision {
	// Peers that joined after the period baseline was taken — either
	// beyond its length or into a reused slot whose join generation
	// moved on — decide with a NaN baseline.
	baseline := math.NaN()
	if p < len(r.baseline) && r.eng.SlotGeneration(p) == r.baselineGen[p] {
		baseline = r.baseline[p]
	}
	if es != nil {
		return es.DecideEval(ev, p, baseline, r.opts.AllowNewClusters)
	}
	return r.strategy.Decide(r.eng, p, baseline, r.opts.AllowNewClusters)
}

// decideCluster scans one non-empty cluster's members and returns its
// best request — Gain is -Inf when no member requests a move — plus
// the gain-report message count (one per non-representative member).
// Membership order does not matter: Decide has no side effects and
// the best request is selected under the total order (gain desc, peer
// asc).
func (r *Runner) decideCluster(es core.EvalStrategy, ev *core.Evaluator, c cluster.CID) (Request, int) {
	members := r.eng.Config().MembersUnsorted(c)
	best := Request{Gain: math.Inf(-1)}
	for _, p := range members {
		d := r.decideOne(es, ev, p)
		if !d.Move || d.Gain <= r.opts.Epsilon {
			continue
		}
		if d.Gain > best.Gain || (d.Gain == best.Gain && d.Peer < best.Peer) {
			best = Request{Peer: d.Peer, From: d.From, To: d.To, Gain: d.Gain,
				NewCluster: d.NewCluster, gen: r.eng.SlotGeneration(d.Peer)}
		}
	}
	return best, len(members) - 1
}

// decideBatch runs the phase-1 scan over clusters (all non-empty),
// filling r.bests and r.bestMsgs by position. With Workers > 1 and an
// EvalStrategy the clusters fan out over a worker pool; every result
// is written to its own index, so the merged outcome is byte-identical
// for any worker count, including the serial path.
func (r *Runner) decideBatch(clusters []cluster.CID) {
	n := len(clusters)
	if cap(r.bests) < n {
		r.bests = make([]Request, n)
		r.bestMsgs = make([]int, n)
	}
	r.bests = r.bests[:n]
	r.bestMsgs = r.bestMsgs[:n]

	es, _ := r.strategy.(core.EvalStrategy)
	if es != nil && !r.opts.ExactDecide {
		// Refresh the serial pruning state (minimum cluster size backing
		// the shortlist bound) before evaluators — possibly concurrent —
		// read it.
		r.eng.PrepareDecide()
	}
	w := r.opts.Workers
	if w > n {
		w = n
	}
	if es == nil || w <= 1 {
		var ev *core.Evaluator
		if es != nil {
			r.ensureEvals(1)
			ev = r.evals[0]
		}
		for i, c := range clusters {
			r.bests[i], r.bestMsgs[i] = r.decideCluster(es, ev, c)
		}
		if ev != nil {
			r.scanStats.Add(ev.TakeScanStats())
		}
		return
	}
	r.ensureEvals(w)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(ev *core.Evaluator) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r.bests[i], r.bestMsgs[i] = r.decideCluster(es, ev, clusters[i])
			}
		}(r.evals[g])
	}
	wg.Wait()
	for _, ev := range r.evals[:w] {
		r.scanStats.Add(ev.TakeScanStats())
	}
}

// sortRequests orders requests for the grant phase: decreasing gain,
// ties broken by peer ID for determinism (the order is total: a peer
// issues at most one request per round).
func sortRequests(requests []Request) {
	slices.SortFunc(requests, func(a, b Request) int {
		switch {
		case a.Gain > b.Gain:
			return -1
		case a.Gain < b.Gain:
			return 1
		}
		return a.Peer - b.Peer
	})
}

// serve applies one request under the cycle-avoiding lock rule,
// recording a granted move (and its two coordination messages) into
// rep. Requests staled by membership edits between a stepped decide
// scan and this grant — the peer departed, its slot was reused, or it
// is no longer in its From cluster — are dropped; in a monolithic
// round nothing can stale them and the checks never fire.
func (r *Runner) serve(req Request, rep *RoundReport) {
	eng := r.eng
	if req.Peer >= eng.NumSlots() || !eng.IsLive(req.Peer) ||
		eng.SlotGeneration(req.Peer) != req.gen ||
		eng.Config().ClusterOf(req.Peer) != req.From {
		return
	}
	to := req.To
	if req.NewCluster {
		slot, ok := eng.Config().EmptyCluster()
		if !ok {
			return // Cmax reached; drop the request this round
		}
		to = slot
	}
	if r.leaveLocked[req.From] || r.joinLocked[to] {
		return
	}
	// The two involved representatives coordinate the move.
	rep.Messages += 2
	eng.Move(req.Peer, to)
	// Granting a move from->to locks both ends: no more joins to
	// `from` (direction leave) and no more leaves from `to`
	// (direction join).
	r.joinLocked[req.From] = true
	r.leaveLocked[to] = true
	req.To = to
	rep.Moves = append(rep.Moves, req)
}

// resetLocks releases the lock entries the round's granted moves set;
// only granted moves set entries.
func (r *Runner) resetLocks(rep *RoundReport) {
	for _, m := range rep.Moves {
		r.joinLocked[m.From] = false
		r.leaveLocked[m.To] = false
	}
}

// RunRound executes one two-phase round and returns its report. It
// supersedes an in-progress stepped Period: the period is aborted —
// its grant-phase locks released, its handle frozen at done — before
// the round runs, so the two APIs cannot corrupt the shared lock
// tables or leave a stale period resumable over a mutated
// configuration.
func (r *Runner) RunRound(round int) RoundReport {
	if r.period != nil && r.period.phase != phaseDone {
		r.period.Abort()
	}
	if r.baseline == nil {
		r.BeginPeriod()
	}
	rep := RoundReport{Round: round}
	cfg := r.eng.Config()
	r.growLocks()

	// Phase 1: gather at most one request per non-empty cluster.
	r.nonEmpty = cfg.AppendNonEmpty(r.nonEmpty[:0])
	nonEmpty := r.nonEmpty
	r.decideBatch(nonEmpty)
	requests := r.requests[:0]
	for i := range nonEmpty {
		// Each member reports its gain to the representative.
		rep.Messages += r.bestMsgs[i]
		if !math.IsInf(r.bests[i].Gain, -1) {
			requests = append(requests, r.bests[i])
		}
	}
	r.requests = requests
	// Every representative broadcasts to all others — either its
	// cluster's request or a bare cid message.
	if len(nonEmpty) > 1 {
		rep.Messages += len(nonEmpty) * (len(nonEmpty) - 1)
	}
	rep.Requests = len(requests)

	// Phase 2: serve requests in decreasing gain order under the lock
	// rule.
	sortRequests(requests)
	for _, req := range requests {
		r.serve(req, &rep)
	}
	r.resetLocks(&rep)
	rep.Granted = len(rep.Moves)
	rep.SCost = r.eng.SCostNormalized()
	rep.WCost = r.eng.WCostNormalized()
	return rep
}

// Run executes rounds until no relocation requests are issued or
// MaxRounds is reached, starting a fresh period baseline.
func (r *Runner) Run() Report {
	r.BeginPeriod()
	rpt := Report{
		InitialSCost: r.eng.SCostNormalized(),
		InitialWCost: r.eng.WCostNormalized(),
	}
	for round := 1; round <= r.opts.MaxRounds; round++ {
		rr := r.RunRound(round)
		rpt.Rounds = append(rpt.Rounds, rr)
		rpt.Messages += rr.Messages
		if rr.Requests == 0 {
			rpt.Converged = true
			break
		}
	}
	rpt.RoundsRun = len(rpt.Rounds)
	rpt.FinalSCost = r.eng.SCostNormalized()
	rpt.FinalWCost = r.eng.WCostNormalized()
	rpt.FinalClusters = r.eng.Config().NumNonEmpty()
	return rpt
}

// EffectiveRounds is the number of rounds in which the protocol did
// work: the final quiescent round that merely detects convergence is
// not counted (it is what Table 1's "# rounds" measures).
func (rpt Report) EffectiveRounds() int {
	if rpt.Converged && rpt.RoundsRun > 0 {
		return rpt.RoundsRun - 1
	}
	return rpt.RoundsRun
}

// CostTrajectory extracts the per-round normalized social and workload
// costs (prepending the initial values as round 0) — the series of
// Fig. 1.
func (rpt Report) CostTrajectory() (rounds []int, scost, wcost []float64) {
	rounds = append(rounds, 0)
	scost = append(scost, rpt.InitialSCost)
	wcost = append(wcost, rpt.InitialWCost)
	for _, rr := range rpt.Rounds {
		rounds = append(rounds, rr.Round)
		scost = append(scost, rr.SCost)
		wcost = append(wcost, rr.WCost)
	}
	return rounds, scost, wcost
}
