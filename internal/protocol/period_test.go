package protocol

import (
	"math"
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
)

// stepped runs a full period through the Period state machine with
// the given budget and returns its report.
func stepped(r *Runner, budget int) Report {
	p := r.Begin()
	for !p.Step(budget) {
	}
	return p.Report()
}

// TestPeriodMatchesRunByteIdentical pins the acceptance contract: with
// no interleaved mutations, a stepped period produces byte-identical
// moves, costs, messages and reports to the monolithic Run for every
// budget and worker count.
func TestPeriodMatchesRunByteIdentical(t *testing.T) {
	shapes := []struct{ groups, perGroup int }{{4, 6}, {3, 5}, {2, 9}}
	budgets := []int{1, 2, 3, 7, 0} // 0 = unbounded (whole period in one step)
	workers := []int{1, 2, 4, runtime.GOMAXPROCS(0) + 1}
	for _, sh := range shapes {
		want := NewRunner(grouped(t, sh.groups, sh.perGroup), core.NewSelfish(),
			Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true}).Run()
		for _, budget := range budgets {
			for _, w := range workers {
				eng := grouped(t, sh.groups, sh.perGroup)
				r := NewRunner(eng, core.NewSelfish(),
					Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true, Workers: w})
				got := stepped(r, budget)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("groups=%d budget=%d workers=%d: stepped report differs from Run:\n got %+v\nwant %+v",
						sh.groups, budget, w, got, want)
				}
			}
		}
	}
}

// TestRunParallelMatchesSerial pins the same contract for the
// monolithic path: Options.Workers must not change a single byte of
// Run's report.
func TestRunParallelMatchesSerial(t *testing.T) {
	mk := func(w int, strat core.Strategy) Report {
		return NewRunner(grouped(t, 4, 6), strat,
			Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true, Workers: w}).Run()
	}
	for _, strat := range []func() core.Strategy{
		func() core.Strategy { return core.NewSelfish() },
		func() core.Strategy { return core.NewAltruistic() },
		func() core.Strategy { return core.NewHybrid(0.5) },
	} {
		want := mk(1, strat())
		for _, w := range []int{2, 3, 8} {
			if got := mk(w, strat()); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: parallel Run differs from serial", strat().Name(), w)
			}
		}
	}
}

// TestPeriodToleratesInterleavedChurn is the randomized interleaving
// property: joins, leaves and workload compactions land between steps
// of an in-progress period, and the period must still terminate with
// a coherent engine — valid configuration, fresh aggregates, live
// moves only — after which a quiesced run converges.
func TestPeriodToleratesInterleavedChurn(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xbeef))
		eng := grouped(t, 4, 5)
		r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 60, AllowNewClusters: true})

		var live []int
		refreshLive := func() {
			live = live[:0]
			for pid := 0; pid < eng.NumSlots(); pid++ {
				if eng.IsLive(pid) {
					live = append(live, pid)
				}
			}
		}
		novel := attr.ID(5000 + 100*seed)
		churn := func() {
			switch rng.IntN(4) {
			case 0: // join with a novel query (interns a fresh QID)
				pr := peer.New(-1)
				pr.SetItems([]attr.Set{attr.NewSet(attr.ID(rng.IntN(4)))})
				novel++
				eng.AddPeer(pr, []attr.Set{attr.NewSet(novel)}, []int{2}, cluster.None)
			case 1: // leave a random live peer
				refreshLive()
				if len(live) > 2 {
					eng.RemovePeer(live[rng.IntN(len(live))])
				}
			case 2: // compact dead workload rows mid-period
				eng.Compact(0)
			case 3: // quiet step
			}
		}

		for period := 0; period < 3; period++ {
			p := r.Begin()
			steps := 0
			for !p.Step(1 + rng.IntN(5)) {
				steps++
				if steps > 100000 {
					t.Fatalf("seed %d: period %d never terminated", seed, period)
				}
				churn()
				if eng.Stale() {
					t.Fatalf("seed %d: engine went stale mid-period", seed)
				}
				if err := eng.Config().Validate(); err != nil {
					t.Fatalf("seed %d: invalid config mid-period: %v", seed, err)
				}
			}
			rpt := p.Report()
			if rpt.RoundsRun == 0 || rpt.RoundsRun > 60 {
				t.Fatalf("seed %d: period ran %d rounds", seed, rpt.RoundsRun)
			}
			// Every granted move references a peer that was live and in
			// its From cluster at grant time; after the period all moved
			// peers that are still live sit where the protocol put them
			// or where later rounds moved them — at minimum the grant
			// itself must have acted on a live peer.
			for _, rr := range rpt.Rounds {
				for _, mv := range rr.Moves {
					if mv.From == mv.To {
						t.Fatalf("seed %d: self-move granted: %+v", seed, mv)
					}
				}
			}
		}

		// Churn stops; maintenance must converge to a state where no
		// peer gains more than ε by moving to an existing cluster (the
		// drift rule legitimately gates new-cluster moves, so full Nash
		// including the go-alone option is not guaranteed).
		rpt := r.Run()
		if !rpt.Converged {
			t.Fatalf("seed %d: no convergence after churn stopped: %+v", seed, rpt)
		}
		for pid := 0; pid < eng.NumSlots(); pid++ {
			if !eng.IsLive(pid) {
				continue
			}
			if ev := eng.EvaluateMoves(pid); ev.Gain() > 0.001 {
				t.Fatalf("seed %d: peer %d still gains %g by moving to cluster %d",
					seed, pid, ev.Gain(), ev.Best)
			}
		}
		if err := eng.Config().Validate(); err != nil {
			t.Fatalf("seed %d: final config invalid: %v", seed, err)
		}
	}
}

// TestPeriodGrantDropsDepartedPeer pins the stale-request guard: a
// peer that leaves (and whose slot a newcomer reuses) between the
// decide scan and the grant service must not be relocated.
func TestPeriodGrantDropsDepartedPeer(t *testing.T) {
	eng := grouped(t, 3, 5)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 50, AllowNewClusters: true})
	p := r.Begin()
	// Step with budget 1 until the decide phase completes (phase flips
	// to grant with the requests frozen).
	for p.Progress().Phase == "decide" {
		if p.Step(1) {
			t.Skip("period finished during decide; system converged instantly")
		}
	}
	reqs := append([]Request(nil), p.requests...)
	if len(reqs) == 0 {
		t.Fatal("no requests to stale")
	}
	victim := reqs[0].Peer
	gen := eng.SlotGeneration(victim)
	eng.RemovePeer(victim)
	pr := peer.New(-1)
	pr.SetItems([]attr.Set{attr.NewSet(attr.ID(0))})
	if pid := eng.AddPeer(pr, []attr.Set{attr.NewSet(attr.ID(0))}, []int{1}, cluster.None); pid != victim {
		t.Fatalf("newcomer got slot %d, want reused slot %d", pid, victim)
	}
	if eng.SlotGeneration(victim) == gen {
		t.Fatal("slot generation did not advance on reuse")
	}
	for !p.Step(1) {
	}
	for _, rr := range p.Report().Rounds[:1] {
		for _, mv := range rr.Moves {
			if mv.Peer == victim {
				t.Fatalf("round 1 relocated the reused slot %d: %+v", victim, mv)
			}
		}
	}
}

// TestBeginPeriodClearsLockTables is the regression pin for the
// carried-lock bug: lock entries left behind (an aborted grant phase,
// or any stale state) must be cleared by BeginPeriod, not survive
// into the next period and veto its grants.
func TestBeginPeriodClearsLockTables(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	// Force the tables to exist, then poison every entry the way a
	// crashed/aborted grant phase would have.
	r.growLocks()
	for c := range r.joinLocked {
		r.joinLocked[c] = true
		r.leaveLocked[c] = true
	}
	rpt := r.Run() // Run -> BeginPeriod must clear the poison
	if !rpt.Converged {
		t.Fatalf("run did not converge: %+v", rpt)
	}
	granted := 0
	for _, rr := range rpt.Rounds {
		granted += rr.Granted
	}
	if granted == 0 {
		t.Fatal("stale lock tables vetoed every grant (BeginPeriod did not clear them)")
	}
}

// TestPeriodAbortReleasesLocks pins Abort mid-grant: locks set by
// already-served grants are released, and the next period behaves as
// if none of it happened.
func TestPeriodAbortReleasesLocks(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	p := r.Begin()
	for p.Progress().Phase != "grant" {
		if p.Step(1) {
			t.Skip("converged before any grant phase")
		}
	}
	// Serve one grant, then abort with its locks still set.
	if p.Step(1) {
		t.Skip("period finished in one grant")
	}
	if p.Moves() == 0 {
		t.Skip("first grant was vetoed; nothing locked")
	}
	p.Abort()
	if !p.Done() {
		t.Fatal("aborted period not done")
	}
	for c := range r.joinLocked {
		if r.joinLocked[c] || r.leaveLocked[c] {
			t.Fatalf("cluster %d still locked after Abort", c)
		}
	}
	// A fresh period must complete normally.
	rpt := stepped(r, 3)
	if !rpt.Converged {
		t.Fatalf("post-abort period did not converge: %+v", rpt)
	}
}

// TestPeriodMidPeriodCompactionInvisible extends the PR 3 contract to
// stepped periods: compacting between steps changes no subsequent
// decision or cost against an identical system that never compacts.
func TestPeriodMidPeriodCompactionInvisible(t *testing.T) {
	mk := func() (*core.Engine, *Runner) {
		eng := grouped(t, 3, 5)
		for i := 0; i < 12; i++ {
			churnNovel(eng, attr.ID(3000+i))
		}
		return eng, NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 50, AllowNewClusters: true})
	}
	engA, ra := mk()
	engB, rb := mk()
	pa, pb := ra.Begin(), rb.Begin()
	compacted := false
	for {
		da := pa.Step(2)
		db := pb.Step(2)
		if da != db {
			t.Fatal("stepped periods diverged in length")
		}
		if !compacted {
			if engB.Compact(0) == 0 {
				t.Fatal("compaction removed nothing")
			}
			compacted = true
		}
		if da {
			break
		}
	}
	ra2, rb2 := pa.Report(), pb.Report()
	if ra2.FinalSCost != rb2.FinalSCost || ra2.FinalWCost != rb2.FinalWCost ||
		!reflect.DeepEqual(ra2.Rounds, rb2.Rounds) {
		t.Fatalf("mid-period compaction visible:\n %+v\nvs %+v", ra2, rb2)
	}
	if engA.SCost() != engB.SCost() {
		t.Fatal("engines diverged")
	}
}

// TestPeriodStepAllocFree pins the steady-state allocation contract:
// a full quiescent maintenance period driven through Begin/Step —
// including its report bookkeeping — allocates nothing once warm.
func TestPeriodStepAllocFree(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	stepped(r, 4) // converge + warm every scratch buffer
	stepped(r, 4) // one full quiescent period warms report storage
	avg := testing.AllocsPerRun(50, func() {
		p := r.Begin()
		for !p.Step(4) {
		}
		if !p.Report().Converged {
			t.Fatal("quiescent period did not converge")
		}
	})
	if avg != 0 {
		t.Fatalf("quiescent stepped period allocates %v allocs/op, want 0", avg)
	}
}

// TestPeriodProgress sanity-checks the progress surface the serving
// layer exports.
func TestPeriodProgress(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	p := r.Begin()
	pr := p.Progress()
	if pr.Phase != "decide" || pr.Round != 1 || pr.Pos != 0 || pr.Total != eng.Config().NumNonEmpty() {
		t.Fatalf("initial progress %+v", pr)
	}
	p.Step(2)
	pr = p.Progress()
	if pr.Steps != 1 {
		t.Fatalf("steps=%d want 1", pr.Steps)
	}
	for !p.Step(2) {
	}
	pr = p.Progress()
	if pr.Phase != "done" {
		t.Fatalf("final phase %q", pr.Phase)
	}
	if math.IsNaN(p.Report().FinalSCost) {
		t.Fatal("no final cost")
	}
}

// TestRunRoundSupersedesPeriod pins the review finding: a monolithic
// RunRound issued while a stepped period is mid-grant must abort the
// period (releasing its grant locks) rather than inherit them.
func TestRunRoundSupersedesPeriod(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	p := r.Begin()
	for p.Progress().Phase != "grant" {
		if p.Step(1) {
			t.Skip("converged before any grant phase")
		}
	}
	if p.Step(1) || p.Moves() == 0 {
		t.Skip("no mid-grant lock state to supersede")
	}
	r.RunRound(1)
	if !p.Done() {
		t.Fatal("RunRound left the stepped period resumable")
	}
	for c := range r.joinLocked {
		if r.joinLocked[c] || r.leaveLocked[c] {
			t.Fatalf("cluster %d still locked after RunRound superseded the period", c)
		}
	}
	if rpt := r.Run(); !rpt.Converged {
		t.Fatalf("post-supersede run did not converge: %+v", rpt)
	}
}

// TestBeginSupersededHandleStaysFrozen pins the invalidation
// contract: a Begin that supersedes an unfinished period must leave
// the old handle frozen at done (its Steps are no-ops on the new
// period), while a finished period's storage is recycled.
func TestBeginSupersededHandleStaysFrozen(t *testing.T) {
	eng := grouped(t, 4, 6)
	r := NewRunner(eng, core.NewSelfish(), Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
	p1 := r.Begin()
	if p1.Step(1) {
		t.Skip("period finished in one unit")
	}
	p2 := r.Begin() // supersedes the unfinished p1
	if p1 == p2 {
		t.Fatal("superseding Begin reused the unfinished period's storage")
	}
	if !p1.Done() {
		t.Fatal("superseded period not frozen")
	}
	before := p2.Progress()
	if !p1.Step(5) {
		t.Fatal("frozen handle's Step did not report done")
	}
	if after := p2.Progress(); after != before {
		t.Fatalf("stale handle advanced the new period: %+v -> %+v", before, after)
	}
	for !p2.Step(3) {
	}
	if !p2.Report().Converged {
		t.Fatalf("new period did not converge: %+v", p2.Report())
	}
	// A finished period's storage is recycled by the next Begin.
	if p3 := r.Begin(); p3 != p2 {
		t.Fatal("finished period's storage was not recycled")
	}
}

// TestPeriodAppendGrantsSince pins the drain cursor a replicating
// serving layer relies on: draining after every step — any budget —
// yields each granted move exactly once, in grant order, identical to
// the finished report's concatenated round moves, and every drained
// request carries a concrete resolved target (no NewCluster
// placeholders).
func TestPeriodAppendGrantsSince(t *testing.T) {
	want := func() []Request {
		r := NewRunner(grouped(t, 4, 6), core.NewSelfish(),
			Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
		rpt := stepped(r, 0)
		var all []Request
		for _, rd := range rpt.Rounds {
			all = append(all, rd.Moves...)
		}
		return all
	}()
	if len(want) == 0 {
		t.Fatal("scenario granted no moves; test is vacuous")
	}
	for _, budget := range []int{1, 2, 5, 17} {
		r := NewRunner(grouped(t, 4, 6), core.NewSelfish(),
			Options{Epsilon: 0.001, MaxRounds: 100, AllowNewClusters: true})
		p := r.Begin()
		var drained []Request
		for done := false; !done; {
			done = p.Step(budget)
			if n := p.Moves(); n > len(drained) {
				drained = p.AppendGrantsSince(drained, len(drained))
				if len(drained) != n {
					t.Fatalf("budget=%d: drained %d, Moves() says %d", budget, len(drained), n)
				}
			}
		}
		if !reflect.DeepEqual(drained, want) {
			t.Fatalf("budget=%d: drained grants differ from report moves:\n got %+v\nwant %+v", budget, drained, want)
		}
		for i, g := range drained {
			if g.NewCluster && g.To == g.From {
				t.Fatalf("budget=%d: grant %d unresolved new-cluster target: %+v", budget, i, g)
			}
		}
	}
}
