package workload

import (
	"testing"

	"repro/internal/attr"
)

func set(ids ...attr.ID) attr.Set { return attr.NewSet(ids...) }

// TestCompactBasics pins the core contract on a hand-built workload:
// stranded queries go, survivors renumber densely in order, keys and
// counts follow, and the version moves only when something changed.
func TestCompactBasics(t *testing.T) {
	w := New(2)
	w.Add(0, set(1), 3) // qid 0, stays (peer 0)
	w.Add(1, set(2), 2) // qid 1, dies with peer 1
	w.Add(0, set(3), 1) // qid 2, stays
	w.Add(1, set(4), 5) // qid 3, dies with peer 1
	w.Add(0, set(4), 1) // qid 3 also demanded by peer 0 -> stays
	w.ClearPeer(1)

	v := w.Version()
	remap, removed := w.Compact(0)
	if removed != 1 {
		t.Fatalf("removed %d, want 1 (only {2} was stranded)", removed)
	}
	want := []QID{0, Dead, 1, 2}
	for q, nid := range remap {
		if nid != want[q] {
			t.Fatalf("remap[%d] = %d, want %d", q, nid, want[q])
		}
	}
	if w.Version() == v {
		t.Fatal("effective compaction did not bump the version")
	}
	if w.Compactions() != 1 {
		t.Fatalf("compactions %d, want 1", w.Compactions())
	}
	if got, ok := w.Lookup(set(4)); !ok || got != 2 {
		t.Fatalf("query {4} at %v/%v, want 2/true", got, ok)
	}
	if got := w.Count(0, 2); got != 1 {
		t.Fatalf("peer 0 count for remapped {4} = %d, want 1", got)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}

	// Nothing dead: identity remap, no mutation, no version bump.
	v = w.Version()
	remap, removed = w.Compact(0)
	if removed != 0 || w.Version() != v || w.Compactions() != 1 {
		t.Fatalf("no-op compact: removed=%d version %d->%d compactions=%d",
			removed, v, w.Version(), w.Compactions())
	}
	for q, nid := range remap {
		if nid != QID(q) {
			t.Fatalf("no-op remap[%d] = %d", q, nid)
		}
	}
}

// TestCompactCloneCarriesState pins that Clone preserves the demand
// clock, last-use stamps and compaction generation, so a cloned
// workload makes identical retirement decisions.
func TestCompactCloneCarriesState(t *testing.T) {
	w := New(1)
	w.Add(0, set(1), 1)
	w.Add(0, set(2), 1)
	w.ClearPeer(0)
	w.Add(0, set(3), 1)
	w.Compact(100) // retained: both strandlings are recent

	cp := w.Clone()
	if cp.Clock() != w.Clock() || cp.Compactions() != w.Compactions() {
		t.Fatalf("clone clock/compactions %d/%d, want %d/%d",
			cp.Clock(), cp.Compactions(), w.Clock(), w.Compactions())
	}
	_, a := w.Compact(0)
	_, b := cp.Compact(0)
	if a != b {
		t.Fatalf("clone compacts %d, original %d", b, a)
	}
}

// TestCompactRemapReuse pins the scratch discipline: at stable query
// counts the remap buffer is reused, so the compact probe and the
// compaction itself stay allocation-free on the workload side.
func TestCompactRemapReuse(t *testing.T) {
	w := New(1)
	for i := 0; i < 8; i++ {
		w.Add(0, set(attr.ID(i)), 1)
	}
	w.ClearPeer(0)
	w.Compact(0) // warm the scratch at full width
	w.Add(0, set(1), 1)
	w.ClearPeer(0)
	if avg := testing.AllocsPerRun(50, func() {
		if _, removed := w.Compact(1 << 30); removed != 0 {
			t.Fatal("retention window should keep everything")
		}
	}); avg != 0 {
		t.Errorf("retained-everything Compact allocates %v/op, want 0", avg)
	}
}
