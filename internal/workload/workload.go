// Package workload models the paper's query workload: the global list
// Q of all queries in the system (a multiset — a query may appear many
// times) and each peer's local workload Q(p_i), the queries that peer
// issued. The cost model weighs queries by num(q,Q(p))/num(Q(p))
// locally and num(q,Q)/num(Q) globally (§2).
package workload

import (
	"fmt"
	"sort"

	"repro/internal/attr"
)

// QID is a dense identifier for a distinct query.
type QID int32

// Entry pairs a query with its multiplicity in some workload.
type Entry struct {
	Q     QID
	Count int
}

// Workload stores the global query list and the per-peer local
// workloads. Queries are deduplicated; multiplicities are tracked per
// peer and globally. The zero value is unusable; call New.
type Workload struct {
	numPeers int

	queries []attr.Set
	keys    map[string]QID

	global  []int     // num(q,Q) per QID
	perPeer [][]Entry // peer -> sorted-by-QID entries with Count > 0
	peerTot []int     // num(Q(p)) per peer
	total   int       // num(Q)
	version int
	keyBuf  []byte // scratch for allocation-free Lookup probes

	// Retirement/compaction state (see compact.go): clock counts
	// demand-recording events, lastUse[q] stamps the most recent one
	// touching q, compactions counts Compact calls that removed
	// queries, and remapScratch is the reused old->new remap buffer.
	clock        int64
	lastUse      []int64
	compactions  int
	remapScratch []QID
}

// New creates an empty workload over numPeers peers.
func New(numPeers int) *Workload {
	return &Workload{
		numPeers: numPeers,
		keys:     make(map[string]QID),
		perPeer:  make([][]Entry, numPeers),
		peerTot:  make([]int, numPeers),
	}
}

// NumPeers returns the number of peer slots the workload spans.
func (w *Workload) NumPeers() int { return w.numPeers }

// AddPeerSlot appends one peer slot with an empty local workload and
// returns its ID. Dynamic membership grows the workload with the
// cluster configuration; departed peers keep their slot (cleared by
// ClearPeer) so IDs stay dense and stable.
func (w *Workload) AddPeerSlot() int {
	p := w.numPeers
	w.numPeers++
	w.perPeer = append(w.perPeer, nil)
	w.peerTot = append(w.peerTot, 0)
	w.version++
	return p
}

// Version increments on every mutation.
func (w *Workload) Version() int { return w.version }

// Intern registers q and returns its QID, reusing an existing ID for an
// equal query.
func (w *Workload) Intern(q attr.Set) QID {
	key := q.Key()
	if id, ok := w.keys[key]; ok {
		return id
	}
	id := QID(len(w.queries))
	w.keys[key] = id
	w.queries = append(w.queries, q)
	w.global = append(w.global, 0)
	w.lastUse = append(w.lastUse, w.clock)
	return id
}

// Lookup returns the QID of q when it is already interned, without
// allocating (the probe key is built in a reused scratch buffer). The
// membership engine uses it on the join hot path, where a churning
// population re-issues mostly known queries.
func (w *Workload) Lookup(q attr.Set) (QID, bool) {
	w.keyBuf = q.AppendKey(w.keyBuf[:0])
	id, ok := w.keys[string(w.keyBuf)]
	return id, ok
}

// Query returns the attribute set of qid.
func (w *Workload) Query(qid QID) attr.Set { return w.queries[qid] }

// NumQueries returns the number of distinct queries.
func (w *Workload) NumQueries() int { return len(w.queries) }

// Add records count occurrences of query q issued by peer p.
func (w *Workload) Add(p int, q attr.Set, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("workload: Add count=%d", count))
	}
	w.addQID(p, w.Intern(q), count)
}

// AddQID records count occurrences of the already-interned query qid
// issued by peer p. The membership engine uses it to register a
// joiner's workload without re-keying the query sets.
func (w *Workload) AddQID(p int, qid QID, count int) {
	if count <= 0 {
		panic(fmt.Sprintf("workload: AddQID count=%d", count))
	}
	if int(qid) < 0 || int(qid) >= len(w.queries) {
		panic(fmt.Sprintf("workload: AddQID unknown query %d", qid))
	}
	w.addQID(p, qid, count)
}

// Count returns num(q, Q(p)) for one specific query: the multiplicity
// of qid in peer p's local workload (0 when p never issued it).
func (w *Workload) Count(p int, qid QID) int {
	entries := w.perPeer[p]
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Q >= qid })
	if i < len(entries) && entries[i].Q == qid {
		return entries[i].Count
	}
	return 0
}

func (w *Workload) addQID(p int, qid QID, count int) {
	if p < 0 || p >= w.numPeers {
		panic(fmt.Sprintf("workload: peer %d out of range [0,%d)", p, w.numPeers))
	}
	entries := w.perPeer[p]
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Q >= qid })
	if i < len(entries) && entries[i].Q == qid {
		entries[i].Count += count
	} else {
		entries = append(entries, Entry{})
		copy(entries[i+1:], entries[i:])
		entries[i] = Entry{Q: qid, Count: count}
		w.perPeer[p] = entries
	}
	w.global[qid] += count
	w.peerTot[p] += count
	w.total += count
	w.clock++
	w.lastUse[qid] = w.clock
	w.version++
}

// Peer returns peer p's local workload entries (sorted by QID). The
// returned slice is shared; callers must not modify it.
func (w *Workload) Peer(p int) []Entry { return w.perPeer[p] }

// PeerTotal returns num(Q(p)).
func (w *Workload) PeerTotal(p int) int { return w.peerTot[p] }

// GlobalCount returns num(q,Q).
func (w *Workload) GlobalCount(qid QID) int { return w.global[qid] }

// Total returns num(Q).
func (w *Workload) Total() int { return w.total }

// ClearPeer removes peer p's entire local workload. The entry slice's
// capacity is retained so churn (clear + re-add at similar size) does
// not reallocate.
func (w *Workload) ClearPeer(p int) {
	for _, e := range w.perPeer[p] {
		w.global[e.Q] -= e.Count
		w.total -= e.Count
	}
	w.perPeer[p] = w.perPeer[p][:0]
	w.peerTot[p] = 0
	w.version++
}

// ReplacePeer substitutes peer p's local workload with entries
// (attr sets with counts).
func (w *Workload) ReplacePeer(p int, queries []attr.Set, counts []int) {
	if len(queries) != len(counts) {
		panic("workload: ReplacePeer length mismatch")
	}
	w.ClearPeer(p)
	for i, q := range queries {
		w.Add(p, q, counts[i])
	}
}

// Clone deep-copies the workload; used by experiments that perturb a
// shared baseline.
func (w *Workload) Clone() *Workload {
	cp := &Workload{
		numPeers:    w.numPeers,
		queries:     append([]attr.Set(nil), w.queries...),
		keys:        make(map[string]QID, len(w.keys)),
		global:      append([]int(nil), w.global...),
		perPeer:     make([][]Entry, len(w.perPeer)),
		peerTot:     append([]int(nil), w.peerTot...),
		total:       w.total,
		version:     w.version,
		clock:       w.clock,
		lastUse:     append([]int64(nil), w.lastUse...),
		compactions: w.compactions,
	}
	for k, v := range w.keys {
		cp.keys[k] = v
	}
	for i, es := range w.perPeer {
		cp.perPeer[i] = append([]Entry(nil), es...)
	}
	return cp
}

// Validate checks internal consistency (global counts equal the sums of
// per-peer counts); it is used by property tests.
func (w *Workload) Validate() error {
	glob := make([]int, len(w.queries))
	total := 0
	for p, es := range w.perPeer {
		sum := 0
		last := QID(-1)
		for _, e := range es {
			if e.Q <= last {
				return fmt.Errorf("peer %d entries not strictly sorted", p)
			}
			last = e.Q
			if e.Count <= 0 {
				return fmt.Errorf("peer %d query %d non-positive count", p, e.Q)
			}
			glob[e.Q] += e.Count
			sum += e.Count
		}
		if sum != w.peerTot[p] {
			return fmt.Errorf("peer %d total %d != recorded %d", p, sum, w.peerTot[p])
		}
		total += sum
	}
	for q := range glob {
		if glob[q] != w.global[q] {
			return fmt.Errorf("query %d global %d != recorded %d", q, glob[q], w.global[q])
		}
	}
	if total != w.total {
		return fmt.Errorf("total %d != recorded %d", total, w.total)
	}
	if len(w.lastUse) != len(w.queries) {
		return fmt.Errorf("lastUse spans %d queries, want %d", len(w.lastUse), len(w.queries))
	}
	for key, id := range w.keys {
		if int(id) < 0 || int(id) >= len(w.queries) {
			return fmt.Errorf("key %q maps to out-of-range query %d", key, id)
		}
		if got := w.queries[id].Key(); got != key {
			return fmt.Errorf("key %q maps to query %d with key %q", key, id, got)
		}
	}
	if len(w.keys) != len(w.queries) {
		return fmt.Errorf("%d keys for %d queries", len(w.keys), len(w.queries))
	}
	return nil
}
