package workload

import (
	"fmt"

	"repro/internal/attr"
)

// This file implements in-place workload compaction. Intern registers
// distinct queries forever, so under open-ended churn with novel
// queries every QID-indexed structure — here and in any engine built
// over the workload — grows with query history. Compact reclaims the
// rows of retired queries by densely renumbering the survivors,
// letting a long-lived process run indefinitely with memory bounded by
// its live query set instead of its lifetime query history.
//
// A query is dead when no peer currently demands it (global count 0)
// and it has not been used for at least minIdle demand-recording
// events (the per-QID last-use policy: minIdle > 0 retains recently
// retired queries so a churning population that quickly re-issues them
// does not pay the re-intern). Removing a dead query is lossless — it
// carries no demand, so no count, total or weight changes.
//
// The remap is monotone (survivors keep their relative order), so the
// sorted per-peer entry lists stay sorted and callers can rewrite
// their own QID-indexed state in a single forward pass. Compact
// reuses an internal remap buffer and rewrites every structure in
// place, so at steady state (stable capacities) it allocates nothing.

// CompactRemap is the old->new QID mapping a compaction produced.
// Dead is the sentinel for removed queries.
type CompactRemap = []QID

// Dead marks a removed query in a compaction remap.
const Dead QID = -1

// DeadQueries returns how many distinct queries are currently
// retirable under the given policy: global count 0 and last use at
// least minIdle demand-recording events ago. minIdle <= 0 retires
// every zero-count query.
func (w *Workload) DeadQueries(minIdle int) int {
	dead := 0
	for q := range w.queries {
		if w.global[q] == 0 && w.clock-w.lastUse[q] >= int64(minIdle) {
			dead++
		}
	}
	return dead
}

// Compactions counts the Compact calls that removed at least one
// query — the workload's compaction generation.
func (w *Workload) Compactions() int { return w.compactions }

// LastUse returns the demand clock stamp of qid's most recent
// Add/AddQID — or, for a query never demanded since interning, the
// clock value at intern time (so a freshly interned query starts its
// idle age at zero). The difference to Clock is the idle age the
// Compact policy compares against minIdle.
func (w *Workload) LastUse(qid QID) int64 { return w.lastUse[qid] }

// Clock returns the demand clock: the number of Add/AddQID events
// recorded so far.
func (w *Workload) Clock() int64 { return w.clock }

// Compact removes every dead query (see DeadQueries) and densely
// renumbers the survivors, rewriting the intern table, the query and
// count arrays and every per-peer entry list in place. It returns the
// monotone old->new remap (remap[old] == Dead for removed queries;
// the slice is reused by the next Compact) and the number of queries
// removed. When nothing is dead it returns (remap, 0) without
// mutating anything — the version counter moves only when the
// workload changed.
//
// Callers holding QID-indexed state of their own (a cost engine's
// aggregate rows, an index, a cache) must rewrite it with the remap —
// or rebuild it — before using it again: after Compact a QID names a
// different query than before, and stale state would silently read
// the wrong rows. core.Engine.CompactQueries is the engine-side
// counterpart.
func (w *Workload) Compact(minIdle int) (CompactRemap, int) {
	n := len(w.queries)
	if cap(w.remapScratch) < n {
		w.remapScratch = make([]QID, n)
	}
	remap := w.remapScratch[:n]
	live := 0
	for q := 0; q < n; q++ {
		if w.global[q] == 0 && w.clock-w.lastUse[q] >= int64(minIdle) {
			remap[q] = Dead
		} else {
			remap[q] = QID(live)
			live++
		}
	}
	if live == n {
		return remap, 0
	}

	// Intern table: drop dead keys, renumber survivors. Deleting and
	// updating entries while ranging over a map is well-defined.
	for key, id := range w.keys {
		if nid := remap[id]; nid == Dead {
			delete(w.keys, key)
		} else if nid != id {
			w.keys[key] = nid
		}
	}

	// Dense arrays: survivors slide down in one forward pass (the
	// remap is monotone, so new <= old and no slot is overwritten
	// before it is read). Dropped attr.Set references are cleared so
	// the backing array does not pin dead query sets.
	for q := 0; q < n; q++ {
		if nid := int(remap[q]); nid >= 0 && nid != q {
			w.queries[nid] = w.queries[q]
			w.global[nid] = w.global[q]
			w.lastUse[nid] = w.lastUse[q]
		}
	}
	for q := live; q < n; q++ {
		w.queries[q] = attr.Set{}
	}
	w.queries = w.queries[:live]
	w.global = w.global[:live]
	w.lastUse = w.lastUse[:live]

	// Per-peer entry lists reference only demanded (global > 0 =>
	// live) queries; the monotone renumbering keeps them sorted.
	for p := range w.perPeer {
		for i := range w.perPeer[p] {
			e := &w.perPeer[p][i]
			if e.Q = remap[e.Q]; e.Q == Dead {
				panic(fmt.Sprintf("workload: peer %d demands dead query", p))
			}
		}
	}

	w.compactions++
	w.version++
	return remap, n - live
}
