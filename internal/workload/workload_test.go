package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/attr"
	"repro/internal/stats"
)

func TestAddAndCounts(t *testing.T) {
	w := New(3)
	q1 := attr.NewSet(1)
	q2 := attr.NewSet(2)
	w.Add(0, q1, 2)
	w.Add(0, q2, 1)
	w.Add(1, q1, 3)
	if w.NumQueries() != 2 {
		t.Fatalf("NumQueries=%d", w.NumQueries())
	}
	id1 := w.Intern(q1)
	if w.GlobalCount(id1) != 5 {
		t.Fatalf("global num(q1)=%d", w.GlobalCount(id1))
	}
	if w.PeerTotal(0) != 3 || w.PeerTotal(1) != 3 || w.PeerTotal(2) != 0 {
		t.Fatal("peer totals")
	}
	if w.Total() != 6 {
		t.Fatalf("total=%d", w.Total())
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInternDeduplicates(t *testing.T) {
	w := New(1)
	a := w.Intern(attr.NewSet(3, 1))
	b := w.Intern(attr.NewSet(1, 3))
	if a != b {
		t.Fatal("equal queries got different IDs")
	}
	if !w.Query(a).Equal(attr.NewSet(1, 3)) {
		t.Fatal("Query roundtrip")
	}
}

func TestAddMergesSamePeerSameQuery(t *testing.T) {
	w := New(1)
	q := attr.NewSet(5)
	w.Add(0, q, 2)
	w.Add(0, q, 3)
	entries := w.Peer(0)
	if len(entries) != 1 || entries[0].Count != 5 {
		t.Fatalf("entries=%v", entries)
	}
}

func TestClearAndReplacePeer(t *testing.T) {
	w := New(2)
	w.Add(0, attr.NewSet(1), 4)
	w.Add(1, attr.NewSet(1), 1)
	w.ClearPeer(0)
	if w.PeerTotal(0) != 0 || w.Total() != 1 {
		t.Fatal("ClearPeer accounting")
	}
	if w.GlobalCount(w.Intern(attr.NewSet(1))) != 1 {
		t.Fatal("global count after clear")
	}
	w.ReplacePeer(0, []attr.Set{attr.NewSet(2), attr.NewSet(3)}, []int{2, 3})
	if w.PeerTotal(0) != 5 || w.Total() != 6 {
		t.Fatal("ReplacePeer accounting")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReplacePeerLengthMismatchPanics(t *testing.T) {
	w := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	w.ReplacePeer(0, []attr.Set{attr.NewSet(1)}, []int{1, 2})
}

func TestAddValidation(t *testing.T) {
	w := New(1)
	for _, f := range []func(){
		func() { w.Add(0, attr.NewSet(1), 0) },
		func() { w.Add(5, attr.NewSet(1), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestCloneIsIndependent(t *testing.T) {
	w := New(2)
	w.Add(0, attr.NewSet(1), 2)
	cp := w.Clone()
	cp.Add(1, attr.NewSet(2), 5)
	cp.ClearPeer(0)
	if w.PeerTotal(0) != 2 || w.Total() != 2 || w.NumQueries() != 1 {
		t.Fatal("mutating clone affected original")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionBumpsOnMutation(t *testing.T) {
	w := New(1)
	v0 := w.Version()
	w.Add(0, attr.NewSet(1), 1)
	if w.Version() == v0 {
		t.Fatal("Add did not bump version")
	}
	v1 := w.Version()
	w.ClearPeer(0)
	if w.Version() == v1 {
		t.Fatal("ClearPeer did not bump version")
	}
}

func TestValidateUnderRandomOperations(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		w := New(4)
		for op := 0; op < 40; op++ {
			switch rng.Intn(3) {
			case 0:
				w.Add(rng.Intn(4), attr.NewSet(attr.ID(rng.Intn(6))), 1+rng.Intn(5))
			case 1:
				w.ClearPeer(rng.Intn(4))
			case 2:
				n := 1 + rng.Intn(3)
				qs := make([]attr.Set, n)
				cs := make([]int, n)
				for i := range qs {
					qs[i] = attr.NewSet(attr.ID(rng.Intn(6)), attr.ID(rng.Intn(6)))
					cs[i] = 1 + rng.Intn(4)
				}
				w.ReplacePeer(rng.Intn(4), qs, cs)
			}
			if err := w.Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
