package workload

import (
	"fmt"
	"testing"

	"repro/internal/attr"
)

// FuzzWorkloadCompact drives a Workload through byte-encoded op
// sequences — intern, add-count, clear-peer, compact under varying
// retention windows — against an oracle that tracks the same state as
// plain per-peer count maps. After every op the workload must
// validate, and every count, total and intern decision must match the
// oracle; after every compaction the remap must be monotone and
// retire exactly the queries the oracle's policy predicts.
//
// The encoding is deliberately dense (every byte sequence decodes to
// a valid op stream) so the fuzzer spends its budget on state-space
// exploration instead of format guessing:
//
//	op = b[i] % 4:   0 intern, 1 add, 2 clear-peer, 3 compact
//	args              drawn from the following bytes, modulo-reduced
//
// Seed inputs live in testdata/fuzz/FuzzWorkloadCompact; CI runs a
// short -fuzztime smoke on top of the committed corpus.
func FuzzWorkloadCompact(f *testing.F) {
	// Build/churn/compact/rebuild-over-reclaimed-ids phases.
	f.Add([]byte{1, 0, 5, 2, 1, 1, 9, 1, 3, 0, 2, 0, 3, 0, 1, 2, 5, 3})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 0, 1, 1, 2, 1, 2, 2, 3, 7, 3, 0})
	f.Add([]byte{1, 1, 30, 3, 1, 2, 30, 3, 2, 1, 3, 1, 2, 2, 3, 0, 1, 0, 30, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const numPeers = 4
		const universe = 32 // distinct single-attr queries the ops range over

		w := New(numPeers)
		oracle := newCompactOracle(numPeers)
		next := func(i *int) byte {
			if *i >= len(data) {
				return 0
			}
			b := data[*i]
			*i++
			return b
		}
		for i := 0; i < len(data); {
			switch next(&i) % 4 {
			case 0: // intern only (a query may exist before any demand)
				q := attr.NewSet(attr.ID(next(&i) % universe))
				w.Intern(q)
				oracle.intern(q.Key())
			case 1: // add demand
				p := int(next(&i)) % numPeers
				q := attr.NewSet(attr.ID(next(&i) % universe))
				count := int(next(&i))%4 + 1
				w.Add(p, q, count)
				oracle.add(p, q.Key(), count)
			case 2: // clear a peer's workload (strands its queries)
				p := int(next(&i)) % numPeers
				w.ClearPeer(p)
				oracle.clear(p)
			case 3: // compact under a varying retention window
				minIdle := int(next(&i)) % 8
				before := w.NumQueries()
				remap, removed := w.Compact(minIdle)
				wantDead := oracle.compact(minIdle)
				if removed != wantDead {
					t.Fatalf("Compact(%d) removed %d, oracle predicts %d", minIdle, removed, wantDead)
				}
				if len(remap) != before {
					t.Fatalf("remap spans %d, want %d", len(remap), before)
				}
				nextID := QID(0)
				for q, nid := range remap {
					if nid == Dead {
						continue
					}
					if nid != nextID {
						t.Fatalf("remap not monotone-dense at old %d: %d want %d", q, nid, nextID)
					}
					nextID++
				}
				if int(nextID) != w.NumQueries() {
					t.Fatalf("remap keeps %d queries, workload has %d", nextID, w.NumQueries())
				}
			}
			if err := w.Validate(); err != nil {
				t.Fatalf("op %d: workload invalid: %v", i, err)
			}
			if err := oracle.check(w); err != nil {
				t.Fatalf("op %d: oracle mismatch: %v", i, err)
			}
		}
	})
}

// compactOracle is the reference model: per-peer counts keyed by the
// query's canonical string, plus the same demand clock and last-use
// stamps the retirement policy reads.
type compactOracle struct {
	peers   []map[string]int
	lastUse map[string]int64
	clock   int64
}

func newCompactOracle(numPeers int) *compactOracle {
	o := &compactOracle{
		peers:   make([]map[string]int, numPeers),
		lastUse: map[string]int64{},
	}
	for i := range o.peers {
		o.peers[i] = map[string]int{}
	}
	return o
}

func (o *compactOracle) intern(key string) {
	if _, ok := o.lastUse[key]; !ok {
		o.lastUse[key] = o.clock
	}
}

func (o *compactOracle) add(p int, key string, count int) {
	o.intern(key)
	o.peers[p][key] += count
	o.clock++
	o.lastUse[key] = o.clock
}

func (o *compactOracle) clear(p int) {
	clear(o.peers[p])
}

func (o *compactOracle) globalCount(key string) int {
	n := 0
	for _, m := range o.peers {
		n += m[key]
	}
	return n
}

func (o *compactOracle) compact(minIdle int) (dead int) {
	for key, last := range o.lastUse {
		if o.globalCount(key) == 0 && o.clock-last >= int64(minIdle) {
			delete(o.lastUse, key)
			dead++
		}
	}
	return dead
}

func (o *compactOracle) check(w *Workload) error {
	if got, want := w.NumQueries(), len(o.lastUse); got != want {
		return fmt.Errorf("%d distinct queries, oracle has %d", got, want)
	}
	total := 0
	for key, last := range o.lastUse {
		qid, ok := w.keys[key]
		if !ok {
			return fmt.Errorf("query %q lost", key)
		}
		if got, want := w.GlobalCount(qid), o.globalCount(key); got != want {
			return fmt.Errorf("query %q global %d, oracle %d", key, got, want)
		}
		if got := w.LastUse(qid); got != last {
			return fmt.Errorf("query %q lastUse %d, oracle %d", key, got, last)
		}
		for p, m := range o.peers {
			if got, want := w.Count(p, qid), m[key]; got != want {
				return fmt.Errorf("peer %d query %q count %d, oracle %d", p, key, got, want)
			}
		}
		total += o.globalCount(key)
	}
	if got := w.Total(); got != total {
		return fmt.Errorf("total %d, oracle %d", got, total)
	}
	if got := w.Clock(); got != o.clock {
		return fmt.Errorf("clock %d, oracle %d", got, o.clock)
	}
	return nil
}
