package sim

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
)

// TestJoinLeaveBetweenPeriods drives actors joining and departing the
// live simulation and cross-checks the surviving actors' local cost
// estimates against an exact engine over the same population: dynamic
// membership must not desynchronize the observation machinery.
func TestJoinLeaveBetweenPeriods(t *testing.T) {
	sys, cfg := smallSystem(t)
	s := newSim(sys, cfg, Selfish)
	s.RunPeriod()

	// A newcomer of category 0 joins as a singleton, two actors leave.
	joiner := peer.New(-1)
	joiner.SetItems([]attr.Set{attr.NewSet(0, 1), attr.NewSet(2, 3)})
	id := s.AddNode(joiner, []attr.Set{attr.NewSet(1), attr.NewSet(4)}, []int{3, 2}, cluster.None)
	if joiner.ID() != id {
		t.Fatalf("joiner ID %d want %d", joiner.ID(), id)
	}
	s.RemoveNode(3)
	s.RemoveNode(17)
	if s.Live() != sys.n-1 {
		t.Fatalf("live %d want %d", s.Live(), sys.n-1)
	}

	// The next observation phase must produce estimates matching the
	// exact engine over the mutated population.
	s.QueryPhase()
	eng := core.New(s.ContentPeers(), sys.wl, s.Config().Clone(), sys.theta, 1)
	for pid := 0; pid < len(s.nodes); pid++ {
		if s.nodes[pid] == nil {
			continue
		}
		for _, c := range s.Config().NonEmpty() {
			got := s.EstimatedPeerCost(pid, c)
			want := eng.PeerCost(pid, c)
			if !within(got, want, 1e-9) {
				t.Fatalf("peer %d cluster %d: estimated %g exact %g", pid, c, got, want)
			}
		}
	}

	// Reformulation still runs to quiescence over the mutated set.
	rpt := s.RunPeriod()
	if !rpt.Converged {
		t.Fatalf("period after churn did not converge: %+v", rpt)
	}

	// A departed slot is reused by the next joiner.
	rejoin := peer.New(-1)
	rejoin.SetItems([]attr.Set{attr.NewSet(6, 7)})
	if id := s.AddNode(rejoin, []attr.Set{attr.NewSet(7)}, []int{1}, cluster.None); id != 17 && id != 3 {
		t.Fatalf("rejoiner got slot %d, want a vacated slot", id)
	}
}

// TestNewOverVacatedSlots pins that sim.New accepts a population with
// nil (vacated) slots — the shape reform.System.ActorSim hands it
// after a Leave — counts only live actors, and reuses the vacated
// slots for joiners.
func TestNewOverVacatedSlots(t *testing.T) {
	sys, cfg := smallSystem(t)
	peers := append([]*peer.Peer(nil), sys.peers...)
	peers[7] = nil
	cfg.Unplace(7)
	sys.wl.ClearPeer(7)

	s := New(peers, sys.wl, cfg, Options{Alpha: 1, Theta: sys.theta, Epsilon: sys.epsilon, MaxRounds: 20})
	if s.Live() != sys.n-1 {
		t.Fatalf("live %d want %d", s.Live(), sys.n-1)
	}
	if rpt := s.RunPeriod(); rpt.Rounds == 0 {
		t.Fatal("no rounds executed over vacated-slot population")
	}
	joiner := peer.New(-1)
	joiner.SetItems([]attr.Set{attr.NewSet(0)})
	if id := s.AddNode(joiner, []attr.Set{attr.NewSet(0)}, []int{1}, cluster.None); id != 7 {
		t.Fatalf("joiner got slot %d, want vacated slot 7", id)
	}
}

// TestCompactionBetweenPeriods pins the actor simulation's side of
// workload compaction: the sim keys no durable state by QID — node
// demand lists share the workload's in-place-remapped entry slices,
// and the per-cluster recall estimates are rebuilt every query phase —
// so compacting the shared workload between periods changes nothing.
// Actors churned through with novel queries strand QIDs; after
// Workload.Compact the surviving actors' estimates must still match
// an exact engine over the compacted population, and reformulation
// must still converge.
func TestCompactionBetweenPeriods(t *testing.T) {
	sys, cfg := smallSystem(t)
	s := newSim(sys, cfg, Selfish)
	s.RunPeriod()

	// Transient actors with never-seen-again queries join and depart.
	for i := 0; i < 6; i++ {
		tr := peer.New(-1)
		tr.SetItems([]attr.Set{attr.NewSet(attr.ID(500 + i))})
		id := s.AddNode(tr, []attr.Set{attr.NewSet(attr.ID(500 + i))}, []int{2}, cluster.None)
		s.RemoveNode(id)
	}
	before := sys.wl.NumQueries()
	if _, removed := sys.wl.Compact(0); removed != 6 {
		t.Fatalf("compaction removed %d stranded queries, want 6 (of %d)", removed, before)
	}

	s.QueryPhase()
	eng := core.New(s.ContentPeers(), sys.wl, s.Config().Clone(), sys.theta, 1)
	for pid := 0; pid < len(s.nodes); pid++ {
		if s.nodes[pid] == nil {
			continue
		}
		for _, c := range s.Config().NonEmpty() {
			got := s.EstimatedPeerCost(pid, c)
			want := eng.PeerCost(pid, c)
			if !within(got, want, 1e-9) {
				t.Fatalf("post-compaction peer %d cluster %d: estimated %g exact %g", pid, c, got, want)
			}
		}
	}
	if rpt := s.RunPeriod(); !rpt.Converged {
		t.Fatalf("period after compaction did not converge: %+v", rpt)
	}
}
