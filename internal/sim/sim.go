// Package sim is a concurrent actor realization of the reformulation
// protocol: one goroutine per peer, communicating only through typed
// messages. It exists to demonstrate that the paper's protocol needs no
// global knowledge — each peer estimates its costs purely from query
// results annotated with the cluster ID (cid) they came from (§3.1),
// and representatives coordinate relocations with message exchanges.
//
// The deterministic engine in internal/protocol is what the experiment
// harness uses for numbers; sim cross-checks it: with full query
// flooding, the empirically estimated costs and the relocation
// decisions match the exact engine (asserted by tests), while every
// exchanged message is counted.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/stats"
	"repro/internal/workload"
)

// queryMsg asks a node to evaluate q against its local items; the
// responder replies on reply with its result count and its cid.
type queryMsg struct {
	from    int
	fromCID cluster.CID
	q       attr.Set
	qid     workload.QID
	weight  int // num(q, Q(from)) — lets responders track contribution
	reply   chan<- resultMsg
}

// resultMsg is a query answer annotated with the responder's cluster,
// as §3.1 requires.
type resultMsg struct {
	responder int
	cid       cluster.CID
	qid       workload.QID
	results   int
}

// gainMsg reports a peer's relocation gain to its representative.
type gainMsg struct {
	peer       int
	from, to   cluster.CID
	gain       float64
	wantsMove  bool
	newCluster bool
}

// Strategy names the relocation behavior a simulation runs.
type Strategy int

const (
	// Selfish peers minimize their own estimated pcost (§3.1.1).
	Selfish Strategy = iota
	// Altruistic peers maximize their tracked contribution (§3.1.2).
	Altruistic
)

// Options configure a simulation.
type Options struct {
	// Alpha and Theta mirror the cost model.
	Alpha float64
	Theta cluster.Theta
	// Epsilon is the request threshold.
	Epsilon float64
	// MaxRounds bounds the reformulation rounds of one period.
	MaxRounds int
	// Strategy selects peer behavior.
	Strategy Strategy
	// ProbeClusters bounds how many remote clusters a peer's queries
	// reach per period (its own cluster is always evaluated). Zero
	// means flooding to all clusters — §3.1's case where the observed
	// cluster recall equals the exact one. With a finite probe budget,
	// peers act on partial observations, trading message volume for
	// estimate quality (quantified by the routing ablation).
	ProbeClusters int
	// ProbeSeed makes the per-period probe selection deterministic.
	ProbeSeed uint64
}

// Node is one peer actor. Exported fields are immutable after
// construction; mutable state is owned by the node's goroutine during
// phases and read by the coordinator only at barriers.
type Node struct {
	id      int
	content *peer.Peer
	demands []workload.Entry
	demTot  int

	inbox chan queryMsg

	cid cluster.CID

	// observed[qid][cid] accumulates results per origin cluster; the
	// peer's view of cluster recall.
	observed map[workload.QID]map[cluster.CID]float64
	ownRes   map[workload.QID]float64
	// contributed[cid] accumulates results this node sent to queries
	// originating in cid, and contributedTotal the grand total — the
	// altruistic tracker of Eq. 6.
	contributed      map[cluster.CID]float64
	contributedTotal float64
}

// Sim wires the actors together. Membership is dynamic: AddNode and
// RemoveNode admit and retire actors between phases (a vacated slot is
// nil in nodes and reused by the next joiner), mirroring the slot
// discipline of the exact engine.
type Sim struct {
	nodes []*Node
	free  []int
	wl    *workload.Workload
	cfg   *cluster.Config
	opts  Options

	messages atomic.Int64
	period   int
}

// New builds a simulation over the same inputs as core.New. The
// configuration is adopted (and mutated by reformulation rounds). As
// in core.New, a nil peer entry is a vacated slot: no actor is
// spawned for it and the slot is available for reuse by AddNode.
//
// The sim keys no durable state by QID: node demand lists share the
// workload's entry slices (which Workload.Compact remaps in place)
// and recall estimates are rebuilt every query phase, so the shared
// workload may be compacted between periods.
func New(peers []*peer.Peer, wl *workload.Workload, cfg *cluster.Config, opts Options) *Sim {
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 100
	}
	if opts.Theta.F == nil {
		opts.Theta = cluster.LinearTheta()
	}
	s := &Sim{wl: wl, cfg: cfg, opts: opts}
	s.nodes = make([]*Node, len(peers))
	for i := len(peers) - 1; i >= 0; i-- {
		p := peers[i]
		if p == nil {
			s.free = append(s.free, i)
			continue
		}
		if p.ID() != i {
			panic(fmt.Sprintf("sim: peers[%d] has ID %d", i, p.ID()))
		}
		s.nodes[i] = &Node{
			id:      i,
			content: p,
			demands: wl.Peer(i),
			demTot:  wl.PeerTotal(i),
			inbox:   make(chan queryMsg, 64),
			cid:     cfg.ClusterOf(i),
		}
	}
	return s
}

// Live returns the number of live actors — the configuration's
// occupied-slot count, which AddNode/RemoveNode keep in lockstep with
// the node table.
func (s *Sim) Live() int { return s.cfg.Live() }

// AddNode admits a new actor with the given content and local workload
// into cluster `to` (cluster.None founds a singleton), between phases.
// The joiner participates from the next query phase on; its slot
// (reused from a departed actor when possible) is returned and the
// content peer's ID rebound to it.
func (s *Sim) AddNode(content *peer.Peer, queries []attr.Set, counts []int, to cluster.CID) int {
	if len(queries) != len(counts) {
		panic(fmt.Sprintf("sim: AddNode %d queries, %d counts", len(queries), len(counts)))
	}
	var id int
	if k := len(s.free); k > 0 {
		id = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		id = s.cfg.AddSlot()
		if wid := s.wl.AddPeerSlot(); wid != id || id != len(s.nodes) {
			panic(fmt.Sprintf("sim: slot misalignment cfg=%d wl=%d nodes=%d", id, wid, len(s.nodes)))
		}
		s.nodes = append(s.nodes, nil)
	}
	content.SetID(id)
	for i, q := range queries {
		s.wl.Add(id, q, counts[i])
	}
	if to == cluster.None {
		slot, ok := s.cfg.EmptyCluster()
		if !ok {
			panic("sim: AddNode found no empty cluster slot")
		}
		to = slot
	}
	s.cfg.Place(id, to)
	s.nodes[id] = &Node{
		id:      id,
		content: content,
		demands: s.wl.Peer(id),
		demTot:  s.wl.PeerTotal(id),
		inbox:   make(chan queryMsg, 64),
		cid:     to,
	}
	return id
}

// RemoveNode retires the actor in slot id between phases, clearing its
// workload and vacating its slot for reuse.
func (s *Sim) RemoveNode(id int) {
	if id < 0 || id >= len(s.nodes) || s.nodes[id] == nil {
		panic(fmt.Sprintf("sim: RemoveNode %d is not a live node", id))
	}
	s.cfg.Unplace(id)
	s.wl.ClearPeer(id)
	s.nodes[id] = nil
	s.free = append(s.free, id)
}

// ContentPeers returns the per-slot content peers (nil for vacated
// slots), aligned with the sim's configuration — the population an
// exact engine view is built over.
func (s *Sim) ContentPeers() []*peer.Peer {
	out := make([]*peer.Peer, len(s.nodes))
	for i, n := range s.nodes {
		if n != nil {
			out[i] = n.content
		}
	}
	return out
}

// Messages returns the total number of messages exchanged so far
// (query, result, gain, request and grant messages all count as one).
func (s *Sim) Messages() int64 { return s.messages.Load() }

// Config returns the live configuration.
func (s *Sim) Config() *cluster.Config { return s.cfg }

// QueryPhase runs one observation period T: every peer issues its
// local workload against every other peer (full flooding across
// clusters), and answers incoming queries. Result messages carry the
// responder's cid, from which each peer rebuilds its per-cluster
// recall estimates; responders update their contribution trackers.
func (s *Sim) QueryPhase() {
	s.period++
	// Under a probe budget each asker computes the cluster set its
	// queries may reach this period (own cluster plus ProbeClusters
	// random remote ones), before any goroutine runs.
	reach := s.reachableSets()
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		n.observed = make(map[workload.QID]map[cluster.CID]float64, len(n.demands))
		n.ownRes = make(map[workload.QID]float64, len(n.demands))
		n.contributed = make(map[cluster.CID]float64)
		n.contributedTotal = 0
		// Evaluate own results sequentially before any goroutine runs:
		// during the phase a node's content is touched only by its own
		// responder goroutine (peer.ResultCount mutates lazy caches).
		for _, d := range n.demands {
			res := float64(n.content.ResultCount(s.wl.Query(d.Q)))
			n.ownRes[d.Q] = res
			// A peer's own queries originate in its own cluster; Eq. 6
			// counts them in its contribution even though no message is
			// ever sent for them.
			if res > 0 {
				w := res * float64(d.Count)
				n.contributed[n.cid] += w
				n.contributedTotal += w
			}
		}
	}

	// Responder goroutines serve their inboxes until closed.
	var serveWG sync.WaitGroup
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		serveWG.Add(1)
		go func(n *Node) {
			defer serveWG.Done()
			for msg := range n.inbox {
				res := n.content.ResultCount(msg.q)
				if res > 0 {
					// Track the contribution to the asker's cluster,
					// weighted by the query's multiplicity there (Eq. 6).
					w := float64(res * msg.weight)
					n.contributed[msg.fromCID] += w
					n.contributedTotal += w
				}
				msg.reply <- resultMsg{responder: n.id, cid: n.cid, qid: msg.qid, results: res}
				s.messages.Add(1) // the reply
			}
		}(n)
	}

	// Asker goroutines flood their queries.
	var askWG sync.WaitGroup
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		askWG.Add(1)
		go func(n *Node) {
			defer askWG.Done()
			// The reply channel must hold every pending reply: askers
			// drain only after flooding all queries, so an undersized
			// buffer could deadlock responders against askers.
			reply := make(chan resultMsg, len(n.demands)*(len(s.nodes)-1)+1)
			pending := 0
			allowed := reach[n.id]
			for _, d := range n.demands {
				q := s.wl.Query(d.Q)
				for _, m := range s.nodes {
					if m == nil || m.id == n.id {
						continue
					}
					if allowed != nil && !allowed[m.cid] {
						continue
					}
					m.inbox <- queryMsg{
						from: n.id, fromCID: n.cid, q: q, qid: d.Q,
						weight: d.Count, reply: reply,
					}
					s.messages.Add(1) // the query
					pending++
				}
			}
			for ; pending > 0; pending-- {
				r := <-reply
				if r.results == 0 {
					continue
				}
				byCID := n.observed[r.qid]
				if byCID == nil {
					byCID = make(map[cluster.CID]float64)
					n.observed[r.qid] = byCID
				}
				byCID[r.cid] += float64(r.results)
			}
		}(n)
	}
	askWG.Wait()
	for _, n := range s.nodes {
		if n != nil {
			close(n.inbox)
		}
	}
	serveWG.Wait()
	for _, n := range s.nodes {
		if n != nil {
			n.inbox = make(chan queryMsg, 64) // fresh inbox for the next period
		}
	}
}

// reachableSets returns, per asker, the cluster set its queries may
// reach this period, or a nil map (everything) when flooding.
func (s *Sim) reachableSets() []map[cluster.CID]bool {
	if s.opts.ProbeClusters <= 0 {
		return make([]map[cluster.CID]bool, len(s.nodes))
	}
	nonEmpty := s.cfg.NonEmpty()
	out := make([]map[cluster.CID]bool, len(s.nodes))
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		allowed := map[cluster.CID]bool{n.cid: true}
		// Deterministic per (seed, period, peer) probe selection.
		rng := stats.NewRNG(s.opts.ProbeSeed ^ uint64(s.period)<<24 ^ uint64(n.id)<<4 ^ 0x9e3779b9)
		perm := rng.Perm(len(nonEmpty))
		for _, idx := range perm {
			if len(allowed) >= 1+s.opts.ProbeClusters {
				break
			}
			allowed[nonEmpty[idx]] = true
		}
		out[n.id] = allowed
	}
	return out
}

// EstimatedPeerCost is node n's local estimate of pcost(n, c), built
// purely from observed, cid-annotated results. With full flooding it
// equals core.Engine.PeerCost exactly.
func (s *Sim) EstimatedPeerCost(id int, c cluster.CID) float64 {
	n := s.nodes[id]
	size := s.cfg.Size(c)
	if c != n.cid {
		size++
	}
	cost := s.opts.Alpha * s.opts.Theta.F(size) / float64(s.cfg.Live())
	if n.demTot == 0 {
		return cost
	}
	for _, d := range n.demands {
		total := n.ownRes[d.Q]
		for _, v := range n.observed[d.Q] {
			total += v
		}
		if total == 0 {
			continue
		}
		in := n.observed[d.Q][c]
		in += n.ownRes[d.Q] // the peer's results travel with it
		w := float64(d.Count) / float64(n.demTot)
		cost += w * (1 - in/total)
	}
	return cost
}

// EstimatedContribution is node id's tracked Eq. 6 value for cluster c.
func (s *Sim) EstimatedContribution(id int, c cluster.CID) float64 {
	n := s.nodes[id]
	if n.contributedTotal == 0 {
		return 0
	}
	return n.contributed[c] / n.contributedTotal
}

// decide computes node id's relocation intent from its local state.
func (s *Sim) decide(id int) gainMsg {
	n := s.nodes[id]
	msg := gainMsg{peer: id, from: n.cid, to: n.cid}
	switch s.opts.Strategy {
	case Selfish:
		curCost := s.EstimatedPeerCost(id, n.cid)
		bestC, bestCost := n.cid, curCost
		for _, c := range s.cfg.NonEmpty() {
			if c == n.cid {
				continue
			}
			cost := s.EstimatedPeerCost(id, c)
			if cost < bestCost || (cost == bestCost && bestC != n.cid && c < bestC) {
				bestC, bestCost = c, cost
			}
		}
		if bestC != n.cid && curCost-bestCost > s.opts.Epsilon {
			msg.to = bestC
			msg.gain = curCost - bestCost
			msg.wantsMove = true
		}
	case Altruistic:
		curContrib := s.EstimatedContribution(id, n.cid)
		bestC, best := n.cid, curContrib
		for _, c := range s.cfg.NonEmpty() {
			if c == n.cid {
				continue
			}
			v := s.EstimatedContribution(id, c)
			if v > best || (v == best && bestC != n.cid && c < bestC) {
				bestC, best = c, v
			}
		}
		if bestC != n.cid {
			sz := s.cfg.Size(bestC)
			delta := s.opts.Alpha * float64(sz) *
				(s.opts.Theta.F(sz+1) - s.opts.Theta.F(sz)) / float64(s.cfg.Live())
			gain := best - curContrib - delta
			if gain > s.opts.Epsilon {
				msg.to = bestC
				msg.gain = gain
				msg.wantsMove = true
			}
		}
	}
	return msg
}

// RoundReport summarizes one reformulation round of the actor system.
type RoundReport struct {
	Requests int
	Granted  int
}

// ReformulationRound runs the two-phase §3.2 round over the current
// observations: members report gains to representatives (messages),
// representatives broadcast their best request (messages), every
// representative independently sorts and lock-filters the requests,
// and the granted moves execute.
func (s *Sim) ReformulationRound() RoundReport {
	nonEmpty := s.cfg.NonEmpty()

	// Phase 1: decisions run concurrently (they touch only node-local
	// state); representatives pick their cluster's best request.
	decisions := make([]gainMsg, len(s.nodes))
	var wg sync.WaitGroup
	for _, n := range s.nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			decisions[id] = s.decide(id)
		}(n.id)
	}
	wg.Wait()

	var requests []gainMsg
	for _, c := range nonEmpty {
		members := s.cfg.Members(c)
		s.messages.Add(int64(len(members) - 1)) // gain reports to the rep
		best := gainMsg{}
		have := false
		for _, pid := range members {
			d := decisions[pid]
			if !d.wantsMove {
				continue
			}
			if !have || d.gain > best.gain || (d.gain == best.gain && d.peer < best.peer) {
				best, have = d, true
			}
		}
		if have {
			requests = append(requests, best)
		}
	}
	if len(nonEmpty) > 1 {
		s.messages.Add(int64(len(nonEmpty) * (len(nonEmpty) - 1))) // request broadcast
	}

	// Phase 2: deterministic global order; every representative derives
	// the same grant set (the paper: "cluster representatives can
	// process their lists independently").
	sort.Slice(requests, func(i, j int) bool {
		if requests[i].gain != requests[j].gain {
			return requests[i].gain > requests[j].gain
		}
		return requests[i].peer < requests[j].peer
	})
	joinLocked := map[cluster.CID]bool{}
	leaveLocked := map[cluster.CID]bool{}
	granted := 0
	for _, req := range requests {
		if leaveLocked[req.from] || joinLocked[req.to] {
			continue
		}
		s.messages.Add(2) // the two reps coordinate
		s.cfg.Move(req.peer, req.to)
		s.nodes[req.peer].cid = req.to
		joinLocked[req.from] = true
		leaveLocked[req.to] = true
		granted++
	}
	// Peers learn the post-round membership of their (new) clusters via
	// their representatives; observation cids refresh next period.
	return RoundReport{Requests: len(requests), Granted: granted}
}

// PeriodReport summarizes one full maintenance period.
type PeriodReport struct {
	Rounds    int
	Converged bool
	Messages  int64
}

// RunPeriod performs one period T: a query/observation phase followed
// by reformulation rounds until quiescence or MaxRounds.
func (s *Sim) RunPeriod() PeriodReport {
	before := s.Messages()
	s.QueryPhase()
	rpt := PeriodReport{}
	for round := 1; round <= s.opts.MaxRounds; round++ {
		rr := s.ReformulationRound()
		rpt.Rounds = round
		if rr.Requests == 0 {
			rpt.Converged = true
			break
		}
		// Observations refer to pre-move cluster IDs; refresh them so
		// the next round sees current membership.
		s.QueryPhase()
	}
	rpt.Messages = s.Messages() - before
	return rpt
}

// NewEngineView builds an exact engine over the simulation's current
// configuration, for cross-checking estimates in tests.
func (s *Sim) NewEngineView(peers []*peer.Peer) *core.Engine {
	return core.New(peers, s.wl, s.cfg.Clone(), s.opts.Theta, s.opts.Alpha)
}
