package sim

import (
	"testing"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/stats"
	"repro/internal/workload"
)

// testSystem bundles a small, cleanly clusterable instance: 5
// categories of 6 peers, each holding items over its category's
// attribute range and querying attributes of that range. (Very small
// random instances can oscillate forever — a legitimate outcome of the
// selfish game; convergence tests need a well-separated one.)
type testSystem struct {
	peers   []*peer.Peer
	wl      *workload.Workload
	n       int
	epsilon float64
	theta   cluster.Theta
}

func smallSystem(t testing.TB) (*testSystem, *cluster.Config) {
	t.Helper()
	const (
		categories = 5
		perGroup   = 6
		attrsEach  = 6
	)
	n := categories * perGroup
	rng := stats.NewRNG(99)
	peers := make([]*peer.Peer, n)
	wl := workload.New(n)
	for i := 0; i < n; i++ {
		cat := i % categories
		base := attr.ID(cat * attrsEach)
		p := peer.New(i)
		items := make([]attr.Set, 3)
		for d := range items {
			items[d] = attr.NewSet(base+attr.ID(rng.Intn(attrsEach)), base+attr.ID(rng.Intn(attrsEach)))
		}
		p.SetItems(items)
		peers[i] = p
		for q := 0; q < 2; q++ {
			wl.Add(i, attr.NewSet(base+attr.ID(rng.Intn(attrsEach))), 1+rng.Intn(4))
		}
	}
	// Random m = categories initial clustering.
	assign := make([]cluster.CID, n)
	for i := range assign {
		assign[i] = cluster.CID(rng.Intn(categories))
	}
	sys := &testSystem{peers: peers, wl: wl, n: n, epsilon: 0.001, theta: cluster.LinearTheta()}
	return sys, cluster.FromAssignment(assign)
}

func (ts *testSystem) engine(cfg *cluster.Config) *core.Engine {
	return core.New(ts.peers, ts.wl, cfg, ts.theta, 1)
}

func newSim(ts *testSystem, cfg *cluster.Config, strat Strategy) *Sim {
	return New(ts.peers, ts.wl, cfg, Options{
		Alpha: 1, Theta: ts.theta, Epsilon: ts.epsilon,
		MaxRounds: 50, Strategy: strat,
	})
}

func TestEstimatedCostsMatchExactEngine(t *testing.T) {
	sys, cfg := smallSystem(t)
	eng := sys.engine(cfg.Clone())
	s := newSim(sys, cfg, Selfish)
	s.QueryPhase()
	for pid := 0; pid < sys.n; pid++ {
		for _, c := range cfg.NonEmpty() {
			got := s.EstimatedPeerCost(pid, c)
			want := eng.PeerCost(pid, c)
			if !within(got, want, 1e-9) {
				t.Fatalf("peer %d cluster %d: estimated %g exact %g", pid, c, got, want)
			}
		}
	}
}

func TestEstimatedContributionMatchesExactEngine(t *testing.T) {
	sys, cfg := smallSystem(t)
	eng := sys.engine(cfg.Clone())
	s := newSim(sys, cfg, Altruistic)
	s.QueryPhase()
	for pid := 0; pid < sys.n; pid++ {
		for _, c := range cfg.NonEmpty() {
			got := s.EstimatedContribution(pid, c)
			want := eng.Contribution(pid, c)
			if !within(got, want, 1e-9) {
				t.Fatalf("peer %d cluster %d: estimated %g exact %g", pid, c, got, want)
			}
		}
	}
}

func TestActorRoundMatchesProtocolRound(t *testing.T) {
	sys, cfg := smallSystem(t)

	// Deterministic protocol on a clone.
	eng := sys.engine(cfg.Clone())
	runner := protocol.NewRunner(eng, core.NewSelfish(), protocol.Options{
		Epsilon: sys.epsilon, MaxRounds: 50, AllowNewClusters: false,
	})
	runner.BeginPeriod()
	rr := runner.RunRound(1)

	// Actor system over the original.
	s := newSim(sys, cfg, Selfish)
	s.QueryPhase()
	ar := s.ReformulationRound()

	if ar.Granted != rr.Granted {
		t.Fatalf("actor granted %d, protocol granted %d", ar.Granted, rr.Granted)
	}
	// The resulting partitions must be identical (same assignment, as
	// both use the same deterministic tie-breaking).
	for p := 0; p < sys.n; p++ {
		if s.Config().ClusterOf(p) != eng.Config().ClusterOf(p) {
			t.Fatalf("peer %d: actor cluster %d, protocol cluster %d",
				p, s.Config().ClusterOf(p), eng.Config().ClusterOf(p))
		}
	}
}

func TestRunPeriodConvergesAndCounts(t *testing.T) {
	sys, cfg := smallSystem(t)
	s := newSim(sys, cfg, Selfish)
	rpt := s.RunPeriod()
	if !rpt.Converged {
		t.Fatalf("period did not converge: %+v", rpt)
	}
	if rpt.Messages <= 0 || s.Messages() != rpt.Messages {
		t.Fatalf("message accounting: period=%d total=%d", rpt.Messages, s.Messages())
	}
	// The reached configuration must be protocol-stable: one more
	// round requests nothing.
	s.QueryPhase()
	if rr := s.ReformulationRound(); rr.Requests != 0 {
		t.Fatalf("post-convergence round issued %d requests", rr.Requests)
	}
}

func TestAltruisticPeriodRuns(t *testing.T) {
	sys, cfg := smallSystem(t)
	s := newSim(sys, cfg, Altruistic)
	rpt := s.RunPeriod()
	if rpt.Rounds == 0 {
		t.Fatal("no rounds executed")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() ([]cluster.CID, int64) {
		sys, cfg := smallSystem(t)
		s := newSim(sys, cfg, Selfish)
		s.RunPeriod()
		return s.Config().Assignment(), s.Messages()
	}
	a1, m1 := run()
	a2, m2 := run()
	if m1 != m2 {
		t.Fatalf("message counts differ: %d vs %d", m1, m2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("assignments differ at peer %d", i)
		}
	}
}

func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+want)
}
