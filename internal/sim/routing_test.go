package sim

import (
	"math"
	"testing"
)

func TestProbeBudgetReducesMessages(t *testing.T) {
	sys, cfg := smallSystem(t)

	flood := New(sys.peers, sys.wl, cfg.Clone(), Options{
		Alpha: 1, Theta: sys.theta, Epsilon: sys.epsilon, MaxRounds: 10,
		Strategy: Selfish,
	})
	flood.QueryPhase()

	probed := New(sys.peers, sys.wl, cfg.Clone(), Options{
		Alpha: 1, Theta: sys.theta, Epsilon: sys.epsilon, MaxRounds: 10,
		Strategy: Selfish, ProbeClusters: 1, ProbeSeed: 9,
	})
	probed.QueryPhase()

	if probed.Messages() >= flood.Messages() {
		t.Fatalf("probe budget did not reduce messages: %d >= %d",
			probed.Messages(), flood.Messages())
	}
}

func TestProbeBudgetEstimatesAreConservative(t *testing.T) {
	sys, cfg := smallSystem(t)
	exact := sys.engine(cfg.Clone())

	s := New(sys.peers, sys.wl, cfg, Options{
		Alpha: 1, Theta: sys.theta, Epsilon: sys.epsilon, MaxRounds: 10,
		Strategy: Selfish, ProbeClusters: 2, ProbeSeed: 3,
	})
	s.QueryPhase()

	// Partial observation changes estimates but never yields NaN or
	// negative costs.
	var worst float64
	for pid := 0; pid < sys.n; pid++ {
		for _, c := range cfg.NonEmpty() {
			est := s.EstimatedPeerCost(pid, c)
			if math.IsNaN(est) || est < 0 {
				t.Fatalf("peer %d cluster %d: estimate %g", pid, c, est)
			}
			if d := math.Abs(est - exact.PeerCost(pid, c)); d > worst {
				worst = d
			}
		}
	}
	if worst == 0 {
		t.Fatal("probe budget 2 of 5 clusters produced exact estimates — budget not applied?")
	}
}

func TestProbePeriodStillTerminates(t *testing.T) {
	sys, cfg := smallSystem(t)
	s := New(sys.peers, sys.wl, cfg, Options{
		Alpha: 1, Theta: sys.theta, Epsilon: sys.epsilon, MaxRounds: 40,
		Strategy: Selfish, ProbeClusters: 2, ProbeSeed: 11,
	})
	rpt := s.RunPeriod()
	if rpt.Rounds == 0 {
		t.Fatal("no rounds ran")
	}
	if err := s.Config().Validate(); err != nil {
		t.Fatal(err)
	}
}
