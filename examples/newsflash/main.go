// Newsflash: a breaking topic shifts part of the population's
// interests at once (§4.2's workload update, plus §3.2's new-cluster
// rule). Selfish peers whose recall collapsed chase the data; peers
// with drifted interests that no existing cluster serves found a new
// cluster.
package main

import (
	"fmt"

	reform "repro"
)

func main() {
	sys := reform.New(reform.Options{
		Scenario:            reform.SameCategory,
		Strategy:            reform.Selfish,
		StartFromCategories: true,
		AllowNewClusters:    true,
		Seed:                7,
	})
	fmt.Printf("steady state: %d clusters, social cost %.3f\n",
		sys.NumClusters(), sys.SocialCost())

	// The flash: a quarter of category-0's readers suddenly care only
	// about category 5's story.
	affected := 0
	for p := 0; p < sys.NumPeers() && affected < 5; p++ {
		if sys.DataCategory(p) == 0 {
			sys.RedirectInterest(p, 5, 1.0)
			affected++
		}
	}
	fmt.Printf("\n%d peers redirected their whole interest to category 5\n", affected)
	fmt.Printf("cost after the flash, before maintenance: %.3f\n", sys.SocialCost())

	report := sys.Run()
	fmt.Printf("maintenance: %d rounds, %d relocations\n",
		report.EffectiveRounds(), countMoves(report))
	fmt.Printf("cost after maintenance: %.3f (initial %.3f is not recovered exactly —\n", sys.SocialCost(), 0.1)
	fmt.Println("grown clusters cost more to participate in, as §4.2 observes)")
	fmt.Printf("clusters now: %v\n", sys.ClusterSizes())
}

func countMoves(r reform.Report) int {
	n := 0
	for _, rr := range r.Rounds {
		n += rr.Granted
	}
	return n
}
