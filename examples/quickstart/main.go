// Quickstart: build a 200-peer clustered overlay from scratch and let
// selfish reformulation discover the category structure — the paper's
// §4.1 conclusion that the relocation strategies double as a cluster
// discovery mechanism.
package main

import (
	"fmt"

	reform "repro"
)

func main() {
	sys := reform.New(reform.Options{
		Scenario:         reform.SameCategory,
		Strategy:         reform.Selfish,
		Init:             reform.InitSingletons,
		AllowNewClusters: true,
		Seed:             1,
	})

	fmt.Printf("initial: %d clusters, social cost %.3f, workload cost %.3f\n",
		sys.NumClusters(), sys.SocialCost(), sys.WorkloadCost())

	report := sys.Run()

	fmt.Printf("after %d rounds (converged=%v): %d clusters, social cost %.3f, workload cost %.3f\n",
		report.EffectiveRounds(), report.Converged,
		sys.NumClusters(), sys.SocialCost(), sys.WorkloadCost())
	fmt.Printf("cluster sizes: %v\n", sys.ClusterSizes())
	fmt.Printf("messages exchanged: %d\n", report.Messages)
	fmt.Printf("pure Nash equilibrium (tol=0.001): %v\n", sys.IsNashEquilibrium(0.001))
}
