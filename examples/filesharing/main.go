// Filesharing: a Gnutella-style sharing network under churn. Every
// maintenance period a slice of the population leaves and is replaced
// by newcomers with fresh libraries and interests; periodic selfish
// reformulation (§3.2) keeps the clustered overlay's recall from
// decaying — the paper's core maintenance claim.
package main

import (
	"fmt"

	reform "repro"
)

func main() {
	sys := reform.New(reform.Options{
		Scenario:            reform.SameCategory,
		Strategy:            reform.Selfish,
		StartFromCategories: true, // begin from a good clustering
		AllowNewClusters:    true,
		Seed:                42,
	})
	fmt.Printf("steady state: %d clusters, social cost %.3f\n\n", sys.NumClusters(), sys.SocialCost())
	fmt.Println("period  churned  cost-before  cost-after  rounds  clusters")

	n := sys.NumPeers()
	churnPerPeriod := n / 20 // 5% of the population per period
	next := 0
	for period := 1; period <= 8; period++ {
		// Newcomers take over the slots of leavers; their libraries and
		// interests land in a rotating category.
		for i := 0; i < churnPerPeriod; i++ {
			slot := (period*31 + i*7) % n
			sys.ChurnPeer(slot, next)
			next = (next + 1) % 10
		}
		before := sys.SocialCost()
		report := sys.Run()
		fmt.Printf("%6d  %7d  %11.3f  %10.3f  %6d  %8d\n",
			period, churnPerPeriod, before, sys.SocialCost(),
			report.EffectiveRounds(), sys.NumClusters())
	}
	fmt.Println("\nthe overlay keeps absorbing churn without re-clustering from scratch")
}
