// Command longhaul demonstrates unbounded-uptime operation: a live
// system under permanent session churn whose newcomers keep
// introducing never-before-seen queries. Distinct queries intern
// engine rows forever, so without intervention memory grows with
// query history; in-place workload compaction (CompactWorkload)
// reclaims the rows of dead queries whenever they outnumber the live
// ones, keeping the footprint proportional to live demand while
// preserving every cost exactly.
package main

import (
	"fmt"

	"repro"
)

func main() {
	sys := reform.New(reform.Options{
		Peers:               60,
		Categories:          6,
		StartFromCategories: true,
		AllowNewClusters:    true,
		Seed:                7,
	})
	sys.Run()
	fmt.Printf("settled: %d peers, %d clusters, %d distinct queries, scost %.4f\n",
		sys.NumPeers(), sys.NumClusters(), sys.NumDistinctQueries(), sys.SocialCost())

	peak := sys.NumDistinctQueries()
	reclaimed, compactions := 0, 0
	for epoch := 1; epoch <= 8; epoch++ {
		// A wave of sessions: newcomers join (fresh documents, fresh
		// interests — novel query words intern new QIDs), reformulation
		// integrates them, then the wave departs and strands its QIDs.
		var wave []int
		for i := 0; i < 12; i++ {
			wave = append(wave, sys.Join(i%6))
		}
		sys.Run()
		for _, pid := range wave {
			sys.Leave(pid)
		}
		sys.Run()
		if q := sys.NumDistinctQueries(); q > peak {
			peak = q
		}
		// The serve daemon's policy: compact when dead QIDs outnumber
		// live ones. Costs are untouched — compaction is invisible.
		if 2*sys.DeadQueries() > sys.NumDistinctQueries() {
			before := sys.SocialCost()
			reclaimed += sys.CompactWorkload()
			compactions++
			if sys.SocialCost() != before {
				panic("compaction changed a cost")
			}
		}
		fmt.Printf("epoch %d: %d distinct queries live (%d dead), peak %d, scost %.4f\n",
			epoch, sys.NumDistinctQueries(), sys.DeadQueries(), peak, sys.SocialCost())
	}
	fmt.Printf("compacted %d times, reclaimed %d query rows; footprint bounded at %d (peak %d)\n",
		compactions, reclaimed, sys.NumDistinctQueries(), peak)
}
