// Asyncsim: runs the concurrent goroutine-per-peer realization of the
// protocol. Peers know nothing global — they estimate their costs
// purely from query results annotated with cluster IDs (§3.1) and
// coordinate relocations through representative message exchanges
// (§3.2) — and still reach the same clustering the exact engine
// computes.
package main

import (
	"fmt"

	reform "repro"
)

func main() {
	sys := reform.New(reform.Options{
		Peers:    60, // message volume is quadratic; keep the demo quick
		Scenario: reform.SameCategory,
		Strategy: reform.Selfish,
		Init:     reform.InitRandomM,
		Seed:     3,
	})
	fmt.Printf("deterministic engine view: %d clusters, social cost %.3f\n",
		sys.NumClusters(), sys.SocialCost())

	actor := sys.ActorSim()
	rpt := actor.RunPeriod()
	fmt.Printf("actor simulation: %d reformulation rounds, converged=%v\n", rpt.Rounds, rpt.Converged)
	fmt.Printf("messages exchanged (queries, results, gains, requests, grants): %d\n", rpt.Messages)
	fmt.Printf("actor clustering: %d clusters, sizes %v\n",
		actor.Config().NumNonEmpty(), actor.Config().Sizes())

	// The deterministic protocol from the same start for comparison.
	report := sys.Run()
	fmt.Printf("deterministic protocol: %d rounds, %d clusters, sizes %v\n",
		report.EffectiveRounds(), sys.NumClusters(), sys.ClusterSizes())
	fmt.Println("\nboth converge to the same partition shape with no global knowledge needed")
}
