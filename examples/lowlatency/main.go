// Command lowlatency demonstrates resumable maintenance off the
// mutation critical path: instead of blocking every join behind a
// full reformulation period (up to MaxRounds rounds of cluster
// scans), the system steps the period with a small work budget and
// admits peers between steps — each join waits for at most one step,
// and the finished period is byte-identical to a blocking Run when
// nothing interleaves.
package main

import (
	"fmt"
	"runtime"

	"repro"
)

func main() {
	sys := reform.New(reform.Options{
		Peers:            80,
		Categories:       8,
		Init:             reform.InitSingletons,
		AllowNewClusters: true,
		// Phase-1 decide scans fan out over all cores; the outcome is
		// byte-identical to serial, just faster.
		Workers: runtime.GOMAXPROCS(0),
		Seed:    7,
	})
	fmt.Printf("start:   %d peers, %d clusters, social cost %.4f\n",
		sys.NumPeers(), sys.NumClusters(), sys.SocialCost())

	// Maintain with 8 work units per step; a stream of joiners lands
	// between steps — none of them waits for the period to finish.
	const budget = 8
	steps, joins := 0, 0
	for {
		done, rpt := sys.StepReform(budget)
		if done {
			fmt.Printf("period:  %d rounds in %d bounded steps, %d mid-period joins, social cost %.4f\n",
				rpt.RoundsRun, steps, joins, rpt.FinalSCost)
			break
		}
		steps++
		if steps%5 == 0 && joins < 10 {
			sys.Join(joins % 8) // admitted mid-period, integrated next rounds
			joins++
		}
	}

	// Follow-up periods absorb the mid-period joiners to convergence.
	for {
		done, rpt := sys.StepReform(budget)
		if done && rpt.Converged {
			fmt.Printf("settled: %d peers, %d clusters, social cost %.4f\n",
				sys.NumPeers(), sys.NumClusters(), sys.SocialCost())
			return
		}
	}
}
