// Command membership demonstrates dynamic membership: peers join and
// leave a live system through the incremental cost-engine path (no
// rebuilds), with periodic selfish reformulation absorbing the churn.
package main

import (
	"fmt"

	"repro"
)

func main() {
	sys := reform.New(reform.Options{
		Peers:               60,
		Categories:          6,
		StartFromCategories: true,
		AllowNewClusters:    true,
		Seed:                42,
	})
	sys.Run()
	fmt.Printf("settled: %d peers, %d clusters, social cost %.4f\n",
		sys.NumPeers(), sys.NumClusters(), sys.SocialCost())

	// A flash crowd of newcomers interested in category 0 arrives.
	var crowd []int
	for i := 0; i < 12; i++ {
		crowd = append(crowd, sys.Join(0))
	}
	fmt.Printf("after burst join: %d peers, %d clusters, social cost %.4f\n",
		sys.NumPeers(), sys.NumClusters(), sys.SocialCost())
	sys.Run()
	fmt.Printf("absorbed:         %d peers, %d clusters, social cost %.4f\n",
		sys.NumPeers(), sys.NumClusters(), sys.SocialCost())

	// The crowd departs again; reformulation restores the overlay.
	for _, pid := range crowd {
		sys.Leave(pid)
	}
	sys.Run()
	fmt.Printf("recovered:        %d peers, %d clusters, social cost %.4f\n",
		sys.NumPeers(), sys.NumClusters(), sys.SocialCost())
}
