package reform

import (
	"testing"
)

func small(opts Options) Options {
	if opts.Peers == 0 {
		opts.Peers = 40
	}
	if opts.Categories == 0 {
		opts.Categories = 4
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 100
	}
	return opts
}

func TestQuickstartPath(t *testing.T) {
	sys := New(small(Options{
		Scenario:         SameCategory,
		Strategy:         Selfish,
		Init:             InitSingletons,
		AllowNewClusters: true,
		Seed:             1,
	}))
	if sys.NumPeers() != 40 || sys.NumClusters() != 40 {
		t.Fatalf("initial state: %d peers, %d clusters", sys.NumPeers(), sys.NumClusters())
	}
	before := sys.SocialCost()
	rpt := sys.Run()
	if !rpt.Converged {
		t.Fatalf("no convergence: %+v", rpt)
	}
	if sys.SocialCost() >= before {
		t.Fatalf("cost did not improve: %g -> %g", before, sys.SocialCost())
	}
	if got := sys.NumClusters(); got < 4 || got > 8 {
		t.Errorf("clusters=%d want ~4", got)
	}
	if !sys.IsNashEquilibrium(0.001) {
		t.Error("converged state not Nash at protocol tolerance")
	}
	sizes := sys.ClusterSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 40 {
		t.Errorf("sizes %v do not cover all peers", sizes)
	}
}

func TestStrategiesSelectable(t *testing.T) {
	for _, s := range []StrategyKind{Selfish, Altruistic, Hybrid} {
		sys := New(small(Options{Scenario: SameCategory, Strategy: s, Init: InitRandomM, Seed: 2}))
		rpt := sys.Run()
		if rpt.RoundsRun == 0 {
			t.Errorf("strategy %d: no rounds", s)
		}
	}
}

func TestStartFromCategoriesIsStable(t *testing.T) {
	sys := New(small(Options{
		Scenario:            SameCategory,
		Strategy:            Selfish,
		StartFromCategories: true,
		Seed:                3,
	}))
	before := sys.SocialCost()
	rpt := sys.Run()
	if rpt.EffectiveRounds() > 2 {
		t.Errorf("good configuration needed %d rounds of work", rpt.EffectiveRounds())
	}
	if sys.SocialCost() > before+1e-9 {
		t.Errorf("maintenance worsened a good configuration: %g -> %g", before, sys.SocialCost())
	}
}

func TestInterestDriftAndMaintenance(t *testing.T) {
	sys := New(small(Options{
		Scenario:            SameCategory,
		Strategy:            Selfish,
		StartFromCategories: true,
		AllowNewClusters:    false,
		Seed:                4,
	}))
	base := sys.SocialCost()
	// Two peers of category 0 move their interest to category 1.
	var subjects []int
	for p := 0; p < sys.NumPeers() && len(subjects) < 2; p++ {
		if sys.DataCategory(p) == 0 {
			sys.RedirectInterest(p, 1, 1.0)
			subjects = append(subjects, p)
		}
	}
	perturbed := sys.SocialCost()
	if perturbed <= base {
		t.Fatalf("perturbation did not raise cost: %g -> %g", base, perturbed)
	}
	before := make(map[int]float64, len(subjects))
	for _, p := range subjects {
		before[p] = sys.PeerCost(p)
	}
	sys.Run()
	// Selfish maintenance must improve the *updated peers'* individual
	// costs. The social cost may even worsen slightly at small update
	// fractions — §4.2's point that selfish movements raise the cost of
	// the peers whose workload did not change.
	for _, p := range subjects {
		if got := sys.PeerCost(p); got >= before[p] {
			t.Errorf("peer %d: individual cost not improved: %g -> %g", p, before[p], got)
		}
		if sys.ClusterOf(p) == 0 {
			t.Errorf("peer %d never left its stale cluster", p)
		}
	}
}

func TestChurnPeerKeepsSystemConsistent(t *testing.T) {
	sys := New(small(Options{Scenario: SameCategory, Strategy: Selfish, StartFromCategories: true, Seed: 5}))
	for i := 0; i < 4; i++ {
		sys.ChurnPeer(i*3, i%4)
	}
	rpt := sys.Run()
	if !rpt.Converged {
		t.Errorf("no convergence after churn")
	}
}

func TestReplaceContentChangesCategory(t *testing.T) {
	sys := New(small(Options{Scenario: SameCategory, Strategy: Altruistic, StartFromCategories: true, Seed: 6}))
	sys.ReplaceContent(0, 2, 1.0)
	if sys.DataCategory(0) != 2 {
		t.Fatalf("DataCategory=%d want 2", sys.DataCategory(0))
	}
}

func TestActorSimAgreesWithEngine(t *testing.T) {
	sys := New(small(Options{Scenario: SameCategory, Strategy: Selfish, Init: InitRandomM, Seed: 7}))
	actor := sys.ActorSim()
	actor.QueryPhase()
	for p := 0; p < sys.NumPeers(); p += 5 {
		cid := sys.Engine().Config().ClusterOf(p)
		got := actor.EstimatedPeerCost(p, cid)
		want := sys.PeerCost(p)
		if d := got - want; d > 1e-9 || d < -1e-9 {
			t.Fatalf("peer %d: actor estimate %g engine %g", p, got, want)
		}
	}
}

func TestDeterminismAcrossSystems(t *testing.T) {
	a := New(small(Options{Scenario: DifferentCategory, Strategy: Selfish, Init: InitSingletons, Seed: 11}))
	b := New(small(Options{Scenario: DifferentCategory, Strategy: Selfish, Init: InitSingletons, Seed: 11}))
	ra, rb := a.Run(), b.Run()
	if ra.RoundsRun != rb.RoundsRun || ra.FinalSCost != rb.FinalSCost {
		t.Fatalf("same seed diverged: %+v vs %+v", ra, rb)
	}
	c := New(small(Options{Scenario: DifferentCategory, Strategy: Selfish, Init: InitSingletons, Seed: 12}))
	rc := c.Run()
	if rc.FinalSCost == ra.FinalSCost && rc.Messages == ra.Messages {
		t.Log("different seeds produced identical outcomes (possible but unusual)")
	}
}

func TestCompactWorkloadPublicAPI(t *testing.T) {
	sys := New(small(Options{
		Scenario:            SameCategory,
		StartFromCategories: true,
		AllowNewClusters:    true,
		Seed:                11,
	}))
	sys.Run()

	// Churn: a transient crowd joins (interning fresh query words from
	// their fresh documents) and departs, stranding dead QIDs.
	var crowd []int
	for i := 0; i < 15; i++ {
		crowd = append(crowd, sys.Join(i%4))
	}
	sys.Run()
	for _, pid := range crowd {
		sys.Leave(pid)
	}
	grown := sys.NumDistinctQueries()
	dead := sys.DeadQueries()
	if dead == 0 {
		t.Fatal("churn stranded no queries; test setup too tame")
	}

	cost := sys.SocialCost()
	wcost := sys.WorkloadCost()
	if got := sys.CompactWorkload(); got != dead {
		t.Fatalf("CompactWorkload reclaimed %d, DeadQueries said %d", got, dead)
	}
	if got := sys.NumDistinctQueries(); got != grown-dead {
		t.Fatalf("%d distinct queries after compaction, want %d", got, grown-dead)
	}
	if sys.DeadQueries() != 0 {
		t.Fatal("dead queries survive compaction")
	}
	if got := sys.SocialCost(); got != cost {
		t.Fatalf("compaction changed the social cost: %v -> %v", cost, got)
	}
	if got := sys.WorkloadCost(); got != wcost {
		t.Fatalf("compaction changed the workload cost: %v -> %v", wcost, got)
	}
	// The system keeps operating across the remap: reformulation,
	// another churn wave (reusing reclaimed QIDs), and a second
	// compaction cycle.
	sys.Run()
	pid := sys.Join(1)
	sys.Leave(pid)
	sys.CompactWorkload()
	sys.Run()
	if !sys.IsNashEquilibrium(0.001) {
		t.Error("post-compaction system did not reformulate to Nash")
	}
}

func TestQueryBatchPublicAPI(t *testing.T) {
	sys := New(small(Options{AllowNewClusters: true, Seed: 5}))
	sys.Run()

	// Resolve a real workload query back to its term strings so the
	// batch is guaranteed to have supply somewhere.
	eng := sys.Engine()
	wl := eng.Workload()
	vocab := sys.sys.Gen.Vocab()
	if wl.NumQueries() == 0 {
		t.Fatal("system has no workload queries")
	}
	known := wl.Query(0).Names(vocab)

	answers := sys.QueryBatch([][]string{known, {"no-such-term-ever"}, {}})
	if len(answers) != 3 {
		t.Fatalf("QueryBatch returned %d answers, want 3", len(answers))
	}
	got := answers[0]
	if got.Total <= 0 || len(got.Clusters) == 0 {
		t.Fatalf("known query found nothing: %+v", got)
	}
	recall := 0.0
	sum := 0
	for i, c := range got.Clusters {
		if c.Results <= 0 || c.Size <= 0 {
			t.Fatalf("incoherent cluster answer %+v", c)
		}
		if i > 0 && got.Clusters[i-1].Cluster >= c.Cluster {
			t.Fatalf("clusters not ascending: %+v", got.Clusters)
		}
		recall += c.Recall
		sum += c.Results
	}
	if sum != got.Total || recall < 1-1e-9 || recall > 1+1e-9 {
		t.Fatalf("answer does not add up: sum=%d total=%d recall=%g", sum, got.Total, recall)
	}
	// Cross-check the total against the engine's supplier walk.
	want := 0
	eng.ForEachSupplier(wl.Query(0), func(_, res int) { want += res })
	if got.Total != want {
		t.Fatalf("QueryBatch total %d, engine says %d", got.Total, want)
	}

	for _, a := range answers[1:] {
		if a.Total != 0 || len(a.Clusters) != 0 {
			t.Fatalf("unanswerable query matched: %+v", a)
		}
	}
	if single := sys.Query(known...); single.Total != got.Total {
		t.Fatalf("Query total %d != QueryBatch total %d", single.Total, got.Total)
	}
}

// TestStepReformMatchesRun pins the stepped public API: with no
// interleaved mutations a StepReform-driven period reaches the same
// costs and clusters as Run, for any budget and worker count.
func TestStepReformMatchesRun(t *testing.T) {
	build := func(workers int) *System {
		return New(small(Options{
			Scenario: SameCategory, Strategy: Selfish, Init: InitSingletons,
			AllowNewClusters: true, Workers: workers, Seed: 3,
		}))
	}
	ref := build(1)
	want := ref.Run()
	for _, cfg := range [][2]int{{1, 1}, {3, 2}, {50, 4}, {0, 2}} {
		sys := build(cfg[1])
		var rpt *Report
		done := false
		steps := 0
		for !done {
			done, rpt = sys.StepReform(cfg[0])
			steps++
			if steps > 1_000_000 {
				t.Fatalf("budget=%d: period never completed", cfg[0])
			}
		}
		if rpt.FinalSCost != want.FinalSCost || rpt.FinalClusters != want.FinalClusters ||
			rpt.RoundsRun != want.RoundsRun || !rpt.Converged {
			t.Fatalf("budget=%d workers=%d: stepped %+v vs Run %+v",
				cfg[0], cfg[1], rpt, want)
		}
		if cfg[0] == 1 && steps < 2 {
			t.Fatalf("budget=1 finished in %d step", steps)
		}
	}
}

// TestStepReformInterleavedJoinLeave drives the low-latency serving
// pattern: joins and leaves land between maintenance steps, the
// period completes, and continued maintenance re-converges.
func TestStepReformInterleavedJoinLeave(t *testing.T) {
	sys := New(small(Options{
		Scenario: SameCategory, Strategy: Selfish, Init: InitSingletons,
		AllowNewClusters: true, Seed: 4,
	}))
	joined := make([]int, 0, 8)
	steps := 0
	for {
		done, rpt := sys.StepReform(2)
		if done {
			if rpt.RoundsRun == 0 {
				t.Fatal("empty report")
			}
			break
		}
		steps++
		switch steps % 3 {
		case 0:
			joined = append(joined, sys.Join(steps%4))
		case 1:
			if len(joined) > 0 {
				sys.Leave(joined[0])
				joined = joined[1:]
			}
		}
		if steps > 1_000_000 {
			t.Fatal("period never completed under churn")
		}
	}
	// Quiesce: run periods to convergence with no more churn.
	for i := 0; i < 20; i++ {
		if rpt := sys.Run(); rpt.Converged {
			if !sys.IsNashEquilibrium(0.001) {
				// The drift rule can gate new-cluster moves; existing-
				// cluster stability is what convergence guarantees.
				t.Log("note: converged state not full Nash (drift-gated)")
			}
			return
		}
	}
	t.Fatal("never converged after churn stopped")
}
