package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/router"
	"repro/internal/service"
	"repro/internal/stats"
)

// runLoadtestCommand implements `reform loadtest`: a built-in load
// generator for the serving daemon's lock-free read path. Concurrent
// workers replay a fixed-seed query workload (single queries or
// batches) against a target daemon — or against an in-process one
// seeded for the occasion — and report throughput and p50/p95/p99
// latency. With -maintain and -churn the mutation path runs
// concurrently — joins and leaves land during maintenance periods —
// and their p50/p95/p99 latencies are reported separately,
// demonstrating that neither reads nor mutations stall behind
// maintenance periods (the stepped scheduler bounds a mutation's wait
// to one step; tune it with -step-budget). Any failed request,
// query or mutation, exits nonzero.
//
// With -router N the query load is served by N in-process stateless
// router replicas following the daemon's /v1/view/watch feed instead
// of by the daemon itself; -router-addr points at externally running
// `reform route` replicas (comma-separated). -verify quiesces after
// the load, waits for every replica to catch up to the daemon's
// published sequence, and byte-compares router answers against the
// authoritative engine's, exiting nonzero on any divergence.
func runLoadtestCommand(args []string) {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	addr := fs.String("addr", "", "target daemon base URL (empty: start an in-process daemon)")
	peers := fs.Int("peers", 48, "population seeded into the in-process daemon")
	categories := fs.Int("categories", 6, "term categories of the seeded population and replayed queries")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent load workers")
	requests := fs.Int("requests", 5000, "total requests to issue (ignored when -duration is set)")
	duration := fs.Duration("duration", 0, "run for a fixed wall-clock time instead of a request count")
	batch := fs.Int("batch", 0, "queries per request: 0 or 1 posts /query, larger posts /query/batch")
	seed := fs.Uint64("seed", 1, "workload replay seed; equal seeds replay equal query sequences")
	zipfS := fs.Float64("zipf", 0, "draw replayed queries from a fixed pool with Zipf(s) rank skew (0: fresh uniform queries; s>=1 concentrates most load on a few hot queries); seeded and replayable")
	routeCache := fs.Int("route-cache", 4096, "route-cache entries of the in-process daemon (0 disables; ignored with -addr)")
	maintain := fs.Duration("maintain", 0, "POST /reform on this interval during the load (0: off)")
	churn := fs.Duration("churn", 0, "join+leave one peer on this interval during the load (0: off)")
	stepBudget := fs.Int("step-budget", 0, "maintenance step budget of the in-process daemon (0: service default; negative: whole periods under one lock hold)")
	routerN := fs.Int("router", 0, "serve the query load from this many in-process router replicas following the daemon (0: query the daemon directly)")
	routerAddrs := fs.String("router-addr", "", "comma-separated base URLs of external `reform route` replicas to load instead of the daemon")
	verify := fs.Bool("verify", false, "after the load, byte-compare quiesced router answers against the daemon's (needs -router or -router-addr)")
	fs.Parse(args)
	if *batch < 0 || *workers <= 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -batch must be >= 0 and -workers > 0")
		os.Exit(2)
	}
	if *zipfS < 0 {
		fmt.Fprintln(os.Stderr, "loadtest: -zipf must be >= 0")
		os.Exit(2)
	}
	if *routerN > 0 && *routerAddrs != "" {
		fmt.Fprintln(os.Stderr, "loadtest: -router and -router-addr are mutually exclusive")
		os.Exit(2)
	}
	if *verify && *routerN == 0 && *routerAddrs == "" {
		fmt.Fprintln(os.Stderr, "loadtest: -verify needs -router or -router-addr")
		os.Exit(2)
	}

	term := func(cat, i int) string { return fmt.Sprintf("c%d-t%d", cat, i) }
	base := *addr
	client := &http.Client{Timeout: 30 * time.Second}
	if base == "" {
		cacheEntries := *routeCache
		if cacheEntries == 0 {
			cacheEntries = -1 // flag 0 = off; Config 0 = default size
		}
		srv := service.New(service.Config{StepBudget: *stepBudget, RouteCache: cacheEntries})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		client = ts.Client()
		// Keep the timeout: a read path stalled behind the mutation
		// lock must fail the run, not hang it.
		client.Timeout = 30 * time.Second
		// Seed a deterministic population: content and demand follow
		// the category-term scheme the replayed queries draw from.
		rng := stats.NewRNG(*seed)
		for i := 0; i < *peers; i++ {
			cat := i % *categories
			body, _ := json.Marshal(map[string]any{
				"items": [][]string{
					{term(cat, rng.Intn(6)), term(cat, rng.Intn(6))},
					{term(cat, rng.Intn(6)), term(cat, rng.Intn(6))},
				},
				"queries": []map[string]any{
					{"terms": []string{term(cat, rng.Intn(6))}, "count": 1 + rng.Intn(4)},
				},
			})
			resp, err := client.Post(base+"/v1/peers", "application/json", bytes.NewReader(body))
			if err != nil || resp.StatusCode != http.StatusCreated {
				fmt.Fprintf(os.Stderr, "loadtest: seeding peer %d failed: %v\n", i, statusOf(resp, err))
				os.Exit(1)
			}
			drain(resp)
		}
		post(client, base+"/v1/reform")
	}

	// Optional router tier: the query load targets the replicas while
	// mutations keep hitting the authoritative daemon at base.
	queryBases := []string{base}
	var inproc []*router.Router
	switch {
	case *routerN > 0:
		queryBases = nil
		for i := 0; i < *routerN; i++ {
			rt := router.New(router.Config{
				Upstream:    base,
				PollTimeout: 2 * time.Second,
				RetryAfter:  50 * time.Millisecond,
			})
			rt.Start()
			defer rt.Shutdown()
			rts := httptest.NewServer(rt.Handler())
			defer rts.Close()
			inproc = append(inproc, rt)
			queryBases = append(queryBases, rts.URL)
		}
	case *routerAddrs != "":
		queryBases = nil
		for _, a := range strings.Split(*routerAddrs, ",") {
			if a = strings.TrimSuffix(strings.TrimSpace(a), "/"); a != "" {
				queryBases = append(queryBases, a)
			}
		}
		if len(queryBases) == 0 {
			fmt.Fprintln(os.Stderr, "loadtest: -router-addr lists no usable URLs")
			os.Exit(2)
		}
	}
	usingRouters := *routerN > 0 || *routerAddrs != ""

	// viewSeq reads a server's published/synchronized view sequence.
	viewSeq := func(b string) uint64 {
		st := fetchStats(client, b)
		if st == nil {
			return 0
		}
		f, _ := st["view_seq"].(float64)
		return uint64(f)
	}
	// waitRoutersSynced blocks until every replica has caught up to the
	// daemon's currently published sequence.
	waitRoutersSynced := func(timeout time.Duration) bool {
		target := viewSeq(base)
		deadline := time.Now().Add(timeout)
		for i, rt := range inproc {
			if !rt.WaitSynced(target, time.Until(deadline)) {
				fmt.Fprintf(os.Stderr, "loadtest: router %d stuck at seq %d, daemon at %d\n", i, rt.Seq(), target)
				return false
			}
		}
		if *routerAddrs != "" {
			for _, qb := range queryBases {
				for viewSeq(qb) < target {
					if time.Now().After(deadline) {
						fmt.Fprintf(os.Stderr, "loadtest: router %s stuck at seq %d, daemon at %d\n", qb, viewSeq(qb), target)
						return false
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
		}
		return true
	}
	if usingRouters && !waitRoutersSynced(10*time.Second) {
		// The tier must be synchronized before the load begins: a
		// cold-start 503 is a config problem, not a measurement.
		os.Exit(1)
	}

	// Pre-render the replayed request bodies per worker: fixed seed ->
	// fixed byte sequences, and the hot loop measures the daemon, not
	// the generator.
	queriesPerReq := max(*batch, 1)
	path := "/v1/query"
	if *batch > 1 {
		path = "/v1/query/batch"
	}
	freshQuery := func(rng *stats.RNG) map[string]any {
		cat := rng.Intn(*categories)
		terms := []string{term(cat, rng.Intn(6))}
		if rng.Intn(3) == 0 {
			terms = append(terms, term(cat, rng.Intn(6)))
		}
		return map[string]any{"terms": terms}
	}
	// With -zipf the workers draw from one fixed query pool with
	// Zipf-skewed ranks instead of generating fresh uniform queries:
	// the hot head of the pool dominates the load, which is exactly the
	// traffic the view-epoch route cache exists for. Pool and ranks
	// both derive from -seed, so runs replay exactly.
	const zipfPoolSize = 512
	var zipfPool []map[string]any
	var zipf *stats.Zipf
	if *zipfS > 0 {
		prng := stats.NewRNG(*seed ^ 0x51bf)
		zipfPool = make([]map[string]any, zipfPoolSize)
		for i := range zipfPool {
			zipfPool[i] = freshQuery(prng)
		}
		zipf = stats.NewZipf(zipfPoolSize, *zipfS)
	}
	makeBody := func(rng *stats.RNG) []byte {
		one := func() map[string]any {
			if zipf != nil {
				return zipfPool[zipf.Sample(rng)]
			}
			return freshQuery(rng)
		}
		var v any
		if *batch > 1 {
			qs := make([]map[string]any, *batch)
			for i := range qs {
				qs[i] = one()
			}
			v = map[string]any{"queries": qs}
		} else {
			v = one()
		}
		b, _ := json.Marshal(v)
		return b
	}
	const replayLen = 256
	bodies := make([][][]byte, *workers)
	for w := range bodies {
		rng := stats.NewRNG(*seed*1_000_003 + uint64(w))
		bodies[w] = make([][]byte, replayLen)
		for i := range bodies[w] {
			bodies[w][i] = makeBody(rng)
		}
	}

	// Optional concurrent mutation load.
	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	mutate := func(every time.Duration, fn func()) {
		if every <= 0 {
			return
		}
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fn()
				case <-stopMut:
					return
				}
			}
		}()
	}
	// Join and leave latencies are recorded separately: they are the
	// mutation path, and the whole point of the stepped maintenance
	// scheduler is that their tail is bounded by one step even while
	// a period is in progress. The slices are owned by the single
	// churn goroutine and read only after mutWG.Wait().
	var maintains, churns, mutErrs atomic.Int64
	var joinLat, leaveLat []float64
	mutate(*maintain, func() {
		if post(client, base+"/v1/reform") {
			maintains.Add(1)
		} else {
			mutErrs.Add(1)
		}
	})
	churnRNG := stats.NewRNG(*seed ^ 0xc0ffee)
	mutate(*churn, func() {
		cat := churnRNG.Intn(*categories)
		body, _ := json.Marshal(map[string]any{
			"items":   [][]string{{term(cat, churnRNG.Intn(6))}},
			"queries": []map[string]any{{"terms": []string{term(cat, churnRNG.Intn(6))}, "count": 1}},
		})
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/peers", "application/json", bytes.NewReader(body))
		if err != nil {
			mutErrs.Add(1)
			return
		}
		if resp.StatusCode != http.StatusCreated {
			drain(resp)
			mutErrs.Add(1)
			return
		}
		joinLat = append(joinLat, float64(time.Since(t0).Nanoseconds())/1e6)
		var jr struct {
			ID int `json:"id"`
		}
		json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/peers/%d", base, jr.ID), nil)
		t0 = time.Now()
		resp, err = client.Do(req)
		if err != nil {
			mutErrs.Add(1)
			return
		}
		drain(resp)
		if resp.StatusCode != http.StatusOK {
			mutErrs.Add(1)
			return
		}
		leaveLat = append(leaveLat, float64(time.Since(t0).Nanoseconds())/1e6)
		churns.Add(1)
	})

	// The measured load.
	var remaining atomic.Int64
	remaining.Store(int64(*requests))
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	type result struct {
		latMs []float64
		errs  int
	}
	results := make([]result, *workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for i := 0; ; i++ {
				if deadline.IsZero() {
					if remaining.Add(-1) < 0 {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				body := bodies[w][i%replayLen]
				t0 := time.Now()
				resp, err := client.Post(queryBases[(w+i)%len(queryBases)]+path, "application/json", bytes.NewReader(body))
				if err != nil {
					res.errs++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil || resp.StatusCode != http.StatusOK {
					res.errs++
					continue
				}
				res.latMs = append(res.latMs, float64(time.Since(t0).Nanoseconds())/1e6)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(stopMut)
	mutWG.Wait()

	var lat []float64
	errs := 0
	for _, r := range results {
		lat = append(lat, r.latMs...)
		errs += r.errs
	}
	sort.Float64s(lat)
	reqs := len(lat)
	fmt.Printf("loadtest: %d requests (%d queries) in %.2fs, %d workers, %s, seed %d\n",
		reqs, reqs*queriesPerReq, wall.Seconds(), *workers, path, *seed)
	fmt.Printf("  throughput  %.0f req/s (%.0f queries/s)\n",
		float64(reqs)/wall.Seconds(), float64(reqs*queriesPerReq)/wall.Seconds())
	if reqs > 0 {
		sum := 0.0
		for _, l := range lat {
			sum += l
		}
		fmt.Printf("  latency ms  p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
			stats.Quantile(lat, 0.5), stats.Quantile(lat, 0.95), stats.Quantile(lat, 0.99),
			lat[len(lat)-1], sum/float64(reqs))
	}
	if *maintain > 0 || *churn > 0 {
		fmt.Printf("  concurrent  %d maintenance periods, %d churn cycles\n",
			maintains.Load(), churns.Load())
	}
	printMutLat := func(name string, lat []float64) {
		if len(lat) == 0 {
			return
		}
		sort.Float64s(lat)
		fmt.Printf("  %-11s p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  (n=%d)\n",
			name, stats.Quantile(lat, 0.5), stats.Quantile(lat, 0.95),
			stats.Quantile(lat, 0.99), lat[len(lat)-1], len(lat))
	}
	printMutLat("join ms", joinLat)
	printMutLat("leave ms", leaveLat)
	fmt.Printf("  errors      %d query, %d mutation\n", errs, mutErrs.Load())

	// Quiesced verification: every replica catches up to the daemon's
	// final published sequence, then must answer byte-identically.
	verifyFailed := false
	if *verify {
		if !waitRoutersSynced(10 * time.Second) {
			verifyFailed = true
		} else {
			fetch := func(b string, body []byte) (int, []byte) {
				resp, err := client.Post(b+path, "application/json", bytes.NewReader(body))
				if err != nil {
					return 0, []byte(err.Error())
				}
				defer resp.Body.Close()
				out, _ := io.ReadAll(resp.Body)
				return resp.StatusCode, out
			}
			checked := 0
		verifyLoop:
			for i := 0; i < replayLen; i++ {
				body := bodies[0][i]
				wantCode, want := fetch(base, body)
				for _, qb := range queryBases {
					gotCode, got := fetch(qb, body)
					checked++
					if gotCode != wantCode || !bytes.Equal(want, got) {
						fmt.Fprintf(os.Stderr, "loadtest: DIVERGENCE on %s\n  daemon %d %s\n  %s %d %s\n",
							body, wantCode, want, qb, gotCode, got)
						verifyFailed = true
						break verifyLoop
					}
				}
			}
			if !verifyFailed {
				fmt.Printf("  verify      %d router answers byte-identical to the daemon's\n", checked)
			}
		}
	}

	if st := fetchStats(client, base); st != nil {
		fmt.Printf("server stats: peers=%v clusters=%v queries_served=%v published_views=%v\n",
			st["peers"], st["clusters"], st["queries_served"], st["published_views"])
		if lk, ok := st["mutation_lock"].(map[string]any); ok {
			holds, _ := lk["holds"].(float64)
			mean, _ := lk["mean_us"].(float64)
			p99, _ := lk["p99_us"].(float64)
			fmt.Printf("  lock holds  n=%.0f mean %.1fus p99 %.1fus\n", holds, mean, p99)
		}
		printCacheStats("  ", st)
		if *maintain > 0 {
			if mt, ok := st["maintenance"].(map[string]any); ok {
				scanned, _ := mt["scanned"].(float64)
				skipped, _ := mt["skipped_clean"].(float64)
				hits, _ := mt["shortlist_hits"].(float64)
				falls, _ := mt["fallbacks"].(float64)
				full, _ := mt["full_scans"].(float64)
				fmt.Printf("  decide scan %.0f evaluated: %.0f skipped-clean, %.0f shortlist, %.0f fallback, %.0f full\n",
					scanned, skipped, hits, falls, full)
			}
		}
	}
	if usingRouters {
		for i, qb := range queryBases {
			st := fetchStats(client, qb)
			if st == nil {
				fmt.Printf("router %d (%s): stats unavailable\n", i, qb)
				continue
			}
			fmt.Printf("router %d: synced=%v view_seq=%v full_syncs=%v delta_syncs=%v sync_errors=%v queries_served=%v\n",
				i, st["synced"], st["view_seq"], st["full_syncs"], st["delta_syncs"],
				st["sync_errors"], st["queries_served"])
			printCacheStats("  ", st)
		}
	}
	if errs > 0 || mutErrs.Load() > 0 || verifyFailed {
		os.Exit(1)
	}
}

func statusOf(resp *http.Response, err error) any {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return fmt.Sprintf("%d %s", resp.StatusCode, body)
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func post(client *http.Client, url string) bool {
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusOK
}

// printCacheStats renders a /v1/stats payload's route_cache block (the
// daemon's and each router's): hit rate alongside the raw counters.
func printCacheStats(indent string, st map[string]any) {
	rc, ok := st["route_cache"].(map[string]any)
	if !ok {
		return
	}
	if on, _ := rc["enabled"].(bool); !on {
		fmt.Printf("%sroute cache disabled\n", indent)
		return
	}
	hits, _ := rc["hits"].(float64)
	misses, _ := rc["misses"].(float64)
	evictions, _ := rc["evictions"].(float64)
	bypasses, _ := rc["bypasses"].(float64)
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * hits / (hits + misses)
	}
	fmt.Printf("%sroute cache hit rate %.1f%% (%.0f hits, %.0f misses, %.0f evictions, %.0f bypasses)\n",
		indent, rate, hits, misses, evictions, bypasses)
}

func fetchStats(client *http.Client, base string) map[string]any {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st map[string]any
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return nil
	}
	return st
}
