package main

import (
	"log"
	"testing"
	"time"
)

// TestClusterFailoverE2E runs the full three-node failover exercise —
// boot, churn through every node, kill the leader mid-period, promote,
// re-sync, verify byte-identical survivors — in-process so the race
// detector covers the whole leader/follower path.
func TestClusterFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e in -short mode")
	}
	logger := log.New(testWriter{t}, "", 0)
	if err := runCluster(logger, 45, 2, 1, 90*time.Second); err != nil {
		t.Fatal(err)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
