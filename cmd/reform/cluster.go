package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/service"
)

// runClusterCommand implements `reform cluster`: a self-contained
// three-node failover exercise. It boots a leader and two followers on
// loopback listeners, drives churn and queries through all three
// (followers redirect control-plane writes to the leader), kills the
// leader while a maintenance period is in flight, promotes a follower
// with POST /v1/promote, re-syncs the remaining follower from the new
// leader, drives more churn, and then verifies the two survivors hold
// byte-identical overlay state (GET /v1/snapshot) and answer queries
// byte-identically, with costs within float tolerance. Exit status is
// nonzero on any divergence — CI runs this as the cluster smoke test.
func runClusterCommand(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	peers := fs.Int("peers", 90, "peers to join before the leader is killed")
	queriesPer := fs.Int("queries", 3, "workload queries per joining peer")
	seed := fs.Uint64("seed", 1, "workload seed")
	timeout := fs.Duration("timeout", 120*time.Second, "overall deadline")
	fs.Parse(args)

	logger := log.New(os.Stderr, "reform-cluster ", log.LstdFlags)
	if err := runCluster(logger, *peers, *queriesPer, int64(*seed), *timeout); err != nil {
		logger.Fatalf("FAIL: %v", err)
	}
	fmt.Println("reform-cluster: PASS")
}

// clusterNode is one in-process daemon on a real loopback listener.
type clusterNode struct {
	name string
	url  string
	ln   net.Listener
	srv  *service.Server
	http *http.Server
}

func (n *clusterNode) start(cfg service.Config, logger *log.Logger) {
	cfg.Logf = func(format string, args ...any) {
		logger.Printf(n.name+": "+format, args...)
	}
	n.srv = service.New(cfg)
	n.srv.Start()
	n.http = &http.Server{Handler: n.srv.Handler()}
	go n.http.Serve(n.ln)
}

// kill simulates a crash: watchers wake, every connection is severed,
// nothing is flushed gracefully.
func (n *clusterNode) kill() {
	n.srv.BeginShutdown()
	n.http.Close()
}

func (n *clusterNode) stop() {
	n.srv.BeginShutdown()
	n.http.Close()
	n.srv.Shutdown()
}

func runCluster(logger *log.Logger, peers, queriesPer int, seed int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 15 * time.Second}

	// Three loopback listeners first, so every node can know the full
	// member list before any server starts.
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
		nodes[i] = &clusterNode{
			name: fmt.Sprintf("node%d", i),
			url:  "http://" + ln.Addr().String(),
			ln:   ln,
		}
	}
	// Maintenance periods are triggered explicitly and stretched with a
	// step budget of 1 so the kill lands mid-period.
	base := service.Config{StepBudget: 1} // ReformEvery 0: periods only on demand
	nodes[0].start(base, logger)
	for i := 1; i < 3; i++ {
		cfg := base
		// Every node but itself: after the leader dies, the survivor
		// rotation still reaches whichever follower got promoted.
		for j, m := range nodes {
			if j != i {
				cfg.Join = append(cfg.Join, m.url)
			}
		}
		nodes[i].start(cfg, logger)
	}
	defer func() {
		for _, n := range nodes {
			n.stop()
		}
	}()
	logger.Printf("booted %s (leader), %s, %s (followers)", nodes[0].url, nodes[1].url, nodes[2].url)

	for _, n := range nodes[1:] {
		if err := waitFor(deadline, n.name+" synced", func() (bool, error) {
			return replBool(client, n.url, "synced"), nil
		}); err != nil {
			return err
		}
	}

	// Phase 1: churn and queries through all three nodes. Follower
	// control planes answer 307 to the leader; the client replays.
	rng := rand.New(rand.NewSource(seed))
	ids, err := driveChurn(client, nodes, rng, peers, queriesPer, 0)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	for i := 0; i < len(ids)/4; i++ {
		url := nodes[i%3].url
		if _, _, err := httpJSON(client, http.MethodDelete, fmt.Sprintf("%s/v1/peers/%d", url, ids[i]), nil); err != nil {
			return fmt.Errorf("leave %d: %w", ids[i], err)
		}
	}
	if err := followersCaughtUp(client, deadline, nodes[0], nodes[1:]); err != nil {
		return err
	}
	logger.Printf("phase 1 done: %d joins, %d leaves replicated to both followers", len(ids), len(ids)/4)

	// Phase 2: start a maintenance period and kill the leader while it
	// is in flight.
	go httpJSON(client, http.MethodPost, nodes[0].url+"/v1/reform", nil)
	midPeriod := false
	for time.Now().Before(deadline) {
		st, err := getStats(client, nodes[0].url)
		if err != nil {
			return fmt.Errorf("leader stats: %w", err)
		}
		if m, _ := st["maintenance"].(map[string]any); m != nil && m["active"] == true {
			midPeriod = true
			break
		}
		if n, _ := st["reforms"].(float64); n >= 1 {
			break // the period outran the poll; kill anyway
		}
	}
	nodes[0].kill()
	logger.Printf("leader killed (mid-period: %v)", midPeriod)

	// Phase 3: promote node1; node2 rotates to it and re-syncs.
	status, body, err := httpJSON(client, http.MethodPost, nodes[1].url+"/v1/promote",
		map[string]any{"mode": "resume"})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("promote: status %d, err %v, body %s", status, err, body)
	}
	logger.Printf("node1 promoted: %s", bytes.TrimSpace(body))
	if err := waitFor(deadline, "node2 following node1", func() (bool, error) {
		st, err := getStats(client, nodes[2].url)
		if err != nil {
			return false, nil
		}
		repl, _ := st["replication"].(map[string]any)
		return repl != nil && repl["synced"] == true && repl["leader_url"] == nodes[1].url, nil
	}); err != nil {
		return err
	}

	// Phase 4: more churn through both survivors, then quiesce.
	survivors := nodes[1:]
	if _, err := driveChurn(client, survivors, rng, peers/3, queriesPer, len(ids)); err != nil {
		return fmt.Errorf("post-failover churn: %w", err)
	}
	if err := waitFor(deadline, "node1 quiesced", func() (bool, error) {
		st, err := getStats(client, nodes[1].url)
		if err != nil {
			return false, err
		}
		m, _ := st["maintenance"].(map[string]any)
		repl, _ := st["replication"].(map[string]any)
		return m != nil && m["active"] == false && repl != nil && repl["open_period"] == false, nil
	}); err != nil {
		return err
	}
	if err := followersCaughtUp(client, deadline, nodes[1], nodes[2:]); err != nil {
		return err
	}

	// Phase 5: the survivors must agree byte-for-byte.
	return verifySurvivors(client, logger, survivors, seed)
}

// driveChurn joins n peers round-robin through the given nodes,
// interleaving data-plane queries, and returns the assigned peer IDs.
func driveChurn(client *http.Client, nodes []*clusterNode, rng *rand.Rand, n, queriesPer, idOffset int) ([]int, error) {
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		url := nodes[i%len(nodes)].url
		join := map[string]any{
			"items":   [][]string{randTerms(rng, 3), randTerms(rng, 3)},
			"queries": []map[string]any{},
		}
		for q := 0; q < queriesPer; q++ {
			join["queries"] = append(join["queries"].([]map[string]any),
				map[string]any{"terms": randTerms(rng, 2), "count": 1 + rng.Intn(5)})
		}
		status, body, err := httpJSON(client, http.MethodPost, url+"/v1/peers", join)
		if err != nil || status != http.StatusCreated {
			return nil, fmt.Errorf("join %d via %s: status %d, err %v, body %s", i+idOffset, url, status, err, body)
		}
		var resp struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("join response: %w", err)
		}
		ids = append(ids, resp.ID)
		// A read per join, spread across every node's data plane.
		qurl := nodes[(i+1)%len(nodes)].url
		if status, body, err = httpJSON(client, http.MethodPost, qurl+"/v1/query",
			map[string]any{"terms": randTerms(rng, 2)}); err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("query via %s: status %d, err %v, body %s", qurl, status, err, body)
		}
	}
	return ids, nil
}

// followersCaughtUp waits until every follower's applied log position
// matches the leader's.
func followersCaughtUp(client *http.Client, deadline time.Time, leader *clusterNode, followers []*clusterNode) error {
	st, err := getStats(client, leader.url)
	if err != nil {
		return fmt.Errorf("%s stats: %w", leader.name, err)
	}
	repl, _ := st["replication"].(map[string]any)
	last, _ := repl["log_last"].(float64)
	for _, f := range followers {
		if err := waitFor(deadline, f.name+" caught up", func() (bool, error) {
			st, err := getStats(client, f.url)
			if err != nil {
				return false, nil
			}
			repl, _ := st["replication"].(map[string]any)
			got, _ := repl["log_last"].(float64)
			return got >= last, nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// verifySurvivors pins the failover contract: identical snapshots,
// identical query answers, costs within float tolerance.
func verifySurvivors(client *http.Client, logger *log.Logger, nodes []*clusterNode, seed int64) error {
	snaps := make([][]byte, len(nodes))
	stats := make([]map[string]any, len(nodes))
	for i, n := range nodes {
		status, body, err := httpJSON(client, http.MethodGet, n.url+"/v1/snapshot", nil)
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("%s snapshot: status %d, err %v", n.name, status, err)
		}
		snaps[i] = body
		if stats[i], err = getStats(client, n.url); err != nil {
			return fmt.Errorf("%s stats: %w", n.name, err)
		}
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		return fmt.Errorf("survivor snapshots diverge (%d vs %d bytes)", len(snaps[0]), len(snaps[1]))
	}
	for _, key := range []string{"scost", "wcost"} {
		a, _ := stats[0][key].(float64)
		b, _ := stats[1][key].(float64)
		if math.Abs(a-b) > 1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b))) {
			return fmt.Errorf("%s diverges: %v vs %v", key, a, b)
		}
	}
	// A fixed query battery must answer byte-identically on both.
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < 50; i++ {
		q := map[string]any{"terms": randTerms(rng, 2)}
		var answers [][]byte
		for _, n := range nodes {
			status, body, err := httpJSON(client, http.MethodPost, n.url+"/v1/query", q)
			if err != nil || status != http.StatusOK {
				return fmt.Errorf("%s verify query: status %d, err %v", n.name, status, err)
			}
			answers = append(answers, body)
		}
		if !bytes.Equal(answers[0], answers[1]) {
			return fmt.Errorf("query %v answered differently: %s vs %s", q, answers[0], answers[1])
		}
	}
	var snap struct {
		Slots int `json:"slots"`
		Peers []struct {
			Slot int `json:"slot"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(snaps[0], &snap); err != nil {
		return fmt.Errorf("decode survivor snapshot: %w", err)
	}
	logger.Printf("survivors agree: %d live peers over %d slots, identical snapshots, 50/50 identical answers",
		len(snap.Peers), snap.Slots)
	return nil
}

func randTerms(rng *rand.Rand, n int) []string {
	terms := make([]string, 0, n)
	seen := map[int]bool{}
	for len(terms) < n {
		t := rng.Intn(60)
		if !seen[t] {
			seen[t] = true
			terms = append(terms, fmt.Sprintf("t%02d", t))
		}
	}
	return terms
}

// httpJSON issues one request with an optional JSON body and returns
// the status and response body. Redirects (a follower's control plane
// pointing at the leader) are followed by the client, which replays
// the body.
func httpJSON(client *http.Client, method, url string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 1<<24))
	return resp.StatusCode, out, err
}

func getStats(client *http.Client, url string) (map[string]any, error) {
	status, body, err := httpJSON(client, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("stats: status %d: %s", status, body)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return st, nil
}

func replBool(client *http.Client, url, key string) bool {
	st, err := getStats(client, url)
	if err != nil {
		return false
	}
	repl, _ := st["replication"].(map[string]any)
	return repl != nil && repl[key] == true
}

// waitFor polls cond every 10ms until it holds or deadline passes.
func waitFor(deadline time.Time, what string, cond func() (bool, error)) error {
	for time.Now().Before(deadline) {
		ok, err := cond()
		if err != nil {
			return fmt.Errorf("%s: %w", what, err)
		}
		if ok {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s", what)
}
