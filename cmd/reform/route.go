package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

// runRouteCommand implements `reform route`: a stateless query-router
// replica that follows an authoritative daemon's /v1/view/watch feed
// and serves the v1 data plane (POST /v1/query, POST /v1/query/batch,
// GET /v1/stats) from its local copy of the routing view. Any number
// of replicas can front one daemon; each answers byte-identically to
// the engine for the views it has synchronized.
func runRouteCommand(args []string) {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":8081", "listen address")
	upstream := fs.String("upstream", "http://localhost:8080", "comma-separated daemon base URLs; the sync loop rotates to the next on failure")
	pollTimeout := fs.Duration("poll-timeout", 25*time.Second, "watch long-poll timeout requested upstream")
	retryAfter := fs.Duration("retry-after", time.Second, "backoff between failed syncs and the Retry-After advertised while unsynchronized")
	routeCache := fs.Int("route-cache", 4096, "view-epoch hot-query result cache entries (0 disables; answers are byte-identical either way)")
	fs.Parse(args)

	logger := log.New(os.Stderr, "reform-route ", log.LstdFlags)
	var upstreams []string
	for _, u := range strings.Split(*upstream, ",") {
		if u = strings.TrimSpace(u); u != "" {
			upstreams = append(upstreams, strings.TrimRight(u, "/"))
		}
	}
	cacheEntries := *routeCache
	if cacheEntries == 0 {
		cacheEntries = -1 // flag 0 = off; Config 0 = default size
	}
	rt := router.New(router.Config{
		Upstreams:   upstreams,
		PollTimeout: *pollTimeout,
		RetryAfter:  *retryAfter,
		RouteCache:  cacheEntries,
		Logf:        logger.Printf,
	})
	rt.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		logger.Printf("listening on %s, following %s", *addr, *upstream)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("listen: %v", err)
		}
	}()

	<-ctx.Done()
	logger.Printf("shutting down")
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	rt.Shutdown()
	logger.Printf("stopped")
}
