// Command reform regenerates the paper's evaluation — every table and
// figure of §4 plus the ablations and extensions listed in DESIGN.md —
// and runs the overlay as an online daemon.
//
// Usage:
//
//	reform -exp table1             # one experiment
//	reform -exp all                # the whole evaluation
//	reform -exp fig2 -seed 7 -csv  # CSV output for plotting
//	reform -workers 8 -exp all     # bound the experiment worker pool
//	reform bench -o BENCH.json     # machine-readable microbenchmarks
//	reform bench -baseline B.json  # fail on hot-path regressions vs B.json
//	reform serve -addr :8080       # long-running join/leave/query daemon
//	reform serve -join URL         # follower replica of a running leader
//	reform route -upstream URL     # stateless query-router replica
//	reform loadtest -workers 8     # load-generate against the daemon
//	reform cluster                 # 3-node failover smoke test (kills the leader)
//
// Experiments: table1, fig1, fig2, fig3, fig4, counterexample, theta,
// epsilon, hybrid, paired, clgain, shared, async, asyncnet, baseline,
// discovery, churn, flashcrowd, longhaul, interleaved, lookup,
// routing, multicluster, all. The asyncnet experiment runs the
// protocol on the actor-style message-passing runtime
// (internal/asyncnet) under injected latency, reordering, loss and
// straggler peers, and reports convergence quality against the
// synchronous oracle.
//
// Experiment cells run on a worker pool (default: one per CPU; see
// -workers). Outputs are deterministic per seed for every worker
// count. The bench subcommand emits ns/op and allocs/op for the
// cost-engine hot paths as BENCH.json, tracking the performance
// trajectory across commits; with -baseline it compares against a
// committed BENCH_BASELINE.json and exits nonzero on regression (the
// same gate CI runs; QueryServe/QueryServeParallel additionally pin
// the serving read path to 0 allocs/op). The serve subcommand exposes
// the overlay over HTTP under /v1 (see API.md): POST /v1/peers
// (join), DELETE /v1/peers/{id} (leave), POST /v1/query and
// POST /v1/query/batch (lock-free reads from atomically published
// views), POST /v1/reform, POST /v1/compact, GET /v1/stats
// (lock-free, exact), GET /v1/snapshot and GET /v1/view/watch (the
// routing-view replication feed), with reformulation and workload
// compaction on tickers and snapshot/restore across restarts;
// in-place compaction bounds memory by the live query set, so the
// daemon runs indefinitely under novel-query churn. The route
// subcommand runs a stateless query-router replica that follows the
// watch feed and serves the data plane byte-identically to the
// daemon. The loadtest subcommand replays a fixed-seed query workload
// with concurrent workers — against a remote daemon, an in-process
// one, or a router tier — and reports throughput and p50/p95/p99
// latency, optionally with maintenance and churn running
// concurrently.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "bench":
			runBenchCommand(os.Args[2:])
			return
		case "serve":
			runServeCommand(os.Args[2:])
			return
		case "cluster":
			runClusterCommand(os.Args[2:])
			return
		case "route":
			runRouteCommand(os.Args[2:])
			return
		case "loadtest":
			runLoadtestCommand(os.Args[2:])
			return
		}
	}
	exp := flag.String("exp", "all", "experiment to run (see package doc; 'all' runs everything)")
	seed := flag.Uint64("seed", 1, "random seed; every experiment is deterministic per seed")
	scale := flag.Int("scale", 1, "shrink factor for quick runs (peers and queries divided by it)")
	workers := flag.Int("workers", 0, "experiment worker pool size; 0 = one per CPU")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := flag.Bool("plot", false, "render crude ASCII plots for figure series")
	flag.Parse()

	p := experiments.DefaultParams()
	p.Seed = *seed
	p = p.Scaled(*scale)
	p.Workers = *workers

	out := &printer{csv: *csv, plot: *plot}
	known := map[string]func(){
		"table1":         func() { out.table(experiments.RunTable1(p).Table()) },
		"fig1":           func() { r := experiments.RunFig1(p, 0); out.series(r.SCost); out.series(r.WCost) },
		"fig2":           func() { r := experiments.RunFig2(p); out.series(r.UpdatedPeers); out.series(r.UpdatedWorkload) },
		"fig3":           func() { r := experiments.RunFig3(p); out.series(r.UpdatedPeers); out.series(r.UpdatedData) },
		"fig4":           func() { out.series(experiments.RunFig4(p, nil)) },
		"counterexample": func() { out.counterexample() },
		"theta":          func() { out.table(experiments.RunThetaAblation(p)) },
		"epsilon":        func() { out.table(experiments.RunEpsilonAblation(p)) },
		"hybrid":         func() { out.table(experiments.RunHybridComparison(p)) },
		"paired":         func() { out.table(experiments.RunPairedDemandAblation(p)) },
		"clgain":         func() { out.table(experiments.RunClgainAblation(p)) },
		"shared":         func() { out.table(experiments.RunSharedVocabAblation(p)) },
		"async":          func() { out.table(experiments.RunAsyncComparison(p)) },
		"asyncnet":       func() { out.table(experiments.RunAsyncNet(p)) },
		"baseline":       func() { out.table(experiments.RunBaselineComparison(p)) },
		"discovery":      func() { out.table(experiments.RunKMeansDiscovery(p)) },
		"churn":          func() { out.series(experiments.RunChurn(p, 10, 0.05)) },
		"flashcrowd":     func() { out.table(experiments.RunFlashCrowd(p, nil)) },
		"longhaul":       func() { out.table(experiments.RunLongHaul(p, 0, nil)) },
		"interleaved":    func() { out.table(experiments.RunInterleaved(p, nil)) },
		"lookup":         func() { out.table(experiments.RunLookupCost(p)) },
		"routing":        func() { out.table(experiments.RunRoutingAblation(p)) },
		"multicluster":   func() { out.table(experiments.RunMultiClusterAnalysis(p, 4)) },
	}
	order := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "counterexample",
		"theta", "epsilon", "hybrid", "paired", "clgain", "shared",
		"async", "asyncnet", "baseline", "discovery", "churn", "flashcrowd",
		"longhaul", "interleaved", "lookup", "routing", "multicluster",
	}

	name := strings.ToLower(*exp)
	if name == "all" {
		for _, k := range order {
			fmt.Printf("=== %s ===\n", k)
			known[k]()
		}
		return
	}
	run, ok := known[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", name, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}

type printer struct {
	csv  bool
	plot bool
}

func (p *printer) table(t *metrics.Table) {
	if p.csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t.Render())
}

func (p *printer) series(s *metrics.Series) {
	if p.csv {
		fmt.Print(s.CSV())
		return
	}
	fmt.Println(s.Render())
	if p.plot {
		fmt.Println(s.Plot(60, 15))
	}
}

func (p *printer) counterexample() {
	inst := core.NewTwoPeerInstance(1)
	trace, err := inst.VerifyNoNash()
	if err != nil {
		fmt.Fprintln(os.Stderr, "counterexample FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("§2.3 two-peer instance (alpha=1): no configuration is a pure Nash equilibrium")
	fmt.Print(trace)
	fmt.Println()
}
