package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

// runServeCommand implements `reform serve`: the overlay as an
// always-on HTTP daemon with ticker-driven reformulation, dynamic
// membership and snapshot-based restarts.
func runServeCommand(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	join := fs.String("join", "", "comma-separated upstream base URLs; runs this node as a follower replicating the leader's mutation log (empty: standalone leader)")
	alpha := fs.Float64("alpha", 1, "membership-cost weight α")
	epsilon := fs.Float64("epsilon", 0.001, "reformulation gain threshold ε")
	maxRounds := fs.Int("max-rounds", 300, "rounds per maintenance period")
	reformEvery := fs.Duration("reform", 30*time.Second, "maintenance period length (0 disables the ticker)")
	stepBudget := fs.Int("step-budget", 0, "work units (cluster scans + grants) per maintenance step while holding the mutation lock (0: default 32; negative: whole periods under one hold)")
	reformWorkers := fs.Int("reform-workers", 0, "phase-1 decide worker pool per maintenance step (0: one per CPU, 1: serial; outcomes are identical for every value)")
	exactDecide := fs.Bool("exact-decide", false, "force the exhaustive phase-1 scan instead of the pruned (dirty-tracking + shortlist) default; decisions are bit-identical either way")
	snapshot := fs.String("snapshot", "", "snapshot file; loaded at startup when present, written periodically and on shutdown")
	snapshotEvery := fs.Duration("snapshot-every", 5*time.Minute, "periodic snapshot interval (needs -snapshot)")
	compactEvery := fs.Duration("compact-every", time.Minute, "workload-compaction check interval (0: only after maintenance periods and via POST /compact)")
	compactRatio := fs.Float64("compact-ratio", 0.5, "dead-QID fraction above which a check compacts (negative: compact whenever any dead query exists)")
	compactMin := fs.Int("compact-min", 64, "suppress threshold compactions below this many distinct queries")
	routeCache := fs.Int("route-cache", 4096, "view-epoch hot-query result cache entries (0 disables; answers are byte-identical either way)")
	fs.Parse(args)

	logger := log.New(os.Stderr, "reform-serve ", log.LstdFlags)
	// service.Config treats zero values as "use the paper default", so
	// an explicit -alpha 0 or -epsilon 0 would silently become 1 and
	// 0.001. Refuse it loudly rather than misconfigure.
	fs.Visit(func(f *flag.Flag) {
		if (f.Name == "alpha" && *alpha == 0) || (f.Name == "epsilon" && *epsilon == 0) {
			logger.Fatalf("-%s 0 is not supported (0 selects the default); pass a positive value", f.Name)
		}
		if f.Name == "compact-ratio" && *compactRatio == 0 {
			logger.Fatalf("-compact-ratio 0 is not supported (0 selects the default 0.5); pass a negative value to compact whenever any dead query exists")
		}
	})
	cfg := service.Config{
		Alpha:             *alpha,
		Epsilon:           *epsilon,
		MaxRounds:         *maxRounds,
		ReformEvery:       *reformEvery,
		StepBudget:        *stepBudget,
		ReformWorkers:     *reformWorkers,
		ExactDecide:       *exactDecide,
		SnapshotPath:      *snapshot,
		SnapshotEvery:     *snapshotEvery,
		CompactEvery:      *compactEvery,
		CompactDeadRatio:  *compactRatio,
		CompactMinQueries: *compactMin,
		RouteCache:        *routeCache,
		Logf:              logger.Printf,
	}
	if *routeCache == 0 {
		cfg.RouteCache = -1 // flag 0 = off; Config 0 = default size
	}
	if *join != "" {
		for _, u := range strings.Split(*join, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.Join = append(cfg.Join, strings.TrimRight(u, "/"))
			}
		}
	}

	var srv *service.Server
	if *snapshot != "" {
		if snap, err := service.LoadSnapshot(*snapshot); err == nil {
			restored, rerr := service.NewFromSnapshot(cfg, snap)
			if rerr != nil {
				logger.Fatalf("restore %s: %v", *snapshot, rerr)
			}
			srv = restored
			logger.Printf("restored %d peers from %s", len(snap.Peers), *snapshot)
		} else if !errors.Is(err, os.ErrNotExist) {
			logger.Fatalf("load %s: %v", *snapshot, err)
		}
	}
	if srv == nil {
		srv = service.New(cfg)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		role := "leader"
		if len(cfg.Join) > 0 {
			role = fmt.Sprintf("follower of %s", strings.Join(cfg.Join, ", "))
		}
		logger.Printf("listening on %s as %s (reform every %s)", *addr, role, *reformEvery)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("listen: %v", err)
		}
	}()

	<-ctx.Done()
	logger.Printf("shutting down")
	// Wake parked long-poll watchers (they answer 204) before asking
	// the HTTP server to drain, or graceful shutdown would wait out
	// every watcher's full timeout.
	srv.BeginShutdown()
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		logger.Printf("final snapshot: %v", err)
	}
	fmt.Fprintln(os.Stderr, "reform-serve: stopped")
}
