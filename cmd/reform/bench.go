package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// benchResult is one microbenchmark measurement in BENCH.json.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the BENCH.json schema: the engine microbenchmarks
// plus one macrobenchmark per worker setting, so the perf trajectory
// of the hot paths is tracked across PRs.
type benchReport struct {
	Scale      int           `json:"scale"`
	Peers      int           `json:"peers"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runBenchCommand implements `reform bench`: it runs the cost-engine
// microbenchmarks and the Table 1 macrobenchmark through
// testing.Benchmark and writes the results as JSON, for CI to archive
// and compare across commits.
func runBenchCommand(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "BENCH.json", "output path; - writes to stdout")
	scale := fs.Int("scale", 4, "shrink factor for the benchmark system (matches bench_test.go at 4)")
	fs.Parse(args)

	p := experiments.DefaultParams().Scaled(*scale)
	p.MaxRounds = 150

	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(1)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))

	report := benchReport{Scale: *scale, Peers: p.Peers}
	record := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	record("EvaluateMoves", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.EvaluateMoves(i % p.Peers)
		}
	})
	record("EvaluateContribution", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.EvaluateContribution(i % p.Peers)
		}
	})
	record("PeerCost", func(b *testing.B) {
		b.ReportAllocs()
		cfg := eng.Config()
		for i := 0; i < b.N; i++ {
			pid := i % p.Peers
			eng.PeerCost(pid, cfg.ClusterOf(pid))
		}
	})
	record("Move", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Move(i%p.Peers, cluster.CID(i%10))
		}
	})
	record("SCost", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = eng.SCostNormalized()
		}
	})
	record("Rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Rebuild()
		}
	})
	record("Table1Serial", func(b *testing.B) {
		b.ReportAllocs()
		pp := p
		pp.Workers = 1
		for i := 0; i < b.N; i++ {
			experiments.RunTable1(pp)
		}
	})
	record("Table1Workers", func(b *testing.B) {
		b.ReportAllocs()
		pp := p
		pp.Workers = 0 // one worker per CPU
		for i := 0; i < b.N; i++ {
			experiments.RunTable1(pp)
		}
	})

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench: write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
}
