package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/peer"
	"repro/internal/protocol"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/viewwire"
	"repro/internal/workload"
)

// benchResult is one microbenchmark measurement in BENCH.json. Peers
// and Scale record the system the entry measured: the small class
// shares the report-level scale, the maintenance-at-scale class runs
// at -peers regardless of -scale.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Peers       int     `json:"peers,omitempty"`
	Scale       int     `json:"scale,omitempty"`
}

// benchReport is the BENCH.json schema: the engine microbenchmarks
// plus one macrobenchmark per worker setting, so the perf trajectory
// of the hot paths is tracked across PRs. The runner class (GOOS,
// GOARCH, CPU model) is recorded so the comparator knows whether
// ns/op numbers from two reports are comparable at all.
type benchReport struct {
	Scale      int           `json:"scale"`
	Peers      int           `json:"peers"`
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// cpuModel best-effort identifies the CPU for the runner class. An
// empty string means "unknown" and disables same-class ns/op gating.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// sameRunnerClass reports whether two reports were produced on
// comparable hardware, making their ns/op numbers comparable.
func sameRunnerClass(a, b benchReport) bool {
	return a.GOARCH != "" && a.CPU != "" && a.GOOS == b.GOOS && a.GOARCH == b.GOARCH && a.CPU == b.CPU
}

// gatedBenchmarks are the pinned hot-path benchmarks the regression
// gate compares: a fresh run whose ns/op exceeds the baseline by more
// than benchRegressionTolerance — or whose allocs/op grew at all —
// fails the gate. Macrobenchmarks (Table1*) are tracked but not gated:
// their wall-clock depends on CI core counts.
var gatedBenchmarks = []string{
	"EvaluateMoves", "EvaluateContribution", "PeerCost", "Move", "SCost", "AddRemovePeer",
	"CompactCycle", "QueryServe", "QueryServeHot", "QueryServeZipf", "QueryServeParallel",
	"RouteRarest", "RouterServe",
	"ProtocolRound", "ProtocolRoundParallel", "ReformStep",
	"ProtocolRoundLarge", "ProtocolRoundLargeExact", "ReformStepLarge",
}

// zeroAllocBenchmarks must report exactly 0 allocs/op in the fresh
// run, independent of any baseline: the per-query read path is
// allocation-free by contract — on the daemon (RouteScratch owns
// every buffer) and on a router replica (api.Scratch ditto) — as is
// a quiescent stepped maintenance period (runner-recycled report and
// scratch storage), and the gate holds them there.
// (QueryServeHot's rare collision-miss inserts amortize to 0 under
// AllocsPerOp's integer division; QueryServeZipf misses by design and
// is gated on ns/op only.)
var zeroAllocBenchmarks = []string{"QueryServe", "QueryServeHot", "QueryServeParallel", "RouteRarest", "RouterServe", "ReformStep", "ReformStepLarge"}

// benchRegressionTolerance is the allowed ns/op growth factor.
const benchRegressionTolerance = 1.25

// runBenchCommand implements `reform bench`: it runs the cost-engine
// microbenchmarks and the Table 1 macrobenchmark through
// testing.Benchmark and writes the results as JSON, for CI to archive
// and compare across commits. With -baseline it additionally diffs
// the fresh results against a stored report and exits nonzero on a
// hot-path regression — the same comparator the CI gate runs.
func runBenchCommand(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "BENCH.json", "output path; - writes to stdout")
	scale := fs.Int("scale", 4, "shrink factor for the benchmark system (matches bench_test.go at 4)")
	peers := fs.Int("peers", 1000, "population for the maintenance-at-scale benchmarks (unaffected by -scale)")
	baseline := fs.String("baseline", "", "baseline BENCH.json to diff against; >25% ns/op or any allocs/op growth on the pinned hot paths fails")
	fs.Parse(args)

	p := experiments.DefaultParams().Scaled(*scale)
	p.MaxRounds = 150

	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(1)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))

	report := benchReport{
		Scale:  *scale,
		Peers:  p.Peers,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPU:    cpuModel(),
	}
	recordSized := func(name string, benchPeers, benchScale int, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Peers:       benchPeers,
			Scale:       benchScale,
		})
	}
	record := func(name string, fn func(b *testing.B)) {
		recordSized(name, p.Peers, *scale, fn)
	}

	record("EvaluateMoves", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.EvaluateMoves(i % p.Peers)
		}
	})
	record("EvaluateContribution", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.EvaluateContribution(i % p.Peers)
		}
	})
	record("PeerCost", func(b *testing.B) {
		b.ReportAllocs()
		cfg := eng.Config()
		for i := 0; i < b.N; i++ {
			pid := i % p.Peers
			eng.PeerCost(pid, cfg.ClusterOf(pid))
		}
	})
	record("Move", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Move(i%p.Peers, cluster.CID(i%10))
		}
	})
	record("SCost", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = eng.SCostNormalized()
		}
	})
	record("Rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Rebuild()
		}
	})
	record("AddRemovePeer", func(b *testing.B) {
		// One churn event (join + leave) on the incremental membership
		// path; compare with Rebuild, the old per-churn price.
		b.ReportAllocs()
		items, queries, counts := sys.NewcomerMaterials(0, 0, 0, stats.NewRNG(6))
		pr := peer.New(-1)
		pr.SetItems(items)
		id := eng.AddPeer(pr, queries, counts, cluster.None)
		eng.RemovePeer(id)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := eng.AddPeer(pr, queries, counts, cluster.None)
			eng.RemovePeer(id)
		}
	})
	record("CompactCycle", func(b *testing.B) {
		// One full unbounded-uptime cycle: a joiner interning a novel
		// query, its departure stranding it, and an in-place workload
		// compaction reclaiming the row.
		b.ReportAllocs()
		items, queries, counts := sys.NewcomerMaterials(0, 0, 0, stats.NewRNG(8))
		queries = append(queries, attr.NewSet(attr.ID(1<<20)))
		counts = append(counts, 1)
		pr := peer.New(-1)
		pr.SetItems(items)
		id := eng.AddPeer(pr, queries, counts, cluster.None)
		eng.RemovePeer(id)
		eng.Compact(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := eng.AddPeer(pr, queries, counts, cluster.None)
			eng.RemovePeer(id)
			eng.Compact(0)
		}
	})
	// Parameters of the at-scale benchmark class: the serving-tier read
	// path below and the maintenance-at-scale benchmarks further down
	// both run at -peers regardless of -scale, because both measure
	// paths whose cost structure only shows at a real population (long
	// posting lists, many clusters, localized churn).
	lp := experiments.DefaultParams()
	lp.Peers = *peers
	// Scale the cluster count with the population as far as the corpus
	// allows (its word scheme supports at most 16 topical categories).
	lp.Categories = lp.Peers / 16
	if lp.Categories < 10 {
		lp.Categories = 10
	}
	if lp.Categories > 16 {
		lp.Categories = 16
	}
	lp.Corpus.Categories = lp.Categories
	lp.TotalQueries = 4 * lp.Peers
	lp.MaxRounds = 600

	// The serving daemon's per-query read path: Route over a published
	// immutable view, caller-owned scratch, no locks, at the -peers
	// population (a -scale-shrunk system's posting lists are a few
	// entries long, which flatters nothing and hides everything).
	// QueryServe is the single-goroutine cost; QueryServeParallel
	// spreads the same replay over all cores, which is the whole point
	// of publishing views.
	ssys := experiments.Build(lp, experiments.SameCategory)
	seng := ssys.NewEngine(ssys.InitialConfig(experiments.InitRandomM, stats.NewRNG(2)))
	view := seng.BuildRoutingView(nil)
	wl := seng.Workload()
	queries := make([]attr.Set, 0, min(wl.NumQueries(), 256))
	for q := 0; q < cap(queries); q++ {
		queries = append(queries, wl.Query(workload.QID(q)))
	}
	recordServe := func(name string, fn func(b *testing.B)) {
		recordSized(name, lp.Peers, 1, fn)
	}
	recordServe("QueryServe", func(b *testing.B) {
		b.ReportAllocs()
		var sc core.RouteScratch
		for _, q := range queries {
			view.Route(q, &sc)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			view.Route(queries[i%len(queries)], &sc)
		}
	})
	recordServe("QueryServeParallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var sc core.RouteScratch
			i := 0
			for pb.Next() {
				view.Route(queries[i%len(queries)], &sc)
				i++
			}
		})
	})
	// The hot-query fast path. QueryServeHot is the cache-hit cost:
	// the same replay as QueryServe but through a warmed view-epoch
	// RouteCache, so every lookup hits — the ISSUE's >= 3x contract is
	// QueryServe ns/op vs this number. QueryServeZipf is the realistic
	// blend: Zipf(1.1)-skewed ranks over the workload through a cache
	// smaller than the query population, so hot heads hit and the tail
	// misses through to Route.
	hotCache := core.NewRouteCache(4096)
	recordServe("QueryServeHot", func(b *testing.B) {
		b.ReportAllocs()
		var sc core.RouteScratch
		for _, q := range queries {
			view.RouteCached(q, hotCache, &sc)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			view.RouteCached(queries[i%len(queries)], hotCache, &sc)
		}
	})
	zipfCache := core.NewRouteCache(1024)
	zipfRanks := stats.NewZipf(len(queries), 1.1)
	zipfRNG := stats.NewRNG(7)
	zipfOrder := make([]int, 4096)
	for i := range zipfOrder {
		zipfOrder[i] = zipfRanks.Sample(zipfRNG)
	}
	recordServe("QueryServeZipf", func(b *testing.B) {
		b.ReportAllocs()
		var sc core.RouteScratch
		for i := 0; i < b.N; i++ {
			view.RouteCached(queries[zipfOrder[i%len(zipfOrder)]], zipfCache, &sc)
		}
	})
	// RouteRarest pins the rarest-attribute scan's win on the shape it
	// exists for: a hand-built view where every slot holds one hugely
	// popular attribute plus one of 8 rare ones, queried with
	// {popular, rare}. The scan drives from the rare list (32 slots),
	// not the popular one (256) — the first-attribute order would do
	// 8x the work.
	const rareSlots = 256
	rareItems := make([][]attr.Set, rareSlots)
	rareAssign := make([]cluster.CID, rareSlots)
	rarePostings := make(map[attr.ID][]int32)
	for i := 0; i < rareSlots; i++ {
		a := attr.ID(1 + i%8)
		rareItems[i] = []attr.Set{attr.NewSet(0, a)}
		rareAssign[i] = cluster.CID(i % 8)
		rarePostings[0] = append(rarePostings[0], int32(i))
		rarePostings[a] = append(rarePostings[a], int32(i))
	}
	rareView, err := core.FromViewData(core.ViewData{
		PopVersion: 1, Items: rareItems, ClusterOf: rareAssign, Postings: rarePostings,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: RouteRarest view:", err)
		os.Exit(1)
	}
	rareQuery := attr.NewSet(0, 3)
	record("RouteRarest", func(b *testing.B) {
		b.ReportAllocs()
		var sc core.RouteScratch
		rareView.Route(rareQuery, &sc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rareView.Route(rareQuery, &sc)
		}
	})
	// The router tier's per-query path: a replica synchronized from one
	// full wire record answers raw term queries through the same shared
	// code as the daemon (term resolution + Route + response assembly),
	// allocation-free by the same contract. Its RouteCache is disabled
	// so this keeps measuring the uncached resolve+Route pipeline
	// (QueryServeHot owns the cached number).
	vocab := ssys.Gen.Vocab()
	names := make([]string, vocab.Len())
	for id := range names {
		names[id] = vocab.Name(attr.ID(id))
	}
	rawQueries := make([][]string, len(queries))
	for i, q := range queries {
		rawQueries[i] = q.Names(vocab)
	}
	rt := router.New(router.Config{Upstream: "unused", RouteCache: -1})
	rec, err := viewwire.Decode(viewwire.AppendFull(nil, 1, names, view.Export()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: RouterServe record:", err)
		os.Exit(1)
	}
	if err := rt.ApplyRecord(rec); err != nil {
		fmt.Fprintln(os.Stderr, "bench: RouterServe sync:", err)
		os.Exit(1)
	}
	recordServe("RouterServe", func(b *testing.B) {
		b.ReportAllocs()
		var sc api.Scratch
		for _, q := range rawQueries {
			rt.AnswerQuery(q, &sc)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.AnswerQuery(rawQueries[i%len(rawQueries)], &sc)
		}
	})
	// The reformulation protocol's hot paths: one round serial, one
	// round with the phase-1 decide scan fanned over all cores, and a
	// quiescent stepped period (the steady-state maintenance tick of
	// the serving daemon, pinned allocation-free). They run over a
	// private System: the membership benches above mutate the shared
	// workload's slots, which a fresh engine build would reject.
	psys := experiments.Build(p, experiments.SameCategory)
	protoEng := psys.NewEngine(psys.InitialConfig(experiments.InitRandomM, stats.NewRNG(4)))
	protoRunner := psys.NewRunner(protoEng, core.NewSelfish(), true)
	record("ProtocolRound", func(b *testing.B) {
		b.ReportAllocs()
		protoRunner.BeginPeriod()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			protoRunner.RunRound(i + 1)
		}
	})
	parEng := psys.NewEngine(psys.InitialConfig(experiments.InitRandomM, stats.NewRNG(4)))
	parRunner := psys.NewRunnerWorkers(parEng, core.NewSelfish(), true, runtime.GOMAXPROCS(0))
	record("ProtocolRoundParallel", func(b *testing.B) {
		b.ReportAllocs()
		parRunner.BeginPeriod()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			parRunner.RunRound(i + 1)
		}
	})
	// ReformStep measures the quiescent steady state, so it starts
	// from singletons, which converge at every scale (the random-m
	// initialization can oscillate forever in heavily scaled systems).
	stepEng := psys.NewEngine(psys.InitialConfig(experiments.InitSingletons, stats.NewRNG(4)))
	stepRunner := psys.NewRunner(stepEng, core.NewSelfish(), true)
	if rpt := stepRunner.Run(); !rpt.Converged {
		fmt.Fprintln(os.Stderr, "bench: ReformStep system did not converge; steady-state numbers would lie")
		os.Exit(1)
	}
	for i := 0; i < 2; i++ {
		per := stepRunner.Begin()
		for !per.Step(8) {
		}
	}
	record("ReformStep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			per := stepRunner.Begin()
			for !per.Step(8) {
			}
		}
	})
	// Maintenance at scale: a population far past the paper's 200, with
	// the cluster count growing with it (SameCategory converges to
	// roughly one cluster per category) and localized churn between
	// rounds — a handful of leaves, plus joins admitted straight into
	// the vacated peer's cluster (the maintenance admission path: a
	// granted newcomer lands in the cluster that admitted it), dirty a
	// few clusters' aggregates while the rest of the population stays
	// clean. Newcomer materials are pre-generated outside the timed
	// loop so the corpus generator's cost doesn't drown the phase-1
	// signal. ProtocolRoundLarge runs the pruned phase-1 scan the
	// protocol uses by default; ProtocolRoundLargeExact drives the
	// identical churn schedule through Options.ExactDecide — their
	// ratio is the dirty-tracking + shortlist win. ReformStepLarge pins
	// the quiescent stepped period (and its 0-alloc contract) at scale.
	buildLarge := func(exact bool) (*experiments.System, *core.Engine, *protocol.Runner) {
		sys := experiments.Build(lp, experiments.SameCategory)
		eng := sys.NewEngine(sys.InitialConfig(experiments.InitSingletons, stats.NewRNG(4)))
		runner := protocol.NewRunner(eng, core.NewSelfish(), protocol.Options{
			Epsilon:          lp.Epsilon,
			MaxRounds:        lp.MaxRounds,
			AllowNewClusters: true,
			ExactDecide:      exact,
		})
		if rpt := runner.Run(); !rpt.Converged {
			fmt.Fprintf(os.Stderr, "bench: %d-peer system did not converge (exact=%v)\n", lp.Peers, exact)
			os.Exit(1)
		}
		return sys, eng, runner
	}
	liveSlots := func(eng *core.Engine) []int {
		live := make([]int, 0, lp.Peers)
		for pid := 0; pid < eng.NumSlots(); pid++ {
			if eng.IsLive(pid) {
				live = append(live, pid)
			}
		}
		return live
	}
	type newcomerKit struct {
		items   []attr.Set
		queries []attr.Set
		counts  []int
	}
	const kitsPerCat = 4
	newKits := func(sys *experiments.System, rng *stats.RNG) [][]newcomerKit {
		kits := make([][]newcomerKit, lp.Categories)
		for c := range kits {
			for i := 0; i < kitsPerCat; i++ {
				items, queries, counts := sys.NewcomerMaterials(c, c, 0, rng)
				kits[c] = append(kits[c], newcomerKit{items, queries, counts})
			}
		}
		return kits
	}
	largeRound := func(sys *experiments.System, eng *core.Engine, runner *protocol.Runner) func(b *testing.B) {
		live := liveSlots(eng)
		catOf := make([]int, eng.NumSlots())
		for _, pid := range live {
			catOf[pid] = pid % lp.Categories // Build assigns category i%C in slot order
		}
		rng := stats.NewRNG(11)
		kits := newKits(sys, rng)
		kitSeq := 0
		round := lp.MaxRounds
		churn := func() {
			for k := 0; k < 4; k++ {
				j := rng.Intn(len(live))
				victim := live[j]
				cat := catOf[victim]
				to := eng.Config().ClusterOf(victim)
				eng.RemovePeer(victim)
				kit := kits[cat][kitSeq%kitsPerCat]
				kitSeq++
				pr := peer.New(-1)
				pr.SetItems(kit.items)
				pid := eng.AddPeer(pr, kit.queries, kit.counts, to)
				live[j] = pid
				for len(catOf) <= pid {
					catOf = append(catOf, 0)
				}
				catOf[pid] = cat
			}
		}
		// Warm the slot free list, index rebuilds and runner scratch so
		// the first timed iteration isn't a one-off cold outlier (cold
		// churn is ~100ms; at b.N=1 it would be the whole estimate).
		for i := 0; i < 2; i++ {
			churn()
			round++
			runner.RunRound(round)
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The churn is the workload's setup, not the measured
				// path: time (and count allocations for) the round only.
				b.StopTimer()
				churn()
				b.StartTimer()
				round++
				runner.RunRound(round)
			}
		}
	}
	lsys, leng, lrunner := buildLarge(false)
	recordSized("ProtocolRoundLarge", lp.Peers, 1, largeRound(lsys, leng, lrunner))
	xsys, xeng, xrunner := buildLarge(true)
	recordSized("ProtocolRoundLargeExact", lp.Peers, 1, largeRound(xsys, xeng, xrunner))
	// Re-converge the pruned large system after its churn, then step
	// quiescent periods — the daemon's steady-state maintenance tick at
	// scale.
	if rpt := lrunner.Run(); !rpt.Converged {
		fmt.Fprintln(os.Stderr, "bench: large system did not re-converge; steady-state numbers would lie")
		os.Exit(1)
	}
	for i := 0; i < 2; i++ {
		per := lrunner.Begin()
		for !per.Step(8) {
		}
	}
	recordSized("ReformStepLarge", lp.Peers, 1, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			per := lrunner.Begin()
			for !per.Step(8) {
			}
		}
	})
	record("Table1Serial", func(b *testing.B) {
		b.ReportAllocs()
		pp := p
		pp.Workers = 1
		for i := 0; i < b.N; i++ {
			experiments.RunTable1(pp)
		}
	})
	record("Table1Workers", func(b *testing.B) {
		b.ReportAllocs()
		pp := p
		pp.Workers = 0 // one worker per CPU
		for i := 0; i < b.N; i++ {
			experiments.RunTable1(pp)
		}
	})

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench: write:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	}

	if *baseline != "" {
		// The gate table goes to stderr so `-o -` keeps stdout pure JSON.
		if err := compareBaseline(*baseline, report, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}

// compareBaseline diffs the fresh report against a stored baseline
// over the pinned hot-path benchmarks and returns an error when any
// regresses. Allocs/op are gated unconditionally: they are
// deterministic, so any increase is a real regression on any
// hardware. Ns/op is hardware-relative, so it is gated (beyond the
// tolerance) only when the baseline was produced on the same runner
// class — same GOOS/GOARCH/CPU model — and degrades to a warning
// otherwise (a baseline from a dev container must not flake CI whose
// runners have different silicon). Names present on only one side are
// reported but never gated, so adding a benchmark does not require
// regenerating every baseline first.
func compareBaseline(path string, fresh benchReport, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	index := func(r benchReport) map[string]benchResult {
		m := make(map[string]benchResult, len(r.Benchmarks))
		for _, b := range r.Benchmarks {
			m[b.Name] = b
		}
		return m
	}
	bm, fm := index(base), index(fresh)

	gateNs := sameRunnerClass(base, fresh)
	if gateNs {
		fmt.Fprintf(w, "bench gate vs %s (same runner class %s/%s %q: tolerance %.0f%% ns/op, 0 allocs/op growth):\n",
			path, base.GOOS, base.GOARCH, base.CPU, (benchRegressionTolerance-1)*100)
	} else {
		fmt.Fprintf(w, "bench gate vs %s (baseline class %s/%s %q vs fresh %s/%s %q: ns/op informational only, 0 allocs/op growth gated):\n",
			path, base.GOOS, base.GOARCH, base.CPU, fresh.GOOS, fresh.GOARCH, fresh.CPU)
	}
	var failures []string
	for _, name := range gatedBenchmarks {
		b, okB := bm[name]
		f, okF := fm[name]
		switch {
		case !okB:
			fmt.Fprintf(w, "  %-22s not in baseline (skipped)\n", name)
			continue
		case !okF:
			fmt.Fprintf(w, "  %-22s not in fresh run (skipped)\n", name)
			continue
		}
		var verdicts []string
		if f.NsPerOp > b.NsPerOp*benchRegressionTolerance {
			if gateNs {
				verdicts = append(verdicts, "NS/OP REGRESSION")
				failures = append(failures, fmt.Sprintf("%s ns/op %.1f -> %.1f (%.0f%%)",
					name, b.NsPerOp, f.NsPerOp, 100*(f.NsPerOp/b.NsPerOp-1)))
			} else {
				verdicts = append(verdicts, "ns/op grew (not gated: runner class differs)")
			}
		}
		if f.AllocsPerOp > b.AllocsPerOp {
			verdicts = append(verdicts, "ALLOCS REGRESSION")
			failures = append(failures, fmt.Sprintf("%s allocs/op %d -> %d",
				name, b.AllocsPerOp, f.AllocsPerOp))
		}
		verdict := "ok"
		if len(verdicts) > 0 {
			verdict = strings.Join(verdicts, " + ")
		}
		fmt.Fprintf(w, "  %-22s ns/op %10.1f -> %10.1f  allocs/op %d -> %d  %s\n",
			name, b.NsPerOp, f.NsPerOp, b.AllocsPerOp, f.AllocsPerOp, verdict)
	}
	for _, name := range zeroAllocBenchmarks {
		f, ok := fm[name]
		if !ok {
			continue
		}
		if f.AllocsPerOp != 0 {
			fmt.Fprintf(w, "  %-22s allocs/op %d, contract demands 0  ALLOC CONTRACT VIOLATION\n", name, f.AllocsPerOp)
			failures = append(failures, fmt.Sprintf("%s allocs/op %d, want 0 (0-alloc contract)", name, f.AllocsPerOp))
		} else {
			fmt.Fprintf(w, "  %-22s allocs/op 0 (0-alloc contract holds)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench regression gate failed: %v", failures)
	}
	return nil
}
