// Command corpusgen generates a synthetic article collection and
// reports its statistics: vocabulary coverage, document-frequency
// skew, category purity of the term space, and a sample document
// before/after preprocessing. Useful for eyeballing the corpus knobs
// that DESIGN.md maps to the paper's Newsgroup collection.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/attr"
	"repro/internal/corpus"
	"repro/internal/stats"
	"repro/internal/textproc"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	docs := flag.Int("docs", 100, "documents per category")
	categories := flag.Int("categories", 10, "number of categories")
	vocab := flag.Int("vocab", 2000, "vocabulary size per category")
	wordsPerDoc := flag.Int("words", 30, "content words per document")
	zipf := flag.Float64("zipf", 0.7, "term frequency Zipf exponent")
	shared := flag.Float64("shared", 0, "shared vocabulary fraction")
	flag.Parse()

	cfg := corpus.Config{
		Categories:       *categories,
		VocabPerCategory: *vocab,
		SharedVocab:      50,
		WordsPerDoc:      *wordsPerDoc,
		TermZipfS:        *zipf,
		SharedFraction:   *shared,
		MorphNoise:       0.3,
		StopNoise:        0.5,
	}
	gen := corpus.NewGenerator(cfg, *seed)
	rng := stats.NewRNG(*seed ^ 0xdeadbeef)

	df := make(map[attr.ID]int)
	termsPerDoc := make([]float64, 0, *docs**categories)
	var sample corpus.Document
	for c := 0; c < *categories; c++ {
		for d := 0; d < *docs; d++ {
			doc := gen.DocumentRNG(c, rng)
			if c == 0 && d == 0 {
				sample = doc
			}
			termsPerDoc = append(termsPerDoc, float64(doc.Terms.Len()))
			for _, id := range doc.Terms.IDs() {
				df[id]++
			}
		}
	}

	fmt.Printf("generated %d documents across %d categories\n", *docs**categories, *categories)
	fmt.Printf("distinct terms observed: %d (vocabulary %d per category)\n", len(df), *vocab)
	fmt.Printf("terms per document: %s\n", stats.Summarize(termsPerDoc))

	counts := make([]float64, 0, len(df))
	for _, c := range df {
		counts = append(counts, float64(c))
	}
	fmt.Printf("document frequency: %s\n", stats.Summarize(counts))
	sort.Float64s(counts)
	ones := 0
	for _, c := range counts {
		if c == 1 {
			ones++
		}
	}
	fmt.Printf("terms appearing in exactly one document: %d (%.1f%%)\n",
		ones, 100*float64(ones)/float64(len(counts)))

	h := stats.NewHistogram(0, counts[len(counts)-1]+1, 12)
	for _, c := range counts {
		h.Observe(c)
	}
	fmt.Println("\ndocument-frequency histogram:")
	fmt.Print(h.String())

	fmt.Println("\nsample raw text (category 0, truncated):")
	raw := sample.Text
	if len(raw) > 300 {
		raw = raw[:300] + "..."
	}
	fmt.Println(" ", raw)
	fmt.Println("\nsample after preprocessing (stopwords removed, stemmed, frequency-sorted):")
	terms := textproc.UniqueTerms(sample.Text)
	if len(terms) > 15 {
		terms = terms[:15]
	}
	fmt.Println(" ", terms)
}
