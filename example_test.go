package reform_test

import (
	"fmt"

	reform "repro"
)

// Example demonstrates the core loop of the paper: peers start
// unclustered, selfish reformulation discovers the category structure,
// and the result is a pure Nash equilibrium.
func Example() {
	sys := reform.New(reform.Options{
		Peers:            40,
		Categories:       4,
		Scenario:         reform.SameCategory,
		Strategy:         reform.Selfish,
		Init:             reform.InitSingletons,
		AllowNewClusters: true,
		Seed:             1,
	})
	report := sys.Run()
	fmt.Println("converged:", report.Converged)
	fmt.Println("clusters:", sys.NumClusters())
	fmt.Println("nash:", sys.IsNashEquilibrium(0.001))
	// Output:
	// converged: true
	// clusters: 4
	// nash: true
}
