package reform

import (
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/stats"
)

// benchParams is the paper's setting shrunk 4x (50 peers) so each
// bench iteration regenerates a full experiment in tens of
// milliseconds. cmd/reform runs the full 200-peer evaluation; the
// benches measure the same code paths end to end.
func benchParams() experiments.Params {
	p := experiments.DefaultParams().Scaled(4)
	p.MaxRounds = 150
	return p
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkTable1(b *testing.B) {
	// Default Workers (one per CPU): measures the parallel harness.
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(p)
		if len(res.Cells) != 24 {
			b.Fatal("incomplete table")
		}
	}
}

func BenchmarkTable1Serial(b *testing.B) {
	// Workers=1 pins the single-core cost; the ratio to BenchmarkTable1
	// is the harness's multicore scaling.
	p := benchParams()
	p.Workers = 1
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(p)
		if len(res.Cells) != 24 {
			b.Fatal("incomplete table")
		}
	}
}

func BenchmarkTable1SameCategory(b *testing.B) {
	benchScenarioRun(b, experiments.SameCategory)
}

func BenchmarkTable1DifferentCategory(b *testing.B) {
	benchScenarioRun(b, experiments.DifferentCategory)
}

func BenchmarkTable1Uniform(b *testing.B) {
	benchScenarioRun(b, experiments.Uniform)
}

func benchScenarioRun(b *testing.B, sc experiments.Scenario) {
	p := benchParams()
	sys := experiments.Build(p, sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rpt := experiments.RunProtocol(sys, experiments.InitSingletons, core.NewSelfish(), p.Seed)
		_ = rpt.FinalSCost
	}
}

func BenchmarkFig1(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig1(p, 10)
		if r.SCost.Len() != 11 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(p)
		if r.UpdatedPeers.Len() != 11 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3(p)
		if r.UpdatedData.Len() != 11 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(p, nil)
		if r.Len() != 11 {
			b.Fatal("bad series")
		}
	}
}

// --- Ablations and extensions -------------------------------------------

func BenchmarkNashCheck(b *testing.B) {
	inst := core.NewTwoPeerInstance(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.VerifyNoNash(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThetaAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunThetaAblation(p)
	}
}

func BenchmarkEpsilonAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunEpsilonAblation(p)
	}
}

func BenchmarkHybrid(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunHybridComparison(p)
	}
}

func BenchmarkPairedDemandAblation(b *testing.B) {
	p := benchParams()
	p.MaxRounds = 60 // the chain variant never converges; bound it
	for i := 0; i < b.N; i++ {
		experiments.RunPairedDemandAblation(p)
	}
}

func BenchmarkAsync(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunAsyncComparison(p)
	}
}

func BenchmarkBaseline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunBaselineComparison(p)
	}
}

func BenchmarkChurn(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunChurn(p, 5, 0.05)
	}
}

func BenchmarkLookupCost(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunLookupCost(p)
	}
}

// --- Microbenchmarks of the hot paths ------------------------------------

func BenchmarkEngineRebuild(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	eng := sys.NewEngine(sys.CategoryConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Rebuild()
	}
}

func BenchmarkEvaluateMoves(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(1)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.EvaluateMoves(i % p.Peers)
	}
}

func BenchmarkPeerCost(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(5)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	cfg := eng.Config()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pid := i % p.Peers
		eng.PeerCost(pid, cfg.ClusterOf(pid))
	}
}

func BenchmarkEvaluateContribution(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(2)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.EvaluateContribution(i % p.Peers)
	}
}

func BenchmarkEngineMove(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(3)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Move(i%p.Peers, cluster.CID(i%10))
	}
}

func BenchmarkSCost(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	eng := sys.NewEngine(sys.CategoryConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.SCostNormalized()
	}
}

func BenchmarkAddRemovePeer(b *testing.B) {
	// One full churn event (join + leave) through the incremental
	// membership path; contrast with BenchmarkEngineRebuild, the price
	// the pre-membership engine paid per churn event.
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	eng := sys.NewEngine(sys.CategoryConfig())
	items, queries, counts := sys.NewcomerMaterials(0, 0, 0, stats.NewRNG(6))
	pr := peer.New(-1)
	pr.SetItems(items)
	id := eng.AddPeer(pr, queries, counts, cluster.None) // warm indexes/capacities
	eng.RemovePeer(id)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := eng.AddPeer(pr, queries, counts, cluster.None)
		eng.RemovePeer(id)
	}
}

func BenchmarkFlashCrowd(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.RunFlashCrowd(p, []int{10})
	}
}

func BenchmarkProtocolRound(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(4)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	runner := sys.NewRunner(eng, core.NewSelfish(), true)
	runner.BeginPeriod()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.RunRound(i + 1)
	}
}

func BenchmarkProtocolRoundParallel(b *testing.B) {
	// One protocol round with the phase-1 decide scan fanned over all
	// cores (byte-identical outcomes to BenchmarkProtocolRound; the
	// ratio is the decide parallelization's multicore scaling).
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(4)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	runner := sys.NewRunnerWorkers(eng, core.NewSelfish(), true, runtime.GOMAXPROCS(0))
	runner.BeginPeriod()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.RunRound(i + 1)
	}
}

func BenchmarkReformStep(b *testing.B) {
	// A full quiescent maintenance period driven through the stepped
	// Begin/Step state machine (budget 8): the per-tick cost a serving
	// daemon pays to verify the overlay is converged. Steady state
	// must allocate nothing — the report storage is runner-recycled.
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	rng := stats.NewRNG(4)
	eng := sys.NewEngine(sys.InitialConfig(experiments.InitRandomM, rng))
	runner := sys.NewRunner(eng, core.NewSelfish(), true)
	runner.Run() // converge, then warm the period storage
	for i := 0; i < 2; i++ {
		per := runner.Begin()
		for !per.Step(8) {
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		per := runner.Begin()
		for !per.Step(8) {
		}
	}
}

func BenchmarkActorSimPeriod(b *testing.B) {
	p := benchParams()
	p.Peers = 30 // message volume is quadratic
	p.TotalQueries = 120
	sys := experiments.Build(p, experiments.SameCategory)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(uint64(i))
		cfg := sys.InitialConfig(experiments.InitRandomM, rng)
		s := sim.New(sys.Peers, sys.WL, cfg, sim.Options{
			Alpha: p.Alpha, Theta: p.Theta, Epsilon: p.Epsilon,
			MaxRounds: 30, Strategy: sim.Selfish,
		})
		s.RunPeriod()
	}
}

func BenchmarkKMeansRecluster(b *testing.B) {
	p := benchParams()
	sys := experiments.Build(p, experiments.SameCategory)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.KMeans(sys.Peers, p.Categories, 50, stats.NewRNG(uint64(i)))
	}
}

func BenchmarkSystemBuild(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.Build(p, experiments.SameCategory)
	}
}
