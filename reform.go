// Package reform is the public API of the reproduction of
// "Recall-Based Cluster Reformulation by Selfish Peers" (Koloniari &
// Pitoura, ICDE Workshops 2008).
//
// It wires together the synthetic corpus, the peer/workload model, the
// recall-based cost engine and the periodic reformulation protocol
// behind a single System type:
//
//	sys := reform.New(reform.Options{})        // paper defaults
//	report := sys.Run()                        // reformulate to quiescence
//	fmt.Println(report.FinalSCost, sys.ClusterSizes())
//
// The internal packages expose every building block (cost engine,
// strategies, Nash analysis, protocol, actor simulation, baselines,
// experiment drivers); this package covers the common paths an
// application needs: building a system, maintaining its clustered
// overlay under workload/content drift, and inspecting its quality.
package reform

import (
	"fmt"

	"repro/internal/attr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scenario selects the data/query distribution (§4.1 of the paper).
type Scenario = experiments.Scenario

// Scenarios of the paper's evaluation.
const (
	SameCategory      = experiments.SameCategory
	DifferentCategory = experiments.DifferentCategory
	Uniform           = experiments.Uniform
)

// InitKind selects the initial clustering.
type InitKind = experiments.InitKind

// Initial configurations of §4.1 (singletons, random m=M, m<M, m>M),
// plus Category clustering via Options.StartFromCategories.
const (
	InitSingletons = experiments.InitSingletons
	InitRandomM    = experiments.InitRandomM
	InitFewer      = experiments.InitFewer
	InitMore       = experiments.InitMore
)

// StrategyKind selects the relocation strategy of §3.1.
type StrategyKind int

// Relocation strategies.
const (
	// Selfish peers minimize their own individual cost (§3.1.1).
	Selfish StrategyKind = iota
	// Altruistic peers maximize their contribution (§3.1.2).
	Altruistic
	// Hybrid mixes both with weight Options.HybridLambda (§6).
	Hybrid
)

// Report re-exports the protocol run report.
type Report = protocol.Report

// RoundReport re-exports the per-round report.
type RoundReport = protocol.RoundReport

// Options configure a System. The zero value (normalized by New) is
// the paper's experimental setting: 200 peers, 10 categories, α = 1,
// linear θ, ε = 0.001, same-category scenario, singleton start.
type Options struct {
	// Peers is the network size |P|.
	Peers int
	// Categories is the number of topical categories.
	Categories int
	// Scenario is the data/query distribution.
	Scenario Scenario
	// Strategy selects peer behavior during reformulation.
	Strategy StrategyKind
	// HybridLambda is the selfish weight of the hybrid strategy.
	HybridLambda float64
	// Alpha is the membership cost weight α.
	Alpha float64
	// Epsilon is the relocation gain threshold ε.
	Epsilon float64
	// MaxRounds caps each protocol run.
	MaxRounds int
	// Init is the initial clustering; StartFromCategories overrides it
	// with the ideal category clustering (§4.2's "good configuration").
	Init                InitKind
	StartFromCategories bool
	// AllowNewClusters enables empty-cluster creation (§3.2).
	AllowNewClusters bool
	// Workers sizes the worker pool the protocol's phase-1 decide scan
	// fans out over (0 or 1: serial). Reports are byte-identical for
	// every value; parallelism only buys wall-clock time on multicore.
	Workers int
	// Seed drives all randomness; equal seeds give equal systems.
	Seed uint64
}

// System is a live clustered peer-to-peer system.
type System struct {
	opts   Options
	sys    *experiments.System
	eng    *core.Engine
	runner *protocol.Runner
	strat  core.Strategy
	rng    *stats.RNG
	// period is the in-progress stepped maintenance period driven by
	// StepReform, nil when none is active.
	period *protocol.Period
}

// New builds a System. Zero-valued options fall back to the paper's
// defaults.
func New(opts Options) *System {
	p := experiments.DefaultParams()
	if opts.Peers > 0 {
		p.Peers = opts.Peers
	}
	if opts.Categories > 0 {
		p.Categories = opts.Categories
		p.Corpus.Categories = opts.Categories
	}
	if opts.Alpha > 0 {
		p.Alpha = opts.Alpha
	}
	if opts.Epsilon > 0 {
		p.Epsilon = opts.Epsilon
	}
	if opts.MaxRounds > 0 {
		p.MaxRounds = opts.MaxRounds
	}
	if opts.Seed != 0 {
		p.Seed = opts.Seed
	}
	if opts.HybridLambda == 0 {
		opts.HybridLambda = 0.5
	}

	sys := experiments.Build(p, opts.Scenario)
	rng := stats.NewRNG(p.Seed ^ 0x6a09e667f3bcc908)
	var cfg *cluster.Config
	if opts.StartFromCategories {
		cfg = sys.CategoryConfig()
	} else {
		cfg = sys.InitialConfig(opts.Init, rng)
	}
	eng := sys.NewEngine(cfg)

	var strat core.Strategy
	switch opts.Strategy {
	case Selfish:
		strat = core.NewSelfish()
	case Altruistic:
		strat = core.NewAltruistic()
	case Hybrid:
		strat = core.NewHybrid(opts.HybridLambda)
	default:
		panic(fmt.Sprintf("reform: unknown strategy %d", opts.Strategy))
	}

	return &System{
		opts:   opts,
		sys:    sys,
		eng:    eng,
		runner: sys.NewRunnerWorkers(eng, strat, opts.AllowNewClusters, opts.Workers),
		strat:  strat,
		rng:    rng,
	}
}

// Run executes the reformulation protocol until no peer requests a
// relocation (or MaxRounds), returning the full report. It supersedes
// any stepped period in progress (see StepReform); that period's
// partial work stays applied, its report is discarded.
func (s *System) Run() Report {
	s.period = nil
	return s.runner.Run()
}

// RunRound executes a single protocol round.
func (s *System) RunRound(round int) RoundReport { return s.runner.RunRound(round) }

// StepReform advances maintenance by one bounded step — at most
// `budget` work units: phase-1 relocation decisions over single
// clusters plus phase-2 grant services (budget <= 0 runs a whole
// period, which is Run re-spelled). The first call begins a resumable
// period; subsequent calls continue it; when the period completes
// (convergence or MaxRounds) StepReform returns done=true with its
// report, and the next call begins a new period.
//
// Between steps the system may mutate freely: Join, Leave and
// CompactWorkload interleave with an in-progress period — a join's
// latency is bounded by the one step in front of it, not by the whole
// period — and with no interleaving the completed period's moves,
// costs and report are byte-identical to Run's. Content updates
// (RedirectInterest, ReplaceContent, ChurnPeer) re-baseline the
// runner and therefore cancel an in-progress period; Run supersedes
// one.
func (s *System) StepReform(budget int) (done bool, report *Report) {
	if s.period == nil || s.period.Done() {
		s.period = s.runner.Begin()
	}
	if s.period.Step(budget) {
		rpt := s.period.Report()
		// Detach from the runner-recycled storage before the next
		// period overwrites it.
		rpt.Rounds = append([]RoundReport(nil), rpt.Rounds...)
		s.period = nil
		return true, &rpt
	}
	return false, nil
}

// refreshBaseline re-snapshots the period baseline after a membership
// change — unless a stepped period is in progress: mid-period joins
// and leaves are covered by the slot-generation machinery, and the
// period keeps the baseline it started with.
func (s *System) refreshBaseline() {
	if s.period != nil && !s.period.Done() {
		return
	}
	s.runner.BeginPeriod()
}

// SocialCost returns the normalized social cost (Eq. 2 / |P|).
func (s *System) SocialCost() float64 { return s.eng.SCostNormalized() }

// WorkloadCost returns the normalized workload cost (Eq. 3).
func (s *System) WorkloadCost() float64 { return s.eng.WCostNormalized() }

// NumPeers returns the live |P|: the number of peers currently in the
// system. After a Leave this is smaller than NumSlots; iterate slots
// with NumSlots+IsLive to visit every live peer.
func (s *System) NumPeers() int { return s.eng.NumPeers() }

// NumSlots returns the number of peer slots ever allocated (live or
// vacated). Peer IDs lie in [0, NumSlots()).
func (s *System) NumSlots() int { return s.eng.NumSlots() }

// NumClusters returns the number of non-empty clusters.
func (s *System) NumClusters() int { return s.eng.Config().NumNonEmpty() }

// ClusterSizes returns the sorted sizes of all non-empty clusters.
func (s *System) ClusterSizes() []int { return s.eng.Config().Sizes() }

// ClusterOf returns the cluster ID of a peer, or -1 for a vacated
// slot.
func (s *System) ClusterOf(peer int) int32 { return int32(s.eng.Config().ClusterOf(peer)) }

// PeerCost returns peer p's individual cost in its current cluster
// (Eq. 1). It panics on a vacated slot; guard iteration over
// [0, NumSlots()) with IsLive.
func (s *System) PeerCost(p int) float64 {
	if !s.eng.IsLive(p) {
		panic(fmt.Sprintf("reform: peer %d is not live", p))
	}
	return s.eng.PeerCost(p, s.eng.Config().ClusterOf(p))
}

// IsNashEquilibrium reports whether no peer can improve its individual
// cost by more than tol with a unilateral move.
func (s *System) IsNashEquilibrium(tol float64) bool {
	ok, _ := s.eng.IsNash(tol)
	return ok
}

// DataCategory returns the category of peer p's content (-1 for mixed
// content under the uniform scenario).
func (s *System) DataCategory(p int) int { return s.sys.DataCat[p] }

// RedirectInterest moves fraction frac of peer p's query workload to
// category cat — the §4.2 workload update. Costs are refreshed.
func (s *System) RedirectInterest(p int, cat int, frac float64) {
	s.sys.RedirectWorkload(p, cat, frac, s.rng)
	s.eng.Rebuild()
	s.period = nil
	s.runner.BeginPeriod()
}

// ReplaceContent replaces fraction frac of peer p's data items with
// fresh documents of category cat — the §4.2 content update.
func (s *System) ReplaceContent(p int, cat int, frac float64) {
	s.sys.ReplaceData(p, cat, frac, s.rng)
	s.eng.Rebuild()
	s.period = nil
	s.runner.BeginPeriod()
}

// ChurnPeer replaces the peer at slot p with a newcomer whose data and
// interests are in the given category. The slot keeps its cluster; use
// Join/Leave for true membership changes.
func (s *System) ChurnPeer(p int, cat int) {
	s.sys.ReplacePeerIdentity(p, cat, cat, s.rng)
	s.eng.Rebuild()
	s.period = nil
	s.runner.BeginPeriod()
}

// Join admits a brand-new peer with content and interests in category
// cat. The newcomer starts as a singleton cluster and is integrated by
// the next reformulation run; the join itself is incremental (no
// engine rebuild). It returns the new peer's ID.
func (s *System) Join(cat int) int {
	pid := s.sys.JoinPeer(s.eng, cat, cat, s.rng)
	s.refreshBaseline()
	return pid
}

// Leave retires peer pid from the system incrementally (no engine
// rebuild); its slot is reused by the next joiner.
func (s *System) Leave(pid int) {
	s.sys.LeavePeer(s.eng, pid)
	s.refreshBaseline()
}

// IsLive reports whether slot pid currently holds a peer.
func (s *System) IsLive(pid int) bool { return s.eng.IsLive(pid) }

// NumDistinctQueries returns the number of distinct queries currently
// interned — the width of every QID-indexed engine structure. Under
// churn with novel queries it grows with query history until
// CompactWorkload reclaims the dead entries.
func (s *System) NumDistinctQueries() int { return s.eng.Workload().NumQueries() }

// DeadQueries returns how many distinct queries no live peer demands
// anymore — what a CompactWorkload call would reclaim.
func (s *System) DeadQueries() int { return s.eng.DeadQueries(0) }

// CompactWorkload retires every distinct query no live peer demands
// and densely renumbers the survivors, shrinking all QID-indexed
// engine state in place (no rebuild). Costs, cluster assignments and
// reformulation behavior are preserved exactly; it returns the number
// of queries reclaimed. Long-running systems with churning populations
// call it periodically (e.g. when DeadQueries exceeds half of
// NumDistinctQueries) to keep memory bounded by live demand.
func (s *System) CompactWorkload() int { return s.eng.Compact(0) }

// ClusterAnswer is one cluster's share of a routed query's results.
type ClusterAnswer struct {
	// Cluster is the cluster slot ID.
	Cluster int
	// Size is the cluster's live member count.
	Size int
	// Results is the number of matching items held by the cluster.
	Results int
	// Recall is Results over the query's global result total.
	Recall float64
}

// QueryAnswer is the routing answer for one query: which clusters to
// contact and what fraction of the results each can serve.
type QueryAnswer struct {
	// Total is the global result count over all live peers.
	Total int
	// Clusters lists the clusters holding results, ascending by ID.
	Clusters []ClusterAnswer
}

// QueryBatch routes a batch of ad-hoc term queries against the
// current overlay — the paper's query-routing model: send each query
// to the clusters that can answer it. The whole batch is answered
// from one immutable routing view built at call time (the same
// snapshot-isolated read path the serving daemon publishes), so the
// answers are mutually consistent and the call leaves the system
// untouched: ad-hoc queries are not recorded as demand. Terms never
// seen by any peer match nothing.
func (s *System) QueryBatch(queries [][]string) []QueryAnswer {
	view := s.eng.BuildRoutingView(nil)
	vocab := s.sys.Gen.Vocab()
	var sc core.RouteScratch
	var ids []attr.ID
	out := make([]QueryAnswer, len(queries))
	for i, terms := range queries {
		ids = ids[:0]
		known := true
		for _, t := range terms {
			id, ok := vocab.Lookup(t)
			if !ok {
				known = false
				break
			}
			ids = append(ids, id)
		}
		out[i].Clusters = []ClusterAnswer{}
		if !known || len(ids) == 0 {
			continue
		}
		total, hits := view.Route(attr.NewSet(ids...), &sc)
		out[i].Total = total
		for _, h := range hits {
			out[i].Clusters = append(out[i].Clusters, ClusterAnswer{
				Cluster: int(h.Cluster),
				Size:    h.Size,
				Results: h.Results,
				Recall:  float64(h.Results) / float64(total),
			})
		}
	}
	return out
}

// Query routes a single ad-hoc term query; see QueryBatch.
func (s *System) Query(terms ...string) QueryAnswer {
	return s.QueryBatch([][]string{terms})[0]
}

// ActorSim builds the concurrent goroutine-per-peer realization of the
// protocol over a clone of the current configuration. The returned
// simulation owns its clone; the System is unaffected by it.
func (s *System) ActorSim() *sim.Sim {
	strategy := sim.Selfish
	if s.opts.Strategy == Altruistic {
		strategy = sim.Altruistic
	}
	p := s.sys.Params
	return sim.New(s.sys.Peers, s.sys.WL, s.eng.Config().Clone(), sim.Options{
		Alpha:     p.Alpha,
		Theta:     p.Theta,
		Epsilon:   p.Epsilon,
		MaxRounds: p.MaxRounds,
		Strategy:  strategy,
	})
}

// Engine exposes the underlying cost engine for advanced use (Nash
// analysis, custom strategies). Mutate the configuration only through
// Engine.Move.
func (s *System) Engine() *core.Engine { return s.eng }
